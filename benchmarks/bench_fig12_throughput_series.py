"""Fig. 12: throughput of integrated chip-vendor submissions (log-scale)."""

import math

from repro.perf.published import PUBLISHED_THROUGHPUT_IPS

from tableutil import MODEL_ORDER, display_name, system


def compute_fig12_series():
    series = {
        "Centaur Ncore (simulated)": {
            key: system(key).offline_throughput_ips() for key in MODEL_ORDER
        }
    }
    for vendor, row in PUBLISHED_THROUGHPUT_IPS.items():
        series[vendor] = {k: row[k] for k in MODEL_ORDER}
    return series


def _bar(value: float, lo=10.0, hi=40000.0, width=40) -> str:
    span = math.log10(hi) - math.log10(lo)
    filled = int((math.log10(max(value, lo)) - math.log10(lo)) / span * width)
    return "#" * max(1, filled)


def test_fig12_throughput_series(benchmark, capsys):
    series = benchmark(compute_fig12_series)
    with capsys.disabled():
        print("\nFig. 12 reproduction: Offline throughput (inputs/second, log scale)")
        for model in MODEL_ORDER:
            print(f"\n  {display_name(model)}")
            for vendor, values in series.items():
                value = values[model]
                if value is None:
                    continue
                print(f"    {vendor:<28} {value:10.2f} |{_bar(value)}")
    sim = series["Centaur Ncore (simulated)"]
    paper = series["Centaur Ncore"]
    # Every simulated point stays within 1.5x of the paper's submission.
    for model in MODEL_ORDER:
        assert 0.5 * paper[model] < sim[model] < 1.5 * paper[model]
