"""Guard for the sanitizer zero-cost contract.

``Ncore(sanitize=...)`` follows the observability discipline: when no
sanitizer is armed, every hook site in the machine and the DMA engines
reduces to one ``is not None`` check.  Three assertions keep that true:

- a machine that had a sanitizer armed and then disarmed must run the
  Fig. 6 workload within 2% of a machine that never saw one (catches
  residue left behind by ``arm_sanitizer(False)``),
- the null-path guard itself must cost <2% of one workload run even if
  every run touched 500 hook sites (catches unguarded work ahead of the
  ``is not None`` check), and
- sanitizer-off runs stay bit-identical to a plain machine.

Run:  python -m pytest benchmarks/bench_sanitize.py -q
"""

import time

from bench_simulator import build_machine

from repro.sanitize import state_digest

REPEATS = 30
OVERHEAD_BUDGET = 0.02
# Workload executions per timed sample: a single run is ~2 ms, too small
# to resolve a 2% budget against scheduler/timer jitter in CI containers.
RUNS_PER_SAMPLE = 5


def _min_seconds(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _toggled_machine():
    machine, program = build_machine(fastpath=False)
    machine.arm_sanitizer(True)
    machine.arm_sanitizer(False)
    return machine, program


def _timed_pair():
    """Interleaved min-of-repeats: never-armed vs armed-then-disarmed.

    Both sides run the identical null path, so any paired ratio above
    the budget means disarming left state behind (a stale engine hook,
    a forced-off fast path, per-access bookkeeping).
    """
    plain, program = build_machine(fastpath=False)
    toggled, _ = _toggled_machine()

    def run(machine):
        machine.reset()
        machine.execute_program(program)

    run(plain)
    run(toggled)
    best_ratio = float("inf")
    plain_best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(RUNS_PER_SAMPLE):
            run(plain)
        plain_sample = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(RUNS_PER_SAMPLE):
            run(toggled)
        toggled_sample = time.perf_counter() - start
        best_ratio = min(best_ratio, toggled_sample / plain_sample)
        plain_best = min(plain_best, plain_sample)
    return plain_best, plain_best * best_ratio


def test_disarmed_machine_overhead_under_budget():
    plain_best, toggled_best = _timed_pair()
    overhead = toggled_best / plain_best - 1.0
    assert overhead < OVERHEAD_BUDGET, (
        f"a disarmed sanitizer costs {overhead:.1%} on the simulator "
        f"workload (never-armed {plain_best * 1e3:.3f} ms, toggled "
        f"{toggled_best * 1e3:.3f} ms); arm_sanitizer(False) left residue"
    )


def test_null_guard_cost_negligible():
    machine, program = build_machine(fastpath=False)

    def guards(n=10_000):
        for _ in range(n):
            if machine.sanitizer is not None:
                raise AssertionError("sanitizer unexpectedly armed")

    def run():
        machine.reset()
        machine.execute_program(program)

    run()
    guard_cost = _min_seconds(guards) / 10_000
    workload = _min_seconds(run, repeats=10)
    # Even if every run touched 500 hook sites, the null path must stay
    # under the budget.
    assert guard_cost * 500 < OVERHEAD_BUDGET * workload, (
        f"null sanitizer guard costs {guard_cost * 1e9:.0f} ns/site "
        f"against a {workload * 1e3:.3f} ms workload"
    )


def test_sanitize_off_is_bit_identical():
    plain, program = build_machine(fastpath=False)
    toggled, _ = _toggled_machine()
    plain.execute_program(program)
    toggled.execute_program(program)
    assert state_digest(plain) == state_digest(toggled)


def test_armed_run_completes_and_checks_accesses():
    # Informational companion: the armed path is allowed to be slow, but
    # it must observe the workload and stay clean on a correct program.
    machine, program = build_machine(fastpath=False)
    sanitizer = machine.arm_sanitizer(True)
    # The fixture staged the RAMs before the sanitizer existed; repeat
    # the host writes so the shadow sees the initialization.
    machine.write_data_ram(0, b"\x03" * 4096)
    machine.write_weight_ram(0, b"\x02" * 4096)
    result = machine.execute_program(program)
    assert result.halted
    assert sanitizer.ok
    assert sanitizer.stats["reads_checked"] > 0


if __name__ == "__main__":
    plain_best, toggled_best = _timed_pair()
    print(f"workload (never armed):     {plain_best * 1e3:8.3f} ms")
    print(f"workload (armed->disarmed): {toggled_best * 1e3:8.3f} ms "
          f"({toggled_best / plain_best - 1.0:+.2%})")
    machine, program = build_machine(fastpath=False)
    machine.arm_sanitizer(True)
    armed = _min_seconds(
        lambda: (machine.reset(), machine.execute_program(program)), repeats=5
    )
    print(f"workload (armed):           {armed * 1e3:8.3f} ms "
          f"({armed / (plain_best / RUNS_PER_SAMPLE) - 1.0:+.1%})")
