"""Regression guard: the trace-fused tier must stay well ahead of the
interpreter on the Fig. 6 fused inner loop.

The measured advantage on an idle machine is >10x; the guard asserts a
conservative 5x so CI noise and slower runners never flake it, while any
change that quietly disables fusion (a rejected trace, a fallback on the
hot loop) still fails loudly.
"""

from repro.perf.simbench import measure_inner_loop

GUARD_SPEEDUP = 5.0


def test_fastpath_speedup_guard():
    fast = measure_inner_loop(repeats=5, fastpath=True)
    interp = measure_inner_loop(repeats=5, fastpath=False)
    # Identical simulated work on both tiers — only wall time may differ.
    assert fast["cycles"] == interp["cycles"]
    assert fast["instructions"] == interp["instructions"]
    speedup = interp["seconds"] / fast["seconds"]
    assert speedup >= GUARD_SPEEDUP, (
        f"fastpath only {speedup:.1f}x over the interpreter "
        f"(guard {GUARD_SPEEDUP}x) — did the Fig. 6 loop stop fusing?"
    )
