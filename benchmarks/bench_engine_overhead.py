"""Guard for the engine dispatch overhead.

The resumable ``Ncore.step`` API and the discrete-event engine exist so N
machines and a query stream can interleave — not to slow down the common
case.  A machine driven through :class:`repro.engine.MachineTask` does the
same interpreter work as a blocking ``execute_program`` call plus the
engine's bookkeeping (heap pushes, generator resumes, timeout events), so
the wall-clock difference *is* the dispatch overhead.  This guard keeps it
under 5% on the Fig. 6 fused-convolution workload even at a deliberately
fine interleave granularity (64-cycle budgets, ~9 engine turns per run).

Run:  python -m pytest benchmarks/bench_engine_overhead.py -q
"""

import time

from bench_simulator import build_machine

from repro.engine import Engine, MachineTask

REPEATS = 30
OVERHEAD_BUDGET = 0.05
BUDGET_CYCLES = 64  # much finer than DEFAULT_BUDGET_CYCLES: worst case


def _timed_pair():
    """Interleaved min-of-repeats: blocking run vs engine-driven stepping."""
    machine, program = build_machine()

    def direct():
        machine.reset()
        return machine.execute_program(program)

    def engined():
        machine.reset()
        engine = Engine()
        task = MachineTask(
            engine, machine, program, budget_cycles=BUDGET_CYCLES, trace=False
        )
        engine.run()
        return task.run

    reference = direct()
    direct_best = engine_best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        direct()
        direct_best = min(direct_best, time.perf_counter() - start)
        start = time.perf_counter()
        run = engined()
        engine_best = min(engine_best, time.perf_counter() - start)
    assert run.halted and run.cycles == reference.cycles
    assert len(run.steps) > 1  # the engine really did slice the run
    return direct_best, engine_best


def test_engine_dispatch_overhead_under_five_percent():
    direct_best, engine_best = _timed_pair()
    overhead = engine_best / direct_best - 1.0
    assert overhead < OVERHEAD_BUDGET, (
        f"engine-driven stepping is {overhead:.1%} slower than a blocking "
        f"run (budget {OVERHEAD_BUDGET:.0%}); dispatch got too expensive"
    )


def test_engine_event_throughput():
    """A floor on raw event dispatch: pure timeouts, no machine attached."""
    engine = Engine()

    def ticker():
        for _ in range(10_000):
            yield engine.timeout(1e-6)

    engine.process(ticker())
    start = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - start
    rate = engine.events_dispatched / elapsed
    # Generous floor: even CI containers do millions of heap ops a second.
    assert rate > 50_000, f"engine dispatched only {rate:,.0f} events/s"
