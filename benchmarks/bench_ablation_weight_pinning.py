"""Ablation: MobileNet weight pinning vs streamed weights.

Section V-B: "In the case of MobileNetV1, the GCL determines that all the
model's weights fit in on-chip SRAM, and promotes the weight buffers to
become persistent rather than transferred during execution."  This bench
measures what that promotion is worth by re-timing the same loadables with
streaming forced on.
"""

import copy


from tableutil import render_table, system

DMA_BYTES_PER_CYCLE = 102.4e9 / 2.5e9


def compute_pinning_ablation():
    sys = system("mobilenet_v1")
    rows = []
    pinned_cycles = streamed_cycles = 0
    for index in sys.compiled.ncore_segments:
        loadable = sys.compiled.loadables[index]
        assert loadable.memory_plan.weights_pinned  # the GCL's decision
        pinned_cycles += loadable.total_cycles(DMA_BYTES_PER_CYCLE)
        forced = copy.copy(loadable)
        forced.memory_plan = copy.copy(loadable.memory_plan)
        forced.memory_plan.weights_pinned = False
        streamed_cycles += forced.total_cycles(DMA_BYTES_PER_CYCLE)
    clock = 2.5e9
    rows.append(["pinned (GCL default)", pinned_cycles, f"{pinned_cycles / clock * 1e6:.1f}"])
    rows.append(["forced streaming", streamed_cycles, f"{streamed_cycles / clock * 1e6:.1f}"])
    return pinned_cycles, streamed_cycles, rows


def test_ablation_weight_pinning(benchmark, capsys):
    pinned, streamed, rows = benchmark(compute_pinning_ablation)
    with capsys.disabled():
        print()
        print(render_table(
            "Ablation: MobileNet-V1 weight pinning vs streaming",
            ["Weight policy", "Ncore cycles", "Ncore portion (us)"],
            rows,
        ))
        print(f"  pinning saves {(streamed - pinned) / streamed:.1%} of Ncore cycles")
    assert pinned < streamed
    # MobileNet's depthwise layers give DMA little compute to hide behind,
    # so streaming must cost a measurable share.
    assert (streamed - pinned) / streamed > 0.02


def test_resnet_weights_do_not_fit(benchmark):
    def check():
        sys = system("resnet50_v15")
        return [
            sys.compiled.loadables[i].memory_plan.weights_pinned
            for i in sys.compiled.ncore_segments
        ]

    pinned_flags = benchmark(check)
    # ResNet-50's 26 M weights exceed the 8 MB weight RAM: streamed.
    assert any(flag is False for flag in pinned_flags)
