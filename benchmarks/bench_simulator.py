"""Simulator performance: how fast the instruction-level model executes.

Times the Fig. 6 fused convolution inner loop (one 4096-wide MAC issue per
iteration) on the functional simulator — the number that bounds how large
a workload the golden model can replay for verification.
"""

import numpy as np

from repro.isa import assemble
from repro.ncore import Ncore

ITERATIONS = 512


def build_machine():
    machine = Ncore()
    machine.write_data_ram(0, bytes(np.full(4096, 3, np.uint8)))
    machine.write_weight_ram(0, bytes(np.full(4096, 2, np.uint8)))
    program = assemble(
        f"""
        setaddr a0, 0
        setaddr a3, 0
        setaddr a5, 0
        bypass n0, dram[a0]
        loop {ITERATIONS} {{
          broadcast64 n1, wtram[a3], a5, inc
          mac.uint8 dlast, n1
          rotl n0, n0, 64
        }}
        halt
        """
    )
    return machine, program


def test_simulator_inner_loop_throughput(benchmark):
    machine, program = build_machine()

    def run():
        machine.reset()
        return machine.execute_program(program)

    result = benchmark(run)
    assert result.halted
    # One simulated clock per fused iteration, plus 3 setaddr + bypass +
    # halt around the loop.
    assert result.cycles == ITERATIONS + 5


def test_simulator_dma_roundtrip_throughput(benchmark):
    from repro.ncore import DmaDescriptor

    machine = Ncore()
    machine.dma_read.configure_window(0)
    machine.memory.write(0, b"\x05" * (64 * 4096))
    machine.set_dma_descriptor(
        0, DmaDescriptor(False, True, ram_row=0, rows=64, dram_addr=0)
    )
    program = assemble("dmastart 0\ndmawait 1\nhalt")

    def run():
        machine.reset()
        machine.dma_read.busy_until = 0
        return machine.execute_program(program)

    result = benchmark(run)
    assert result.halted
