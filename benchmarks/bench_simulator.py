"""Simulator performance: how fast the instruction-level model executes.

Times the Fig. 6 fused convolution inner loop (one 4096-wide MAC issue per
iteration) on the functional simulator — the number that bounds how large
a workload the golden model can replay for verification.  The machine and
program come from :mod:`repro.perf.simbench`, which also records the
``BENCH_simulator.json`` baseline; the fastpath/interpreter pair here is
the microbenchmark behind the tier-1 speedup claim in
``docs/simulator-performance.md``.
"""

from repro.perf.simbench import FIG6_ITERATIONS, fig6_machine

ITERATIONS = FIG6_ITERATIONS


def build_machine(fastpath=None):
    return fig6_machine(fastpath=fastpath)


def _throughput_case(benchmark, fastpath):
    machine, program = build_machine(fastpath=fastpath)

    def run():
        machine.reset()
        return machine.execute_program(program)

    result = benchmark(run)
    assert result.halted
    # One simulated clock per fused iteration, plus 3 setaddr + bypass +
    # halt around the loop.  Identical on both tiers.
    assert result.cycles == ITERATIONS + 5
    return machine


def test_simulator_inner_loop_throughput(benchmark):
    machine = _throughput_case(benchmark, fastpath=True)
    assert machine.fastpath_stats["hits"] > 0


def test_simulator_inner_loop_interpreter(benchmark):
    machine = _throughput_case(benchmark, fastpath=False)
    assert machine.fastpath_stats["hits"] == 0


def test_simulator_dma_roundtrip_throughput(benchmark):
    from repro.isa import assemble
    from repro.ncore import DmaDescriptor, Ncore

    machine = Ncore()
    machine.dma_read.configure_window(0)
    machine.memory.write(0, b"\x05" * (64 * 4096))
    machine.set_dma_descriptor(
        0, DmaDescriptor(False, True, ram_row=0, rows=64, dram_addr=0)
    )
    program = assemble("dmastart 0\ndmawait 1\nhalt")

    def run():
        machine.reset()
        machine.dma_read.busy_until = 0
        return machine.execute_program(program)

    result = benchmark(run)
    assert result.halted
