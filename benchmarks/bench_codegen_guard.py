"""Regression guard: Tier-3 codegen must stay well ahead of the Tier-1
fastpath on end-to-end zoo inference.

The measured steady-state advantage on MobileNet (the cheapest zoo CNN)
is ~5x on an idle machine; the guard asserts a conservative 3x so CI
noise never flakes it, while any change that quietly drops macro-kernel
coverage (an op falling out of the codegen vocabulary, the sidecar
artifact missing from the cache) still fails loudly.  The digest check
keeps the guard honest: the speed-up only counts if the bytes match.

The GNMT pair guards the bf16 float region the same way: the measured
steady-state advantage over the interpreter walk is ~5x (the seqfuse
variant computes each encoder layer's sequence projection once instead
of once per step), guarded at a conservative 3x and only after the
outputs digest-match the interpreter bit for bit.
"""

import numpy as np

from repro.perf.simbench import compile_zoo_model, measure_zoo_end_to_end
from repro.runtime import InferenceSession

GUARD_SPEEDUP = 3.0
MODEL = "mobilenet_v1"


def test_codegen_outputs_match_fastpath():
    model, feeds = compile_zoo_model(MODEL)
    fast = InferenceSession(model, policy="fastpath")
    tier3 = InferenceSession(model, policy="codegen")
    try:
        want = fast.run(feeds).outputs
        got = tier3.run(feeds).outputs
        assert tier3.executor.last_tier == "codegen"
        for name in want:
            assert np.asarray(got[name]).tobytes() == \
                np.asarray(want[name]).tobytes()
    finally:
        fast.close()
        tier3.close()


def test_codegen_speedup_guard():
    tier3 = measure_zoo_end_to_end(MODEL, queries=3, tier="codegen", warmup=1)
    tier1 = measure_zoo_end_to_end(MODEL, queries=3, tier="fastpath", warmup=1)
    speedup = tier1["seconds"] / tier3["seconds"]
    assert speedup >= GUARD_SPEEDUP, (
        f"Tier-3 codegen only {speedup:.1f}x over the Tier-1 fastpath "
        f"on {MODEL} (guard {GUARD_SPEEDUP}x) — did macro-kernel "
        "coverage regress?"
    )


GNMT_GUARD_SPEEDUP = 3.0


def test_gnmt_codegen_bit_exact_and_covered():
    model, feeds = compile_zoo_model("gnmt")
    interp = InferenceSession(model, policy="interpreter")
    tier3 = InferenceSession(model, policy="codegen")
    try:
        want = interp.run(feeds).outputs
        got = tier3.run(feeds).outputs
        assert tier3.executor.last_tier == "codegen"
        kset = tier3.executor.macro_kernels
        assert kset is not None
        assert kset.coverage_fraction(len(model.segments)) > 0.8
        for name in want:
            assert np.asarray(got[name]).tobytes() == \
                np.asarray(want[name]).tobytes()
    finally:
        interp.close()
        tier3.close()


def test_gnmt_codegen_speedup_guard():
    tier3 = measure_zoo_end_to_end("gnmt", queries=3, tier="codegen", warmup=1)
    interp = measure_zoo_end_to_end("gnmt", queries=3, tier="interpreter", warmup=1)
    assert tier3.get("coverage", 0.0) > 0.8
    speedup = interp["seconds"] / tier3["seconds"]
    assert speedup >= GNMT_GUARD_SPEEDUP, (
        f"Tier-3 codegen only {speedup:.1f}x over the interpreter walk "
        f"on gnmt (guard {GNMT_GUARD_SPEEDUP}x) — did float-region "
        "macro-kernel coverage or the seqfuse variant regress?"
    )
