"""Fig. 14: observed throughput vs x86 core count.

The measured curves sit under the Fig. 13 ideals — "they appear to become
limited by other x86 overhead not accounted in either the TensorFlow-Lite
or MLPerf frameworks" — modelled by the calibrated serial x86 share.
"""

from repro.perf.published import PAPER_WORKLOAD_SPLIT_MS, PUBLISHED_THROUGHPUT_IPS
from repro.perf.scaling import expected_throughput, observed_throughput

from tableutil import CNN_ORDER, display_name, render_table, system


def compute_fig14():
    rows = []
    for key in CNN_ORDER:
        sys = system(key)
        portion = sys.x86_portion()
        nonbatchable = portion.total_seconds * (1 - portion.batchable_fraction)
        t_nc = sys.ncore_seconds_batched(64)
        series = [
            round(observed_throughput(t_nc, portion.total_seconds, n, nonbatchable))
            for n in range(1, 9)
        ]
        rows.append([display_name(key) + " (simulated)"] + series)
        paper = PAPER_WORKLOAD_SPLIT_MS[key]
        paper_series = [
            round(
                observed_throughput(paper["ncore"] * 1e-3, paper["x86"] * 1e-3, n)
            )
            for n in range(1, 9)
        ]
        rows.append([display_name(key) + " (paper Table IX)"] + paper_series)
    return rows


def test_fig14_observed_scaling(benchmark, capsys):
    rows = benchmark(compute_fig14)
    with capsys.disabled():
        print()
        print(render_table(
            "Fig. 14 reproduction: observed throughput (IPS) vs x86 cores",
            ["Model", "1", "2", "3", "4", "5", "6", "7", "8"],
            rows,
        ))
    # Observed sits under expected at every core count (the figure's
    # relationship to Fig. 13).
    for key in CNN_ORDER:
        sys = system(key)
        portion = sys.x86_portion()
        nonbatchable = portion.total_seconds * (1 - portion.batchable_fraction)
        t_nc = sys.ncore_seconds_batched(64)
        for cores in range(2, 9):
            observed = observed_throughput(t_nc, portion.total_seconds, cores, nonbatchable)
            expected = expected_throughput(t_nc, portion.total_seconds, cores, nonbatchable)
            assert observed <= expected
    # The calibrated model evaluated at the paper's portions lands near
    # the paper's submitted 8-core throughputs.
    paper = PAPER_WORKLOAD_SPLIT_MS["resnet50_v15"]
    eight_core = observed_throughput(paper["ncore"] * 1e-3, paper["x86"] * 1e-3, 8)
    submitted = PUBLISHED_THROUGHPUT_IPS["Centaur Ncore"]["resnet50_v15"]
    assert abs(eight_core - submitted) / submitted < 0.08
