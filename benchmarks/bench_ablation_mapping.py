"""Ablation: the Fig. 7 W x K mapping vs a naive channel-only mapping.

The W x K mapping parallelizes spatial positions *and* output channels
across the 4096 lanes.  A naive mapping that only spreads output channels
leaves most lanes idle whenever K < 4096 — this bench quantifies how much
the paper's dataflow choice buys on real layer shapes.
"""

from repro.nkl.schedule import conv2d_schedule

from tableutil import render_table

LAYERS = [
    ("early 56x56x64", 64, 64, 56, 56, 3),
    ("mid 28x28x128", 128, 128, 28, 28, 3),
    ("late 7x7x512", 512, 512, 7, 7, 3),
    ("pointwise 14x14x1024", 256, 1024, 14, 14, 1),
]


def naive_channel_only_cycles(cin, cout, h, w, k) -> int:
    """Only output channels across lanes: one output pixel per pass."""
    inner = k * k * cin
    passes = h * w * max(1, -(-cout // 4096))
    return passes * (inner + 4)


def compute_mapping_ablation():
    rows = []
    for label, cin, cout, h, w, k in LAYERS:
        fig7 = conv2d_schedule(cin, cout, h, w, k, k)
        naive = naive_channel_only_cycles(cin, cout, h, w, k)
        rows.append(
            [
                label,
                fig7.cycles,
                naive,
                f"{naive / fig7.cycles:.1f}x",
                f"{fig7.utilization:.0%}",
                f"{fig7.macs / (naive * 4096):.0%}",
            ]
        )
    return rows


def test_ablation_mapping(benchmark, capsys):
    rows = benchmark(compute_mapping_ablation)
    with capsys.disabled():
        print()
        print(render_table(
            "Ablation: Fig. 7 W x K mapping vs naive channel-only mapping",
            ["Layer", "WxK cycles", "naive cycles", "speedup",
             "WxK util", "naive util"],
            rows,
        ))
    speedups = [float(r[3][:-1]) for r in rows]
    # The W x K mapping wins on every shape, dramatically on layers whose
    # channel count is far below the machine width.
    assert all(s > 1.5 for s in speedups)
    assert max(speedups) > 20
    # Utilization of the chosen mapping stays high across depths (the
    # "sufficient parallelism is maintained" claim).
    utils = [float(r[4][:-1]) / 100 for r in rows]
    assert min(utils) > 0.5
