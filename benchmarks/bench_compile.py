"""Compile-cache effectiveness guard.

The content-addressed compile cache exists so that serving, MLPerf and
multisocket runs pay for ResNet-50's optimize/partition/verify/lower
exactly once.  This benchmark compiles the quantized benchmark graph
cold, recompiles it against a warm :class:`repro.compiler.CompileCache`,
and asserts the cached path is at least ``MIN_SPEEDUP``x faster — if a
lookup ever starts re-running stages (or fingerprinting grows a
super-linear step), this fails.

Run:  python -m pytest benchmarks/bench_compile.py -q
"""

import time

from repro.compiler import CompileCache, compile_graph, optimize_graph
from repro.models import PAPER_CHARACTERISTICS
from repro.quantize import calibrate, quantize_graph

MODEL_KEY = "resnet50_v15"
MIN_SPEEDUP = 10.0
REPEATS = 3


def _quantized_resnet():
    info = PAPER_CHARACTERISTICS[MODEL_KEY]
    graph = info.build()
    optimize_graph(graph, in_place=True)
    return quantize_graph(graph, calibrate(graph, [info.sample_input(graph, seed=0)]))


def _cold_and_cached_seconds(graph):
    cache = CompileCache()
    start = time.perf_counter()
    cold_result = compile_graph(graph, pipeline="O0", name=MODEL_KEY, cache=cache)
    cold = time.perf_counter() - start
    assert not cold_result.cache_hit

    cached = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        hit = compile_graph(graph, pipeline="O0", name=MODEL_KEY, cache=cache)
        cached = min(cached, time.perf_counter() - start)
        assert hit.cache_hit
        assert hit.model is cold_result.model
    return cold, cached


def test_resnet50_cached_compile_is_10x_faster():
    cold, cached = _cold_and_cached_seconds(_quantized_resnet())
    assert cached * MIN_SPEEDUP <= cold, (
        f"cached compile of {MODEL_KEY} takes {cached * 1e3:.2f} ms vs "
        f"{cold * 1e3:.2f} ms cold ({cold / cached:.1f}x); the cache lookup "
        f"must stay >= {MIN_SPEEDUP:.0f}x cheaper than a full compile"
    )


if __name__ == "__main__":
    graph = _quantized_resnet()
    cold, cached = _cold_and_cached_seconds(graph)
    print(f"cold compile:    {cold * 1e3:8.2f} ms")
    print(f"cached compile:  {cached * 1e3:8.2f} ms  ({cold / cached:,.0f}x)")
