"""Ablation: datatype choice (int8 vs bfloat16 vs int16).

Section II-A.6 / IV-D.4: 8-bit ops execute in one clock, bfloat16 in three
and int16 in four — the fallback types trade throughput for precision.
This bench times the same convolution body at each datatype.
"""

import pytest

from repro.dtypes import NcoreDType
from repro.nkl.schedule import conv2d_schedule

from tableutil import render_table

LAYERS = [
    (64, 64, 56, 56, 3, 3),
    (128, 128, 28, 28, 3, 4),
    (256, 256, 14, 14, 3, 6),
    (512, 512, 7, 7, 3, 3),
]


def compute_dtype_ablation():
    rows = []
    cycles = {}
    for dtype in (NcoreDType.INT8, NcoreDType.UINT8, NcoreDType.BF16, NcoreDType.INT16):
        total = sum(
            rep * conv2d_schedule(ci, co, h, w, k, k, dtype).cycles
            for ci, co, h, w, k, rep in LAYERS
        )
        cycles[dtype] = total
        rows.append(
            [
                dtype.value,
                total,
                f"{total / 2.5e9 * 1e6:.1f}",
                f"{total / cycles[NcoreDType.INT8]:.2f}x",
            ]
        )
    return cycles, rows


def test_ablation_dtype(benchmark, capsys):
    cycles, rows = benchmark(compute_dtype_ablation)
    with capsys.disabled():
        print()
        print(render_table(
            "Ablation: datatype vs convolution-body latency",
            ["dtype", "cycles", "time (us)", "vs int8"],
            rows,
        ))
    # The ratios approach the NPU issue latencies (3x for bf16, 4x int16)
    # as the inner loops dominate.
    assert cycles[NcoreDType.UINT8] == cycles[NcoreDType.INT8]
    assert cycles[NcoreDType.BF16] / cycles[NcoreDType.INT8] == pytest.approx(3.0, abs=0.1)
    assert cycles[NcoreDType.INT16] / cycles[NcoreDType.INT8] == pytest.approx(4.0, abs=0.1)
