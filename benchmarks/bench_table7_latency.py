"""Table VII: SingleStream latency of integrated chip-vendor submissions.

Regenerates the Centaur Ncore row from the simulator + system model and
prints it against the published competitor rows; the shape assertions are
the paper's claims (lowest latency on MobileNet and ResNet, near-best on
SSD).
"""


from repro.perf.mlperf import run_single_stream
from repro.perf.published import PUBLISHED_LATENCY_MS

from tableutil import CNN_ORDER, fmt, render_table, system


def compute_table7():
    simulated = {
        key: run_single_stream(system(key), queries=256).p90_latency_ms
        for key in CNN_ORDER
    }
    rows = [
        ["Centaur Ncore (simulated)"]
        + [f"{simulated[key]:.2f}" for key in CNN_ORDER]
        + ["-"]
    ]
    for vendor, row in PUBLISHED_LATENCY_MS.items():
        label = vendor + (" (paper)" if vendor == "Centaur Ncore" else "")
        rows.append(
            [label]
            + [fmt(row[k], 2, 0) if row[k] is not None else "-" for k in CNN_ORDER]
            + ["-"]
        )
    return simulated, rows


def test_table7_latency(benchmark, capsys):
    simulated, rows = benchmark(compute_table7)
    with capsys.disabled():
        print()
        print(render_table(
            "Table VII reproduction: SingleStream latency (ms)",
            ["Target system", "MobileNetV1", "ResNet50V1.5", "SSD-MobileNetV1", "GNMT"],
            rows,
        ))
    # Shape: simulated Ncore beats every published competitor on the
    # classification models, as the paper's Ncore does.
    for model in ("mobilenet_v1", "resnet50_v15"):
        for vendor, row in PUBLISHED_LATENCY_MS.items():
            if vendor == "Centaur Ncore" or row[model] is None:
                continue
            assert simulated[model] < row[model]
    # Magnitudes stay in the paper's regime.
    for model in CNN_ORDER:
        paper = PUBLISHED_LATENCY_MS["Centaur Ncore"][model]
        assert 0.5 * paper < simulated[model] < 1.5 * paper
