"""Design-space sweep wall-time guard.

``repro explore`` is only useful if a real grid turns around interactively;
this benchmark sweeps a 108-point grid (every axis but DDR) over MobileNet
twice — cold, then against the warm compile cache — and enforces:

- the **cold** sweep fits ``COLD_BUDGET_SECONDS`` (build + quantize once,
  one compile per distinct NcoreConfig);
- the compile cache works: distinct NcoreConfigs compile once each, and
  points differing only in SoC axes are pure cache hits;
- the result is deterministic: both sweeps emit byte-identical JSON.

Writes ``BENCH_explore.json`` next to the repo root when run directly.

Run:  python -m pytest benchmarks/bench_explore.py -q
"""

import json
import time
from pathlib import Path

from repro.explore import enumerate_grid, run_sweep

GRID = {
    "slices": (8, 16, 24, 32),
    "sram_rows": (1024, 2048, 4096),
    "ring_width_bits": (256, 512, 1024),
    "clock_ghz": (2.0, 2.5, 3.0),
}
COLD_BUDGET_SECONDS = 30.0
#: Distinct NcoreConfigs in GRID: slices x sram_rows x clock (ring is
#: SoC-only, so its axis multiplies points but not compilations).
DISTINCT_NCORE_CONFIGS = 4 * 3 * 3


def _run():
    points = enumerate_grid(GRID)
    start = time.perf_counter()
    cold = run_sweep(points, models=("mobilenet_v1",), seed=0)
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm = run_sweep(points, models=("mobilenet_v1",), seed=0)
    warm_seconds = time.perf_counter() - start
    return points, cold, cold_seconds, warm, warm_seconds


def test_sweep_meets_the_wall_time_budget():
    points, cold, cold_seconds, warm, warm_seconds = _run()
    assert len(points) >= 100
    assert cold_seconds < COLD_BUDGET_SECONDS, (
        f"{len(points)}-point sweep took {cold_seconds:.2f}s "
        f"(budget {COLD_BUDGET_SECONDS}s)"
    )
    # The cache must collapse SoC-only axes to hits.
    assert cold.cache_misses == DISTINCT_NCORE_CONFIGS
    assert cold.cache_hits == len(points) - DISTINCT_NCORE_CONFIGS
    # Determinism: identical grid + seed -> identical JSON.
    assert cold.to_json() == warm.to_json()
    assert len(cold.frontier) > 0


def record_baseline(path="BENCH_explore.json"):
    points, cold, cold_seconds, warm, warm_seconds = _run()
    payload = {
        "grid_points": len(points),
        "feasible_points": len(cold.feasible),
        "pareto_points": len(cold.frontier),
        "distinct_compiles": cold.cache_misses,
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "budget_seconds": COLD_BUDGET_SECONDS,
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


if __name__ == "__main__":
    print(json.dumps(record_baseline(), indent=2, sort_keys=True))
