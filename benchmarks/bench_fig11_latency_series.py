"""Fig. 11: latency of integrated chip-vendor submissions (log-scale chart).

Prints the chart's data series (one bar group per model, one bar per
vendor) with a text rendering of the log-scale bars.
"""

import math

from repro.perf.published import PUBLISHED_LATENCY_MS

from tableutil import CNN_ORDER, display_name, system


def compute_fig11_series():
    series = {
        "Centaur Ncore (simulated)": {
            key: system(key).single_stream_latency_seconds() * 1e3 for key in CNN_ORDER
        }
    }
    for vendor, row in PUBLISHED_LATENCY_MS.items():
        series[vendor] = {k: row[k] for k in CNN_ORDER}
    return series


def _bar(value_ms: float, lo=0.1, hi=20.0, width=40) -> str:
    span = math.log10(hi) - math.log10(lo)
    filled = int((math.log10(max(value_ms, lo)) - math.log10(lo)) / span * width)
    return "#" * max(1, filled)


def test_fig11_latency_series(benchmark, capsys):
    series = benchmark(compute_fig11_series)
    with capsys.disabled():
        print("\nFig. 11 reproduction: SingleStream latency (ms, log scale)")
        for model in CNN_ORDER:
            print(f"\n  {display_name(model)}")
            for vendor, values in series.items():
                value = values[model]
                if value is None:
                    continue
                print(f"    {vendor:<28} {value:7.2f} |{_bar(value)}")
    # The simulated series spans the same order of magnitude band as the
    # published results (the figure's point: results span multiple orders).
    sim = series["Centaur Ncore (simulated)"]
    published = [
        v[m]
        for vendor, v in series.items()
        for m in CNN_ORDER
        if vendor != "Centaur Ncore (simulated)" and v[m] is not None
    ]
    assert min(sim.values()) >= min(published) * 0.4
    assert max(sim.values()) <= max(published)
