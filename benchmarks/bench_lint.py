"""Wall-time guard for the static-analysis gate.

The ``repro.analyze`` pass stack runs strict on every ``compile_model`` /
``lower_segment`` call, so it must stay cheap relative to compilation
itself.  This benchmark holds the *full* analyzer stack — GIR rules plus
every segment's loadable and instruction-program rules — for the largest
zoo CNN (ResNet-50-v1.5, quantized through the benchmark path) under a
fixed wall-time budget, and re-asserts that the stack lints clean.

Run:  python -m pytest benchmarks/bench_lint.py -q
"""

import time

from repro.analyze import analyze_model
from repro.graph.passes import default_pipeline
from repro.models import PAPER_CHARACTERISTICS
from repro.quantize import calibrate, quantize_graph
from repro.runtime import compile_model

MODEL_KEY = "resnet50_v15"
ANALYSIS_BUDGET_SECONDS = 5.0
HAZARD_BUDGET_SECONDS = 1.0
REPEATS = 3


def _compiled_resnet():
    info = PAPER_CHARACTERISTICS[MODEL_KEY]
    graph = info.build()
    default_pipeline().run(graph)
    quantized = quantize_graph(graph, calibrate(graph, [info.sample_input(graph, seed=0)]))
    start = time.perf_counter()
    compiled = compile_model(quantized, optimize=False, name=MODEL_KEY, verify=False)
    return compiled, time.perf_counter() - start


def _min_analysis_seconds(compiled):
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        report = analyze_model(compiled)
        best = min(best, time.perf_counter() - start)
    return best, report


def _min_hazard_seconds(compiled):
    from repro.analyze import analyze_loadable_hazards

    best = float("inf")
    findings = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        findings = [
            finding
            for _, loadable in sorted(compiled.loadables.items())
            for finding in analyze_loadable_hazards(compiled.graph, loadable)
        ]
        best = min(best, time.perf_counter() - start)
    return best, findings


def test_resnet50_hazard_pass_under_budget():
    # The happens-before pass alone, over every lowered segment: it runs
    # inside the strict compile gate, so it must stay a small fraction of
    # the full analyzer budget.
    compiled, _ = _compiled_resnet()
    seconds, findings = _min_hazard_seconds(compiled)
    assert not findings, "\n".join(d.render() for d in findings)
    assert seconds < HAZARD_BUDGET_SECONDS, (
        f"hazard analysis of {MODEL_KEY} takes {seconds:.2f} s "
        f"(budget {HAZARD_BUDGET_SECONDS:.1f} s); the interval sweep has "
        f"become super-linear in the prefetch schedule"
    )


def test_resnet50_full_stack_under_budget():
    compiled, _ = _compiled_resnet()
    seconds, report = _min_analysis_seconds(compiled)
    assert report.ok, "\n".join(d.render() for d in report)
    assert seconds < ANALYSIS_BUDGET_SECONDS, (
        f"full-stack analysis of {MODEL_KEY} takes {seconds:.2f} s "
        f"(budget {ANALYSIS_BUDGET_SECONDS:.1f} s); an analyzer pass "
        f"has become super-linear in the model"
    )


if __name__ == "__main__":
    compiled, compile_seconds = _compiled_resnet()
    seconds, report = _min_analysis_seconds(compiled)
    hazard_seconds, findings = _min_hazard_seconds(compiled)
    print(f"compile (unverified):  {compile_seconds:8.3f} s")
    print(f"full-stack analysis:   {seconds:8.3f} s "
          f"({len(report)} finding(s), ok={report.ok})")
    print(f"hazard pass alone:     {hazard_seconds:8.3f} s "
          f"({len(findings)} finding(s))")
