"""Ablation: SIMD width (slice count) sweep.

Section II-A.4: the SIMD architecture "was easy to slice and expand as
needed for the area allocated".  This sweep re-times the ResNet-50 Ncore
portion at 4..32 slices (1..8 KB rows): peak throughput scales linearly
with breadth while the realized speedup flattens as per-pass overheads and
mapping waste grow — the quantitative version of the sizing decision.
"""


from repro.ncore import NcoreConfig
from repro.nkl.schedule import conv2d_schedule

from tableutil import render_table

# (cin, cout, h, w, k) x repeats: the ResNet-50 convolution body.
RESNET_LAYERS = [
    (3, 64, 112, 112, 7, 1),
    (64, 64, 56, 56, 1, 3), (64, 64, 56, 56, 3, 3), (64, 256, 56, 56, 1, 4),
    (256, 64, 56, 56, 1, 2), (256, 128, 28, 28, 1, 2), (128, 128, 28, 28, 3, 4),
    (128, 512, 28, 28, 1, 4), (512, 128, 28, 28, 1, 3), (512, 256, 14, 14, 1, 2),
    (256, 256, 14, 14, 3, 6), (256, 1024, 14, 14, 1, 6), (1024, 256, 14, 14, 1, 5),
    (1024, 512, 7, 7, 1, 2), (512, 512, 7, 7, 3, 3), (512, 2048, 7, 7, 1, 3),
]


def resnet_cycles_at_width(lanes: int) -> int:
    """Scale the Fig. 7 schedules to a different machine breadth: pass
    count scales inversely with the lane count (the slice knob)."""
    total = 0
    for cin, cout, h, w, k, repeats in RESNET_LAYERS:
        s = conv2d_schedule(cin, cout, h, w, k, k)
        width_factor = 4096 / lanes
        passes = max(1, round(s.passes * width_factor))
        total += repeats * (s.setup_cycles + passes * (s.inner_cycles + s.epilogue_cycles))
    return total


def compute_slice_sweep():
    rows = []
    baseline = None
    for slices in (4, 8, 16, 32):
        cfg = NcoreConfig(slices=slices)
        cycles = resnet_cycles_at_width(cfg.lanes)
        ms = cycles / cfg.clock_hz * 1e3
        if slices == 4:
            baseline = cycles
        rows.append(
            [
                slices,
                cfg.lanes,
                f"{cfg.peak_ops_per_second() / 1e12:.2f}",
                f"{ms:.3f}",
                f"{baseline / cycles:.2f}x",
            ]
        )
    return rows


def test_ablation_slices(benchmark, capsys):
    rows = benchmark(compute_slice_sweep)
    with capsys.disabled():
        print()
        print(render_table(
            "Ablation: slice count vs ResNet-50 Ncore-portion latency",
            ["Slices", "Lanes", "Peak TOPS", "Latency (ms)", "Speedup vs 4"],
            rows,
        ))
    speedups = [float(r[4][:-1]) for r in rows]
    # More slices always helps...
    assert speedups == sorted(speedups)
    # ...sub-linearly: doubling 16 -> 32 slices gains less than 2x.
    by_slices = {r[0]: float(r[3]) for r in rows}
    assert by_slices[16] / by_slices[32] < 2.0
    # The shipped 16-slice point still gets most of the 4->16 scaling.
    assert by_slices[4] / by_slices[16] > 2.5
