"""Ablation: the sparse-weight decompression engine.

Section VII: "The accelerator presented in this work includes a hardware
decompression engine for sparse weights, but does not exploit data
sparsity."  This bench measures what the engine buys on a weight-pruned
ResNet-50: compressed weight traffic shrinks the streaming DMA, cutting
the stalls the dense schedule pays.
"""

import numpy as np

from repro.graph import partition
from repro.graph.passes import default_pipeline
from repro.models import PAPER_CHARACTERISTICS, build_resnet50_v15
from repro.nkl.lower import compressed_weight_bytes, lower_segment
from repro.quantize import calibrate, quantize_graph

from tableutil import render_table

DMA_BYTES_PER_CYCLE = 102.4e9 / 2.5e9


def _pruned_resnet(sparsity: float):
    """Quantized ResNet-50 with the smallest weights zeroed per layer.

    Pruning happens in float; PTQ then maps the zeros to each tensor's
    zero point, which is the byte the NDU decompressor elides (it fills
    with the configured weight zero offset).
    """
    graph = build_resnet50_v15()
    default_pipeline().run(graph)
    if sparsity > 0:
        for tensor in graph.tensors.values():
            if tensor.is_constant and tensor.data.ndim == 4:
                flat = np.abs(tensor.data).reshape(-1)
                cut = np.quantile(flat, sparsity)
                tensor.data = np.where(
                    np.abs(tensor.data) < cut, 0.0, tensor.data
                ).astype(np.float32)
    info = PAPER_CHARACTERISTICS["resnet50_v15"]
    return quantize_graph(graph, calibrate(graph, [info.sample_input(graph)]))


def compute_sparsity_ablation():
    rows = []
    for sparsity in (0.0, 0.5, 0.8):
        graph = _pruned_resnet(sparsity)
        segments = [s for s in partition(graph) if s.target == "ncore"]
        dense_cycles = compressed_cycles = 0
        dense_bytes = packed_bytes = 0
        for segment in segments:
            dense = lower_segment(graph, segment, compress_sparse_weights=False)
            packed = lower_segment(graph, segment, compress_sparse_weights=True)
            dense_cycles += dense.total_cycles(DMA_BYTES_PER_CYCLE)
            compressed_cycles += packed.total_cycles(DMA_BYTES_PER_CYCLE)
            dense_bytes += dense.weight_image_bytes
            packed_bytes += packed.weight_image_bytes
        rows.append(
            [
                f"{sparsity:.0%}",
                f"{dense_bytes / 1e6:.1f}",
                f"{packed_bytes / 1e6:.1f}",
                f"{packed_bytes / dense_bytes:.2f}x",
                f"{dense_cycles / 2.5e9 * 1e3:.3f}",
                f"{compressed_cycles / 2.5e9 * 1e3:.3f}",
            ]
        )
    return rows


def test_ablation_sparsity(benchmark, capsys):
    rows = benchmark.pedantic(compute_sparsity_ablation, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(render_table(
            "Ablation: sparse-weight compression on (pruned) ResNet-50",
            ["pruned", "dense MB", "packed MB", "ratio", "dense ms", "packed ms"],
            rows,
        ))
    ratios = [float(r[3][:-1]) for r in rows]
    # Dense weights barely compress (bitmap overhead ~= savings); pruned
    # weights compress steeply and the Ncore portion shrinks with them.
    assert ratios[0] > 0.95
    assert ratios[1] < 0.70
    assert ratios[2] < 0.40
    dense_ms = [float(r[4]) for r in rows]
    packed_ms = [float(r[5]) for r in rows]
    assert packed_ms[2] <= dense_ms[2]


def test_compressed_bytes_matches_actual_encoder(benchmark):
    # The analytic size used by the scheduler equals what the NDU-format
    # encoder actually produces.
    from repro.ncore.ndu import compress

    rng = np.random.default_rng(0)
    data = rng.normal(size=(3, 3, 16, 16)).astype(np.float32)
    data[np.abs(data) < 0.8] = 0.0
    quantized = (data * 10).astype(np.int8)

    def check():
        analytic = compressed_weight_bytes(quantized)
        actual = compress(
            np.frombuffer(np.ascontiguousarray(quantized).tobytes(), dtype=np.uint8)
        ).size
        return analytic, actual

    analytic, actual = benchmark(check)
    assert analytic == actual
