"""Shared helpers for the table/figure reproduction benchmarks."""

from __future__ import annotations

from repro.models import PAPER_CHARACTERISTICS
from repro.perf.system import get_system

MODEL_ORDER = ["mobilenet_v1", "resnet50_v15", "ssd_mobilenet_v1", "gnmt"]
CNN_ORDER = MODEL_ORDER[:3]


def display_name(key: str) -> str:
    return PAPER_CHARACTERISTICS[key].display


def fmt(value, precision=2, width=10) -> str:
    if value is None:
        return "-".rjust(width)
    return f"{value:,.{precision}f}".rjust(width)


def render_table(title: str, header: list[str], rows: list[list]) -> str:
    """Plain-text table in the paper's row/column arrangement."""
    widths = [
        max(len(str(header[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(header))
    ]
    def line(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths, strict=False))
    bar = "-" * (sum(widths) + 2 * (len(widths) - 1))
    return "\n".join([title, bar, line(header), bar, *(line(r) for r in rows), bar])


def system(key: str):
    return get_system(key)
