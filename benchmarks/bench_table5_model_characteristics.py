"""Table V: evaluated benchmark characteristics (MACs, weights, MACs/weight)."""

import pytest

from repro.models import PAPER_CHARACTERISTICS

from tableutil import MODEL_ORDER, render_table


def compute_table5():
    rows = []
    for key in MODEL_ORDER:
        info = PAPER_CHARACTERISTICS[key]
        graph = info.build()
        macs, weights = graph.count_macs(), graph.count_weights()
        rows.append(
            [
                info.display,
                info.input_type.capitalize(),
                f"{macs / 1e9:.2f}B",
                f"{weights / 1e6:.1f}M",
                round(macs / weights),
                f"{info.paper_macs / 1e9:.2f}B",
                f"{info.paper_weights / 1e6:.1f}M",
                info.paper_macs_per_weight,
            ]
        )
    return rows


def test_table5_model_characteristics(benchmark, capsys):
    rows = benchmark(compute_table5)
    with capsys.disabled():
        print()
        print(render_table(
            "Table V reproduction: benchmark characteristics (ours vs paper)",
            ["Model", "Input", "MACs", "Weights", "MACs/wt",
             "paper MACs", "paper Wt", "paper M/w"],
            rows,
        ))
    by_model = {row[0]: row for row in rows}
    # CNN models within 5% of the paper on both axes.
    for display, paper_macs, paper_weights in [
        ("MobileNet-V1", 0.57, 4.2),
        ("ResNet-50-V1.5", 4.1, 26.0),
        ("SSD-MobileNet-V1", 1.2, 6.8),
    ]:
        row = by_model[display]
        assert float(row[2][:-1]) == pytest.approx(paper_macs, rel=0.05)
        assert float(row[3][:-1]) == pytest.approx(paper_weights, rel=0.06)
    # GNMT: weights match; MACs reflect a single greedy pass (the paper's
    # 3.9B includes beam-search re-execution — see repro.models.gnmt).
    gnmt = by_model["GNMT"]
    assert float(gnmt[3][:-1]) == pytest.approx(131, rel=0.05)
    assert gnmt[4] < 40  # by far the lowest arithmetic intensity
