"""Table VIII: Offline throughput of integrated chip-vendor submissions."""

import pytest

from repro.perf.mlperf import run_offline
from repro.perf.published import PUBLISHED_THROUGHPUT_IPS

from tableutil import MODEL_ORDER, render_table, system


def compute_table8():
    simulated = {
        key: run_offline(system(key), queries=1024).throughput_ips
        for key in MODEL_ORDER
    }
    rows = [
        ["Centaur Ncore (simulated)"]
        + [f"{simulated[key]:,.2f}" for key in MODEL_ORDER]
    ]
    for vendor, row in PUBLISHED_THROUGHPUT_IPS.items():
        label = vendor + (" (paper)" if vendor == "Centaur Ncore" else "")
        rows.append(
            [label]
            + [f"{row[k]:,.2f}" if row[k] is not None else "-" for k in MODEL_ORDER]
        )
    return simulated, rows


def test_table8_throughput(benchmark, capsys):
    simulated, rows = benchmark(compute_table8)
    with capsys.disabled():
        print()
        print(render_table(
            "Table VIII reproduction: Offline throughput (inputs/second)",
            ["Target system", "MobileNetV1", "ResNet50V1.5", "SSD-MobileNetV1", "GNMT"],
            rows,
        ))
    published = PUBLISHED_THROUGHPUT_IPS
    # Shape checks from section VI-B:
    # - Xavier leads Ncore on ResNet throughput (by ~1.8x in the paper);
    assert simulated["resnet50_v15"] < published["NVIDIA AGX Xavier"]["resnet50_v15"]
    # - MobileNet throughput is within ~25% of Xavier's;
    xavier = published["NVIDIA AGX Xavier"]["mobilenet_v1"]
    assert abs(simulated["mobilenet_v1"] - xavier) / xavier < 0.30
    # - the big Intel systems lead on raw throughput;
    assert simulated["resnet50_v15"] < published["(2x) Intel CLX 9282"]["resnet50_v15"]
    assert simulated["resnet50_v15"] < published["(2x) Intel NNP-I 1000"]["resnet50_v15"]
    # - Ncore crushes the other integrated parts (i3, SDM855);
    assert simulated["mobilenet_v1"] > 5 * published["Intel i3 1005G1"]["mobilenet_v1"]
    # - GNMT lands on the paper's submission.
    assert simulated["gnmt"] == pytest.approx(12.28, rel=0.15)
