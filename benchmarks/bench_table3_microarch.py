"""Table III: CNS vs Haswell vs Skylake Server microarchitecture."""

from repro.soc import CNS, HASWELL, SKYLAKE_SERVER

from tableutil import render_table


def compute_table3():
    rows = []
    fields = [
        ("L1I cache", lambda s: f"{s.l1i_kb}KB, {s.l1i_ways}-way"),
        ("L1D cache", lambda s: f"{s.l1d_kb}KB, {s.l1d_ways}-way"),
        ("L2 cache", lambda s: f"{s.l2_kb}KB, {s.l2_ways}-way"),
        ("L3 cache/core", lambda s: f"{s.l3_per_core_mb}MB shared"),
        ("LD buffer size", lambda s: s.load_buffer),
        ("ST buffer size", lambda s: s.store_buffer),
        ("ROB size", lambda s: s.rob_size),
        ("Scheduler size", lambda s: s.scheduler_size),
    ]
    for label, getter in fields:
        rows.append([label, getter(CNS), getter(HASWELL), getter(SKYLAKE_SERVER)])
    return rows


def test_table3_microarch(benchmark, capsys):
    rows = benchmark(compute_table3)
    with capsys.disabled():
        print()
        print(render_table(
            "Table III reproduction: CNS vs Haswell vs Skylake Server",
            ["", "CNS", "Haswell", "Skylake Server"],
            rows,
        ))
    # The paper's summary sentences hold over the data.
    assert CNS.l2_ways > HASWELL.l2_ways
    assert CNS.l3_per_core_mb > SKYLAKE_SERVER.l3_per_core_mb
    assert CNS.rob_size < SKYLAKE_SERVER.rob_size
