"""Ablation: Ncore DMA through the L3 cache vs direct to DRAM.

Section IV-A: "Ncore also has the ability to use DMA to read CHA's shared
L3 caches ... The extra hop through the L3 minimally increases the latency
to DRAM, so the feature isn't needed for purely streaming workloads" — and
the L3 path was *not* used in the paper's evaluation.  This bench measures
both paths on the simulator and verifies the coherence benefit the direct
path lacks.
"""

import numpy as np

from repro.isa import assemble
from repro.ncore import DmaDescriptor
from repro.soc import ChaSoc

from tableutil import render_table

ROWS = 16  # 64 KB transfer


def run_both_paths():
    soc = ChaSoc()
    ncore = soc.ncore
    ncore.dma_read.configure_window(0)
    payload = np.arange(ROWS * 4096, dtype=np.uint32).astype(np.uint8)
    soc.dram.write(0, payload.tobytes())
    # A CPU store still dirty in the L3.
    soc.l3.write_line(0, b"\xEE" * 64)

    results = {}
    for label, through_l3, ram_row in (("direct", False, 0), ("through L3", True, 64)):
        ncore.reset()
        ncore.dma_read.busy_until = 0
        ncore.set_dma_descriptor(
            0,
            DmaDescriptor(False, False, ram_row=ram_row, rows=ROWS, dram_addr=0, through_l3=through_l3),
        )
        ncore.execute_program(assemble("dmastart 0\ndmawait 1\nhalt"))
        first = np.frombuffer(ncore.read_data_ram(ram_row * 4096, 64), np.uint8)
        results[label] = {
            "cycles": ncore.dma_stall_cycles,
            "sees_cpu_store": bool((first == 0xEE).all()),
        }
    return results


def test_ablation_l3_dma(benchmark, capsys):
    results = benchmark(run_both_paths)
    with capsys.disabled():
        print()
        print(render_table(
            "Ablation: DMA read path (64 KB transfer)",
            ["Path", "Stall cycles", "Coherent w/ CPU stores"],
            [
                [label, r["cycles"], "yes" if r["sees_cpu_store"] else "no"]
                for label, r in results.items()
            ],
        ))
    direct, through = results["direct"], results["through L3"]
    # The L3 hop adds latency...
    assert through["cycles"] > direct["cycles"]
    # ...but "minimally" — a small fraction of the transfer time.
    assert (through["cycles"] - direct["cycles"]) / direct["cycles"] < 0.10
    # And only the L3 path observes CPU stores that haven't reached DRAM.
    assert through["sees_cpu_store"]
    assert not direct["sees_cpu_store"]
