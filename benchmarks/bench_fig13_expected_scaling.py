"""Fig. 13: expected maximum throughput vs x86 core count.

"Assumes batching so that x86 overhead runs concurrently with Ncore,
hiding the x86 latency."  Printed for both the simulated portions and the
paper's Table IX portions; the saturation core counts are the paper's
reading of the figure (2 / ~4 / 5 cores).
"""

from repro.perf.published import PAPER_WORKLOAD_SPLIT_MS
from repro.perf.scaling import cores_to_saturate, expected_throughput

from tableutil import CNN_ORDER, display_name, render_table, system


def compute_fig13():
    rows = []
    saturation = {}
    for key in CNN_ORDER:
        sys = system(key)
        portion = sys.x86_portion()
        t_nc = sys.ncore_seconds()
        series = [round(sys.expected_throughput_ips(n)) for n in range(1, 9)]
        saturation[key] = cores_to_saturate(t_nc, portion.total_seconds)
        rows.append([display_name(key) + " (simulated)"] + series)
        paper = PAPER_WORKLOAD_SPLIT_MS[key]
        paper_series = [
            round(expected_throughput(paper["ncore"] * 1e-3, paper["x86"] * 1e-3, n))
            for n in range(1, 9)
        ]
        rows.append([display_name(key) + " (paper Table IX)"] + paper_series)
    return saturation, rows


def test_fig13_expected_scaling(benchmark, capsys):
    saturation, rows = benchmark(compute_fig13)
    with capsys.disabled():
        print()
        print(render_table(
            "Fig. 13 reproduction: expected max throughput (IPS) vs x86 cores",
            ["Model", "1", "2", "3", "4", "5", "6", "7", "8"],
            rows,
        ))
        print(f"\n  Saturation core counts (simulated): {saturation}")
    # The paper's ordering: ResNet saturates first, SSD needs the most
    # cores; with the paper's Table IX numbers the counts are 2 / ~4 / 5.
    assert saturation["resnet50_v15"] < saturation["mobilenet_v1"]
    assert saturation["mobilenet_v1"] <= saturation["ssd_mobilenet_v1"]
    paper = PAPER_WORKLOAD_SPLIT_MS
    assert cores_to_saturate(paper["resnet50_v15"]["ncore"] * 1e-3,
                             paper["resnet50_v15"]["x86"] * 1e-3) == 2
    assert cores_to_saturate(paper["ssd_mobilenet_v1"]["ncore"] * 1e-3,
                             paper["ssd_mobilenet_v1"]["x86"] * 1e-3) == 5
    # Every expected series is monotone non-decreasing in cores.
    for row in rows:
        values = row[1:]
        assert all(a <= b for a, b in zip(values, values[1:], strict=False))
