"""Table IX: proportions of x86 and Ncore work in total latency."""

import pytest

from repro.perf.published import PAPER_WORKLOAD_SPLIT_MS

from tableutil import CNN_ORDER, display_name, render_table, system


def compute_table9():
    rows = []
    splits = {}
    for key in CNN_ORDER:
        split = system(key).workload_split()
        splits[key] = split
        paper = PAPER_WORKLOAD_SPLIT_MS[key]
        rows.append(
            [
                display_name(key),
                f"{split['total'] * 1e3:.2f}ms",
                f"{split['ncore'] * 1e3:.2f}ms ({split['ncore'] / split['total']:.0%})",
                f"{split['x86'] * 1e3:.2f}ms ({split['x86'] / split['total']:.0%})",
                f"{paper['total']:.2f}ms",
                f"{paper['ncore']:.2f}ms ({paper['ncore'] / paper['total']:.0%})",
                f"{paper['x86']:.2f}ms ({paper['x86'] / paper['total']:.0%})",
            ]
        )
    return splits, rows


def test_table9_workload_split(benchmark, capsys):
    splits, rows = benchmark(compute_table9)
    with capsys.disabled():
        print()
        print(render_table(
            "Table IX reproduction: Ncore vs x86 latency decomposition",
            ["Model", "Total", "Ncore portion", "x86 portion",
             "paper total", "paper Ncore", "paper x86"],
            rows,
        ))
    fraction = {k: s["ncore"] / s["total"] for k, s in splits.items()}
    # The decomposition's shape: ResNet is Ncore-dominated, SSD is
    # x86-dominated, MobileNet in between (paper: 68% / 23% / 33%).
    assert fraction["resnet50_v15"] > 0.55
    assert fraction["ssd_mobilenet_v1"] < 0.35
    assert (
        fraction["resnet50_v15"]
        > fraction["mobilenet_v1"]
        > fraction["ssd_mobilenet_v1"]
    )
    for key in CNN_ORDER:
        paper = PAPER_WORKLOAD_SPLIT_MS[key]
        assert fraction[key] == pytest.approx(paper["ncore"] / paper["total"], abs=0.15)
