"""Scale-out: multi-socket throughput projection.

Section I: "The x86 SoC platform can further scale out performance via
multiple sockets, systems, or third-party PCIe accelerators."  This bench
projects ResNet-50 Offline throughput across 1..4 CHA sockets and checks
the claims: near-linear throughput scaling, unchanged SingleStream latency,
and the two-socket system overtaking the Xavier submission.
"""


from repro.perf.published import PUBLISHED_THROUGHPUT_IPS
from repro.soc.multisocket import MultiSocketSystem

from tableutil import render_table, system


def compute_scaleout():
    base = system("resnet50_v15")
    single_ips = base.offline_throughput_ips()
    latency_ms = base.single_stream_latency_seconds() * 1e3
    rows = []
    for sockets in (1, 2, 4):
        multi = MultiSocketSystem(sockets=sockets)
        rows.append(
            [
                sockets,
                multi.total_x86_cores(),
                f"{multi.offline_throughput_ips(single_ips):,.0f}",
                f"{multi.single_stream_latency_seconds(latency_ms / 1e3) * 1e3:.2f}",
                f"{multi.scaling_factor() / sockets:.1%}",
            ]
        )
    return single_ips, rows


def test_scaleout(benchmark, capsys):
    single_ips, rows = benchmark(compute_scaleout)
    with capsys.disabled():
        print()
        print(render_table(
            "Scale-out: ResNet-50 Offline throughput across CHA sockets",
            ["Sockets", "x86 cores", "Offline IPS", "SingleStream (ms)", "efficiency"],
            rows,
        ))
    # Latency does not improve with sockets; throughput nearly doubles.
    assert rows[0][3] == rows[1][3] == rows[2][3]
    two_socket = float(rows[1][2].replace(",", ""))
    assert 1.9 * single_ips < two_socket <= 2.0 * single_ips
    # Two sockets overtake the Xavier ResNet submission.
    assert two_socket > PUBLISHED_THROUGHPUT_IPS["NVIDIA AGX Xavier"]["resnet50_v15"]
