"""Section VI-B's normalized comparisons: per-ICE and per-Xeon-core ratios.

"The 2x NNP-I 1000 achieved 10,567 IPS on ResNet-50-V1.5, which equates to
440 IPS per 4096-byte ICE ... Ncore's score of 1218 IPS is 2.77x higher
than a single 4096-byte ICE" and "Ncore's throughput is equivalent to
approximately 23 of these VNNI-enabled Xeon cores."
"""

import pytest

from repro.perf import published

from tableutil import render_table, system


def compute_normalized():
    simulated = system("resnet50_v15").offline_throughput_ips()
    per_ice = published.per_ice_resnet_ips()
    per_core = published.per_core_resnet_ips()
    return {
        "simulated_ips": simulated,
        "paper_ips": published.PUBLISHED_THROUGHPUT_IPS["Centaur Ncore"]["resnet50_v15"],
        "per_ice": per_ice,
        "per_core": per_core,
        "paper_vs_ice": published.ncore_per_ice_speedup(),
        "sim_vs_ice": simulated / per_ice,
        "paper_vs_cores": published.ncore_vnni_core_equivalence(),
        "sim_vs_cores": simulated / per_core,
    }


def test_vendor_normalized(benchmark, capsys):
    r = benchmark(compute_normalized)
    with capsys.disabled():
        print()
        print(render_table(
            "Section VI-B reproduction: normalized ResNet-50 comparisons",
            ["Metric", "Paper", "Simulated"],
            [
                ["Ncore ResNet-50 IPS", f"{r['paper_ips']:.0f}", f"{r['simulated_ips']:.0f}"],
                ["vs one NNP-I ICE (same 4096-B width)", f"{r['paper_vs_ice']:.2f}x", f"{r['sim_vs_ice']:.2f}x"],
                ["VNNI Xeon core equivalence", f"{r['paper_vs_cores']:.1f} cores", f"{r['sim_vs_cores']:.1f} cores"],
            ],
        ))
    # The paper's derived constants hold exactly...
    assert r["per_ice"] == pytest.approx(440, abs=1)
    assert r["per_core"] == pytest.approx(53.3, abs=0.1)
    assert r["paper_vs_ice"] == pytest.approx(2.77, abs=0.01)
    assert r["paper_vs_cores"] == pytest.approx(22.9, abs=0.3)
    # ...and the simulated Ncore keeps the same multi-x advantages.
    assert r["sim_vs_ice"] > 2.0
    assert r["sim_vs_cores"] > 15
