"""Table II: peak throughput (GOPS) of one CNS core vs Ncore per datatype."""

import pytest

from repro.dtypes import NcoreDType
from repro.ncore import NcoreConfig
from repro.soc import X86Core

from tableutil import render_table


def compute_table2():
    cfg = NcoreConfig()
    core = X86Core()
    rows = [
        [
            "1x CNS x86 2.5 GHz",
            round(core.peak_ops(NcoreDType.INT8) / 1e9),
            round(core.peak_ops(NcoreDType.BF16) / 1e9),
            round(core.peak_ops(None) / 1e9),
        ],
        [
            "Ncore 2.5 GHz",
            round(cfg.peak_ops_per_second(1) / 1e9),
            round(cfg.peak_ops_per_second(3) / 1e9),
            "N/A",
        ],
    ]
    return rows


def test_table2_peak_throughput(benchmark, capsys):
    rows = benchmark(compute_table2)
    with capsys.disabled():
        print()
        print(render_table(
            "Table II reproduction: peak throughput (GOPS)",
            ["Processor", "8b", "bfloat16", "FP32"],
            rows,
        ))
    cns, ncore = rows
    assert cns[1] == 106 and cns[2] == 80 and cns[3] == 80
    assert ncore[1] == 20480
    assert ncore[2] == pytest.approx(6826, abs=2)
    # Ncore's 8-bit peak is ~193x one x86 core.
    assert ncore[1] / cns[1] == pytest.approx(193, abs=1)
