"""Guard for the observability zero-cost contract.

Section IV-F claims the debug fabric "poses no performance penalty on
Ncore"; the software mirrors that with null-object defaults — when no
tracer/metrics registry is installed, every instrumentation site reduces
to one module-global lookup plus an ``enabled`` check, placed at per-run
(not per-cycle) granularity.

Two assertions keep that true as instrumentation spreads:

- the workload from ``bench_simulator.py`` must run within 2% of its speed
  with a *live* tracer+registry installed (catches anyone adding
  per-instruction spans to the hot loop), and
- the null-path guard itself must cost <2% of one workload run even if
  every site fired hundreds of times (catches unguarded work ahead of the
  ``enabled`` check).

Run:  python -m pytest benchmarks/bench_obs_overhead.py -q
"""

import time

from bench_simulator import build_machine

from repro import obs
from repro.obs.attrib import get_attrib
from repro.obs.context import mint_trace
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer

REPEATS = 30
OVERHEAD_BUDGET = 0.02
# Workload executions per timed sample: a single run is ~2 ms, too small
# to resolve a 2% budget against scheduler/timer jitter in CI containers.
RUNS_PER_SAMPLE = 5


def _min_seconds(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _timed_pair():
    """Interleaved min-of-repeats: null path vs live-tracer path.

    The tracer/registry persist across repeats so the live side measures
    steady-state instrumentation (the serving case: one registry per
    run, warm metric objects), not first-touch metric creation.
    """
    machine, program = build_machine()

    def run():
        machine.reset()
        machine.execute_program(program)

    run()  # warm up caches / JIT-free but allocator-warm
    tracer = obs.Tracer()
    registry = obs.MetricsRegistry()
    with obs.observe(tracer=tracer, metrics=registry):
        run()  # warm the live path too (creates the bound metrics)
    # Keep null/live samples of one repeat adjacent and compare them as a
    # pair: CPU frequency and cache state drift slowly in CI containers,
    # so the paired ratio is far more stable than a global min/min.
    best_ratio = float("inf")
    null_best = live_best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(RUNS_PER_SAMPLE):
            run()
        null_sample = time.perf_counter() - start
        with obs.observe(tracer=tracer, metrics=registry):
            start = time.perf_counter()
            for _ in range(RUNS_PER_SAMPLE):
                run()
            live_sample = time.perf_counter() - start
        best_ratio = min(best_ratio, live_sample / null_sample)
        null_best = min(null_best, null_sample)
        live_best = min(live_best, live_sample)
    return null_best, null_best * best_ratio


def test_live_tracer_overhead_under_budget():
    null_best, live_best = _timed_pair()
    overhead = live_best / null_best - 1.0
    assert overhead < OVERHEAD_BUDGET, (
        f"live tracer costs {overhead:.1%} on the simulator workload "
        f"(null {null_best * 1e3:.3f} ms, live {live_best * 1e3:.3f} ms); "
        f"instrumentation crept into the hot loop"
    )


def test_labelled_metrics_and_trace_propagation_under_budget():
    # Serving-grade telemetry per run: a minted trace context with a
    # child span, plus labelled counter/windowed-histogram updates — the
    # executor's per-query bookkeeping, at per-run granularity.  Timed
    # directly (the end-to-end delta is below CI noise at a ~2 ms
    # workload) and bounded against one workload run, like the null
    # guard below.
    machine, program = build_machine()

    def run():
        machine.reset()
        machine.execute_program(program)

    run()
    # One registry/tracer for the whole serving run (as run_server does);
    # the per-run cost under test is the updates, not metric creation.
    tracer = obs.Tracer()
    registry = obs.MetricsRegistry()
    sequence = 0

    def bookkeeping(n=200):
        nonlocal sequence
        for _ in range(n):
            context = mint_trace("bench", sequence)
            sequence += 1
            registry.counter("bench.runs", labels={"model": "bench"}).inc()
            registry.windowed_histogram(
                "bench.latency", unit="s", labels={"model": "bench"},
            ).observe(1e-3, ts=float(sequence))
            tracer.add_span("bench.run", "bench", start_us=0.0,
                            duration_us=1.0, context=context.child("ncore"))

    with obs.observe(tracer=tracer, metrics=registry):
        bookkeeping(1)  # warm: creates the labelled metric objects
        per_run = _min_seconds(bookkeeping) / 200
    workload = _min_seconds(run, repeats=10)
    assert per_run < OVERHEAD_BUDGET * workload, (
        f"labelled metrics + trace propagation cost {per_run * 1e6:.1f} us "
        f"per run against a {workload * 1e3:.3f} ms workload "
        f"({per_run / workload:.1%} > {OVERHEAD_BUDGET:.0%})"
    )


def test_null_guard_cost_negligible():
    # The full per-site null cost: global lookup + enabled check, for the
    # tracer, the metrics registry and the attribution collector.
    def guards(n=10_000):
        for _ in range(n):
            if get_tracer().enabled:
                raise AssertionError("tracer unexpectedly installed")
            if get_metrics().enabled:
                raise AssertionError("metrics unexpectedly installed")
            if get_attrib().enabled:
                raise AssertionError("attrib unexpectedly installed")

    machine, program = build_machine()

    def run():
        machine.reset()
        machine.execute_program(program)

    run()
    # Each loop iteration exercises three sites (one per null object).
    guard_cost = _min_seconds(guards) / 30_000
    workload = _min_seconds(run, repeats=10)
    # Even if every run touched 500 instrumentation sites, the null path
    # must stay under the budget.
    assert guard_cost * 500 < OVERHEAD_BUDGET * workload, (
        f"null guard costs {guard_cost * 1e9:.0f} ns/site against a "
        f"{workload * 1e3:.3f} ms workload"
    )


if __name__ == "__main__":
    null_best, live_best = _timed_pair()
    print(f"workload (null tracer): {null_best * 1e3:8.3f} ms")
    print(f"workload (live tracer): {live_best * 1e3:8.3f} ms "
          f"({live_best / null_best - 1.0:+.2%})")
