"""Guard for the observability zero-cost contract.

Section IV-F claims the debug fabric "poses no performance penalty on
Ncore"; the software mirrors that with null-object defaults — when no
tracer/metrics registry is installed, every instrumentation site reduces
to one module-global lookup plus an ``enabled`` check, placed at per-run
(not per-cycle) granularity.

Two assertions keep that true as instrumentation spreads:

- the workload from ``bench_simulator.py`` must run within 2% of its speed
  with a *live* tracer+registry installed (catches anyone adding
  per-instruction spans to the hot loop), and
- the null-path guard itself must cost <2% of one workload run even if
  every site fired hundreds of times (catches unguarded work ahead of the
  ``enabled`` check).

Run:  python -m pytest benchmarks/bench_obs_overhead.py -q
"""

import time

from bench_simulator import build_machine

from repro import obs
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer

REPEATS = 30
OVERHEAD_BUDGET = 0.02


def _min_seconds(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _timed_pair():
    """Interleaved min-of-repeats: null path vs live-tracer path."""
    machine, program = build_machine()

    def run():
        machine.reset()
        machine.execute_program(program)

    run()  # warm up caches / JIT-free but allocator-warm
    null_best = live_best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        run()
        null_best = min(null_best, time.perf_counter() - start)
        with obs.observe():
            start = time.perf_counter()
            run()
            live_best = min(live_best, time.perf_counter() - start)
    return null_best, live_best


def test_live_tracer_overhead_under_budget():
    null_best, live_best = _timed_pair()
    overhead = live_best / null_best - 1.0
    assert overhead < OVERHEAD_BUDGET, (
        f"live tracer costs {overhead:.1%} on the simulator workload "
        f"(null {null_best * 1e3:.3f} ms, live {live_best * 1e3:.3f} ms); "
        f"instrumentation crept into the hot loop"
    )


def test_null_guard_cost_negligible():
    # The full per-site null cost: global lookup + enabled check, for both
    # the tracer and the metrics registry.
    def guards(n=10_000):
        for _ in range(n):
            if get_tracer().enabled:
                raise AssertionError("tracer unexpectedly installed")
            if get_metrics().enabled:
                raise AssertionError("metrics unexpectedly installed")

    machine, program = build_machine()

    def run():
        machine.reset()
        machine.execute_program(program)

    run()
    guard_cost = _min_seconds(guards) / 10_000
    workload = _min_seconds(run, repeats=10)
    # Even if every run touched 500 instrumentation sites, the null path
    # must stay under the budget.
    assert guard_cost * 500 < OVERHEAD_BUDGET * workload, (
        f"null guard costs {guard_cost * 1e9:.0f} ns/site against a "
        f"{workload * 1e3:.3f} ms workload"
    )


if __name__ == "__main__":
    null_best, live_best = _timed_pair()
    print(f"workload (null tracer): {null_best * 1e3:8.3f} ms")
    print(f"workload (live tracer): {live_best * 1e3:8.3f} ms "
          f"({live_best / null_best - 1.0:+.2%})")
