"""Unit tests for the x86 workload model (Table IX components)."""

import pytest

from repro.perf.workloads import (
    HARNESS_FIXED_SECONDS,
    PER_NODE_DISPATCH_SECONDS,
    preprocess_seconds,
    x86_portion_seconds,
)
from repro.soc.x86 import X86Core


class TestPreprocess:
    def test_image_cost_scales_with_pixels(self):
        core = X86Core()
        small = preprocess_seconds("image", 224 * 224 * 3, core)
        large = preprocess_seconds("image", 300 * 300 * 3, core)
        assert large > small
        assert large / small == pytest.approx((300 / 224) ** 2, rel=0.05)

    def test_image_preprocess_sub_millisecond(self):
        # A 224x224 preprocess is a fraction of the 0.22 ms MobileNet x86
        # portion (Table IX) — most of that portion is software overhead.
        core = X86Core()
        assert preprocess_seconds("image", 224 * 224 * 3, core) < 0.2e-3

    def test_text_cost_is_small_and_fixed(self):
        core = X86Core()
        assert preprocess_seconds("text", 100, core) < 50e-6


class TestX86Portion:
    def _portion(self, nodes=50, graph_seconds=0.0, nonbatchable=0.0):
        from repro.perf.system import get_system

        model = get_system("mobilenet_v1").compiled
        return x86_portion_seconds(
            model, "image", 224 * 224 * 3, graph_seconds,
            nonbatchable_graph_seconds=nonbatchable,
        )

    def test_components_sum(self):
        portion = self._portion(graph_seconds=1e-4)
        assert portion.total_seconds == pytest.approx(
            portion.preprocess_seconds
            + portion.graph_seconds
            + portion.framework_seconds
        )

    def test_framework_includes_per_node_dispatch(self):
        from repro.perf.system import get_system

        model = get_system("mobilenet_v1").compiled
        portion = x86_portion_seconds(model, "image", 224 * 224 * 3, 0.0)
        expected = (
            PER_NODE_DISPATCH_SECONDS * len(model.graph.nodes) + HARNESS_FIXED_SECONDS
        )
        assert portion.framework_seconds == pytest.approx(expected)

    def test_nonbatchable_fraction(self):
        portion = self._portion(graph_seconds=4e-4, nonbatchable=2e-4)
        nonbatchable = portion.total_seconds * (1 - portion.batchable_fraction)
        assert nonbatchable == pytest.approx(2e-4, rel=1e-6)

    def test_fully_batchable_by_default(self):
        portion = self._portion(graph_seconds=1e-4)
        assert portion.batchable_fraction == pytest.approx(1.0)


class TestBatchedAmortization:
    """ncore_seconds_batched: the 'batch 64 to increase arithmetic
    intensity' model (section VI-A)."""

    def test_pinned_model_unchanged_by_batching(self):
        from repro.perf.system import get_system

        system = get_system("mobilenet_v1")  # weights pinned
        single = system.ncore_seconds_batched(1)
        batched = system.ncore_seconds_batched(64)
        assert batched == pytest.approx(single, rel=0.01)

    def test_streamed_model_amortizes(self):
        from repro.perf.system import get_system

        system = get_system("gnmt")  # weights streamed every step
        per_item = [system.ncore_seconds_batched(b) for b in (1, 8, 64)]
        assert per_item[0] > per_item[1] > per_item[2]
        # Batch 64 amortizes the 260 MB weight stream by >10x.
        assert per_item[0] / per_item[2] > 10

    def test_batch_must_be_positive(self):
        from repro.perf.system import get_system

        with pytest.raises(ValueError):
            get_system("mobilenet_v1").ncore_seconds_batched(0)

    def test_amortization_saturates_at_compute_bound(self):
        from repro.perf.system import get_system

        system = get_system("gnmt")
        big = system.ncore_seconds_batched(1024)
        huge = system.ncore_seconds_batched(8192)
        assert huge == pytest.approx(big, rel=0.05)
