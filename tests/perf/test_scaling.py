"""Tests for the Fig. 13 / Fig. 14 core-count scaling models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.perf.published import PAPER_WORKLOAD_SPLIT_MS
from repro.perf.scaling import (
    cores_to_saturate,
    expected_throughput,
    observed_throughput,
)


def paper_portions(model):
    row = PAPER_WORKLOAD_SPLIT_MS[model]
    return row["ncore"] * 1e-3, row["x86"] * 1e-3


class TestExpected:
    def test_single_core_is_fully_serial(self):
        t_nc, t_x86 = paper_portions("resnet50_v15")
        assert expected_throughput(t_nc, t_x86, 1) == pytest.approx(1 / (t_nc + t_x86))

    def test_saturates_at_ncore_bound(self):
        t_nc, t_x86 = paper_portions("resnet50_v15")
        assert expected_throughput(t_nc, t_x86, 8) == pytest.approx(1 / t_nc)

    def test_monotone_in_cores(self):
        t_nc, t_x86 = paper_portions("mobilenet_v1")
        values = [expected_throughput(t_nc, t_x86, n) for n in range(1, 9)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:], strict=False))

    def test_paper_core_requirements(self):
        # Fig. 13 reading: ResNet-50 saturates with 2 cores, MobileNet with
        # ~4 and SSD-MobileNet with 5 (the paper's stated numbers; with the
        # rounded Table IX values MobileNet's boundary case lands on 3).
        resnet = cores_to_saturate(*paper_portions("resnet50_v15"))
        mobilenet = cores_to_saturate(*paper_portions("mobilenet_v1"))
        ssd = cores_to_saturate(*paper_portions("ssd_mobilenet_v1"))
        assert resnet == 2
        assert mobilenet in (3, 4)
        assert ssd == 5
        assert resnet < mobilenet < ssd

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            expected_throughput(1e-3, 1e-3, 0)

    @given(
        st.floats(1e-5, 1e-2),
        st.floats(1e-5, 1e-2),
        st.integers(1, 16),
    )
    def test_never_exceeds_ncore_bound(self, t_nc, t_x86, cores):
        assert expected_throughput(t_nc, t_x86, cores) <= 1 / t_nc + 1e-6


class TestObserved:
    def test_observed_below_expected(self):
        # Fig. 14's curves sit under Fig. 13's: "limited by other x86
        # overhead not accounted" for.
        t_nc, t_x86 = paper_portions("mobilenet_v1")
        for cores in range(2, 9):
            assert observed_throughput(t_nc, t_x86, cores) < expected_throughput(
                t_nc, t_x86, cores
            )

    def test_observed_matches_paper_at_8_cores(self):
        # Calibration check: the observed model at 8 cores lands near the
        # paper's submitted throughputs (computed from Table IX portions).
        t_nc, t_x86 = paper_portions("resnet50_v15")
        assert observed_throughput(t_nc, t_x86, 8) == pytest.approx(1218, rel=0.05)
        t_nc, t_x86 = paper_portions("mobilenet_v1")
        assert observed_throughput(t_nc, t_x86, 8) == pytest.approx(6042, rel=0.10)

    def test_batching_speedup_shape(self):
        # Section VI-C: batching yields ~2x for MobileNet but only ~1.3x
        # for ResNet (x86 share 67% vs 32%).
        t_nc, t_x86 = paper_portions("mobilenet_v1")
        mobilenet_speedup = observed_throughput(t_nc, t_x86, 8) * (t_nc + t_x86)
        t_nc, t_x86 = paper_portions("resnet50_v15")
        resnet_speedup = observed_throughput(t_nc, t_x86, 8) * (t_nc + t_x86)
        assert mobilenet_speedup == pytest.approx(2.0, abs=0.35)
        assert resnet_speedup == pytest.approx(1.3, abs=0.2)
        assert mobilenet_speedup > resnet_speedup

    def test_single_core_equals_serial(self):
        t_nc, t_x86 = paper_portions("ssd_mobilenet_v1")
        assert observed_throughput(t_nc, t_x86, 1) == pytest.approx(1 / (t_nc + t_x86))

    def test_monotone_in_cores(self):
        t_nc, t_x86 = paper_portions("ssd_mobilenet_v1")
        values = [observed_throughput(t_nc, t_x86, n) for n in range(1, 9)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:], strict=False))
