"""Engine-produced SingleStream/Offline vs the pre-engine harness.

The recorded values below were produced by the analytic (pre-engine)
harness at seed 0 on the four zoo systems; the engine re-expression must
stay within 1% of them (acceptance criterion for the refactor).  The
Offline edge cases pin the partial-batch behaviour: a trailing partial
batch is neither dropped nor double-counted.
"""

import pytest

from repro.perf.mlperf import run_offline, run_single_stream
from repro.perf.system import get_system

# (mean_latency_s, p90_latency_s, offline_ips) at seed 0,
# queries=1024 (SingleStream) / queries=4096, batch=64, cores=8 (Offline).
PRE_ENGINE_BASELINE = {
    "mobilenet_v1": (0.000226629608785106, 0.00023098133628745226, 8163.775483737591),
    "resnet50_v15": (0.000839631496264597, 0.0008557540474780858, 1747.4370241044574),
    "ssd_mobilenet_v1": (0.0010948358649663977, 0.001115858834425993, 912.8290838262217),
    # Re-recorded when GNMT's encoder moved to lstm_step and bf16-region
    # reshapes joined the Ncore partition (fewer x86 islands and offloads).
    "gnmt": (0.10783783887470308, 0.10990853427827506, 13.786551225958789),
}


class TestBaselineRegression:
    @pytest.mark.parametrize("key", sorted(PRE_ENGINE_BASELINE))
    def test_single_stream_within_one_percent(self, key):
        mean, p90, _ = PRE_ENGINE_BASELINE[key]
        result = run_single_stream(get_system(key), queries=1024, seed=0)
        assert result.mean_latency_seconds == pytest.approx(mean, rel=0.01)
        assert result.p90_latency_seconds == pytest.approx(p90, rel=0.01)

    @pytest.mark.parametrize("key", sorted(PRE_ENGINE_BASELINE))
    def test_offline_within_one_percent(self, key):
        _, _, ips = PRE_ENGINE_BASELINE[key]
        result = run_offline(get_system(key), queries=4096, batch_size=64, cores=8, seed=0)
        assert result.throughput_ips == pytest.approx(ips, rel=0.01)

    def test_scenarios_are_seed_deterministic(self):
        system = get_system("resnet50_v15")
        assert run_single_stream(system, queries=64, seed=3) == run_single_stream(
            system, queries=64, seed=3
        )
        assert run_offline(system, queries=64, seed=3) == run_offline(
            system, queries=64, seed=3
        )


class TestOfflineEdgeCases:
    @pytest.fixture(scope="class")
    def system(self):
        return get_system("resnet50_v15")

    def test_partial_batch_is_not_dropped(self, system):
        # 100 queries at batch 64 -> one full batch plus a partial of 36.
        ragged = run_offline(system, queries=100, batch_size=64, seed=0)
        assert ragged.queries == 100
        assert ragged.throughput_ips > 0

    def test_batch_larger_than_queries(self, system):
        small = run_offline(system, queries=5, batch_size=64, seed=0)
        assert small.queries == 5
        assert small.throughput_ips > 0

    def test_batch_split_does_not_change_throughput(self, system):
        # The schedule pipelines batches back-to-back, so slicing the same
        # query count differently leaves the makespan (hence IPS) intact.
        whole = run_offline(system, queries=128, batch_size=128, seed=0)
        split = run_offline(system, queries=128, batch_size=17, seed=0)
        assert split.throughput_ips == pytest.approx(whole.throughput_ips, rel=1e-9)

    def test_rejects_bad_parameters(self, system):
        with pytest.raises(ValueError):
            run_offline(system, queries=0)
        with pytest.raises(ValueError):
            run_offline(system, queries=8, batch_size=0)
        with pytest.raises(ValueError):
            run_single_stream(system, queries=0)
