"""Tests for the published-results module and the section VI-B ratios."""

import pytest

from repro.perf import published


class TestTables:
    def test_all_systems_cover_all_models(self):
        for table in (published.PUBLISHED_LATENCY_MS, published.PUBLISHED_THROUGHPUT_IPS):
            for system, row in table.items():
                assert set(row) == set(published.MODELS), system

    def test_centaur_rows_match_paper_headlines(self):
        ncore = published.PUBLISHED_LATENCY_MS["Centaur Ncore"]
        assert ncore["mobilenet_v1"] == 0.33
        assert ncore["resnet50_v15"] == 1.05
        throughput = published.PUBLISHED_THROUGHPUT_IPS["Centaur Ncore"]
        assert throughput["resnet50_v15"] == 1218.48
        assert throughput["gnmt"] == 12.28

    def test_only_centaur_submitted_gnmt(self):
        # "Centaur was the only chip vendor to submit results for the
        # relatively memory-intensive GNMT."
        for system, row in published.PUBLISHED_THROUGHPUT_IPS.items():
            if system == "Centaur Ncore":
                assert row["gnmt"] is not None
            else:
                assert row["gnmt"] is None

    def test_submitter_types_table6(self):
        assert "Centaur" in published.SUBMITTER_TYPES["Chip vendors"]
        assert len(published.SUBMITTER_TYPES) == 4


class TestHeadlineClaims:
    def test_ncore_lowest_published_latency_on_mobilenet_and_resnet(self):
        # "Ncore achieves the lowest latency in MobileNet-V1 (0.33 ms) and
        # ResNet-50-V1.5 (1.05 ms)".
        for model in ("mobilenet_v1", "resnet50_v15"):
            latencies = {
                system: row[model]
                for system, row in published.PUBLISHED_LATENCY_MS.items()
                if row[model] is not None
            }
            assert min(latencies, key=latencies.get) == "Centaur Ncore"

    def test_mobilenet_within_8_percent_of_xavier(self):
        ncore = published.PUBLISHED_THROUGHPUT_IPS["Centaur Ncore"]["mobilenet_v1"]
        xavier = published.PUBLISHED_THROUGHPUT_IPS["NVIDIA AGX Xavier"]["mobilenet_v1"]
        assert abs(xavier - ncore) / ncore < 0.08

    def test_xavier_resnet_throughput_77_percent_faster(self):
        ncore = published.PUBLISHED_THROUGHPUT_IPS["Centaur Ncore"]["resnet50_v15"]
        xavier = published.PUBLISHED_THROUGHPUT_IPS["NVIDIA AGX Xavier"]["resnet50_v15"]
        assert xavier / ncore == pytest.approx(1.77, abs=0.02)

    def test_vnni_core_equivalence_is_23x(self):
        # "Ncore's throughput is equivalent to approximately 23 of these
        # VNNI-enabled Xeon cores."
        assert published.ncore_vnni_core_equivalence() == pytest.approx(22.9, abs=0.3)
        assert published.per_core_resnet_ips() == pytest.approx(53.3, abs=0.1)

    def test_per_ice_speedup_is_2_77x(self):
        # "2.77x higher than a single 4096-byte ICE."
        assert published.per_ice_resnet_ips() == pytest.approx(440, abs=1)
        assert published.ncore_per_ice_speedup() == pytest.approx(2.77, abs=0.01)
