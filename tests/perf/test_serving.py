"""The Server scenario: determinism, latency shape, multisocket scaling."""

import numpy as np
import pytest

from repro.perf.serving import (
    ServerScenario,
    ServingTimingModel,
    default_server_qps,
    run_server,
)
from repro.perf.system import get_system
from repro.soc.multisocket import MultiSocketSystem

MODELS = ["mobilenet_v1", "resnet50_v15", "ssd_mobilenet_v1", "gnmt"]


@pytest.fixture(scope="module")
def resnet():
    return get_system("resnet50_v15")


class TestDeterminism:
    @pytest.mark.parametrize("key", MODELS)
    def test_same_seed_is_byte_identical(self, key):
        system = get_system(key)
        first = run_server(system, queries=128, seed=0)
        second = run_server(system, queries=128, seed=0)
        assert first.latencies_seconds.tobytes() == second.latencies_seconds.tobytes()
        assert first.sustained_qps == second.sustained_qps
        assert first.p99_latency_seconds == second.p99_latency_seconds

    def test_different_seeds_differ(self, resnet):
        first = run_server(resnet, queries=128, seed=0)
        second = run_server(resnet, queries=128, seed=1)
        assert first.latencies_seconds.tobytes() != second.latencies_seconds.tobytes()

    def test_simulated_time_only(self, resnet):
        # A GNMT-scale run simulates tens of seconds of model time; if the
        # engine consulted the wall clock this test could not be instant.
        result = run_server(get_system("gnmt"), queries=32, seed=0)
        assert result.sustained_qps > 0


class TestLatencyShape:
    def test_percentiles_are_ordered(self, resnet):
        result = run_server(resnet, queries=256, seed=0)
        assert (
            0
            < result.p50_latency_seconds
            <= result.p90_latency_seconds
            <= result.p99_latency_seconds
        )
        assert result.mean_latency_seconds > 0
        assert len(result.latencies_seconds) == 256

    def test_latency_floor_is_the_service_time(self, resnet):
        # No query can finish faster than an unqueued, unbatched pass.
        timing = ServingTimingModel.from_system(resnet)
        result = run_server(resnet, queries=256, seed=0)
        floor = timing.ncore_batched(result.max_batch) + timing.serial
        assert result.latencies_seconds.min() >= floor * 0.9

    def test_overload_grows_the_queue(self, resnet):
        light = run_server(resnet, queries=256, seed=0, qps=200.0)
        heavy = run_server(resnet, queries=256, seed=0, qps=5000.0)
        assert heavy.p99_latency_seconds > light.p99_latency_seconds
        # Saturation also assembles bigger batches.
        assert heavy.mean_batch_size > light.mean_batch_size

    def test_sustained_qps_tracks_offered_load_when_underloaded(self, resnet):
        offered = default_server_qps(resnet)
        result = run_server(resnet, queries=512, seed=0)
        assert result.offered_qps == pytest.approx(offered)
        # Underloaded: the system keeps up within the arrival burstiness.
        assert result.sustained_qps > 0.5 * offered


class TestMultisocket:
    def test_two_sockets_sustain_more_than_one(self, resnet):
        single = run_server(resnet, queries=256, seed=0, qps=2000.0, sockets=1)
        double = run_server(resnet, queries=256, seed=0, qps=2000.0, sockets=2)
        assert double.sustained_qps > single.sustained_qps

    def test_multisocket_system_helper(self, resnet):
        system = MultiSocketSystem(sockets=2)
        result = system.run_server(resnet, queries=128, seed=0)
        assert result.sockets == 2
        # The helper is the same engine path: rerunning is deterministic.
        again = system.run_server(resnet, queries=128, seed=0)
        assert result.latencies_seconds.tobytes() == again.latencies_seconds.tobytes()

    def test_socket_efficiency_penalises_throughput(self, resnet):
        ideal = run_server(
            resnet, queries=256, seed=0, qps=4000.0, sockets=2, socket_efficiency=1.0
        )
        real = run_server(
            resnet, queries=256, seed=0, qps=4000.0, sockets=2, socket_efficiency=0.9
        )
        assert real.sustained_qps < ideal.sustained_qps


class TestTimingModel:
    def test_decomposition_sums_to_the_single_stream_latency(self):
        for key in MODELS:
            system = get_system(key)
            timing = ServingTimingModel.from_system(system)
            assert timing.single_stream_seconds == pytest.approx(
                system.single_stream_latency_seconds()
            )

    def test_fallback_for_minimal_systems(self):
        class Minimal:
            model_key = "minimal"

            def single_stream_latency_seconds(self):
                return 2e-3

            def offline_throughput_ips(self, cores=8):
                return 500.0

        timing = ServingTimingModel.from_system(Minimal())
        assert timing.single_stream_seconds == pytest.approx(2e-3)
        result = run_server(Minimal(), queries=64, seed=0, qps=100.0)
        assert result.queries == 64
        assert result.p99_latency_seconds >= 2e-3

    def test_ssd_does_not_batch_offline(self):
        timing = ServingTimingModel.from_system(get_system("ssd_mobilenet_v1"))
        assert not timing.offline_batching
        assert timing.per_item_offline_seconds(8, cores=8) == pytest.approx(
            timing.single_stream_seconds
        )


class TestValidation:
    def test_rejects_bad_parameters(self, resnet):
        timing = ServingTimingModel.from_system(resnet)
        with pytest.raises(ValueError, match="query"):
            ServerScenario(timing, qps=100.0, queries=0)
        with pytest.raises(ValueError, match="QPS"):
            ServerScenario(timing, qps=0.0, queries=10)
        with pytest.raises(ValueError, match="socket"):
            ServerScenario(timing, qps=100.0, queries=10, sockets=0)
        with pytest.raises(ValueError, match="core"):
            ServerScenario(timing, qps=100.0, queries=10, cores=0)


class TestObservability:
    def test_registered_histogram_sees_every_completion(self, resnet):
        from repro import obs

        with obs.install_metrics(obs.MetricsRegistry()) as registry:
            result = run_server(resnet, queries=64, seed=1)
            name = f'server.latency_seconds{{model="resnet50_v15"}}'
            histogram = registry.get(name)
        assert histogram.count == 64
        assert result.p99_latency_seconds == histogram.percentile(99)

    def test_summary_percentiles_match_numpy(self, resnet):
        from repro import obs

        with obs.install_metrics(obs.MetricsRegistry()):
            result = run_server(resnet, queries=128, seed=3)
        for p, got in ((50, result.p50_latency_seconds),
                       (90, result.p90_latency_seconds),
                       (99, result.p99_latency_seconds)):
            assert got == float(np.percentile(result.latencies_seconds, p))

    def test_metrics_do_not_change_the_simulation(self, resnet):
        from repro import obs

        bare = run_server(resnet, queries=64, seed=5)
        with obs.install_metrics(obs.MetricsRegistry()), \
                obs.install_tracer(obs.Tracer()):
            observed = run_server(resnet, queries=64, seed=5,
                                  slo_latency_seconds=0.1,
                                  telemetry_interval=0.01)
        assert np.asarray(bare.latencies_seconds).tobytes() == \
            np.asarray(observed.latencies_seconds).tobytes()

    def test_slo_monitor_reports_through_the_result(self, resnet):
        from repro import obs

        with obs.install_metrics(obs.MetricsRegistry()):
            generous = run_server(resnet, queries=64, seed=0,
                                  slo_latency_seconds=10.0)
            hopeless = run_server(resnet, queries=64, seed=0,
                                  slo_latency_seconds=1e-9)
        assert generous.slo["attainment"] == 1.0
        assert generous.slo["budget_remaining"] > 0
        assert hopeless.slo["attainment"] == 0.0
        assert hopeless.slo["budget_remaining"] < 0

    def test_no_slo_means_no_slo_field(self, resnet):
        result = run_server(resnet, queries=32, seed=0)
        assert result.slo is None

    def test_telemetry_frames_sample_the_run(self, resnet):
        from repro import obs

        with obs.install_metrics(obs.MetricsRegistry()):
            result = run_server(resnet, queries=64, seed=2,
                                telemetry_interval=0.005)
        assert len(result.frames) >= 2
        timestamps = [frame["ts"] for frame in result.frames]
        assert timestamps == sorted(timestamps)
        final = result.frames[-1]
        assert final["completed"] == 64
        assert final["model"] == "resnet50_v15"
        assert 0.0 <= final["slo_attainment"] if "slo_attainment" in final else True
        assert len(final["socket_util"]) == 1
        assert all(0.0 <= u <= 1.0 for u in final["socket_util"])

    def test_frames_are_seed_deterministic(self, resnet):
        from repro import obs

        def frames():
            with obs.install_metrics(obs.MetricsRegistry()):
                return run_server(resnet, queries=64, seed=4,
                                  telemetry_interval=0.01).frames

        assert frames() == frames()

    def test_queries_get_causally_linked_trace_trees(self, resnet):
        from repro import obs

        with obs.install_tracer(obs.Tracer()) as tracer:
            run_server(resnet, queries=16, seed=0)
        trace_ids = tracer.trace_ids()
        assert len(trace_ids) == 16
        assert trace_ids[0] == "resnet50_v15/q000000"
        spans = tracer.spans_for_trace(trace_ids[0])
        span_ids = {span.span_id for span in spans}
        assert "root" in span_ids
        assert {"pre", "queue.wait", "ncore", "x86.post"} <= span_ids
        for span in spans:
            if span.span_id != "root":
                assert span.parent_id == "root"
