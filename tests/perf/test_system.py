"""Full-system shape tests: the simulated results must reproduce the
paper's comparative claims (who wins, by roughly what factor)."""

import pytest

from repro.perf.mlperf import run_offline, run_single_stream
from repro.perf.published import (
    PUBLISHED_LATENCY_MS,
    PUBLISHED_THROUGHPUT_IPS,
)
from repro.perf.system import get_system

CNN_MODELS = ("mobilenet_v1", "resnet50_v15", "ssd_mobilenet_v1")


class TestLatencyShape:
    """Table VII reproduction: comparative latency claims."""

    @pytest.mark.parametrize("model", ["mobilenet_v1", "resnet50_v15"])
    def test_ncore_beats_every_published_competitor(self, model):
        ours = get_system(model).single_stream_latency_seconds() * 1e3
        for system, row in PUBLISHED_LATENCY_MS.items():
            if system == "Centaur Ncore" or row[model] is None:
                continue
            assert ours < row[model], f"lost to {system} on {model}"

    @pytest.mark.parametrize("model", CNN_MODELS)
    def test_latency_within_50_percent_of_paper(self, model):
        ours = get_system(model).single_stream_latency_seconds() * 1e3
        paper = PUBLISHED_LATENCY_MS["Centaur Ncore"][model]
        assert 0.5 * paper < ours < 1.5 * paper

    def test_latency_ordering_across_models(self):
        latencies = [
            get_system(m).single_stream_latency_seconds() for m in CNN_MODELS
        ]
        mobilenet, resnet, ssd = latencies
        assert mobilenet < resnet < ssd  # same ordering as Table VII

    def test_ssd_near_best_not_best(self):
        # SSD-MobileNet: "near-best latency" — Xavier and CLX are close;
        # the x86-dominated NMS keeps Ncore from the same margin it has on
        # the classification models.
        ours = get_system("ssd_mobilenet_v1").single_stream_latency_seconds() * 1e3
        xavier = PUBLISHED_LATENCY_MS["NVIDIA AGX Xavier"]["ssd_mobilenet_v1"]
        assert ours == pytest.approx(xavier, rel=0.35)


class TestThroughputShape:
    """Table VIII reproduction: comparative throughput claims."""

    @pytest.mark.parametrize("model", CNN_MODELS)
    def test_throughput_within_50_percent_of_paper(self, model):
        ours = get_system(model).offline_throughput_ips()
        paper = PUBLISHED_THROUGHPUT_IPS["Centaur Ncore"][model]
        assert 0.5 * paper < ours < 1.5 * paper

    def test_gnmt_matches_submission(self):
        ours = get_system("gnmt").offline_throughput_ips()
        assert ours == pytest.approx(12.28, rel=0.15)

    def test_gnmt_mature_software_projection(self):
        # "We anticipate Ncore's GNMT throughput to increase significantly
        # as Ncore's software stack continues to mature."
        system = get_system("gnmt")
        mature = system.offline_throughput_ips(mature_software=True)
        assert mature > 10 * system.offline_throughput_ips()

    def test_xavier_wins_resnet_throughput(self):
        # Xavier's ResNet-50 throughput is ~1.77x Ncore's; the simulated
        # Ncore must stay below Xavier (the paper's crossover).
        ours = get_system("resnet50_v15").offline_throughput_ips()
        xavier = PUBLISHED_THROUGHPUT_IPS["NVIDIA AGX Xavier"]["resnet50_v15"]
        assert ours < xavier

    def test_clx_breaks_even_only_with_100plus_cores(self):
        # Ncore ~ 23 VNNI Xeon cores: the 112-core CLX system wins on raw
        # throughput but Ncore wins per core by >20x.
        ours = get_system("resnet50_v15").offline_throughput_ips()
        clx = PUBLISHED_THROUGHPUT_IPS["(2x) Intel CLX 9282"]["resnet50_v15"]
        assert ours < clx
        assert ours / (clx / 112) > 15  # per-core advantage

    def test_ssd_throughput_is_single_batch(self):
        # Section VI-C: SSD ran without batching, so Offline throughput ~
        # 1 / SingleStream latency (651.89 vs 649 in the paper).
        system = get_system("ssd_mobilenet_v1")
        throughput = system.offline_throughput_ips()
        reciprocal = 1.0 / system.single_stream_latency_seconds()
        assert throughput == pytest.approx(reciprocal, rel=0.01)

    def test_batching_speedups_by_model(self):
        # Section VI-C: ~2x for MobileNet, ~1.3x for ResNet.
        speedups = {}
        for model in ("mobilenet_v1", "resnet50_v15"):
            system = get_system(model)
            single = 1.0 / system.single_stream_latency_seconds()
            speedups[model] = system.offline_throughput_ips() / single
        assert speedups["mobilenet_v1"] > speedups["resnet50_v15"]
        assert 1.4 < speedups["mobilenet_v1"] < 2.6
        assert 1.1 < speedups["resnet50_v15"] < 1.6


class TestWorkloadSplit:
    """Table IX reproduction: the Ncore vs x86 decomposition."""

    def test_ncore_fractions_ordering(self):
        # Paper: ResNet 68% Ncore > MobileNet 33% > SSD 23%.
        fractions = {}
        for model in CNN_MODELS:
            split = get_system(model).workload_split()
            fractions[model] = split["ncore"] / split["total"]
        assert fractions["resnet50_v15"] > fractions["mobilenet_v1"] > fractions["ssd_mobilenet_v1"]

    @pytest.mark.parametrize(
        "model,paper_fraction",
        [("mobilenet_v1", 0.33), ("resnet50_v15", 0.68), ("ssd_mobilenet_v1", 0.23)],
    )
    def test_ncore_fraction_close_to_paper(self, model, paper_fraction):
        split = get_system(model).workload_split()
        ours = split["ncore"] / split["total"]
        assert ours == pytest.approx(paper_fraction, abs=0.15)

    def test_ssd_x86_dominated_by_nms(self):
        # SSD's x86 latency is "largely attributed to SSD's non-maximum
        # suppression operation which is executed on x86".
        system = get_system("ssd_mobilenet_v1")
        portion = system.x86_portion()
        assert portion.graph_seconds > portion.preprocess_seconds


class TestMlperfHarness:
    def test_single_stream_p90_above_mean(self):
        result = run_single_stream(get_system("mobilenet_v1"), queries=512)
        assert result.p90_latency_seconds > result.mean_latency_seconds

    def test_single_stream_deterministic_by_seed(self):
        system = get_system("mobilenet_v1")
        a = run_single_stream(system, queries=128, seed=3)
        b = run_single_stream(system, queries=128, seed=3)
        assert a == b

    def test_offline_result_near_model_value(self):
        system = get_system("resnet50_v15")
        result = run_offline(system, queries=4096)
        assert result.throughput_ips == pytest.approx(
            system.offline_throughput_ips(), rel=0.01
        )

    def test_query_counts_validated(self):
        import pytest

        with pytest.raises(ValueError):
            run_single_stream(get_system("mobilenet_v1"), queries=0)
