"""The row-bytes lint: src/ stays clean, the rules behave as documented."""

import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "tools"))

from lint_row_bytes import lint_file, lint_tree  # noqa: E402


class TestRules:
    def check(self, tmp_path, source, name="mod.py"):
        path = tmp_path / name
        path.write_text(source)
        return lint_file(path)

    def test_bare_4096_trips(self, tmp_path):
        assert self.check(tmp_path, "ROWS = 4096\n") == [(1, "4096")]

    def test_bare_2048_trips(self, tmp_path):
        assert self.check(tmp_path, "x = foo(2048)\n") == [(1, "2048")]

    def test_waiver_comment_suppresses(self, tmp_path):
        src = "ROWS = 4096  # row-bytes-ok: frozen ABI constant\n"
        assert self.check(tmp_path, src) == []

    def test_comments_and_strings_never_trip(self, tmp_path):
        src = '"""A 4096-byte row."""\n# 2048 rows\nmsg = "4096"\n'
        assert self.check(tmp_path, src) == []

    def test_derived_expressions_never_trip(self, tmp_path):
        assert self.check(tmp_path, "ROW = 16 * 256\nHALF = 1 << 11\n") == []

    def test_config_module_is_exempt(self, tmp_path):
        mod = tmp_path / "repro" / "ncore"
        mod.mkdir(parents=True)
        path = mod / "config.py"
        path.write_text("DEFAULT_ROWS = 2048\n")
        assert lint_file(path) == []

    def test_tree_report_names_file_and_line(self, tmp_path):
        (tmp_path / "bad.py").write_text("a = 1\nb = 4096\n")
        report = lint_tree([tmp_path])
        assert len(report) == 1
        assert "bad.py:2" in report[0]


def test_src_tree_is_clean():
    """The enforced invariant: no new bare row-width literals in src/."""
    report = lint_tree([REPO / "src"])
    assert report == [], "\n".join(report)


@pytest.mark.parametrize("waived", ["isa/instruction.py"])
def test_known_waivers_still_present(waived):
    """The isa waiver must stay (repro.isa cannot import repro.ncore)."""
    text = (REPO / "src" / "repro" / waived).read_text()
    assert "row-bytes-ok" in text
