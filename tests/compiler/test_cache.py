"""The content-addressed compile cache: hits, invalidation, tiers."""

import numpy as np
import pytest

from repro.compiler import (
    CompileCache,
    compile_graph,
    get_compile_cache,
    install_cache,
)
from repro.ncore.config import NcoreConfig
from tests.quantize.test_convert import small_cnn


class TestMemoryTier:
    def test_second_compile_is_a_hit(self):
        cache = CompileCache()
        g = small_cnn()
        first = compile_graph(g, cache=cache)
        second = compile_graph(small_cnn(), cache=cache)
        assert not first.cache_hit
        assert second.cache_hit
        assert second.model is first.model  # same immutable artifact
        assert second.stats == []  # nothing ran
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_cache_none_always_compiles(self):
        g = small_cnn()
        assert not compile_graph(g, cache=None).cache_hit
        assert not compile_graph(g, cache=None).cache_hit

    def test_config_change_misses(self):
        cache = CompileCache()
        compile_graph(small_cnn(), cache=cache)
        again = compile_graph(
            small_cnn(), config=NcoreConfig(slices=8), cache=cache
        )
        assert not again.cache_hit
        assert len(cache) == 2

    def test_pipeline_change_misses(self):
        cache = CompileCache()
        compile_graph(small_cnn(), pipeline="O2", cache=cache)
        assert not compile_graph(small_cnn(), pipeline="O0", cache=cache).cache_hit

    def test_weight_change_misses(self):
        cache = CompileCache()
        compile_graph(small_cnn(), cache=cache)
        poked = small_cnn()
        poked.tensor("w1").data = poked.tensor("w1").data + np.float32(0.5)
        assert not compile_graph(poked, cache=cache).cache_hit

    def test_collect_ir_bypasses_lookup(self):
        cache = CompileCache()
        compile_graph(small_cnn(), cache=cache)
        watched = compile_graph(small_cnn(), cache=cache, collect_ir=True)
        assert not watched.cache_hit
        assert watched.snapshots  # the point of bypassing

    def test_lru_eviction(self):
        cache = CompileCache(capacity=1)
        compile_graph(small_cnn(), pipeline="O0", cache=cache)
        compile_graph(small_cnn(), pipeline="O2", cache=cache)
        assert len(cache) == 1
        assert cache.stats.evictions == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            CompileCache(capacity=0)

    def test_stats_hit_rate(self):
        cache = CompileCache()
        compile_graph(small_cnn(), cache=cache)
        compile_graph(small_cnn(), cache=cache)
        assert cache.stats.lookups == 2
        assert cache.stats.hit_rate == pytest.approx(0.5)


class TestDiskTier:
    def test_fresh_cache_loads_from_disk(self, tmp_path):
        first = compile_graph(
            small_cnn(), cache=CompileCache(directory=tmp_path)
        )
        fresh = CompileCache(directory=tmp_path)
        loaded = fresh.lookup(first.key)
        assert loaded is not None
        assert loaded.ncore_cycles() == first.model.ncore_cycles()
        assert fresh.stats.disk_hits == 1
        # The disk load populated the memory tier.
        assert first.key in fresh

    def test_corrupt_entry_is_dropped(self, tmp_path):
        cache = CompileCache(directory=tmp_path)
        result = compile_graph(small_cnn(), cache=cache)
        path = tmp_path / f"{result.key}.pkl"
        path.write_bytes(b"not a pickle")
        fresh = CompileCache(directory=tmp_path)
        assert fresh.lookup(result.key) is None
        assert not path.exists()

    def test_clear_disk(self, tmp_path):
        cache = CompileCache(directory=tmp_path)
        compile_graph(small_cnn(), cache=cache)
        assert list(tmp_path.glob("*.pkl"))
        cache.clear(disk=True)
        assert len(cache) == 0
        assert not list(tmp_path.glob("*.pkl"))


class TestDefaultCacheAndFacade:
    def test_install_cache_scopes_the_default(self):
        outer = get_compile_cache()
        scoped = CompileCache()
        with install_cache(scoped):
            assert get_compile_cache() is scoped
            compile_graph(small_cnn())
            assert compile_graph(small_cnn()).cache_hit
        assert get_compile_cache() is outer

    def test_compile_model_facade_is_served_from_cache(self):
        from repro.quantize import calibrate, quantize_graph
        from repro.runtime import compile_model
        from tests.quantize.test_convert import calibration_batches

        g = small_cnn()
        qg = quantize_graph(g, calibrate(g, calibration_batches()))
        with install_cache(CompileCache()) as scoped:
            first = compile_model(qg, optimize=False, name="facade")
            second = compile_model(qg, optimize=False, name="facade")
            assert second is first
            assert scoped.stats.hits == 1

    def test_facade_records_compile_info(self):
        from repro.quantize import calibrate, quantize_graph
        from repro.runtime import compile_model
        from tests.quantize.test_convert import calibration_batches

        g = small_cnn()
        qg = quantize_graph(g, calibrate(g, calibration_batches()))
        model = compile_model(qg, optimize=False, name="provenance", cache=None)
        assert model.compile_info["pipeline"] == "O0"
        assert model.compile_info["verified"] is True
        assert "lower" in model.compile_info["stages"]
