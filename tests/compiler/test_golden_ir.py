"""Golden-IR snapshots: stage-by-stage counts pinned for the model zoo.

Two layers of pinning:

- the float-graph optimize stage (GCL folding/fusion) per model — cheap,
  graphs are built fresh;
- the backend stages (partition/plan/lower) over the converted benchmark
  graphs, reusing the ``get_system`` cache the perf tests already warm.

If a pass, the partitioner or the lowering changes what it produces for
the paper's four models, these numbers move and the change has to be
acknowledged here.
"""

import pytest

from repro.compiler import compile_graph, optimize_graph
from repro.models import PAPER_CHARACTERISTICS
from repro.perf.system import get_system

# model -> (float nodes, optimized nodes)
OPTIMIZE_GOLDEN = {
    "mobilenet_v1": (84, 30),
    "resnet50_v15": (163, 73),
    "ssd_mobilenet_v1": (133, 63),
    "gnmt": (409, 408),
}

# model -> (converted nodes, segments, ncore segments, kernels)
BACKEND_GOLDEN = {
    "mobilenet_v1": (32, 2, 1, 31),
    "resnet50_v15": (75, 2, 1, 74),
    "ssd_mobilenet_v1": (66, 16, 8, 52),
    # lstm_step + bf16-region reshapes folding into Ncore collapsed GNMT
    # from 56 segments (27 reshape-forced x86 islands) to 2.
    "gnmt": (408, 2, 1, 406),
}

STAGE_ORDER = ["input", "partition", "verify", "plan", "lower", "finalize"]


@pytest.mark.parametrize("key", sorted(OPTIMIZE_GOLDEN))
def test_optimize_stage_node_counts(key):
    expected_before, expected_after = OPTIMIZE_GOLDEN[key]
    graph = PAPER_CHARACTERISTICS[key].build()
    assert len(graph.nodes) == expected_before
    optimized = optimize_graph(graph)
    assert len(optimized.nodes) == expected_after
    assert len(graph.nodes) == expected_before  # input graph untouched


@pytest.mark.parametrize("key", sorted(BACKEND_GOLDEN))
def test_backend_stage_counts(key):
    nodes, segments, ncore, kernels = BACKEND_GOLDEN[key]
    system = get_system(key)
    result = compile_graph(
        system.compiled.graph, config=system.config, pipeline="O0",
        name=key, cache=None, collect_ir=True,
    )
    assert len(result.model.graph.nodes) == nodes
    part = result.context.stage_stats("partition").changes
    assert part["segments"] == segments
    assert part["ncore_segments"] == ncore
    assert result.context.stage_stats("lower").changes["kernels"] == kernels
    assert list(result.snapshots) == STAGE_ORDER


@pytest.mark.parametrize("key", sorted(BACKEND_GOLDEN))
def test_staged_compile_matches_benchmark_artifact(key):
    """The staged O0 pipeline reproduces the benchmark path's cycles."""
    system = get_system(key)
    result = compile_graph(
        system.compiled.graph, config=system.config, pipeline="O0",
        name=key, cache=None,
    )
    assert result.model.ncore_cycles(system._dma_bytes_per_cycle) == (
        system.compiled.ncore_cycles(system._dma_bytes_per_cycle)
    )
