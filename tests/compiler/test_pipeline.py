"""The staged pipeline: presets, composition, instrumentation, IR dumps."""

import numpy as np
import pytest

from repro import obs
from repro.compiler import (
    CompilerError,
    Pipeline,
    available_pipelines,
    available_stages,
    compile_graph,
    get_pipeline,
    ir_diff,
    optimize_graph,
)
from repro.graph.passes import PassManager, default_pipeline, fold_batch_norm
from tests.quantize.test_convert import small_cnn


def bn_graph():
    """conv -> batch_norm -> relu: gives the optimize stage real work."""
    from repro.graph import Graph, Node, Tensor, TensorType

    rng = np.random.default_rng(3)
    g = Graph("bncnn")
    g.add_input("x", TensorType((1, 8, 8, 3)))
    g.add_constant("w", (rng.normal(size=(3, 3, 3, 8)) * 0.2).astype(np.float32))
    g.add_constant("mean", rng.normal(size=8).astype(np.float32))
    g.add_constant("var", rng.uniform(0.5, 1.5, size=8).astype(np.float32))
    g.add_constant("gamma", rng.uniform(0.5, 1.5, size=8).astype(np.float32))
    g.add_constant("beta", rng.normal(size=8).astype(np.float32))
    g.add_tensor(Tensor("c", TensorType((1, 8, 8, 8))))
    g.add_tensor(Tensor("b", TensorType((1, 8, 8, 8))))
    g.add_tensor(Tensor("r", TensorType((1, 8, 8, 8))))
    g.add_node(Node("conv", "conv2d", ["x", "w"], ["c"],
                    {"padding": ((1, 1), (1, 1))}))
    g.add_node(Node("bn", "batch_norm", ["c", "mean", "var", "gamma", "beta"],
                    ["b"], {"epsilon": 1e-3}))
    g.add_node(Node("act", "relu", ["b"], ["r"]))
    g.mark_output("r")
    return g


class TestPresets:
    def test_registry_has_the_presets(self):
        assert {"O0", "O1", "O2"} <= set(available_pipelines())

    def test_default_is_o2(self):
        assert get_pipeline("default").id == "O2"

    def test_o0_has_no_optimize_stage(self):
        assert "optimize" not in get_pipeline("O0").stage_names()
        assert not get_pipeline("O0").mutates_graph

    def test_o2_runs_the_full_backend(self):
        assert get_pipeline("O2").stage_names() == [
            "optimize", "partition", "verify", "plan", "lower", "codegen",
            "finalize",
        ]
        assert get_pipeline("O2").mutates_graph

    def test_unknown_pipeline_errors(self):
        with pytest.raises(CompilerError, match="unknown pipeline"):
            get_pipeline("O9")

    def test_o1_folds_but_does_not_constant_fold(self):
        g = bn_graph()
        r1 = compile_graph(g, pipeline="O1", cache=None)
        changes = r1.context.stage_stats("optimize").changes
        assert "fold_batch_norm" in changes["pass_changes"]
        assert "constant_fold" not in changes["pass_changes"]


class TestComposition:
    def test_from_stage_names(self):
        custom = Pipeline.from_stage_names(
            "just-backend", ["partition", "verify", "plan", "lower", "finalize"]
        )
        result = compile_graph(small_cnn(), pipeline=custom, cache=None)
        assert result.pipeline_id == "just-backend"
        assert result.model.ncore_segments

    def test_unknown_stage_errors(self):
        with pytest.raises(CompilerError, match="unknown stage"):
            Pipeline.from_stage_names("bad", ["partition", "transmogrify"])

    def test_empty_pipeline_rejected(self):
        with pytest.raises(CompilerError, match="no stages"):
            Pipeline("empty", ())

    def test_registry_lists_core_stages(self):
        assert {"optimize", "partition", "verify", "plan", "lower",
                "finalize"} <= set(available_stages())

    def test_plan_before_partition_errors(self):
        bad = Pipeline.from_stage_names("bad-order", ["plan", "finalize"])
        with pytest.raises(CompilerError, match="partition"):
            compile_graph(small_cnn(), pipeline=bad, cache=None)

    def test_pipeline_without_finalize_errors(self):
        headless = Pipeline.from_stage_names("headless", ["partition", "lower"])
        with pytest.raises(CompilerError, match="finalize"):
            compile_graph(small_cnn(), pipeline=headless, cache=None)


class TestMutationContract:
    def test_compile_does_not_mutate_the_callers_graph(self):
        g = bn_graph()
        nodes_before = len(g.nodes)
        result = compile_graph(g, cache=None)
        assert len(g.nodes) == nodes_before  # caller's graph untouched
        assert len(result.model.graph.nodes) < nodes_before  # copy optimized

    def test_in_place_opts_back_in(self):
        g = bn_graph()
        result = compile_graph(g, cache=None, in_place=True)
        assert result.model.graph is g
        assert "batch_norm" not in {n.op for n in g.nodes}

    def test_optimize_graph_returns_a_copy(self):
        g = bn_graph()
        optimized = optimize_graph(g)
        assert optimized is not g
        assert any(n.op == "batch_norm" for n in g.nodes)
        assert not any(n.op == "batch_norm" for n in optimized.nodes)

    def test_optimize_graph_in_place(self):
        g = bn_graph()
        assert optimize_graph(g, in_place=True) is g
        assert not any(n.op == "batch_norm" for n in g.nodes)

    def test_optimize_graph_custom_manager(self):
        g = bn_graph()
        optimized = optimize_graph(g, manager=PassManager([fold_batch_norm]))
        assert not any(n.op == "batch_norm" for n in optimized.nodes)
        assert any(n.op == "relu" for n in optimized.nodes)  # not fused


class TestInstrumentation:
    def test_every_stage_gets_a_span(self):
        with obs.observe() as (tracer, metrics):
            compile_graph(small_cnn(), cache=None)
        names = [s.name for s in tracer.spans_on("compiler")]
        for stage in ("optimize", "partition", "verify", "plan", "lower",
                      "codegen", "finalize"):
            assert f"compiler.{stage}" in names
        assert "compiler.compile" in names
        assert metrics.counter("compiler.stage.lower.runs").value == 1

    def test_cache_hit_emits_an_instant(self):
        from repro.compiler import CompileCache

        cache = CompileCache()
        compile_graph(small_cnn(), cache=cache)
        with obs.observe() as (tracer, _):
            compile_graph(small_cnn(), cache=cache)
        assert any(i.name == "compiler.cache.hit" for i in tracer.instants)

    def test_stage_stats_recorded_in_order(self):
        result = compile_graph(small_cnn(), pipeline="O0", cache=None)
        assert [s.stage for s in result.stats] == [
            "partition", "verify", "plan", "lower", "finalize",
        ]
        plan = result.context.stage_stats("plan")
        assert plan.changes["sram_bytes_planned"] > 0
        assert "plan:" in plan.summary()

    def test_verify_false_skips_the_gate(self):
        result = compile_graph(small_cnn(), cache=None, verify=False)
        assert result.context.stage_stats("verify").changes == {"skipped": True}


class TestPassManagerStats:
    def test_run_records_stats(self):
        manager = default_pipeline()
        g = bn_graph()
        sweeps = manager.run(g)
        stats = manager.last_stats
        assert sweeps >= 1
        assert stats.reached_fixed_point
        assert stats.nodes_before > stats.nodes_after
        assert stats.pass_changes["fold_batch_norm"] == 1
        assert stats.pass_nodes_removed["fold_batch_norm"] >= 1

    def test_converged_rerun_reports_zero_sweeps(self):
        manager = default_pipeline()
        g = bn_graph()
        manager.run(g)
        assert manager.run(g) == 0
        assert manager.last_stats.reached_fixed_point

    def test_max_sweeps_exhaustion_warns_through_obs(self):
        g = bn_graph()
        manager = PassManager(default_pipeline().passes, max_sweeps=1)
        with obs.observe() as (tracer, metrics):
            manager.run(g)
        assert manager.last_stats.reached_fixed_point is False
        marks = [i for i in tracer.instants
                 if i.name == "passes.max_sweeps_exhausted"]
        assert marks and marks[0].args["max_sweeps"] == 1
        assert metrics.counter("compiler.pass_sweeps_exhausted").value == 1


class TestIrDump:
    def test_snapshots_cover_input_and_every_stage(self):
        result = compile_graph(small_cnn(), cache=None, collect_ir=True)
        assert list(result.snapshots) == [
            "input", "optimize", "partition", "verify", "plan", "lower",
            "codegen", "finalize",
        ]

    def test_partition_changes_the_ir_text(self):
        result = compile_graph(small_cnn(), cache=None, collect_ir=True)
        diff = ir_diff(result.snapshots["verify"], result.snapshots["plan"])
        assert "memory plan" in diff

    def test_identical_snapshots_diff_empty(self):
        result = compile_graph(small_cnn(), cache=None, collect_ir=True)
        assert ir_diff(result.snapshots["input"], result.snapshots["input"]) == ""

    def test_dump_is_deterministic(self):
        a = compile_graph(small_cnn(), cache=None, collect_ir=True)
        b = compile_graph(small_cnn(), cache=None, collect_ir=True)
        assert a.snapshots == b.snapshots
