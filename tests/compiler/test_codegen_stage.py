"""The ``codegen`` compiler stage and its sidecar cache artifact."""

import subprocess
import sys
import textwrap

from repro.compiler import CompileCache, compile_graph, get_pipeline
from repro.compiler.driver import _CODEGEN_KIND
from repro.ncore.codegen import MacroKernelSet
from repro.quantize import calibrate, quantize_graph

from tests.quantize.test_convert import calibration_batches, small_cnn


def quantized_cnn(seed=11):
    g = small_cnn(seed=seed)
    return quantize_graph(g, calibrate(g, calibration_batches()))


class TestStageRegistration:
    def test_codegen_runs_at_o2_only(self):
        assert "codegen" in get_pipeline("O2").stage_names()
        assert "codegen" not in get_pipeline("O0").stage_names()
        assert "codegen" not in get_pipeline("O1").stage_names()

    def test_o2_result_carries_macro_kernels(self):
        result = compile_graph(quantized_cnn(), cache=None, pipeline="O2")
        assert isinstance(result.macro_kernels, MacroKernelSet)
        assert result.macro_kernels.covered_segments >= 1

    def test_o0_result_has_no_macro_kernels(self):
        result = compile_graph(quantized_cnn(), cache=None, pipeline="O0")
        assert result.macro_kernels is None

    def test_stage_stats_record_coverage(self):
        result = compile_graph(quantized_cnn(), cache=None, pipeline="O2")
        changes = result.context.stage_stats("codegen").changes
        assert changes["kernels"] == result.macro_kernels.covered_segments
        assert "uncovered_segments" in changes

    def test_dump_ir_snapshot_includes_macro_kernels(self):
        result = compile_graph(
            quantized_cnn(), cache=None, pipeline="O2", collect_ir=True
        )
        assert "macro-kernels:" in result.snapshots["codegen"]
        assert "variant" in result.snapshots["codegen"]


class TestSidecarArtifact:
    def test_memory_cache_hit_restores_macro_kernels(self):
        cache = CompileCache()
        first = compile_graph(quantized_cnn(), cache=cache)
        hit = compile_graph(quantized_cnn(), cache=cache)
        assert hit.cache_hit
        assert isinstance(hit.macro_kernels, MacroKernelSet)
        assert hit.macro_kernels.covered_segments == \
            first.macro_kernels.covered_segments

    def test_sidecar_lands_on_disk_next_to_the_model(self, tmp_path):
        cache = CompileCache(directory=tmp_path)
        result = compile_graph(quantized_cnn(), cache=cache)
        key = result.model.compile_info["key"]
        assert (tmp_path / f"{key}.pkl").exists()
        assert (tmp_path / f"{key}.{_CODEGEN_KIND}.pkl").exists()

    def test_fresh_cache_instance_reloads_from_disk(self, tmp_path):
        cache = CompileCache(directory=tmp_path)
        first = compile_graph(quantized_cnn(), cache=cache)
        key = first.model.compile_info["key"]
        reloaded = CompileCache(directory=tmp_path)
        artifact = reloaded.lookup_artifact(key, _CODEGEN_KIND)
        assert isinstance(artifact, MacroKernelSet)
        assert artifact.covered_segments == \
            first.macro_kernels.covered_segments
        assert reloaded.stats.artifact_hits == 1

    def test_o0_compile_stores_no_sidecar(self, tmp_path):
        cache = CompileCache(directory=tmp_path)
        result = compile_graph(quantized_cnn(), cache=cache, pipeline="O0")
        key = result.model.compile_info["key"]
        assert not (tmp_path / f"{key}.{_CODEGEN_KIND}.pkl").exists()

    def test_clear_drops_sidecar_files_too(self, tmp_path):
        cache = CompileCache(directory=tmp_path)
        result = compile_graph(quantized_cnn(), cache=cache)
        key = result.model.compile_info["key"]
        cache.clear(disk=True)
        assert not (tmp_path / f"{key}.{_CODEGEN_KIND}.pkl").exists()
        assert cache.lookup_artifact(key, _CODEGEN_KIND) is None

    def test_round_trip_across_processes(self, tmp_path):
        """A second process picks the MacroKernels up from disk and runs
        them bit-identically to the interpreter — the pickled artifact is
        self-contained."""
        cache = CompileCache(directory=tmp_path)
        result = compile_graph(quantized_cnn(), cache=cache)
        covered = result.macro_kernels.covered_segments
        script = textwrap.dedent(f"""
            import numpy as np
            from repro.compiler import CompileCache, compile_graph
            from repro.runtime import NcoreExecutor, execute_quantized
            from tests.compiler.test_codegen_stage import quantized_cnn

            cache = CompileCache(directory={str(tmp_path)!r})
            result = compile_graph(quantized_cnn(), cache=cache)
            assert result.cache_hit, "expected a disk cache hit"
            kernels = result.macro_kernels
            assert kernels is not None
            assert kernels.covered_segments == {covered}

            executor = NcoreExecutor(
                result.model, verify=False, policy="codegen",
                macro_kernels=kernels,
            )
            rng = np.random.default_rng(3)
            feeds = {{"x": rng.uniform(
                -1, 1, size=(1, 8, 8, 3)).astype(np.float32)}}
            got = executor.execute(feeds).outputs
            want = execute_quantized(result.model.graph, feeds)
            assert executor.last_tier == "codegen"
            for name, value in want.items():
                assert np.asarray(got[name]).tobytes() == \\
                    np.asarray(value).tobytes()
            executor.close()
            print("ROUNDTRIP-OK")
        """)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "ROUNDTRIP-OK" in proc.stdout

    def test_corrupt_sidecar_is_a_miss(self, tmp_path):
        cache = CompileCache(directory=tmp_path)
        result = compile_graph(quantized_cnn(), cache=cache)
        key = result.model.compile_info["key"]
        path = tmp_path / f"{key}.{_CODEGEN_KIND}.pkl"
        path.write_bytes(b"not a pickle")
        fresh = CompileCache(directory=tmp_path)
        assert fresh.lookup_artifact(key, _CODEGEN_KIND) is None
        assert not path.exists()  # corrupt file unlinked
