"""Content fingerprints: stable across rebuilds, sensitive to every input."""

import numpy as np

from repro.compiler import compile_key, fingerprint_config, fingerprint_graph
from repro.ncore.config import NcoreConfig
from tests.quantize.test_convert import small_cnn


class TestGraphFingerprint:
    def test_deterministic_across_rebuilds(self):
        assert fingerprint_graph(small_cnn()) == fingerprint_graph(small_cnn())

    def test_copy_shares_the_fingerprint(self):
        g = small_cnn()
        assert fingerprint_graph(g.copy()) == fingerprint_graph(g)

    def test_display_name_is_excluded(self):
        g = small_cnn()
        renamed = g.copy(name="something-else")
        assert fingerprint_graph(renamed) == fingerprint_graph(g)

    def test_weight_byte_change_invalidates(self):
        g = small_cnn()
        before = fingerprint_graph(g)
        g.tensor("w1").data = g.tensor("w1").data + np.float32(1e-3)
        assert fingerprint_graph(g) != before

    def test_attribute_change_invalidates(self):
        g = small_cnn()
        before = fingerprint_graph(g)
        g.node("conv1").attrs["activation"] = "relu6"
        assert fingerprint_graph(g) != before

    def test_quant_params_participate(self):
        from repro.quantize import calibrate, quantize_graph
        from tests.quantize.test_convert import calibration_batches

        g = small_cnn()
        qg1 = quantize_graph(g, calibrate(g, calibration_batches(seed=5)))
        qg2 = quantize_graph(g, calibrate(g, calibration_batches(seed=6)))
        # Same structure, different calibration -> different scales -> keys.
        assert fingerprint_graph(qg1) != fingerprint_graph(qg2)


class TestCompileKey:
    def test_config_change_invalidates(self):
        g = small_cnn()
        base = compile_key(g, NcoreConfig(), "O2")
        halved = compile_key(g, NcoreConfig(slices=8), "O2")
        assert base != halved

    def test_pipeline_id_participates(self):
        g = small_cnn()
        assert compile_key(g, NcoreConfig(), "O0") != compile_key(g, NcoreConfig(), "O2")

    def test_name_participates(self):
        g = small_cnn()
        assert compile_key(g, NcoreConfig(), "O2", name="a") != compile_key(
            g, NcoreConfig(), "O2", name="b"
        )

    def test_verify_mode_participates(self):
        g = small_cnn()
        assert compile_key(g, NcoreConfig(), "O2", verify=True) != compile_key(
            g, NcoreConfig(), "O2", verify=False
        )

    def test_config_fingerprint_deterministic(self):
        assert fingerprint_config(NcoreConfig()) == fingerprint_config(NcoreConfig())


class TestKeyStability:
    def test_key_is_computed_before_mutation(self):
        """compile_graph keys the *input* graph, so a recompile of a fresh
        build hits even though the first compile optimized its copy."""
        from repro.compiler import CompileCache, compile_graph

        cache = CompileCache()
        first = compile_graph(small_cnn(), cache=cache)
        second = compile_graph(small_cnn(), cache=cache)
        assert first.key == second.key
        assert second.cache_hit
