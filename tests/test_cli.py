"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestInfo:
    def test_prints_configuration(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "20.48 TOPS" in out
        assert "160 GB/s" in out
        assert "16 MB" in out


class TestSelftest:
    def test_post_passes(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert out.count("PASS") == 4
        assert "POST passed" in out


class TestModels:
    def test_lists_zoo(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for key in ("mobilenet_v1", "resnet50_v15", "ssd_mobilenet_v1", "gnmt"):
            assert key in out


class TestBench:
    def test_benchmarks_a_model(self, capsys):
        assert main(["bench", "mobilenet_v1"]) == 0
        out = capsys.readouterr().out
        assert "SingleStream latency" in out
        assert "Offline throughput" in out

    def test_unknown_model_errors(self, capsys):
        assert main(["bench", "alexnet"]) == 2
        assert "unknown model" in capsys.readouterr().err


class TestServe:
    def test_runs_the_server_scenario(self, capsys):
        assert main(["serve", "mobilenet_v1", "--queries", "128"]) == 0
        out = capsys.readouterr().out
        assert "Server scenario" in out
        assert "sustained" in out
        assert "latency p99" in out
        assert "mean batch size" in out

    def test_accepts_qps_and_sockets(self, capsys):
        assert main([
            "serve", "resnet", "--queries", "64", "--qps", "500", "--sockets", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 sockets" in out
        assert "500.0 QPS" in out

    def test_is_seed_deterministic(self, capsys):
        args = ["serve", "mobilenet_v1", "--queries", "64", "--seed", "9"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_unknown_model_errors(self, capsys):
        assert main(["serve", "alexnet"]) == 2
        assert "unknown model" in capsys.readouterr().err

    def test_bad_parameters_exit_2(self, capsys):
        assert main(["serve", "gnmt", "--queries", "0"]) == 2
        assert "--queries" in capsys.readouterr().err
        assert main(["serve", "gnmt", "--qps", "0"]) == 2
        assert "--qps" in capsys.readouterr().err


class TestCompileAndRun:
    @pytest.fixture
    def saved_graph(self, tmp_path):
        from repro.graph.frontends import save_graph
        from tests.quantize.test_convert import small_cnn

        save_graph(small_cnn(), tmp_path / "model")
        return str(tmp_path / "model")

    def test_compile_reports_summary(self, saved_graph, capsys):
        assert main(["compile", saved_graph]) == 0
        out = capsys.readouterr().out
        assert "segments" in out
        assert "Ncore portion" in out

    def test_compile_prints_stage_stats(self, saved_graph, capsys):
        assert main(["compile", saved_graph]) == 0
        out = capsys.readouterr().out
        for stage in ("optimize:", "partition:", "verify:", "plan:",
                      "lower:", "finalize:"):
            assert stage in out

    def test_compile_dump_ir_all(self, saved_graph, capsys):
        assert main(["compile", saved_graph, "--dump-ir", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "=== IR: input ===" in out
        assert "=== IR after partition ===" in out
        assert "compiler spans recorded" in out

    def test_compile_dump_ir_single_stage(self, saved_graph, capsys):
        assert main(["compile", saved_graph, "--dump-ir=lower"]) == 0
        out = capsys.readouterr().out
        assert "=== IR after lower ===" in out
        assert "loadables:" in out

    def test_compile_dump_ir_unknown_stage_errors(self, saved_graph, capsys):
        assert main(["compile", saved_graph, "--dump-ir=bogus"]) == 2
        assert "no IR snapshot" in capsys.readouterr().err

    def test_compile_opt_level_o0_skips_optimize(self, saved_graph, capsys):
        assert main(["compile", saved_graph, "-O", "O0"]) == 0
        out = capsys.readouterr().out
        assert "optimize:" not in out
        assert "partition:" in out

    def test_compile_cache_dir_serves_second_compile(self, saved_graph,
                                                     tmp_path, capsys):
        cache_dir = str(tmp_path / "cc")
        assert main(["compile", saved_graph, "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["compile", saved_graph, "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "cache hit" in out
        assert "Ncore portion" in out

    def test_compile_zoo_key_runs_quantized_pipeline(self, capsys):
        assert main(["compile", "mobilenet_v1", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "quantize:" in out
        assert "mode=uint8" in out
        assert "Ncore portion" in out

    def test_compile_unknown_target_errors(self, capsys):
        assert main(["compile", "/nonexistent/graph"]) == 2
        assert "unknown model or graph path" in capsys.readouterr().err

    def test_run_executes(self, saved_graph, capsys):
        assert main(["run", saved_graph, "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "output" in out
        assert "latency" in out

    def test_run_is_seed_deterministic(self, saved_graph, capsys):
        main(["run", saved_graph, "--seed", "3"])
        first = capsys.readouterr().out
        main(["run", saved_graph, "--seed", "3"])
        second = capsys.readouterr().out
        assert first == second


class TestTrace:
    def test_writes_valid_chrome_trace(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "mn.trace.json"
        csv_path = tmp_path / "mn.metrics.csv"
        assert main([
            "trace", "mobilenet", "-o", str(out_path),
            "--queries", "8", "--metrics-csv", str(csv_path), "--render",
        ]) == 0
        out = capsys.readouterr().out
        assert "spans on" in out
        assert "p90 SingleStream latency" in out
        doc = json.loads(out_path.read_text())
        tracks = {
            e["args"]["name"] for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        # Spans from at least four distinct layers of the stack.
        assert {"delegate", "driver", "dma", "ncore", "mlperf"} <= tracks
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        csv = csv_path.read_text().splitlines()
        assert csv[0].startswith("name,kind,unit")
        assert any(line.startswith("dma.bytes_moved,") for line in csv)
        assert "[ncore]" in out  # --render output

    def test_unknown_model_errors(self, capsys):
        assert main(["trace", "alexnet"]) == 2
        assert "unknown model" in capsys.readouterr().err

    def test_ambiguous_prefix_errors(self, capsys):
        # "mobilenet_v1" and "ssd_mobilenet_v1" both contain "net".
        assert main(["trace", "net"]) == 2
        assert "unknown model" in capsys.readouterr().err


class TestReproduce:
    def test_full_report_renders(self, capsys):
        assert main(["reproduce"]) == 0
        out = capsys.readouterr().out
        for heading in (
            "Table II", "Table V", "Table VII", "Table VIII", "Table IX",
            "Fig. 13", "Fig. 14",
        ):
            assert heading in out
        assert "Ncore (simulated)" in out
        assert "NVIDIA AGX Xavier" in out
        assert "Server scenario" in out


class TestServeTelemetry:
    def test_slo_flag_prints_status(self, capsys):
        assert main(["serve", "mobilenet_v1", "--queries", "64",
                     "--slo-ms", "1000"]) == 0
        out = capsys.readouterr().out
        assert "SLO" in out
        assert "OK" in out

    def test_artifact_flags_write_files(self, capsys, tmp_path):
        trace = tmp_path / "serve.trace.json"
        frames = tmp_path / "frames.jsonl"
        prom = tmp_path / "metrics.prom"
        harvest = tmp_path / "harvest.jsonl"
        flame = tmp_path / "flame.txt"
        assert main([
            "serve", "mobilenet_v1", "--queries", "32",
            "--trace", str(trace), "--telemetry", str(frames),
            "--prometheus", str(prom), "--harvest", str(harvest),
            "--flamegraph", str(flame),
        ]) == 0
        capsys.readouterr()
        import json
        events = json.loads(trace.read_text())["traceEvents"]
        assert any(e.get("ph") == "s" for e in events)
        assert frames.read_text().strip()
        assert "server_latency_seconds" in prom.read_text()
        first = json.loads(harvest.read_text().splitlines()[0])
        assert first["tier"] == "timing-model"
        assert flame.read_text().strip()


class TestTop:
    def test_live_run_renders_frames(self, capsys):
        assert main(["top", "mobilenet_v1", "--queries", "64",
                     "--no-ansi"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "p99" in out
        assert "sockets" in out

    def test_replay_round_trip(self, capsys, tmp_path):
        frames = tmp_path / "frames.jsonl"
        assert main(["serve", "mobilenet_v1", "--queries", "32",
                     "--telemetry", str(frames)]) == 0
        capsys.readouterr()
        assert main(["top", "--replay", str(frames), "--no-ansi"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "mobilenet_v1" in out

    def test_replay_missing_file_exits_2(self, capsys, tmp_path):
        assert main(["top", "--replay", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such" in capsys.readouterr().err.lower()

    def test_no_model_and_no_replay_exits_2(self, capsys):
        assert main(["top"]) == 2
        assert "model" in capsys.readouterr().err
