"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


class TestInfo:
    def test_prints_configuration(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "20.48 TOPS" in out
        assert "160 GB/s" in out
        assert "16 MB" in out


class TestSelftest:
    def test_post_passes(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert out.count("PASS") == 4
        assert "POST passed" in out


class TestModels:
    def test_lists_zoo(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for key in ("mobilenet_v1", "resnet50_v15", "ssd_mobilenet_v1", "gnmt"):
            assert key in out


class TestBench:
    def test_benchmarks_a_model(self, capsys):
        assert main(["bench", "mobilenet_v1"]) == 0
        out = capsys.readouterr().out
        assert "SingleStream latency" in out
        assert "Offline throughput" in out

    def test_unknown_model_errors(self, capsys):
        assert main(["bench", "alexnet"]) == 2
        assert "unknown model" in capsys.readouterr().err


class TestCompileAndRun:
    @pytest.fixture
    def saved_graph(self, tmp_path):
        from repro.graph.frontends import save_graph
        from tests.quantize.test_convert import small_cnn

        save_graph(small_cnn(), tmp_path / "model")
        return str(tmp_path / "model")

    def test_compile_reports_summary(self, saved_graph, capsys):
        assert main(["compile", saved_graph]) == 0
        out = capsys.readouterr().out
        assert "segments" in out
        assert "Ncore portion" in out

    def test_run_executes(self, saved_graph, capsys):
        assert main(["run", saved_graph, "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "output" in out
        assert "latency" in out

    def test_run_is_seed_deterministic(self, saved_graph, capsys):
        main(["run", saved_graph, "--seed", "3"])
        first = capsys.readouterr().out
        main(["run", saved_graph, "--seed", "3"])
        second = capsys.readouterr().out
        assert first == second


class TestReproduce:
    def test_full_report_renders(self, capsys):
        assert main(["reproduce"]) == 0
        out = capsys.readouterr().out
        for heading in (
            "Table II", "Table V", "Table VII", "Table VIII", "Table IX",
            "Fig. 13", "Fig. 14",
        ):
            assert heading in out
        assert "Ncore (simulated)" in out
        assert "NVIDIA AGX Xavier" in out
