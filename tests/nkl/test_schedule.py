"""Tests for the NKL kernel schedules and the Fig. 7 cycle model."""

from hypothesis import given
from hypothesis import strategies as st

from repro.dtypes import NcoreDType
from repro.nkl import (
    conv2d_schedule,
    depthwise_schedule,
    elementwise_schedule,
    lstm_schedule,
    matmul_schedule,
    pool_schedule,
)


class TestConvSchedule:
    def test_perfect_64x64_pointwise(self):
        # W=64, K=64, the Fig. 7 running example: one pass, one cycle per
        # input channel.
        s = conv2d_schedule(
            in_channels=256, out_channels=64, h_out=1, w_out=64, filter_h=1, filter_w=1
        )
        assert s.passes == 1
        assert s.inner_cycles == 256
        assert s.macs == 64 * 64 * 256

    def test_utilization_at_most_one(self):
        # Setup + epilogue overheads on a 256-cycle inner loop leave ~87%.
        s = conv2d_schedule(256, 64, 1, 64, 1, 1)
        assert 0.85 < s.utilization <= 1.0
        # A deeper reduction amortizes the overheads away.
        deep = conv2d_schedule(2048, 64, 1, 64, 1, 1)
        assert deep.utilization > 0.95

    def test_small_width_packs_multiple_rows(self):
        # W=14 rounds to 16; 4 output rows share one 64-lane group, so a
        # 14x14 output needs ceil(14/4)=4 spatial passes, not 14.
        s = conv2d_schedule(256, 64, 14, 14, 1, 1)
        assert s.passes == 4

    def test_wide_output_tiles_by_64(self):
        s = conv2d_schedule(64, 64, 1, 224, 1, 1)
        assert s.passes == -(-224 // 64)

    def test_channel_passes(self):
        narrow = conv2d_schedule(64, 64, 8, 8, 3, 3)
        wide = conv2d_schedule(64, 256, 8, 8, 3, 3)
        assert wide.passes == 4 * narrow.passes

    def test_kxk_scales_inner_loop(self):
        one = conv2d_schedule(64, 64, 8, 8, 1, 1)
        nine = conv2d_schedule(64, 64, 8, 8, 3, 3)
        assert nine.inner_cycles == 9 * one.inner_cycles

    def test_bf16_three_cycles_per_issue(self):
        int8 = conv2d_schedule(64, 64, 8, 8, 3, 3, NcoreDType.INT8)
        bf16 = conv2d_schedule(64, 64, 8, 8, 3, 3, NcoreDType.BF16)
        # bf16 inner issues cost 3 clocks (Table II ratio ~3x at high util).
        assert bf16.cycles > 2.5 * int8.inner_cycles * int8.passes

    def test_batch_scales_passes(self):
        b1 = conv2d_schedule(64, 64, 8, 8, 3, 3, batch=1)
        b4 = conv2d_schedule(64, 64, 8, 8, 3, 3, batch=4)
        assert b4.passes == 4 * b1.passes
        assert b4.macs == 4 * b1.macs

    @given(
        st.integers(1, 512),
        st.integers(1, 512),
        st.integers(1, 112),
        st.integers(1, 112),
        st.sampled_from([1, 3, 5, 7]),
    )
    def test_cycles_bounded_below_by_ideal(self, cin, cout, h, w, k):
        s = conv2d_schedule(cin, cout, h, w, k, k)
        ideal = s.macs / 4096
        assert s.cycles >= ideal
        assert 0.0 <= s.utilization <= 1.0


class TestDepthwiseSchedule:
    def test_inner_loop_is_filter_taps_only(self):
        s = depthwise_schedule(channels=64, h_out=8, w_out=8, filter_h=3, filter_w=3)
        assert s.inner_cycles == 9

    def test_low_arithmetic_intensity_vs_conv(self):
        # Depthwise moves far fewer MACs per pass; MobileNet's depthwise
        # layers are what pull whole-network utilization down.
        dw = depthwise_schedule(512, 14, 14, 3, 3)
        conv = conv2d_schedule(512, 512, 14, 14, 1, 1)
        assert dw.macs / dw.cycles < conv.macs / conv.cycles


class TestMatmulSchedule:
    def test_single_tile(self):
        s = matmul_schedule(rows=64, inner=1024, cols=64)
        assert s.passes == 1
        assert s.inner_cycles == 1024

    def test_tiles_rows_and_cols(self):
        s = matmul_schedule(rows=128, inner=100, cols=128)
        assert s.passes == 4

    def test_gnmt_style_bf16(self):
        s = matmul_schedule(1, 2048, 4096, NcoreDType.BF16)
        assert s.macs == 2048 * 4096
        assert s.weight_bytes == 2048 * 4096 * 2  # bf16 weights


class TestOtherSchedules:
    def test_pool_has_no_macs(self):
        s = pool_schedule(64, 8, 8, 3, 3)
        assert s.macs == 0
        assert s.inner_cycles == 9

    def test_elementwise_rows(self):
        s = elementwise_schedule(4096 * 10)
        assert s.passes == 10

    def test_elementwise_int16_doubles_rows(self):
        s8 = elementwise_schedule(4096 * 10, NcoreDType.INT8)
        s16 = elementwise_schedule(4096 * 10, NcoreDType.INT16)
        assert s16.passes == 2 * s8.passes

    def test_lstm_includes_gate_math(self):
        s = lstm_schedule(batch=1, input_size=1024, hidden=1024, dtype=NcoreDType.BF16)
        m = matmul_schedule(1, 2048, 4096, NcoreDType.BF16)
        assert s.macs == m.macs
        assert s.cycles > m.cycles  # the elementwise gates add cycles


class TestWholeNetworkShape:
    """The cycle model must land network totals in the right regime."""

    def test_resnet_conv_body_sub_millisecond(self):
        # The paper measured 0.71 ms for ResNet-50's Ncore portion; the
        # loop-nest model must land in the same regime (0.3..0.9 ms).
        layers = [
            (3, 64, 112, 112, 7),
            *[(64, 64, 56, 56, 1)] * 3,
            *[(64, 64, 56, 56, 3)] * 3,
            *[(64, 256, 56, 56, 1)] * 4,
            *[(256, 128, 28, 28, 1)] * 4,
            *[(128, 128, 28, 28, 3)] * 4,
            *[(128, 512, 28, 28, 1)] * 4,
            *[(256, 256, 14, 14, 3)] * 6,
            *[(512, 256, 14, 14, 1)] * 6,
            *[(256, 1024, 14, 14, 1)] * 6,
            *[(512, 512, 7, 7, 3)] * 3,
            *[(1024, 512, 7, 7, 1)] * 3,
            *[(512, 2048, 7, 7, 1)] * 3,
        ]
        cycles = sum(conv2d_schedule(ci, co, h, w, k, k).cycles for ci, co, h, w, k in layers)
        seconds = cycles / 2.5e9
        assert 0.3e-3 < seconds < 0.9e-3
