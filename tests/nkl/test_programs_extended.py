"""Machine validation of the extended kernel programs: tiled matmuls,
pooling and elementwise adds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtypes import NcoreDType, QuantParams, dequantize, quantize_multiplier, requantize
from repro.ncore import Ncore
from repro.nkl.programs import (
    ProgramShapeError,
    emit_elementwise_add_program,
    emit_max_pool_rows_program,
    emit_tiled_matmul_program,
)
from repro.runtime.qkernels import qfully_connected


def qp(scale, zp):
    return QuantParams(scale=scale, zero_point=zp, dtype=NcoreDType.UINT8)


class TestTiledMatmul:
    def _check(self, m, c, n, seed=0, activation="none"):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 255, size=(m, c)).astype(np.uint8)
        weights = rng.integers(0, 255, size=(c, n)).astype(np.uint8)
        in_qp, w_qp, out_qp = qp(0.01, 128), qp(0.01, 128), qp(0.05, 8)
        machine = Ncore()
        program, result = emit_tiled_matmul_program(
            machine, data, weights, in_qp, w_qp, out_qp, activation
        )
        run = machine.execute_program(program)
        assert run.halted
        out = result.read(machine)
        expected = qfully_connected(
            data, weights, None, in_qp, w_qp, out_qp, activation
        )
        np.testing.assert_array_equal(out, expected)
        return run

    def test_multi_row_tiles(self):
        # M = 100 > 64: two row tiles.
        self._check(m=100, c=32, n=16)

    def test_multi_col_tiles(self):
        # N = 100 > 64: two column tiles.
        self._check(m=16, c=32, n=100)

    def test_both_dimensions_tiled_with_deep_reduction(self):
        self._check(m=80, c=130, n=70, seed=3)

    def test_with_relu(self):
        self._check(m=70, c=16, n=70, seed=4, activation="relu")

    @settings(max_examples=6, deadline=None)
    @given(st.integers(1, 140), st.integers(1, 70), st.integers(1, 140), st.integers(0, 10**6))
    def test_random_tiled_shapes(self, m, c, n, seed):
        self._check(m, c, n, seed)

    def test_capacity_guard(self):
        machine = Ncore()
        with pytest.raises(ProgramShapeError):
            emit_tiled_matmul_program(
                machine,
                np.zeros((4096, 2000), np.uint8),
                np.zeros((2000, 64), np.uint8),
                qp(1, 0), qp(1, 0), qp(1, 0),
            )


class TestMaxPoolRows:
    def test_reduces_rows_to_elementwise_max(self):
        rng = np.random.default_rng(5)
        rows = rng.integers(0, 255, size=(6, 4096)).astype(np.uint8)
        machine = Ncore()
        program, out_row = emit_max_pool_rows_program(machine, rows)
        machine.execute_program(program)
        out = np.frombuffer(machine.read_data_ram(out_row * 4096, 4096), np.uint8)
        np.testing.assert_array_equal(out, rows.max(axis=0))

    def test_one_cycle_per_row(self):
        rows = np.zeros((10, 4096), dtype=np.uint8)
        machine = Ncore()
        program, _ = emit_max_pool_rows_program(machine, rows)
        run = machine.execute_program(program)
        # setaddr + clear + 10 fused MAX + setaddr + requant + store + halt
        assert run.cycles == 1 + 1 + 10 + 1 + 1 + 1 + 1

    def test_partial_rows_rejected(self):
        machine = Ncore()
        with pytest.raises(ProgramShapeError):
            emit_max_pool_rows_program(machine, np.zeros((2, 100), np.uint8))


class TestElementwiseAdd:
    def test_matches_requantized_sum(self):
        rng = np.random.default_rng(6)
        a = rng.integers(0, 255, 4096).astype(np.uint8)
        b = rng.integers(0, 255, 4096).astype(np.uint8)
        in_qp, out_qp = qp(0.02, 128), qp(0.05, 10)
        machine = Ncore()
        program, out_row = emit_elementwise_add_program(machine, a, b, in_qp, out_qp)
        machine.execute_program(program)
        out = np.frombuffer(machine.read_data_ram(out_row * 4096, 4096), np.uint8)
        acc = (a.astype(np.int64) - 128) + (b.astype(np.int64) - 128)
        mult, shift = quantize_multiplier(in_qp.scale / out_qp.scale)
        expected = requantize(acc.astype(np.int32), mult, shift, 10, NcoreDType.UINT8)
        np.testing.assert_array_equal(out, expected)

    def test_real_value_semantics(self):
        in_qp, out_qp = qp(0.1, 0), qp(0.2, 0)
        a = np.full(4096, 30, np.uint8)  # 3.0
        b = np.full(4096, 40, np.uint8)  # 4.0
        machine = Ncore()
        program, out_row = emit_elementwise_add_program(machine, a, b, in_qp, out_qp)
        machine.execute_program(program)
        out = np.frombuffer(machine.read_data_ram(out_row * 4096, 4096), np.uint8)
        assert dequantize(out[:1], out_qp)[0] == pytest.approx(7.0, abs=0.2)

    def test_single_cycle_compute(self):
        machine = Ncore()
        program, _ = emit_elementwise_add_program(
            machine, np.zeros(4096, np.uint8), np.zeros(4096, np.uint8), qp(1, 0), qp(1, 0)
        )
        run = machine.execute_program(program)
        # add + setaddr + requant + store + halt
        assert run.cycles == 5


class TestConv2dProgram:
    """Full 2-D quantized convolution on the instruction simulator vs the
    numpy quantized reference (qconv2d) — bit-exact."""

    def _check(self, h, w, cin, cout, k, padding, seed=0, activation="none",
               stride=(1, 1)):
        from repro.nkl.programs import emit_conv2d_program, run_streamed
        from repro.runtime.qkernels import qconv2d

        rng = np.random.default_rng(seed)
        x = rng.integers(0, 255, size=(1, h, w, cin)).astype(np.uint8)
        weights = rng.integers(0, 255, size=(k, k, cin, cout)).astype(np.uint8)
        in_qp, w_qp, out_qp = qp(0.02, 128), qp(0.01, 120), qp(0.3, 5)
        machine = Ncore()
        program, result = emit_conv2d_program(
            machine, x, weights, in_qp, w_qp, out_qp,
            padding=padding, stride=stride, activation=activation,
        )
        run = run_streamed(machine, program)
        assert run.halted
        out = result.read(machine)
        expected = qconv2d(
            x, weights, None, in_qp, w_qp, out_qp,
            stride=stride, padding=padding, activation=activation,
        )
        np.testing.assert_array_equal(out, expected)
        return run, machine

    def test_3x3_same_padding(self):
        self._check(h=6, w=6, cin=4, cout=16, k=3, padding=((1, 1), (1, 1)))

    def test_3x3_valid(self):
        self._check(h=8, w=8, cin=3, cout=8, k=3, padding=((0, 0), (0, 0)), seed=2)

    def test_5x5_filter(self):
        self._check(h=6, w=6, cin=2, cout=12, k=5, padding=((2, 2), (2, 2)), seed=3)

    def test_1x1_pointwise(self):
        self._check(h=4, w=7, cin=32, cout=64, k=1, padding=((0, 0), (0, 0)), seed=4)

    def test_with_relu(self):
        self._check(h=5, w=5, cin=4, cout=8, k=3, padding=((1, 1), (1, 1)),
                    seed=5, activation="relu")

    def test_asymmetric_padding(self):
        # The TF 'SAME' asymmetric case: extra pixel bottom/right.
        self._check(h=6, w=6, cin=2, cout=4, k=3, padding=((0, 1), (0, 1)), seed=6)

    def test_inner_loops_one_cycle_per_tap(self):
        run, machine = self._check(
            h=4, w=4, cin=2, cout=4, k=3, padding=((1, 1), (1, 1)), seed=7
        )
        # Fused MAC issues = h_out * kh * cin * kw taps, plus one
        # accumulator-clear MAC per output row, one clock each.
        assert machine.total_macs == (4 * 3 * 2 * 3 + 4) * 4096

    def test_stride2_stem_like(self):
        # The classic stem: 3x3 stride-2 with SAME padding.
        self._check(h=9, w=9, cin=3, cout=16, k=3,
                    padding=((1, 1), (1, 1)), stride=(2, 2), seed=8)

    def test_stride2_valid_7x7(self):
        # A 7x7/2 VALID conv on a pre-padded input (the ResNet stem form).
        self._check(h=15, w=15, cin=1, cout=8, k=7,
                    padding=((0, 0), (0, 0)), stride=(2, 2), seed=9)

    def test_stride2_pointwise(self):
        self._check(h=8, w=8, cin=4, cout=8, k=1,
                    padding=((0, 0), (0, 0)), stride=(2, 2), seed=10)

    def test_unsupported_stride_rejected(self):
        from repro.nkl.programs import ProgramShapeError, emit_conv2d_program

        with pytest.raises(ProgramShapeError):
            emit_conv2d_program(
                Ncore(),
                np.zeros((1, 8, 8, 2), np.uint8),
                np.zeros((3, 3, 2, 4), np.uint8),
                qp(1, 0), qp(1, 0), qp(1, 0),
                stride=(3, 3),
            )

    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(3, 7),
        st.integers(3, 7),
        st.integers(1, 5),
        st.integers(1, 24),
        st.sampled_from([1, 3]),
        st.sampled_from([1, 2]),
        st.integers(0, 10**6),
    )
    def test_random_small_convolutions(self, h, w, cin, cout, k, stride, seed):
        pad = k // 2
        self._check(h, w, cin, cout, k, ((pad, pad), (pad, pad)), seed,
                    stride=(stride, stride))


class TestDepthwiseProgram:
    """Depthwise convolution on the simulator vs qdepthwise — bit-exact."""

    def _check(self, h, w, c, k, padding, seed=0, activation="none"):
        from repro.nkl.programs import emit_depthwise_program, run_streamed
        from repro.runtime.qkernels import qdepthwise

        rng = np.random.default_rng(seed)
        x = rng.integers(0, 255, size=(1, h, w, c)).astype(np.uint8)
        weights = rng.integers(0, 255, size=(k, k, c)).astype(np.uint8)
        in_qp, w_qp, out_qp = qp(0.02, 128), qp(0.01, 120), qp(0.5, 5)
        machine = Ncore()
        program, result = emit_depthwise_program(
            machine, x, weights, in_qp, w_qp, out_qp,
            padding=padding, activation=activation,
        )
        run = run_streamed(machine, program)
        assert run.halted
        out = result.read(machine)
        expected = qdepthwise(
            x, weights, None, in_qp, w_qp, out_qp,
            stride=(1, 1), padding=padding, activation=activation,
        )
        np.testing.assert_array_equal(out, expected)
        return run, machine

    def test_3x3_same(self):
        self._check(h=8, w=8, c=16, k=3, padding=((1, 1), (1, 1)))

    def test_many_channels_one_pass(self):
        self._check(h=6, w=6, c=64, k=3, padding=((1, 1), (1, 1)), seed=2)

    def test_with_relu6(self):
        self._check(h=5, w=5, c=8, k=3, padding=((1, 1), (1, 1)),
                    seed=3, activation="relu6")

    def test_channel_count_does_not_change_cycles(self):
        # The depthwise property: kh*kw taps per output row, independent
        # of the channel count — exactly why its MACs/cycle is low.
        run_few, _ = self._check(h=6, w=6, c=4, k=3, padding=((1, 1), (1, 1)))
        run_many, _ = self._check(h=6, w=6, c=64, k=3, padding=((1, 1), (1, 1)))
        assert run_few.cycles == run_many.cycles

    @settings(max_examples=6, deadline=None)
    @given(
        st.integers(3, 8), st.integers(3, 8), st.integers(1, 64),
        st.sampled_from([1, 3]), st.integers(0, 10**6),
    )
    def test_random_depthwise(self, h, w, c, k, seed):
        pad = k // 2
        self._check(h, w, c, k, ((pad, pad), (pad, pad)), seed)


class TestAvgPoolProgram:
    def test_matches_rounded_mean(self):
        from repro.nkl.programs import emit_avg_pool_program

        rng = np.random.default_rng(7)
        rows = rng.integers(0, 255, size=(4, 4096)).astype(np.uint8)
        machine = Ncore()
        program, out_row = emit_avg_pool_program(machine, rows)
        machine.execute_program(program)
        out = np.frombuffer(machine.read_data_ram(out_row * 4096, 4096), np.uint8)
        exact = rows.astype(np.int64).sum(axis=0) / 4
        # The requantizer's fixed-point rounding is within 1 code of the
        # true mean.
        assert np.abs(out.astype(np.int64) - np.round(exact)).max() <= 1

    def test_constant_rows_average_exactly(self):
        from repro.nkl.programs import emit_avg_pool_program

        rows = np.stack([np.full(4096, v, np.uint8) for v in (10, 20, 30)])
        machine = Ncore()
        program, out_row = emit_avg_pool_program(machine, rows)
        machine.execute_program(program)
        out = np.frombuffer(machine.read_data_ram(out_row * 4096, 4096), np.uint8)
        assert (out == 20).all()


class TestPerChannelRequantOnMachine:
    """Per-channel weight quantization through the OUT unit's per-lane
    registers, bit-exact against the per-channel fast model."""

    def test_per_channel_matmul_matches_fast_model(self):
        from repro.dtypes import ChannelQuantParams
        from repro.nkl.programs import emit_matmul_program

        rng = np.random.default_rng(11)
        m, c, n = 16, 24, 8
        data = rng.integers(0, 255, size=(m, c)).astype(np.uint8)
        weights = rng.integers(0, 255, size=(c, n)).astype(np.uint8)
        in_qp = qp(0.02, 128)
        w_qp = ChannelQuantParams(
            scales=tuple(0.005 * (1 + g) for g in range(n)),
            zero_points=(128,) * n,
            axis=1,
        )
        out_qp = qp(0.3, 9)
        machine = Ncore()
        program, result = emit_matmul_program(
            machine, data, weights, in_qp, w_qp, out_qp
        )
        machine.execute_program(program)
        expected = qfully_connected(data, weights, None, in_qp, w_qp, out_qp)
        np.testing.assert_array_equal(result.read(machine), expected)

    def test_mismatched_channel_count_rejected(self):
        from repro.dtypes import ChannelQuantParams
        from repro.nkl.programs import ProgramShapeError, emit_matmul_program

        w_qp = ChannelQuantParams((0.1, 0.2), (0, 0), axis=1)
        with pytest.raises(ProgramShapeError):
            emit_matmul_program(
                Ncore(),
                np.zeros((4, 8), np.uint8),
                np.zeros((8, 4), np.uint8),  # 4 columns, 2 channel params
                qp(1, 0), w_qp, qp(1, 0),
            )
