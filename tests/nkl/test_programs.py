"""Machine-validation of emitted kernel programs.

Every test runs a real instruction program on the Ncore simulator and
compares the stored results bit-exactly against the numpy quantized
reference — the same methodology the paper used (instruction simulator as
golden model, section V-E).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtypes import QuantParams, NcoreDType
from repro.ncore import Ncore
from repro.nkl.programs import (
    ProgramShapeError,
    emit_conv1d_rotate_program,
    emit_matmul_program,
    pack_weight_row,
    reference_matmul_uint8,
    tile_data_row,
)


def qp(scale, zp):
    return QuantParams(scale=scale, zero_point=zp, dtype=NcoreDType.UINT8)


@pytest.fixture
def machine():
    return Ncore()


class TestLayoutHelpers:
    def test_tile_data_row_repeats_64_times(self):
        row = tile_data_row(np.arange(10, dtype=np.uint8))
        assert row.shape == (4096,)
        for g in range(64):
            np.testing.assert_array_equal(row[g * 64 : g * 64 + 10], np.arange(10))

    def test_tile_rejects_oversize(self):
        with pytest.raises(ProgramShapeError):
            tile_data_row(np.zeros(65, dtype=np.uint8))

    def test_pack_weight_row_layout(self):
        w = np.arange(12, dtype=np.uint8).reshape(3, 4)
        row = pack_weight_row(w)
        for g in range(3):
            np.testing.assert_array_equal(row[g * 64 : g * 64 + 4], w[g])


class TestMatmulProgram:
    def _run(self, machine, data, weights, in_qp, w_qp, out_qp, activation="none"):
        program, result = emit_matmul_program(
            machine, data, weights, in_qp, w_qp, out_qp, activation
        )
        run = machine.execute_program(program)
        assert run.halted
        return result.read(machine), run

    def test_small_matmul_matches_reference(self, machine):
        rng = np.random.default_rng(3)
        data = rng.integers(0, 255, size=(8, 16)).astype(np.uint8)
        weights = rng.integers(0, 255, size=(16, 4)).astype(np.uint8)
        in_qp, w_qp, out_qp = qp(0.02, 128), qp(0.01, 110), qp(0.05, 7)
        out, _ = self._run(machine, data, weights, in_qp, w_qp, out_qp)
        expected = reference_matmul_uint8(data, weights, in_qp, w_qp, out_qp)
        np.testing.assert_array_equal(out, expected)

    def test_deep_reduction_spans_weight_rows(self, machine):
        # c = 150 > 64 exercises the multi-weight-row path.
        rng = np.random.default_rng(4)
        data = rng.integers(0, 255, size=(64, 150)).astype(np.uint8)
        weights = rng.integers(0, 255, size=(150, 64)).astype(np.uint8)
        in_qp, w_qp, out_qp = qp(0.004, 128), qp(0.004, 128), qp(0.02, 0)
        out, _ = self._run(machine, data, weights, in_qp, w_qp, out_qp)
        expected = reference_matmul_uint8(data, weights, in_qp, w_qp, out_qp)
        np.testing.assert_array_equal(out, expected)

    def test_relu_activation(self, machine):
        rng = np.random.default_rng(5)
        data = rng.integers(0, 255, size=(4, 8)).astype(np.uint8)
        weights = rng.integers(0, 255, size=(8, 4)).astype(np.uint8)
        in_qp, w_qp, out_qp = qp(0.02, 128), qp(0.02, 128), qp(0.02, 100)
        out, _ = self._run(machine, data, weights, in_qp, w_qp, out_qp, "relu")
        expected = reference_matmul_uint8(data, weights, in_qp, w_qp, out_qp, "relu")
        np.testing.assert_array_equal(out, expected)
        assert (out >= 100).all()  # clamped at the output zero point

    def test_inner_loop_cycle_count(self, machine):
        # The reduction loop must run one clock per input channel, as the
        # paper claims for the Fig. 6 fused instruction.
        data = np.zeros((8, 32), dtype=np.uint8)
        weights = np.zeros((32, 8), dtype=np.uint8)
        in_qp = w_qp = out_qp = qp(1.0, 0)
        _, run = self._run(machine, data, weights, in_qp, w_qp, out_qp)
        # setup(2) + per-chunk setup(2) + 32 fused + out setup(1) +
        # requant(1) + store(1) + halt(1)
        assert run.cycles == 2 + 2 + 32 + 1 + 1 + 1 + 1

    def test_shape_limits_enforced(self, machine):
        with pytest.raises(ProgramShapeError):
            emit_matmul_program(
                machine,
                np.zeros((65, 8), np.uint8),
                np.zeros((8, 4), np.uint8),
                qp(1, 0), qp(1, 0), qp(1, 0),
            )

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(1, 16),
        st.integers(1, 96),
        st.integers(1, 16),
        st.integers(0, 10**6),
    )
    def test_random_shapes_match_reference(self, m, c, n, seed):
        rng = np.random.default_rng(seed)
        machine = Ncore()
        data = rng.integers(0, 255, size=(m, c)).astype(np.uint8)
        weights = rng.integers(0, 255, size=(c, n)).astype(np.uint8)
        in_qp, w_qp, out_qp = qp(0.02, 128), qp(0.015, 120), qp(0.21, 3)
        program, result = emit_matmul_program(
            machine, data, weights, in_qp, w_qp, out_qp
        )
        machine.execute_program(program)
        out = result.read(machine)
        expected = reference_matmul_uint8(data, weights, in_qp, w_qp, out_qp)
        np.testing.assert_array_equal(out, expected)


class TestConv1dRotateProgram:
    def test_matches_numpy_correlation(self, machine):
        rng = np.random.default_rng(9)
        taps, w_out, k = 3, 30, 8
        data = rng.integers(0, 255, size=(w_out + taps - 1,)).astype(np.uint8)
        weights = rng.integers(0, 255, size=(k, taps)).astype(np.uint8)
        in_qp, w_qp, out_qp = qp(0.02, 128), qp(0.02, 128), qp(0.1, 30)
        program, result = emit_conv1d_rotate_program(
            machine, data, weights, in_qp, w_qp, out_qp
        )
        machine.execute_program(program)
        out = result.read(machine)
        # numpy reference: valid correlation per output channel.
        d = data.astype(np.int64) - 128
        for ch in range(k):
            wt = weights[ch].astype(np.int64) - 128
            acc = np.array(
                [np.dot(d[x : x + taps], wt) for x in range(w_out)], dtype=np.int32
            )
            from repro.dtypes import quantize_multiplier, requantize

            mult, shift = quantize_multiplier(in_qp.scale * w_qp.scale / out_qp.scale)
            ref = requantize(acc, mult, shift, out_qp.zero_point, out_qp.dtype)
            np.testing.assert_array_equal(out[:, ch], ref)

    def test_one_cycle_per_tap(self, machine):
        data = np.zeros(34, dtype=np.uint8)
        weights = np.zeros((4, 3), dtype=np.uint8)
        program, _ = emit_conv1d_rotate_program(
            machine, data, weights, qp(1, 0), qp(1, 0), qp(1, 0)
        )
        run = machine.execute_program(program)
        # 3 setaddr + bypass + 3 fused taps + setaddr + requant + store + halt
        assert run.cycles == 3 + 1 + 3 + 1 + 1 + 1 + 1

    def test_halo_must_fit_tile(self, machine):
        with pytest.raises(ProgramShapeError):
            emit_conv1d_rotate_program(
                machine,
                np.zeros(70, np.uint8),
                np.zeros((4, 3), np.uint8),
                qp(1, 0), qp(1, 0), qp(1, 0),
            )
