"""Tests for lowering GIR segments to Ncore Loadables."""

import numpy as np
import pytest

from repro.graph import Graph, Node, Tensor, TensorType, partition
from repro.nkl import lower_segment
from repro.nkl.lower import _node_dtype
from repro.dtypes import NcoreDType


def conv_pool_graph():
    g = Graph("lower_test")
    g.add_input("x", TensorType((1, 16, 16, 8), NcoreDType.UINT8))
    g.add_constant("w", np.zeros((3, 3, 8, 16), np.int8))
    g.add_tensor(Tensor("c", TensorType((1, 16, 16, 16), NcoreDType.UINT8)))
    g.add_tensor(Tensor("p", TensorType((1, 8, 8, 16), NcoreDType.UINT8)))
    g.add_node(Node("conv", "conv2d", ["x", "w"], ["c"], {"padding": ((1, 1), (1, 1))}))
    g.add_node(Node("pool", "max_pool", ["c"], ["p"], {"ksize": (2, 2), "stride": (2, 2)}))
    g.mark_output("p")
    return g


class TestLowerSegment:
    def test_kernels_in_node_order(self):
        g = conv_pool_graph()
        (segment,) = partition(g)
        loadable = lower_segment(g, segment)
        assert [k.node_name for k in loadable.kernels] == ["conv", "pool"]
        assert [k.kernel for k in loadable.kernels] == ["conv2d", "pool"]

    def test_cycles_and_macs_recorded(self):
        g = conv_pool_graph()
        (segment,) = partition(g)
        loadable = lower_segment(g, segment)
        conv = loadable.kernels[0]
        assert conv.cycles > 0
        assert conv.macs == 16 * 16 * 16 * 3 * 3 * 8
        assert loadable.kernels[1].macs == 0  # pooling moves, no MACs

    def test_weight_bytes_from_constants(self):
        g = conv_pool_graph()
        (segment,) = partition(g)
        loadable = lower_segment(g, segment)
        assert loadable.kernels[0].weight_bytes == 3 * 3 * 8 * 16
        assert loadable.weight_image_bytes == 3 * 3 * 8 * 16

    def test_memory_plan_attached(self):
        g = conv_pool_graph()
        (segment,) = partition(g)
        loadable = lower_segment(g, segment)
        assert loadable.memory_plan.weights_pinned  # 1 KB of weights
        assert "x" in loadable.memory_plan.data_allocs

    def test_x86_segment_rejected(self):
        g = Graph()
        g.add_input("x", TensorType((4, 4)))
        g.add_tensor(Tensor("y", TensorType((4, 4))))
        g.add_node(Node("s", "softmax", ["x"], ["y"]))
        g.mark_output("y")
        (segment,) = partition(g)
        assert segment.target == "x86"
        with pytest.raises(ValueError):
            lower_segment(g, segment)

    def test_float_nodes_lower_as_bf16(self):
        # Float32 ops execute on Ncore as bfloat16 (the GNMT path).
        g = Graph()
        g.add_input("x", TensorType((1, 64)))
        g.add_constant("w", np.zeros((64, 64), np.float32))
        g.add_tensor(Tensor("y", TensorType((1, 64))))
        g.add_node(Node("fc", "fully_connected", ["x", "w"], ["y"]))
        g.mark_output("y")
        assert _node_dtype(g, g.node("fc")) is NcoreDType.BF16
        (segment,) = partition(g)
        loadable = lower_segment(g, segment)
        assert loadable.kernels[0].meta["dtype"] == "bf16"

    def test_utilization_meta(self):
        g = conv_pool_graph()
        (segment,) = partition(g)
        loadable = lower_segment(g, segment)
        assert 0.0 < loadable.kernels[0].meta["utilization"] <= 1.0
        assert 0.0 < loadable.mean_utilization <= 1.0

    def test_dma_overlap_model(self):
        # With pinned weights, total == compute; forcing streaming can
        # only add stall cycles.
        g = conv_pool_graph()
        (segment,) = partition(g)
        loadable = lower_segment(g, segment)
        assert loadable.total_cycles() == loadable.compute_cycles
        loadable.memory_plan.weights_pinned = False
        assert loadable.total_cycles() >= loadable.compute_cycles
