"""One seeded violation per ``hazard.*`` happens-before rule.

Mirrors the loadable-rule test pattern: lower a small quantized segment
with ``verify=False`` (or assemble a tiny program), then mutate the
prefetch schedule / reorder the DMA instructions to carry exactly the
ordering defect each rule targets.
"""

import numpy as np

from repro.analyze import (
    HazardGraph,
    analyze_loadable,
    analyze_model,
    analyze_program_hazards,
    build_loadable_hazard_graph,
    build_program_hazard_graph,
    render_dot,
)
from repro.dtypes import NcoreDType, QuantParams
from repro.graph.gir import Graph, Node, Tensor, TensorType
from repro.graph.partitioner import partition
from repro.graph.planner import Prefetch, RowRange
from repro.isa import assemble
from repro.isa.instruction import DMAOp
from repro.models import MODEL_BUILDERS
from repro.nkl.lower import lower_segment
from repro.runtime.delegate import compile_model

UINT8 = NcoreDType.UINT8
QP = QuantParams(scale=0.05, zero_point=128)

# An inbound (DRAM -> data RAM) and an outbound (data RAM -> DRAM)
# one-row transfer, both at window address 0.
INBOUND = {0: DMAOp(False, False, 0, 1, 0, False)}
OUTBOUND = {0: DMAOp(True, False, 0, 1, 0, False)}


def _find(report, rule_id):
    found = report.by_rule(rule_id)
    assert found, f"no {rule_id} in {[d.rule for d in report]}"
    return found[0]


def _rules(report):
    return {d.rule for d in report}


def _fc_chain():
    """x -> fc1(w1) -> h -> fc2(w2) -> y -> relu -> z."""
    graph = Graph("hazard-fixture")
    graph.add_input("x", TensorType((1, 64), UINT8), quant=QP)
    graph.add_constant("w1", np.ones((64, 64), np.uint8), quant=QP)
    graph.add_constant("w2", np.ones((64, 64), np.uint8), quant=QP)
    graph.add_tensor(Tensor("h", TensorType((1, 64), UINT8), quant=QP))
    graph.add_tensor(Tensor("y", TensorType((1, 64), UINT8), quant=QP))
    graph.add_tensor(Tensor("z", TensorType((1, 64), UINT8), quant=QP))
    graph.add_node(Node("fc1", "fully_connected", ["x", "w1"], ["h"]))
    graph.add_node(Node("fc2", "fully_connected", ["h", "w2"], ["y"]))
    graph.add_node(Node("relu", "relu", ["y"], ["z"]))
    graph.mark_output("z")
    return graph


def _lower(graph):
    (segment,) = partition(graph)
    assert segment.target == "ncore"
    return segment, lower_segment(graph, segment, verify=False)


class TestLoadableClean:
    def test_lowered_fc_chain_has_no_hazards(self):
        graph = _fc_chain()
        _, loadable = _lower(graph)
        report = analyze_loadable(graph, loadable)
        assert report.ok
        assert not any(d.rule.startswith("hazard.") for d in report)

    def test_mobilenet_has_no_hazards(self):
        compiled = compile_model(MODEL_BUILDERS["mobilenet_v1"]())
        report = analyze_model(compiled)
        hazards = [d for d in report if d.rule.startswith("hazard.")]
        assert not hazards, [d.message for d in hazards]


class TestLoadableHazards:
    def test_raw_prefetch_completes_after_first_consumer(self):
        graph = _fc_chain()
        _, loadable = _lower(graph)
        # w1 is consumed by fc1 (node 0) but the data edge only lands
        # before fc2 (node 1): fc1 reads rows still being written.
        loadable.memory_plan.prefetches = [Prefetch("w1", 0, 1, 64 * 64)]
        finding = _find(analyze_loadable(graph, loadable), "hazard.raw")
        assert finding.location.element == "w1"

    def test_war_needed_order_inversion_pinned(self):
        graph = _fc_chain()
        _, loadable = _lower(graph)
        plan = loadable.memory_plan
        # Overlapping landing zones, and the queue delivers w2 (needed at
        # node 1) before w1 (needed at node 0): the later transfer lands
        # in rows whose data a later kernel still reads.
        plan.weight_allocs = {"w1": RowRange(0, 4), "w2": RowRange(2, 4)}
        plan.prefetches = [
            Prefetch("w2", 0, 1, 64 * 64),
            Prefetch("w1", 0, 0, 64 * 64),
        ]
        finding = _find(analyze_loadable(graph, loadable), "hazard.war")
        assert finding.location.element == "w1"

    def test_war_streamed_same_parity_inversion(self):
        graph = _fc_chain()
        _, loadable = _lower(graph)
        plan = loadable.memory_plan
        plan.weights_pinned = False
        # Streaming double-buffer: queue slots 0 and 2 land in the same
        # buffer half, and slot 2's chunk is needed before slot 0's.
        plan.prefetches = [
            Prefetch("w2", 0, 1, 64 * 64),
            Prefetch("w1#chunk0", 0, 0, 32 * 64),
            Prefetch("w1#chunk1", 0, 0, 32 * 64),
        ]
        report = analyze_loadable(graph, loadable)
        finding = _find(report, "hazard.war")
        assert finding.location.element == "w1#chunk1"

    def test_streamed_adjacent_slots_do_not_overlap(self):
        graph = _fc_chain()
        _, loadable = _lower(graph)
        plan = loadable.memory_plan
        plan.weights_pinned = False
        # Adjacent queue slots alternate buffer halves — a needed-order
        # inversion between them is serialized by the double buffer.
        plan.prefetches = [
            Prefetch("w2", 0, 1, 64 * 64),
            Prefetch("w1", 0, 0, 64 * 64),
        ]
        report = analyze_loadable(graph, loadable)
        assert not report.by_rule("hazard.war")

    def test_dead_write_prefetch_of_unconsumed_tensor(self):
        graph = _fc_chain()
        _, loadable = _lower(graph)
        loadable.memory_plan.prefetches.append(Prefetch("ghost", 0, 0, 4096))
        finding = _find(analyze_loadable(graph, loadable), "hazard.dead-write")
        assert finding.location.element == "ghost"

    def test_hb_cycle_prefetch_issued_after_consumer(self):
        graph = _fc_chain()
        _, loadable = _lower(graph)
        # Issued after kernel 1 but needed before kernel 0: the program
        # edge k1 -> p and the data edge p -> k0 close a cycle with the
        # kernel order edge k0 -> k1.
        loadable.memory_plan.prefetches = [Prefetch("w1", 2, 0, 64 * 64)]
        finding = _find(analyze_loadable(graph, loadable), "hazard.hb-cycle")
        assert "p0" in finding.message


class TestLoadableGraph:
    def test_graph_has_kernel_and_dma_nodes(self):
        graph = _fc_chain()
        _, loadable = _lower(graph)
        loadable.memory_plan.prefetches = [Prefetch("w1", 0, 0, 64 * 64)]
        hb = build_loadable_hazard_graph(graph, loadable)
        kinds = {node.kind for node in hb.nodes}
        assert {"kernel", "dma"} <= kinds
        assert ("p0", "k0", "data") in hb.edges

    def test_to_dot_and_cluster_render(self):
        graph = _fc_chain()
        _, loadable = _lower(graph)
        hb = build_loadable_hazard_graph(graph, loadable)
        dot = hb.to_dot()
        assert dot.startswith("digraph") and dot.endswith("}")
        combined = render_dot([hb, hb], name="zoo")
        assert combined.count("subgraph cluster_") == 2
        assert '"c1_k0"' in combined

    def test_find_cycle_reports_a_closed_path(self):
        hb = HazardGraph()
        hb.add_node("a", "dma", "a")
        hb.add_node("b", "kernel", "b")
        hb.add_edge("a", "b")
        hb.add_edge("b", "a")
        cycle = hb.find_cycle()
        assert cycle is not None and cycle[0] == cycle[-1]
        hb2 = HazardGraph()
        hb2.add_node("a", "dma", "a")
        hb2.add_node("b", "kernel", "b")
        hb2.add_edge("a", "b")
        assert hb2.find_cycle() is None


class TestProgramHazards:
    def test_raw_read_before_wait(self):
        # The deliberately reordered DMA schedule of the acceptance
        # criterion: dmastart, then read the landing row with no wait.
        program = assemble("setaddr a0, 0\ndmastart 0\nbypass n0, dram[a0]\nhalt")
        report = analyze_program_hazards(program, INBOUND)
        assert "hazard.raw" in _rules(report)
        assert "hazard.unwaited-dma" in _rules(report)

    def test_wait_restores_order(self):
        program = assemble(
            "setaddr a0, 0\ndmastart 0\ndmawait 1\nbypass n0, dram[a0]\nhalt"
        )
        report = analyze_program_hazards(program, INBOUND)
        assert report.ok and len(report) == 0

    def test_war_store_into_outbound_transfer(self):
        program = assemble(
            "setaddr a0, 0\n"
            "bypass n0, zero\nstore a0\n"
            "dmastart 0\n"              # reads row 0 out to DRAM
            "bypass n1, zero\nstore a0\n"  # overwrites it mid-flight
            "dmawait 2\nhalt"
        )
        report = analyze_program_hazards(program, OUTBOUND)
        finding = _find(report, "hazard.war")
        assert "descriptor 0" in finding.message

    def test_waw_store_into_inbound_transfer(self):
        program = assemble(
            "setaddr a0, 0\n"
            "dmastart 0\n"              # fills row 0 from DRAM
            "bypass n0, zero\nstore a0\n"  # races the fill
            "dmawait 1\n"
            "setaddr a1, 0\nbypass n1, dram[a1]\nhalt"
        )
        report = analyze_program_hazards(program, INBOUND)
        assert "hazard.waw" in _rules(report)
        assert "hazard.unwaited-dma" not in _rules(report)

    def test_dead_write_and_unwaited(self):
        program = assemble("dmastart 0\nhalt")
        report = analyze_program_hazards(program, INBOUND)
        assert {"hazard.dead-write", "hazard.unwaited-dma"} <= _rules(report)

    def test_suppress_drops_the_rule(self):
        program = assemble("dmastart 0\nhalt")
        report = analyze_program_hazards(
            program, INBOUND,
            suppress=("hazard.dead-write", "hazard.unwaited-dma"),
        )
        assert report.ok and len(report) == 0

    def test_loop_reads_reach_a_fixpoint(self):
        # A fused loop with incrementing reads must analyze cleanly (and
        # terminate) once the transfer is awaited.
        program = assemble(
            "dmastart 0\ndmawait 1\n"
            "setaddr a0, 0\nsetaddr a6, 64\n"
            "loop 16 {\n  bypass n0, dram[a0++]\n}\n"
            "store a6\nhalt"
        )
        report = analyze_program_hazards(program, INBOUND)
        assert report.ok

    def test_graph_nodes_edges_and_wait_edge(self):
        program = assemble(
            "setaddr a0, 0\ndmastart 0\ndmawait 1\nbypass n0, dram[a0]\nhalt"
        )
        hb, findings = build_program_hazard_graph(program, INBOUND)
        assert not findings
        kinds = {node.kind for node in hb.nodes}
        assert {"dma", "wait", "compute", "halt"} <= kinds
        assert any(kind == "wait" for _, _, kind in hb.edges)

    def test_descriptor_list_is_accepted(self):
        program = assemble("dmastart 0\ndmawait 1\nsetaddr a0, 0\nbypass n0, dram[a0]\nhalt")
        descriptors = [DMAOp(False, False, 0, 1, 0, False)]
        report = analyze_program_hazards(program, descriptors)
        assert report.ok


class TestCompileGate:
    def test_compile_model_runs_the_hazard_pass(self):
        # The hazard pass rides the same strict compile gate as the
        # pairwise loadable checks — a clean model must stay clean.
        compiled = compile_model(_fc_chain())
        report = analyze_model(compiled)
        assert report.ok
