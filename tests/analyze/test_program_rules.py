"""One seeded violation per program (ISA) analyzer rule.

Structural limits are enforced by the instruction dataclasses themselves,
so structural seeds forge field values past ``__post_init__`` the way a
corrupted instruction image would; control-flow and bounds seeds use real
assembled programs.
"""

import dataclasses

import numpy as np
import pytest

from repro.analyze import Severity, analyze_program
from repro.analyze import program_rules
from repro.dtypes import QuantParams
from repro.isa import assemble
from repro.isa.instruction import Instruction
from repro.ncore.config import NcoreConfig


def _find(report, rule_id):
    found = report.by_rule(rule_id)
    assert found, f"no {rule_id} in {[d.rule for d in report]}"
    return found[0]


def _forge(template, **overrides):
    """Copy a frozen dataclass instance, bypassing __post_init__ validation."""
    clone = object.__new__(type(template))
    for f in dataclasses.fields(template):
        object.__setattr__(clone, f.name, overrides.get(f.name, getattr(template, f.name)))
    return clone


def _nop():
    (inst,) = assemble("bypass n0, n1")
    return inst


def _halt():
    (inst,) = assemble("halt")
    return inst


class TestCleanPrograms:
    def test_small_program_is_clean(self):
        program = assemble(
            "setaddr a0, 0\n"
            "setaddr a1, 128\n"
            "loop 8 {\n"
            "  bypass n0, dram[a0++]\n"
            "  mac n0, wtram[a1++]\n"
            "}\n"
            "requant.uint8 relu\n"
            "halt\n"
        )
        report = analyze_program(program)
        assert report.ok and len(report) == 0

    def test_real_matmul_program_is_clean(self):
        from repro.ncore import Ncore
        from repro.nkl.programs import emit_matmul_program

        qp = QuantParams(scale=0.02, zero_point=128)
        program, _ = emit_matmul_program(
            Ncore(),
            np.ones((8, 32), np.uint8),
            np.ones((32, 8), np.uint8),
            qp, qp, qp,
        )
        assert analyze_program(program).ok


class TestStructuralRules:
    def test_ndu_ops_limit(self):
        op = _nop().ndu_ops[0]
        ops = tuple(_forge(op, dst=d) for d in (0, 1, 2, 3))
        inst = _forge(_halt(), ndu_ops=ops)
        finding = _find(analyze_program([inst]), "isa.ndu-ops")
        assert finding.location.index == 0

    def test_ndu_duplicate_destination(self):
        op = _nop().ndu_ops[0]
        inst = _forge(_halt(), ndu_ops=(op, op))
        assert _find(analyze_program([inst]), "isa.ndu-ops")

    def test_repeat_out_of_range(self):
        inst = _forge(_halt(), repeat=0)
        assert _find(analyze_program([inst]), "isa.repeat")

    def test_rotate_amount(self):
        (rot,) = assemble("rotl n1, n1, 64")
        op = _forge(rot.ndu_ops[0], amount=100)
        inst = _forge(_halt(), ndu_ops=(op,))
        finding = _find(analyze_program([inst]), "isa.rotate")
        assert finding.location.element == "ndu"

    def test_register_ndu_destination(self):
        op = _forge(_nop().ndu_ops[0], dst=7)
        inst = _forge(_halt(), ndu_ops=(op,))
        assert _find(analyze_program([inst]), "isa.register")

    def test_register_operand_index(self):
        (inst,) = assemble("bypass n0, dram[a0]")
        op = inst.ndu_ops[0]
        bad = _forge(op, src=_forge(op.src, index=9))
        assert _find(
            analyze_program([_forge(_halt(), ndu_ops=(bad,))]), "isa.register"
        )

    def test_register_npu_predicate(self):
        (inst,) = assemble("mac n0, n1, pred3")
        bad = _forge(inst, npu=_forge(inst.npu, predicate=9))
        assert _find(analyze_program([bad, _halt()]), "isa.register")

    def test_register_out_store(self):
        (inst,) = assemble("store a6")
        bad = _forge(inst, out=_forge(inst.out, dst_addr_reg=8))
        assert _find(analyze_program([bad, _halt()]), "isa.register")

    def test_repeat_with_sequencer_op(self):
        (setaddr,) = assemble("setaddr a0, 0")
        bad = _forge(_nop(), seq=setaddr.seq, repeat=2)
        finding = _find(analyze_program([bad, _halt()]), "isa.repeat-seq")
        assert finding.location.element == "seq"

    def test_dma_descriptor(self):
        (dma,) = assemble("dmastart 2")
        bad = _forge(dma, seq=_forge(dma.seq, arg=12))
        assert _find(analyze_program([bad, _halt()]), "isa.dma-descriptor")

    def test_dma_wait_group(self):
        (wait,) = assemble("dmawait 3")
        bad = _forge(wait, seq=_forge(wait.seq, arg=5))
        finding = _find(analyze_program([bad, _halt()]), "isa.dma-wait")
        assert finding.severity is Severity.ERROR
        assert finding.location.element == "seq"

    def test_valid_dma_wait_groups_are_clean(self):
        program = assemble("dmawait 0\ndmawait 1\ndmawait 2\ndmawait 3\nhalt")
        assert not analyze_program(program).by_rule("isa.dma-wait")

    def test_iram_overflow(self):
        program = [_nop()] * NcoreConfig().iram_instructions + [_halt()]
        report = analyze_program(program)
        assert _find(report, "isa.iram-overflow")
        assert not report.by_rule("isa.no-halt")


class TestControlFlowRules:
    def test_no_halt(self):
        program = assemble("bypass n0, dram[a0]")
        finding = _find(analyze_program(program), "isa.no-halt")
        assert finding.location.index == len(program) - 1

    def test_endloop_without_begin(self):
        program = assemble("endloop\nhalt")
        finding = _find(analyze_program(program), "isa.loop-structure")
        assert finding.location.index == 0

    def test_loop_open_at_halt(self):
        program = assemble("loopn 4\nbypass n0, n1\nhalt")
        assert _find(analyze_program(program), "isa.loop-structure")

    def test_loop_depth(self):
        depth = 5  # one more than the 4 hardware loop counters
        source = "loopn 2\n" * depth + "bypass n0, n1\n" + "endloop\n" * depth + "halt"
        finding = _find(analyze_program(assemble(source)), "isa.loop-depth")
        assert finding.location.index == depth - 1

    def test_balanced_loops_are_clean(self):
        source = (
            "loopn 4\nsetaddr a0, 0\nloopn 8\naddaddr a0, 1\nendloop\nendloop\nhalt"
        )
        assert analyze_program(assemble(source)).ok


class TestSramBounds:
    def test_setaddr_past_end(self):
        rows = NcoreConfig().sram_rows
        program = assemble(f"setaddr a0, {rows}\nbypass n0, dram[a0]\nhalt")
        finding = _find(analyze_program(program), "isa.sram-bounds")
        assert finding.location.index == 1

    def test_repeat_walks_off_the_end(self):
        rows = NcoreConfig().sram_rows
        program = assemble(
            f"setaddr a0, {rows - 8}\n"
            "loop 16 {\n"
            "  bypass n0, dram[a0++]\n"
            "}\n"
            "halt"
        )
        assert _find(analyze_program(program), "isa.sram-bounds")

    def test_store_walks_off_the_end(self):
        rows = NcoreConfig().sram_rows
        program = assemble(
            f"setaddr a2, {rows - 2}\n"
            "loop 4 {\n"
            "  mac n0, n1\n"
            "  store a2, inc\n"
            "}\n"
            "halt"
        )
        assert _find(analyze_program(program), "isa.sram-bounds")

    def test_in_bounds_walk_is_clean(self):
        program = assemble(
            "setaddr a0, 0\nloop 64 {\n  bypass n0, dram[a0++]\n}\nhalt"
        )
        assert analyze_program(program).ok

    def test_unknown_addresses_are_not_reported(self):
        # a0 widens to unknown after the loop changes it every iteration
        # with a data-dependent stride the analyzer cannot see; no false
        # positive may be emitted for the later access.
        program = assemble(
            "setaddr a0, 0\n"
            "loopn 1000\n"
            "addaddr a0, 3\n"
            "endloop\n"
            "bypass n0, dram[a0]\n"
            "halt"
        )
        assert analyze_program(program).ok

    def test_custom_config_rows(self):
        config = NcoreConfig(sram_rows=64)
        program = assemble("setaddr a0, 100\nbypass n0, dram[a0]\nhalt")
        assert _find(analyze_program(program, config), "isa.sram-bounds")


class TestBudget:
    def test_budget_note_is_info(self, monkeypatch):
        monkeypatch.setattr(program_rules, "_MAX_STEPS", 5)
        program = [_nop()] * 10 + [_halt()]
        report = analyze_program(program)
        finding = _find(report, "isa.budget")
        assert finding.severity is Severity.INFO
        assert report.ok  # advisory only
