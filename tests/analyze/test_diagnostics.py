"""Tests for the shared diagnostic model of ``repro.analyze``."""

import json

import pytest

from repro.analyze import (
    AnalysisError,
    AnalysisReport,
    RULES,
    Severity,
    enforce,
    render_json,
    render_text,
)
from repro.analyze.diagnostics import Location, diag, register_rule


def _tmp_rule(id_: str, severity: Severity = Severity.ERROR):
    return register_rule(id_, severity, "temporary test rule", "only for tests")


@pytest.fixture
def rule():
    rule = _tmp_rule("tst.diagnostics")
    yield rule
    del RULES["tst.diagnostics"]


class TestRuleRegistry:
    def test_duplicate_rule_id_rejected(self, rule):
        with pytest.raises(ValueError, match="duplicate rule id"):
            _tmp_rule(rule.id)

    def test_catalog_is_populated_by_import(self):
        # importing repro.analyze loads every analyzer module
        assert any(r.startswith("gir.") for r in RULES)
        assert any(r.startswith("qnt.") for r in RULES)
        assert any(r.startswith("lay.") for r in RULES)
        assert any(r.startswith("ldb.") for r in RULES)
        assert any(r.startswith("isa.") for r in RULES)

    def test_rule_ids_follow_family_dot_name(self):
        for rule_id in RULES:
            family, _, name = rule_id.partition(".")
            assert family and name, rule_id


class TestDiagnostic:
    def test_render_carries_rule_location_and_hint(self, rule):
        d = diag(rule, "boom", artifact="g", element="n0", index=3, hint="fix it")
        text = d.render()
        assert "error[tst.diagnostics]" in text
        assert "g:n0[3]" in text
        assert "boom" in text
        assert "(hint: fix it)" in text

    def test_to_json_omits_empty_fields(self, rule):
        d = diag(rule, "boom", artifact="g", element="n0")
        data = d.to_json()
        assert data["rule"] == rule.id
        assert data["severity"] == "error"
        assert "index" not in data
        assert "hint" not in data

    def test_severity_override(self, rule):
        d = diag(rule, "boom", severity=Severity.WARNING)
        assert d.severity is Severity.WARNING

    def test_location_str(self):
        assert str(Location()) == "<unknown>"
        assert str(Location("g", "n", 2)) == "g:n[2]"
        assert str(Location(element="n")) == "n"


class TestReport:
    def test_filters_and_ok(self, rule):
        report = AnalysisReport()
        report.extend([
            diag(rule, "e1"),
            diag(rule, "w1", severity=Severity.WARNING),
            diag(rule, "i1", severity=Severity.INFO),
        ])
        assert not report.ok
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert report.worst is Severity.ERROR
        assert len(report.by_rule(rule.id)) == 3
        assert len(report) == 3

    def test_suppress_returns_filtered_copy(self, rule):
        report = AnalysisReport([diag(rule, "e1")])
        clean = report.suppress([rule.id])
        assert clean.ok and len(clean) == 0
        assert len(report) == 1  # original untouched

    def test_sorted_puts_errors_first(self, rule):
        report = AnalysisReport([
            diag(rule, "note", severity=Severity.INFO),
            diag(rule, "bad"),
        ])
        assert report.sorted()[0].severity is Severity.ERROR

    def test_empty_report_is_ok(self):
        report = AnalysisReport()
        assert report.ok
        assert report.worst is None


class TestEnforce:
    def test_clean_report_passes_through(self):
        report = AnalysisReport()
        assert enforce(report, context="x") is report

    def test_errors_raise_with_context(self, rule):
        report = AnalysisReport([diag(rule, "the machine would hang")])
        with pytest.raises(AnalysisError) as exc_info:
            enforce(report, context="seg0")
        message = str(exc_info.value)
        assert "seg0" in message
        assert rule.id in message
        assert exc_info.value.report is report

    def test_warnings_do_not_raise(self, rule):
        report = AnalysisReport([diag(rule, "meh", severity=Severity.WARNING)])
        assert enforce(report) is report


class TestRenderers:
    def test_text_summary_counts(self, rule):
        report = AnalysisReport([
            diag(rule, "e1"),
            diag(rule, "w1", severity=Severity.WARNING),
        ])
        text = render_text(report)
        assert "1 error(s), 1 warning(s)" in text
        assert "error[tst.diagnostics]" in text

    def test_text_hides_info_unless_verbose(self, rule):
        report = AnalysisReport([diag(rule, "fyi", severity=Severity.INFO)])
        assert "fyi" not in render_text(report)
        assert "fyi" in render_text(report, verbose=True)

    def test_json_is_parseable(self, rule):
        report = AnalysisReport([diag(rule, "e1", artifact="g")])
        data = json.loads(render_json(report))
        assert data["ok"] is False
        assert data["errors"] == 1
        assert data["diagnostics"][0]["rule"] == rule.id
