"""Analyzer limits scale with the target config (satellite of the
config-parametric refactor).

Every capacity rule reads its limit from the :class:`NcoreConfig` under
analysis — nothing is pinned to the shipped 2048x4096 point.  The same
compiled model must therefore pass against the machine it was compiled
for and be *rejected* against a smaller one.
"""

import pytest

from repro.analyze import AnalysisError, analyze_model, enforce
from repro.compiler import compile_graph, optimize_graph
from repro.models import PAPER_CHARACTERISTICS
from repro.ncore.config import NcoreConfig
from repro.quantize import calibrate, quantize_graph


@pytest.fixture(scope="module")
def tall_model():
    """MobileNet compiled for a narrow, tall Ncore (8 slices, 4096 rows):
    its pinned weights span more rows than the shipped RAM has."""
    info = PAPER_CHARACTERISTICS["mobilenet_v1"]
    graph = info.build()
    optimize_graph(graph, in_place=True)
    quantized = quantize_graph(
        graph, calibrate(graph, [info.sample_input(graph, seed=100)])
    )
    config = NcoreConfig(slices=8, sram_rows=4096)
    return compile_graph(quantized, config=config, name="mnv1_tall", cache=None), config


class TestConfigScaledLimits:
    def test_model_is_clean_against_its_own_config(self, tall_model):
        result, config = tall_model
        report = analyze_model(result.model, config=config)
        assert [d.rule for d in report.diagnostics] == []

    def test_same_model_overflows_a_smaller_config(self, tall_model):
        result, config = tall_model
        plan = result.model.loadables[result.model.ncore_segments[0]].memory_plan
        assert plan.weight_rows_used > NcoreConfig().sram_rows  # the premise
        report = analyze_model(result.model)  # judged at the shipped point
        rules = {d.rule for d in report.diagnostics}
        assert "ldb.sram-overflow" in rules
        with pytest.raises(AnalysisError, match="sram-overflow"):
            enforce(report, context="mnv1_tall")
