"""End-to-end tests of the ``repro lint`` CLI command.

The clean-run requirement: every zoo model compiles through the benchmark
path (GCL pipeline + quantization) and lints clean, exit code 0.
"""

import json

import pytest

from repro.cli import main
from repro.dtypes import NcoreDType, QuantParams
from repro.graph.frontends.serialization import save_graph
from repro.graph.gir import Graph, Node, Tensor, TensorType
from repro.models import PAPER_CHARACTERISTICS


class TestZooCleanRun:
    @pytest.mark.parametrize("key", sorted(PAPER_CHARACTERISTICS))
    def test_zoo_model_lints_clean(self, key, capsys):
        assert main(["lint", key]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_json_output(self, capsys):
        assert main(["lint", "mobilenet_v1", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["errors"] == 0


def _save_bad_graph(tmp_path):
    graph = Graph("bad")
    graph.add_input("x", TensorType((1, 8)))
    graph.add_tensor(Tensor("y", TensorType((1, 9))))  # shape lie
    graph.add_node(Node("r0", "relu", ["x"], ["y"]))
    graph.mark_output("y")
    path = tmp_path / "bad"
    save_graph(graph, path)
    return str(path)


class TestHazardFlags:
    @pytest.mark.parametrize("key", sorted(PAPER_CHARACTERISTICS))
    def test_zoo_model_hazard_lint_clean(self, key, capsys):
        assert main(["lint", key, "--hazards"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_dot_dump_writes_clustered_graphs(self, tmp_path, capsys):
        dot_path = tmp_path / "hb.dot"
        assert main(["lint", "mobilenet_v1", "--hazards", "--dot", str(dot_path)]) == 0
        out = capsys.readouterr().out
        assert "happens-before graph" in out
        dot = dot_path.read_text()
        assert dot.startswith("digraph")
        assert "subgraph cluster_0" in dot

    def test_graph_only_rejects_hazard_flags(self, capsys):
        assert main(["lint", "mobilenet_v1", "--graph-only", "--hazards"]) == 2
        assert "--graph-only" in capsys.readouterr().err


class TestExitCodes:
    """The documented contract: 0 clean, 1 findings, 2 usage/target error."""

    def test_clean_target_exits_0(self):
        assert main(["lint", "mobilenet_v1"]) == 0

    def test_findings_exit_1(self, tmp_path):
        path = _save_bad_graph(tmp_path)
        assert main(["lint", path, "--graph-only"]) == 1

    def test_bad_target_exits_2(self):
        assert main(["lint", "/no/such/model.gir"]) == 2


class TestJsonSchema:
    """Golden schema for ``lint --json``: keys downstream tooling parses."""

    def test_clean_report_schema(self, capsys):
        assert main(["lint", "mobilenet_v1", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data) == {"ok", "errors", "warnings", "diagnostics"}
        assert data["ok"] is True
        assert data["errors"] == 0 and data["warnings"] == 0
        assert data["diagnostics"] == []

    def test_finding_schema(self, tmp_path, capsys):
        path = _save_bad_graph(tmp_path)
        assert main(["lint", path, "--graph-only", "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False
        assert data["errors"] >= 1
        for entry in data["diagnostics"]:
            assert {"rule", "severity", "artifact", "element", "message"} <= set(entry)
            assert entry["severity"] in ("error", "warning")
            assert extra_keys_ok(entry)


def extra_keys_ok(entry):
    allowed = {"rule", "severity", "artifact", "element", "message", "index", "hint"}
    return set(entry) <= allowed


class TestLintTargets:
    def test_unknown_target_exits_2(self, capsys):
        assert main(["lint", "no_such_model"]) == 2
        assert "zoo keys" in capsys.readouterr().err

    def _save_bad_graph(self, tmp_path):
        return _save_bad_graph(tmp_path)

    def _save_clean_graph(self, tmp_path):
        qp = QuantParams(scale=0.05, zero_point=128)
        ttype = TensorType((1, 4, 4, 16), NcoreDType.UINT8)
        graph = Graph("clean")
        graph.add_input("x", ttype, quant=qp)
        graph.add_tensor(Tensor("y", ttype, quant=qp))
        graph.add_node(Node("r0", "relu", ["x"], ["y"]))
        graph.mark_output("y")
        path = tmp_path / "clean"
        save_graph(graph, path)
        return str(path)

    def test_gir_file_with_seeded_error_exits_1(self, tmp_path, capsys):
        path = self._save_bad_graph(tmp_path)
        assert main(["lint", path, "--graph-only"]) == 1
        assert "gir.shape-mismatch" in capsys.readouterr().out

    def test_suppress_flag_drops_the_rule(self, tmp_path):
        path = self._save_bad_graph(tmp_path)
        assert main(
            ["lint", path, "--graph-only", "--suppress", "gir.shape-mismatch"]
        ) == 0

    def test_clean_gir_file_full_stack(self, tmp_path, capsys):
        path = self._save_clean_graph(tmp_path)
        assert main(["lint", path]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_json_reports_findings(self, tmp_path, capsys):
        path = self._save_bad_graph(tmp_path)
        assert main(["lint", path, "--graph-only", "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False
        assert any(
            d["rule"] == "gir.shape-mismatch" for d in data["diagnostics"]
        )
