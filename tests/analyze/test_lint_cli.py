"""End-to-end tests of the ``repro lint`` CLI command.

The clean-run requirement: every zoo model compiles through the benchmark
path (GCL pipeline + quantization) and lints clean, exit code 0.
"""

import json

import pytest

from repro.cli import main
from repro.dtypes import NcoreDType, QuantParams
from repro.graph.frontends.serialization import save_graph
from repro.graph.gir import Graph, Node, Tensor, TensorType
from repro.models import PAPER_CHARACTERISTICS


class TestZooCleanRun:
    @pytest.mark.parametrize("key", sorted(PAPER_CHARACTERISTICS))
    def test_zoo_model_lints_clean(self, key, capsys):
        assert main(["lint", key]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_json_output(self, capsys):
        assert main(["lint", "mobilenet_v1", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert data["errors"] == 0


class TestLintTargets:
    def test_unknown_target_exits_2(self, capsys):
        assert main(["lint", "no_such_model"]) == 2
        assert "zoo keys" in capsys.readouterr().err

    def _save_bad_graph(self, tmp_path):
        graph = Graph("bad")
        graph.add_input("x", TensorType((1, 8)))
        graph.add_tensor(Tensor("y", TensorType((1, 9))))  # shape lie
        graph.add_node(Node("r0", "relu", ["x"], ["y"]))
        graph.mark_output("y")
        path = tmp_path / "bad"
        save_graph(graph, path)
        return str(path)

    def _save_clean_graph(self, tmp_path):
        qp = QuantParams(scale=0.05, zero_point=128)
        ttype = TensorType((1, 4, 4, 16), NcoreDType.UINT8)
        graph = Graph("clean")
        graph.add_input("x", ttype, quant=qp)
        graph.add_tensor(Tensor("y", ttype, quant=qp))
        graph.add_node(Node("r0", "relu", ["x"], ["y"]))
        graph.mark_output("y")
        path = tmp_path / "clean"
        save_graph(graph, path)
        return str(path)

    def test_gir_file_with_seeded_error_exits_1(self, tmp_path, capsys):
        path = self._save_bad_graph(tmp_path)
        assert main(["lint", path, "--graph-only"]) == 1
        assert "gir.shape-mismatch" in capsys.readouterr().out

    def test_suppress_flag_drops_the_rule(self, tmp_path):
        path = self._save_bad_graph(tmp_path)
        assert main(
            ["lint", path, "--graph-only", "--suppress", "gir.shape-mismatch"]
        ) == 0

    def test_clean_gir_file_full_stack(self, tmp_path, capsys):
        path = self._save_clean_graph(tmp_path)
        assert main(["lint", path]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_json_reports_findings(self, tmp_path, capsys):
        path = self._save_bad_graph(tmp_path)
        assert main(["lint", path, "--graph-only", "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False
        assert any(
            d["rule"] == "gir.shape-mismatch" for d in data["diagnostics"]
        )
