"""One seeded violation per Loadable analyzer rule.

Each test lowers a small quantized segment with ``verify=False`` and then
mutates the memory plan / prefetch schedule / kernel list to carry exactly
the defect the rule targets.
"""

import numpy as np
import pytest

from repro.analyze import AnalysisError, analyze_loadable, analyze_model
from repro.dtypes import NcoreDType, QuantParams
from repro.graph.gir import Graph, Node, Tensor, TensorType
from repro.graph.partitioner import Segment, partition
from repro.graph.planner import Prefetch, RowRange
from repro.ncore.config import NcoreConfig
from repro.nkl.lower import lower_segment
from repro.runtime.delegate import compile_model

UINT8 = NcoreDType.UINT8
QP = QuantParams(scale=0.05, zero_point=128)


def _find(report, rule_id):
    found = report.by_rule(rule_id)
    assert found, f"no {rule_id} in {[d.rule for d in report]}"
    return found[0]


def _relu_chain():
    """x -> relu1 -> y -> relu2 -> z, all quantized uint8."""
    graph = Graph("ldb-fixture")
    ttype = TensorType((1, 4, 4, 16), UINT8)
    graph.add_input("x", ttype, quant=QP)
    graph.add_tensor(Tensor("y", ttype, quant=QP))
    graph.add_tensor(Tensor("z", ttype, quant=QP))
    graph.add_node(Node("relu1", "relu", ["x"], ["y"]))
    graph.add_node(Node("relu2", "relu", ["y"], ["z"]))
    graph.mark_output("z")
    return graph


def _fc_chain():
    """x -> fc1(w1) -> h -> fc2(w2) -> y -> relu -> z."""
    graph = Graph("fc-fixture")
    graph.add_input("x", TensorType((1, 64), UINT8), quant=QP)
    graph.add_constant("w1", np.ones((64, 64), np.uint8), quant=QP)
    graph.add_constant("w2", np.ones((64, 64), np.uint8), quant=QP)
    graph.add_tensor(Tensor("h", TensorType((1, 64), UINT8), quant=QP))
    graph.add_tensor(Tensor("y", TensorType((1, 64), UINT8), quant=QP))
    graph.add_tensor(Tensor("z", TensorType((1, 64), UINT8), quant=QP))
    graph.add_node(Node("fc1", "fully_connected", ["x", "w1"], ["h"]))
    graph.add_node(Node("fc2", "fully_connected", ["h", "w2"], ["y"]))
    graph.add_node(Node("relu", "relu", ["y"], ["z"]))
    graph.mark_output("z")
    return graph


def _lower(graph):
    (segment,) = partition(graph)
    assert segment.target == "ncore"
    return segment, lower_segment(graph, segment, verify=False)


class TestCleanLoadable:
    def test_lowered_segment_is_clean(self):
        graph = _relu_chain()
        _, loadable = _lower(graph)
        report = analyze_loadable(graph, loadable)
        assert report.ok and len(report) == 0

    def test_fc_segment_is_clean(self):
        graph = _fc_chain()
        _, loadable = _lower(graph)
        assert analyze_loadable(graph, loadable).ok


class TestMemoryRules:
    def test_sram_overflow(self):
        graph = _relu_chain()
        _, loadable = _lower(graph)
        rows = NcoreConfig().sram_rows
        loadable.memory_plan.data_allocs["y"] = RowRange(rows - 2, 4)
        finding = _find(analyze_loadable(graph, loadable), "ldb.sram-overflow")
        assert finding.location.element == "y"

    def test_alloc_overlap(self):
        graph = _relu_chain()
        _, loadable = _lower(graph)
        # x (live 0..0) and y (live 0..1) overlap in time; alias their rows
        loadable.memory_plan.data_allocs["x"] = RowRange(0, 4)
        loadable.memory_plan.data_allocs["y"] = RowRange(2, 4)
        finding = _find(analyze_loadable(graph, loadable), "ldb.alloc-overlap")
        assert finding.location.element in ("x", "y")

    def test_unplaced_tensor(self):
        graph = _relu_chain()
        _, loadable = _lower(graph)
        del loadable.memory_plan.data_allocs["y"]
        findings = analyze_loadable(graph, loadable).by_rule("ldb.unplaced-tensor")
        # y is written by relu1 and read by relu2: two findings
        assert {f.location.element for f in findings} == {"relu1", "relu2"}

    def test_uninitialized_read(self):
        graph = _relu_chain()
        reversed_segment = Segment(
            "ncore", [graph.node("relu2"), graph.node("relu1")]
        )
        loadable = lower_segment(graph, reversed_segment, verify=False)
        finding = _find(
            analyze_loadable(graph, loadable), "ldb.uninitialized-read"
        )
        assert finding.location.element == "relu2"
        assert finding.location.index == 0


class TestWeightRules:
    def test_missing_weight_allocation(self):
        graph = _fc_chain()
        _, loadable = _lower(graph)
        del loadable.memory_plan.weight_allocs["w1"]
        finding = _find(analyze_loadable(graph, loadable), "ldb.missing-weights")
        assert finding.location.element == "fc1"

    def test_streamed_weights_without_prefetch(self):
        graph = _fc_chain()
        _, loadable = _lower(graph)
        plan = loadable.memory_plan
        plan.weights_pinned = False
        plan.prefetches = [Prefetch("w1", 0, 0, 64)]  # w2 never prefetched
        finding = _find(analyze_loadable(graph, loadable), "ldb.missing-weights")
        assert finding.location.element == "fc2"

    def test_late_prefetch(self):
        graph = _fc_chain()
        _, loadable = _lower(graph)
        plan = loadable.memory_plan
        plan.weights_pinned = False
        plan.prefetches = [
            Prefetch("w1", 0, 0, 64),
            Prefetch("w2", 2, 1, 64),  # issued after the node that needs it
        ]
        finding = _find(analyze_loadable(graph, loadable), "ldb.late-prefetch")
        assert finding.location.element == "w2"
        assert finding.location.index == 1

    def test_prefetch_range(self):
        graph = _fc_chain()
        _, loadable = _lower(graph)
        plan = loadable.memory_plan
        plan.weights_pinned = False
        plan.prefetches = [
            Prefetch("w1", 0, 0, 64),
            Prefetch("w2", 0, 7, 64),  # segment has only 3 nodes
        ]
        finding = _find(analyze_loadable(graph, loadable), "ldb.prefetch-range")
        assert finding.location.element == "w2"

    def test_dma_hazard(self):
        graph = _fc_chain()
        _, loadable = _lower(graph)
        plan = loadable.memory_plan
        plan.weights_pinned = False
        plan.weight_allocs = {"w1": RowRange(0, 4), "w2": RowRange(2, 4)}
        plan.prefetches = [
            Prefetch("w1", 0, 1, 64),
            # issued (before node 0) while w1's rows are still unread
            Prefetch("w2", 0, 2, 64),
        ]
        finding = _find(analyze_loadable(graph, loadable), "ldb.dma-hazard")
        assert finding.location.element == "w2"


class TestKernelRules:
    def test_kernel_mismatch(self):
        graph = _relu_chain()
        _, loadable = _lower(graph)
        loadable.kernels.reverse()
        assert _find(analyze_loadable(graph, loadable), "ldb.kernel-mismatch")

    def test_missing_kernel(self):
        graph = _relu_chain()
        _, loadable = _lower(graph)
        loadable.kernels.pop()
        assert _find(analyze_loadable(graph, loadable), "ldb.kernel-mismatch")


class TestPipelineGate:
    """The acceptance criterion: illegal artifacts fail at compile time."""

    def test_lower_segment_rejects_bad_dataflow(self):
        graph = _relu_chain()
        reversed_segment = Segment(
            "ncore", [graph.node("relu2"), graph.node("relu1")]
        )
        with pytest.raises(AnalysisError) as exc_info:
            lower_segment(graph, reversed_segment)  # strict by default
        assert "ldb.uninitialized-read" in str(exc_info.value)

    def test_compile_model_rejects_bad_graph(self):
        graph = _relu_chain()
        # declare a wrong output shape after construction
        graph.tensors["z"] = Tensor("z", TensorType((1, 4, 4, 8), UINT8), quant=QP)
        with pytest.raises(AnalysisError) as exc_info:
            compile_model(graph, optimize=False)
        assert "gir.shape-mismatch" in str(exc_info.value)

    def test_verify_opt_out_skips_the_gate(self):
        graph = _relu_chain()
        reversed_segment = Segment(
            "ncore", [graph.node("relu2"), graph.node("relu1")]
        )
        loadable = lower_segment(graph, reversed_segment, verify=False)
        assert loadable.kernels  # lowered despite the bad schedule

    def test_compile_model_clean_path(self):
        graph = _relu_chain()
        model = compile_model(graph, optimize=False)  # strict gate passes
        report = analyze_model(model)
        assert report.ok
