"""One seeded violation per GIR / quantization / layout analyzer rule.

Each test builds a fixture graph carrying exactly the defect the rule
targets and asserts the emitted diagnostic's rule id and location.
"""

import numpy as np
import pytest

from repro.analyze import Severity, analyze_graph
from repro.dtypes import ChannelQuantParams, NcoreDType, QuantParams
from repro.graph.gir import Graph, Node, Tensor, TensorType

UINT8 = NcoreDType.UINT8
INT8 = NcoreDType.INT8


def _find(report, rule_id):
    found = report.by_rule(rule_id)
    assert found, f"no {rule_id} in {[d.rule for d in report]}"
    return found[0]


def _relu_graph(out_shape=(1, 8), out_dtype="float32"):
    graph = Graph("fixture")
    graph.add_input("x", TensorType((1, 8)))
    graph.add_tensor(Tensor("y", TensorType(out_shape, out_dtype)))
    graph.add_node(Node("r0", "relu", ["x"], ["y"]))
    graph.mark_output("y")
    return graph


class TestStructuralRules:
    def test_clean_graph_has_no_findings(self):
        assert len(analyze_graph(_relu_graph())) == 0

    def test_unknown_tensor(self):
        graph = _relu_graph()
        # bypass add_node, which rejects this edit at insert time
        graph.nodes.append(Node("r1", "relu", ["ghost"], ["y"]))
        finding = _find(analyze_graph(graph), "gir.unknown-tensor")
        assert finding.location.element == "r1"
        assert finding.severity is Severity.ERROR

    def test_duplicate_node(self):
        graph = _relu_graph()
        graph.nodes.append(Node("r0", "relu", ["x"], ["y"]))
        finding = _find(analyze_graph(graph), "gir.duplicate-node")
        assert finding.location.element == "r0"

    def test_topology(self):
        graph = Graph("fixture")
        graph.add_input("x", TensorType((1, 8)))
        graph.add_tensor(Tensor("y", TensorType((1, 8))))
        graph.add_tensor(Tensor("z", TensorType((1, 8))))
        # r1 reads y before r0 produces it
        graph.nodes.append(Node("r1", "relu", ["y"], ["z"]))
        graph.nodes.append(Node("r0", "relu", ["x"], ["y"]))
        graph.mark_output("z")
        finding = _find(analyze_graph(graph), "gir.topology")
        assert finding.location.element == "r1"

    def test_multi_producer(self):
        graph = _relu_graph()
        graph.add_node(Node("r1", "relu", ["x"], ["y"]))
        finding = _find(analyze_graph(graph), "gir.multi-producer")
        assert finding.location.element == "y"

    def test_dangling_output(self):
        graph = _relu_graph()
        graph.add_tensor(Tensor("ghost", TensorType((1, 8))))
        graph.mark_output("ghost")
        finding = _find(analyze_graph(graph), "gir.dangling-output")
        assert finding.location.element == "ghost"

    def test_unknown_tensor_suppresses_type_checks(self):
        graph = _relu_graph(out_shape=(1, 9))  # would be a shape mismatch
        graph.nodes.append(Node("r1", "relu", ["ghost"], ["y"]))
        report = analyze_graph(graph)
        assert report.by_rule("gir.unknown-tensor")
        assert not report.by_rule("gir.shape-mismatch")


class TestTypeRules:
    def test_bad_op_signature(self):
        graph = Graph("fixture")
        graph.add_input("x", TensorType((1, 8, 8, 4)))
        graph.add_constant("w", np.zeros((3, 3, 4), np.float32))  # rank 3, not HWIO
        graph.add_tensor(Tensor("y", TensorType((1, 6, 6, 8))))
        graph.add_node(Node("c0", "conv2d", ["x", "w"], ["y"]))
        graph.mark_output("y")
        finding = _find(analyze_graph(graph), "gir.bad-op-signature")
        assert finding.location.element == "c0"

    def test_shape_mismatch(self):
        graph = _relu_graph(out_shape=(1, 9))
        finding = _find(analyze_graph(graph), "gir.shape-mismatch")
        assert finding.location.element == "y"

    def test_dtype_mismatch(self):
        graph = _relu_graph(out_dtype=UINT8)  # float in, integer out
        finding = _find(analyze_graph(graph), "gir.dtype-mismatch")
        assert finding.location.element == "y"

    def test_quantize_contract(self):
        graph = Graph("fixture")
        graph.add_input("x", TensorType((1, 8)))
        graph.add_tensor(Tensor("q", TensorType((1, 8), "float32")))  # no quant
        graph.add_node(Node("q0", "quantize", ["x"], ["q"]))
        graph.mark_output("q")
        findings = analyze_graph(graph).by_rule("gir.quantize-contract")
        # float output AND missing quant params: two contract violations
        assert len(findings) == 2
        assert all(f.location.element == "q0" for f in findings)

    def test_dequantize_contract(self):
        graph = Graph("fixture")
        graph.add_input("x", TensorType((1, 8), UINT8))  # no quant params
        graph.add_tensor(Tensor("f", TensorType((1, 8), "float32")))
        graph.add_node(Node("d0", "dequantize", ["x"], ["f"]))
        graph.mark_output("f")
        assert _find(analyze_graph(graph), "gir.quantize-contract")


class TestLivenessRules:
    def test_dead_node_is_a_warning(self):
        graph = _relu_graph()
        graph.add_tensor(Tensor("unused", TensorType((1, 8))))
        graph.add_node(Node("dead", "relu", ["x"], ["unused"]))
        report = analyze_graph(graph)
        finding = _find(report, "gir.dead-node")
        assert finding.location.element == "dead"
        assert finding.severity is Severity.WARNING
        assert report.ok  # warnings never gate

    def test_duplicate_compute(self):
        graph = _relu_graph()
        graph.add_tensor(Tensor("y2", TensorType((1, 8))))
        graph.add_node(Node("r1", "relu", ["x"], ["y2"]))
        graph.mark_output("y2")
        finding = _find(analyze_graph(graph), "gir.duplicate-compute")
        assert finding.location.element == "r1"
        assert finding.severity is Severity.WARNING


class TestQuantRules:
    def _graph_with_quant(self, dtype, quant):
        graph = Graph("fixture")
        graph.add_input("x", TensorType((1, 2, 2, 4), dtype), quant=quant)
        return graph

    def test_scale_nan(self):
        # NaN slips through QuantParams' own scale <= 0 check
        quant = QuantParams(scale=float("nan"), zero_point=0)
        graph = self._graph_with_quant(UINT8, quant)
        finding = _find(analyze_graph(graph), "qnt.scale")
        assert finding.location.element == "x"

    def test_scale_inf(self):
        quant = QuantParams(scale=float("inf"), zero_point=0)
        graph = self._graph_with_quant(UINT8, quant)
        assert _find(analyze_graph(graph), "qnt.scale")

    def test_zero_point_outside_tensor_dtype(self):
        # zp 200 is legal for the params' own UINT8 but not for the INT8 tensor
        quant = QuantParams(scale=0.1, zero_point=200, dtype=UINT8)
        graph = self._graph_with_quant(INT8, quant)
        finding = _find(analyze_graph(graph), "qnt.zero-point")
        assert finding.location.element == "x"

    def test_dtype_mismatch(self):
        quant = QuantParams(scale=0.1, zero_point=10, dtype=UINT8)
        graph = self._graph_with_quant(INT8, quant)
        finding = _find(analyze_graph(graph), "qnt.dtype-mismatch")
        assert finding.location.element == "x"

    def test_channel_count_mismatch(self):
        quant = ChannelQuantParams(
            scales=(0.1, 0.2), zero_points=(0, 0), axis=3, dtype=UINT8
        )
        graph = self._graph_with_quant(UINT8, quant)  # 4 channels, 2 params
        finding = _find(analyze_graph(graph), "qnt.channels")
        assert finding.location.element == "x"

    def test_channel_scale_and_zero_point(self):
        quant = ChannelQuantParams(
            scales=(0.1, float("nan"), 0.2, 0.3),
            zero_points=(0, 0, 300, 0),  # 300 outside uint8
            axis=3,
            dtype=UINT8,
        )
        graph = self._graph_with_quant(UINT8, quant)
        report = analyze_graph(graph)
        assert _find(report, "qnt.scale")
        assert _find(report, "qnt.zero-point")


class TestLayoutRules:
    def test_int32_at_segment_edge(self):
        graph = Graph("fixture")
        graph.add_input("ids", TensorType((1, 8), "int32"))
        graph.add_tensor(Tensor("s", TensorType((1, 8), "int32")))
        graph.add_node(Node("a0", "add", ["ids", "ids"], ["s"]))
        graph.mark_output("s")
        findings = analyze_graph(graph).by_rule("lay.segment-dtype")
        assert {f.location.element for f in findings} == {"ids", "s"}

    def test_quantized_edge_without_params(self):
        graph = Graph("fixture")
        graph.add_input("x", TensorType((1, 8), UINT8))  # no quant params
        quant = QuantParams(scale=0.1, zero_point=0)
        graph.add_tensor(Tensor("y", TensorType((1, 8), UINT8), quant=quant))
        graph.add_node(Node("r0", "relu", ["x"], ["y"]))
        graph.mark_output("y")
        finding = _find(analyze_graph(graph), "lay.segment-quant")
        assert finding.location.element == "x"

    def test_high_rank_edge_is_a_warning(self):
        graph = Graph("fixture")
        graph.add_input("x", TensorType((1, 2, 2, 2, 8)))
        graph.add_tensor(Tensor("y", TensorType((1, 2, 2, 2, 8))))
        graph.add_node(Node("r0", "relu", ["x"], ["y"]))
        graph.mark_output("y")
        report = analyze_graph(graph)
        finding = _find(report, "lay.segment-rank")
        assert finding.severity is Severity.WARNING
        assert report.ok

    def test_suppress_drops_rule(self):
        graph = _relu_graph(out_shape=(1, 9))
        report = analyze_graph(graph, suppress=("gir.shape-mismatch",))
        assert not report.by_rule("gir.shape-mismatch")


class TestValidateHardening:
    """Graph.validate() now rejects what the structural rules report."""

    def test_validate_rejects_unknown_tensor(self):
        from repro.graph.gir import GraphError

        graph = _relu_graph()
        graph.nodes.append(Node("r1", "relu", ["ghost"], ["y"]))
        with pytest.raises(GraphError, match="unknown tensor"):
            graph.validate()

    def test_validate_rejects_duplicate_node_name(self):
        from repro.graph.gir import GraphError

        graph = _relu_graph()
        graph.nodes.append(Node("r0", "relu", ["x"], ["y"]))
        with pytest.raises(GraphError, match="duplicate node name"):
            graph.validate()
