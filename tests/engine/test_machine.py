"""Engine-driven Ncore machines: resumable stepping under one clock."""

import numpy as np
import pytest

from repro.engine import Engine, MachineTask
from repro.isa import assemble
from repro.ncore import Ncore

PROGRAM = (
    "setaddr a0, 0\nsetaddr a1, 0\nsetaddr a6, 1\n"
    "loop 32 {\n  mac.uint8 dram[a0], wtram[a1]\n}\n"
    "requant.uint8 relu\nstore a6\nhalt"
)


def fresh_machine() -> Ncore:
    machine = Ncore()
    machine.write_data_ram(0, bytes(np.full(4096, 2, np.uint8)))
    machine.write_weight_ram(0, bytes(np.full(4096, 3, np.uint8)))
    return machine


class TestMachineTask:
    def test_stepped_execution_matches_one_blocking_run(self):
        blocking = fresh_machine()
        reference = blocking.execute_program(assemble(PROGRAM))
        engine = Engine()
        stepped = fresh_machine()
        task = MachineTask(engine, stepped, assemble(PROGRAM), budget_cycles=8)
        engine.run()
        assert task.run.halted
        assert task.run.cycles == reference.cycles
        assert task.run.instructions == reference.instructions
        assert len(task.run.steps) > 1  # genuinely resumed mid-program
        assert stepped.read_data_ram(4096, 4096) == blocking.read_data_ram(4096, 4096)

    def test_engine_clock_tracks_machine_cycles(self):
        engine = Engine()
        machine = fresh_machine()
        task = MachineTask(engine, machine, assemble(PROGRAM), budget_cycles=16)
        engine.run()
        clock_hz = machine.config.clock_hz
        assert engine.now == pytest.approx(task.run.cycles / clock_hz)
        assert task.run.finished_at == pytest.approx(engine.now)

    def test_two_machines_interleave_under_one_clock(self):
        engine = Engine()
        first = MachineTask(
            engine, fresh_machine(), assemble(PROGRAM), budget_cycles=8, name="ncore0"
        )
        second = MachineTask(
            engine, fresh_machine(), assemble(PROGRAM), budget_cycles=8, name="ncore1"
        )
        joined = []

        def join():
            runs = yield engine.all_of([first.task, second.task])
            joined.append(runs)

        engine.process(join())
        engine.run()
        (runs,) = joined
        assert all(run.halted for run in runs)
        # Identical machines, identical programs: both finish at the same
        # simulated instant, which only works if neither monopolised the
        # engine with a blocking run.
        assert runs[0].finished_at == pytest.approx(runs[1].finished_at)
        assert runs[0].cycles == runs[1].cycles

    def test_task_value_is_the_machine_run(self):
        engine = Engine()
        task = MachineTask(engine, fresh_machine(), assemble(PROGRAM))
        got = []

        def waiter():
            got.append((yield task.task))

        engine.process(waiter())
        engine.run()
        assert got == [task.run]
        assert got[0].stop_reason == "halt"

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            MachineTask(Engine(), fresh_machine(), assemble("halt"), budget_cycles=0)


class TestOvershoot:
    def test_fused_repeat_overshoot_is_tracked_not_drifted(self):
        # The 32-trip repeat block commits whole, so an 8-cycle budget is
        # overshot — the engine clock must still advance by the cycles
        # actually consumed.
        engine = Engine()
        machine = fresh_machine()
        task = MachineTask(engine, machine, assemble(PROGRAM), budget_cycles=8)
        engine.run()
        assert task.overshoot_cycles > 0
        assert engine.now == pytest.approx(task.run.cycles / machine.config.clock_hz)

    def test_amortize_shrinks_later_budgets(self):
        plain = MachineTask(
            Engine(), fresh_machine(), assemble(PROGRAM), budget_cycles=8
        )
        plain.engine.run()
        engine = Engine()
        amortized = MachineTask(
            engine, fresh_machine(), assemble(PROGRAM),
            budget_cycles=8, amortize_overshoot=True,
        )
        engine.run()
        # Same simulated work either way; repaying the debt just slices it
        # across more (smaller) turns.
        assert amortized.run.cycles == plain.run.cycles
        assert amortized.run.halted
        assert len(amortized.run.steps) >= len(plain.run.steps)
