"""The dynamic-batching queue: seal-by-size, deadline, greedy, flush."""

import pytest

from repro.engine import BatchQueue, Engine


def drain_one(engine, queue, batches):
    """A consumer task that takes exactly one batch."""
    def body():
        batches.append((yield queue.get()))

    return engine.process(body())


class TestSealBySize:
    def test_batch_seals_when_max_batch_reached(self):
        engine = Engine()
        queue = BatchQueue(engine, max_batch=3, max_wait=1.0)
        batches = []
        drain_one(engine, queue, batches)
        for item in "abc":
            queue.put(item)
        engine.run()
        (batch,) = batches
        assert batch.items == ["a", "b", "c"]
        assert batch.reason == "size"
        assert batch.assembly_seconds == 0.0

    def test_size_seal_cancels_the_deadline(self):
        engine = Engine()
        queue = BatchQueue(engine, max_batch=2, max_wait=1.0)
        batches = []
        drain_one(engine, queue, batches)
        queue.put("a")
        queue.put("b")   # seals by size at t=0; deadline timer now stale
        engine.run()
        assert len(batches) == 1
        assert batches[0].reason == "size"
        assert queue.stats.by_reason == {"size": 1}


class TestDeadline:
    def test_partial_batch_seals_at_the_deadline(self):
        engine = Engine()
        queue = BatchQueue(engine, max_batch=8, max_wait=0.5)
        batches = []
        drain_one(engine, queue, batches)
        engine.call_after(0.1, queue.put, "a")
        engine.call_after(0.2, queue.put, "b")
        engine.run()
        (batch,) = batches
        assert batch.items == ["a", "b"]
        assert batch.reason == "deadline"
        assert batch.opened_at == pytest.approx(0.1)
        assert batch.closed_at == pytest.approx(0.6)  # first item + max_wait
        assert batch.assembly_seconds == pytest.approx(0.5)

    def test_deadline_restarts_per_batch(self):
        engine = Engine()
        queue = BatchQueue(engine, max_batch=8, max_wait=0.5)
        batches = []
        drain_one(engine, queue, batches)
        drain_one(engine, queue, batches)
        engine.call_after(0.0, queue.put, "a")
        engine.call_after(2.0, queue.put, "b")
        engine.run()
        assert [b.items for b in batches] == [["a"], ["b"]]
        assert [b.closed_at for b in batches] == pytest.approx([0.5, 2.5])


class TestGreedy:
    def test_idle_consumer_takes_whatever_arrives(self):
        engine = Engine()
        queue = BatchQueue(engine, max_batch=8, max_wait=0.0)
        batches = []
        drain_one(engine, queue, batches)
        engine.call_after(1.0, queue.put, "a")
        engine.run()
        (batch,) = batches
        assert batch.items == ["a"]
        assert batch.reason == "greedy"

    def test_waiting_items_handed_over_when_consumer_arrives(self):
        engine = Engine()
        queue = BatchQueue(engine, max_batch=8, max_wait=0.0)
        queue.put("a")
        queue.put("b")
        batches = []
        drain_one(engine, queue, batches)
        engine.run()
        (batch,) = batches
        assert batch.items == ["a", "b"]
        assert batch.reason == "greedy"


class TestFlushAndBuffering:
    def test_flush_seals_the_open_remainder(self):
        engine = Engine()
        queue = BatchQueue(engine, max_batch=4, max_wait=10.0)
        batches = []
        drain_one(engine, queue, batches)
        queue.put("tail")
        queue.flush()
        engine.run()
        (batch,) = batches
        assert batch.items == ["tail"]
        assert batch.reason == "flush"

    def test_flush_of_an_empty_queue_is_a_noop(self):
        engine = Engine()
        queue = BatchQueue(engine, max_batch=4)
        queue.flush()
        assert queue.stats.batches == 0

    def test_sealed_batches_buffer_for_late_consumers(self):
        engine = Engine()
        queue = BatchQueue(engine, max_batch=2, max_wait=1.0)
        for item in "abcd":
            queue.put(item)   # two sealed batches, nobody waiting
        assert queue.depth == 4
        batches = []
        drain_one(engine, queue, batches)
        drain_one(engine, queue, batches)
        engine.run()
        assert [b.items for b in batches] == [["a", "b"], ["c", "d"]]
        assert [b.sequence for b in batches] == [0, 1]
        assert queue.depth == 0

    def test_multiple_consumers_share_one_queue(self):
        # The multisocket sharding shape: N executors, one queue.
        engine = Engine()
        queue = BatchQueue(engine, max_batch=1)
        served = []

        def executor(tag):
            while True:
                batch = yield queue.get()
                yield engine.timeout(1.0)
                served.append((engine.now, tag, batch.items[0]))

        engine.process(executor("s0"))
        engine.process(executor("s1"))
        for index in range(4):
            engine.call_after(0.0, queue.put, index)
        engine.run()
        # Two sockets drain four unit batches in two rounds.
        assert [(t, item) for t, _, item in served] == [
            (1.0, 0), (1.0, 1), (2.0, 2), (2.0, 3),
        ]

    def test_stats_track_reasons_and_mean_size(self):
        engine = Engine()
        queue = BatchQueue(engine, max_batch=2, max_wait=0.5)
        batches = []
        for _ in range(3):
            drain_one(engine, queue, batches)
        for item in "abc":
            queue.put(item)
        engine.run()
        assert queue.stats.batches == 2
        assert queue.stats.items == 3
        assert queue.stats.mean_batch_size == pytest.approx(1.5)
        assert queue.stats.by_reason == {"size": 1, "deadline": 1}

    def test_parameter_validation(self):
        engine = Engine()
        with pytest.raises(ValueError, match="max_batch"):
            BatchQueue(engine, max_batch=0)
        with pytest.raises(ValueError, match="max_wait"):
            BatchQueue(engine, max_wait=-1.0)
