"""Capacity-limited resources: FIFO grants, utilization, the worker pool."""

import pytest

from repro.engine import Engine, EngineError, Resource, WorkerPool


class TestResource:
    def test_grants_up_to_capacity_immediately(self):
        engine = Engine()
        resource = Resource(engine, capacity=2)
        first, second, third = (resource.request() for _ in range(3))
        assert first.triggered and second.triggered
        assert not third.triggered
        assert resource.in_use == 2
        assert resource.queued == 1

    def test_release_grants_the_oldest_waiter(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        order = []

        def worker(tag, hold):
            yield resource.request()
            yield engine.timeout(hold)
            resource.release()
            order.append((engine.now, tag))

        engine.process(worker("a", 1.0))
        engine.process(worker("b", 1.0))
        engine.process(worker("c", 1.0))
        engine.run()
        # Strict FIFO: request order decides service order.
        assert order == [(1.0, "a"), (2.0, "b"), (3.0, "c")]

    def test_release_without_request_is_an_error(self):
        engine = Engine()
        with pytest.raises(EngineError, match="without a matching request"):
            Resource(engine, capacity=1).release()

    def test_capacity_must_be_positive(self):
        with pytest.raises(EngineError):
            Resource(Engine(), capacity=0)

    def test_use_holds_for_the_given_time(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        stamps = []

        def worker():
            yield engine.process(resource.use(2.5))
            stamps.append(engine.now)

        engine.process(worker())
        engine.run()
        assert stamps == [2.5]
        assert resource.in_use == 0

    def test_utilization_integrates_busy_slots(self):
        engine = Engine()
        resource = Resource(engine, capacity=2)
        engine.process(resource.use(4.0))
        engine.process(resource.use(2.0))
        engine.run()
        # 6 busy slot-seconds over 4 seconds of 2 slots = 75%.
        assert resource.utilization() == pytest.approx(0.75)


class TestWorkerPool:
    def test_submit_completes_after_the_work_time(self):
        engine = Engine()
        pool = WorkerPool(engine, workers=2)
        done = []

        def client(tag, seconds):
            yield pool.submit(seconds)
            done.append((engine.now, tag))

        engine.process(client("a", 1.0))
        engine.process(client("b", 1.0))
        engine.process(client("c", 1.0))  # queues behind a and b
        engine.run()
        assert done == [(1.0, "a"), (1.0, "b"), (2.0, "c")]

    def test_pool_saturation_serializes_excess_work(self):
        engine = Engine()
        pool = WorkerPool(engine, workers=1)
        done = []

        def client(tag):
            yield pool.submit(1.0)
            done.append((engine.now, tag))

        for tag in range(4):
            engine.process(client(tag))
        engine.run()
        assert done == [(1.0, 0), (2.0, 1), (3.0, 2), (4.0, 3)]
