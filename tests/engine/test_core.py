"""The discrete-event kernel: clock, ordering, events, tasks."""

import pytest

from repro.engine import Engine, EngineError, every


class TestClockAndOrdering:
    def test_time_starts_at_zero_and_advances(self):
        engine = Engine()
        seen = []
        engine.call_after(2.0, lambda: seen.append(engine.now))
        engine.call_after(1.0, lambda: seen.append(engine.now))
        assert engine.now == 0.0
        final = engine.run()
        assert seen == [1.0, 2.0]
        assert final == 2.0

    def test_ties_dispatch_in_insertion_order(self):
        engine = Engine()
        seen = []
        for tag in range(5):
            engine.call_after(1.0, seen.append, tag)
        engine.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_call_at_schedules_absolute_time(self):
        engine = Engine()
        seen = []
        engine.call_after(1.0, lambda: engine.call_at(3.0, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [3.0]

    def test_cannot_schedule_into_the_past(self):
        engine = Engine()
        with pytest.raises(EngineError):
            engine.call_after(-1.0, lambda: None)
        with pytest.raises(EngineError):
            engine.timeout(-0.5)

    def test_run_until_stops_the_clock_exactly(self):
        engine = Engine()
        seen = []
        engine.call_after(1.0, seen.append, "a")
        engine.call_after(5.0, seen.append, "b")
        assert engine.run(until=2.0) == 2.0
        assert seen == ["a"]
        assert engine.pending == 1
        engine.run()
        assert seen == ["a", "b"]

    def test_max_events_catches_runaway_schedules(self):
        engine = Engine()

        def respawn():
            engine.call_after(0.0, respawn)

        engine.call_after(0.0, respawn)
        with pytest.raises(EngineError, match="without draining"):
            engine.run(max_events=100)

    def test_identical_schedules_dispatch_identically(self):
        def trace():
            engine = Engine()
            order = []
            for tag in ("x", "y", "z"):
                engine.call_after(0.5, lambda t=tag: order.append((engine.now, t)))
            engine.call_after(0.25, lambda: order.append((engine.now, "early")))
            engine.run()
            return order

        assert trace() == trace()


class TestEvents:
    def test_succeed_resumes_with_value(self):
        engine = Engine()
        done = engine.event()
        got = []

        def waiter():
            got.append((yield done))

        engine.process(waiter())
        engine.call_after(1.0, done.succeed, 42)
        engine.run()
        assert got == [42]

    def test_double_trigger_is_an_error(self):
        engine = Engine()
        done = engine.event().succeed(1)
        with pytest.raises(EngineError):
            done.succeed(2)

    def test_late_subscriber_still_observes(self):
        engine = Engine()
        done = engine.event().succeed("fact")
        got = []

        def waiter():
            got.append((yield done))

        engine.process(waiter())
        engine.run()
        assert got == ["fact"]

    def test_fail_throws_into_the_task(self):
        engine = Engine()
        doomed = engine.event()
        caught = []

        def waiter():
            try:
                yield doomed
            except ValueError as error:
                caught.append(str(error))

        engine.process(waiter())
        engine.call_after(1.0, doomed.fail, ValueError("boom"))
        engine.run()
        assert caught == ["boom"]

    def test_all_of_collects_values_in_order(self):
        engine = Engine()
        got = []

        def waiter():
            got.append((yield engine.all_of([
                engine.timeout(3.0, "slow"),
                engine.timeout(1.0, "fast"),
            ])))

        engine.process(waiter())
        engine.run()
        assert got == [["slow", "fast"]]
        assert engine.now == 3.0


class TestTasks:
    def test_timeout_advances_the_clock(self):
        engine = Engine()
        stamps = []

        def body():
            yield engine.timeout(1.5)
            stamps.append(engine.now)
            yield engine.timeout(0.5)
            stamps.append(engine.now)

        engine.process(body())
        engine.run()
        assert stamps == [1.5, 2.0]

    def test_task_return_value_becomes_event_value(self):
        engine = Engine()
        got = []

        def child():
            yield engine.timeout(1.0)
            return "payload"

        def parent():
            got.append((yield engine.process(child())))

        engine.process(parent())
        engine.run()
        assert got == ["payload"]

    def test_two_tasks_interleave_deterministically(self):
        engine = Engine()
        order = []

        def ticker(tag, period):
            for _ in range(3):
                yield engine.timeout(period)
                order.append((engine.now, tag))

        engine.process(ticker("a", 1.0))
        engine.process(ticker("b", 1.5))
        engine.run()
        # The t=3.0 tie goes to "b": its timeout was enqueued at t=1.5,
        # before "a" enqueued its own at t=2.0 (insertion-order tie-break).
        assert order == [
            (1.0, "a"), (1.5, "b"), (2.0, "a"), (3.0, "b"), (3.0, "a"), (4.5, "b"),
        ]

    def test_yielding_a_non_event_is_an_error(self):
        engine = Engine()

        def bad():
            yield 42

        engine.process(bad())
        with pytest.raises(EngineError, match="must yield Event"):
            engine.run()

    def test_yielding_a_foreign_event_is_an_error(self):
        engine, other = Engine(), Engine()

        def confused():
            yield other.timeout(1.0)

        engine.process(confused())
        with pytest.raises(EngineError, match="another engine"):
            engine.run()

    def test_every_runs_until_fn_returns_true(self):
        engine = Engine()
        ticks = []

        def tick():
            ticks.append(engine.now)
            return len(ticks) >= 3

        engine.process(every(engine, 2.0, tick))
        engine.run()
        assert ticks == [2.0, 4.0, 6.0]
        assert engine.now == 6.0
