"""Tests for the Ncore assembler / disassembler."""

import pytest
from hypothesis import assume, given

from repro.dtypes import NcoreDType
from repro.isa import (
    AssemblyError,
    NDUOpcode,
    NPUOpcode,
    OperandKind,
    OutOpcode,
    SeqOpcode,
    assemble,
    disassemble,
)
from tests.isa.test_encoding import _instructions


class TestBasicStatements:
    def test_halt(self):
        (inst,) = assemble("halt")
        assert inst.is_halt

    def test_comments_ignored(self):
        program = assemble("; comment only\n\nhalt ; trailing\n")
        assert len(program) == 1

    def test_setaddr(self):
        (inst,) = assemble("setaddr a3, 100")
        assert inst.seq.opcode is SeqOpcode.SET_ADDR
        assert inst.seq.arg == 3
        assert inst.seq.arg2 == 100

    def test_addaddr_negative(self):
        (inst,) = assemble("addaddr a0, -5")
        assert inst.seq.arg2 == -5

    def test_loopn_endloop(self):
        begin, end = assemble("loopn 16\nendloop")
        assert begin.seq.opcode is SeqOpcode.LOOP_BEGIN
        assert begin.seq.arg2 == 16
        assert end.seq.opcode is SeqOpcode.LOOP_END

    def test_dma_ops(self):
        start, wait = assemble("dmastart 2\ndmawait 3")
        assert start.seq.opcode is SeqOpcode.DMA_START
        assert start.seq.arg == 2
        assert wait.seq.opcode is SeqOpcode.DMA_WAIT

    def test_event(self):
        (inst,) = assemble("event 9")
        assert inst.seq.opcode is SeqOpcode.EVENT
        assert inst.seq.arg == 9


class TestNDUStatements:
    def test_bypass_with_increment(self):
        (inst,) = assemble("bypass n0, dram[a2++]")
        op = inst.ndu_ops[0]
        assert op.opcode is NDUOpcode.BYPASS
        assert op.src.kind is OperandKind.DATA_RAM
        assert op.src.increment

    def test_rotate_directions(self):
        left, right = assemble("rotl n1, n1, 64\nrotr n2, n2, 8")
        assert left.ndu_ops[0].amount == 64
        assert right.ndu_ops[0].amount == 8

    def test_broadcast64(self):
        (inst,) = assemble("broadcast64 n1, wtram[a3], a5, inc")
        op = inst.ndu_ops[0]
        assert op.opcode is NDUOpcode.BROADCAST64
        assert op.index_reg == 5
        assert op.index_increment

    def test_merge(self):
        (inst,) = assemble("merge n0, dram[a1], n2")
        assert inst.ndu_ops[0].src2.index == 2

    def test_immediate_source(self):
        (inst,) = assemble("bypass n0, #42")
        assert inst.ndu_ops[0].src.kind is OperandKind.IMMEDIATE
        assert inst.ndu_ops[0].src.index == 42


class TestNPUStatements:
    def test_mac_with_shift(self):
        (inst,) = assemble("mac dlast>>1, n1")
        assert inst.npu.opcode is NPUOpcode.MAC
        assert inst.npu.data.kind is OperandKind.DLAST
        assert inst.npu.data_shift == 1

    def test_dtype_suffix(self):
        (inst,) = assemble("add.bf16 n0, n1")
        assert inst.npu.dtype is NcoreDType.BF16

    def test_flags(self):
        (inst,) = assemble("mac n0, n1, noacc, zoff, neighbor, pred3")
        npu = inst.npu
        assert not npu.accumulate
        assert npu.zero_offset
        assert npu.from_neighbor
        assert npu.predicate == 3

    def test_unknown_flag_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("mac n0, n1, turbo")


class TestOutStatements:
    def test_requant_with_activation(self):
        (inst,) = assemble("requant.uint8 relu")
        assert inst.out.opcode is OutOpcode.REQUANT
        assert inst.out.dtype is NcoreDType.UINT8

    def test_store(self):
        (inst,) = assemble("store a6, inc, high")
        assert inst.out.opcode is OutOpcode.STORE
        assert inst.out.dst_increment
        assert inst.out.source_high

    def test_storeacc(self):
        (inst,) = assemble("storeacc a4")
        assert inst.out.opcode is OutOpcode.STORE_ACC


class TestFusion:
    FIG6 = """
    ; Fig. 6: convolution inner loop, one instruction, 1 iteration/clock
    loop 3 {
      broadcast64 n1, wtram[a3], a5, inc
      mac dlast>>1, n1
      rotl n0, n0, 64
    }
    """

    def test_fig6_is_one_instruction(self):
        program = assemble(self.FIG6)
        assert len(program) == 1
        inst = program[0]
        assert inst.repeat == 3
        assert len(inst.ndu_ops) == 2
        assert inst.npu.opcode is NPUOpcode.MAC
        assert inst.total_cycles() == 3  # one clock per iteration

    def test_pipe_fusion(self):
        (inst,) = assemble("bypass n0, dram[a0++] | mac n0, wtram[a1++] | requant relu")
        assert len(inst.ndu_ops) == 1
        assert inst.npu is not None
        assert inst.out is not None

    def test_two_npu_ops_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("mac n0, n1 | add n0, n1")

    def test_unterminated_loop_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("loop 2 {\nmac n0, n1\n")

    def test_unmatched_brace_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("}")

    def test_nested_fused_loops_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("loop 2 {\nloop 3 {\n}\n}")


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="line 1"):
            assemble("frobnicate n0")

    def test_bad_operand(self):
        with pytest.raises(AssemblyError):
            assemble("bypass n0, dram[b2]")

    def test_oversized_immediate(self):
        with pytest.raises(AssemblyError):
            assemble("bypass n0, #64")


class TestRangeChecks:
    """Register indices and repeat counts are rejected at assembly time."""

    def test_address_register_in_operand(self):
        with pytest.raises(AssemblyError, match="address register 9"):
            assemble("bypass n0, dram[a9]")

    def test_address_register_in_setaddr(self):
        with pytest.raises(AssemblyError, match="a-register 8"):
            assemble("setaddr a8, 0")

    def test_address_register_in_store(self):
        with pytest.raises(AssemblyError, match="a-register 12"):
            assemble("store a12")

    def test_ndu_register_source(self):
        with pytest.raises(AssemblyError, match="NDU register 5"):
            assemble("bypass n0, n5")

    def test_ndu_register_destination(self):
        with pytest.raises(AssemblyError, match="n-register 4"):
            assemble("bypass n4, n0")

    def test_predicate_register(self):
        with pytest.raises(AssemblyError, match="predicate register 9"):
            assemble("mac n0, n1, pred9")

    def test_fused_repeat_count(self):
        with pytest.raises(AssemblyError, match="70000 outside 1..65535"):
            assemble("loop 70000 {\nmac n0, n1\n}")

    def test_loopn_trip_count(self):
        with pytest.raises(AssemblyError, match="trip count 0"):
            assemble("loopn 0")

    def test_dma_descriptor_index(self):
        with pytest.raises(AssemblyError, match="descriptor 12"):
            assemble("dmastart 12")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError, match="line 3") as exc_info:
            assemble("; header comment\nhalt\nsetaddr a8, 0")
        assert exc_info.value.line_no == 3


class TestRoundTrip:
    def test_fig6_round_trip(self):
        program = assemble(TestFusion.FIG6)
        assert assemble(disassemble(program)) == program

    @staticmethod
    def _out_is_canonical(out):
        """The assembly syntax only expresses each OUT opcode's own fields."""
        from repro.isa import OutOpcode
        from repro.isa.instruction import Activation

        if out is None:
            return True
        if out.opcode is OutOpcode.REQUANT:
            return out.dst_addr_reg == 0 and not out.dst_increment and not out.source_high
        if out.opcode is OutOpcode.STORE:
            return out.activation is Activation.NONE
        # STORE_ACC: only the address register is expressible.
        from repro.dtypes import NcoreDType

        return (
            out.activation is Activation.NONE
            and not out.dst_increment
            and not out.source_high
            and out.dtype is NcoreDType.INT8
        )

    @given(_instructions())
    def test_disassemble_assemble_round_trip(self, instruction):
        assume(self._out_is_canonical(instruction.out))
        text = disassemble([instruction])
        assert assemble(text) == [instruction]
