"""Tests for the 128-bit instruction encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dtypes import NcoreDType
from repro.isa import (
    EncodingError,
    Instruction,
    NDUOp,
    NDUOpcode,
    NPUOp,
    NPUOpcode,
    Operand,
    OperandKind,
    OutOp,
    OutOpcode,
    SeqOp,
    SeqOpcode,
    decode,
    encode,
)
from repro.isa.encoding import INSTRUCTION_BYTES
from repro.isa.instruction import Activation, RotateDirection
from repro.isa.operands import data_ram, ndu_reg, weight_ram


def test_word_is_exactly_128_bits():
    # Section IV-D.1: Ncore instructions are 128 bits wide.
    assert INSTRUCTION_BYTES == 16
    assert len(encode(Instruction())) == 16


def test_simple_round_trips():
    cases = [
        Instruction(),
        Instruction(seq=SeqOp(SeqOpcode.HALT)),
        Instruction(seq=SeqOp(SeqOpcode.SET_ADDR, 3, 1024)),
        Instruction(seq=SeqOp(SeqOpcode.ADD_ADDR, 2, -7)),
        Instruction(seq=SeqOp(SeqOpcode.LOOP_BEGIN, 0, 100)),
        Instruction(seq=SeqOp(SeqOpcode.DMA_START, 5)),
        Instruction(repeat=2048),
        Instruction(
            npu=NPUOp(
                NPUOpcode.MAC,
                Operand(OperandKind.DLAST),
                ndu_reg(1),
                data_shift=1,
                zero_offset=True,
                dtype=NcoreDType.BF16,
            )
        ),
        Instruction(out=OutOp(OutOpcode.REQUANT, Activation.RELU)),
        Instruction(
            out=OutOp(OutOpcode.STORE, dst_addr_reg=6, dst_increment=True)
        ),
    ]
    for inst in cases:
        assert decode(encode(inst)) == inst


def test_three_ndu_ops_round_trip():
    inst = Instruction(
        ndu_ops=(
            NDUOp(NDUOpcode.BYPASS, 0, data_ram(0, True)),
            NDUOp(NDUOpcode.ROTATE, 1, ndu_reg(1), amount=64),
            NDUOp(
                NDUOpcode.BROADCAST64,
                2,
                weight_ram(3),
                index_reg=5,
                index_increment=True,
            ),
        )
    )
    assert decode(encode(inst)) == inst


def test_merge_round_trip():
    inst = Instruction(
        ndu_ops=(
            NDUOp(NDUOpcode.MERGE, 0, data_ram(1), src2=ndu_reg(2)),
        )
    )
    assert decode(encode(inst)) == inst


def test_three_ndu_plus_out_is_unencodable():
    # The dense (3-NDU) mode shares encoding space with the OUT fields.
    inst = Instruction(
        ndu_ops=tuple(NDUOp(NDUOpcode.BYPASS, i, data_ram(i)) for i in range(3)),
        out=OutOp(OutOpcode.REQUANT),
    )
    with pytest.raises(EncodingError):
        encode(inst)


def test_rotate_zero_unencodable():
    inst = Instruction(ndu_ops=(NDUOp(NDUOpcode.ROTATE, 0, ndu_reg(0), amount=0),))
    with pytest.raises(EncodingError):
        encode(inst)


def test_repeat_overflow_unencodable():
    with pytest.raises(EncodingError):
        encode(Instruction(repeat=2049))


def test_predicate_seven_unencodable():
    inst = Instruction(
        npu=NPUOp(NPUOpcode.MAC, ndu_reg(0), weight_ram(0), predicate=7)
    )
    with pytest.raises(EncodingError):
        encode(inst)


def test_npu_immediate_operand_unencodable():
    inst = Instruction(
        npu=NPUOp(NPUOpcode.MAC, Operand(OperandKind.IMMEDIATE, 5), weight_ram(0))
    )
    with pytest.raises(EncodingError):
        encode(inst)


def test_wrong_length_rejected():
    with pytest.raises(EncodingError):
        decode(b"\x00" * 15)


# ---------------------------------------------------------------------------
# Property-based round-trip over randomly generated valid instructions.
# ---------------------------------------------------------------------------

_ram_operand = st.builds(
    Operand,
    kind=st.sampled_from([OperandKind.DATA_RAM, OperandKind.WEIGHT_RAM]),
    index=st.integers(0, 7),
    increment=st.booleans(),
)
_reg_operand = st.builds(Operand, kind=st.just(OperandKind.NDU_REG), index=st.integers(0, 3))
_misc_operand = st.builds(
    Operand,
    kind=st.sampled_from(
        [OperandKind.DLAST, OperandKind.ZERO, OperandKind.OUT_LOW, OperandKind.OUT_HIGH]
    ),
)
_npu_operand = st.one_of(_ram_operand, _reg_operand, _misc_operand)
_ndu_src = st.one_of(
    _npu_operand,
    st.builds(Operand, kind=st.just(OperandKind.IMMEDIATE), index=st.integers(0, 63)),
)


@st.composite
def _ndu_ops(draw, dst):
    opcode = draw(st.sampled_from(list(NDUOpcode)))
    src = draw(_ndu_src)
    if opcode is NDUOpcode.ROTATE:
        return NDUOp(
            opcode,
            dst,
            src,
            amount=draw(st.integers(1, 64)),
            direction=draw(st.sampled_from(list(RotateDirection))),
        )
    if opcode is NDUOpcode.BROADCAST64:
        return NDUOp(
            opcode,
            dst,
            src,
            index_reg=draw(st.integers(0, 7)),
            index_increment=draw(st.booleans()),
        )
    if opcode is NDUOpcode.MERGE:
        return NDUOp(opcode, dst, src, src2=draw(_reg_operand))
    return NDUOp(opcode, dst, src)


_npu_op = st.builds(
    NPUOp,
    opcode=st.sampled_from([op for op in NPUOpcode if op is not NPUOpcode.NOP]),
    data=_npu_operand,
    weight=_npu_operand,
    accumulate=st.booleans(),
    data_shift=st.integers(0, 3),
    zero_offset=st.booleans(),
    from_neighbor=st.booleans(),
    predicate=st.one_of(st.none(), st.integers(0, 6)),
    dtype=st.sampled_from(list(NcoreDType)),
)

_out_op = st.builds(
    OutOp,
    opcode=st.sampled_from([op for op in OutOpcode if op is not OutOpcode.NOP]),
    activation=st.sampled_from(list(Activation)),
    dst_addr_reg=st.integers(0, 7),
    dst_increment=st.booleans(),
    source_high=st.booleans(),
    dtype=st.sampled_from(list(NcoreDType)),
)


@st.composite
def _seq_ops(draw):
    opcode = draw(st.sampled_from(list(SeqOpcode)))
    if opcode in (SeqOpcode.SET_ADDR, SeqOpcode.ADD_ADDR):
        return SeqOp(opcode, draw(st.integers(0, 7)), draw(st.integers(-1024, 1023)))
    if opcode is SeqOpcode.LOOP_BEGIN:
        return SeqOp(opcode, 0, draw(st.integers(1, 1023)))
    if opcode is SeqOpcode.DMA_START:
        return SeqOp(opcode, draw(st.integers(0, 7)))
    if opcode is SeqOpcode.DMA_WAIT:
        # Engine groups above 3 are invalid encodings and raise at construction.
        return SeqOp(opcode, draw(st.integers(0, 3)))
    if opcode is SeqOpcode.EVENT:
        return SeqOp(opcode, draw(st.integers(0, 15)))
    return SeqOp(opcode)


@st.composite
def _instructions(draw):
    n_ndu = draw(st.integers(0, 3))
    dsts = draw(
        st.lists(st.integers(0, 3), min_size=n_ndu, max_size=n_ndu, unique=True)
    )
    ndu = tuple(draw(_ndu_ops(dst)) for dst in dsts)
    out = None if n_ndu == 3 else draw(st.one_of(st.none(), _out_op))
    return Instruction(
        ndu_ops=ndu,
        npu=draw(st.one_of(st.none(), _npu_op)),
        out=out,
        seq=draw(_seq_ops()),
        repeat=draw(st.integers(1, 2048)),
    )


@given(_instructions())
def test_encode_decode_round_trip(instruction):
    word = encode(instruction)
    assert len(word) == 16
    assert decode(word) == instruction


@given(_instructions())
def test_encoding_is_deterministic(instruction):
    assert encode(instruction) == encode(instruction)
