"""Tests for instruction and operand validation."""

import pytest

from repro.dtypes import NcoreDType
from repro.isa import (
    Instruction,
    NDUOp,
    NDUOpcode,
    NPUOp,
    NPUOpcode,
    Operand,
    OperandKind,
    SeqOp,
    SeqOpcode,
)
from repro.isa.operands import data_ram, immediate, ndu_reg, weight_ram


class TestOperand:
    def test_ram_operand_str(self):
        assert str(data_ram(3)) == "dram[a3]"
        assert str(weight_ram(1, increment=True)) == "wtram[a1++]"

    def test_ndu_reg_str(self):
        assert str(ndu_reg(2)) == "n2"

    def test_immediate_range(self):
        assert immediate(63).index == 63
        with pytest.raises(ValueError):
            immediate(64)

    def test_addr_reg_range(self):
        with pytest.raises(ValueError):
            data_ram(8)

    def test_increment_only_on_ram(self):
        with pytest.raises(ValueError):
            Operand(OperandKind.NDU_REG, 0, increment=True)

    def test_ndu_reg_range(self):
        with pytest.raises(ValueError):
            ndu_reg(4)


class TestNDUOp:
    def test_rotate_amount_limit(self):
        # NDU rotation moves at most 64 bytes per clock (section IV-D.3).
        NDUOp(NDUOpcode.ROTATE, 0, ndu_reg(0), amount=64)
        with pytest.raises(ValueError):
            NDUOp(NDUOpcode.ROTATE, 0, ndu_reg(0), amount=65)

    def test_merge_needs_mask(self):
        with pytest.raises(ValueError):
            NDUOp(NDUOpcode.MERGE, 0, data_ram(0))

    def test_dst_range(self):
        with pytest.raises(ValueError):
            NDUOp(NDUOpcode.BYPASS, 4, data_ram(0))


class TestNPUOp:
    def test_shift_is_two_bits(self):
        with pytest.raises(ValueError):
            NPUOp(NPUOpcode.MAC, ndu_reg(0), weight_ram(0), data_shift=4)

    def test_predicate_range(self):
        with pytest.raises(ValueError):
            NPUOp(NPUOpcode.MAC, ndu_reg(0), weight_ram(0), predicate=8)


class TestInstruction:
    def test_at_most_three_ndu_ops(self):
        # "up to three (typically two) of these operations in parallel".
        ops = tuple(NDUOp(NDUOpcode.BYPASS, i, data_ram(0)) for i in range(4))
        Instruction(ndu_ops=ops[:3])
        with pytest.raises(ValueError):
            Instruction(ndu_ops=ops)

    def test_parallel_ndu_writes_distinct_registers(self):
        ops = (
            NDUOp(NDUOpcode.BYPASS, 0, data_ram(0)),
            NDUOp(NDUOpcode.BYPASS, 0, weight_ram(0)),
        )
        with pytest.raises(ValueError):
            Instruction(ndu_ops=ops)

    def test_repeat_bounds(self):
        with pytest.raises(ValueError):
            Instruction(repeat=0)

    def test_halt_property(self):
        assert Instruction(seq=SeqOp(SeqOpcode.HALT)).is_halt
        assert not Instruction().is_halt


class TestCycleCounts:
    def _mac(self, dtype):
        return Instruction(
            npu=NPUOp(NPUOpcode.MAC, ndu_reg(0), weight_ram(0), dtype=dtype)
        )

    def test_int8_single_cycle(self):
        assert self._mac(NcoreDType.INT8).issue_cycles() == 1

    def test_bf16_three_cycles(self):
        assert self._mac(NcoreDType.BF16).issue_cycles() == 3

    def test_int16_four_cycles(self):
        assert self._mac(NcoreDType.INT16).issue_cycles() == 4

    def test_non_npu_instruction_single_cycle(self):
        assert Instruction(seq=SeqOp(SeqOpcode.EVENT, 3)).issue_cycles() == 1

    def test_repeat_multiplies(self):
        inst = Instruction(
            npu=NPUOp(NPUOpcode.MAC, ndu_reg(0), weight_ram(0), dtype=NcoreDType.INT16),
            repeat=10,
        )
        assert inst.total_cycles() == 40

    def test_fig6_inner_loop_one_cycle_per_iteration(self):
        # The Fig. 6 convolution inner loop: broadcast + MAC + rotate fused
        # into a single int8 instruction -> one clock per iteration.
        inst = Instruction(
            ndu_ops=(
                NDUOp(
                    NDUOpcode.BROADCAST64,
                    1,
                    weight_ram(3),
                    index_reg=5,
                    index_increment=True,
                ),
                NDUOp(NDUOpcode.ROTATE, 0, ndu_reg(0), amount=64),
            ),
            npu=NPUOp(
                NPUOpcode.MAC,
                Operand(OperandKind.DLAST),
                ndu_reg(1),
                data_shift=1,
            ),
            repeat=3,
        )
        assert inst.issue_cycles() == 1
        assert inst.total_cycles() == 3


class TestSeqOp:
    def test_set_addr_validates_register(self):
        with pytest.raises(ValueError):
            SeqOp(SeqOpcode.SET_ADDR, 9, 0)

    def test_loop_needs_positive_count(self):
        with pytest.raises(ValueError):
            SeqOp(SeqOpcode.LOOP_BEGIN, 0, 0)
        SeqOp(SeqOpcode.LOOP_BEGIN, 0, 1)

    def test_dma_descriptor_range(self):
        with pytest.raises(ValueError):
            SeqOp(SeqOpcode.DMA_START, 8)
