"""Tests for the converter extensions: per-channel weights and int16.

Per-channel weight quantization exercises the OUT unit's *per-lane*
requantization registers (section IV-D.5); int16 is the paper's precision
fallback — "int16 is particularly useful to maintain precision when
working with int8 quantized values with different ranges" (section
II-A.6).
"""

import numpy as np
import pytest

from repro.dtypes import ChannelQuantParams, NcoreDType, choose_channel_quant_params
from repro.graph import Graph, Node, Tensor, TensorType, execute_float
from repro.quantize import calibrate, quantize_graph
from repro.runtime import execute_quantized
from tests.quantize.test_convert import calibration_batches, small_cnn


def disparate_channel_graph(seed=31):
    """A conv whose output channels have wildly different weight ranges —
    the case per-tensor quantization handles poorly."""
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(3, 3, 3, 8)).astype(np.float32)
    w[..., :4] *= 0.01   # tiny channels
    w[..., 4:] *= 2.0    # huge channels
    g = Graph("disparate")
    g.add_input("x", TensorType((1, 8, 8, 3)))
    g.add_constant("w", w)
    g.add_tensor(Tensor("y", TensorType((1, 8, 8, 8))))
    g.add_node(Node("conv", "conv2d", ["x", "w"], ["y"], {"padding": ((1, 1), (1, 1))}))
    g.mark_output("y")
    return g


class TestChannelQuantParams:
    def test_round_trip_per_channel(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(3, 3, 4, 6)).astype(np.float32)
        data[..., 0] *= 100
        qp = choose_channel_quant_params(data, axis=3)
        err = np.abs(qp.dequantize(qp.quantize(data)) - data)
        # Each channel's error is bounded by its own scale.
        for c in range(6):
            assert err[..., c].max() <= qp.scales[c] * 0.51

    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelQuantParams(scales=(), zero_points=(), axis=0)
        with pytest.raises(ValueError):
            ChannelQuantParams(scales=(1.0,), zero_points=(0, 0), axis=0)
        with pytest.raises(ValueError):
            ChannelQuantParams(scales=(-1.0,), zero_points=(0,), axis=0)

    def test_per_channel_tighter_than_per_tensor(self):
        from repro.dtypes import choose_quant_params

        rng = np.random.default_rng(2)
        data = rng.normal(size=(3, 3, 4, 8)).astype(np.float32)
        data[..., 0] *= 0.001
        per_tensor = choose_quant_params(data.min(), data.max())
        per_channel = choose_channel_quant_params(data, axis=3)
        # The tiny channel gets a far finer scale than the shared one.
        assert per_channel.scales[0] < per_tensor.scale / 10


class TestPerChannelConversion:
    def _errors(self, per_channel):
        g = disparate_channel_graph()
        feeds = {"x": np.random.default_rng(9).uniform(-1, 1, (1, 8, 8, 3)).astype(np.float32)}
        cal = calibrate(g, [feeds])
        qg = quantize_graph(g, cal, per_channel_weights=per_channel)
        f = list(execute_float(g, feeds).values())[0]
        q = list(execute_quantized(qg, feeds).values())[0]
        return np.abs(q - f), f

    def test_per_channel_recovers_small_channels(self):
        err_pt, f = self._errors(per_channel=False)
        err_pc, _ = self._errors(per_channel=True)
        # Per-channel must clearly beat per-tensor on the tiny channels;
        # the remaining error is the *output activation* quantization
        # floor, which weight quantization cannot go below.
        assert err_pc[..., :4].max() < err_pt[..., :4].max() / 1.8

    def test_per_channel_never_much_worse_overall(self):
        err_pt, f = self._errors(per_channel=False)
        err_pc, _ = self._errors(per_channel=True)
        assert err_pc.mean() <= err_pt.mean() * 1.05

    def test_per_channel_bias_units(self):
        g = small_cnn()
        cal = calibrate(g, calibration_batches())
        qg = quantize_graph(g, cal, per_channel_weights=True)
        conv = qg.node("conv1")
        w_qp = qg.tensor(conv.inputs[1]).quant
        assert isinstance(w_qp, ChannelQuantParams)
        assert qg.tensor(conv.inputs[2]).type.dtype == "int32"

    def test_per_channel_end_to_end_fidelity(self):
        g = small_cnn()
        cal = calibrate(g, calibration_batches())
        qg = quantize_graph(g, cal, per_channel_weights=True)
        feeds = calibration_batches(count=1)[0]
        f = list(execute_float(small_cnn(), feeds).values())[0]
        q = list(execute_quantized(qg, feeds).values())[0]
        assert np.abs(q - f).max() < 0.1 * max(1e-3, np.abs(f).max())


class TestInt16Conversion:
    def test_int16_structure_is_16x8(self):
        # int16 activations pair with int8 weights: s16 x s16 products
        # would overflow Ncore's 32-bit saturating accumulator.
        g = small_cnn()
        qg = quantize_graph(g, calibrate(g, calibration_batches()), NcoreDType.INT16)
        conv = qg.node("conv1")
        assert qg.tensor(conv.outputs[0]).type.dtype is NcoreDType.INT16
        assert qg.tensor(conv.inputs[1]).type.dtype is NcoreDType.INT8

    @staticmethod
    def _weightless_graph():
        """relu -> add -> avg_pool: all error is *activation* quantization,
        which is exactly what the 16x8 scheme improves."""
        g = Graph("weightless")
        g.add_input("x", TensorType((1, 8, 8, 4)))
        g.add_tensor(Tensor("r", TensorType((1, 8, 8, 4))))
        g.add_tensor(Tensor("s", TensorType((1, 8, 8, 4))))
        g.add_tensor(Tensor("p", TensorType((1, 4, 4, 4))))
        g.add_node(Node("relu", "relu", ["x"], ["r"]))
        g.add_node(Node("residual", "add", ["r", "x"], ["s"]))
        g.add_node(Node("pool", "avg_pool", ["s"], ["p"], {"ksize": (2, 2), "stride": (2, 2)}))
        g.mark_output("p")
        return g

    def test_int16_activations_far_more_precise_than_uint8(self):
        g = self._weightless_graph()
        feeds = {
            "x": np.random.default_rng(3).uniform(-1, 1, (1, 8, 8, 4)).astype(np.float32)
        }
        cal = calibrate(g, [feeds])
        f = list(execute_float(self._weightless_graph(), feeds).values())[0]
        q8 = list(
            execute_quantized(quantize_graph(self._weightless_graph(), cal), feeds).values()
        )[0]
        q16 = list(
            execute_quantized(
                quantize_graph(self._weightless_graph(), cal, NcoreDType.INT16), feeds
            ).values()
        )[0]
        # 16-bit codes are 256x finer; demand at least a 30x error drop.
        assert np.abs(q16 - f).max() < np.abs(q8 - f).max() / 30

    def test_int16_no_worse_on_weighted_graph(self):
        # On a weighted graph the 8-bit *weights* bound both paths, so
        # 16x8 should be comparable, not catastrophically saturated (the
        # failure mode of a naive s16 x s16 scheme on a 32-bit acc).
        cal = calibrate(small_cnn(), calibration_batches())
        feeds = calibration_batches(count=1)[0]
        f = list(execute_float(small_cnn(), feeds).values())[0]
        q8 = list(execute_quantized(quantize_graph(small_cnn(), cal), feeds).values())[0]
        q16 = list(
            execute_quantized(
                quantize_graph(small_cnn(), cal, NcoreDType.INT16), feeds
            ).values()
        )[0]
        assert np.abs(q16 - f).max() < 2 * np.abs(q8 - f).max()

    def test_int16_costs_more_on_ncore(self):
        # Section IV-D.4: int16 NPU ops take four clocks (the conv body
        # reaches the full 4x; whole small graphs are diluted by
        # row-streaming ops).
        from repro.nkl.schedule import conv2d_schedule
        from repro.runtime import compile_model

        conv8 = conv2d_schedule(64, 64, 8, 8, 3, 3, NcoreDType.INT8)
        conv16 = conv2d_schedule(64, 64, 8, 8, 3, 3, NcoreDType.INT16)
        assert conv16.cycles / conv8.cycles == pytest.approx(4.0, abs=0.3)
        g8 = quantize_graph(small_cnn(), calibrate(small_cnn(), calibration_batches()))
        g16 = quantize_graph(
            small_cnn(), calibrate(small_cnn(), calibration_batches()), NcoreDType.INT16
        )
        c8 = compile_model(g8, optimize=False, name="int8").ncore_cycles()
        c16 = compile_model(g16, optimize=False, name="int16").ncore_cycles()
        assert c16 > 2.0 * c8
