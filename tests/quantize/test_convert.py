"""Tests for the quantized-model converter (float -> uint8, float -> bf16)."""

import numpy as np
import pytest

from repro.dtypes import NcoreDType
from repro.graph import Graph, Node, Tensor, TensorType, execute_float
from repro.quantize import calibrate, convert_to_bf16, quantize_graph
from repro.runtime import execute_quantized


def small_cnn(seed=11):
    """conv(+bias,relu) -> maxpool -> fc: a realistic quantizable chain."""
    rng = np.random.default_rng(seed)
    g = Graph("smallcnn")
    g.add_input("x", TensorType((1, 8, 8, 3)))
    g.add_constant("w1", (rng.normal(size=(3, 3, 3, 8)) * 0.2).astype(np.float32))
    g.add_constant("b1", (rng.normal(size=8) * 0.1).astype(np.float32))
    g.add_constant("w2", (rng.normal(size=(4 * 4 * 8, 10)) * 0.1).astype(np.float32))
    g.add_tensor(Tensor("c1", TensorType((1, 8, 8, 8))))
    g.add_tensor(Tensor("p1", TensorType((1, 4, 4, 8))))
    g.add_tensor(Tensor("f1", TensorType((1, 128))))
    g.add_tensor(Tensor("logits", TensorType((1, 10))))
    g.add_node(
        Node(
            "conv1", "conv2d", ["x", "w1", "b1"], ["c1"],
            {"padding": ((1, 1), (1, 1)), "activation": "relu"},
        )
    )
    g.add_node(Node("pool", "max_pool", ["c1"], ["p1"], {"ksize": (2, 2), "stride": (2, 2)}))
    g.add_node(Node("flat", "reshape", ["p1"], ["f1"], {"shape": (1, 128)}))
    g.add_node(Node("fc", "fully_connected", ["f1", "w2"], ["logits"]))
    g.mark_output("logits")
    return g


def calibration_batches(count=4, seed=5):
    rng = np.random.default_rng(seed)
    return [
        {"x": rng.uniform(-1, 1, size=(1, 8, 8, 3)).astype(np.float32)}
        for _ in range(count)
    ]


class TestQuantizeGraph:
    def test_structure(self):
        g = small_cnn()
        qg = quantize_graph(g, calibrate(g, calibration_batches()))
        qg.validate()
        # A quantize node at the input boundary, dequantize at the output
        # (the reshape runs in float on x86 and forces a boundary too).
        assert qg.find_nodes("quantize")
        assert qg.find_nodes("dequantize")
        conv = qg.node("conv1")
        assert qg.tensor(conv.outputs[0]).type.dtype is NcoreDType.UINT8
        assert qg.tensor(conv.inputs[1]).type.dtype is NcoreDType.UINT8
        assert qg.tensor(conv.inputs[2]).type.dtype == "int32"  # bias

    def test_pool_preserves_input_qparams(self):
        g = small_cnn()
        qg = quantize_graph(g, calibrate(g, calibration_batches()))
        pool = qg.node("pool")
        assert qg.tensor(pool.outputs[0]).quant == qg.tensor(pool.inputs[0]).quant

    def test_numerical_fidelity(self):
        # The quantized graph must track the float graph closely — the
        # paper's premise that 8-bit PTQ gives "small reductions in
        # accuracy".
        g = small_cnn()
        cal = calibrate(g, calibration_batches())
        qg = quantize_graph(g, cal)
        feeds = calibration_batches(count=1, seed=99)[0]
        float_out = list(execute_float(g, feeds).values())[0]
        quant_out = list(execute_quantized(qg, feeds).values())[0]
        scale = np.abs(float_out).max()
        assert np.abs(quant_out - float_out).max() < 0.1 * scale

    def test_argmax_agreement(self):
        # Classification decisions should almost always agree.
        g = small_cnn()
        cal = calibrate(g, calibration_batches())
        qg = quantize_graph(g, cal)
        agree = 0
        for i in range(10):
            feeds = calibration_batches(count=1, seed=1000 + i)[0]
            f = list(execute_float(g, feeds).values())[0]
            q = list(execute_quantized(qg, feeds).values())[0]
            agree += int(np.argmax(f) == np.argmax(q))
        assert agree >= 9

    def test_rejects_float_target(self):
        g = small_cnn()
        with pytest.raises(ValueError):
            quantize_graph(g, calibrate(g, calibration_batches()), NcoreDType.BF16)

    def test_residual_add_quantizes(self):
        rng = np.random.default_rng(3)
        g = Graph()
        g.add_input("x", TensorType((1, 4, 4, 8)))
        g.add_constant("w", (rng.normal(size=(1, 1, 8, 8)) * 0.3).astype(np.float32))
        g.add_tensor(Tensor("c", TensorType((1, 4, 4, 8))))
        g.add_tensor(Tensor("s", TensorType((1, 4, 4, 8))))
        g.add_node(Node("conv", "conv2d", ["x", "w"], ["c"]))
        g.add_node(Node("res", "add", ["c", "x"], ["s"], {"activation": "relu"}))
        g.mark_output("s")
        feeds = {"x": rng.uniform(-1, 1, size=(1, 4, 4, 8)).astype(np.float32)}
        cal = calibrate(g, [feeds])
        qg = quantize_graph(g, cal)
        f = list(execute_float(g, feeds).values())[0]
        q = list(execute_quantized(qg, feeds).values())[0]
        assert np.abs(q - f).max() < 0.1 * max(1e-3, np.abs(f).max())


class TestBf16Conversion:
    def test_constants_rounded(self):
        g = small_cnn()
        bg = convert_to_bf16(g)
        w = bg.tensor("w1")
        assert w.type.dtype is NcoreDType.BF16
        # Every stored value is exactly representable in bfloat16.
        from repro.dtypes import to_bfloat16

        np.testing.assert_array_equal(w.data, to_bfloat16(w.data))

    def test_activations_retyped(self):
        bg = convert_to_bf16(small_cnn())
        assert bg.tensor("c1").type.dtype is NcoreDType.BF16

    def test_bf16_outputs_close_to_float(self):
        g = small_cnn()
        bg = convert_to_bf16(small_cnn())
        feeds = calibration_batches(count=1)[0]
        f = list(execute_float(g, feeds).values())[0]
        b = list(execute_quantized(bg, feeds).values())[0]
        assert np.abs(b - f).max() < 0.05 * max(1e-3, np.abs(f).max())
