"""Tests for calibration range observation."""

import numpy as np
import pytest

from repro.graph import Graph, Node, Tensor, TensorType
from repro.quantize import calibrate


def relu_graph():
    g = Graph()
    g.add_input("x", TensorType((1, 8)))
    g.add_tensor(Tensor("y", TensorType((1, 8))))
    g.add_node(Node("r", "relu", ["x"], ["y"]))
    g.mark_output("y")
    return g


class TestCalibrate:
    def test_requires_batches(self):
        with pytest.raises(ValueError):
            calibrate(relu_graph(), [])

    def test_observes_inputs_and_activations(self):
        g = relu_graph()
        batch = {"x": np.array([[-2.0, 0.0, 3.0, 1, 1, 1, 1, 1]], np.float32)}
        result = calibrate(g, [batch])
        assert result.range_of("x") == (-2.0, 3.0)
        assert result.range_of("y") == (0.0, 3.0)  # post-relu range

    def test_ranges_merge_across_batches(self):
        g = relu_graph()
        batches = [
            {"x": np.full((1, 8), -5.0, np.float32)},
            {"x": np.full((1, 8), 9.0, np.float32)},
        ]
        result = calibrate(g, batches)
        assert result.range_of("x") == (-5.0, 9.0)

    def test_unobserved_tensor_raises(self):
        result = calibrate(relu_graph(), [{"x": np.zeros((1, 8), np.float32)}])
        with pytest.raises(KeyError):
            result.range_of("nope")
