"""Table V reproduction at the model level: MACs, weights, MACs/weight."""

import pytest

from repro.models import PAPER_CHARACTERISTICS


class TestTableV:
    """Each model's analytic counts must match the paper's Table V."""

    @pytest.mark.parametrize("key", ["mobilenet_v1", "resnet50_v15", "ssd_mobilenet_v1"])
    def test_macs_within_5_percent(self, key):
        info = PAPER_CHARACTERISTICS[key]
        graph = info.build()
        assert graph.count_macs() == pytest.approx(info.paper_macs, rel=0.05)

    @pytest.mark.parametrize("key", ["mobilenet_v1", "resnet50_v15", "ssd_mobilenet_v1"])
    def test_weights_within_5_percent(self, key):
        info = PAPER_CHARACTERISTICS[key]
        graph = info.build()
        assert graph.count_weights() == pytest.approx(info.paper_weights, rel=0.05)

    def test_gnmt_weights_match(self):
        info = PAPER_CHARACTERISTICS["gnmt"]
        graph = info.build()
        assert graph.count_weights() == pytest.approx(info.paper_weights, rel=0.05)

    def test_gnmt_macs_single_greedy_pass(self):
        # The paper's 3.9 B includes beam-search re-execution; one greedy
        # pass performs ~2.5 B (see the module docstring).
        graph = PAPER_CHARACTERISTICS["gnmt"].build()
        assert 2.0e9 < graph.count_macs() < 3.9e9

    def test_gnmt_is_the_memory_bound_model(self):
        # Table V's punchline: GNMT has by far the lowest MACs/weight,
        # which is why it is memory-bound and ran Offline-only.
        ratios = {
            key: info.build().count_macs() / info.build().count_weights()
            for key, info in PAPER_CHARACTERISTICS.items()
        }
        assert min(ratios, key=ratios.get) == "gnmt"
        assert ratios["gnmt"] < 40
        for key in ("mobilenet_v1", "resnet50_v15", "ssd_mobilenet_v1"):
            assert ratios[key] > 100


class TestModelStructure:
    def test_mobilenet_has_13_separable_blocks(self):
        g = PAPER_CHARACTERISTICS["mobilenet_v1"].build()
        assert len(g.find_nodes("depthwise_conv2d")) == 13
        assert len(g.find_nodes("conv2d")) == 14  # stem + 13 pointwise

    def test_resnet_has_explicit_pads(self):
        # The MLPerf reference graph has four explicit pad operations
        # (section V-B): the stem plus the three stride-2 stage entries.
        g = PAPER_CHARACTERISTICS["resnet50_v15"].build()
        assert len(g.find_nodes("pad")) == 4

    def test_resnet_bottleneck_count(self):
        g = PAPER_CHARACTERISTICS["resnet50_v15"].build()
        assert len(g.find_nodes("add")) == 3 + 4 + 6 + 3

    def test_ssd_anchor_count(self):
        from repro.models.ssd import TOTAL_ANCHORS

        assert TOTAL_ANCHORS == 1917
        g = PAPER_CHARACTERISTICS["ssd_mobilenet_v1"].build()
        nms = g.find_nodes("nms")[0]
        assert g.tensor(nms.inputs[0]).shape == (1917, 4)

    def test_ssd_rejects_batching(self):
        # Section VI-C: the NMS postprocess does not support batching.
        with pytest.raises(ValueError, match="batch"):
            PAPER_CHARACTERISTICS["ssd_mobilenet_v1"].build(batch=2)

    def test_gnmt_unrolled_length(self):
        g = PAPER_CHARACTERISTICS["gnmt"].build()
        # 4 encoder layers x 25 sequence-projected steps, 4 decoder layers
        # x 25 cells.
        assert len(g.find_nodes("lstm_step")) == 4 * 25
        assert len(g.find_nodes("lstm_cell")) == 4 * 25
        assert len(g.find_nodes("attention")) == 25

    def test_models_validate_and_infer_shapes(self):
        from repro.graph import infer_shapes

        for info in PAPER_CHARACTERISTICS.values():
            g = info.build()
            g.validate()
            infer_shapes(g)


class TestBatchedBuilds:
    def test_mobilenet_batch_shapes(self):
        from repro.models import build_mobilenet_v1

        g = build_mobilenet_v1(batch=4, resolution=64)
        assert g.tensor(g.inputs[0]).shape[0] == 4
        assert g.tensor(g.outputs[0]).shape[0] == 4

    def test_batch_scales_macs_linearly(self):
        from repro.models import build_resnet50_v15

        one = build_resnet50_v15(batch=1).count_macs()
        four = build_resnet50_v15(batch=4).count_macs()
        assert four == 4 * one
