"""Functional execution of the model zoo (float, quantized, bf16)."""

import numpy as np
import pytest

from repro.graph import execute_float
from repro.graph.passes import default_pipeline
from repro.models import (
    PAPER_CHARACTERISTICS,
    build_gnmt,
    build_mobilenet_v1,
    build_ssd_mobilenet_v1,
)
from repro.quantize import convert_to_bf16


class TestMobileNetExecution:
    def test_small_resolution_forward_pass(self):
        # A reduced-resolution MobileNet exercises every layer cheaply.
        g = build_mobilenet_v1(resolution=64)
        info = PAPER_CHARACTERISTICS["mobilenet_v1"]
        out = execute_float(g, info.sample_input(g))
        probs = list(out.values())[0]
        assert probs.shape == (1, 1001)
        assert probs.sum() == pytest.approx(1.0, abs=1e-4)

    def test_optimization_pipeline_folds_all_batchnorms(self):
        g = build_mobilenet_v1(resolution=64)
        assert g.find_nodes("batch_norm")
        default_pipeline().run(g)
        assert g.find_nodes("batch_norm") == []

    def test_optimized_graph_numerically_equivalent(self):
        g1 = build_mobilenet_v1(resolution=64)
        g2 = build_mobilenet_v1(resolution=64)
        info = PAPER_CHARACTERISTICS["mobilenet_v1"]
        feeds = info.sample_input(g1)
        before = list(execute_float(g1, feeds).values())[0]
        default_pipeline().run(g2)
        after = list(execute_float(g2, feeds).values())[0]
        np.testing.assert_allclose(after, before, rtol=1e-3, atol=1e-5)


class TestSsdExecution:
    def test_detection_outputs(self):
        g = build_ssd_mobilenet_v1()
        info = PAPER_CHARACTERISTICS["ssd_mobilenet_v1"]
        out = execute_float(g, info.sample_input(g))
        assert out["detection_boxes"].shape == (10, 4)
        assert out["detection_scores"].shape == (10,)
        assert out["detection_classes"].shape == (10,)


class TestGnmtExecution:
    def test_tiny_gnmt_forward_pass(self):
        g = build_gnmt(seq_len=4, hidden=32, layers=2, vocab=100)
        feeds = {
            "source_ids": np.array([[1, 2, 3, 4]], np.int32),
            "target_ids": np.array([[0, 1, 2, 3]], np.int32),
        }
        out = execute_float(g, feeds)
        assert out["logits"].shape == (4, 100)

    def test_bf16_conversion_runs(self):
        from repro.runtime import execute_quantized

        g = build_gnmt(seq_len=3, hidden=16, layers=1, vocab=50)
        bg = convert_to_bf16(g)
        feeds = {
            "source_ids": np.array([[1, 2, 3]], np.int32),
            "target_ids": np.array([[0, 1, 2]], np.int32),
        }
        f = execute_float(g, feeds)["logits"]
        b = execute_quantized(bg, feeds)["logits"]
        # bf16 rounding error stays small relative to the logit scale.
        assert np.abs(b - f).max() < 0.05 * max(1e-3, np.abs(f).max())
