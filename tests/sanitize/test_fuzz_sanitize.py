"""The sanitizer over a seeded subset of the differential fuzz corpus.

Reuses the fastpath fuzz generator: random-but-legal programs from the
full fusable vocabulary, run on a sanitized interpreter next to a plain
one.  The sanitizer must never perturb architectural state, and a corpus
with no DMA instructions must produce no race or out-of-bounds findings
(uninitialized-read findings are expected — the generator freely walks
address registers past the staged 16 rows).
"""

import numpy as np
import pytest

from repro.isa import assemble
from repro.sanitize import state_digest

from tests.ncore.test_fastpath_fuzz import _configured_machine, _random_program

SEEDS = range(0, 48, 2)  # 24 programs out of the 200-seed corpus


@pytest.mark.parametrize("seed", SEEDS)
def test_sanitized_run_matches_plain_interpreter(seed):
    source = _random_program(np.random.default_rng(1000 + seed))
    program = assemble(source)

    plain = _configured_machine(seed, fastpath=False)
    sanitized = _configured_machine(seed, fastpath=False)
    sanitizer = sanitized.arm_sanitizer(True)

    plain_run = plain.execute_program(program)
    sanitized_run = sanitized.execute_program(program)

    assert sanitized_run.halted == plain_run.halted, source
    assert sanitized_run.cycles == plain_run.cycles, source
    assert state_digest(plain) == state_digest(sanitized), source

    rules = {d.rule for d in sanitizer.report}
    assert "san.race" not in rules, source
    assert "san.dma-oob" not in rules, source


def test_corpus_exercises_the_shadow_hooks():
    checked = 0
    for seed in SEEDS:
        source = _random_program(np.random.default_rng(1000 + seed))
        machine = _configured_machine(seed, fastpath=False)
        sanitizer = machine.arm_sanitizer(True)
        machine.execute_program(assemble(source))
        checked += sanitizer.stats["reads_checked"] + sanitizer.stats["writes_checked"]
    assert checked > 100
