"""Seeded violations and clean runs for the shadow-SRAM sanitizer.

Each dynamic rule gets a minimal machine program that triggers it, plus
the matching corrected program that must run clean.  The acceptance
scenario — a deliberately reordered DMA schedule — is checked both
statically (``hazard.raw``) and at runtime (``san.race``) from the same
program text and descriptor table.
"""

import pytest

from repro.analyze import analyze_program_hazards
from repro.isa import assemble
from repro.ncore import Ncore
from repro.ncore.dma import DmaDescriptor
from repro.sanitize import (
    AGENT_COMPUTE,
    AGENT_HOST,
    Sanitizer,
    ShadowRam,
    check_determinism,
    oracle_compare,
    state_digest,
)

ROW = 4096

# The reordered schedule: an inbound fill of data row 0 that the first
# compute read consumes with no dmawait in between.
REORDERED = "setaddr a0, 0\ndmastart 0\nbypass n0, dram[a0]\nhalt"
ORDERED = "setaddr a0, 0\ndmastart 0\ndmawait 1\nbypass n0, dram[a0]\nhalt"
INBOUND = DmaDescriptor(False, False, 0, 1, 0, False)


def _staged_machine(descriptor=None):
    machine = Ncore(fastpath=False)
    machine.dma_read.configure_window(0)
    machine.dma_write.configure_window(0)
    machine.memory.write(0, bytes(range(256)) * (4 * ROW // 256))
    if descriptor is not None:
        machine.set_dma_descriptor(0, descriptor)
    return machine


def _run(machine, source):
    return machine.execute_program(assemble(source))


def _rules(sanitizer):
    return {d.rule for d in sanitizer.report}


class TestShadowRam:
    def test_mark_write_and_initialized(self):
        shadow = ShadowRam(4, 16, "data")
        assert not shadow.initialized(0, 16)
        shadow.mark_write(0, 16, AGENT_HOST)
        assert shadow.initialized(0, 16)
        assert not shadow.initialized(0, 17)
        assert shadow.last_writer[0, 0] == AGENT_HOST

    def test_mark_read_records_agent(self):
        shadow = ShadowRam(4, 16, "data")
        shadow.mark_read(16, 32, AGENT_COMPUTE)
        assert shadow.last_reader[1, 0] == AGENT_COMPUTE
        assert shadow.last_reader[0, 0] == 0


class TestUninitRead:
    def test_unstaged_read_is_flagged(self):
        machine = Ncore(fastpath=False)
        sanitizer = machine.arm_sanitizer(True)
        _run(machine, "setaddr a0, 5\nbypass n0, dram[a0]\nhalt")
        assert "san.uninit-read" in _rules(sanitizer)
        assert not sanitizer.ok

    def test_host_staged_read_is_clean(self):
        machine = Ncore(fastpath=False)
        sanitizer = machine.arm_sanitizer(True)
        machine.write_data_ram(5 * ROW, b"\x01" * ROW)
        _run(machine, "setaddr a0, 5\nbypass n0, dram[a0]\nhalt")
        assert sanitizer.ok

    def test_outbound_dma_of_unwritten_rows_is_flagged(self):
        machine = _staged_machine(DmaDescriptor(True, False, 3, 1, 0, False))
        sanitizer = machine.arm_sanitizer(True)
        _run(machine, "dmastart 0\ndmawait 2\nhalt")
        assert "san.uninit-read" in _rules(sanitizer)


class TestRace:
    def test_reordered_schedule_races_at_runtime(self):
        machine = _staged_machine(INBOUND)
        sanitizer = machine.arm_sanitizer(True)
        _run(machine, REORDERED)
        assert "san.race" in _rules(sanitizer)

    def test_dmawait_restores_order(self):
        machine = _staged_machine(INBOUND)
        sanitizer = machine.arm_sanitizer(True)
        _run(machine, ORDERED)
        assert sanitizer.ok
        assert sanitizer.stats["dma_transfers"] == 1

    def test_reordered_schedule_is_also_flagged_statically(self):
        # Acceptance: the same defect is caught by both layers.
        report = analyze_program_hazards(assemble(REORDERED), {0: INBOUND})
        assert "hazard.raw" in {d.rule for d in report}
        ordered = analyze_program_hazards(assemble(ORDERED), {0: INBOUND})
        assert ordered.ok

    def test_store_into_inflight_fill_races(self):
        machine = _staged_machine(INBOUND)
        sanitizer = machine.arm_sanitizer(True)
        _run(
            machine,
            "setaddr a0, 0\ndmastart 0\n"
            "bypass n0, zero\nstore a0\n"
            "dmawait 1\nsetaddr a1, 0\nbypass n1, dram[a1]\nhalt",
        )
        assert "san.race" in _rules(sanitizer)


class TestDmaOob:
    def test_descriptor_past_the_last_row(self):
        machine = _staged_machine(DmaDescriptor(False, False, 2047, 4, 0, False))
        sanitizer = machine.arm_sanitizer(True)
        with pytest.raises(IndexError):
            _run(machine, "dmastart 0\nhalt")
        assert "san.dma-oob" in _rules(sanitizer)


class TestZeroCostOff:
    def test_disarmed_run_is_bit_identical(self):
        source = ORDERED
        plain = _staged_machine(INBOUND)
        toggled = _staged_machine(INBOUND)
        toggled.arm_sanitizer(True)
        toggled.arm_sanitizer(False)
        assert toggled.sanitizer is None
        _run(plain, source)
        _run(toggled, source)
        assert state_digest(plain) == state_digest(toggled)

    def test_armed_run_does_not_perturb_state(self):
        source = ORDERED
        plain = _staged_machine(INBOUND)
        armed = _staged_machine(INBOUND)
        armed.arm_sanitizer(True)
        _run(plain, source)
        _run(armed, source)
        assert state_digest(plain) == state_digest(armed)

    def test_arming_forces_interpretation(self):
        machine = Ncore(fastpath=True)
        machine.arm_sanitizer(True)
        assert machine.fastpath is False

    def test_constructor_kwarg_arms(self):
        machine = Ncore(sanitize=True)
        assert isinstance(machine.sanitizer, Sanitizer)


FIG6 = (
    "setaddr a0, 0\nsetaddr a3, 0\nsetaddr a5, 0\n"
    "loop 64 {\n"
    "  bypass n0, dram[a0] | broadcast64 n1, wtram[a3], a5, inc | "
    "mac.uint8 n0, n1\n"
    "}\n"
    "setaddr a6, 64\nrequant.uint8 relu\nstore a6\nhalt"
)


def _stage_rams(machine):
    machine.write_data_ram(0, b"\x07" * ROW)
    machine.write_weight_ram(0, b"\x03" * ROW)


class TestDeterminism:
    def test_deterministic_program_is_clean(self):
        assert check_determinism(FIG6, setup=_stage_rams).ok

    def test_stateful_setup_is_flagged(self):
        calls = {"n": 0}

        def leaky_setup(machine):
            calls["n"] += 1
            machine.write_data_ram(0, bytes([calls["n"]]) * ROW)
            machine.write_weight_ram(0, b"\x03" * ROW)

        report = check_determinism(FIG6, setup=leaky_setup)
        assert {d.rule for d in report} == {"san.divergence"}


class TestOracle:
    def test_fastpath_matches_interpreter(self):
        assert oracle_compare(FIG6, setup=_stage_rams).ok

    def test_tier_dependent_state_is_flagged(self):
        def tier_dependent_setup(machine):
            fill = b"\x01" if machine.fastpath else b"\x02"
            machine.write_data_ram(0, fill * ROW)
            machine.write_weight_ram(0, b"\x03" * ROW)

        report = oracle_compare(FIG6, setup=tier_dependent_setup)
        assert {d.rule for d in report} == {"san.oracle-mismatch"}


class TestCliSanitize:
    def test_run_sanitize_on_zoo_model(self, capsys):
        from repro.cli import main

        assert main(["run", "mobilenet_v1", "--sanitize"]) == 0
        out = capsys.readouterr().out
        assert "sanitizer:" in out
        assert "0 error(s)" in out
