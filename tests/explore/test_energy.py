"""The energy/area model: calibration, scaling direction, breakdowns."""

from repro.explore import area_model, energy_model
from repro.explore.energy import CALIBRATED_NCORE_MM2
from repro.ncore.config import NcoreConfig
from repro.soc.config import SocConfig


class TestArea:
    def test_shipped_point_reproduces_the_calibrated_footprint(self):
        area = area_model(NcoreConfig(), SocConfig())
        assert abs(area.total_mm2 - CALIBRATED_NCORE_MM2) < 1e-9

    def test_breadth_and_height_both_cost_area(self):
        base = area_model(NcoreConfig(), SocConfig()).total_mm2
        wider = area_model(NcoreConfig(slices=32), SocConfig()).total_mm2
        taller = area_model(NcoreConfig(sram_rows=4096), SocConfig()).total_mm2
        assert wider > base and taller > base

    def test_ring_width_scales_the_stop(self):
        narrow = area_model(NcoreConfig(), SocConfig(ring_width_bits=256))
        wide = area_model(NcoreConfig(), SocConfig(ring_width_bits=1024))
        assert wide.ring_mm2 == 4 * narrow.ring_mm2


class TestEnergy:
    def test_components_and_total(self):
        energy = energy_model(
            NcoreConfig(), SocConfig(),
            macs=10**9, cycles=10**6, dram_bytes=10**6,
        )
        parts = [energy.mac_mj, energy.sram_mj, energy.dram_mj,
                 energy.ring_mj, energy.leakage_mj]
        assert all(p > 0 for p in parts)
        assert abs(energy.total_mj - sum(parts)) < 1e-12

    def test_dram_traffic_costs_energy(self):
        quiet = energy_model(NcoreConfig(), SocConfig(),
                             macs=10**9, cycles=10**6, dram_bytes=0)
        busy = energy_model(NcoreConfig(), SocConfig(),
                            macs=10**9, cycles=10**6, dram_bytes=10**8)
        assert busy.total_mj > quiet.total_mj
        assert quiet.dram_mj == 0.0

    def test_power_is_energy_over_latency(self):
        energy = energy_model(NcoreConfig(), SocConfig(),
                              macs=10**9, cycles=10**6, dram_bytes=0)
        seconds = 10**6 / NcoreConfig().clock_hz
        assert abs(energy.power_w(seconds) - energy.total_mj / 1e3 / seconds) < 1e-12
        assert energy.power_w(0.0) == 0.0
