"""The sweep driver: determinism, Pareto logic, infeasible regions."""

import json

import pytest

from repro.explore import (
    DesignPoint,
    PointResult,
    enumerate_grid,
    pareto_frontier,
    run_sweep,
)

GRID = {"slices": (16, 32), "sram_rows": (1024, 2048)}


@pytest.fixture(scope="module")
def sweep():
    return run_sweep(enumerate_grid(GRID), models=("mobilenet_v1",), seed=3)


class TestSweep:
    def test_every_point_is_scored(self, sweep):
        assert len(sweep.points) == 4
        assert all(p.feasible for p in sweep.points)

    def test_distinct_config_points_get_distinct_compile_keys(self, sweep):
        keys = {p.models["mobilenet_v1"].compile_key for p in sweep.points}
        assert len(keys) == 4

    def test_more_slices_means_fewer_cycles(self, sweep):
        by_label = {p.point.label: p for p in sweep.points}
        slow = by_label["s16-r2048-w512-d4-c2.50"].models["mobilenet_v1"]
        fast = by_label["s32-r2048-w512-d4-c2.50"].models["mobilenet_v1"]
        assert fast.cycles < slow.cycles

    def test_json_is_deterministic_per_seed(self, sweep):
        again = run_sweep(enumerate_grid(GRID), models=("mobilenet_v1",), seed=3)
        assert sweep.to_json() == again.to_json()
        payload = json.loads(sweep.to_json())
        assert payload["seed"] == 3
        assert payload["grid_points"] == 4
        assert set(payload["pareto"]) == {p.point.label for p in sweep.frontier}

    def test_csv_has_one_row_per_point(self, sweep):
        lines = sweep.to_csv().strip().splitlines()
        assert len(lines) == 1 + 4
        assert lines[0].startswith("label,slices,sram_rows")

    def test_render_marks_the_frontier(self, sweep):
        text = sweep.render()
        assert "Pareto-optimal" in text
        for point in sweep.frontier:
            assert "*" + point.point.label in text

    def test_infeasible_points_are_results_not_errors(self):
        result = run_sweep(
            [DesignPoint(sram_rows=64), DesignPoint()], models=("mobilenet_v1",)
        )
        tiny, shipped = result.points
        assert not tiny.feasible and "PlanningError" in tiny.reason
        assert shipped.feasible
        assert "infeasible" in result.render()

    def test_execution_check_is_bit_exact(self):
        # A non-default point through the full runtime (verify + replay
        # tiers) against the reference executor; raises on any mismatch.
        run_sweep(
            [DesignPoint(slices=32)], models=("mobilenet_v1",),
            seed=11, execute_queries=2,
        )

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            run_sweep([DesignPoint()], models=("alexnet",))


class TestParetoFrontier:
    @staticmethod
    def point(label_slices, ips, watts, mm2):
        return PointResult(
            point=DesignPoint(slices=label_slices),
            feasible=True,
            throughput_ips=ips,
            power_w=watts,
            area_mm2=mm2,
        )

    def test_dominated_points_are_excluded(self):
        good = self.point(16, ips=100.0, watts=5.0, mm2=30.0)
        worse = self.point(8, ips=50.0, watts=6.0, mm2=31.0)
        assert pareto_frontier([good, worse]) == [good]

    def test_tradeoffs_all_survive(self):
        fast = self.point(32, ips=200.0, watts=9.0, mm2=50.0)
        frugal = self.point(8, ips=50.0, watts=2.0, mm2=20.0)
        assert pareto_frontier([fast, frugal]) == [fast, frugal]

    def test_infeasible_points_never_enter(self):
        dead = PointResult(point=DesignPoint(), feasible=False, reason="x")
        assert pareto_frontier([dead]) == []
