"""Design points, grid parsing and enumeration."""

import pytest

from repro.explore import DEFAULT_GRID, DesignPoint, enumerate_grid, parse_grid
from repro.ncore.config import NcoreConfig
from repro.soc.config import SocConfig


class TestDesignPoint:
    def test_default_point_is_the_shipped_cha(self):
        point = DesignPoint()
        assert point.ncore_config() == NcoreConfig()
        assert point.soc_config() == SocConfig()
        assert point.label == "s16-r2048-w512-d4-c2.50"

    def test_configs_carry_the_knobs(self):
        point = DesignPoint(slices=8, sram_rows=1024, ring_width_bits=256,
                            ddr_channels=2, clock_ghz=3.0)
        ncore = point.ncore_config()
        soc = point.soc_config()
        assert ncore.slices == 8 and ncore.sram_rows == 1024
        assert ncore.clock_hz == soc.clock_hz == 3.0e9
        assert soc.ring_width_bits == 256 and soc.ddr_channels == 2

    def test_invalid_knobs_raise_at_construction(self):
        with pytest.raises(ValueError):
            DesignPoint(slices=0)
        with pytest.raises(ValueError):
            DesignPoint(clock_ghz=-1.0)


class TestGrid:
    def test_parse_grid(self):
        axes = parse_grid("slices=8,16,32 clock_ghz=2.0,2.5")
        assert axes == {"slices": (8.0, 16.0, 32.0), "clock_ghz": (2.0, 2.5)}

    def test_parse_rejects_unknown_axis(self):
        with pytest.raises(ValueError, match="unknown sweep axis"):
            parse_grid("lanes=4096")

    def test_parse_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_grid("   ")

    def test_enumeration_is_deterministic_and_complete(self):
        axes = {"slices": (8, 16), "clock_ghz": (2.0, 2.5)}
        points = enumerate_grid(axes)
        assert points == enumerate_grid(axes)
        assert [(p.slices, p.clock_ghz) for p in points] == [
            (8, 2.0), (8, 2.5), (16, 2.0), (16, 2.5)
        ]
        # Unspecified axes keep the shipped defaults.
        assert all(p.sram_rows == NcoreConfig().sram_rows for p in points)

    def test_default_grid_covers_at_least_100_points(self):
        assert len(enumerate_grid(DEFAULT_GRID)) >= 100
