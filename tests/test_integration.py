"""End-to-end integration tests: the full stack on reduced models.

Each test runs build -> optimize -> calibrate -> quantize -> partition ->
lower -> execute, and checks both the numerics and the compilation
artifacts, the way a downstream user exercises the library.
"""

import numpy as np
import pytest

from repro.graph import execute_float
from repro.graph.passes import default_pipeline
from repro.models import PAPER_CHARACTERISTICS, build_mobilenet_v1
from repro.quantize import calibrate, quantize_graph
from repro.runtime import InferenceSession, compile_model


@pytest.fixture(scope="module")
def mobilenet_pipeline():
    """A reduced-resolution MobileNet through the whole toolflow."""
    info = PAPER_CHARACTERISTICS["mobilenet_v1"]
    float_graph = build_mobilenet_v1(resolution=64)
    reference_graph = build_mobilenet_v1(resolution=64)
    batches = [info.sample_input(float_graph, seed=s) for s in (0, 1)]
    default_pipeline().run(float_graph)
    quantized = quantize_graph(float_graph, calibrate(float_graph, batches))
    compiled = compile_model(quantized, optimize=False, name="mobilenet64")
    return reference_graph, compiled, batches


class TestMobileNetPipeline:
    def test_quantized_top1_matches_float(self, mobilenet_pipeline):
        reference_graph, compiled, batches = mobilenet_pipeline
        session = InferenceSession(compiled)
        agreements = 0
        for seed in range(5):
            info = PAPER_CHARACTERISTICS["mobilenet_v1"]
            feeds = info.sample_input(reference_graph, seed=100 + seed)
            float_probs = list(execute_float(reference_graph, feeds).values())[0]
            quant_probs = list(session.run(feeds).outputs.values())[0]
            agreements += int(np.argmax(float_probs) == np.argmax(quant_probs))
        session.close()
        assert agreements >= 4  # top-1 agreement on >= 4/5 random inputs

    def test_most_work_lands_on_ncore(self, mobilenet_pipeline):
        _, compiled, _ = mobilenet_pipeline
        from repro.graph.partitioner import ncore_coverage

        assert ncore_coverage(compiled.graph, compiled.segments) == pytest.approx(1.0)

    def test_weights_pinned_like_the_paper(self, mobilenet_pipeline):
        # "the GCL determines that all the model's weights fit in on-chip
        # SRAM, and promotes the weight buffers to become persistent".
        _, compiled, _ = mobilenet_pipeline
        for index in compiled.ncore_segments:
            assert compiled.loadables[index].memory_plan.weights_pinned

    def test_every_conv_became_a_kernel(self, mobilenet_pipeline):
        _, compiled, _ = mobilenet_pipeline
        kernels = [
            k for i in compiled.ncore_segments for k in compiled.loadables[i].kernels
        ]
        conv_kernels = [k for k in kernels if k.kernel == "conv2d"]
        dw_kernels = [k for k in kernels if k.kernel == "depthwise_conv2d"]
        assert len(conv_kernels) == 14
        assert len(dw_kernels) == 13

    def test_cycle_estimate_scales_with_resolution(self):
        def cycles(resolution):
            info = PAPER_CHARACTERISTICS["mobilenet_v1"]
            g = build_mobilenet_v1(resolution=resolution)
            default_pipeline().run(g)
            qg = quantize_graph(g, calibrate(g, [info.sample_input(g)]))
            return compile_model(qg, optimize=False).ncore_cycles()

        # 2x the resolution ~= 4x the pixels; the cycle count must track
        # it within the tiling slack.  (At tiny resolutions the late
        # high-channel layers dominate and scaling washes out — itself a
        # real property of the W x K mapping.)
        small, large = cycles(128), cycles(224)
        assert 1.8 < large / small < 6.0


class TestSerializationRoundTripThroughStack:
    def test_save_compile_load_run(self, tmp_path, mobilenet_pipeline):
        from repro.graph.frontends import load_graph, save_graph
        from repro.runtime import execute_quantized

        _, compiled, batches = mobilenet_pipeline
        save_graph(compiled.graph, tmp_path / "mobilenet64_q")
        loaded = load_graph(tmp_path / "mobilenet64_q")
        direct = execute_quantized(compiled.graph, batches[0])
        via_disk = execute_quantized(loaded, batches[0])
        for name in direct:
            np.testing.assert_array_equal(direct[name], via_disk[name])


class TestDriverLifecycleWithInference:
    def test_post_then_inference_then_release(self, mobilenet_pipeline):
        # The full bring-up sequence: probe -> POST -> claim -> run ->
        # release -> power down.
        from repro.runtime import NcoreKernelDriver
        from repro.soc import ChaSoc

        _, compiled, batches = mobilenet_pipeline
        soc = ChaSoc()
        driver = NcoreKernelDriver(soc)
        driver.probe()
        assert driver.self_test().passed
        session = InferenceSession(compiled, soc=soc)
        result = session.run(batches[0])
        assert result.timing.total_seconds > 0
        session.close()
        session.driver.power_down()
