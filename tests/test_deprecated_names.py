"""No source module references the removed pre-rename spellings.

PR 3 renamed the machine-level ``RunResult`` to ``MachineRunResult`` and
left a warn-once module alias behind; the alias is now gone.  This test
greps the source tree so a stray reference (or a reintroduced alias)
fails loudly rather than resurrecting the old name.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Modules allowed to say ``RunResult`` because they define or consume the
#: *runtime-level* result type (``repro.runtime.delegate.RunResult``),
#: which was never deprecated.
_RUNTIME_RESULT_FILES = {
    SRC / "runtime" / "delegate.py",
    SRC / "runtime" / "executor.py",
}


def _source_files():
    return sorted(SRC.rglob("*.py"))


def test_no_machine_level_runresult_references():
    pattern = re.compile(r"\bRunResult\b")
    offenders = []
    for path in _source_files():
        if path in _RUNTIME_RESULT_FILES:
            continue
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            if pattern.search(line) and "MachineRunResult" not in line:
                offenders.append(f"{path}:{lineno}: {line.strip()}")
    assert not offenders, (
        "machine-level 'RunResult' spelling resurfaced:\n"
        + "\n".join(offenders)
    )


def test_no_module_getattr_shim_in_machine():
    text = (SRC / "ncore" / "machine.py").read_text()
    assert "__getattr__" not in text
    assert "RunResult =" not in text


def test_machine_module_has_no_alias_attribute():
    import repro.ncore.machine as machine_module

    assert not hasattr(machine_module, "RunResult")
    assert hasattr(machine_module, "MachineRunResult")
