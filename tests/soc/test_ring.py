"""Tests for the CHA ring bus model."""

import itertools

import pytest

from repro.soc import RingBus, RingStop
from repro.soc.ring import RING_ORDER


@pytest.fixture
def ring():
    return RingBus()


class TestBandwidth:
    def test_160_gbps_per_direction(self, ring):
        # Section III: 512 bits/direction at 2.5 GHz = 160 GB/s.
        assert ring.bandwidth_per_direction == pytest.approx(160e9)

    def test_320_gbps_combined(self, ring):
        assert ring.combined_bandwidth == pytest.approx(320e9)


class TestTopology:
    def test_all_agents_have_stops(self):
        # Ring stops for each x86 core, Ncore, I/O, memory controllers,
        # and multi-socket logic (section III).
        assert set(RING_ORDER) == set(RingStop)
        assert len(RING_ORDER) == 12

    def test_hops_are_symmetric(self, ring):
        for a, b in itertools.combinations(RingStop, 2):
            assert ring.hops(a, b) == ring.hops(b, a)

    def test_bidirectional_takes_shorter_way(self, ring):
        # Max distance on a 12-stop bidirectional ring is 6 hops.
        assert max(
            ring.hops(a, b) for a, b in itertools.combinations(RingStop, 2)
        ) == 6

    def test_self_distance_zero(self, ring):
        assert ring.hops(RingStop.NCORE, RingStop.NCORE) == 0

    def test_ncore_adjacent_to_memory(self, ring):
        assert ring.hops(RingStop.NCORE, RingStop.MEMORY) == 1


class TestTransfers:
    def test_one_flit_costs_hops_plus_one(self, ring):
        hops = ring.hops(RingStop.CORE0, RingStop.NCORE)
        assert ring.transfer_cycles(RingStop.CORE0, RingStop.NCORE, 64) == hops + 1

    def test_serialisation_dominates_large_transfers(self, ring):
        cycles = ring.transfer_cycles(RingStop.MEMORY, RingStop.NCORE, 4096)
        assert cycles == 1 + 4096 // 64

    def test_seconds_conversion(self, ring):
        cycles = ring.transfer_cycles(RingStop.CORE0, RingStop.NCORE, 64)
        assert ring.transfer_seconds(RingStop.CORE0, RingStop.NCORE, 64) == pytest.approx(
            cycles / 2.5e9
        )
