"""Tests for multi-socket scale-out."""

import pytest

from repro.soc.multisocket import MultiSocketSystem


class TestMultiSocket:
    def test_single_socket_is_identity(self):
        system = MultiSocketSystem(sockets=1)
        assert system.scaling_factor() == 1.0
        assert system.offline_throughput_ips(1000.0) == 1000.0

    def test_two_sockets_nearly_double_throughput(self):
        system = MultiSocketSystem(sockets=2)
        assert 1.9 < system.scaling_factor() < 2.0

    def test_scaling_is_sublinear(self):
        factors = [MultiSocketSystem(n).scaling_factor() / n for n in (1, 2, 4, 8)]
        assert factors == sorted(factors, reverse=True)

    def test_latency_unchanged_by_sockets(self):
        system = MultiSocketSystem(sockets=4)
        assert system.single_stream_latency_seconds(1e-3) == 1e-3

    def test_core_count(self):
        assert MultiSocketSystem(sockets=2).total_x86_cores() == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiSocketSystem(sockets=0)

    def test_resnet_two_socket_projection(self):
        # Scale-out context: two CHA sockets would roughly double ResNet
        # throughput, closing part of the gap to Xavier.
        from repro.perf.published import PUBLISHED_THROUGHPUT_IPS

        single = PUBLISHED_THROUGHPUT_IPS["Centaur Ncore"]["resnet50_v15"]
        xavier = PUBLISHED_THROUGHPUT_IPS["NVIDIA AGX Xavier"]["resnet50_v15"]
        dual = MultiSocketSystem(2).offline_throughput_ips(single)
        assert dual > xavier  # two sockets overtake the Xavier submission
