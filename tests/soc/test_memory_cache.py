"""Tests for the DRAM controller and the shared L3 cache."""

import pytest

from repro.soc import DramController, L3Cache
from repro.soc.cache import LINE_BYTES


class TestDramController:
    def test_peak_bandwidth_matches_paper(self):
        # Section III: four channels of DDR4-3200 give 102 GB/s peak.
        dram = DramController()
        assert dram.peak_bandwidth == pytest.approx(102.4e9)

    def test_bytes_per_cycle_at_cha_clock(self):
        dram = DramController()
        assert dram.bandwidth_bytes_per_cycle == pytest.approx(102.4e9 / 2.5e9)

    def test_is_a_linear_memory(self):
        dram = DramController(size=1 << 30)
        dram.write(123, b"abc")
        assert dram.read(123, 3) == b"abc"

    def test_stream_seconds(self):
        dram = DramController()
        assert dram.stream_seconds(102.4e9, efficiency=1.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            dram.stream_seconds(100, efficiency=0.0)


class TestL3Cache:
    def test_capacity_checks(self):
        with pytest.raises(ValueError):
            L3Cache(size_bytes=100)

    def test_geometry(self):
        l3 = L3Cache()
        # 16 MB, 16 ways, 64 B lines -> 16384 sets.
        assert l3.num_sets == 16 * 1024 * 1024 // (16 * 64)

    def test_miss_then_hit(self):
        l3 = L3Cache()
        assert l3.access(0x1000) is False
        assert l3.access(0x1000) is True
        assert l3.hits == 1
        assert l3.misses == 1

    def test_lru_eviction(self):
        l3 = L3Cache(size_bytes=2 * 64, ways=2)  # 1 set, 2 ways
        l3.access(0 * 64)
        l3.access(1 * 64)
        l3.access(0 * 64)      # touch line 0: line 1 is now LRU
        l3.access(2 * 64)      # evicts line 1
        assert l3.access(0 * 64) is True
        assert l3.access(1 * 64) is False

    def test_hit_rate(self):
        l3 = L3Cache()
        l3.access(0)
        l3.access(0)
        l3.access(64)
        assert l3.hit_rate == pytest.approx(1 / 3)


class TestCoherentReadPath:
    """Section IV-A: Ncore DMA reads through L3 are coherent."""

    def test_dirty_line_overlays_dram_payload(self):
        l3 = L3Cache()
        dram_payload = b"\x00" * 128
        l3.write_line(64, b"\xAA" * LINE_BYTES)  # CPU store still in L3
        out = l3.coherent_read(0, 128, dram_payload)
        assert out[:64] == b"\x00" * 64
        assert out[64:] == b"\xAA" * 64

    def test_partial_line_overlay(self):
        l3 = L3Cache()
        l3.write_line(0, bytes(range(64)))
        out = l3.coherent_read(16, 8, b"\xFF" * 8)
        assert out == bytes(range(16, 24))

    def test_clean_miss_returns_dram_data(self):
        l3 = L3Cache()
        payload = b"\x12" * 64
        assert l3.coherent_read(0, 64, payload) == payload
        assert l3.misses == 1

    def test_read_allocates(self):
        l3 = L3Cache()
        l3.coherent_read(0, 64, b"\x00" * 64)
        l3.coherent_read(0, 64, b"\x00" * 64)
        assert l3.hits == 1

    def test_eviction_writes_back_to_dram(self):
        dram = DramController(size=1 << 20)
        l3 = L3Cache(size_bytes=2 * 64, ways=2, memory=dram)
        l3.write_line(0, b"\x55" * 64)
        l3.access(1 * 64)
        l3.access(2 * 64)  # evicts the dirty line 0
        assert l3.writebacks == 1
        assert dram.read(0, 64) == b"\x55" * 64
