"""Tests for the assembled CHA SoC."""

import pytest

from repro.soc import ChaSoc
from repro.soc.cha import NUM_CORES


@pytest.fixture(scope="module")
def soc():
    return ChaSoc()


class TestAssembly:
    def test_eight_cores(self, soc):
        assert len(soc.cores) == NUM_CORES == 8

    def test_ncore_shares_system_memory(self, soc):
        # Ncore's DMA engines and the DRAM controller are the same store.
        assert soc.ncore.memory is soc.dram

    def test_ncore_dma_read_reaches_l3(self, soc):
        assert soc.ncore.dma_read.l3 is soc.l3

    def test_ncore_area_fraction_is_17_percent(self, soc):
        # Section IV-B: 34.4 mm2 of 200 mm2.
        assert soc.ncore_area_fraction == pytest.approx(0.17, abs=0.003)

    def test_single_frequency_domain(self, soc):
        # "All CHA logic runs in a single frequency domain" (section IV-A).
        assert soc.ring.clock_hz == soc.ncore.config.clock_hz == soc.cores[0].clock_hz


class TestPciEnumeration:
    def test_ncore_enumerates_as_coprocessor(self, soc):
        functions = soc.enumerate_pci()
        assert len(functions) == 1
        assert functions[0].class_code >> 8 == 0x0B  # processor class

    def test_bars_assigned_after_enumeration(self, soc):
        soc.enumerate_pci()
        assert all(bar.address is not None for bar in soc.ncore_pci.bars)


class TestDataPaths:
    def test_ncore_dram_bandwidth_limited_by_dram(self, soc):
        # Ring direction gives 160 GB/s but DRAM peaks at 102 GB/s.
        assert soc.ncore_to_dram_bandwidth() == pytest.approx(102.4e9)

    def test_core_to_ncore_latency_is_sub_microsecond(self, soc):
        assert soc.core_to_ncore_seconds(64) < 1e-6

    def test_full_system_dma_compute_roundtrip(self):
        # End-to-end: x86 stages weights in DRAM, Ncore DMAs them in,
        # computes, DMAs results out — the normal throughput flow
        # (section IV-A).
        import numpy as np

        from repro.isa import assemble
        from repro.ncore import DmaDescriptor

        soc = ChaSoc()
        ncore = soc.ncore
        ncore.dma_read.configure_window(0)
        ncore.dma_write.configure_window(0)
        soc.dram.write(0, bytes(np.full(4096, 3, np.uint8)))
        ncore.write_data_ram(0, bytes(np.full(4096, 7, np.uint8)))
        ncore.set_dma_descriptor(
            0, DmaDescriptor(False, True, ram_row=0, rows=1, dram_addr=0)
        )
        ncore.set_dma_descriptor(
            1, DmaDescriptor(True, False, ram_row=16, rows=1, dram_addr=65536)
        )
        program = assemble(
            """
            dmastart 0
            dmawait 1
            mac dram[a0], wtram[a1]
            setaddr a6, 16
            requant.uint8
            store a6
            dmastart 1
            dmawait 2
            halt
            """
        )
        result = ncore.execute_program(program)
        assert result.halted
        out = np.frombuffer(soc.dram.read(65536, 4096), dtype=np.uint8)
        assert (out == 21).all()

    def test_coherent_l3_dma_read_sees_cpu_stores(self):
        # A CPU store sitting dirty in L3 must be visible to an Ncore DMA
        # read through the L3 (section IV-A), and invisible to a direct
        # DRAM read.
        import numpy as np

        from repro.isa import assemble
        from repro.ncore import DmaDescriptor

        soc = ChaSoc()
        ncore = soc.ncore
        ncore.dma_read.configure_window(0)
        soc.dram.write(0, b"\x01" * 4096)
        soc.l3.write_line(0, b"\x99" * 64)  # CPU store, not yet in DRAM
        ncore.set_dma_descriptor(
            0, DmaDescriptor(False, False, ram_row=0, rows=1, dram_addr=0, through_l3=True)
        )
        ncore.set_dma_descriptor(
            1, DmaDescriptor(False, False, ram_row=1, rows=1, dram_addr=0)
        )
        ncore.execute_program(assemble("dmastart 0\ndmastart 1\ndmawait 1\nhalt"))
        through_l3 = np.frombuffer(ncore.read_data_ram(0, 4096), np.uint8)
        direct = np.frombuffer(ncore.read_data_ram(4096, 4096), np.uint8)
        assert (through_l3[:64] == 0x99).all()
        assert (through_l3[64:] == 0x01).all()
        assert (direct == 0x01).all()
