"""Tests for the CNS core model and the Table III comparison data."""

import pytest

from repro.dtypes import NcoreDType
from repro.soc import CNS, HASWELL, SKYLAKE_SERVER, X86Core


class TestTableIII:
    """The microarchitecture comparison facts from Table III."""

    def test_cns_vs_haswell(self):
        # "Compared against Haswell, CNS has higher L2 cache associativity,
        # larger store buffer, larger scheduler, and smaller per-core L3."
        assert CNS.l2_ways > HASWELL.l2_ways
        assert CNS.store_buffer > HASWELL.store_buffer
        assert CNS.scheduler_size > HASWELL.scheduler_size
        assert CNS.l3_per_core_mb == HASWELL.l3_per_core_mb  # both 2MB shared

    def test_cns_vs_skylake_server(self):
        # "Compared against Skylake Server, CNS has a larger per-core L3,
        # but smaller L2, store buffer, reorder buffer, and scheduler."
        assert CNS.l3_per_core_mb > SKYLAKE_SERVER.l3_per_core_mb
        assert CNS.l2_kb < SKYLAKE_SERVER.l2_kb
        assert CNS.store_buffer < SKYLAKE_SERVER.store_buffer
        assert CNS.rob_size < SKYLAKE_SERVER.rob_size
        assert CNS.scheduler_size < SKYLAKE_SERVER.scheduler_size

    def test_l1_caches_identical(self):
        for spec in (CNS, HASWELL, SKYLAKE_SERVER):
            assert spec.l1i_kb == 32
            assert spec.l1d_kb == 32


class TestX86CoreModel:
    def test_peak_throughput_matches_table2(self):
        # Table II: 1x CNS at 2.5 GHz peaks at 106 GOPS (8b), 80 GOPS (bf16).
        core = X86Core()
        assert core.peak_ops(NcoreDType.INT8) == pytest.approx(106e9)
        assert core.peak_ops(NcoreDType.BF16) == pytest.approx(80e9)
        assert core.peak_ops(None) == pytest.approx(80e9)  # FP32

    def test_peak_scales_with_clock(self):
        slow = X86Core(clock_hz=1.25e9)
        assert slow.peak_ops(NcoreDType.INT8) == pytest.approx(53e9)

    def test_compute_bound_task(self):
        core = X86Core(efficiency=0.5)
        seconds = core.task_seconds(ops=40e9, dtype=NcoreDType.BF16)
        assert seconds == pytest.approx(1.0)

    def test_memory_bound_task(self):
        core = X86Core(memory_bandwidth=20e9)
        assert core.task_seconds(bytes_moved=20e9) == pytest.approx(1.0)

    def test_fixed_overhead(self):
        core = X86Core()
        assert core.task_seconds(fixed_seconds=0.5) == pytest.approx(0.5)

    def test_run_task_accumulates(self):
        core = X86Core()
        core.run_task(fixed_seconds=0.1)
        core.run_task(fixed_seconds=0.2)
        assert core.busy_seconds == pytest.approx(0.3)


class TestNcoreSpeedupContext:
    def test_ncore_is_23x_a_vnni_xeon_equivalent(self):
        # Section VI-B: Ncore's ResNet throughput equals ~23 VNNI Xeon
        # cores (53.3 IPS/core for 2x CLX 9282 vs Ncore's 1218 IPS).
        assert 1218.48 / (5965.62 / 112) == pytest.approx(22.9, abs=0.2)
