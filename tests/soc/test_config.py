"""SocConfig: the shipped CHA numbers and the from_config plumbing."""

import pytest

from repro.soc import CHA_SOC, SocConfig, ring_order
from repro.soc.cha import ChaSoc
from repro.soc.memory import DramController
from repro.soc.ring import RingBus


class TestShippedPoint:
    def test_ring_bandwidth_is_160_gbps_per_direction(self):
        assert CHA_SOC.ring_bandwidth_per_direction == 160e9

    def test_ddr_bandwidth_is_102_4_gbps(self):
        assert CHA_SOC.ddr_bandwidth == 102.4e9

    def test_dma_rate_is_40_96_bytes_per_cycle(self):
        assert CHA_SOC.dma_bytes_per_cycle == pytest.approx(40.96)

    def test_twelve_ring_stops(self):
        assert CHA_SOC.ring_stops == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            SocConfig(ring_width_bits=100)  # not a multiple of 8
        with pytest.raises(ValueError):
            SocConfig(ddr_channels=0)
        with pytest.raises(ValueError):
            SocConfig(x86_cores=0)
        with pytest.raises(ValueError):
            SocConfig(cross_socket_efficiency=0.0)


class TestFromConfig:
    def test_ring_bus_follows_the_config(self):
        ring = RingBus.from_config(SocConfig(ring_width_bits=256, x86_cores=4))
        assert ring.width_bits == 256
        assert len(ring.order) == 4 + 4
        assert ring.bandwidth_per_direction == 32 * 2.5e9

    def test_default_ring_order_matches_the_cha_layout(self):
        from repro.soc.ring import RING_ORDER

        assert ring_order() == tuple(stop.value for stop in RING_ORDER)
        with pytest.raises(ValueError):
            ring_order(0)

    def test_dram_controller_follows_the_config(self):
        config = SocConfig(ddr_channels=8, ddr_transfer_rate=2400e6)
        dram = DramController.from_config(config)
        assert dram.peak_bandwidth == 8 * 2400e6 * 8

    def test_cha_soc_threads_one_config_through(self):
        config = SocConfig(ring_width_bits=1024, ddr_channels=2, x86_cores=4)
        soc = ChaSoc(soc_config=config)
        assert soc.ring.bandwidth_per_direction == 128 * 2.5e9
        assert soc.dram.peak_bandwidth == 2 * 3200e6 * 8
        assert len(soc.cores) == 4
        assert soc.l3.size_bytes == config.l3_bytes

    def test_cha_soc_rejects_contradictory_clocks(self):
        with pytest.raises(ValueError):
            ChaSoc(clock_hz=2.0e9, soc_config=SocConfig(clock_hz=2.5e9))

    def test_default_soc_is_unchanged(self):
        soc = ChaSoc()
        assert soc.ring.bandwidth_per_direction == 160e9
        assert soc.dram.peak_bandwidth == 102.4e9
        assert soc.ncore_to_dram_bandwidth() == pytest.approx(102.4e9)
