"""Tests for the Neural Processing Unit lane arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.dtypes import ACC_MAX, ACC_MIN
from repro.isa import NPUOp, NPUOpcode, Operand, OperandKind
from repro.ncore import npu

ZERO = Operand(OperandKind.ZERO)


def op(opcode, accumulate=True):
    return NPUOp(opcode, ZERO, ZERO, accumulate=accumulate)


def lanes(*values):
    return np.array(values, dtype=np.int32)


class TestIntegerOps:
    def test_mac_accumulates(self):
        acc = lanes(10, 0)
        out = npu.execute_int(op(NPUOpcode.MAC), lanes(2, 3), lanes(4, -5), acc, None)
        np.testing.assert_array_equal(out, [18, -15])

    def test_mac_without_accumulate_replaces(self):
        acc = lanes(100, 100)
        out = npu.execute_int(
            op(NPUOpcode.MAC, accumulate=False), lanes(2, 3), lanes(4, 5), acc, None
        )
        np.testing.assert_array_equal(out, [8, 15])

    def test_add_sub(self):
        acc = lanes(0, 0)
        out = npu.execute_int(op(NPUOpcode.ADD), lanes(5, 5), lanes(3, -3), acc, None)
        np.testing.assert_array_equal(out, [8, 2])
        out = npu.execute_int(op(NPUOpcode.SUB), lanes(5, 5), lanes(3, -3), acc, None)
        np.testing.assert_array_equal(out, [2, 8])

    def test_min_max_fold_against_accumulator(self):
        # The pooling idiom: acc = max(acc, max(data, weight)).
        acc = lanes(10, -10)
        out = npu.execute_int(op(NPUOpcode.MAX), lanes(5, 5), lanes(0, 0), acc, None)
        np.testing.assert_array_equal(out, [10, 5])
        out = npu.execute_int(op(NPUOpcode.MIN), lanes(5, 5), lanes(0, 0), acc, None)
        np.testing.assert_array_equal(out, [0, -10])

    def test_logical_ops_replace(self):
        acc = lanes(0xFF)
        out = npu.execute_int(op(NPUOpcode.AND), lanes(0b1100), lanes(0b1010), acc, None)
        np.testing.assert_array_equal(out, [0b1000])
        out = npu.execute_int(op(NPUOpcode.OR), lanes(0b1100), lanes(0b1010), acc, None)
        np.testing.assert_array_equal(out, [0b1110])
        out = npu.execute_int(op(NPUOpcode.XOR), lanes(0b1100), lanes(0b1010), acc, None)
        np.testing.assert_array_equal(out, [0b0110])

    def test_accumulator_saturates(self):
        # Section IV-D.4: the accumulator is 32-bit *saturating*.
        acc = lanes(ACC_MAX - 5)
        out = npu.execute_int(op(NPUOpcode.MAC), lanes(100), lanes(100), acc, None)
        assert out[0] == ACC_MAX
        acc = lanes(ACC_MIN + 5)
        out = npu.execute_int(op(NPUOpcode.MAC), lanes(100), lanes(-100), acc, None)
        assert out[0] == ACC_MIN

    def test_predication_masks_update(self):
        # "a 32-bit saturating accumulator, which can be conditionally set
        # via predication registers".
        acc = lanes(1, 2, 3)
        mask = np.array([True, False, True])
        out = npu.execute_int(op(NPUOpcode.MAC), lanes(10, 10, 10), lanes(1, 1, 1), acc, mask)
        np.testing.assert_array_equal(out, [11, 2, 13])

    @given(
        npst.arrays(np.int32, 32, elements=st.integers(-(2**31), 2**31 - 1)),
        npst.arrays(np.int32, 32, elements=st.integers(-256, 255)),
        npst.arrays(np.int32, 32, elements=st.integers(-256, 255)),
    )
    def test_mac_matches_saturating_reference(self, acc, data, weight):
        out = npu.execute_int(op(NPUOpcode.MAC), data, weight, acc, None)
        exact = acc.astype(object) + data.astype(object) * weight.astype(object)
        expected = [min(max(v, ACC_MIN), ACC_MAX) for v in exact]
        np.testing.assert_array_equal(out, expected)


class TestFloatOps:
    def test_float_mac(self):
        acc = np.array([1.0, 0.0], dtype=np.float32)
        out = npu.execute_float(
            op(NPUOpcode.MAC), np.float32([2, 3]), np.float32([4, 5]), acc, None
        )
        np.testing.assert_allclose(out, [9.0, 15.0])

    def test_float_predication(self):
        acc = np.array([1.0, 1.0], dtype=np.float32)
        mask = np.array([False, True])
        out = npu.execute_float(
            op(NPUOpcode.ADD), np.float32([5, 5]), np.float32([0, 0]), acc, mask
        )
        np.testing.assert_allclose(out, [1.0, 6.0])

    def test_logical_op_rejected_on_floats(self):
        from repro.ncore import ExecutionError

        with pytest.raises(ExecutionError):
            npu.execute_float(
                op(NPUOpcode.XOR), np.float32([1]), np.float32([1]), np.float32([0]), None
            )


class TestSlide:
    def test_slide_moves_by_one_slice(self):
        data = np.arange(4096, dtype=np.int32)
        out = npu.slide_from_neighbor(data)
        # Lane 256 now holds what lane 0 held.
        assert out[256] == 0
        assert out[0] == 4096 - 256  # wraparound from the last slice

    def test_sixteen_slides_wrap_fully(self):
        # With 16 slices, 16 slides bring data back home: "wraparound from
        # the last slice back to the first".
        data = np.arange(4096, dtype=np.int32)
        out = data
        for _ in range(16):
            out = npu.slide_from_neighbor(out)
        np.testing.assert_array_equal(out, data)


class TestCompare:
    def test_cmpgt(self):
        out = npu.compare_gt(lanes(1, 5, 3), lanes(2, 2, 3))
        np.testing.assert_array_equal(out, [False, True, False])
