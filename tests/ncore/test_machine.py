"""End-to-end tests of the Ncore machine executing real programs."""

import numpy as np
import pytest

from repro.dtypes import NcoreDType, quantize_multiplier
from repro.isa import Instruction, NPUOp, NPUOpcode, SeqOp, SeqOpcode, assemble
from repro.isa.operands import data_ram, ndu_reg, weight_ram
from repro.ncore import DmaDescriptor, ExecutionError, Ncore

ROW = 4096


@pytest.fixture
def machine():
    return Ncore()


def write_row(machine, ram, row, values):
    payload = np.asarray(values, dtype=np.uint8).tobytes()
    assert len(payload) == ROW
    if ram == "data":
        machine.write_data_ram(row * ROW, payload)
    else:
        machine.write_weight_ram(row * ROW, payload)


def read_row(machine, row):
    return np.frombuffer(machine.read_data_ram(row * ROW, ROW), dtype=np.uint8)


class TestBasicExecution:
    def test_halt_stops(self, machine):
        result = machine.execute_program(assemble("halt"))
        assert result.halted
        assert result.instructions == 1

    def test_setaddr_and_addaddr(self, machine):
        machine.execute_program(assemble("setaddr a3, 100\naddaddr a3, -40\nhalt"))
        assert machine.addr_regs[3] == 60

    def test_cycle_budget_stops_infinite_loop(self, machine):
        # A program that never halts must be stopped by the budget.
        program = assemble("loopn 2000\nnop\nendloop\nhalt")
        result = machine.execute_program(program, max_cycles=100)
        assert not result.halted
        assert result.stop_reason == "cycle_budget"

    def test_loopn_repeats_body(self, machine):
        program = assemble("setaddr a0, 0\nloopn 5\naddaddr a0, 2\nendloop\nhalt")
        machine.execute_program(program)
        assert machine.addr_regs[0] == 10

    def test_nested_loops(self, machine):
        program = assemble(
            "setaddr a0, 0\n"
            "loopn 3\n"
            "loopn 4\n"
            "addaddr a0, 1\n"
            "endloop\n"
            "endloop\n"
            "halt"
        )
        machine.execute_program(program)
        assert machine.addr_regs[0] == 12

    def test_loop_nesting_limit(self, machine):
        source = "loopn 2\n" * 5 + "nop\n" + "endloop\n" * 5 + "halt"
        with pytest.raises(ExecutionError, match="nesting"):
            machine.execute_program(assemble(source))

    def test_endloop_without_begin(self, machine):
        with pytest.raises(ExecutionError):
            machine.execute_program(assemble("endloop\nhalt"))

    def test_repeat_with_seq_op_rejected(self, machine):
        program = [Instruction(seq=SeqOp(SeqOpcode.EVENT, 1), repeat=2)]
        with pytest.raises(ExecutionError):
            machine.execute_program(program)


class TestPointwiseConvolution:
    """The Fig. 7 mapping: W x K parallelised over the 4096 lanes."""

    W, K, C = 64, 64, 8

    def _run(self, machine, inputs, weights):
        # Data row per channel c: input[:, c] tiled across the 64 K-groups.
        for c in range(self.C):
            write_row(machine, "data", c, np.tile(inputs[:, c], self.K))
        # One weight row: weight[k, c] at byte k*64 + c.
        wrow = np.zeros(ROW, dtype=np.uint8)
        for k in range(self.K):
            wrow[k * 64 : k * 64 + self.C] = weights[k]
        write_row(machine, "weight", 0, wrow)
        m, s = quantize_multiplier(1.0)
        machine.set_requant(m, s, 0)
        program = assemble(
            f"""
            setaddr a0, 0      ; data row cursor
            setaddr a3, 0      ; weight row
            setaddr a5, 0      ; broadcast byte index (input channel)
            loop {self.C} {{
              bypass n0, dram[a0++]
              broadcast64 n1, wtram[a3], a5, inc
              mac n0, n1
            }}
            setaddr a6, 100
            requant.uint8
            store a6
            halt
            """
        )
        result = machine.execute_program(program)
        return result, read_row(machine, 100)

    def test_matches_numpy_convolution(self, machine):
        rng = np.random.default_rng(42)
        inputs = rng.integers(0, 4, size=(self.W, self.C)).astype(np.uint8)
        weights = rng.integers(0, 4, size=(self.K, self.C)).astype(np.uint8)
        result, out = self._run(machine, inputs, weights)
        expected = inputs.astype(np.int32) @ weights.astype(np.int32).T  # (W, K)
        for k in range(self.K):
            np.testing.assert_array_equal(
                out[k * 64 : (k + 1) * 64],
                np.clip(expected[:, k], 0, 255).astype(np.uint8),
            )

    def test_inner_loop_is_one_cycle_per_channel(self, machine):
        # The fused instruction executes one full (bypass + broadcast +
        # 4096-wide MAC) iteration per clock, as the paper claims for Fig. 6.
        rng = np.random.default_rng(1)
        inputs = rng.integers(0, 4, size=(self.W, self.C)).astype(np.uint8)
        weights = rng.integers(0, 4, size=(self.K, self.C)).astype(np.uint8)
        result, _ = self._run(machine, inputs, weights)
        # 3 setaddr + C fused iterations + setaddr + requant + store + halt
        assert result.cycles == 3 + self.C + 1 + 1 + 1 + 1
        assert machine.total_macs == self.C * ROW


class TestFig6RotateLoop:
    """The exact Fig. 6 pattern: MAC dlast while rotating n0 for the next tap."""

    def test_dlast_reads_pre_rotation_value(self, machine):
        data = np.zeros(ROW, dtype=np.uint8)
        data[:256] = np.arange(1, 257) % 251
        write_row(machine, "data", 0, data)
        wrow = np.zeros(ROW, dtype=np.uint8)
        for tap in range(3):  # weight 1 for all three filter taps
            wrow[tap::64] = 1
        write_row(machine, "weight", 0, wrow)
        program = assemble(
            """
            setaddr a0, 0
            setaddr a3, 0
            setaddr a5, 0
            bypass n0, dram[a0]      ; latch the data row (arms dlast)
            loop 3 {
              broadcast64 n1, wtram[a3], a5, inc
              mac.uint8 dlast, n1
              rotl n0, n0, 64
            }
            halt
            """
        )
        machine.execute_program(program)
        # Each iteration MACs the row *before* that iteration's rotation:
        # acc = data + rot64(data) + rot128(data), all with weight 1.
        expected = (
            data.astype(np.int64)
            + np.roll(data, -64).astype(np.int64)
            + np.roll(data, -128).astype(np.int64)
        )
        np.testing.assert_array_equal(machine.acc_int, expected)


class TestSixteenBitAndFloat:
    def test_int16_mac_uses_low_high_rows(self, machine):
        # 16-bit values: low bytes in row 0, high bytes in row 1.
        values = np.full(ROW, 300, dtype=np.int16)  # needs both bytes
        write_row(machine, "data", 0, (values & 0xFF).astype(np.uint8))
        write_row(machine, "data", 1, (values >> 8).astype(np.uint8))
        weights = np.full(ROW, 5, dtype=np.int16)
        write_row(machine, "weight", 0, (weights & 0xFF).astype(np.uint8))
        write_row(machine, "weight", 1, (weights >> 8).astype(np.uint8))
        program = [
            Instruction(
                npu=NPUOp(
                    NPUOpcode.MAC,
                    data_ram(0),
                    weight_ram(1),
                    dtype=NcoreDType.INT16,
                )
            ),
            Instruction(seq=SeqOp(SeqOpcode.HALT)),
        ]
        machine.set_addr_reg(0, 0)
        machine.set_addr_reg(1, 0)
        result = machine.execute_program(program)
        assert machine.acc_int[0] == 1500
        # int16 NPU ops take four clocks (section IV-D.4).
        assert result.cycles == 4 + 1

    def test_bf16_mac_three_cycles(self, machine):
        from repro.dtypes import bf16_to_bits

        vals = np.full(ROW, 1.5, dtype=np.float32)
        bits = bf16_to_bits(vals)
        write_row(machine, "data", 0, (bits & 0xFF).astype(np.uint8))
        write_row(machine, "data", 1, (bits >> 8).astype(np.uint8))
        wbits = bf16_to_bits(np.full(ROW, 2.0, dtype=np.float32))
        write_row(machine, "weight", 0, (wbits & 0xFF).astype(np.uint8))
        write_row(machine, "weight", 1, (wbits >> 8).astype(np.uint8))
        program = [
            Instruction(
                npu=NPUOp(
                    NPUOpcode.MAC, data_ram(0), weight_ram(1), dtype=NcoreDType.BF16
                )
            ),
            Instruction(seq=SeqOp(SeqOpcode.HALT)),
        ]
        result = machine.execute_program(program)
        np.testing.assert_allclose(machine.acc_float, 3.0)
        assert result.cycles == 3 + 1

    def test_16bit_register_operand_rejected(self, machine):
        program = [
            Instruction(
                npu=NPUOp(
                    NPUOpcode.MAC, ndu_reg(0), weight_ram(0), dtype=NcoreDType.INT16
                )
            ),
            Instruction(seq=SeqOp(SeqOpcode.HALT)),
        ]
        with pytest.raises(ExecutionError, match="16-bit"):
            machine.execute_program(program)


class TestZeroOffsetAndPredication:
    def test_uint8_zero_offset(self, machine):
        # Section IV-D.4: u8 -> s9 by subtracting separate zero offsets.
        write_row(machine, "data", 0, np.full(ROW, 10, np.uint8))
        write_row(machine, "weight", 0, np.full(ROW, 3, np.uint8))
        machine.set_zero_offsets(data=8, weight=1)
        program = assemble("mac.uint8 dram[a0], wtram[a1], zoff\nhalt")
        machine.execute_program(program)
        assert machine.acc_int[0] == (10 - 8) * (3 - 1)

    def test_cmpgt_sets_predicate_then_masks_mac(self, machine):
        data = np.zeros(ROW, dtype=np.uint8)
        data[:10] = 100  # lanes 0..9 exceed the threshold
        write_row(machine, "data", 0, data)
        write_row(machine, "weight", 0, np.full(ROW, 50, np.uint8))
        write_row(machine, "weight", 1, np.full(ROW, 1, np.uint8))
        program = assemble(
            "setaddr a1, 0\n"
            "cmpgt dram[a0], wtram[a1++], pred2\n"
            "mac dram[a0], wtram[a1], pred2\n"
            "halt"
        )
        machine.execute_program(program)
        assert machine.acc_int[0] == 100
        assert machine.acc_int[10] == 0  # masked off


class TestDma:
    def test_dma_load_then_compute(self, machine):
        machine.dma_read.configure_window(0)
        payload = bytes(np.full(ROW, 7, np.uint8))
        machine.memory.write(4096, payload)
        machine.set_dma_descriptor(
            0,
            DmaDescriptor(
                write_to_dram=False,
                target_weight_ram=True,
                ram_row=2,
                rows=1,
                dram_addr=4096,
            ),
        )
        write_row(machine, "data", 0, np.full(ROW, 2, np.uint8))
        program = assemble(
            "dmastart 0\n"
            "dmawait 1\n"
            "setaddr a1, 2\n"
            "mac dram[a0], wtram[a1]\n"
            "halt"
        )
        machine.execute_program(program)
        assert machine.acc_int[0] == 14
        assert machine.dma_stall_cycles > 0  # the wait actually stalled

    def test_dma_store_to_dram(self, machine):
        machine.dma_write.configure_window(0)
        write_row(machine, "data", 5, np.full(ROW, 9, np.uint8))
        machine.set_dma_descriptor(
            1,
            DmaDescriptor(
                write_to_dram=True,
                target_weight_ram=False,
                ram_row=5,
                rows=1,
                dram_addr=0,
            ),
        )
        machine.execute_program(assemble("dmastart 1\ndmawait 2\nhalt"))
        assert machine.memory.read(0, ROW) == bytes([9]) * ROW

    def test_unconfigured_descriptor_rejected(self, machine):
        with pytest.raises(ExecutionError):
            machine.execute_program(assemble("dmastart 3\nhalt"))

    def test_unconfigured_window_rejected(self, machine):
        machine.set_dma_descriptor(
            0,
            DmaDescriptor(
                write_to_dram=False,
                target_weight_ram=False,
                ram_row=0,
                rows=1,
                dram_addr=0,
            ),
        )
        with pytest.raises(RuntimeError, match="window"):
            machine.execute_program(assemble("dmastart 0\nhalt"))


class TestDebugFeatures:
    def test_event_logging_without_cycle_cost(self, machine):
        baseline = machine.execute_program(assemble("nop\nnop\nhalt")).cycles
        machine.reset()
        logged = machine.execute_program(assemble("event 1\nevent 2\nhalt")).cycles
        assert logged == baseline  # logging poses no performance penalty
        events = machine.event_log.drain()
        assert [e.tag for e in events] == [1, 2]

    def test_n_step_breakpointing(self, machine):
        machine.n_step = 3
        machine.load_program(assemble("nop\nnop\nnop\nnop\nnop\nnop\nnop\nhalt"))
        result = machine.run()
        assert result.stop_reason == "n_step"
        assert not machine.halted
        result = machine.run()  # resume
        assert result.stop_reason == "n_step"
        machine.n_step = None
        result = machine.run()
        assert result.halted

    def test_breakpoint_pauses_inside_fused_loop(self, machine):
        # Perf-counter wraparound must pause *mid-repeat* — the middle of
        # a Fig. 6-style fused loop — and resume exactly where it stopped.
        write_row(machine, "data", 0, np.full(ROW, 1, np.uint8))
        write_row(machine, "weight", 0, np.full(ROW, 1, np.uint8))
        machine.perf_counters["macs"].configure(
            offset=(1 << 48) - 5 * ROW, break_on_wrap=True
        )
        program = assemble(
            "loop 20 {\n  mac dram[a0], wtram[a1]\n}\nhalt"
        )
        machine.load_program(program)
        result = machine.run()
        assert result.stop_reason == "perf_counter"
        assert machine.acc_int[0] == 5  # exactly five iterations ran
        assert not machine.halted
        machine.perf_counters["macs"].configure(0, break_on_wrap=False)
        result = machine.run()  # resumes the remaining 15 iterations
        assert result.halted
        assert machine.acc_int[0] == 20

    def test_n_step_pauses_inside_fused_loop(self, machine):
        machine.n_step = 7
        program = assemble("loop 30 {\n  mac dram[a0], wtram[a1]\n}\nhalt")
        machine.load_program(program)
        stops = 0
        while not machine.halted and stops < 20:
            result = machine.run()
            if result.stop_reason == "n_step":
                stops += 1
        assert machine.halted
        assert stops >= 3  # several pauses inside the 30-cycle loop
        assert machine.total_issues == 31  # 30 loop issues + the halt

    def test_perf_counter_wraparound_breakpoint(self, machine):
        counter = machine.perf_counters["instructions"]
        counter.configure(offset=(1 << 48) - 3, break_on_wrap=True)
        machine.load_program(assemble("nop\nnop\nnop\nnop\nnop\nhalt"))
        result = machine.run()
        assert result.stop_reason == "perf_counter"
        assert counter.wrapped

    def test_statistics_accumulate(self, machine):
        machine.execute_program(assemble("mac dram[a0], wtram[a1]\nhalt"))
        assert machine.total_macs == ROW
        assert machine.total_instructions == 2


class TestSlaveInterface:
    def test_requant_config_broadcast(self, machine):
        machine.set_requant(123, 4, 5)
        assert machine.requant_multiplier[0] == 123
        assert machine.requant_shift[-1] == 4
        assert machine.requant_offset[100] == 5

    def test_activation_lut_shape_checked(self, machine):
        with pytest.raises(ValueError):
            machine.set_activation_lut(np.zeros(128))

    def test_reset_clears_state(self, machine):
        machine.execute_program(assemble("setaddr a0, 7\nmac dram[a0], wtram[a0]\nhalt"))
        machine.reset()
        assert machine.addr_regs[0] == 0
        assert not machine.acc_int.any()
        assert machine.total_cycles == 0
