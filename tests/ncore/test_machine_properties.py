"""Property-based tests of the Ncore machine.

Random valid programs must execute without crashing, with consistent cycle
accounting; encode -> decode -> execute must behave identically to direct
execution (the binary path changes nothing).
"""

import contextlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from hypothesis import assume

from repro.isa import Instruction, SeqOp, SeqOpcode, decode, encode
from repro.ncore import ExecutionError, Ncore
from tests.isa.test_encoding import _instructions


def _safe_program(draw_instructions):
    """Append a halt and clamp addressing so programs terminate."""
    program = []
    for inst in draw_instructions:
        # Drop control-flow seq ops (loops without matching ends hang) and
        # DMA ops (descriptors unconfigured); keep everything else.
        if inst.seq.opcode in (
            SeqOpcode.HALT,
            SeqOpcode.LOOP_BEGIN,
            SeqOpcode.LOOP_END,
            SeqOpcode.DMA_START,
            SeqOpcode.DMA_WAIT,
            SeqOpcode.BREAK,
        ):
            inst = Instruction(
                ndu_ops=inst.ndu_ops,
                npu=inst.npu,
                out=inst.out,
                seq=SeqOp(SeqOpcode.NOP),
                repeat=min(inst.repeat, 8),
            )
        elif inst.seq.opcode in (SeqOpcode.SET_ADDR, SeqOpcode.ADD_ADDR):
            # Keep addresses inside the RAM rows (16-bit fetches read a+1).
            inst = Instruction(
                ndu_ops=inst.ndu_ops,
                npu=inst.npu,
                out=inst.out,
                seq=SeqOp(inst.seq.opcode, inst.seq.arg, abs(inst.seq.arg2) % 100),
                repeat=min(inst.repeat, 8),
            )
        else:
            # A repeat count cannot combine with an active sequencer op.
            seq = inst.seq if inst.repeat == 1 else SeqOp(SeqOpcode.NOP)
            inst = Instruction(
                ndu_ops=inst.ndu_ops,
                npu=inst.npu,
                out=inst.out,
                seq=seq,
                repeat=min(inst.repeat, 8),
            )
        program.append(inst)
    program.append(Instruction(seq=SeqOp(SeqOpcode.HALT)))
    return program


@st.composite
def _programs(draw):
    count = draw(st.integers(1, 8))
    return _safe_program([draw(_instructions()) for _ in range(count)])


class TestRandomPrograms:
    @settings(max_examples=30, deadline=None)
    @given(_programs(), st.integers(0, 2**32 - 1))
    def test_random_programs_terminate_cleanly(self, program, seed):
        # Any random valid-ISA program either runs to the halt or raises a
        # *defined* ExecutionError (e.g. a 16-bit operand from a register);
        # it never crashes or hangs.
        machine = Ncore()
        rng = np.random.default_rng(seed)
        machine.write_data_ram(0, rng.integers(0, 255, 8 * 4096, dtype=np.uint8).tobytes())
        machine.write_weight_ram(0, rng.integers(0, 255, 8 * 4096, dtype=np.uint8).tobytes())
        try:
            result = machine.execute_program(program, max_cycles=10_000)
        except ExecutionError:
            return
        assert result.halted
        assert result.cycles >= len(program)
        assert machine.total_issues >= len(program)

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.filter_too_much],
    )
    @given(_programs())
    def test_cycle_accounting_matches_static_model(self, program):
        machine = Ncore()
        try:
            result = machine.execute_program(program, max_cycles=100_000)
        except ExecutionError:
            assume(False)  # architecturally-rejected program: skip
        expected = sum(inst.total_cycles() for inst in program)
        assert result.cycles == expected

    @settings(max_examples=20, deadline=None)
    @given(_programs(), st.integers(0, 2**32 - 1))
    def test_binary_round_trip_execution_identical(self, program, seed):
        # Running decode(encode(p)) must produce identical machine state.
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 255, 8 * 4096, dtype=np.uint8).tobytes()
        weights = rng.integers(0, 255, 8 * 4096, dtype=np.uint8).tobytes()

        def run(instructions):
            machine = Ncore()
            machine.write_data_ram(0, data)
            machine.write_weight_ram(0, weights)
            machine.execute_program(instructions, max_cycles=10_000)
            return machine

        try:
            binary = [decode(encode(inst)) for inst in program]
        except Exception:
            return  # some random instructions are legitimately unencodable
        try:
            direct = run(program)
        except ExecutionError:
            with pytest.raises(ExecutionError):
                run(binary)  # the binary path must reject identically
            return
        roundtrip = run(binary)
        np.testing.assert_array_equal(direct.acc_int, roundtrip.acc_int)
        np.testing.assert_array_equal(direct.ndu_regs, roundtrip.ndu_regs)
        assert direct.addr_regs == roundtrip.addr_regs
        assert direct.total_cycles == roundtrip.total_cycles

    @settings(max_examples=15, deadline=None)
    @given(_programs())
    def test_reset_restores_power_on_state(self, program):
        machine = Ncore()
        machine.write_data_ram(0, b"\x05" * 4096)
        # Reset must restore state even after a rejected program.
        with contextlib.suppress(ExecutionError):
            machine.execute_program(program, max_cycles=10_000)
        machine.reset()
        assert machine.total_cycles == 0
        assert not machine.acc_int.any()
        assert not machine.ndu_regs.any()
        assert machine.addr_regs == [0] * 8
