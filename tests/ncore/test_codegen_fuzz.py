"""Differential fuzzing of Tier-3 codegen against the interpreter.

The graph-level counterpart of ``test_fastpath_fuzz``: seeded random —
but legal — quantized graphs built from the quantizable op vocabulary
(conv/depthwise/fc with random strides, paddings, activations and
biases, pools, residual adds, channel concats, spatial means, reshapes),
each compiled at O2 and executed on both the per-node interpreter and
the Tier-3 macro-kernel dispatcher.  Every output must match
byte-for-byte, on the benchmarking dispatch and on the pinned-winner
steady state.
"""

import numpy as np
import pytest

from repro.compiler import compile_graph
from repro.graph import Graph, Node, Tensor, TensorType
from repro.quantize import calibrate, quantize_graph
from repro.runtime import NcoreExecutor, execute_quantized

GRAPHS = 50


def _out_dim(size, k, stride, pad):
    return (size + pad[0] + pad[1] - k) // stride + 1


def random_float_graph(seed: int) -> Graph:
    """One random quantizable CNN-shaped graph."""
    rng = np.random.default_rng(seed)
    g = Graph(f"fuzz{seed}")
    c = int(rng.integers(1, 6))
    h = w = int(rng.integers(5, 10))
    g.add_input("x", TensorType((1, h, w, c)))
    cur, shape = "x", (1, h, w, c)
    counter = 0

    def fresh(new_shape):
        nonlocal counter
        counter += 1
        name = f"t{counter}"
        g.add_tensor(Tensor(name, TensorType(tuple(int(d) for d in new_shape))))
        return name

    def constant(array):
        nonlocal counter
        counter += 1
        name = f"c{counter}"
        g.add_constant(name, array.astype(np.float32))
        return name

    for _ in range(int(rng.integers(2, 6))):
        if len(shape) == 4:
            _, hh, ww, cc = shape
            choices = ["conv", "depthwise", "add"]
            if hh >= 2 and ww >= 2:
                choices += ["pool", "conv_strided"]
            if cc <= 8:
                choices.append("concat")
            if rng.random() < 0.25:
                choices.append("mean")
            op = rng.choice(choices)
            activation = str(rng.choice(["none", "relu", "relu6"]))
            if op in ("conv", "conv_strided"):
                k = int(rng.choice([1, 2, 3]))
                k = min(k, hh, ww)
                stride = 2 if op == "conv_strided" else 1
                pad = ((1, 1), (1, 1)) if (k == 3 and rng.random() < 0.5) \
                    else ((0, 0), (0, 0))
                oh = _out_dim(hh, k, stride, pad[0])
                ow = _out_dim(ww, k, stride, pad[1])
                if oh < 1 or ow < 1:
                    continue
                cout = int(rng.integers(1, 7))
                weights = constant(rng.normal(size=(k, k, cc, cout)) * 0.3)
                inputs = [cur, weights]
                if rng.random() < 0.5:
                    inputs.append(constant(rng.normal(size=cout) * 0.1))
                out = fresh((1, oh, ow, cout))
                g.add_node(Node(
                    f"n{counter}", "conv2d", inputs, [out],
                    {"stride": (stride, stride), "padding": pad,
                     "activation": activation},
                ))
                cur, shape = out, (1, oh, ow, cout)
            elif op == "depthwise":
                k = min(int(rng.choice([2, 3])), hh, ww)
                pad = ((1, 1), (1, 1)) if (k == 3 and rng.random() < 0.5) \
                    else ((0, 0), (0, 0))
                oh = _out_dim(hh, k, 1, pad[0])
                ow = _out_dim(ww, k, 1, pad[1])
                if oh < 1 or ow < 1:
                    continue
                weights = constant(rng.normal(size=(k, k, cc)) * 0.3)
                inputs = [cur, weights]
                if rng.random() < 0.5:
                    inputs.append(constant(rng.normal(size=cc) * 0.1))
                out = fresh((1, oh, ow, cc))
                g.add_node(Node(
                    f"n{counter}", "depthwise_conv2d", inputs, [out],
                    {"stride": (1, 1), "padding": pad,
                     "activation": activation},
                ))
                cur, shape = out, (1, oh, ow, cc)
            elif op == "pool":
                kind = str(rng.choice(["max_pool", "avg_pool"]))
                oh, ow = _out_dim(hh, 2, 2, (0, 0)), _out_dim(ww, 2, 2, (0, 0))
                out = fresh((1, oh, ow, cc))
                g.add_node(Node(
                    f"n{counter}", kind, [cur], [out],
                    {"ksize": (2, 2), "stride": (2, 2)},
                ))
                cur, shape = out, (1, oh, ow, cc)
            elif op == "add":
                out = fresh(shape)
                g.add_node(Node(f"n{counter}", "add", [cur, cur], [out]))
                cur = out
            elif op == "concat":
                out = fresh((1, hh, ww, 2 * cc))
                g.add_node(Node(
                    f"n{counter}", "concat", [cur, cur], [out], {"axis": -1}
                ))
                cur, shape = out, (1, hh, ww, 2 * cc)
            elif op == "mean":
                out = fresh((1, cc))
                g.add_node(Node(
                    f"n{counter}", "mean", [cur], [out], {"axis": (1, 2)}
                ))
                cur, shape = out, (1, cc)
        else:
            _, d = shape
            if rng.random() < 0.7:
                dout = int(rng.integers(2, 9))
                weights = constant(rng.normal(size=(d, dout)) * 0.2)
                inputs = [cur, weights]
                if rng.random() < 0.5:
                    inputs.append(constant(rng.normal(size=dout) * 0.1))
                out = fresh((1, dout))
                g.add_node(Node(
                    f"n{counter}", "fully_connected", inputs, [out],
                    {"activation": str(rng.choice(["none", "relu"]))},
                ))
                cur, shape = out, (1, dout)
            else:
                out = fresh(shape)
                g.add_node(Node(f"n{counter}", "add", [cur, cur], [out]))
                cur = out
    g.mark_output(cur)
    return g


def _feeds(graph: Graph, seed: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed + 1000)
    shape = graph.tensor("x").shape
    return {"x": rng.uniform(-1, 1, size=shape).astype(np.float32)}


@pytest.mark.parametrize("seed", range(GRAPHS))
def test_tier3_matches_the_interpreter(seed):
    graph = random_float_graph(seed)
    feeds = _feeds(graph, seed)
    batches = [_feeds(graph, seed + i) for i in range(2)]
    quantized = quantize_graph(graph, calibrate(graph, batches))
    result = compile_graph(quantized, cache=None, pipeline="O2")
    assert result.macro_kernels is not None

    want = execute_quantized(result.model.graph, feeds)
    executor = NcoreExecutor(
        result.model, verify=False, policy="codegen",
        macro_kernels=result.macro_kernels,
    )
    try:
        first = executor.execute(feeds).outputs
        steady = executor.execute(feeds).outputs
        assert executor.last_tier == "codegen"
        for name, value in want.items():
            expected = np.asarray(value)
            for got in (first, steady):
                out = np.asarray(got[name])
                assert out.dtype == expected.dtype, (seed, name)
                assert out.tobytes() == expected.tobytes(), (seed, name)
    finally:
        executor.close()


def test_fuzz_population_exercises_codegen():
    """The suite is not vacuous: most seeds produce covered segments."""
    covered = 0
    for seed in range(GRAPHS):
        graph = random_float_graph(seed)
        batches = [_feeds(graph, seed + i) for i in range(2)]
        quantized = quantize_graph(graph, calibrate(graph, batches))
        result = compile_graph(quantized, cache=None, pipeline="O2")
        covered += result.macro_kernels.covered_segments
    assert covered >= GRAPHS  # on average one macro-kernel per graph
