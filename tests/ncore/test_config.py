"""Tests for NcoreConfig: the shipped CHA parameters and the sizing knobs."""

import pytest

from repro.ncore import NcoreConfig


class TestShippedConfiguration:
    def test_simd_width_is_4096_bytes(self):
        cfg = NcoreConfig()
        assert cfg.slices == 16
        assert cfg.row_bytes == 4096
        assert cfg.lanes == 4096

    def test_ram_capacities_match_paper(self):
        # Section IV-C: 16 MB total, split into 8 MB data + 8 MB weight,
        # i.e. 512 KB per slice per RAM.
        cfg = NcoreConfig()
        assert cfg.data_ram_bytes == 8 * 1024 * 1024
        assert cfg.weight_ram_bytes == 8 * 1024 * 1024
        assert cfg.total_ram_bytes == 16 * 1024 * 1024
        assert cfg.data_ram_bytes // cfg.slices == 512 * 1024

    def test_int8_peak_is_20_tops(self):
        # Table II: Ncore at 2.5 GHz reaches 20,480 GOPS at 8 bits.
        cfg = NcoreConfig()
        assert cfg.peak_ops_per_second(npu_cycles=1) == pytest.approx(20.48e12)

    def test_bf16_peak_matches_table2(self):
        # Table II: 6,826 GOPS for bfloat16 (3-cycle NPU ops).
        cfg = NcoreConfig()
        assert cfg.peak_ops_per_second(npu_cycles=3) == pytest.approx(6.826e12, rel=1e-3)

    def test_sram_bandwidth_is_20_tbps(self):
        # Section IV-C: "Ncore's RAM provides a total of 20 TB/s".
        cfg = NcoreConfig()
        assert cfg.sram_bandwidth_bytes_per_second() == pytest.approx(20.48e12)

    def test_iram_capacity(self):
        # 8 KB double-buffered = two banks of 256 x 128-bit instructions.
        cfg = NcoreConfig()
        assert cfg.iram_instructions == 256
        assert cfg.irom_instructions == 256


class TestSizingKnobs:
    def test_slice_count_scales_width(self):
        # Section IV-B: "adding or removing slices alters Ncore's breadth".
        half = NcoreConfig(slices=8)
        assert half.row_bytes == 2048
        assert half.peak_ops_per_second() == pytest.approx(10.24e12)

    def test_sram_rows_scale_height(self):
        # "increasing or decreasing SRAM capacity alters Ncore's height".
        tall = NcoreConfig(sram_rows=4096)
        assert tall.data_ram_bytes == 16 * 1024 * 1024

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            NcoreConfig(slices=0)
        with pytest.raises(ValueError):
            NcoreConfig(sram_rows=0)
