"""Tests for the debug facilities: event log and performance counters."""

from hypothesis import given
from hypothesis import strategies as st

from repro.ncore import EventLog, PerfCounter


class TestEventLog:
    def test_record_and_drain_in_order(self):
        log = EventLog(capacity=4)
        for i in range(3):
            log.record(cycle=i * 10, tag=i, pc=i)
        events = log.drain()
        assert [e.tag for e in events] == [0, 1, 2]
        assert [e.cycle for e in events] == [0, 10, 20]
        assert len(log) == 0

    def test_wraps_like_a_circular_buffer(self):
        log = EventLog(capacity=4)
        for i in range(6):
            log.record(i, i, i)
        events = log.drain()
        # Oldest two entries were overwritten.
        assert [e.tag for e in events] == [2, 3, 4, 5]
        assert log.dropped == 0  # drained resets the count

    def test_dropped_count(self):
        log = EventLog(capacity=2)
        for i in range(5):
            log.record(i, i, i)
        assert log.dropped == 3

    def test_capacity_is_1024_by_default(self):
        log = EventLog()
        assert log.capacity == 1024

    @given(st.integers(1, 40), st.integers(0, 100))
    def test_drain_returns_most_recent_in_order(self, capacity, count):
        log = EventLog(capacity)
        for i in range(count):
            log.record(i, i, i)
        events = log.drain()
        expected = list(range(count))[-capacity:]
        assert [e.tag for e in events] == expected

    def test_overflowed_property(self):
        log = EventLog(capacity=4)
        for i in range(4):
            log.record(i, i, i)
        assert not log.overflowed
        log.record(4, 4, 4)
        assert log.overflowed
        assert log.dropped == 1

    def test_overflowed_resets_on_drain(self):
        # Both `dropped` and `overflowed` describe the current window:
        # draining hands the buffer back to the hardware, clean.
        log = EventLog(capacity=2)
        for i in range(3):
            log.record(i, i, i)
        assert log.overflowed
        log.drain()
        assert log.dropped == 0
        assert not log.overflowed

    @given(st.integers(1, 40), st.integers(0, 100))
    def test_overflowed_iff_capacity_exceeded(self, capacity, count):
        log = EventLog(capacity)
        for i in range(count):
            log.record(i, i, i)
        assert log.overflowed == (count > capacity)


class TestPerfCounter:
    def test_counts(self):
        counter = PerfCounter("cycles")
        counter.add(5)
        counter.add(3)
        assert counter.value == 8

    def test_offset_configuration(self):
        counter = PerfCounter("x", bits=8)
        counter.configure(offset=250)
        assert counter.value == 250

    def test_wraparound_detected(self):
        counter = PerfCounter("x", bits=8)
        counter.configure(offset=254)
        assert not counter.wrapped
        counter.add(5)
        assert counter.wrapped
        assert counter.value == 3

    def test_break_on_wrap_fires_once_armed(self):
        counter = PerfCounter("x", bits=8)
        counter.configure(offset=255, break_on_wrap=True)
        assert counter.add(1) is True

    def test_no_break_when_not_armed(self):
        counter = PerfCounter("x", bits=8)
        counter.configure(offset=255, break_on_wrap=False)
        assert counter.add(1) is False
        assert counter.wrapped

    @given(st.lists(st.integers(0, 1000), max_size=50))
    def test_value_is_sum_modulo_width(self, increments):
        counter = PerfCounter("x", bits=16)
        for inc in increments:
            counter.add(inc)
        assert counter.value == sum(increments) % (1 << 16)
