"""Tests for the OUT unit: requantization, activations, row narrowing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.dtypes import NcoreDType, bf16_from_bits, quantize_multiplier, requantize
from repro.isa.instruction import Activation
from repro.ncore import out as out_unit


class TestRequantizeLanes:
    def test_identity(self):
        m, s = quantize_multiplier(1.0)
        acc = np.array([5, -3, 127], dtype=np.int32)
        vals = out_unit.requantize_lanes(
            acc,
            np.full(3, m, np.int64),
            np.full(3, s, np.int64),
            np.zeros(3, np.int64),
            NcoreDType.INT8,
        )
        np.testing.assert_array_equal(vals, [5, -3, 127])

    def test_per_lane_parameters(self):
        # Different channels (lanes) can carry different requant params.
        m1, s1 = quantize_multiplier(1.0)
        m2, s2 = quantize_multiplier(0.5)
        acc = np.array([100, 100], dtype=np.int32)
        vals = out_unit.requantize_lanes(
            acc,
            np.array([m1, m2], np.int64),
            np.array([s1, s2], np.int64),
            np.array([0, 10], np.int64),
            NcoreDType.INT8,
        )
        np.testing.assert_array_equal(vals, [100, 60])

    @given(
        npst.arrays(np.int32, 16, elements=st.integers(-(2**24), 2**24)),
        st.floats(min_value=1e-4, max_value=2.0, allow_nan=False),
        st.integers(-100, 100),
    )
    def test_matches_scalar_requantize(self, acc, real_mult, offset):
        # The vectorised per-lane path must agree bit-exactly with the
        # scalar gemmlowp-style reference in repro.dtypes.
        m, s = quantize_multiplier(real_mult)
        lanes = acc.size
        vals = out_unit.requantize_lanes(
            acc,
            np.full(lanes, m, np.int64),
            np.full(lanes, s, np.int64),
            np.full(lanes, offset, np.int64),
            NcoreDType.INT16,
        )
        expected = requantize(acc, m, s, offset, NcoreDType.INT16)
        np.testing.assert_array_equal(vals, expected.astype(np.int32))


class TestIntegerActivation:
    def test_relu_clamps_at_zero_point(self):
        vals = np.array([-5, 0, 5], dtype=np.int32)
        zp = np.zeros(3, dtype=np.int64)
        out = out_unit.apply_integer_activation(
            vals, Activation.RELU, zp, 255, None, NcoreDType.INT8
        )
        np.testing.assert_array_equal(out, [0, 0, 5])

    def test_relu_respects_nonzero_zero_point(self):
        vals = np.array([100, 128, 200], dtype=np.int32)
        zp = np.full(3, 128, dtype=np.int64)
        out = out_unit.apply_integer_activation(
            vals, Activation.RELU, zp, 255, None, NcoreDType.UINT8
        )
        np.testing.assert_array_equal(out, [128, 128, 200])

    def test_relu6_upper_clamp(self):
        vals = np.array([0, 100, 250], dtype=np.int32)
        zp = np.zeros(3, dtype=np.int64)
        out = out_unit.apply_integer_activation(
            vals, Activation.RELU6, zp, 200, None, NcoreDType.UINT8
        )
        np.testing.assert_array_equal(out, [0, 100, 200])

    def test_lut_activation(self):
        lut = np.arange(255, -1, -1, dtype=np.int32)  # inverting table
        vals = np.array([0, 255], dtype=np.int32)
        out = out_unit.apply_integer_activation(
            vals, Activation.SIGMOID, np.zeros(2, np.int64), 255, lut, NcoreDType.UINT8
        )
        np.testing.assert_array_equal(out, [255, 0])

    def test_lut_required_for_tanh(self):
        from repro.ncore import ExecutionError

        with pytest.raises(ExecutionError):
            out_unit.apply_integer_activation(
                np.zeros(1, np.int32), Activation.TANH, np.zeros(1, np.int64), 255, None,
                NcoreDType.UINT8,
            )

    def test_none_is_passthrough(self):
        vals = np.array([-3, 9], dtype=np.int32)
        out = out_unit.apply_integer_activation(
            vals, Activation.NONE, np.zeros(2, np.int64), 255, None, NcoreDType.INT8
        )
        np.testing.assert_array_equal(out, vals)


class TestNarrowToRows:
    def test_8bit_fills_low_row(self):
        vals = np.array([-1, 0, 127], dtype=np.int32)
        low, high = out_unit.narrow_to_rows(vals, NcoreDType.INT8)
        np.testing.assert_array_equal(low, [0xFF, 0, 127])
        assert not high.any()

    def test_16bit_splits_low_high(self):
        # Section IV-C.2: low bytes in one row, high bytes in the next.
        vals = np.array([0x1234, -2], dtype=np.int32)
        low, high = out_unit.narrow_to_rows(vals, NcoreDType.INT16)
        np.testing.assert_array_equal(low, [0x34, 0xFE])
        np.testing.assert_array_equal(high, [0x12, 0xFF])

    @given(npst.arrays(np.int32, 64, elements=st.integers(-32768, 32767)))
    def test_16bit_reassembles(self, vals):
        low, high = out_unit.narrow_to_rows(vals, NcoreDType.INT16)
        rebuilt = (low.astype(np.uint16) | (high.astype(np.uint16) << 8)).view(np.int16)
        np.testing.assert_array_equal(rebuilt, vals.astype(np.int16))


class TestFloatOutput:
    def test_scale_and_round_to_bf16(self):
        acc = np.array([1.0, -2.0], dtype=np.float32)
        low, high = out_unit.float_output_rows(acc, 0.5, Activation.NONE)
        bits = low.astype(np.uint16) | (high.astype(np.uint16) << 8)
        np.testing.assert_allclose(bf16_from_bits(bits), [0.5, -1.0])

    def test_relu_in_float_domain(self):
        acc = np.array([-4.0, 4.0], dtype=np.float32)
        low, high = out_unit.float_output_rows(acc, 1.0, Activation.RELU)
        bits = low.astype(np.uint16) | (high.astype(np.uint16) << 8)
        np.testing.assert_allclose(bf16_from_bits(bits), [0.0, 4.0])

    def test_tanh_sigmoid_in_float_domain(self):
        acc = np.array([0.0], dtype=np.float32)
        low, high = out_unit.float_output_rows(acc, 1.0, Activation.TANH)
        bits = low.astype(np.uint16) | (high.astype(np.uint16) << 8)
        assert bf16_from_bits(bits)[0] == 0.0
        low, high = out_unit.float_output_rows(acc, 1.0, Activation.SIGMOID)
        bits = low.astype(np.uint16) | (high.astype(np.uint16) << 8)
        np.testing.assert_allclose(bf16_from_bits(bits), [0.5])

    @given(npst.arrays(np.float32, 32, elements=st.floats(-1e3, 1e3, width=32)))
    def test_bf16_rows_reassemble_to_rounded_values(self, acc):
        from repro.dtypes import to_bfloat16

        low, high = out_unit.float_output_rows(acc, 1.0, Activation.NONE)
        bits = low.astype(np.uint16) | (high.astype(np.uint16) << 8)
        np.testing.assert_array_equal(bf16_from_bits(bits), to_bfloat16(acc))
