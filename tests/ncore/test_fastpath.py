"""Differential validation of the trace-fused fast path.

Every test runs the same program twice — fastpath on versus the pure
interpreter — and demands *bit-identical* architectural state afterwards:
both SRAMs, every register file, the accumulators, the cycle/instruction/
issue/MAC totals and the hardware performance counters.  The fast path is
an execution tier, not a different machine; any divergence is a bug.
"""

import numpy as np
import pytest

from repro.dtypes import NcoreDType, QuantParams
from repro.isa import AssemblyError, Instruction, assemble
from repro.isa.instruction import SeqOp, SeqOpcode
from repro.ncore import Ncore
from repro.ncore.machine import ExecutionError
from repro.ncore.fastpath import get_fastpath_default, set_fastpath_default
from repro.nkl.programs import (
    emit_avg_pool_program,
    emit_conv1d_rotate_program,
    emit_conv2d_program,
    emit_depthwise_program,
    emit_elementwise_add_program,
    emit_matmul_program,
    emit_max_pool_rows_program,
    emit_tiled_matmul_program,
    run_streamed,
)
from repro.perf.simbench import fig6_machine


def qp(scale, zp):
    return QuantParams(scale=scale, zero_point=zp, dtype=NcoreDType.UINT8)


def _snapshot(m):
    """Full architectural state, down to the perf-counter wrap flags."""
    return {
        "data_ram": m.data_ram.data.copy(),
        "weight_ram": m.weight_ram.data.copy(),
        "ndu_regs": m.ndu_regs.copy(),
        "dlast": m.dlast.copy(),
        "acc_int": m.acc_int.copy(),
        "acc_float": m.acc_float.copy(),
        "out_low": m.out_low.copy(),
        "out_high": m.out_high.copy(),
        "pred_regs": m.pred_regs.copy(),
        "addr_regs": list(m.addr_regs),
        "pc": m.pc,
        "halted": m.halted,
        "total_cycles": m.total_cycles,
        "total_instructions": m.total_instructions,
        "total_issues": m.total_issues,
        "total_macs": m.total_macs,
        "perf": {n: (c.value, c.wrapped) for n, c in m.perf_counters.items()},
    }


def _assert_same_state(fast, interp):
    a, b = _snapshot(fast), _snapshot(interp)
    for key in a:
        if isinstance(a[key], np.ndarray):
            np.testing.assert_array_equal(a[key], b[key], err_msg=key)
        else:
            assert a[key] == b[key], f"{key}: fastpath {a[key]} != interp {b[key]}"


def _differential(emit, streamed=False):
    """Emit the same program into a fastpath and an interpreter machine,
    run both to completion, and compare everything."""
    fast, interp = Ncore(fastpath=True), Ncore(fastpath=False)
    runs = []
    for machine in (fast, interp):
        program = emit(machine)
        if streamed:
            runs.append(run_streamed(machine, program))
        else:
            runs.append(machine.execute_program(program))
    assert runs[0].halted and runs[1].halted
    assert runs[0].cycles == runs[1].cycles
    assert runs[0].instructions == runs[1].instructions
    assert runs[0].issues == runs[1].issues
    assert runs[0].macs == runs[1].macs
    assert runs[0].stop_reason == runs[1].stop_reason
    _assert_same_state(fast, interp)
    return fast, interp


class TestIsaSuiteDifferential:
    """The full NKL kernel suite, fused versus interpreted."""

    def test_matmul(self):
        rng = np.random.default_rng(11)
        data = rng.integers(0, 255, size=(16, 96)).astype(np.uint8)
        weights = rng.integers(0, 255, size=(96, 32)).astype(np.uint8)

        def emit(machine):
            program, _ = emit_matmul_program(
                machine, data, weights, qp(0.02, 128), qp(0.015, 120), qp(0.2, 3)
            )
            return program

        fast, _ = _differential(emit)
        assert fast.fastpath_stats["hits"] > 0

    def test_matmul_relu(self):
        rng = np.random.default_rng(12)
        data = rng.integers(0, 255, size=(8, 40)).astype(np.uint8)
        weights = rng.integers(0, 255, size=(40, 8)).astype(np.uint8)

        def emit(machine):
            program, _ = emit_matmul_program(
                machine, data, weights, qp(0.02, 128), qp(0.02, 128),
                qp(0.02, 100), "relu",
            )
            return program

        _differential(emit)

    def test_conv1d_rotate(self):
        rng = np.random.default_rng(13)
        data = rng.integers(0, 255, size=(40,)).astype(np.uint8)
        weights = rng.integers(0, 255, size=(16, 5)).astype(np.uint8)

        def emit(machine):
            program, _ = emit_conv1d_rotate_program(
                machine, data, weights, qp(0.02, 128), qp(0.02, 128), qp(0.1, 30)
            )
            return program

        fast, _ = _differential(emit)
        assert fast.fastpath_stats["hits"] > 0

    def test_tiled_matmul(self):
        rng = np.random.default_rng(14)
        data = rng.integers(0, 255, size=(80, 130)).astype(np.uint8)
        weights = rng.integers(0, 255, size=(130, 70)).astype(np.uint8)

        def emit(machine):
            program, _ = emit_tiled_matmul_program(
                machine, data, weights, qp(0.004, 128), qp(0.004, 128), qp(0.02, 0)
            )
            return program

        _differential(emit, streamed=True)

    def test_max_pool_rows(self):
        rng = np.random.default_rng(15)
        rows = rng.integers(0, 255, size=(6, 4096)).astype(np.uint8)

        def emit(machine):
            program, _ = emit_max_pool_rows_program(machine, rows)
            return program

        _differential(emit)

    def test_avg_pool_rows(self):
        rng = np.random.default_rng(16)
        rows = rng.integers(0, 255, size=(5, 4096)).astype(np.uint8)

        def emit(machine):
            program, _ = emit_avg_pool_program(machine, rows)
            return program

        _differential(emit)

    def test_elementwise_add(self):
        rng = np.random.default_rng(17)
        a = rng.integers(0, 255, size=(4096,)).astype(np.uint8)
        b = rng.integers(0, 255, size=(4096,)).astype(np.uint8)

        def emit(machine):
            program, _ = emit_elementwise_add_program(
                machine, a, b, qp(0.05, 128), qp(0.1, 128)
            )
            return program

        _differential(emit)

    def test_conv2d(self):
        rng = np.random.default_rng(18)
        x = rng.integers(0, 255, size=(1, 10, 10, 3)).astype(np.uint8)
        weights = rng.integers(0, 255, size=(3, 3, 3, 8)).astype(np.uint8)

        def emit(machine):
            program, _ = emit_conv2d_program(
                machine, x, weights, qp(0.02, 128), qp(0.02, 128), qp(0.3, 4),
                padding=((1, 1), (1, 1)),
            )
            return program

        _differential(emit, streamed=True)

    def test_conv2d_strided(self):
        rng = np.random.default_rng(19)
        x = rng.integers(0, 255, size=(1, 9, 9, 2)).astype(np.uint8)
        weights = rng.integers(0, 255, size=(3, 3, 2, 4)).astype(np.uint8)

        def emit(machine):
            program, _ = emit_conv2d_program(
                machine, x, weights, qp(0.02, 128), qp(0.02, 128), qp(0.3, 4),
                padding=((1, 1), (1, 1)), stride=(2, 2),
            )
            return program

        _differential(emit, streamed=True)

    def test_depthwise(self):
        rng = np.random.default_rng(20)
        x = rng.integers(0, 255, size=(1, 8, 8, 6)).astype(np.uint8)
        weights = rng.integers(0, 255, size=(3, 3, 6)).astype(np.uint8)

        def emit(machine):
            program, _ = emit_depthwise_program(
                machine, x, weights, qp(0.02, 128), qp(0.02, 128), qp(0.3, 4),
                padding=((1, 1), (1, 1)),
            )
            return program

        _differential(emit, streamed=True)


class TestFig6Loop:
    def test_fused_loop_matches_interpreter(self):
        fast_m, program = fig6_machine(fastpath=True)
        interp_m, _ = fig6_machine(fastpath=False)
        fast = fast_m.execute_program(program)
        interp = interp_m.execute_program(program)
        assert fast.cycles == interp.cycles == 517
        _assert_same_state(fast_m, interp_m)
        assert fast_m.fastpath_stats["hits"] == 1
        assert fast_m.fastpath_stats["fused_trips"] == 512
        assert interp_m.fastpath_stats["hits"] == 0

    def test_opt_out_compiles_nothing(self):
        machine, program = fig6_machine(fastpath=False)
        machine.load_program(program)
        assert machine._fastpath_tables == [{}, {}]
        assert machine.fastpath_stats["compiled"] == 0

    def test_default_flag_round_trip(self):
        assert get_fastpath_default() is True
        try:
            set_fastpath_default(False)
            assert Ncore().fastpath is False
        finally:
            set_fastpath_default(True)
        assert Ncore().fastpath is True


class TestMidTraceStops:
    """Debug stops must land on the same cycle, in the same state, on
    both tiers — including stops *inside* a fused repeat block."""

    def _stepped(self, fastpath, configure, budget=100_000_000):
        machine, program = fig6_machine(fastpath=fastpath)
        machine.load_program(program)
        configure(machine)
        trail = []
        while not machine.halted:
            result = machine.run(budget)
            trail.append((result.stop_reason, machine.total_cycles, machine.pc))
            if len(trail) > 10_000:  # pragma: no cover - runaway guard
                pytest.fail("machine failed to make progress")
        return machine, trail

    def test_perf_counter_break_mid_repeat(self):
        # Wrap the cycle counter 100 cycles in: inside the 512-trip loop.
        def configure(m):
            m.perf_counters["cycles"].configure(
                offset=(1 << 48) - 100, break_on_wrap=True
            )

        fast_m, fast_trail = self._stepped(True, configure)
        interp_m, interp_trail = self._stepped(False, configure)
        assert fast_trail == interp_trail
        assert fast_trail[0][0] == "perf_counter"
        # The break lands mid-repeat: before the loop has retired.
        assert fast_trail[0][1] < 517
        _assert_same_state(fast_m, interp_m)

    def test_n_step_windows_match(self):
        def configure(m):
            m.n_step = 37

        fast_m, fast_trail = self._stepped(True, configure)
        interp_m, interp_trail = self._stepped(False, configure)
        assert fast_trail == interp_trail
        assert any(reason == "n_step" for reason, _, _ in fast_trail)
        _assert_same_state(fast_m, interp_m)

    def test_budget_sliced_stepping_matches(self):
        fast_m, fast_trail = self._stepped(True, lambda m: None, budget=64)
        interp_m, interp_trail = self._stepped(False, lambda m: None, budget=64)
        # The fused tier may legally run a whole repeat block past the
        # slice boundary, so the trails differ — but the end state and the
        # total cycle count cannot.
        assert fast_trail[-1][1] == interp_trail[-1][1] == 517
        _assert_same_state(fast_m, interp_m)

    def test_resume_after_mid_trace_break_completes_identically(self):
        def configure(m):
            m.perf_counters["macs"].configure(
                offset=(1 << 48) - 200 * 4096, break_on_wrap=True
            )

        fast_m, fast_trail = self._stepped(True, configure)
        interp_m, interp_trail = self._stepped(False, configure)
        assert fast_trail == interp_trail
        assert fast_trail[0][0] == "perf_counter"
        assert fast_m.halted and fast_m.total_cycles == 517
        _assert_same_state(fast_m, interp_m)


class TestStopReasonRegression:
    def test_perf_break_on_final_instruction_is_not_masked_by_halt(self):
        # The instructions counter wraps exactly on the halt: the run both
        # halts AND trips the configured breakpoint, and the debugger must
        # see the breakpoint, not a bare "halt".
        machine = Ncore()
        program = assemble("setaddr a0, 1\nsetaddr a1, 2\nhalt")
        machine.load_program(program)
        machine.perf_counters["instructions"].configure(
            offset=(1 << 48) - len(program), break_on_wrap=True
        )
        result = machine.run()
        assert result.halted
        assert result.stop_reason == "perf_counter"
        assert machine.perf_counters["instructions"].wrapped


class TestDmaWaitValidation:
    def test_seqop_constructor_rejects_bad_group(self):
        with pytest.raises(ValueError, match="engine group 4"):
            SeqOp(SeqOpcode.DMA_WAIT, 4)
        for group in range(4):
            SeqOp(SeqOpcode.DMA_WAIT, group)  # valid encodings

    def test_assembler_rejects_bad_group_with_line_number(self):
        with pytest.raises(AssemblyError, match="line 2"):
            assemble("dmastart 0\ndmawait 9\nhalt")

    def test_machine_raises_on_forged_bad_group(self):
        # The constructor now rejects group 4, so forge the frozen
        # dataclass to model a corrupted IRAM encoding.
        bad = SeqOp.__new__(SeqOp)
        object.__setattr__(bad, "opcode", SeqOpcode.DMA_WAIT)
        object.__setattr__(bad, "arg", 4)
        object.__setattr__(bad, "arg2", 0)
        machine = Ncore()
        program = [
            Instruction(seq=bad),
            Instruction(seq=SeqOp(SeqOpcode.HALT)),
        ]
        with pytest.raises(ExecutionError, match="engine group 4"):
            machine.execute_program(program)
