"""End-to-end sparse-weight decompression and fault injection on the machine.

Section VII: "The accelerator presented in this work includes a hardware
decompression engine for sparse weights" — the NDU EXPAND op.  Section
IV-C.2: the RAMs implement 64-bit ECC (correct 1, detect 2).
"""

import numpy as np
import pytest

from repro.isa import assemble
from repro.ncore import EccError, Ncore
from repro.ncore.ndu import compress

ROW = 4096


class TestSparseWeightsEndToEnd:
    """Compressed weights in the weight RAM, decompressed inline by the
    NDU, consumed by the NPU in the same instruction."""

    def _run(self, density, seed=0):
        rng = np.random.default_rng(seed)
        weights = rng.integers(1, 255, ROW).astype(np.uint8)
        weights[rng.random(ROW) > density] = 0
        stream = compress(weights)
        assert stream.size <= ROW, "stream must fit one RAM row for this test"
        data = rng.integers(0, 16, ROW).astype(np.uint8)
        machine = Ncore()
        machine.write_data_ram(0, data.tobytes())
        padded = np.zeros(ROW, dtype=np.uint8)
        padded[: stream.size] = stream
        machine.write_weight_ram(0, padded.tobytes())
        program = assemble(
            """
            expand n1, wtram[a3]
            mac.uint8 dram[a0], n1
            halt
            """
        )
        result = machine.execute_program(program)
        return machine, data, weights, stream, result

    def test_sparse_mac_matches_dense_math(self):
        machine, data, weights, _, _ = self._run(density=0.25)
        expected = data.astype(np.int64) * weights.astype(np.int64)
        np.testing.assert_array_equal(machine.acc_int, expected)

    def test_compression_saves_weight_ram(self):
        _, _, weights, stream, _ = self._run(density=0.10, seed=3)
        # ~10% nonzeros + 12.5% bitmap overhead: well under half a row.
        assert stream.size < ROW * 0.35

    def test_expand_and_mac_fuse_into_two_instructions(self):
        _, _, _, _, result = self._run(density=0.25)
        assert result.instructions == 3  # expand | mac | halt

    def test_moderately_dense_row_round_trips_through_expand(self):
        # ~70% nonzeros still fits one compressed row (bitmap overhead is
        # 12.5%); a fully dense row would need streaming across rows.
        machine, data, weights, _, _ = self._run(density=0.7, seed=5)
        expected = data.astype(np.int64) * weights.astype(np.int64)
        np.testing.assert_array_equal(machine.acc_int, expected)


class TestFaultInjectionDuringExecution:
    def _machine(self):
        machine = Ncore()
        machine.write_data_ram(0, np.full(ROW, 2, np.uint8).tobytes())
        machine.write_weight_ram(0, np.full(ROW, 3, np.uint8).tobytes())
        return machine

    def test_single_bit_flip_is_transparent(self):
        # A 1-bit upset in a row consumed by a MAC is corrected by ECC and
        # the computation is unaffected.
        machine = self._machine()
        machine.data_ram.inject_bit_error(0, byte=100, bit=2)
        machine.execute_program(assemble("mac.uint8 dram[a0], wtram[a1]\nhalt"))
        assert (machine.acc_int == 6).all()
        assert machine.data_ram.corrected_errors == 1

    def test_double_bit_flip_stops_the_kernel(self):
        machine = self._machine()
        machine.weight_ram.inject_bit_error(0, byte=8, bit=0)
        machine.weight_ram.inject_bit_error(0, byte=9, bit=1)  # same ECC word
        with pytest.raises(EccError):
            machine.execute_program(assemble("mac.uint8 dram[a0], wtram[a1]\nhalt"))

    def test_flip_in_untouched_row_is_harmless(self):
        machine = self._machine()
        machine.data_ram.inject_bit_error(100, byte=0, bit=0)
        machine.data_ram.inject_bit_error(100, byte=1, bit=0)
        result = machine.execute_program(assemble("mac.uint8 dram[a0], wtram[a1]\nhalt"))
        assert result.halted  # the kernel never read row 100

    def test_correction_happens_mid_loop(self):
        # An upset in row 5 of a 10-row streaming loop corrects silently.
        machine = Ncore()
        for row in range(10):
            machine.write_data_ram(row * ROW, np.full(ROW, 1, np.uint8).tobytes())
        machine.write_weight_ram(0, np.full(ROW, 1, np.uint8).tobytes())
        machine.data_ram.inject_bit_error(5, byte=0, bit=3)
        program = assemble("loop 10 {\n  mac.uint8 dram[a0++], wtram[a1]\n}\nhalt")
        machine.execute_program(program)
        assert (machine.acc_int == 10).all()
        assert machine.data_ram.corrected_errors == 1
