"""Differential fuzzing of the Tier-3 float lowering family.

The bf16 counterpart of ``test_codegen_fuzz``: seeded random — but
legal — float graphs built from the float-region op vocabulary
(embedding gathers, ``lstm_step`` chains that exercise the seqfuse
variant, per-timestep ``lstm_cell`` chains that exercise cellfuse,
slice/concat/reshape plumbing, fc/softmax/batch_norm/mean tails), each
converted to bfloat16, compiled at O2 and executed on both the per-node
interpreter and the Tier-3 macro-kernel dispatcher.  Every output must
match byte-for-byte, on the benchmarking dispatch and on the
pinned-winner steady state.
"""

import numpy as np
import pytest

from repro.compiler import compile_graph
from repro.graph.gir import Graph, Node
from repro.models.common import GraphBuilder
from repro.ncore.codegen import CellFuseStep, SeqFuseStep
from repro.quantize import convert_to_bf16
from repro.runtime import NcoreExecutor, execute_quantized

GRAPHS = 25


def _embed(b: GraphBuilder, ids: str, vocab: int, width: int, rng) -> str:
    batch, seq = b.shape(ids)
    table = b.constant(
        "table", (rng.normal(size=(vocab, width)) * 0.5).astype(np.float32)
    )
    out = b._act(b._name("embedded"), (batch, seq, width))
    b.g.add_node(Node(b._name("embedding"), "embedding", [table, ids], [out]))
    return out


def _slice_t(b: GraphBuilder, seq_tensor: str, t: int) -> str:
    batch, _, width = b.shape(seq_tensor)
    out = b._act(b._name("step"), (batch, width))
    b.g.add_node(Node(
        b._name("slice"), "slice", [seq_tensor], [out],
        {"axis": 1, "begin": t, "size": 1, "squeeze": True},
    ))
    return out


def _zeros(b: GraphBuilder, hidden: int) -> str:
    return b.constant("zero", np.zeros((1, hidden), dtype=np.float32))


def _lstm_seq_layer(b: GraphBuilder, x_seq: str, hidden: int, rng) -> list[str]:
    """One encoder-style layer: a full chain of lstm_step nodes."""
    batch, seq, width = b.shape(x_seq)
    wx = b.constant("wx", (rng.normal(size=(width, 4 * hidden)) * 0.2).astype(np.float32))
    wh = b.constant("wh", (rng.normal(size=(hidden, 4 * hidden)) * 0.2).astype(np.float32))
    bias = b.constant("bias", (rng.normal(size=4 * hidden) * 0.1).astype(np.float32))
    h, c = _zeros(b, hidden), _zeros(b, hidden)
    outs = []
    for t in range(seq):
        nh = b._act(b._name("h"), (batch, hidden))
        nc = b._act(b._name("c"), (batch, hidden))
        b.g.add_node(Node(
            b._name("lstm"), "lstm_step",
            [x_seq, wx, wh, bias, h, c], [nh, nc], {"t": t},
        ))
        h, c = nh, nc
        outs.append(h)
    return outs


def _lstm_cell_layer(b: GraphBuilder, x_seq: str, hidden: int, rng) -> list[str]:
    """One decoder-style layer: slice each step, shared stacked weights."""
    batch, seq, width = b.shape(x_seq)
    weights = b.constant(
        "w", (rng.normal(size=(width + hidden, 4 * hidden)) * 0.2).astype(np.float32)
    )
    bias = b.constant("bias", (rng.normal(size=4 * hidden) * 0.1).astype(np.float32))
    h, c = _zeros(b, hidden), _zeros(b, hidden)
    # Slices first, cells back-to-back: consecutive same-weight cells
    # threading h/c are what the cellfuse run detector collapses.
    xs = [_slice_t(b, x_seq, t) for t in range(seq)]
    outs = []
    for x in xs:
        nh = b._act(b._name("h"), (batch, hidden))
        nc = b._act(b._name("c"), (batch, hidden))
        b.g.add_node(Node(
            b._name("lstm"), "lstm_cell",
            [x, weights, bias, h, c], [nh, nc],
        ))
        h, c = nh, nc
        outs.append(h)
    return outs


def _stack(b: GraphBuilder, parts: list[str]) -> str:
    batch, hidden = b.shape(parts[0])
    rows = [b.reshape(p, (batch, 1, hidden)) for p in parts]
    return b.concat(rows, axis=1)


def random_float_graph(seed: int) -> Graph:
    """One random bf16-region RNN-shaped graph."""
    rng = np.random.default_rng(seed)
    b = GraphBuilder(f"floatfuzz{seed}", seed=seed)
    seq = int(rng.integers(3, 7))
    width = int(rng.integers(4, 13))
    vocab = int(rng.integers(16, 49))
    ids = b.input("ids", (1, seq), dtype="int32")
    x_seq = _embed(b, ids, vocab, width, rng)

    layers = int(rng.integers(1, 4))
    hs = None
    for _ in range(layers):
        hidden = int(rng.integers(4, 13))
        style = rng.choice(["seq", "cell"])
        if style == "seq":
            hs = _lstm_seq_layer(b, x_seq, hidden, rng)
        else:
            hs = _lstm_cell_layer(b, x_seq, hidden, rng)
        x_seq = _stack(b, hs)

    outputs = [x_seq]
    last = hs[-1]
    if rng.random() < 0.6:
        last = b.fully_connected(
            last, int(rng.integers(3, 9)),
            activation=str(rng.choice(["none", "tanh", "sigmoid"])),
        )
    if rng.random() < 0.5:
        last = b.softmax(last)
    outputs.append(last)
    if rng.random() < 0.4:
        _, seq_now, hidden_now = b.shape(x_seq)
        outputs.append(b.reshape(x_seq, (1, seq_now * hidden_now)))
    return b.finish(outputs)


def _feeds(graph: Graph, seed: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed + 5000)
    shape = graph.tensor("ids").shape
    return {"ids": rng.integers(0, 16, size=shape).astype(np.int32)}


@pytest.mark.parametrize("seed", range(GRAPHS))
def test_float_tier3_matches_the_interpreter(seed):
    graph = convert_to_bf16(random_float_graph(seed))
    feeds = _feeds(graph, seed)
    result = compile_graph(graph, cache=None, pipeline="O2")
    assert result.macro_kernels is not None
    assert result.macro_kernels.covered_segments >= 1

    want = execute_quantized(result.model.graph, feeds)
    executor = NcoreExecutor(
        result.model, verify=False, policy="codegen",
        macro_kernels=result.macro_kernels,
    )
    try:
        first = executor.execute(feeds).outputs
        steady = executor.execute(feeds).outputs
        assert executor.last_tier == "codegen"
        for name, value in want.items():
            expected = np.asarray(value)
            for got in (first, steady):
                out = np.asarray(got[name])
                assert out.dtype == expected.dtype, (seed, name)
                assert out.tobytes() == expected.tobytes(), (seed, name)
    finally:
        executor.close()


def test_fuzz_population_exercises_both_fusions():
    """The corpus is not vacuous: both fusion families appear, and the
    float region is near-fully covered across the population."""
    seqfuse = cellfuse = covered = total = 0
    for seed in range(GRAPHS):
        graph = convert_to_bf16(random_float_graph(seed))
        result = compile_graph(graph, cache=None, pipeline="O2")
        kset = result.macro_kernels
        covered += kset.covered_segments
        total += len(result.model.segments)
        for kernel in kset.kernels.values():
            for variant in kernel.variants:
                for step in variant.steps:
                    if isinstance(step, SeqFuseStep):
                        seqfuse += 1
                    elif isinstance(step, CellFuseStep):
                        cellfuse += 1
    assert seqfuse > 0, "no seqfuse chains in the corpus"
    assert cellfuse > 0, "no cellfuse chains in the corpus"
    assert covered / total > 0.8
