"""Machine-level tests of the OUT unit's remaining paths: accumulator
spills (STORE_ACC), 16-bit low/high stores, and LUT activations."""

import numpy as np
import pytest

from repro.dtypes import NcoreDType, QuantParams, dequantize, quantize_multiplier
from repro.isa import assemble
from repro.ncore import Ncore
from repro.runtime.luts import build_activation_lut, sigmoid_lut, tanh_lut

ROW = 4096


class TestStoreAcc:
    def test_spills_raw_accumulators_as_four_rows(self):
        machine = Ncore()
        rng = np.random.default_rng(0)
        data = rng.integers(0, 255, ROW).astype(np.uint8)
        weights = rng.integers(0, 255, ROW).astype(np.uint8)
        machine.write_data_ram(0, data.tobytes())
        machine.write_weight_ram(0, weights.tobytes())
        machine.execute_program(assemble(
            "mac.uint8 dram[a0], wtram[a1]\nsetaddr a6, 8\nstoreacc a6\nhalt"
        ))
        raw = np.frombuffer(machine.read_data_ram(8 * ROW, 4 * ROW), np.uint8)
        rebuilt = np.zeros(ROW, dtype=np.uint32)
        for j in range(4):
            rebuilt |= raw[j * ROW : (j + 1) * ROW].astype(np.uint32) << np.uint32(8 * j)
        expected = data.astype(np.int64) * weights.astype(np.int64)
        np.testing.assert_array_equal(rebuilt.view(np.int32), expected.astype(np.int32))

    def test_spilled_accumulators_reload_via_16bit_path(self):
        # Round-trip: spill, reset, verify the spill region is intact.
        machine = Ncore()
        machine.write_data_ram(0, np.full(ROW, 7, np.uint8).tobytes())
        machine.write_weight_ram(0, np.full(ROW, 3, np.uint8).tobytes())
        machine.execute_program(assemble(
            "mac.uint8 dram[a0], wtram[a1]\nsetaddr a6, 8\nstoreacc a6\nhalt"
        ))
        low = np.frombuffer(machine.read_data_ram(8 * ROW, ROW), np.uint8)
        assert (low == 21).all()


class TestSixteenBitStores:
    def test_requant_int16_store_low_and_high(self):
        machine = Ncore()
        machine.write_data_ram(0, np.full(ROW, 200, np.uint8).tobytes())
        machine.write_weight_ram(0, np.full(ROW, 10, np.uint8).tobytes())
        mult, shift = quantize_multiplier(1.0)
        machine.set_requant(mult, shift, 0)
        machine.execute_program(assemble(
            """
            mac.uint8 dram[a0], wtram[a1]
            setaddr a6, 4
            setaddr a7, 5
            requant.int16
            store a6
            store a7, high
            halt
            """
        ))
        low = np.frombuffer(machine.read_data_ram(4 * ROW, ROW), np.uint8)
        high = np.frombuffer(machine.read_data_ram(5 * ROW, ROW), np.uint8)
        values = (low.astype(np.uint16) | (high.astype(np.uint16) << 8)).view(np.int16)
        assert (values == 2000).all()

    def test_16bit_store_feeds_16bit_mac(self):
        # Produce int16 results, store low/high adjacently, consume them
        # back through the 16-bit operand path (section IV-C.2 layout).
        machine = Ncore()
        machine.write_data_ram(0, np.full(ROW, 100, np.uint8).tobytes())
        machine.write_weight_ram(0, np.full(ROW, 5, np.uint8).tobytes())
        machine.write_weight_ram(2 * ROW, np.full(ROW, 2, np.uint8).tobytes())  # low
        machine.write_weight_ram(3 * ROW, np.zeros(ROW, np.uint8).tobytes())    # high
        mult, shift = quantize_multiplier(1.0)
        machine.set_requant(mult, shift, 0)
        machine.execute_program(assemble(
            """
            mac.uint8 dram[a0], wtram[a1]   ; acc = 500
            setaddr a6, 4
            setaddr a7, 5
            requant.int16
            store a6
            store a7, high
            setaddr a0, 4
            setaddr a1, 2
            mac.int16 dram[a0], wtram[a1], noacc
            halt
            """
        ))
        assert (machine.acc_int == 1000).all()  # 500 * 2 via the s16 path


class TestLutActivations:
    def _run(self, activation, lut):
        machine = Ncore()
        rng = np.random.default_rng(1)
        data = rng.integers(0, 255, ROW).astype(np.uint8)
        machine.write_data_ram(0, data.tobytes())
        machine.write_weight_ram(0, np.full(ROW, 1, np.uint8).tobytes())
        mult, shift = quantize_multiplier(1.0)
        machine.set_requant(mult, shift, 0)
        machine.set_activation_lut(lut)
        machine.execute_program(assemble(
            f"mac.uint8 dram[a0], wtram[a1]\nsetaddr a6, 4\n"
            f"requant.uint8 {activation}\nstore a6\nhalt"
        ))
        out = np.frombuffer(machine.read_data_ram(4 * ROW, ROW), np.uint8)
        return data, out

    def test_sigmoid_lut_end_to_end(self):
        in_qp = QuantParams(0.05, 128, NcoreDType.UINT8)
        out_qp = QuantParams(1 / 255, 0, NcoreDType.UINT8)
        lut = sigmoid_lut(in_qp, out_qp)
        data, out = self._run("sigmoid", lut)
        real = 1.0 / (1.0 + np.exp(-(data.astype(np.float64) - 128) * 0.05))
        np.testing.assert_allclose(
            dequantize(out, out_qp), real, atol=out_qp.scale
        )

    def test_tanh_lut_end_to_end(self):
        in_qp = QuantParams(0.02, 128, NcoreDType.UINT8)
        out_qp = QuantParams(2 / 255, 128, NcoreDType.UINT8)
        lut = tanh_lut(in_qp, out_qp)
        data, out = self._run("tanh", lut)
        real = np.tanh((data.astype(np.float64) - 128) * 0.02)
        np.testing.assert_allclose(dequantize(out, out_qp), real, atol=out_qp.scale)

    def test_lut_builder_rejects_16bit_inputs(self):
        with pytest.raises(ValueError):
            build_activation_lut(
                np.tanh,
                QuantParams(0.1, 0, NcoreDType.INT16),
                QuantParams(0.1, 0, NcoreDType.UINT8),
            )

    def test_lut_is_monotone_for_monotone_functions(self):
        lut = sigmoid_lut(
            QuantParams(0.05, 128, NcoreDType.UINT8),
            QuantParams(1 / 255, 0, NcoreDType.UINT8),
        )
        assert (np.diff(lut) >= 0).all()


class TestBf16OutputOnMachine:
    def test_bf16_mac_requant_store_roundtrip(self):
        from repro.dtypes import bf16_from_bits, bf16_to_bits

        machine = Ncore()
        vals = np.linspace(-4.0, 4.0, ROW).astype(np.float32)
        bits = bf16_to_bits(vals)
        machine.write_data_ram(0, (bits & 0xFF).astype(np.uint8).tobytes())
        machine.write_data_ram(ROW, (bits >> 8).astype(np.uint8).tobytes())
        wbits = bf16_to_bits(np.full(ROW, 3.0, np.float32))
        machine.write_weight_ram(0, (wbits & 0xFF).astype(np.uint8).tobytes())
        machine.write_weight_ram(ROW, (wbits >> 8).astype(np.uint8).tobytes())
        machine.set_float_scale(0.5)
        machine.execute_program(assemble(
            """
            mac.bf16 dram[a0], wtram[a1]
            setaddr a6, 8
            setaddr a7, 9
            requant.bf16
            store a6
            store a7, high
            halt
            """
        ))
        low = np.frombuffer(machine.read_data_ram(8 * ROW, ROW), np.uint8)
        high = np.frombuffer(machine.read_data_ram(9 * ROW, ROW), np.uint8)
        out = bf16_from_bits(low.astype(np.uint16) | (high.astype(np.uint16) << 8))
        # acc = bf16(vals) * 3.0, scaled by 0.5 and rounded back to bf16.
        from repro.dtypes import to_bfloat16

        expected = to_bfloat16(bf16_from_bits(bits) * 3.0 * 0.5)
        np.testing.assert_allclose(out, expected, rtol=2**-7)

    def test_bf16_relu_on_machine(self):
        from repro.dtypes import bf16_from_bits, bf16_to_bits

        machine = Ncore()
        bits = bf16_to_bits(np.full(ROW, -2.5, np.float32))
        machine.write_data_ram(0, (bits & 0xFF).astype(np.uint8).tobytes())
        machine.write_data_ram(ROW, (bits >> 8).astype(np.uint8).tobytes())
        one = bf16_to_bits(np.full(ROW, 1.0, np.float32))
        machine.write_weight_ram(0, (one & 0xFF).astype(np.uint8).tobytes())
        machine.write_weight_ram(ROW, (one >> 8).astype(np.uint8).tobytes())
        machine.execute_program(assemble(
            "mac.bf16 dram[a0], wtram[a1]\nsetaddr a6, 8\nrequant.bf16 relu\nstore a6\nhalt"
        ))
        low = np.frombuffer(machine.read_data_ram(8 * ROW, ROW), np.uint8)
        assert (low == 0).all()  # relu(-2.5) == 0.0 (bf16 encoding all-zero)
