"""Differential fuzzing of the fast path against the interpreter.

Hundreds of seeded random — but legal — programs built from the fusable
instruction vocabulary (rotates, broadcasts, bypasses, every NPU op,
requant/store, fused loops, hardware repeats), run on both execution
tiers from identical random RAM images and configuration registers.
Everything observable must match bit-for-bit; traces the fast path
rejects simply fall back to the interpreter and still must agree.
"""

import numpy as np
import pytest

from repro.isa import assemble
from repro.ncore import Ncore

from tests.ncore.test_fastpath import _assert_same_state

PROGRAMS = 200

_NPU_OPS = ["mac", "add", "sub", "min", "max", "and", "or", "xor"]
_DTYPES = ["", ".uint8", ".int8", ".int16"]
_DATA_SOURCES = ["n0", "n1", "dlast", "dram[a0]", "zero"]
_WEIGHT_SOURCES = ["n1", "n2", "wtram[a1]", "zero"]


def _random_instruction(rng) -> str:
    """One (possibly multi-unit) instruction line in assembly syntax."""
    statements = []
    if rng.random() < 0.8:
        kind = rng.integers(0, 4)
        if kind == 0:
            statements.append(f"bypass n{rng.integers(0, 3)}, dram[a0]")
        elif kind == 1:
            direction = rng.choice(["rotl", "rotr"])
            reg = rng.integers(0, 3)
            statements.append(f"{direction} n{reg}, n{reg}, {rng.integers(1, 65)}")
        elif kind == 2:
            statements.append(f"broadcast64 n{rng.integers(0, 3)}, wtram[a1], a5, inc")
        else:
            statements.append(f"bypass n{rng.integers(0, 3)}, wtram[a1]")
    if rng.random() < 0.8:
        op = rng.choice(_NPU_OPS)
        dtype = rng.choice(_DTYPES)
        if dtype == ".int16":
            # 16-bit NPU operands must come straight from the RAMs.
            data = rng.choice(["dram[a0]", "zero"])
            weight = rng.choice(["wtram[a1]", "zero"])
        else:
            data = rng.choice(_DATA_SOURCES)
            weight = rng.choice(_WEIGHT_SOURCES)
        if rng.random() < 0.3:
            data += f">>{rng.integers(1, 4)}"
        flags = []
        if rng.random() < 0.3:
            flags.append("zoff")
        if rng.random() < 0.2:
            flags.append("noacc")
        if rng.random() < 0.15:
            flags.append("neighbor")
        tail = (", " + ", ".join(flags)) if flags else ""
        statements.append(f"{op}{dtype} {data}, {weight}{tail}")
    if rng.random() < 0.25:
        if rng.random() < 0.7:
            act = rng.choice(["", " relu", " relu6"])
            statements.append(f"requant.uint8{act}")
        else:
            statements.append("store a6, inc")
    if not statements:
        statements.append("nop")
    return " | ".join(statements)


def _random_program(rng) -> str:
    lines = [
        "setaddr a0, 0",
        "setaddr a1, 0",
        "setaddr a5, 0",
        f"setaddr a6, {int(rng.integers(64, 96))}",
    ]
    for _ in range(int(rng.integers(1, 5))):
        roll = rng.random()
        if roll < 0.5:
            # A fused block: one instruction with a hardware repeat count.
            lines.append(f"loop {int(rng.integers(2, 48))} {{")
            lines.append("  " + _random_instruction(rng))
            lines.append("}")
        elif roll < 0.75:
            # A multi-instruction hardware loop (region fusion candidate).
            lines.append(f"loopn {int(rng.integers(2, 16))}")
            for _ in range(int(rng.integers(1, 3))):
                lines.append(_random_instruction(rng))
            lines.append("endloop")
        else:
            lines.append(_random_instruction(rng))
        if rng.random() < 0.3:
            lines.append(f"setaddr a5, {int(rng.integers(0, 8))}")
    lines.append("halt")
    return "\n".join(lines)


def _configured_machine(seed: int, fastpath: bool) -> Ncore:
    rng = np.random.default_rng(seed)
    machine = Ncore(fastpath=fastpath)
    machine.write_data_ram(0, rng.integers(0, 256, size=16 * 4096, dtype=np.uint8).tobytes())
    machine.write_weight_ram(0, rng.integers(0, 256, size=16 * 4096, dtype=np.uint8).tobytes())
    machine.set_zero_offsets(int(rng.integers(0, 256)), int(rng.integers(0, 256)))
    machine.set_requant(
        int(rng.integers(1 << 29, 1 << 31)),
        int(rng.integers(0, 12)),
        int(rng.integers(-64, 64)),
    )
    return machine


@pytest.mark.parametrize("batch", range(8))
def test_random_programs_differential(batch):
    per_batch = PROGRAMS // 8
    for index in range(per_batch):
        seed = batch * per_batch + index
        source = _random_program(np.random.default_rng(1000 + seed))
        program = assemble(source)
        fast = _configured_machine(seed, fastpath=True)
        interp = _configured_machine(seed, fastpath=False)
        fast_run = fast.execute_program(program)
        interp_run = interp.execute_program(program)
        assert fast_run.halted and interp_run.halted, source
        assert fast_run.cycles == interp_run.cycles, source
        assert fast_run.issues == interp_run.issues, source
        assert fast_run.macs == interp_run.macs, source
        try:
            _assert_same_state(fast, interp)
        except AssertionError:  # pragma: no cover - diagnostic aid
            print(f"seed {seed} diverged:\n{source}")
            raise


def test_fuzz_exercises_both_fusion_kinds():
    # Sanity: across the corpus the fast path actually fuses a meaningful
    # share of traces (the differential above would pass trivially if the
    # generator only ever produced rejected traces).
    hits = 0
    for seed in range(40):
        source = _random_program(np.random.default_rng(1000 + seed))
        machine = _configured_machine(seed, fastpath=True)
        machine.execute_program(assemble(source))
        hits += machine.fastpath_stats["hits"]
    assert hits > 10
