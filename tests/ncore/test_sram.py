"""Tests for the row memories (with ECC) and the instruction RAM."""

import numpy as np
import pytest

from repro.isa import Instruction, SeqOp, SeqOpcode, assemble
from repro.ncore import EccError, InstructionRam, RowMemory


class TestRowMemory:
    def test_read_write_round_trip(self):
        ram = RowMemory(rows=8, row_bytes=64)
        row = np.arange(64, dtype=np.uint8)
        ram.write_row(3, row)
        np.testing.assert_array_equal(ram.read_row(3), row)

    def test_read_returns_copy(self):
        ram = RowMemory(rows=2, row_bytes=16)
        out = ram.read_row(0)
        out[:] = 99
        assert ram.read_row(0)[0] == 0

    def test_row_bounds_checked(self):
        ram = RowMemory(rows=4, row_bytes=16)
        with pytest.raises(IndexError):
            ram.read_row(4)
        with pytest.raises(IndexError):
            ram.read_row(-1)

    def test_wrong_row_size_rejected(self):
        ram = RowMemory(rows=4, row_bytes=16)
        with pytest.raises(ValueError):
            ram.write_row(0, np.zeros(8, dtype=np.uint8))

    def test_byte_access_spans_rows(self):
        ram = RowMemory(rows=4, row_bytes=16)
        ram.write_bytes(12, bytes(range(8)))  # crosses rows 0 and 1
        assert ram.read_bytes(12, 8) == bytes(range(8))
        assert ram.read_row(0)[12] == 0
        assert ram.read_row(1)[3] == 7

    def test_byte_access_bounds(self):
        ram = RowMemory(rows=2, row_bytes=16)
        with pytest.raises(IndexError):
            ram.read_bytes(30, 4)

    def test_access_counters(self):
        ram = RowMemory(rows=4, row_bytes=16)
        ram.write_row(0, np.zeros(16, dtype=np.uint8))
        ram.read_row(0)
        ram.read_row(1)
        assert ram.writes == 1
        assert ram.reads == 2


class TestEcc:
    """Section IV-C.2: 64-bit ECC corrects 1-bit, detects 2-bit errors."""

    def test_single_bit_error_corrected(self):
        ram = RowMemory(rows=4, row_bytes=64)
        original = np.arange(64, dtype=np.uint8)
        ram.write_row(0, original)
        ram.inject_bit_error(0, byte=5, bit=3)
        out = ram.read_row(0)
        np.testing.assert_array_equal(out, original)
        assert ram.corrected_errors == 1

    def test_double_bit_error_in_same_word_detected(self):
        ram = RowMemory(rows=4, row_bytes=64)
        ram.write_row(0, np.zeros(64, dtype=np.uint8))
        # Two flips within the same 64-bit ECC word.
        ram.inject_bit_error(0, byte=8, bit=0)
        ram.inject_bit_error(0, byte=9, bit=1)
        with pytest.raises(EccError):
            ram.read_row(0)

    def test_two_single_bit_errors_in_different_words_corrected(self):
        ram = RowMemory(rows=4, row_bytes=64)
        original = np.arange(64, dtype=np.uint8)
        ram.write_row(0, original)
        ram.inject_bit_error(0, byte=0, bit=0)   # word 0
        ram.inject_bit_error(0, byte=8, bit=0)   # word 1
        np.testing.assert_array_equal(ram.read_row(0), original)
        assert ram.corrected_errors == 2

    def test_rewrite_clears_injected_errors(self):
        ram = RowMemory(rows=4, row_bytes=64)
        ram.inject_bit_error(0, byte=0, bit=0)
        ram.inject_bit_error(0, byte=0, bit=1)
        ram.write_row(0, np.full(64, 7, dtype=np.uint8))
        out = ram.read_row(0)  # no EccError: the write re-encoded ECC
        assert out[0] == 7


class TestInstructionRam:
    def _program(self, n):
        return [Instruction(seq=SeqOp(SeqOpcode.NOP)) for _ in range(n)]

    def test_load_and_fetch(self):
        iram = InstructionRam(bank_instructions=256, rom_instructions=256)
        program = assemble("setaddr a0, 1\nhalt")
        iram.load_bank(0, program)
        assert iram.fetch(0) == program[0]
        assert iram.fetch(1) == program[1]

    def test_capacity_enforced(self):
        iram = InstructionRam(bank_instructions=4, rom_instructions=4)
        with pytest.raises(ValueError):
            iram.load_bank(0, self._program(5))

    def test_double_buffering(self):
        iram = InstructionRam(256, 256)
        first = assemble("halt")
        second = assemble("nop\nhalt")
        iram.load_bank(0, first)
        iram.load_bank(1, second)
        assert iram.fetch(0) == first[0]
        iram.swap()
        assert iram.fetch(0) == second[0]

    def test_loading_active_bank_while_running_rejected(self):
        # Loading must target the inactive bank during execution
        # (section IV-C.1).
        iram = InstructionRam(256, 256)
        with pytest.raises(RuntimeError):
            iram.load_bank(0, self._program(1), running=True)
        iram.load_bank(1, self._program(1), running=True)  # inactive: fine

    def test_rom_mapped_after_bank(self):
        iram = InstructionRam(bank_instructions=4, rom_instructions=4)
        rom = assemble("event 1\nhalt")
        iram.load_rom(rom)
        assert iram.fetch(4) == rom[0]  # rom starts at bank capacity
        assert iram.fetch(5) == rom[1]

    def test_unmapped_fetch_rejected(self):
        iram = InstructionRam(4, 4)
        with pytest.raises(IndexError):
            iram.fetch(0)
