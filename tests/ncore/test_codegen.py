"""Tier-3 AOT codegen: macro-kernel lowering and multi-variant dispatch.

The contract under test is the one the interpreter oracle enforces in
production: every variant of every macro-kernel must be *byte-identical*
to the per-node quantized interpreter walk, and after the first dispatch
of a (kernel, input-shapes) pair only the winning variant ever runs
again.
"""

import numpy as np
import pytest

from repro.compiler import compile_graph
from repro.ncore.codegen import (
    CodegenDivergence,
    ConvStep,
    IdentityStep,
    KernelVariant,
    MacroKernel,
    MacroKernelSet,
    MultiKernelDispatcher,
    codegen_model,
)
from repro.quantize import calibrate, quantize_graph
from repro.runtime import InferenceSession, compile_model, execute_quantized

from tests.quantize.test_convert import calibration_batches, small_cnn


def quantized_cnn(seed=11):
    g = small_cnn(seed=seed)
    return quantize_graph(g, calibrate(g, calibration_batches()))


def sample_feeds(seed=3):
    rng = np.random.default_rng(seed)
    return {"x": rng.uniform(-1, 1, size=(1, 8, 8, 3)).astype(np.float32)}


@pytest.fixture()
def compiled():
    return compile_graph(quantized_cnn(), cache=None, pipeline="O2")


class TestCodegenModel:
    def test_codegen_covers_the_quantized_segments(self, compiled):
        kernels = compiled.macro_kernels
        assert isinstance(kernels, MacroKernelSet)
        assert kernels.covered_segments >= 1
        # Every segment is either lowered or carries a reason.
        total = len(compiled.model.segments)
        assert kernels.covered_segments + len(kernels.uncovered) == total

    def test_matmul_segments_get_two_variants(self, compiled):
        kernels = compiled.macro_kernels
        multi = [k for k in kernels.kernels.values()
                 if any(s.op in ("conv2d", "depthwise_conv2d",
                                 "fully_connected")
                        for v in k.variants for s in v.steps)]
        assert multi, "expected at least one matmul-bearing macro-kernel"
        for kernel in multi:
            assert sorted(kernel.strategies()) == ["nest", "rowsweep"]

    def test_cycles_come_from_the_loadable(self, compiled):
        model = compiled.model
        for index, kernel in compiled.macro_kernels.kernels.items():
            if index in model.loadables:
                assert kernel.compute_cycles == \
                    model.loadables[index].compute_cycles

    def test_codegen_model_reports_uncovered_reasons(self):
        graph = quantized_cnn()
        model = compile_model(graph, optimize=False, cache=None)
        stats: dict[str, int] = {}
        kernels = codegen_model(
            model.graph, model.segments, model.loadables, "cnn", stats=stats
        )
        assert stats["kernels"] == kernels.covered_segments
        assert stats["variants"] == kernels.variant_count
        for reason in kernels.uncovered.values():
            assert isinstance(reason, str) and reason


class TestBitExactness:
    def test_every_variant_matches_the_interpreter(self, compiled):
        graph = compiled.model.graph
        feeds = sample_feeds()
        expected = execute_quantized(graph, feeds)
        for index, kernel in compiled.macro_kernels.kernels.items():
            segment = compiled.model.segments[index]
            for variant in kernel.variants:
                env = {
                    t.name: np.asarray(t.data)
                    for t in graph.tensors.values() if t.is_constant
                }
                env.update(feeds)
                # Seed the env with everything upstream of this segment.
                from repro.runtime.qkernels import _execute_quantized_node

                interp = dict(env)
                for seg in compiled.model.segments:
                    if seg is segment:
                        break
                    for node in seg.nodes:
                        ins = [interp[n] for n in node.inputs]
                        outs = _execute_quantized_node(graph, node, ins)
                        for name, value in zip(
                            node.outputs, outs, strict=False
                        ):
                            interp[name] = np.asarray(value)
                variant.run(interp)
                for name in kernel.outputs:
                    want = expected.get(name)
                    if want is None:
                        continue
                    got = interp[name]
                    assert got.dtype == np.asarray(want).dtype
                    assert got.tobytes() == np.asarray(want).tobytes(), (
                        f"variant {variant.strategy!r} diverged on {name}"
                    )

    def test_session_outputs_are_byte_identical(self):
        # The default process-wide compile cache holds the codegen
        # artifact, which is how sessions discover the macro-kernels.
        model = compile_model(quantized_cnn(), name="codegen-bitexact")
        feeds = sample_feeds()
        interp = InferenceSession(model, policy="interpreter")
        tier3 = InferenceSession(model, policy="codegen")
        try:
            want = interp.run(feeds).outputs
            got = tier3.run(feeds).outputs
            again = tier3.run(feeds).outputs  # steady state (pinned winner)
            assert tier3.executor.last_tier == "codegen"
            for name in want:
                w = np.asarray(want[name])
                assert np.asarray(got[name]).tobytes() == w.tobytes()
                assert np.asarray(again[name]).tobytes() == w.tobytes()
                assert np.asarray(got[name]).dtype == w.dtype
        finally:
            interp.close()
            tier3.close()


def _toy_kernel(two_inputs: bool = False) -> MacroKernel:
    """A two-variant identity kernel; variant disagreement is optional."""
    a = KernelVariant("nest", (IdentityStep("n", "identity", ("x",), "y"),))
    source = "x2" if two_inputs else "x"
    b = KernelVariant(
        "rowsweep", (IdentityStep("n", "identity", (source,), "y"),)
    )
    return MacroKernel(
        name="toy", segment_index=0, inputs=("x",), outputs=("y",),
        variants=(a, b),
    )


class TestMultiKernelDispatcher:
    def test_first_dispatch_benchmarks_then_pins_the_winner(self):
        kernel = _toy_kernel()
        dispatcher = MultiKernelDispatcher(oracle="off")
        env = {"x": np.arange(8, dtype=np.uint8)}
        assert dispatcher.winner_for(kernel, env) is None
        dispatcher.dispatch(kernel, env)
        assert dispatcher.winner_for(kernel, env) in ("nest", "rowsweep")
        assert dispatcher.stats["benchmarks"] == 1
        # Benchmarking ran both variants exactly once.
        assert dispatcher.variant_runs[("toy", "nest")] == 1
        assert dispatcher.variant_runs[("toy", "rowsweep")] == 1

    def test_losers_never_run_again(self):
        kernel = _toy_kernel()
        dispatcher = MultiKernelDispatcher(oracle="off")
        env = {"x": np.arange(8, dtype=np.uint8)}
        dispatcher.dispatch(kernel, env)
        winner = dispatcher.winner_for(kernel, env)
        loser = "rowsweep" if winner == "nest" else "nest"
        for _ in range(5):
            dispatcher.dispatch(kernel, dict(env))
        assert dispatcher.variant_runs[("toy", winner)] == 6
        assert dispatcher.variant_runs[("toy", loser)] == 1
        assert dispatcher.stats["benchmarks"] == 1
        assert dispatcher.stats["dispatches"] == 6

    def test_new_shape_triggers_a_new_benchmark(self):
        kernel = _toy_kernel()
        dispatcher = MultiKernelDispatcher(oracle="off")
        dispatcher.dispatch(kernel, {"x": np.arange(8, dtype=np.uint8)})
        dispatcher.dispatch(kernel, {"x": np.arange(16, dtype=np.uint8)})
        assert dispatcher.stats["benchmarks"] == 2

    def test_variant_disagreement_raises(self):
        kernel = _toy_kernel(two_inputs=True)
        dispatcher = MultiKernelDispatcher(oracle="off")
        env = {
            "x": np.arange(8, dtype=np.uint8),
            "x2": np.arange(8, dtype=np.uint8)[::-1].copy(),
        }
        with pytest.raises(CodegenDivergence, match="disagree"):
            dispatcher.dispatch(kernel, env)

    def test_oracle_first_checks_only_the_benchmark_dispatch(self):
        kernel = _toy_kernel()
        dispatcher = MultiKernelDispatcher(oracle="first")
        env = {"x": np.arange(8, dtype=np.uint8)}
        oracle = lambda e: {"y": e["x"]}  # noqa: E731
        dispatcher.dispatch(kernel, dict(env), oracle_fn=oracle)
        dispatcher.dispatch(kernel, dict(env), oracle_fn=oracle)
        assert dispatcher.stats["oracle_checks"] == 1

    def test_oracle_always_checks_every_dispatch(self):
        kernel = _toy_kernel()
        dispatcher = MultiKernelDispatcher(oracle="always")
        env = {"x": np.arange(8, dtype=np.uint8)}
        oracle = lambda e: {"y": e["x"]}  # noqa: E731
        for _ in range(3):
            dispatcher.dispatch(kernel, dict(env), oracle_fn=oracle)
        assert dispatcher.stats["oracle_checks"] == 3

    def test_oracle_divergence_raises(self):
        kernel = _toy_kernel()
        dispatcher = MultiKernelDispatcher(oracle="first")
        env = {"x": np.arange(8, dtype=np.uint8)}
        bad_oracle = lambda e: {"y": e["x"] + 1}  # noqa: E731
        with pytest.raises(CodegenDivergence, match="oracle"):
            dispatcher.dispatch(kernel, env, oracle_fn=bad_oracle)

    def test_unknown_oracle_mode_rejected(self):
        with pytest.raises(ValueError, match="oracle"):
            MultiKernelDispatcher(oracle="sometimes")


class TestExactF64Bound:
    def test_large_accumulators_fall_back_to_int64(self, compiled):
        # The small CNN is comfortably inside the 2**53 bound, so every
        # conv/fc step should take the f64 BLAS path.
        for kernel in compiled.macro_kernels.kernels.values():
            for variant in kernel.variants:
                for step in variant.steps:
                    if isinstance(step, ConvStep):
                        assert step.exact_f64
                        assert step.weights.dtype == np.float64
