"""Tests for the Neural Data Unit operations."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.isa.instruction import RotateDirection
from repro.ncore import ndu


def row(*values, size=4096):
    out = np.zeros(size, dtype=np.uint8)
    out[: len(values)] = values
    return out


class TestBypass:
    def test_copies(self):
        src = row(1, 2, 3)
        out = ndu.bypass(src)
        np.testing.assert_array_equal(out, src)
        out[0] = 99
        assert src[0] == 1  # bypass must not alias


class TestRotate:
    def test_rotate_left_moves_toward_lane_zero(self):
        src = row(10, 20, 30, size=8)
        out = ndu.rotate(src, 1, RotateDirection.LEFT)
        np.testing.assert_array_equal(out, [20, 30, 0, 0, 0, 0, 0, 10])

    def test_rotate_right(self):
        src = row(10, 20, size=8)
        out = ndu.rotate(src, 2, RotateDirection.RIGHT)
        np.testing.assert_array_equal(out, [0, 0, 10, 20, 0, 0, 0, 0])

    def test_amount_limit(self):
        with pytest.raises(ValueError):
            ndu.rotate(row(size=128), 65, RotateDirection.LEFT)

    @given(npst.arrays(np.uint8, 256), st.integers(0, 64))
    def test_left_then_right_is_identity(self, data, amount):
        out = ndu.rotate(
            ndu.rotate(data, amount, RotateDirection.LEFT), amount, RotateDirection.RIGHT
        )
        np.testing.assert_array_equal(out, data)

    @given(npst.arrays(np.uint8, 512))
    def test_full_row_rotation_composes(self, data):
        # A 512-byte rotation composed of 8 x 64-byte steps equals np.roll.
        out = data
        for _ in range(8):
            out = ndu.rotate(out, 64, RotateDirection.LEFT)
        np.testing.assert_array_equal(out, np.roll(data, -512 % data.size))


class TestBroadcast64:
    def test_broadcasts_indexed_byte_per_group(self):
        src = np.arange(256, dtype=np.uint8)  # 4 groups of 64
        out = ndu.broadcast64(src, 5)
        assert out.shape == (256,)
        np.testing.assert_array_equal(out[0:64], np.full(64, 5))
        np.testing.assert_array_equal(out[64:128], np.full(64, 69))
        np.testing.assert_array_equal(out[128:192], np.full(64, 133))

    def test_index_wraps_at_group_size(self):
        src = np.arange(128, dtype=np.uint8)
        np.testing.assert_array_equal(ndu.broadcast64(src, 64), ndu.broadcast64(src, 0))

    def test_rejects_partial_groups(self):
        with pytest.raises(ValueError):
            ndu.broadcast64(np.zeros(100, dtype=np.uint8), 0)

    @given(npst.arrays(np.uint8, 4096), st.integers(0, 63))
    def test_each_group_is_constant(self, data, index):
        out = ndu.broadcast64(data, index)
        groups = out.reshape(-1, 64)
        assert (groups == groups[:, :1]).all()
        np.testing.assert_array_equal(groups[:, 0], data.reshape(-1, 64)[:, index])


class TestCompressExpand:
    def test_dense_row_round_trip(self):
        data = np.arange(1, 65, dtype=np.uint8)
        stream = ndu.compress(data)
        np.testing.assert_array_equal(ndu.expand(stream, 64), data)

    def test_sparse_row_compresses_smaller(self):
        data = np.zeros(512, dtype=np.uint8)
        data[::37] = 5
        stream = ndu.compress(data)
        assert stream.size < data.size
        np.testing.assert_array_equal(ndu.expand(stream, 512), data)

    def test_all_zero_row(self):
        data = np.zeros(128, dtype=np.uint8)
        stream = ndu.compress(data)
        assert stream.size == 16  # one bitmap byte per 8 zeros
        np.testing.assert_array_equal(ndu.expand(stream, 128), data)

    def test_truncated_stream_rejected(self):
        with pytest.raises(ValueError):
            ndu.expand(np.array([0xFF], dtype=np.uint8), 8)

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            ndu.expand(np.zeros(0, dtype=np.uint8), 8)

    @given(npst.arrays(np.uint8, 256))
    def test_round_trip_property(self, data):
        # The decompression engine must reproduce any weight block exactly.
        np.testing.assert_array_equal(ndu.expand(ndu.compress(data), data.size), data)

    @given(
        npst.arrays(
            np.uint8, 256, elements=st.sampled_from([0, 0, 0, 0, 0, 0, 0, 1, 255])
        )
    )
    def test_sparse_compression_ratio(self, data):
        # ~12.5% overhead bitmap + nonzeros only.
        stream = ndu.compress(data)
        nonzeros = int(np.count_nonzero(data))
        assert stream.size == data.size // 8 + nonzeros


class TestMaskedMerge:
    def test_merges_where_mask_set(self):
        update = row(1, 2, 3, 4, size=4)
        previous = row(9, 9, 9, 9, size=4)
        mask = row(1, 0, 255, 0, size=4)
        out = ndu.masked_merge(update, previous, mask)
        np.testing.assert_array_equal(out, [1, 9, 3, 9])

    @given(npst.arrays(np.uint8, 64), npst.arrays(np.uint8, 64))
    def test_all_ones_mask_takes_update(self, update, previous):
        mask = np.full(64, 1, dtype=np.uint8)
        np.testing.assert_array_equal(ndu.masked_merge(update, previous, mask), update)

    @given(npst.arrays(np.uint8, 64), npst.arrays(np.uint8, 64))
    def test_zero_mask_keeps_previous(self, update, previous):
        mask = np.zeros(64, dtype=np.uint8)
        np.testing.assert_array_equal(ndu.masked_merge(update, previous, mask), previous)
