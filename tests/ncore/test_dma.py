"""Tests for the DMA engines and the driver-configured address window."""

import numpy as np
import pytest

from repro.ncore import DmaDescriptor, DmaEngine, LinearMemory, RowMemory


@pytest.fixture
def memory():
    return LinearMemory(1 << 32, bandwidth_bytes_per_cycle=40.96, latency_cycles=75)


@pytest.fixture
def rams():
    return RowMemory(64, 4096, "data"), RowMemory(64, 4096, "weight")


def descriptor(**kwargs):
    defaults = dict(
        write_to_dram=False,
        target_weight_ram=False,
        ram_row=0,
        rows=1,
        dram_addr=0,
    )
    defaults.update(kwargs)
    return DmaDescriptor(**defaults)


class TestLinearMemory:
    def test_read_write_round_trip(self, memory):
        memory.write(12345, b"hello world")
        assert memory.read(12345, 11) == b"hello world"

    def test_unwritten_memory_reads_zero(self, memory):
        assert memory.read(999, 4) == b"\x00" * 4

    def test_cross_page_access(self, memory):
        addr = (1 << 20) - 4  # straddles the 1 MB page boundary
        memory.write(addr, bytes(range(8)))
        assert memory.read(addr, 8) == bytes(range(8))

    def test_bounds_checked(self, memory):
        with pytest.raises(IndexError):
            memory.read(memory.size - 2, 4)

    def test_transfer_cycles_model(self, memory):
        # latency + bytes / bandwidth
        assert memory.transfer_cycles(4096) == 75 + int(np.ceil(4096 / 40.96))


class TestDmaDescriptor:
    def test_row_count_validated(self):
        with pytest.raises(ValueError):
            descriptor(rows=0)

    def test_num_bytes(self):
        assert descriptor(rows=3).num_bytes == 3 * 4096


class TestDmaEngine:
    def test_window_must_be_configured(self, memory, rams):
        engine = DmaEngine("rd", memory, window_bytes=1 << 30)
        with pytest.raises(RuntimeError):
            engine.start(descriptor(), *rams, now_cycle=0)

    def test_window_translation(self, memory, rams):
        # The driver maps the window at a DRAM base; user addresses are
        # window-relative (section V-D).
        data_ram, weight_ram = rams
        engine = DmaEngine("rd", memory, window_bytes=1 << 30)
        engine.configure_window(1 << 30)
        memory.write((1 << 30) + 8192, b"\x42" * 4096)
        engine.start(descriptor(dram_addr=8192, ram_row=3), data_ram, weight_ram, 0)
        assert data_ram.read_bytes(3 * 4096, 4096) == b"\x42" * 4096

    def test_window_bounds_enforced(self, memory, rams):
        engine = DmaEngine("rd", memory, window_bytes=1 << 20)
        engine.configure_window(0)
        with pytest.raises(IndexError):
            engine.start(descriptor(dram_addr=(1 << 20) - 100), *rams, now_cycle=0)

    def test_window_must_fit_in_memory(self, memory):
        engine = DmaEngine("rd", memory, window_bytes=1 << 30)
        with pytest.raises(ValueError):
            engine.configure_window(memory.size - 100)

    def test_write_to_dram(self, memory, rams):
        data_ram, weight_ram = rams
        data_ram.write_bytes(0, b"\x07" * 4096)
        engine = DmaEngine("wr", memory, window_bytes=1 << 30)
        engine.configure_window(0)
        engine.start(
            descriptor(write_to_dram=True, dram_addr=4096), data_ram, weight_ram, 0
        )
        assert memory.read(4096, 4096) == b"\x07" * 4096

    def test_weight_ram_targeted(self, memory, rams):
        data_ram, weight_ram = rams
        engine = DmaEngine("rd", memory, window_bytes=1 << 30)
        engine.configure_window(0)
        memory.write(0, b"\x09" * 4096)
        engine.start(descriptor(target_weight_ram=True), data_ram, weight_ram, 0)
        assert weight_ram.read_bytes(0, 4096) == b"\x09" * 4096
        assert data_ram.read_bytes(0, 4096) == b"\x00" * 4096

    def test_busy_until_advances_with_transfers(self, memory, rams):
        engine = DmaEngine("rd", memory, window_bytes=1 << 30)
        engine.configure_window(0)
        done1 = engine.start(descriptor(rows=4), *rams, now_cycle=0)
        assert done1 == memory.transfer_cycles(4 * 4096)
        # A second transfer queues behind the first.
        done2 = engine.start(descriptor(rows=1, ram_row=8), *rams, now_cycle=0)
        assert done2 == done1 + memory.transfer_cycles(4096)

    def test_idle_engine_restarts_from_now(self, memory, rams):
        engine = DmaEngine("rd", memory, window_bytes=1 << 30)
        engine.configure_window(0)
        engine.start(descriptor(), *rams, now_cycle=0)
        first_done = engine.busy_until
        done = engine.start(descriptor(ram_row=1), *rams, now_cycle=first_done + 1000)
        assert done == first_done + 1000 + memory.transfer_cycles(4096)

    def test_l3_path_adds_latency(self, memory, rams):
        direct = DmaEngine("rd", memory, window_bytes=1 << 30, l3_extra_latency=20)
        direct.configure_window(0)
        through = DmaEngine("rd", memory, window_bytes=1 << 30, l3_extra_latency=20)
        through.configure_window(0)
        direct.start(descriptor(), *rams, now_cycle=0)
        through.start(descriptor(through_l3=True, ram_row=1), *rams, now_cycle=0)
        # "The extra hop through the L3 minimally increases the latency".
        assert through.busy_until == direct.busy_until + 20

    def test_statistics(self, memory, rams):
        engine = DmaEngine("rd", memory, window_bytes=1 << 30)
        engine.configure_window(0)
        engine.start(descriptor(rows=2), *rams, now_cycle=0)
        engine.start(descriptor(rows=1, ram_row=4), *rams, now_cycle=0)
        assert engine.transfers == 2
        assert engine.bytes_moved == 3 * 4096
