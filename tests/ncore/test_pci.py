"""Tests for the Ncore PCI device model."""

import pytest

from repro.ncore import NcorePciDevice
from repro.ncore.pci import CLASS_COPROCESSOR, PciAccessError, VENDOR_ID


@pytest.fixture
def device():
    return NcorePciDevice(sram_bytes=16 * 1024 * 1024)


class TestIdentity:
    def test_reports_as_coprocessor(self, device):
        # Ncore "is detected through the system's typical PCI enumeration
        # as a coprocessor type" (section V-D).
        assert device.is_coprocessor
        assert device.config_read(0x08) >> 16 == CLASS_COPROCESSOR

    def test_vendor_device_id_word(self, device):
        word = device.config_read(0x00)
        assert word & 0xFFFF == VENDOR_ID


class TestBars:
    def test_assignment_is_naturally_aligned(self, device):
        device.assign_bars(0xE000_0000)
        for bar in device.bars:
            assert bar.address is not None
            assert bar.address % bar.size == 0

    def test_sram_aperture_covers_16mb(self, device):
        assert device.bars[2].size == 16 * 1024 * 1024

    def test_assignment_returns_next_free(self, device):
        end = device.assign_bars(0xE000_0000)
        last = device.bars[-1]
        assert end == last.address + last.size


class TestProtectedFields:
    def test_user_mode_cannot_touch_power(self, device):
        with pytest.raises(PciAccessError):
            device.config_write(0x40, 1, kernel_mode=False)

    def test_user_mode_cannot_move_dma_window(self, device):
        with pytest.raises(PciAccessError):
            device.config_write(0x44, 0x1000, kernel_mode=False)

    def test_kernel_mode_controls_power(self, device):
        device.config_write(0x40, 1, kernel_mode=True)
        assert device.powered_on
        device.config_write(0x40, 0, kernel_mode=True)
        assert not device.powered_on

    def test_kernel_mode_configures_dma_window(self, device):
        device.config_write(0x44, 0xDEAD0000, kernel_mode=True)
        device.config_write(0x48, 0x1, kernel_mode=True)
        assert device.dma_window_base == 0x1_DEAD0000
        assert device.config_read(0x44) == 0xDEAD0000
        assert device.config_read(0x48) == 0x1

    def test_unprotected_writes_ignored(self, device):
        device.config_write(0x10, 0x12345678, kernel_mode=False)  # no error
