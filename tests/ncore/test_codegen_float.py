"""Tier-3 codegen over the bf16 float region: GNMT and the float tails.

The quantized zoo gets its bit-exactness contract from
``test_codegen.py``; this file pins the same contract for the float
lowering family — ``lstm_cell`` / ``lstm_step`` macro-steps, the
``seqfuse`` variant that computes each encoder layer's sequence
projection once per chain, embedding gathers, slice/concat/reshape
plumbing and the x86-resident float tails (batch_norm, softmax, mean).
Float outputs follow the interpreter's write-back semantics exactly:
anything typed bfloat16 is rounded through ``to_bfloat16`` after every
step, so the dispatcher's byte comparison is meaningful.
"""

import numpy as np
import pytest

from repro.compiler import compile_graph, optimize_graph
from repro.graph.gir import Node
from repro.models.common import GraphBuilder
from repro.models.gnmt import build_gnmt
from repro.ncore.codegen import (
    EmbeddingStep,
    FloatStep,
    LstmCellStep,
    LstmSeqStep,
    SeqFuseStep,
    STRATEGY_SEQFUSE,
)
from repro.quantize import convert_to_bf16
from repro.runtime import NcoreExecutor, execute_quantized


def tiny_gnmt(seq_len=4, hidden=32, layers=2, vocab=100):
    graph = build_gnmt(seq_len=seq_len, hidden=hidden, layers=layers, vocab=vocab)
    optimize_graph(graph, in_place=True)
    return convert_to_bf16(graph)


def gnmt_feeds(graph, seed=7):
    rng = np.random.default_rng(seed)
    return {
        name: rng.integers(0, 90, size=graph.tensor(name).shape).astype(np.int32)
        for name in graph.inputs
    }


@pytest.fixture(scope="module")
def compiled():
    return compile_graph(tiny_gnmt(), cache=None, pipeline="O2")


class TestFloatCoverage:
    def test_full_coverage_on_gnmt(self, compiled):
        kset = compiled.macro_kernels
        total = len(compiled.model.segments)
        assert kset.coverage_fraction(total) == 1.0
        assert kset.uncovered_reason_counts() == {}

    def test_codegen_stage_records_float_stats(self, compiled):
        stats = compiled.context.stage_stats("codegen").changes
        assert stats["coverage"] == 1.0
        assert stats["float_steps"] > 0
        assert stats["seqfuse_variants"] >= 1

    def test_encoder_kernel_grows_a_seqfuse_variant(self, compiled):
        fused = [
            kernel
            for kernel in compiled.macro_kernels.kernels.values()
            if STRATEGY_SEQFUSE in kernel.strategies()
        ]
        assert fused, "expected the LSTM-bearing segment to offer seqfuse"
        for kernel in fused:
            by_strategy = {v.strategy: v for v in kernel.variants}
            nest, seq = by_strategy["nest"], by_strategy[STRATEGY_SEQFUSE]
            # Fusion collapses chains of lstm_step into single steps.
            assert len(seq.steps) < len(nest.steps)
            assert any(isinstance(s, SeqFuseStep) for s in seq.steps)
            assert any(isinstance(s, LstmSeqStep) for s in nest.steps)
            assert any(isinstance(s, LstmCellStep) for s in nest.steps)

    def test_x86_embedding_segment_is_covered(self, compiled):
        steps = [
            step
            for kernel in compiled.macro_kernels.kernels.values()
            for variant in kernel.variants
            for step in variant.steps
        ]
        assert any(isinstance(step, EmbeddingStep) for step in steps)

    def test_unsupported_float_op_reports_a_reason(self):
        b = GraphBuilder("floatpool")
        x = b.input("x", (1, 8, 8, 4))
        y = b.max_pool(x, 2, 2)
        graph = convert_to_bf16(b.finish([y]))
        result = compile_graph(graph, cache=None, pipeline="O2")
        counts = result.macro_kernels.uncovered_reason_counts()
        assert sum(counts.values()) == len(result.macro_kernels.uncovered) > 0
        assert any("max_pool" in reason for reason in counts)


class TestFloatBitExactness:
    def test_gnmt_matches_the_interpreter_bit_for_bit(self, compiled):
        graph = compiled.model.graph
        feeds = gnmt_feeds(graph)
        want = execute_quantized(graph, feeds)
        executor = NcoreExecutor(
            compiled.model, verify=False, policy="codegen",
            macro_kernels=compiled.macro_kernels,
        )
        try:
            first = executor.execute(feeds).outputs
            steady = executor.execute(feeds).outputs
            assert executor.last_tier == "codegen"
            for name, value in want.items():
                expected = np.asarray(value)
                for got in (first, steady):
                    out = np.asarray(got[name])
                    assert out.dtype == expected.dtype, name
                    assert out.tobytes() == expected.tobytes(), name
        finally:
            executor.close()

    def test_float_tails_match_the_interpreter(self):
        # fc -> batch_norm -> softmax -> mean: the x86 float tail family.
        b = GraphBuilder("floattail", seed=5)
        x = b.input("x", (1, 6, 6, 3))
        y = b.conv(x, 8, 3, batch_norm=True, activation="relu")
        y = b.global_mean(y)
        y = b.fully_connected(y, 10, activation="tanh")
        y = b.softmax(y)
        graph = convert_to_bf16(b.finish([y]))
        result = compile_graph(graph, cache=None, pipeline="O2")
        rng = np.random.default_rng(2)
        feeds = {"x": rng.uniform(-1, 1, size=(1, 6, 6, 3)).astype(np.float32)}
        want = execute_quantized(result.model.graph, feeds)
        executor = NcoreExecutor(
            result.model, verify=False, policy="codegen",
            macro_kernels=result.macro_kernels,
        )
        try:
            got = executor.execute(feeds).outputs
            for name, value in want.items():
                assert np.asarray(got[name]).tobytes() == \
                    np.asarray(value).tobytes(), name
        finally:
            executor.close()


class TestFloatObservability:
    def test_attrib_stamps_codegen_on_float_segments(self, compiled):
        from repro.obs.attrib import install_attrib

        feeds = gnmt_feeds(compiled.model.graph)
        with install_attrib() as collector:
            executor = NcoreExecutor(
                compiled.model, verify=False, policy="codegen",
                macro_kernels=compiled.macro_kernels,
            )
            try:
                executor.execute(feeds)
            finally:
                executor.close()
        tiers = {record.get("tier") for record in collector.records}
        assert "codegen" in tiers

    def test_float_steps_pickle_small(self, compiled):
        # Float steps read weights from the executor-seeded environment
        # instead of baking them in, so the sidecar artifact stays small.
        import pickle

        blob = pickle.dumps(compiled.macro_kernels)
        assert len(blob) < 256 * 1024

    def test_ir_dump_reports_coverage(self):
        from repro.compiler.irdump import dump_context

        result = compile_graph(
            tiny_gnmt(), cache=None, pipeline="O2", collect_ir=True
        )
        dump = dump_context(result.context)
        assert "coverage 1.00" in dump

    def test_float_step_rounding_matches_contract(self):
        from repro.dtypes.bfloat16 import to_bfloat16
        from repro.ncore.codegen import _round_bf16

        rng = np.random.default_rng(0)
        x = rng.standard_normal(64).astype(np.float32)
        assert np.array_equal(_round_bf16(x, True), to_bfloat16(x))
        assert np.array_equal(_round_bf16(x, False), x)


class TestFloatStepExports:
    def test_float_family_is_public(self):
        from repro.ncore import codegen

        for name in (
            "FloatStep", "FloatEvalStep", "LstmCellStep", "LstmSeqStep",
            "SeqFuseStep", "CellFuseStep", "STRATEGY_SEQFUSE",
        ):
            assert name in codegen.__all__
        assert issubclass(codegen.LstmCellStep, FloatStep)
