"""The resumable ``Ncore.step`` API: budgets and state carry-over."""

import numpy as np
import pytest

from repro.isa import assemble
from repro.ncore import MachineRunResult, Ncore

PROGRAM = (
    "setaddr a0, 0\nsetaddr a1, 0\nsetaddr a6, 1\n"
    "loop 48 {\n  mac.uint8 dram[a0], wtram[a1]\n}\n"
    "requant.uint8 relu\nstore a6\nhalt"
)


def fresh_machine() -> Ncore:
    machine = Ncore()
    machine.write_data_ram(0, bytes(np.full(4096, 2, np.uint8)))
    machine.write_weight_ram(0, bytes(np.full(4096, 3, np.uint8)))
    return machine


def run_stepped(machine: Ncore, budget: int) -> list[MachineRunResult]:
    machine.load_program(assemble(PROGRAM))
    steps = []
    while not machine.halted:
        result = machine.step(budget)
        steps.append(result)
        if result.cycles == 0 and not machine.halted:
            raise AssertionError("step made no progress")
    return steps


class TestStep:
    def test_budget_exhaustion_reports_cycle_budget(self):
        machine = fresh_machine()
        machine.load_program(assemble(PROGRAM))
        result = machine.step(4)
        assert not result.halted
        assert result.stop_reason == "cycle_budget"
        assert result.cycles >= 4

    def test_final_step_reports_halt(self):
        steps = run_stepped(fresh_machine(), budget=16)
        assert len(steps) > 1
        assert all(s.stop_reason == "cycle_budget" for s in steps[:-1])
        assert steps[-1].halted
        assert steps[-1].stop_reason == "halt"

    @pytest.mark.parametrize("budget", [1, 7, 64, 10_000])
    def test_any_slicing_matches_one_blocking_run(self, budget):
        reference_machine = fresh_machine()
        reference = reference_machine.execute_program(assemble(PROGRAM))
        stepped_machine = fresh_machine()
        steps = run_stepped(stepped_machine, budget)
        assert sum(s.cycles for s in steps) == reference.cycles
        assert sum(s.instructions for s in steps) == reference.instructions
        assert sum(s.issues for s in steps) == reference.issues
        # Architectural state is identical: the stored output row matches.
        assert stepped_machine.read_data_ram(4096, 4096) == \
            reference_machine.read_data_ram(4096, 4096)

    def test_step_returns_deltas_not_totals(self):
        machine = fresh_machine()
        machine.load_program(assemble(PROGRAM))
        first = machine.step(16)
        second = machine.step(16)
        assert machine.total_cycles == first.cycles + second.cycles

    def test_run_is_a_thin_wrapper_over_step(self):
        run_result = fresh_machine().execute_program(assemble(PROGRAM))
        machine = fresh_machine()
        machine.load_program(assemble(PROGRAM))
        step_result = machine.step()
        assert step_result.cycles == run_result.cycles
        assert step_result.halted and run_result.halted


class TestRunResultAliasRemoved:
    def test_the_deprecated_alias_is_gone(self):
        # The PR-3 ``RunResult`` module alias (and its warn-once
        # ``__getattr__`` shim) has been removed: the machine-level
        # result is ``MachineRunResult``, and the runtime-level
        # ``repro.runtime.delegate.RunResult`` is the only ``RunResult``.
        import repro.ncore.machine as machine_module

        with pytest.raises(AttributeError):
            machine_module.RunResult

    def test_unknown_attribute_still_raises(self):
        import repro.ncore.machine as machine_module

        with pytest.raises(AttributeError):
            machine_module.NoSuchThing

    def test_machine_returns_the_renamed_class(self):
        result = fresh_machine().execute_program(assemble("halt"))
        assert isinstance(result, MachineRunResult)
