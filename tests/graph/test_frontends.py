"""Tests for the GCL frontends and GIR serialization."""

import numpy as np
import pytest

from repro.graph import GraphError, execute_float
from repro.graph.frontends import (
    import_tf_like,
    import_torch_like,
    load_graph,
    save_graph,
)
from repro.graph.frontends.torch_like import nchw_to_nhwc, nhwc_to_nchw

RNG = np.random.default_rng(17)


def tf_model(padding="SAME"):
    w = RNG.normal(size=(3, 3, 3, 8)).astype(np.float32) * 0.2
    return {
        "inputs": ["x"],
        "outputs": ["out"],
        "tensors": {
            "x": {"shape": [1, 9, 9, 3]},
            "w": {"shape": [3, 3, 3, 8], "data": w},
            "c": {"shape": [1, 9, 9, 8] if padding == "SAME" else [1, 7, 7, 8]},
            "out": {"shape": [1, 9, 9, 8] if padding == "SAME" else [1, 7, 7, 8]},
        },
        "operators": [
            {
                "op": "CONV_2D",
                "inputs": ["x", "w"],
                "outputs": ["c"],
                "padding": padding,
                "fused_activation": "NONE",
            },
            {"op": "RELU", "inputs": ["c"], "outputs": ["out"]},
        ],
    }


class TestTfFrontend:
    def test_import_and_execute(self):
        g = import_tf_like(tf_model())
        x = RNG.normal(size=(1, 9, 9, 3)).astype(np.float32)
        out = execute_float(g, {"x": x})["out"]
        assert out.shape == (1, 9, 9, 8)
        assert (out >= 0).all()

    def test_same_padding_resolved_tf_style(self):
        # 9 input, stride 2, k 3 -> out 5: total pad 2... asymmetric case:
        # 10 input, stride 2, k 3 -> out 5, total pad 1 -> (0, 1): the
        # extra pixel goes AFTER (bottom/right) in TF.
        model = tf_model()
        model["tensors"]["x"]["shape"] = [1, 10, 10, 3]
        model["tensors"]["c"]["shape"] = [1, 5, 5, 8]
        model["tensors"]["out"]["shape"] = [1, 5, 5, 8]
        model["operators"][0]["stride"] = (2, 2)
        g = import_tf_like(model)
        conv = g.node("conv2d_0")
        assert conv.attrs["padding"] == ((0, 1), (0, 1))

    def test_valid_padding(self):
        g = import_tf_like(tf_model(padding="VALID"))
        assert g.node("conv2d_0").attrs["padding"] == ((0, 0), (0, 0))

    def test_fused_activation(self):
        model = tf_model()
        model["operators"][0]["fused_activation"] = "RELU6"
        g = import_tf_like(model)
        assert g.node("conv2d_0").attrs["activation"] == "relu6"

    def test_unknown_op_rejected(self):
        model = tf_model()
        model["operators"][0]["op"] = "GRU"
        with pytest.raises(GraphError, match="unsupported"):
            import_tf_like(model)

    def test_compiles_through_the_stack(self):
        from repro.quantize import calibrate, quantize_graph
        from repro.runtime import compile_model

        g = import_tf_like(tf_model())
        batch = {"x": RNG.normal(size=(1, 9, 9, 3)).astype(np.float32)}
        qg = quantize_graph(g, calibrate(g, [batch]))
        compiled = compile_model(qg, optimize=False)
        assert compiled.ncore_segments


class TestTorchFrontend:
    def _model(self):
        w_oihw = RNG.normal(size=(8, 3, 3, 3)).astype(np.float32) * 0.2
        return {
            "inputs": ["x"],
            "outputs": ["y"],
            "tensors": {
                "x": {"shape": [1, 3, 9, 9]},        # NCHW
                "w": {"data": w_oihw, "role": "conv_weight"},
                "y": {"shape": [1, 8, 9, 9]},
            },
            "operators": [
                {
                    "op": "conv2d",
                    "inputs": ["x", "w"],
                    "outputs": ["y"],
                    "padding": 1,
                }
            ],
        }, w_oihw

    def test_layouts_normalized(self):
        model, w_oihw = self._model()
        g = import_torch_like(model)
        assert g.tensor("x").shape == (1, 9, 9, 3)   # NHWC
        assert g.tensor("w").shape == (3, 3, 3, 8)   # HWIO
        np.testing.assert_array_equal(
            g.tensor("w").data, np.transpose(w_oihw, (2, 3, 1, 0))
        )

    def test_numerics_match_direct_nchw_convolution(self):
        model, w_oihw = self._model()
        g = import_torch_like(model)
        x_nchw = RNG.normal(size=(1, 3, 9, 9)).astype(np.float32)
        out = execute_float(g, {"x": nchw_to_nhwc(x_nchw)})["y"]
        out_nchw = nhwc_to_nchw(out)
        # Direct torch-convention reference.
        from repro.graph.reference import conv2d

        expected = conv2d(
            nchw_to_nhwc(x_nchw),
            np.transpose(w_oihw, (2, 3, 1, 0)),
            padding=((1, 1), (1, 1)),
        )
        np.testing.assert_allclose(out_nchw, nhwc_to_nchw(expected), rtol=1e-5)

    def test_symmetric_padding_convention(self):
        model, _ = self._model()
        model["operators"][0]["padding"] = 2
        model["tensors"]["y"]["shape"] = [1, 8, 11, 11]
        g = import_torch_like(model)
        assert g.node("conv2d_0").attrs["padding"] == ((2, 2), (2, 2))

    def test_concat_dim_translated(self):
        model = {
            "inputs": ["a", "b"],
            "outputs": ["c"],
            "tensors": {
                "a": {"shape": [1, 2, 4, 4]},
                "b": {"shape": [1, 3, 4, 4]},
                "c": {"shape": [1, 5, 4, 4]},
            },
            "operators": [
                {"op": "cat", "inputs": ["a", "b"], "outputs": ["c"], "dim": 1}
            ],
        }
        g = import_torch_like(model)
        # NCHW channel dim 1 becomes NHWC axis 3.
        assert g.node("concat_0").attrs["axis"] == 3

    def test_transpose_round_trip(self):
        x = RNG.normal(size=(2, 3, 4, 5)).astype(np.float32)
        np.testing.assert_array_equal(nhwc_to_nchw(nchw_to_nhwc(x)), x)


class TestSerialization:
    def test_round_trip_small_cnn(self, tmp_path):
        from tests.quantize.test_convert import small_cnn

        g = small_cnn()
        save_graph(g, tmp_path / "model")
        loaded = load_graph(tmp_path / "model")
        assert loaded.name == g.name
        assert [n.name for n in loaded.nodes] == [n.name for n in g.nodes]
        feeds = {"x": RNG.normal(size=(1, 8, 8, 3)).astype(np.float32)}
        np.testing.assert_array_equal(
            list(execute_float(loaded, feeds).values())[0],
            list(execute_float(g, feeds).values())[0],
        )

    def test_round_trip_quantized_graph(self, tmp_path):
        from repro.quantize import calibrate, quantize_graph
        from repro.runtime import execute_quantized
        from tests.quantize.test_convert import calibration_batches, small_cnn

        g = small_cnn()
        qg = quantize_graph(g, calibrate(g, calibration_batches()))
        save_graph(qg, tmp_path / "model_q")
        loaded = load_graph(tmp_path / "model_q")
        # Quantization parameters survive serialization.
        conv = loaded.node("conv1")
        assert loaded.tensor(conv.outputs[0]).quant == qg.tensor(conv.outputs[0]).quant
        feeds = calibration_batches(count=1)[0]
        np.testing.assert_array_equal(
            list(execute_quantized(loaded, feeds).values())[0],
            list(execute_quantized(qg, feeds).values())[0],
        )

    def test_attrs_round_trip_exactly(self, tmp_path):
        from tests.quantize.test_convert import small_cnn

        g = small_cnn()
        save_graph(g, tmp_path / "m")
        loaded = load_graph(tmp_path / "m")
        for a, b in zip(g.nodes, loaded.nodes, strict=True):
            assert a.attrs == b.attrs

    def test_version_check(self, tmp_path):
        import json

        from tests.quantize.test_convert import small_cnn

        json_path, _ = save_graph(small_cnn(), tmp_path / "m")
        doc = json.loads(json_path.read_text())
        doc["format_version"] = 99
        json_path.write_text(json.dumps(doc))
        with pytest.raises(GraphError, match="version"):
            load_graph(tmp_path / "m")

    def test_per_channel_quant_round_trip(self, tmp_path):
        from repro.dtypes import ChannelQuantParams
        from repro.quantize import calibrate, quantize_graph
        from tests.quantize.test_convert import calibration_batches, small_cnn

        g = small_cnn()
        qg = quantize_graph(
            g, calibrate(g, calibration_batches()), per_channel_weights=True
        )
        save_graph(qg, tmp_path / "pc")
        loaded = load_graph(tmp_path / "pc")
        conv = loaded.node("conv1")
        quant = loaded.tensor(conv.inputs[1]).quant
        assert isinstance(quant, ChannelQuantParams)
        assert quant == qg.tensor(conv.inputs[1]).quant


class TestTorchWeightRoles:
    def test_depthwise_weight_transposed(self):
        w = RNG.normal(size=(6, 1, 3, 3)).astype(np.float32)  # (C,1,kh,kw)
        model = {
            "inputs": ["x"],
            "outputs": ["y"],
            "tensors": {
                "x": {"shape": [1, 6, 8, 8]},
                "w": {"data": w, "role": "depthwise_weight"},
                "y": {"shape": [1, 6, 8, 8]},
            },
            "operators": [
                {"op": "conv2d_depthwise", "inputs": ["x", "w"], "outputs": ["y"], "padding": 1}
            ],
        }
        g = import_torch_like(model)
        assert g.tensor("w").shape == (3, 3, 6)  # HWC
        np.testing.assert_array_equal(
            g.tensor("w").data, np.transpose(w[:, 0], (1, 2, 0))
        )
        out = execute_float(g, {"x": RNG.normal(size=(1, 8, 8, 6)).astype(np.float32)})
        assert out["y"].shape == (1, 8, 8, 6)

    def test_linear_weight_transposed(self):
        w = RNG.normal(size=(10, 32)).astype(np.float32)  # torch (out, in)
        model = {
            "inputs": ["x"],
            "outputs": ["y"],
            "tensors": {
                "x": {"shape": [1, 32]},
                "w": {"data": w, "role": "linear_weight"},
                "y": {"shape": [1, 10]},
            },
            "operators": [{"op": "linear", "inputs": ["x", "w"], "outputs": ["y"]}],
        }
        g = import_torch_like(model)
        assert g.tensor("w").shape == (32, 10)
        x = RNG.normal(size=(1, 32)).astype(np.float32)
        np.testing.assert_allclose(
            execute_float(g, {"x": x})["y"], x @ w.T, rtol=1e-5
        )

    def test_pool_import(self):
        model = {
            "inputs": ["x"],
            "outputs": ["y"],
            "tensors": {
                "x": {"shape": [1, 2, 8, 8]},
                "y": {"shape": [1, 2, 4, 4]},
            },
            "operators": [
                {"op": "max_pool2d", "inputs": ["x"], "outputs": ["y"], "kernel_size": 2}
            ],
        }
        g = import_torch_like(model)
        node = g.nodes[0]
        assert node.op == "max_pool"
        assert node.attrs["ksize"] == (2, 2)
        assert node.attrs["stride"] == (2, 2)  # defaults to the kernel size
