"""Tests for scratchpad memory planning and weight scheduling."""

import numpy as np
import pytest

from repro.graph import Graph, Node, Tensor, TensorType, partition, plan_memory
from repro.graph.planner import PlanningError, RowRange
from repro.ncore import NcoreConfig


def chain_graph(layers=3, features=1024, weight_mb_per_layer=1.0):
    """fc chain with configurable weight footprint."""
    g = Graph("chain")
    g.add_input("x", TensorType((1, features)))
    rows = int(weight_mb_per_layer * 1024 * 1024 / 4)  # float32 elements
    in_features = rows // features
    prev = "x"
    for i in range(layers):
        w = f"w{i}"
        out = f"t{i}"
        g.add_constant(
            w, np.zeros((features, in_features * features // features), np.float32)
        )
        # Use a plain (features, features)-ish weight sized to the target MB.
        g.tensors[w].data = np.zeros(
            (features, max(1, rows // features)), dtype=np.float32
        )
        g.tensors[w].type = TensorType(g.tensors[w].data.shape, "float32")
        g.add_tensor(Tensor(out, TensorType((1, g.tensors[w].data.shape[1]))))
        g.add_node(Node(f"fc{i}", "fully_connected", [prev, w], [out]))
        prev = out
        features = g.tensors[w].data.shape[1]
    g.mark_output(prev)
    return g


def small_graph():
    g = Graph()
    g.add_input("x", TensorType((1, 32, 32, 8)))
    g.add_constant("w", np.zeros((3, 3, 8, 8), np.float32))
    g.add_tensor(Tensor("a", TensorType((1, 32, 32, 8))))
    g.add_tensor(Tensor("b", TensorType((1, 32, 32, 8))))
    g.add_node(Node("c1", "conv2d", ["x", "w"], ["a"], {"padding": ((1, 1), (1, 1))}))
    g.add_node(Node("c2", "conv2d", ["a", "w"], ["b"], {"padding": ((1, 1), (1, 1))}))
    g.mark_output("b")
    return g


class TestActivationAllocation:
    def test_allocations_do_not_overlap_while_live(self):
        g = small_graph()
        (segment,) = partition(g)
        plan = plan_memory(g, segment)
        # x and a are simultaneously live (conv c1), a and b likewise.
        for pair in (("x", "a"), ("a", "b")):
            r0, r1 = plan.data_allocs[pair[0]], plan.data_allocs[pair[1]]
            assert r0.end <= r1.start or r1.end <= r0.start

    def test_dead_tensor_rows_reused(self):
        g = small_graph()
        (segment,) = partition(g)
        plan = plan_memory(g, segment)
        # x dies after c1; b can reuse its rows.
        assert plan.data_allocs["b"].start == plan.data_allocs["x"].start

    def test_capacity_exceeded_raises(self):
        g = small_graph()
        (segment,) = partition(g)
        with pytest.raises(PlanningError):
            plan_memory(g, segment, NcoreConfig(sram_rows=2))


class TestWeightPinning:
    def test_small_weights_pinned(self):
        # The MobileNet case: weights fit -> promoted to persistent.
        g = chain_graph(layers=3, weight_mb_per_layer=1.0)
        (segment,) = partition(g)
        plan = plan_memory(g, segment)
        assert plan.weights_pinned
        assert plan.prefetches == []
        assert len(plan.weight_allocs) == 3

    def test_pinned_weights_do_not_overlap(self):
        g = chain_graph(layers=3, weight_mb_per_layer=1.0)
        (segment,) = partition(g)
        plan = plan_memory(g, segment)
        ranges = sorted(plan.weight_allocs.values(), key=lambda r: r.start)
        for a, b in zip(ranges, ranges[1:], strict=False):
            assert a.end <= b.start

    def test_large_weights_streamed_with_prefetch(self):
        # The ResNet case: > 8 MB of weights -> double-buffered streaming.
        g = chain_graph(layers=6, weight_mb_per_layer=2.5)
        (segment,) = partition(g)
        plan = plan_memory(g, segment)
        assert not plan.weights_pinned
        assert len(plan.prefetches) == 6
        # Prefetches are as early as possible: one layer ahead.
        for prefetch in plan.prefetches:
            assert prefetch.issue_at_node <= max(0, prefetch.needed_at_node - 1)

    def test_oversized_single_layer_tiled(self):
        # A layer whose weights exceed half the weight RAM is split into
        # chunked prefetches (intra-layer weight tiling).
        g = chain_graph(layers=2, weight_mb_per_layer=5.0)
        (segment,) = partition(g)
        plan = plan_memory(g, segment)
        assert not plan.weights_pinned
        assert len(plan.prefetches) > 2  # more prefetches than layers
        half = 2048 // 2
        assert all(r.rows <= half for r in plan.weight_allocs.values())
        # The chunked transfers still move every byte exactly once.
        total = sum(p.num_bytes for p in plan.prefetches)
        weight_bytes = sum(
            g.tensor(n).type.num_bytes
            for n in g.tensors
            if g.tensor(n).is_constant
        )
        assert total >= weight_bytes


class TestRowRange:
    def test_end(self):
        assert RowRange(10, 5).end == 15
