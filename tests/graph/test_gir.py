"""Tests for the graph IR structure and statistics."""

import numpy as np
import pytest

from repro.dtypes import NcoreDType
from repro.graph import Graph, GraphError, Node, Tensor, TensorType


def simple_conv_graph():
    g = Graph("test")
    g.add_input("x", TensorType((1, 8, 8, 3)))
    g.add_constant("w", np.zeros((3, 3, 3, 16), dtype=np.float32))
    g.add_tensor(Tensor("y", TensorType((1, 8, 8, 16))))
    g.add_node(
        Node("conv", "conv2d", ["x", "w"], ["y"], {"padding": ((1, 1), (1, 1))})
    )
    g.mark_output("y")
    return g


class TestTensorType:
    def test_num_bytes_float32(self):
        assert TensorType((2, 3), "float32").num_bytes == 24

    def test_num_bytes_quantized(self):
        assert TensorType((10,), NcoreDType.UINT8).num_bytes == 10
        assert TensorType((10,), NcoreDType.INT16).num_bytes == 20

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(GraphError):
            TensorType((0, 3))


class TestGraphConstruction:
    def test_valid_graph_builds(self):
        g = simple_conv_graph()
        g.validate()
        assert len(g.nodes) == 1

    def test_duplicate_tensor_rejected(self):
        g = Graph()
        g.add_input("x", TensorType((1,)))
        with pytest.raises(GraphError):
            g.add_input("x", TensorType((1,)))

    def test_unknown_op_rejected(self):
        with pytest.raises(GraphError):
            Node("n", "frobnicate", [], [])

    def test_node_reading_unknown_tensor_rejected(self):
        g = Graph()
        g.add_tensor(Tensor("out", TensorType((1,))))
        with pytest.raises(GraphError):
            g.add_node(Node("n", "relu", ["missing"], ["out"]))

    def test_duplicate_node_name_rejected(self):
        g = simple_conv_graph()
        with pytest.raises(GraphError):
            g.add_node(Node("conv", "identity", ["x"], ["y"]))

    def test_unordered_graph_fails_validation(self):
        g = Graph()
        g.add_input("x", TensorType((1,)))
        g.add_tensor(Tensor("a", TensorType((1,))))
        g.add_tensor(Tensor("b", TensorType((1,))))
        g.add_node(Node("second", "relu", ["a"], ["b"]))  # reads before produced
        g.add_node(Node("first", "relu", ["x"], ["a"]))
        g.mark_output("b")
        with pytest.raises(GraphError, match="topologically"):
            g.validate()

    def test_validate_rejects_unknown_tensor_reference(self):
        # a pass that edits node.inputs in place can dangle a reference
        # add_node would have rejected
        g = simple_conv_graph()
        g.nodes[0].inputs[0] = "ghost"
        with pytest.raises(GraphError, match="unknown tensor 'ghost'"):
            g.validate()

    def test_validate_rejects_duplicate_node_names(self):
        g = simple_conv_graph()
        g.nodes.append(Node("conv", "identity", ["x"], ["y"]))
        with pytest.raises(GraphError, match="duplicate node name"):
            g.validate()

    def test_validate_rejects_multi_producer(self):
        g = simple_conv_graph()
        g.add_node(Node("again", "identity", ["x"], ["y"]))
        with pytest.raises(GraphError, match="produced more than once"):
            g.validate()


class TestQueries:
    def test_producer_and_consumers(self):
        g = simple_conv_graph()
        assert g.producer("y").name == "conv"
        assert g.producer("x") is None
        assert [n.name for n in g.consumers("x")] == ["conv"]

    def test_find_nodes(self):
        g = simple_conv_graph()
        assert len(g.find_nodes("conv2d")) == 1
        assert g.find_nodes("relu") == []


class TestMutation:
    def test_replace_uses(self):
        g = simple_conv_graph()
        g.add_tensor(Tensor("y2", TensorType((1, 8, 8, 16))))
        g.replace_uses("y", "y2")
        assert g.outputs == ["y2"]

    def test_prune_dead_tensors(self):
        g = simple_conv_graph()
        g.add_tensor(Tensor("orphan", TensorType((1,))))
        assert g.prune_dead_tensors() == 1
        assert "orphan" not in g.tensors


class TestStatistics:
    def test_conv_macs(self):
        g = simple_conv_graph()
        # 1 * 8 * 8 * 16 outputs * 3*3*3 taps
        assert g.count_macs() == 8 * 8 * 16 * 27

    def test_depthwise_macs(self):
        g = Graph()
        g.add_input("x", TensorType((1, 4, 4, 8)))
        g.add_constant("w", np.zeros((3, 3, 8), dtype=np.float32))
        g.add_tensor(Tensor("y", TensorType((1, 4, 4, 8))))
        g.add_node(
            Node("dw", "depthwise_conv2d", ["x", "w"], ["y"], {"padding": ((1, 1), (1, 1))})
        )
        g.mark_output("y")
        assert g.count_macs() == 4 * 4 * 8 * 9

    def test_fully_connected_macs(self):
        g = Graph()
        g.add_input("x", TensorType((2, 100)))
        g.add_constant("w", np.zeros((100, 10), dtype=np.float32))
        g.add_tensor(Tensor("y", TensorType((2, 10))))
        g.add_node(Node("fc", "fully_connected", ["x", "w"], ["y"]))
        g.mark_output("y")
        assert g.count_macs() == 2 * 100 * 10

    def test_weight_count_dedupes_shared_constants(self):
        g = Graph()
        g.add_input("x", TensorType((1, 100)))
        g.add_constant("w", np.zeros((100, 100), dtype=np.float32))
        for i in range(2):  # same weights used twice
            g.add_tensor(Tensor(f"y{i}", TensorType((1, 100))))
        g.add_node(Node("fc0", "fully_connected", ["x", "w"], ["y0"]))
        g.add_node(Node("fc1", "fully_connected", ["y0", "w"], ["y1"]))
        g.mark_output("y1")
        assert g.count_weights() == 100 * 100
