"""Tests for the GCL optimization passes.

Every folding/fusion test checks *numerical equivalence*: the optimized
graph must compute the same function as the original.
"""

import numpy as np

from repro.graph import Graph, Node, Tensor, TensorType, execute_float
from repro.graph.passes import (
    constant_fold,
    dead_code_elimination,
    default_pipeline,
    fold_batch_norm,
    fuse_activations,
    fuse_bias_add,
    fuse_pad,
)

def _rng():
    return np.random.default_rng(7)


RNG = _rng()


def conv_bn_relu_graph():
    """conv2d -> batch_norm -> relu, the classic foldable pattern."""
    rng = _rng()
    g = Graph("convbn")
    g.add_input("x", TensorType((1, 6, 6, 3)))
    g.add_constant("w", rng.normal(size=(3, 3, 3, 8)).astype(np.float32))
    g.add_constant("mean", rng.normal(size=8).astype(np.float32))
    g.add_constant("var", rng.uniform(0.5, 2.0, size=8).astype(np.float32))
    g.add_constant("gamma", rng.normal(size=8).astype(np.float32))
    g.add_constant("beta", rng.normal(size=8).astype(np.float32))
    g.add_tensor(Tensor("c", TensorType((1, 6, 6, 8))))
    g.add_tensor(Tensor("b", TensorType((1, 6, 6, 8))))
    g.add_tensor(Tensor("r", TensorType((1, 6, 6, 8))))
    g.add_node(Node("conv", "conv2d", ["x", "w"], ["c"], {"padding": ((1, 1), (1, 1))}))
    g.add_node(
        Node("bn", "batch_norm", ["c", "mean", "var", "gamma", "beta"], ["b"], {"epsilon": 1e-3})
    )
    g.add_node(Node("relu", "relu", ["b"], ["r"]))
    g.mark_output("r")
    return g


def outputs_match(before: Graph, after: Graph, feeds):
    out_a = execute_float(before, feeds)
    out_b = execute_float(after, feeds)
    assert set(out_a) == set(out_b) or len(out_a) == len(out_b)
    for (_ka, va), (_kb, vb) in zip(
        sorted(out_a.items()), sorted(out_b.items()), strict=True
    ):
        np.testing.assert_allclose(va, vb, rtol=1e-4, atol=1e-5)


class TestFoldBatchNorm:
    def test_bn_removed_and_equivalent(self):
        feeds = {"x": RNG.normal(size=(1, 6, 6, 3)).astype(np.float32)}
        reference = conv_bn_relu_graph()
        expected = execute_float(reference, feeds)

        g = conv_bn_relu_graph()
        assert fold_batch_norm(g) is True
        g.validate()
        assert g.find_nodes("batch_norm") == []
        assert len(g.node("conv").inputs) == 3  # gained a bias
        actual = execute_float(g, feeds)
        np.testing.assert_allclose(
            list(actual.values())[0], list(expected.values())[0], rtol=1e-4, atol=1e-5
        )

    def test_not_folded_when_conv_output_shared(self):
        g = conv_bn_relu_graph()
        # Add a second consumer of the conv output.
        g.add_tensor(Tensor("side", TensorType((1, 6, 6, 8))))
        g.add_node(Node("side_relu", "relu", ["c"], ["side"]))
        g.mark_output("side")
        assert fold_batch_norm(g) is False

    def test_bn_without_conv_producer_untouched(self):
        g = Graph()
        g.add_input("x", TensorType((1, 4, 4, 2)))
        for name in ("mean", "var", "gamma", "beta"):
            g.add_constant(name, np.ones(2, dtype=np.float32))
        g.add_tensor(Tensor("y", TensorType((1, 4, 4, 2))))
        g.add_node(Node("bn", "batch_norm", ["x", "mean", "var", "gamma", "beta"], ["y"]))
        g.mark_output("y")
        assert fold_batch_norm(g) is False


class TestFusePad:
    def _pad_conv_graph(self):
        # The ResNet-50 MLPerf reference pattern: explicit pad before conv.
        rng = _rng()
        g = Graph()
        g.add_input("x", TensorType((1, 6, 6, 3)))
        g.add_constant("w", rng.normal(size=(3, 3, 3, 4)).astype(np.float32))
        g.add_tensor(Tensor("p", TensorType((1, 8, 8, 3))))
        g.add_tensor(Tensor("y", TensorType((1, 6, 6, 4))))
        g.add_node(Node("pad", "pad", ["x"], ["p"], {"padding": ((1, 1), (1, 1))}))
        g.add_node(Node("conv", "conv2d", ["p", "w"], ["y"]))
        g.mark_output("y")
        return g

    def test_pad_absorbed_into_conv(self):
        feeds = {"x": RNG.normal(size=(1, 6, 6, 3)).astype(np.float32)}
        reference = self._pad_conv_graph()
        g = self._pad_conv_graph()
        assert fuse_pad(g) is True
        assert g.find_nodes("pad") == []
        assert g.node("conv").attrs["padding"] == ((1, 1), (1, 1))
        outputs_match(reference, g, feeds)

    def test_nonzero_pad_not_fused(self):
        g = self._pad_conv_graph()
        g.node("pad").attrs["value"] = -1.0
        assert fuse_pad(g) is False


class TestFuseBiasAndActivation:
    def _graph(self):
        rng = _rng()
        g = Graph()
        g.add_input("x", TensorType((1, 10)))
        g.add_constant("w", rng.normal(size=(10, 4)).astype(np.float32))
        g.add_constant("b", rng.normal(size=4).astype(np.float32))
        g.add_tensor(Tensor("m", TensorType((1, 4))))
        g.add_tensor(Tensor("a", TensorType((1, 4))))
        g.add_tensor(Tensor("r", TensorType((1, 4))))
        g.add_node(Node("fc", "fully_connected", ["x", "w"], ["m"]))
        g.add_node(Node("bias", "bias_add", ["m", "b"], ["a"]))
        g.add_node(Node("act", "relu", ["a"], ["r"]))
        g.mark_output("r")
        return g

    def test_bias_then_activation_fuse_into_fc(self):
        feeds = {"x": RNG.normal(size=(1, 10)).astype(np.float32)}
        reference = self._graph()
        expected = execute_float(reference, feeds)
        g = self._graph()
        assert fuse_bias_add(g) is True
        assert fuse_activations(g) is True
        assert len(g.nodes) == 1
        fc = g.node("fc")
        assert len(fc.inputs) == 3
        assert fc.attrs["activation"] == "relu"
        actual = execute_float(g, feeds)
        np.testing.assert_allclose(
            list(actual.values())[0], list(expected.values())[0], rtol=1e-5
        )

    def test_nonconstant_bias_not_fused(self):
        g = self._graph()
        g.tensor("b").data = None  # now an activation
        g.inputs.append("b")
        assert fuse_bias_add(g) is False


class TestCleanup:
    def test_constant_fold(self):
        g = Graph()
        g.add_constant("a", np.array([1.0, 2.0], np.float32))
        g.add_constant("b", np.array([3.0, 4.0], np.float32))
        g.add_tensor(Tensor("c", TensorType((2,))))
        g.add_node(Node("add", "add", ["a", "b"], ["c"]))
        g.mark_output("c")
        assert constant_fold(g) is True
        assert g.nodes == []
        np.testing.assert_array_equal(g.tensor("c").data, [4.0, 6.0])

    def test_dce_removes_unused_chain(self):
        g = Graph()
        g.add_input("x", TensorType((4,)))
        g.add_tensor(Tensor("dead1", TensorType((4,))))
        g.add_tensor(Tensor("dead2", TensorType((4,))))
        g.add_tensor(Tensor("live", TensorType((4,))))
        g.add_node(Node("d1", "relu", ["x"], ["dead1"]))
        g.add_node(Node("d2", "relu", ["dead1"], ["dead2"]))
        g.add_node(Node("keep", "tanh", ["x"], ["live"]))
        g.mark_output("live")
        assert dead_code_elimination(g) is True
        assert [n.name for n in g.nodes] == ["keep"]


class TestDefaultPipeline:
    def test_full_pipeline_on_conv_bn_relu(self):
        feeds = {"x": RNG.normal(size=(1, 6, 6, 3)).astype(np.float32)}
        reference = conv_bn_relu_graph()
        expected = execute_float(reference, feeds)
        g = conv_bn_relu_graph()
        sweeps = default_pipeline().run(g)
        assert sweeps >= 1
        # Everything collapses into one conv with bias + fused relu.
        assert len(g.nodes) == 1
        assert g.nodes[0].attrs["activation"] == "relu"
        actual = execute_float(g, feeds)
        np.testing.assert_allclose(
            list(actual.values())[0], list(expected.values())[0], rtol=1e-4, atol=1e-5
        )

    def test_pipeline_reaches_fixpoint(self):
        g = conv_bn_relu_graph()
        manager = default_pipeline()
        manager.run(g)
        # A second run changes nothing.
        assert manager.run(g) == 0


class TestCommonSubexpressionElimination:
    def _duplicated_graph(self):
        rng = _rng()
        g = Graph()
        g.add_input("x", TensorType((1, 8)))
        g.add_constant("w", rng.normal(size=(8, 4)).astype(np.float32))
        for name in ("a", "b", "s"):
            g.add_tensor(Tensor(name, TensorType((1, 4))))
        # Two identical matmuls feeding an add.
        g.add_node(Node("fc_a", "fully_connected", ["x", "w"], ["a"]))
        g.add_node(Node("fc_b", "fully_connected", ["x", "w"], ["b"]))
        g.add_node(Node("sum", "add", ["a", "b"], ["s"]))
        g.mark_output("s")
        return g

    def test_duplicate_node_merged(self):
        from repro.graph.passes import common_subexpression_elimination

        feeds = {"x": _rng().normal(size=(1, 8)).astype(np.float32)}
        reference = self._duplicated_graph()
        expected = execute_float(reference, feeds)
        g = self._duplicated_graph()
        assert common_subexpression_elimination(g) is True
        assert len(g.find_nodes("fully_connected")) == 1
        g.validate()
        actual = execute_float(g, feeds)
        np.testing.assert_allclose(
            list(actual.values())[0], list(expected.values())[0], rtol=1e-6
        )

    def test_different_attrs_not_merged(self):
        from repro.graph.passes import common_subexpression_elimination

        g = Graph()
        g.add_input("x", TensorType((1, 4, 4, 2)))
        g.add_tensor(Tensor("p1", TensorType((1, 2, 2, 2))))
        g.add_tensor(Tensor("p2", TensorType((1, 1, 1, 2))))
        g.add_node(Node("pool1", "max_pool", ["x"], ["p1"], {"ksize": (2, 2), "stride": (2, 2)}))
        g.add_node(Node("pool2", "max_pool", ["x"], ["p2"], {"ksize": (4, 4), "stride": (4, 4)}))
        g.mark_output("p1")
        g.mark_output("p2")
        assert common_subexpression_elimination(g) is False

    def test_in_default_pipeline(self):
        g = self._duplicated_graph()
        default_pipeline().run(g)
        assert len(g.find_nodes("fully_connected")) == 1
