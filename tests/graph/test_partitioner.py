"""Tests for delegate-style partitioning (Fig. 9)."""

import numpy as np
import pytest

from repro.graph import Graph, Node, Tensor, TensorType, partition
from repro.graph.partitioner import NCORE_TARGET, X86_TARGET, ncore_coverage


def ssd_like_graph():
    """conv -> conv -> nms: Ncore body with an x86 postprocess tail."""
    g = Graph("ssdish")
    g.add_input("x", TensorType((1, 8, 8, 3)))
    g.add_constant("w1", np.zeros((3, 3, 3, 8), np.float32))
    g.add_constant("w2", np.zeros((1, 1, 8, 8), np.float32))
    g.add_tensor(Tensor("c1", TensorType((1, 8, 8, 8))))
    g.add_tensor(Tensor("c2", TensorType((1, 8, 8, 8))))
    g.add_tensor(Tensor("boxes", TensorType((64, 4))))
    g.add_tensor(Tensor("scores", TensorType((64, 2))))
    g.add_tensor(Tensor("det_boxes", TensorType((10, 4))))
    g.add_tensor(Tensor("det_scores", TensorType((10,))))
    g.add_tensor(Tensor("det_classes", TensorType((10,), "int32")))
    g.add_node(Node("conv1", "conv2d", ["x", "w1"], ["c1"], {"padding": ((1, 1), (1, 1))}))
    g.add_node(Node("conv2", "conv2d", ["c1", "w2"], ["c2"]))
    g.add_node(Node("toboxes", "reshape", ["c2"], ["boxes"], {"shape": (64, 4)}))
    g.add_node(Node("toscores", "reshape", ["c2"], ["scores"], {"shape": (64, 2)}))
    g.add_node(
        Node("postprocess", "nms", ["boxes", "scores"], ["det_boxes", "det_scores", "det_classes"])
    )
    g.mark_output("det_boxes")
    g.mark_output("det_scores")
    g.mark_output("det_classes")
    return g


class TestPartition:
    def test_splits_at_unsupported_ops(self):
        segments = partition(ssd_like_graph())
        assert [s.target for s in segments] == [NCORE_TARGET, X86_TARGET]
        assert [n.name for n in segments[0].nodes] == ["conv1", "conv2"]
        assert [n.name for n in segments[1].nodes] == [
            "toboxes",
            "toscores",
            "postprocess",
        ]

    def test_all_supported_graph_is_one_segment(self):
        g = Graph()
        g.add_input("x", TensorType((1, 4)))
        g.add_tensor(Tensor("y", TensorType((1, 4))))
        g.add_node(Node("r", "relu", ["x"], ["y"]))
        g.mark_output("y")
        segments = partition(g)
        assert len(segments) == 1
        assert segments[0].target == NCORE_TARGET

    def test_alternating_targets(self):
        g = Graph()
        g.add_input("x", TensorType((1, 4)))
        names = ["x"]
        for i, op in enumerate(["relu", "softmax", "tanh"]):
            out = f"t{i}"
            g.add_tensor(Tensor(out, TensorType((1, 4))))
            g.add_node(Node(f"n{i}", op, [names[-1]], [out]))
            names.append(out)
        g.mark_output(names[-1])
        segments = partition(g)
        assert [s.target for s in segments] == [NCORE_TARGET, X86_TARGET, NCORE_TARGET]


class TestSegmentBoundaries:
    def test_input_tensors_exclude_constants(self):
        g = ssd_like_graph()
        segments = partition(g)
        assert segments[0].input_tensors(g) == ["x"]

    def test_output_tensors_cross_boundary(self):
        g = ssd_like_graph()
        segments = partition(g)
        assert segments[0].output_tensors(g) == ["c2"]
        assert set(segments[1].output_tensors(g)) == {
            "det_boxes",
            "det_scores",
            "det_classes",
        }

    def test_internal_tensors_not_exposed(self):
        g = ssd_like_graph()
        segments = partition(g)
        assert "c1" not in segments[0].output_tensors(g)


class TestCoverage:
    def test_all_macs_on_ncore_for_ssd_like(self):
        g = ssd_like_graph()
        assert ncore_coverage(g) == pytest.approx(1.0)

    def test_zero_for_empty_graph(self):
        g = Graph()
        g.add_input("x", TensorType((1,)))
        assert ncore_coverage(g) == 0.0
