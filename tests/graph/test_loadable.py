"""Direct tests for the loadable cycle/stall model and reports."""

import pytest

from repro.graph.loadable import (
    KernelInvocation,
    NcoreLoadable,
)
from repro.graph.partitioner import Segment
from repro.graph.planner import MemoryPlan


def kernel(name, cycles, weight_bytes=0, macs=0):
    return KernelInvocation(
        node_name=name, op="conv2d", kernel="conv2d",
        cycles=cycles, macs=macs, weight_bytes=weight_bytes,
    )


def loadable(kernels, pinned=True):
    plan = MemoryPlan()
    plan.weights_pinned = pinned
    return NcoreLoadable(
        name="l", segment=Segment("ncore", []), memory_plan=plan, kernels=kernels
    )


class TestStallModel:
    def test_pinned_weights_have_no_stalls(self):
        l = loadable([kernel("a", 100, weight_bytes=10**9)], pinned=True)
        assert l.total_cycles() == 100

    def test_first_streamed_layer_pays_full_dma(self):
        # Nothing to hide behind: the first layer stalls for its whole DMA.
        import numpy as np

        l = loadable([kernel("a", 100, weight_bytes=4096)], pinned=False)
        dma = int(np.ceil(4096 / 40.96))
        assert l.total_cycles(40.96) == 100 + dma

    def test_prefetch_hides_behind_previous_compute(self):
        # Layer b's weights (100 DMA cycles) hide behind a's 1000 cycles.
        l = loadable(
            [kernel("a", 1000), kernel("b", 50, weight_bytes=4096)], pinned=False
        )
        assert l.total_cycles(40.96) == 1000 + 50

    def test_partial_stall_when_compute_too_short(self):
        # b needs ~100 DMA cycles but a only provides 60 of cover.
        import numpy as np

        l = loadable(
            [kernel("a", 60), kernel("b", 50, weight_bytes=4096)], pinned=False
        )
        dma = int(np.ceil(4096 / 40.96))
        assert l.total_cycles(40.96) == 60 + (dma - 60) + 50

    def test_seconds_conversion(self):
        l = loadable([kernel("a", 2_500_000)])
        assert l.seconds(clock_hz=2.5e9) == pytest.approx(1e-3)


class TestUtilization:
    def test_kernel_utilization(self):
        k = kernel("a", cycles=10, macs=10 * 4096)
        assert k.utilization == pytest.approx(1.0)
        assert kernel("b", cycles=10, macs=0).utilization == 0.0

    def test_mean_utilization_weights_by_cycles(self):
        l = loadable([
            kernel("a", cycles=10, macs=10 * 4096),   # 100% for 10 cycles
            kernel("b", cycles=30, macs=0),           # 0% for 30 cycles
        ])
        assert l.mean_utilization == pytest.approx(0.25)

    def test_empty_loadable(self):
        l = loadable([])
        assert l.mean_utilization == 0.0
        assert l.total_cycles() == 0
