"""Tests for the float32 reference operator semantics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.graph import reference as ref


class TestConv2d:
    def test_identity_kernel(self):
        x = np.random.default_rng(0).normal(size=(1, 5, 5, 3)).astype(np.float32)
        w = np.zeros((1, 1, 3, 3), dtype=np.float32)
        for c in range(3):
            w[0, 0, c, c] = 1.0
        np.testing.assert_allclose(ref.conv2d(x, w), x, rtol=1e-6)

    def test_matches_direct_computation(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 6, 7, 4)).astype(np.float32)
        w = rng.normal(size=(3, 3, 4, 5)).astype(np.float32)
        out = ref.conv2d(x, w, stride=(2, 1), padding=((1, 1), (0, 2)))
        # Direct sextuple-loop reference.
        xp = np.pad(x, ((0, 0), (1, 1), (0, 2), (0, 0)))
        oh = (xp.shape[1] - 3) // 2 + 1
        ow = xp.shape[2] - 3 + 1
        expected = np.zeros((2, oh, ow, 5), dtype=np.float64)
        for n in range(2):
            for i in range(oh):
                for j in range(ow):
                    patch = xp[n, i * 2 : i * 2 + 3, j : j + 3, :]
                    for k in range(5):
                        expected[n, i, j, k] = np.sum(patch * w[..., k])
        np.testing.assert_allclose(out, expected, rtol=1e-4)

    def test_bias_and_activation(self):
        x = np.full((1, 2, 2, 1), -3.0, dtype=np.float32)
        w = np.ones((1, 1, 1, 1), dtype=np.float32)
        out = ref.conv2d(x, w, bias=np.array([1.0], np.float32), activation="relu")
        assert (out == 0.0).all()

    def test_channel_mismatch_rejected(self):
        with pytest.raises(Exception):
            ref.conv2d(np.zeros((1, 4, 4, 3), np.float32), np.zeros((1, 1, 2, 8), np.float32))


class TestDepthwise:
    def test_equals_grouped_conv(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 5, 5, 4)).astype(np.float32)
        w = rng.normal(size=(3, 3, 4)).astype(np.float32)
        out = ref.depthwise_conv2d(x, w, padding=((1, 1), (1, 1)))
        for c in range(4):
            single = ref.conv2d(
                x[..., c : c + 1], w[..., c : c + 1, None], padding=((1, 1), (1, 1))
            )
            np.testing.assert_allclose(out[..., c], single[..., 0], rtol=1e-4)


class TestPooling:
    def test_max_pool(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out = ref.max_pool(x, (2, 2), (2, 2))
        np.testing.assert_array_equal(out.reshape(2, 2), [[5, 7], [13, 15]])

    def test_avg_pool(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out = ref.avg_pool(x, (2, 2), (2, 2))
        np.testing.assert_allclose(out.reshape(2, 2), [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_padding_uses_neg_inf(self):
        x = -np.ones((1, 2, 2, 1), dtype=np.float32)
        out = ref.max_pool(x, (2, 2), (2, 2), padding=((1, 0), (1, 0)))
        assert out.max() == -1.0  # padding must not contribute zeros


class TestActivationsAndSoftmax:
    @given(npst.arrays(np.float32, 16, elements=st.floats(-50, 50, width=32)))
    def test_softmax_sums_to_one(self, x):
        out = ref.softmax(x)
        assert abs(out.sum() - 1.0) < 1e-5
        assert (out >= 0).all()

    def test_relu6(self):
        out = ref.apply_activation(np.array([-1.0, 3.0, 9.0], np.float32), "relu6")
        np.testing.assert_array_equal(out, [0, 3, 6])

    def test_sigmoid_bounds(self):
        out = ref.apply_activation(np.array([-100.0, 0.0, 100.0], np.float32), "sigmoid")
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-6)


class TestLstmAndAttention:
    def test_lstm_gate_arithmetic(self):
        hidden = 4
        x = np.zeros((1, 3), dtype=np.float32)
        h = np.zeros((1, hidden), dtype=np.float32)
        c = np.ones((1, hidden), dtype=np.float32)
        weights = np.zeros((3 + hidden, 4 * hidden), dtype=np.float32)
        bias = np.zeros(4 * hidden, dtype=np.float32)
        # Zero gates: i = f = o = 0.5, g = 0 -> c' = 0.5, h' = 0.5*tanh(0.5)
        h2, c2 = ref.lstm_cell(x, weights, bias, h, c)
        np.testing.assert_allclose(c2, 0.5, rtol=1e-5)
        np.testing.assert_allclose(h2, 0.5 * np.tanh(0.5), rtol=1e-5)

    def test_attention_uniform_when_scores_equal(self):
        keys = np.ones((1, 5, 8), dtype=np.float32)
        query = np.ones((1, 8), dtype=np.float32)
        ctx = ref.attention(query, keys)
        np.testing.assert_allclose(ctx, 1.0, rtol=1e-5)

    def test_attention_picks_matching_key(self):
        keys = np.zeros((1, 3, 4), dtype=np.float32)
        keys[0, 1] = [10, 0, 0, 0]
        query = np.array([[10.0, 0, 0, 0]], dtype=np.float32)
        ctx = ref.attention(query, keys)
        np.testing.assert_allclose(ctx[0], keys[0, 1], atol=1e-2)


class TestNms:
    def test_suppresses_overlapping_boxes(self):
        boxes = np.array(
            [[0, 0, 10, 10], [0, 1, 10, 11], [20, 20, 30, 30]], dtype=np.float32
        )
        scores = np.array([[0.9], [0.8], [0.7]], dtype=np.float32)
        out_boxes, out_scores, out_classes = ref.nms(
            boxes, scores, iou_threshold=0.5, score_threshold=0.1, max_detections=3
        )
        assert out_scores[0] == pytest.approx(0.9)
        assert out_scores[1] == pytest.approx(0.7)  # the 0.8 box suppressed
        assert out_classes[2] == -1  # padding

    def test_score_threshold(self):
        boxes = np.array([[0, 0, 1, 1]], dtype=np.float32)
        scores = np.array([[0.05]], dtype=np.float32)
        _, out_scores, _ = ref.nms(boxes, scores, score_threshold=0.3)
        assert out_scores[0] == 0.0

    def test_multiclass_kept_separately(self):
        boxes = np.array([[0, 0, 10, 10], [0, 0, 10, 10]], dtype=np.float32)
        scores = np.array([[0.9, 0.0], [0.0, 0.8]], dtype=np.float32)
        _, out_scores, out_classes = ref.nms(boxes, scores, max_detections=4)
        # Same box, different classes: both survive.
        assert sorted(out_classes[:2].tolist()) == [0, 1]


class TestGraphExecution:
    def test_executes_pipeline(self):
        from tests.graph.test_gir import simple_conv_graph

        g = simple_conv_graph()
        g.tensor("w").data = np.full((3, 3, 3, 16), 0.1, dtype=np.float32)
        x = np.ones((1, 8, 8, 3), dtype=np.float32)
        out = ref.execute_float(g, {"x": x})
        assert out["y"].shape == (1, 8, 8, 16)
        # Interior pixels see all 27 taps of 0.1 each.
        np.testing.assert_allclose(out["y"][0, 4, 4, :], 2.7, rtol=1e-5)

    def test_missing_feed_rejected(self):
        from tests.graph.test_gir import simple_conv_graph

        with pytest.raises(Exception, match="missing feed"):
            ref.execute_float(simple_conv_graph(), {})


class TestShapeInference:
    def test_accepts_consistent_graph(self):
        from tests.graph.test_gir import simple_conv_graph

        ref.infer_shapes(simple_conv_graph())

    def test_rejects_wrong_conv_output_shape(self):
        import repro.graph as G

        g = G.Graph()
        g.add_input("x", G.TensorType((1, 8, 8, 3)))
        g.add_constant("w", np.zeros((3, 3, 3, 16), dtype=np.float32))
        g.add_tensor(G.Tensor("y", G.TensorType((1, 9, 9, 16))))  # wrong
        g.add_node(G.Node("conv", "conv2d", ["x", "w"], ["y"]))
        g.mark_output("y")
        with pytest.raises(G.GraphError, match="expected"):
            ref.infer_shapes(g)
