"""The VCL prototyping workflow: sketch an algorithm, read its utilization.

Section V-E: the VCL "provided a path for quick iteration to verify the
numerical correctness of algorithms and performance impact before any
changes had to be made to the hardware design", and the GCL reported
"utilization and DMA stalls based on a high-level performance model that
uses VCL instrumentation".  These tests run the Fig. 7 pointwise-conv
dataflow on the VCL and check that (a) the numerics match a plain numpy
reference and (b) the instrumented utilization tracks the NKL schedule's
closed-form number.
"""

import numpy as np
import pytest

from repro.nkl.schedule import conv2d_schedule
from repro.vcl import VclMachine


def prototype_pointwise_conv(machine: VclMachine, inputs, weights):
    """The Fig. 7 W x K inner loop sketched on the VCL.

    inputs (spatial<=64, cin); weights (k_groups, cin) with one output
    channel per broadcast group.  Each reduction step is one fused issue:
    the data-row read, the weight-row read + broadcast and the MAC all
    share a clock (both RAMs are readable each cycle, section IV-C.2), so
    the MAC call marks all three moves as fused.
    """
    spatial, cin = inputs.shape
    groups = machine.width // machine.group
    # Weight rows: byte (g*64 + idx) of row r holds weights[g, r*64 + idx]
    # (deep reductions span multiple weight rows, as on the machine).
    chunks = -(-cin // machine.group)
    weight_rows = np.zeros((chunks, machine.width), dtype=np.uint8)
    for g in range(min(groups, weights.shape[0])):
        for c in range(cin):
            r, idx = divmod(c, machine.group)
            weight_rows[r, g * machine.group + idx] = weights[g, c]
    machine.clear_acc()
    for c in range(cin):
        r, idx = divmod(c, machine.group)
        data = machine.tile(inputs[:, c])
        w = machine.broadcast(machine.load(weight_rows[r]), idx)
        machine.mac(data, w, fused_moves=3)
    return machine


class TestNumericalCorrectness:
    def test_matches_numpy_at_shipped_width(self):
        rng = np.random.default_rng(0)
        inputs = rng.integers(0, 6, size=(64, 16)).astype(np.uint8)
        weights = rng.integers(0, 6, size=(64, 16)).astype(np.uint8)
        machine = prototype_pointwise_conv(VclMachine(), inputs, weights)
        expected = inputs.astype(np.int64) @ weights.astype(np.int64).T  # (x, k)
        for k in range(64):
            np.testing.assert_array_equal(
                machine.acc[k * 64 : k * 64 + 64], expected[:, k]
            )

    @pytest.mark.parametrize("width", [1024, 4096, 8192])
    def test_same_algorithm_any_width(self, width):
        # The slicing claim: the identical sketch runs at any breadth.
        rng = np.random.default_rng(width)
        groups = width // 64
        inputs = rng.integers(0, 6, size=(64, 8)).astype(np.uint8)
        weights = rng.integers(0, 6, size=(min(groups, 64), 8)).astype(np.uint8)
        machine = prototype_pointwise_conv(VclMachine(width=width), inputs, weights)
        expected = inputs.astype(np.int64) @ weights.astype(np.int64).T
        for k in range(weights.shape[0]):
            np.testing.assert_array_equal(
                machine.acc[k * 64 : k * 64 + 64], expected[:, k]
            )


class TestUtilizationReporting:
    def test_vcl_utilization_tracks_nkl_schedule(self):
        # The same workload's utilization, measured two ways: the VCL's
        # instrumented trace vs the NKL's closed-form schedule.
        cin = 256
        rng = np.random.default_rng(1)
        inputs = rng.integers(0, 4, size=(64, cin)).astype(np.uint8)
        weights = rng.integers(0, 4, size=(64, cin)).astype(np.uint8)
        machine = prototype_pointwise_conv(VclMachine(), inputs, weights)
        # Only genuinely useful MACs count against the trace: the sketch
        # does 64x64xC useful MACs in ~C fused issues (+ staging loads).
        useful = 64 * 64 * cin
        vcl_util = useful / (machine.stats.cycles * machine.width)
        schedule = conv2d_schedule(cin, 64, 1, 64, 1, 1)
        assert vcl_util == pytest.approx(schedule.utilization, abs=0.15)

    def test_report_names_the_bottleneck_counts(self):
        machine = prototype_pointwise_conv(
            VclMachine(),
            np.zeros((64, 8), np.uint8),
            np.zeros((64, 8), np.uint8),
        )
        text = machine.report()
        assert "rows read" in text
        assert "mac=8" in text
