"""Tests for the VCL prototyping machine, including cross-checks against
the Ncore unit implementations at the shipped width."""

import numpy as np
import pytest

from repro.vcl import VclMachine, Vector


class TestConstruction:
    def test_width_must_divide_into_groups(self):
        with pytest.raises(ValueError):
            VclMachine(width=100, group=64)

    def test_default_is_shipped_ncore(self):
        m = VclMachine()
        assert m.width == 4096
        assert m.group == 64


class TestOperations:
    def test_load_pads_to_width(self):
        m = VclMachine(width=128)
        v = m.load([1, 2, 3])
        assert len(v) == 128
        assert v.values[2] == 3
        assert v.values[3] == 0

    def test_tile_repeats_per_group(self):
        m = VclMachine(width=256, group=64)
        v = m.tile([7, 8])
        for g in range(4):
            assert v.values[g * 64] == 7
            assert v.values[g * 64 + 1] == 8

    def test_rotate_matches_ncore_ndu(self):
        from repro.isa.instruction import RotateDirection
        from repro.ncore import ndu

        m = VclMachine()
        data = np.random.default_rng(0).integers(0, 255, 4096).astype(np.uint8)
        ours = m.rotate(Vector(data), 64)
        reference = ndu.rotate(data, 64, RotateDirection.LEFT)
        np.testing.assert_array_equal(ours.values, reference)

    def test_broadcast_matches_ncore_ndu(self):
        from repro.ncore import ndu

        m = VclMachine()
        data = np.random.default_rng(1).integers(0, 255, 4096).astype(np.uint8)
        ours = m.broadcast(Vector(data), 5)
        np.testing.assert_array_equal(ours.values, ndu.broadcast64(data, 5))

    def test_mac_with_zero_offsets(self):
        m = VclMachine(width=64, group=64)
        m.mac(Vector(np.full(64, 10, np.uint8)), Vector(np.full(64, 5, np.uint8)),
              data_zero=8, weight_zero=1)
        assert m.acc[0] == (10 - 8) * (5 - 1)

    def test_mac_saturates(self):
        m = VclMachine(width=64, group=64, acc_bits=8)
        for _ in range(10):
            m.mac(Vector(np.full(64, 100, np.uint8)), Vector(np.full(64, 100, np.uint8)))
        assert m.acc[0] == 127

    def test_requantize_clamps(self):
        m = VclMachine(width=64, group=64)
        m.acc[:] = 1000
        out = m.requantize(scale=1.0)
        assert (out.values == 255).all()


class TestWidthScaling:
    """The 'easy to slice and expand' claim: algorithms run at any width."""

    @pytest.mark.parametrize("width", [256, 1024, 4096, 8192])
    def test_dot_product_at_any_width(self, width):
        m = VclMachine(width=width, group=64)
        rng = np.random.default_rng(width)
        x = rng.integers(0, 16, 64).astype(np.uint8)
        w = rng.integers(0, 16, 64).astype(np.uint8)
        data = m.tile(x)
        for c in range(64):
            m.broadcast(m.load(np.tile(w, width // 64)), c)
            # One tap per cycle; the real inner loop fuses these moves.
        # Functional check via a single full MAC instead:
        m.clear_acc()
        m.mac(data, m.tile(w))
        assert m.acc[0] == int(x[0]) * int(w[0])

    def test_wider_machine_does_more_macs_per_cycle(self):
        narrow, wide = VclMachine(width=1024), VclMachine(width=8192)
        for m in (narrow, wide):
            m.mac(Vector(np.ones(m.width, np.uint8)), Vector(np.ones(m.width, np.uint8)))
        assert wide.stats.macs == 8 * narrow.stats.macs
        assert wide.stats.cycles == narrow.stats.cycles


class TestInstrumentation:
    def test_op_census(self):
        m = VclMachine(width=128)
        v = m.load(np.zeros(128))
        m.rotate(v, 8)
        m.mac(v, v)
        assert m.stats.ops == {"load": 1, "rotate": 1, "mac": 1}

    def test_fused_moves_reduce_cycles(self):
        # The Fig. 6 fusion: broadcast + rotate + MAC in one clock.
        m = VclMachine(width=128)
        v = m.load(np.ones(128))
        w = m.broadcast(v, 0)
        r = m.rotate(v, 1)
        m.mac(r, w, fused_moves=2)
        assert m.stats.cycles == 2  # the load, then one fused VLIW issue

    def test_utilization_report(self):
        m = VclMachine(width=256)
        v = m.load(np.ones(256))
        m.mac(v, v)
        text = m.report()
        assert "width=256" in text
        assert "utilization" in text

    def test_long_rotation_costs_multiple_cycles(self):
        m = VclMachine()
        v = m.load(np.zeros(4096))
        before = m.stats.cycles
        m.rotate(v, 640)  # 10 x 64-byte steps
        assert m.stats.cycles - before == 10
