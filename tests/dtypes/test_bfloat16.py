"""Tests for bfloat16 conversion (round-to-nearest-even)."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.dtypes import (
    BF16_EPS,
    BF16_MAX,
    BF16_MIN_NORMAL,
    bf16_from_bits,
    bf16_to_bits,
    to_bfloat16,
)


def test_exactly_representable_values_pass_through():
    vals = np.array([0.0, 1.0, -1.0, 0.5, 2.0, 256.0, -0.25], dtype=np.float32)
    np.testing.assert_array_equal(to_bfloat16(vals), vals)


def test_rounding_is_to_nearest():
    # 1.0 + eps/4 is closer to 1.0 than to 1.0 + eps.
    x = np.float32(1.0 + BF16_EPS / 4)
    assert to_bfloat16(x) == np.float32(1.0)
    # 1.0 + 3*eps/4 is closer to 1.0 + eps.
    y = np.float32(1.0 + 3 * BF16_EPS / 4)
    assert to_bfloat16(y) == np.float32(1.0 + BF16_EPS)


def test_ties_round_to_even():
    # Exactly halfway between 1.0 and 1.0+eps: mantissa ...0|1000...,
    # round-to-even keeps the even (lower) value.
    x = np.float32(1.0 + BF16_EPS / 2)
    assert to_bfloat16(x) == np.float32(1.0)
    # Halfway between 1.0+eps and 1.0+2eps rounds up to the even value.
    y = np.float32(1.0 + 3 * BF16_EPS / 2)
    assert to_bfloat16(y) == np.float32(1.0 + 2 * BF16_EPS)


def test_nan_and_inf_preserved():
    out = to_bfloat16(np.array([np.nan, np.inf, -np.inf], dtype=np.float32))
    assert np.isnan(out[0])
    assert out[1] == np.inf
    assert out[2] == -np.inf


def test_bits_round_trip():
    vals = np.array([0.0, -1.5, 3.140625, BF16_MAX], dtype=np.float32)
    bits = bf16_to_bits(vals)
    assert bits.dtype == np.uint16
    np.testing.assert_array_equal(bf16_from_bits(bits), to_bfloat16(vals))


def test_scalar_input_accepted():
    assert to_bfloat16(1.0).shape == ()


def test_shape_preserved():
    x = np.zeros((3, 5, 7), dtype=np.float32)
    assert to_bfloat16(x).shape == (3, 5, 7)


@given(st.floats(allow_nan=False, allow_infinity=False, width=32))
def test_relative_error_bounded(value):
    if abs(value) > BF16_MAX:  # overflows to infinity, checked elsewhere
        return
    if 0 < abs(value) < BF16_MIN_NORMAL:  # subnormals: relative bound not valid
        return
    out = float(to_bfloat16(np.float32(value)))
    if value == 0.0:
        assert out == 0.0
    else:
        assert abs(out - value) <= abs(value) * BF16_EPS / 2 + 1e-45


@given(st.floats(allow_nan=False, allow_infinity=False, width=32))
def test_idempotent(value):
    once = to_bfloat16(np.float32(value))
    twice = to_bfloat16(once)
    np.testing.assert_array_equal(once, twice)


@given(st.floats(allow_nan=False, allow_infinity=False, width=32))
def test_monotonic_sign(value):
    out = float(to_bfloat16(np.float32(value)))
    if value > 0:
        assert out >= 0.0
    elif value < 0:
        assert out <= 0.0


@given(st.integers(min_value=0, max_value=0xFFFF))
def test_all_bit_patterns_round_trip_exactly(bits):
    # Every bfloat16 storage pattern expands to a float32 that converts back
    # to the identical pattern (NaNs compared by mask).
    f = bf16_from_bits(np.array([bits], dtype=np.uint16))
    if np.isnan(f[0]):
        return
    back = bf16_to_bits(f)
    assert back[0] == bits
