"""Tests for saturating fixed-point arithmetic and the dtype registry."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.dtypes import (
    ACC_MAX,
    ACC_MIN,
    NcoreDType,
    dtype_info,
    saturate,
    saturating_accumulate,
    saturating_add,
)


class TestDTypeRegistry:
    def test_npu_cycle_counts_match_paper(self):
        # Section IV-D.4: 8-bit ops take 1 clock, bfloat16 3, int16 4.
        assert dtype_info(NcoreDType.INT8).npu_cycles == 1
        assert dtype_info(NcoreDType.UINT8).npu_cycles == 1
        assert dtype_info(NcoreDType.BF16).npu_cycles == 3
        assert dtype_info(NcoreDType.INT16).npu_cycles == 4

    def test_element_sizes(self):
        assert dtype_info(NcoreDType.INT8).bytes_per_element == 1
        assert dtype_info(NcoreDType.INT16).bytes_per_element == 2
        assert dtype_info(NcoreDType.BF16).bytes_per_element == 2

    def test_lookup_by_string(self):
        assert dtype_info("int8") is dtype_info(NcoreDType.INT8)

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ValueError):
            dtype_info("float64")


class TestSaturate:
    def test_int8_bounds(self):
        x = np.array([-1000, -128, 0, 127, 1000])
        out = saturate(x, NcoreDType.INT8)
        np.testing.assert_array_equal(out, [-128, -128, 0, 127, 127])
        assert out.dtype == np.int8

    def test_uint8_bounds(self):
        out = saturate(np.array([-5, 0, 255, 300]), NcoreDType.UINT8)
        np.testing.assert_array_equal(out, [0, 0, 255, 255])

    def test_int16_bounds(self):
        out = saturate(np.array([-40000, 40000]), NcoreDType.INT16)
        np.testing.assert_array_equal(out, [-32768, 32767])


class TestSaturatingAdd:
    def test_no_overflow_is_exact(self):
        a = np.array([1, -2, 3], dtype=np.int32)
        b = np.array([4, 5, -6], dtype=np.int32)
        np.testing.assert_array_equal(saturating_add(a, b), [5, 3, -3])

    def test_positive_saturation(self):
        a = np.array([ACC_MAX], dtype=np.int32)
        assert saturating_add(a, np.array([1], dtype=np.int32))[0] == ACC_MAX

    def test_negative_saturation(self):
        a = np.array([ACC_MIN], dtype=np.int32)
        assert saturating_add(a, np.array([-1], dtype=np.int32))[0] == ACC_MIN

    def test_result_dtype_is_int32(self):
        out = saturating_add(np.zeros(4, np.int32), np.ones(4, np.int32))
        assert out.dtype == np.int32


class TestSaturatingAccumulate:
    def test_simple_mac(self):
        acc = np.zeros(3, dtype=np.int32)
        out = saturating_accumulate(
            acc, np.array([2, 3, 4], np.int32), np.array([5, -6, 7], np.int32)
        )
        np.testing.assert_array_equal(out, [10, -18, 28])

    def test_accumulator_saturates_up(self):
        acc = np.full(1, ACC_MAX - 10, dtype=np.int32)
        out = saturating_accumulate(
            acc, np.array([100], np.int32), np.array([100], np.int32)
        )
        assert out[0] == ACC_MAX

    def test_accumulator_saturates_down(self):
        acc = np.full(1, ACC_MIN + 10, dtype=np.int32)
        out = saturating_accumulate(
            acc, np.array([100], np.int32), np.array([-100], np.int32)
        )
        assert out[0] == ACC_MIN

    @given(
        npst.arrays(np.int32, 16, elements=st.integers(-(2**31), 2**31 - 1)),
        npst.arrays(np.int32, 16, elements=st.integers(-255, 255)),
        npst.arrays(np.int32, 16, elements=st.integers(-255, 255)),
    )
    def test_matches_exact_math_clipped(self, acc, data, weight):
        out = saturating_accumulate(acc, data, weight)
        exact = acc.astype(object) + data.astype(object) * weight.astype(object)
        expected = np.array(
            [min(max(v, ACC_MIN), ACC_MAX) for v in exact], dtype=np.int32
        )
        np.testing.assert_array_equal(out, expected)

    @given(npst.arrays(np.int32, 8, elements=st.integers(-(2**31), 2**31 - 1)))
    def test_zero_weight_is_identity(self, acc):
        out = saturating_accumulate(
            acc, np.ones(8, np.int32), np.zeros(8, np.int32)
        )
        np.testing.assert_array_equal(out, acc)
