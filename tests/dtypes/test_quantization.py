"""Tests for affine quantization and OUT-unit requantization."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dtypes import (
    NcoreDType,
    QuantParams,
    choose_quant_params,
    dequantize,
    quantize,
    quantize_multiplier,
    requantize,
    rounding_right_shift,
)


class TestQuantParams:
    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            QuantParams(scale=0.0, zero_point=0)

    def test_rejects_out_of_range_zero_point(self):
        with pytest.raises(ValueError):
            QuantParams(scale=1.0, zero_point=300, dtype=NcoreDType.UINT8)

    def test_rejects_float_dtype(self):
        with pytest.raises(ValueError):
            QuantParams(scale=1.0, zero_point=0, dtype=NcoreDType.BF16)

    def test_range_property(self):
        qp = QuantParams(scale=0.5, zero_point=128, dtype=NcoreDType.UINT8)
        lo, hi = qp.range
        assert lo == pytest.approx(-64.0)
        assert hi == pytest.approx(63.5)


class TestChooseQuantParams:
    def test_zero_is_exactly_representable(self):
        qp = choose_quant_params(0.1, 6.3)
        assert dequantize(np.array([qp.zero_point]), qp)[0] == 0.0

    def test_covers_requested_range(self):
        qp = choose_quant_params(-3.0, 5.0)
        lo, hi = qp.range
        assert lo <= -3.0 + qp.scale
        assert hi >= 5.0 - qp.scale

    def test_degenerate_all_zero(self):
        qp = choose_quant_params(0.0, 0.0)
        assert quantize(np.array([0.0]), qp)[0] == qp.zero_point

    def test_int8_symmetric_ish(self):
        qp = choose_quant_params(-1.0, 1.0, NcoreDType.INT8)
        assert qp.dtype == NcoreDType.INT8
        assert -128 <= qp.zero_point <= 127

    @given(
        st.floats(min_value=-100, max_value=0, allow_nan=False),
        st.floats(min_value=0.01, max_value=100, allow_nan=False),
    )
    def test_round_trip_error_within_half_scale(self, rmin, rmax):
        qp = choose_quant_params(rmin, rmax)
        xs = np.linspace(rmin, rmax, 17).astype(np.float32)
        err = np.abs(dequantize(quantize(xs, qp), qp) - xs)
        # scale/2 is the exact bound; allow float32 rounding on top of it.
        assert np.all(err <= qp.scale / 2 * (1 + 1e-4) + 1e-6)


class TestQuantizeMultiplier:
    @given(st.floats(min_value=1e-6, max_value=1e6, allow_nan=False))
    def test_reconstruction_accuracy(self, real):
        m, shift = quantize_multiplier(real)
        assert (1 << 30) <= m <= (1 << 31)
        approx = m * 2.0 ** (-31 - shift)
        assert approx == pytest.approx(real, rel=1e-8)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            quantize_multiplier(0.0)

    def test_power_of_two(self):
        m, shift = quantize_multiplier(0.5)
        assert m * 2.0 ** (-31 - shift) == 0.5


class TestRoundingRightShift:
    def test_zero_shift_identity(self):
        x = np.array([1, -7, 100])
        np.testing.assert_array_equal(rounding_right_shift(x, 0), x)

    def test_rounds_half_away_from_zero(self):
        # 3 >> 1 = 1.5 -> 2 ; -3 >> 1 = -1.5 -> -2
        assert rounding_right_shift(np.array([3]), 1)[0] == 2
        assert rounding_right_shift(np.array([-3]), 1)[0] == -2

    def test_exact_division(self):
        assert rounding_right_shift(np.array([8]), 2)[0] == 2
        assert rounding_right_shift(np.array([-8]), 2)[0] == -2

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            rounding_right_shift(np.array([1]), -1)

    @given(st.integers(-(2**31), 2**31 - 1), st.integers(0, 20))
    def test_matches_true_rounding(self, value, shift):
        out = int(rounding_right_shift(np.array([value], dtype=np.int64), shift)[0])
        exact = value / (1 << shift)
        # round-half-away-from-zero
        import math

        expected = math.floor(exact + 0.5) if exact >= 0 else math.ceil(exact - 0.5)
        assert out == expected


class TestRequantize:
    def test_identity_multiplier(self):
        # multiplier ~= 1.0 means acc passes through (plus offset).
        m, shift = quantize_multiplier(1.0)
        acc = np.array([5, -3, 100], dtype=np.int32)
        out = requantize(acc, m, shift, offset=0, dtype=NcoreDType.INT8)
        np.testing.assert_array_equal(out, [5, -3, 100])

    def test_offset_applied(self):
        m, shift = quantize_multiplier(1.0)
        out = requantize(np.array([0], np.int32), m, shift, offset=128)
        assert out[0] == 128

    def test_saturates_to_output_type(self):
        m, shift = quantize_multiplier(1.0)
        out = requantize(np.array([10_000], np.int32), m, shift, 0, NcoreDType.INT8)
        assert out[0] == 127

    @given(
        st.floats(min_value=1e-4, max_value=4.0, allow_nan=False),
        st.integers(-(2**20), 2**20),
    )
    def test_tracks_real_arithmetic(self, real_mult, acc_val):
        m, shift = quantize_multiplier(real_mult)
        out = requantize(
            np.array([acc_val], np.int32), m, shift, 0, NcoreDType.INT16
        )
        expected = np.clip(round(acc_val * real_mult), -32768, 32767)
        # Fixed-point rounding may differ from float rounding by 1 ULP.
        assert abs(int(out[0]) - expected) <= 1

    def test_end_to_end_conv_style(self):
        # Simulate a quantized multiply chain the way a conv uses it:
        # acc in s32 = sum(data_q * w_q); requant with M = s_in*s_w/s_out.
        rng = np.random.default_rng(7)
        s_in, s_w, s_out = 0.02, 0.005, 0.11
        data = rng.integers(0, 255, 64)
        weights = rng.integers(-127, 127, 64)
        acc = np.array([np.sum((data - 128) * weights)], dtype=np.int32)
        m, shift = quantize_multiplier(s_in * s_w / s_out)
        out = requantize(acc, m, shift, offset=0, dtype=NcoreDType.INT8)
        real = float(acc[0]) * s_in * s_w / s_out
        assert abs(float(out[0]) - np.clip(round(real), -128, 127)) <= 1
