"""Cycle attribution: segment features, tier records, harvest outputs."""

import json

import pytest

from repro.obs.attrib import (
    TIER_FASTPATH,
    TIER_REPLAY,
    AttributionCollector,
    get_attrib,
    install_attrib,
    segment_features,
    set_attrib,
)
from repro.runtime import compile_model
from tests.quantize.test_convert import calibration_batches, small_cnn


@pytest.fixture(scope="module")
def compiled():
    from repro.quantize import calibrate, quantize_graph

    g = small_cnn()
    qg = quantize_graph(g, calibrate(g, calibration_batches()))
    return compile_model(qg, name="smallcnn")


class TestSegmentFeatures:
    def test_one_record_per_segment(self, compiled):
        records = segment_features(compiled)
        assert len(records) == len(compiled.segments)
        assert [r["segment"] for r in records] == list(range(len(records)))

    def test_ncore_segments_carry_kernel_attribution(self, compiled):
        records = segment_features(compiled)
        ncore = [r for r in records if r["target"] == "ncore"]
        assert ncore, "expected at least one Ncore segment"
        for record in ncore:
            assert record["kernels"] > 0
            assert record["compute_cycles"] > 0
            assert record["total_cycles"] >= record["compute_cycles"]
            assert sum(record["op_cycles"].values()) > 0
            assert record["macs"] > 0
            # Op mix covers every node in the segment.
            assert sum(record["ops"].values()) == record["nodes"]

    def test_dma_bytes_follow_the_memory_plan(self, compiled):
        for record in segment_features(compiled):
            if record["weights_pinned"]:
                assert record["dma_bytes"] == 0
            else:
                assert record["dma_bytes"] == record["weight_bytes"]


class TestCollector:
    def test_record_model_run_stamps_tier_and_count(self, compiled):
        collector = AttributionCollector()
        collector.record_model_run(compiled, TIER_FASTPATH, batch=4, count=3)
        collector.record_model_run(compiled, TIER_REPLAY, count=2)
        per_run = len(compiled.segments)
        assert len(collector.records) == 2 * per_run
        fast = [r for r in collector.records if r["tier"] == TIER_FASTPATH]
        assert all(r["count"] == 3 and r["batch"] == 4 for r in fast)

    def test_zero_count_records_nothing(self, compiled):
        collector = AttributionCollector()
        collector.record_model_run(compiled, TIER_FASTPATH, count=0)
        assert len(collector) == 0

    def test_features_are_cached_per_model(self, compiled):
        collector = AttributionCollector()
        first = collector.features_for(compiled)
        assert collector.features_for(compiled) is first

    def test_jsonl_harvest_roundtrips(self, compiled, tmp_path):
        collector = AttributionCollector()
        collector.record_model_run(compiled, TIER_FASTPATH)
        path = tmp_path / "harvest.jsonl"
        count = collector.write_jsonl(str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == count == len(collector.records)
        record = json.loads(lines[0])
        # The ROADMAP item 3 training schema keys.
        for key in ("model", "segment", "ops", "op_cycles", "dma_bytes",
                    "loop_trips", "macs", "total_cycles", "tier", "batch"):
            assert key in record

    def test_collapsed_stacks_weight_by_cycles(self, compiled):
        collector = AttributionCollector()
        collector.record_model_run(compiled, TIER_FASTPATH, count=2)
        stacks = collector.collapsed_stacks()
        assert stacks
        for line in stacks.splitlines():
            frames, weight = line.rsplit(" ", 1)
            assert frames.startswith("smallcnn;segment[")
            assert int(weight) > 0


class TestInstallation:
    def test_null_by_default(self):
        assert not get_attrib().enabled
        # Null collector absorbs records without tracking anything.
        get_attrib().record(model="m", segment=0)

    def test_install_and_restore(self, compiled):
        with install_attrib() as collector:
            assert get_attrib() is collector
            get_attrib().record_model_run(compiled, TIER_FASTPATH)
            assert len(collector) == len(compiled.segments)
        assert not get_attrib().enabled

    def test_set_attrib_none_restores_null(self):
        collector = AttributionCollector()
        set_attrib(collector)
        assert get_attrib() is collector
        set_attrib(None)
        assert not get_attrib().enabled
