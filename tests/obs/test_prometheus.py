"""OpenMetrics text exposition of the metrics registry."""

from repro import obs
from repro.ncore import PerfCounter
from repro.obs.prometheus import prometheus_text, sanitize_name, write_prometheus
from repro.obs.window import SloMonitor


class TestNameSanitization:
    def test_dots_become_underscores(self):
        assert sanitize_name("ncore.replay.hits") == "ncore_replay_hits"

    def test_leading_digit_gets_a_prefix(self):
        assert sanitize_name("1bad").startswith("_")


class TestExposition:
    def test_counter_gets_total_suffix(self):
        registry = obs.MetricsRegistry()
        registry.counter("engine.queries", description="queries").inc(7)
        text = prometheus_text(registry)
        assert "# TYPE engine_queries_total counter" in text
        assert "# HELP engine_queries_total queries" in text
        assert "engine_queries_total 7" in text

    def test_labels_render_prometheus_style(self):
        registry = obs.MetricsRegistry()
        registry.counter("hits", labels={"model": "resnet", "socket": 0}).inc()
        assert 'hits_total{model="resnet",socket="0"} 1' in prometheus_text(registry)

    def test_histogram_renders_as_summary(self):
        registry = obs.MetricsRegistry()
        histogram = registry.histogram("lat", unit="s")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        text = prometheus_text(registry)
        assert "# TYPE lat summary" in text
        assert 'lat{quantile="0.5"} 2' in text
        assert "lat_count 3" in text
        assert "lat_sum 6" in text

    def test_hardware_counter_exposes_wrap_flag(self):
        registry = obs.MetricsRegistry()
        counter = PerfCounter("macs", bits=8)
        counter.configure(offset=250)
        registry.bind_hardware("hw.macs", counter)
        registry.get("hw.macs").inc(10)  # wraps
        text = prometheus_text(registry)
        assert "hw_macs_wrapped 1" in text

    def test_slo_exposes_burn_rate_series(self):
        registry = obs.MetricsRegistry()
        slo = SloMonitor("server.slo", target_seconds=1e-3)
        slo.observe(2e-3, ts=0.0)
        registry.register(slo)
        text = prometheus_text(registry)
        assert "server_slo_attainment 0" in text
        assert "server_slo_burn_rate" in text
        assert "server_slo_queries_total 1" in text

    def test_write_prometheus(self, tmp_path):
        registry = obs.MetricsRegistry()
        registry.gauge("depth").set(4)
        path = tmp_path / "metrics.prom"
        write_prometheus(str(path), registry)
        assert "depth 4" in path.read_text()

    def test_empty_registry_is_empty_text(self):
        assert prometheus_text(obs.MetricsRegistry()) == ""
