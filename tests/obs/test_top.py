"""The ``repro top`` frame renderer and the JSONL frame interchange."""

import io

from repro.obs.top import (
    format_frame,
    read_frames,
    render_frames,
    utilization_bar,
    write_frames,
)

FRAME = {
    "ts": 0.25,
    "model": "resnet50_v15",
    "completed": 100,
    "queries": 512,
    "qps": 1234.5,
    "p50_ms": 1.5,
    "p90_ms": 2.5,
    "p99_ms": 4.0,
    "queue_depth": 3,
    "batch_occupancy": 6.4,
    "socket_util": [0.8, 0.3],
    "slo_attainment": 0.995,
    "slo_burn_rate": 0.5,
    "replay_hit_rate": 0.25,
}


class TestFormatFrame:
    def test_renders_all_sections(self):
        text = "\n".join(format_frame(FRAME, max_batch=8))
        assert "resnet50_v15" in text
        assert "100/512" in text
        assert "1234.5" in text
        assert "p99   4.000 ms" in text
        assert "6.40/8" in text
        assert "hit rate  25.0%" in text
        assert "attainment  99.50%" in text
        assert "[0]" in text and "[1]" in text

    def test_optional_sections_are_omitted(self):
        frame = {k: v for k, v in FRAME.items()
                 if k not in ("slo_attainment", "slo_burn_rate",
                              "replay_hit_rate", "socket_util")}
        text = "\n".join(format_frame(frame))
        assert "slo" not in text
        assert "replay" not in text
        assert "sockets" not in text

    def test_utilization_bar(self):
        assert utilization_bar(0.0) == "." * 10
        assert utilization_bar(1.0) == "#" * 10
        assert utilization_bar(2.0) == "#" * 10  # clamped
        assert utilization_bar(0.5).count("#") == 5


class TestRenderFrames:
    def test_no_ansi_appends_frames(self):
        stream = io.StringIO()
        count = render_frames([FRAME, FRAME], stream, ansi=False)
        assert count == 2
        output = stream.getvalue()
        assert "\x1b" not in output
        assert output.count("repro top") == 2

    def test_ansi_redraws_in_place(self):
        stream = io.StringIO()
        render_frames([FRAME, FRAME], stream, ansi=True)
        output = stream.getvalue()
        # Second frame climbs back over the first with cursor-up escapes.
        assert "\x1b[" in output


class TestFrameFiles:
    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "frames.jsonl"
        assert write_frames(str(path), [FRAME, FRAME]) == 2
        frames = read_frames(str(path))
        assert len(frames) == 2
        assert frames[0]["qps"] == FRAME["qps"]
        assert frames[1]["socket_util"] == [0.8, 0.3]
