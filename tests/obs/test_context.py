"""Trace contexts: deterministic minting and causal span linkage."""

from repro import obs
from repro.obs.context import TraceContext, mint_trace
from repro.obs.export import chrome_trace


class TestTraceContext:
    def test_minting_is_deterministic(self):
        assert mint_trace("resnet", 3) == mint_trace("resnet", 3)
        assert mint_trace("resnet", 3) != mint_trace("resnet", 4)
        assert mint_trace("resnet", 3).trace_id == "resnet/q000003"

    def test_child_links_to_parent(self):
        root = mint_trace("m", 0)
        child = root.child("ncore")
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        grandchild = child.child("step[0]")
        assert grandchild.parent_id == "ncore"

    def test_sibling_shares_the_parent(self):
        stage = mint_trace("m", 0).child("a")
        sibling = stage.sibling("b")
        assert sibling.parent_id == stage.parent_id
        assert sibling.span_id == "b"


class TestTracerIntegration:
    def test_spans_carry_the_context(self):
        tracer = obs.Tracer()
        context = mint_trace("m", 0)
        tracer.add_span("query[0]", "t", start_us=0.0, duration_us=10.0,
                        context=context)
        tracer.add_span("query[0].ncore", "t", start_us=2.0, duration_us=6.0,
                        context=context.child("ncore"))
        spans = tracer.spans_for_trace("m/q000000")
        assert [s.span_id for s in spans] == ["root", "ncore"]
        assert spans[1].parent_id == "root"
        assert tracer.trace_ids() == ["m/q000000"]

    def test_context_free_spans_stay_unlinked(self):
        tracer = obs.Tracer()
        tracer.add_span("loose", "t", start_us=0.0, duration_us=1.0)
        assert tracer.spans[0].trace_id == ""
        assert tracer.trace_ids() == []


class TestExportedFlows:
    def test_flow_events_link_parent_to_child(self):
        tracer = obs.Tracer()
        context = mint_trace("m", 0)
        tracer.add_span("query[0]", "t", start_us=0.0, duration_us=10.0,
                        context=context)
        tracer.add_span("query[0].ncore", "t", start_us=2.0, duration_us=6.0,
                        context=context.child("ncore"))
        events = chrome_trace(tracer)["traceEvents"]
        starts = [e for e in events if e.get("ph") == "s"]
        finishes = [e for e in events if e.get("ph") == "f"]
        assert len(starts) == len(finishes) == 1
        assert starts[0]["id"] == finishes[0]["id"]
        assert starts[0]["name"] == "m/q000000"
        # Binding-point "enclosing slice" so the arrow lands on the span.
        assert finishes[0]["bp"] == "e"

    def test_span_args_expose_the_tree(self):
        tracer = obs.Tracer()
        context = mint_trace("m", 1)
        tracer.add_span("query[1]", "t", start_us=0.0, duration_us=5.0,
                        context=context)
        events = chrome_trace(tracer)["traceEvents"]
        span = next(e for e in events if e.get("ph") == "X")
        assert span["args"]["trace_id"] == "m/q000001"
        assert span["args"]["span_id"] == "root"
