"""Integration: instrumentation wired through simulator, SoC and runtime."""

import numpy as np
import pytest

from repro import obs
from repro.isa import assemble
from repro.ncore import DmaDescriptor, Ncore
from repro.soc.cache import L3Cache
from repro.soc.ring import RingBus, RingStop


def run_mac_loop(machine: Ncore):
    machine.write_data_ram(0, bytes(np.full(4096, 1, np.uint8)))
    machine.write_weight_ram(0, bytes(np.full(4096, 1, np.uint8)))
    return machine.execute_program(
        assemble("loop 8 {\n  mac dram[a0], wtram[a1]\n}\nhalt")
    )


class TestMachineWiring:
    def test_run_emits_cycle_span(self):
        with obs.observe() as (tracer, _):
            result = run_mac_loop(Ncore())
        (span,) = tracer.spans_on("ncore")
        assert span.name == "ncore.run"
        assert span.args["end_cycle"] - span.args["start_cycle"] == result.cycles
        assert span.args["stop_reason"] == "halt"
        assert span.args["macs"] == 8 * 4096

    def test_run_updates_counters(self):
        with obs.observe() as (_, metrics):
            result = run_mac_loop(Ncore())
        assert metrics.get("ncore.cycles").value == result.cycles
        assert metrics.get("ncore.macs").value == 8 * 4096
        assert metrics.get("ncore.runs").value == 1

    def test_uninstrumented_run_records_nothing(self):
        run_mac_loop(Ncore())  # must not raise, no tracer installed
        assert obs.get_tracer() is obs.NULL_TRACER


class TestDmaWiring:
    def test_transfer_emits_span_and_bytes(self):
        machine = Ncore()
        machine.dma_read.configure_window(0)
        machine.memory.write(0, b"\x07" * 8192)
        machine.set_dma_descriptor(
            0, DmaDescriptor(False, True, ram_row=0, rows=2, dram_addr=0)
        )
        with obs.observe() as (tracer, metrics):
            machine.execute_program(assemble("dmastart 0\ndmawait 1\nhalt"))
        (span,) = tracer.spans_on("dma")
        assert span.name == "dma_read.rd"
        assert span.args["bytes"] == 8192
        assert span.args["ram"] == "weight"
        assert metrics.get("dma.bytes_moved").value == 8192
        assert metrics.get("dma.transfers").value == 1


class TestSocWiring:
    def test_ring_counters(self):
        ring = RingBus()
        with obs.observe() as (_, metrics):
            ring.transfer_cycles(RingStop.CORE0, RingStop.NCORE, 4096)
        assert metrics.get("ring.messages").value == 1
        assert metrics.get("ring.bytes").value == 4096
        assert metrics.get("ring.occupancy_cycles").value == 4096 // ring.width_bytes

    def test_l3_coherent_read_counters(self):
        cache = L3Cache()
        with obs.observe() as (_, metrics):
            cache.coherent_read(0, 128, b"\x00" * 128)  # 2 lines, both cold
            cache.coherent_read(0, 128, b"\x00" * 128)  # both warm
        assert metrics.get("l3.coherent_reads").value == 2
        assert metrics.get("l3.misses").value == 2
        assert metrics.get("l3.hits").value == 2


class TestRuntimeWiring:
    @pytest.fixture(scope="class")
    def compiled(self):
        from repro.quantize import calibrate, quantize_graph
        from repro.runtime import compile_model
        from tests.quantize.test_convert import small_cnn

        graph = small_cnn()
        rng = np.random.default_rng(0)
        feeds = {
            name: rng.uniform(-1, 1, size=graph.tensor(name).shape).astype(np.float32)
            for name in graph.inputs
        }
        quantized = quantize_graph(graph, calibrate(graph, [feeds]))
        return quantize_graph, quantized, feeds

    def test_compile_and_session_spans(self, compiled):
        from repro.runtime import InferenceSession, compile_model

        _, quantized, feeds = compiled
        with obs.observe() as (tracer, metrics):
            model = compile_model(quantized, optimize=False, name="small")
            session = InferenceSession(model)
            session.run(feeds)
            session.close()
        delegate_names = {s.name for s in tracer.spans_on("delegate")}
        assert "delegate.compile" in delegate_names
        assert "delegate.run" in delegate_names
        driver_names = {s.name for s in tracer.spans_on("driver")}
        assert {"driver.probe", "driver.open", "driver.close"} <= driver_names
        # The modelled execution timeline is emitted in segment order.
        schedule = tracer.spans_on("delegate.schedule")
        assert schedule, "expected the Fig. 8/9 schedule spans"
        assert metrics.get("delegate.inferences").value == 1
        compile_span = next(
            s for s in tracer.spans_on("delegate") if s.name == "delegate.compile"
        )
        assert compile_span.args["segments"] == len(model.segments)


class TestMlperfWiring:
    class FakeSystem:
        model_key = "fake"

        def single_stream_latency_seconds(self):
            return 1e-3

        def offline_throughput_ips(self, cores=8):
            return 1000.0

    def test_single_stream_spans_and_histogram(self):
        from repro.perf.mlperf import run_single_stream

        with obs.observe() as (tracer, metrics):
            result = run_single_stream(self.FakeSystem(), queries=16)
        (span,) = tracer.spans_on("mlperf")
        assert span.name == "mlperf.single_stream"
        assert span.args["p90_latency_ms"] == pytest.approx(result.p90_latency_ms)
        queries = tracer.spans_on("mlperf.queries")
        assert len(queries) == 16
        # Queries tile the modelled timeline back-to-back.
        assert queries[1].start_us == pytest.approx(queries[0].end_us)
        histogram = metrics.get("mlperf.latency_seconds")
        assert histogram.count == 16
        assert histogram.percentile(90) == pytest.approx(
            result.p90_latency_seconds, rel=0.05
        )

    def test_offline_span(self):
        from repro.perf.mlperf import run_offline

        with obs.observe() as (tracer, metrics):
            result = run_offline(self.FakeSystem(), queries=32)
        (span,) = tracer.spans_on("mlperf")
        assert span.name == "mlperf.offline"
        assert span.args["throughput_ips"] == pytest.approx(result.throughput_ips)
        assert metrics.get("mlperf.offline_ips").value == pytest.approx(
            result.throughput_ips
        )


class TestProfilerForwarding:
    def test_profiler_spans_reach_the_tracer(self):
        machine = Ncore()
        machine.write_data_ram(0, bytes(np.full(4096, 1, np.uint8)))
        machine.write_weight_ram(0, bytes(np.full(4096, 1, np.uint8)))
        from repro.runtime.profiler import Profiler

        with obs.observe() as (tracer, _):
            profiler = Profiler(machine)
            trace = profiler.run(profiler.instrument(
                [("compute", assemble("loop 4 {\n  mac dram[a0], wtram[a1]\n}"))]
            ))
        names = {s.name for s in tracer.spans_on("ncore")}
        assert "compute" in names      # forwarded profiler span
        assert "ncore.run" in names    # machine-level span
        forwarded = next(s for s in tracer.spans_on("ncore") if s.name == "compute")
        assert forwarded.args["start_cycle"] == trace.span("compute").start_cycle
