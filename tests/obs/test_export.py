"""Tests for the Chrome-trace/Perfetto exporter and the metrics dumps."""

import json

import pytest

from repro import obs
from repro.obs.export import SIM_PID, WALL_PID


def make_tracer():
    tracer = obs.Tracer(clock_hz=1e6)
    with tracer.span("compile", track="delegate", model="m"):
        pass
    tracer.add_cycle_span("kernel", "ncore", 0, 500, args={"macs": 10})
    tracer.instant("marker", track="delegate")
    tracer.counter("occupancy", 3.0, ts_us=100.0)
    return tracer


class TestChromeTrace:
    def test_document_shape(self):
        doc = obs.chrome_trace(make_tracer())
        assert "traceEvents" in doc
        assert doc["displayTimeUnit"] == "ms"
        for event in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(event)

    def test_complete_events_carry_spans(self):
        doc = obs.chrome_trace(make_tracer())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in complete}
        assert names == {"compile", "kernel"}
        kernel = next(e for e in complete if e["name"] == "kernel")
        assert kernel["ts"] == 0
        assert kernel["dur"] == pytest.approx(500.0)
        assert kernel["args"]["macs"] == 10

    def test_domains_map_to_processes(self):
        doc = obs.chrome_trace(make_tracer())
        complete = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert complete["compile"]["pid"] == WALL_PID
        assert complete["kernel"]["pid"] == SIM_PID

    def test_metadata_names_processes_and_tracks(self):
        doc = obs.chrome_trace(make_tracer())
        metadata = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        thread_names = {e["args"]["name"] for e in metadata
                        if e["name"] == "thread_name"}
        assert {"delegate", "ncore"} <= thread_names
        process_names = {e["args"]["name"] for e in metadata
                         if e["name"] == "process_name"}
        assert "model (simulated time)" in process_names

    def test_counter_events(self):
        doc = obs.chrome_trace(make_tracer())
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert any(e["name"] == "occupancy" and e["args"]["value"] == 3.0
                   for e in counters)

    def test_metrics_ride_along_as_counters(self):
        registry = obs.MetricsRegistry()
        registry.counter("dma.bytes_moved", unit="B").inc(4096)
        doc = obs.chrome_trace(make_tracer(), registry)
        counters = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "C"}
        assert counters["dma.bytes_moved"]["args"]["value"] == 4096

    def test_write_is_valid_json(self, tmp_path):
        import numpy as np

        tracer = make_tracer()
        tracer.add_cycle_span("np", "ncore", 500, 600,
                              args={"value": np.int64(7)})
        path = tmp_path / "out.trace.json"
        obs.write_chrome_trace(path, tracer)
        doc = json.loads(path.read_text())
        assert any(e["name"] == "np" for e in doc["traceEvents"])


class TestMetricsDumps:
    def test_csv_has_one_row_per_metric(self):
        registry = obs.MetricsRegistry()
        registry.counter("a", unit="B").inc(1)
        registry.gauge("b").set(2)
        registry.histogram("c").observe(3.0)
        text = obs.metrics_csv(registry)
        lines = text.strip().splitlines()
        assert lines[0].startswith("name,kind,unit")
        assert len(lines) == 4
        assert lines[1].startswith("a,counter,B,1")

    def test_json_round_trips(self):
        registry = obs.MetricsRegistry()
        registry.counter("a").inc(5)
        assert json.loads(json.dumps(obs.metrics_json(registry)))["a"]["value"] == 5


class TestRender:
    def test_render_bars_alignment(self):
        text = obs.render_bars("title", [("a", 0, 50), ("b", 50, 50)], total=100,
                               width=10, unit="cyc")
        lines = text.splitlines()
        assert lines[0] == "title"
        assert "#" in lines[1]
        # Second bar starts at half the axis.
        assert lines[2].split("|")[1].startswith("     #")

    def test_render_tracer_sections_per_track(self):
        text = obs.render_tracer(make_tracer())
        assert "[delegate]" in text
        assert "[ncore]" in text
        assert "cycles" in text

    def test_render_empty_tracer(self):
        assert obs.render_tracer(obs.Tracer()) == "(empty trace)"
