"""Windowed aggregations and SLO monitoring (``repro.obs.window``)."""

import numpy as np
import pytest

from repro.obs.window import Ewma, RateMeter, SloMonitor, WindowedHistogram


class TestWindowedHistogram:
    def test_unbounded_window_matches_numpy_exactly(self):
        # The acceptance contract: with window_seconds=None the final
        # rolling percentile IS the one-shot percentile, bit for bit.
        rng = np.random.default_rng(7)
        values = rng.exponential(2e-3, size=500)
        hist = WindowedHistogram("lat", unit="s")
        for index, value in enumerate(values):
            hist.observe(float(value), ts=index * 1e-3)
        for p in (50, 90, 99):
            assert hist.percentile(p) == float(np.percentile(values, p))

    def test_sliding_window_evicts_old_samples(self):
        hist = WindowedHistogram("lat", window_seconds=1.0)
        hist.observe(100.0, ts=0.0)
        hist.observe(1.0, ts=2.0)
        hist.observe(2.0, ts=2.5)
        # The ts=0 outlier fell out of the [1.5, 2.5] window.
        assert hist.window_count(now=2.5) == 2
        assert hist.percentile(99, now=2.5) <= 2.0

    def test_lifetime_stats_survive_eviction(self):
        hist = WindowedHistogram("lat", window_seconds=0.5)
        for index in range(10):
            hist.observe(1.0, ts=float(index))
        hist.window_count(now=9.0)  # trims to one sample
        assert hist.count == 10
        assert hist.total == pytest.approx(10.0)

    def test_rejects_nan_and_time_travel(self):
        hist = WindowedHistogram("lat")
        with pytest.raises(ValueError, match="NaN"):
            hist.observe(float("nan"), ts=0.0)
        hist.observe(1.0, ts=5.0)
        with pytest.raises(ValueError, match="monotonic"):
            hist.observe(1.0, ts=4.0)

    def test_equal_timestamps_are_allowed(self):
        # Batch completion: many queries finish at the same engine time.
        hist = WindowedHistogram("lat")
        hist.observe(1.0, ts=1.0)
        hist.observe(2.0, ts=1.0)
        assert hist.window_count() == 2

    def test_rate_and_snapshot(self):
        hist = WindowedHistogram("lat", window_seconds=2.0, labels={"model": "m"})
        for index in range(8):
            hist.observe(0.5, ts=index * 0.25)
        assert hist.rate() == pytest.approx(8 / 2.0)
        snap = hist.snapshot()
        assert snap["kind"] == "windowed_histogram"
        assert snap["labels"] == {"model": "m"}
        assert snap["p50"] == pytest.approx(0.5)


class TestRateMeter:
    def test_events_per_second(self):
        meter = RateMeter("qps", window_seconds=1.0)
        for index in range(10):
            meter.add(ts=index * 0.1)
        # The window is inclusive at its left edge: all 10 samples count.
        assert meter.rate(now=1.0) == pytest.approx(10.0)
        # Half fall out once the window slides past them.
        assert meter.rate(now=1.45) == pytest.approx(5.0)

    def test_weighted(self):
        meter = RateMeter("bytes", window_seconds=2.0)
        meter.add(ts=0.0, weight=100.0)
        meter.add(ts=1.0, weight=300.0)
        assert meter.rate(now=1.0) == pytest.approx(200.0)


class TestEwma:
    def test_first_sample_seeds_the_average(self):
        ewma = Ewma("util", halflife_seconds=1.0)
        assert ewma.update(0.8, ts=0.0) == pytest.approx(0.8)

    def test_halflife_decay(self):
        ewma = Ewma("util", halflife_seconds=1.0)
        ewma.update(1.0, ts=0.0)
        # One half-life later a 0.0 sample pulls halfway down.
        assert ewma.update(0.0, ts=1.0) == pytest.approx(0.5)


class TestSloMonitor:
    def test_attainment_and_budget(self):
        slo = SloMonitor("slo", target_seconds=1e-3, error_budget=0.01)
        for index in range(99):
            assert slo.observe(0.5e-3, ts=index * 1e-3)
        assert not slo.observe(2e-3, ts=0.1)
        assert slo.attainment == pytest.approx(0.99)
        # Exactly at budget: 1% violations against a 1% budget.
        assert slo.budget_remaining == pytest.approx(0.0)
        assert slo.ok

    def test_burn_rate_over_window(self):
        slo = SloMonitor("slo", target_seconds=1e-3, error_budget=0.01,
                         window_seconds=1.0)
        for index in range(10):
            slo.observe(2e-3 if index % 2 else 0.5e-3, ts=index * 0.1)
        # Half the windowed queries violate a 1% budget: burn 50x.
        assert slo.burn_rate(now=0.9) == pytest.approx(50.0)

    def test_snapshot_kind(self):
        slo = SloMonitor("slo", target_seconds=1.0, labels={"model": "m"})
        slo.observe(0.5, ts=0.0)
        snap = slo.snapshot()
        assert snap["kind"] == "slo"
        assert snap["attainment"] == 1.0
        assert snap["labels"] == {"model": "m"}

    def test_validation(self):
        with pytest.raises(ValueError):
            SloMonitor("slo", target_seconds=0.0)
        with pytest.raises(ValueError):
            SloMonitor("slo", target_seconds=1.0, error_budget=1.5)
