"""Tests for the tracer: spans, domains, installation."""

import pytest

from repro import obs
from repro.obs.tracer import NULL_TRACER, SIM, WALL


class TestNullDefault:
    def test_default_is_null(self):
        assert obs.get_tracer() is NULL_TRACER
        assert not obs.get_tracer().enabled

    def test_null_tracer_records_nothing(self):
        tracer = obs.get_tracer()
        with tracer.span("x", track="t") as handle:
            handle.set(a=1)
        tracer.add_cycle_span("y", "t", 0, 10)
        tracer.instant("z")
        # No attribute error, no state: still the shared null tracer.
        assert obs.get_tracer() is NULL_TRACER


class TestInstall:
    def test_install_and_restore(self):
        tracer = obs.Tracer()
        with obs.install_tracer(tracer) as installed:
            assert installed is tracer
            assert obs.get_tracer() is tracer
            assert obs.get_tracer().enabled
        assert obs.get_tracer() is NULL_TRACER

    def test_restore_on_exception(self):
        with pytest.raises(RuntimeError), obs.install_tracer(obs.Tracer()):
            raise RuntimeError("boom")
        assert obs.get_tracer() is NULL_TRACER

    def test_nested_install_restores_outer(self):
        outer, inner = obs.Tracer(), obs.Tracer()
        with obs.install_tracer(outer):
            with obs.install_tracer(inner):
                assert obs.get_tracer() is inner
            assert obs.get_tracer() is outer

    def test_observe_installs_both(self):
        with obs.observe() as (tracer, metrics):
            assert obs.get_tracer() is tracer
            assert obs.get_metrics() is metrics
        assert obs.get_tracer() is NULL_TRACER


class TestWallSpans:
    def test_span_records_duration_and_args(self):
        tracer = obs.Tracer()
        with tracer.span("work", track="delegate", model="m") as handle:
            handle.set(nodes=3)
        (span,) = tracer.spans
        assert span.name == "work"
        assert span.track == "delegate"
        assert span.domain == WALL
        assert span.duration_us >= 0
        assert span.args == {"model": "m", "nodes": 3}

    def test_nested_spans_are_contained(self):
        tracer = obs.Tracer()
        with tracer.span("outer"), tracer.span("inner"):
            pass
        inner, outer = tracer.spans  # inner closes first
        assert outer.start_us <= inner.start_us
        assert inner.end_us <= outer.end_us

    def test_span_recorded_even_when_body_raises(self):
        tracer = obs.Tracer()
        with pytest.raises(ValueError), tracer.span("fails"):
            raise ValueError("x")
        assert [s.name for s in tracer.spans] == ["fails"]

    def test_instant(self):
        tracer = obs.Tracer()
        tracer.instant("marker", track="t", reason="why")
        (instant,) = tracer.instants
        assert instant.name == "marker"
        assert instant.args == {"reason": "why"}


class TestCycleSpans:
    def test_cycles_convert_through_clock(self):
        tracer = obs.Tracer(clock_hz=1e6)  # 1 cycle == 1 us
        tracer.add_cycle_span("k", "ncore", 100, 350)
        (span,) = tracer.spans
        assert span.domain == SIM
        assert span.start_us == pytest.approx(100.0)
        assert span.duration_us == pytest.approx(250.0)
        assert span.args["start_cycle"] == 100
        assert span.args["end_cycle"] == 350

    def test_tracks_in_first_appearance_order(self):
        tracer = obs.Tracer()
        tracer.add_cycle_span("a", "t2", 0, 1)
        tracer.add_cycle_span("b", "t1", 0, 1)
        tracer.add_cycle_span("c", "t2", 1, 2)
        assert tracer.tracks() == ["t2", "t1"]
        assert [s.name for s in tracer.spans_on("t2")] == ["a", "c"]
