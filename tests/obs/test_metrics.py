"""Tests for the metrics registry and the hardware-counter adapter."""

import pytest

from repro import obs
from repro.ncore import PerfCounter
from repro.obs.metrics import NULL_METRICS


class TestRegistry:
    def test_counter_get_or_create(self):
        registry = obs.MetricsRegistry()
        registry.counter("a").inc(3)
        registry.counter("a").inc(2)
        assert registry.get("a").value == 5

    def test_counter_is_monotonic(self):
        registry = obs.MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("a").inc(-1)

    def test_kind_conflict_raises(self):
        registry = obs.MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("a")

    def test_gauge(self):
        registry = obs.MetricsRegistry()
        registry.gauge("depth").set(7)
        registry.gauge("depth").set(4)
        assert registry.get("depth").value == 4

    def test_snapshot_shape(self):
        registry = obs.MetricsRegistry()
        registry.counter("c", unit="B").inc(10)
        snap = registry.snapshot()
        assert snap["c"]["kind"] == "counter"
        assert snap["c"]["value"] == 10
        assert snap["c"]["unit"] == "B"

    def test_default_registry_is_null(self):
        assert obs.get_metrics() is NULL_METRICS
        assert not obs.get_metrics().enabled
        # Null metrics absorb updates without tracking anything.
        obs.get_metrics().counter("x").inc(5)


class TestHistogram:
    def test_percentiles_and_stats(self):
        histogram = obs.Histogram("lat")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.count == 100
        assert histogram.mean == pytest.approx(50.5)
        assert histogram.min == 1.0
        assert histogram.max == 100.0
        assert histogram.percentile(90) == pytest.approx(90.0, abs=1.0)

    def test_capped_observations_keep_exact_count(self):
        histogram = obs.Histogram("lat", max_observations=10)
        for value in range(100):
            histogram.observe(float(value))
        assert histogram.count == 100
        assert histogram.max == 99.0


class TestHardwareCounter:
    def test_wraparound_breakpoint_preserved(self):
        # Section IV-F: configure an offset so the counter wraps (and
        # breaks) after a chosen number of increments — through the
        # registry view, exactly as through the raw PerfCounter.
        registry = obs.MetricsRegistry()
        perf_counter = PerfCounter("macs", bits=8)
        perf_counter.configure(offset=250, break_on_wrap=True)
        view = registry.bind_hardware("ncore.hw.macs", perf_counter)
        assert view.inc(5) is False
        assert view.inc(5) is True  # wraps 255 -> 4, breakpoint fires
        assert view.wrapped
        assert view.value == perf_counter.value == 4

    def test_snapshot_reports_hardware_state(self):
        registry = obs.MetricsRegistry()
        perf_counter = PerfCounter("cycles", bits=48)
        perf_counter.add(123)
        registry.bind_hardware("hw", perf_counter)
        snap = registry.snapshot()["hw"]
        assert snap["kind"] == "hardware"
        assert snap["value"] == 123
        assert snap["bits"] == 48
        assert snap["wrapped"] is False

    def test_machine_bind_metrics(self):
        from repro.ncore import Ncore

        registry = obs.MetricsRegistry()
        machine = Ncore()
        machine.bind_metrics(registry)
        assert "ncore.hw.macs" in registry
        # The view tracks the live machine counter.
        machine.perf_counters["macs"].add(4096)
        assert registry.get("ncore.hw.macs").value == 4096
