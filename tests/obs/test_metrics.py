"""Tests for the metrics registry and the hardware-counter adapter."""

import pytest

from repro import obs
from repro.ncore import PerfCounter
from repro.obs.metrics import NULL_METRICS


class TestRegistry:
    def test_counter_get_or_create(self):
        registry = obs.MetricsRegistry()
        registry.counter("a").inc(3)
        registry.counter("a").inc(2)
        assert registry.get("a").value == 5

    def test_counter_is_monotonic(self):
        registry = obs.MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("a").inc(-1)

    def test_kind_conflict_raises(self):
        registry = obs.MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("a")

    def test_gauge(self):
        registry = obs.MetricsRegistry()
        registry.gauge("depth").set(7)
        registry.gauge("depth").set(4)
        assert registry.get("depth").value == 4

    def test_snapshot_shape(self):
        registry = obs.MetricsRegistry()
        registry.counter("c", unit="B").inc(10)
        snap = registry.snapshot()
        assert snap["c"]["kind"] == "counter"
        assert snap["c"]["value"] == 10
        assert snap["c"]["unit"] == "B"

    def test_default_registry_is_null(self):
        assert obs.get_metrics() is NULL_METRICS
        assert not obs.get_metrics().enabled
        # Null metrics absorb updates without tracking anything.
        obs.get_metrics().counter("x").inc(5)


class TestHistogram:
    def test_percentiles_and_stats(self):
        histogram = obs.Histogram("lat")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.count == 100
        assert histogram.mean == pytest.approx(50.5)
        assert histogram.min == 1.0
        assert histogram.max == 100.0
        assert histogram.percentile(90) == pytest.approx(90.0, abs=1.0)

    def test_capped_observations_keep_exact_count(self):
        histogram = obs.Histogram("lat", max_observations=10)
        for value in range(100):
            histogram.observe(float(value))
        assert histogram.count == 100
        assert histogram.max == 99.0


class TestHardwareCounter:
    def test_wraparound_breakpoint_preserved(self):
        # Section IV-F: configure an offset so the counter wraps (and
        # breaks) after a chosen number of increments — through the
        # registry view, exactly as through the raw PerfCounter.
        registry = obs.MetricsRegistry()
        perf_counter = PerfCounter("macs", bits=8)
        perf_counter.configure(offset=250, break_on_wrap=True)
        view = registry.bind_hardware("ncore.hw.macs", perf_counter)
        assert view.inc(5) is False
        assert view.inc(5) is True  # wraps 255 -> 4, breakpoint fires
        assert view.wrapped
        assert view.value == perf_counter.value == 4

    def test_snapshot_reports_hardware_state(self):
        registry = obs.MetricsRegistry()
        perf_counter = PerfCounter("cycles", bits=48)
        perf_counter.add(123)
        registry.bind_hardware("hw", perf_counter)
        snap = registry.snapshot()["hw"]
        assert snap["kind"] == "hardware"
        assert snap["value"] == 123
        assert snap["bits"] == 48
        assert snap["wrapped"] is False

    def test_machine_bind_metrics(self):
        from repro.ncore import Ncore

        registry = obs.MetricsRegistry()
        machine = Ncore()
        machine.bind_metrics(registry)
        assert "ncore.hw.macs" in registry
        # The view tracks the live machine counter.
        machine.perf_counters["macs"].add(4096)
        assert registry.get("ncore.hw.macs").value == 4096


class TestHistogramPercentileEdges:
    def test_empty_histogram_reports_zero(self):
        assert obs.Histogram("lat").percentile(99) == 0.0

    def test_single_sample_is_every_percentile(self):
        histogram = obs.Histogram("lat")
        histogram.observe(7.5)
        for p in (0, 50, 99, 100):
            assert histogram.percentile(p) == 7.5

    def test_p0_and_p100_are_min_and_max(self):
        histogram = obs.Histogram("lat")
        for value in (3.0, 1.0, 2.0):
            histogram.observe(value)
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 3.0

    def test_matches_numpy_bit_for_bit(self):
        import numpy as np

        rng = np.random.default_rng(11)
        values = rng.exponential(1.0, size=257)
        histogram = obs.Histogram("lat")
        for value in values:
            histogram.observe(float(value))
        for p in (0, 12.5, 50, 90, 99, 99.9, 100):
            assert histogram.percentile(p) == float(np.percentile(values, p))

    def test_rejects_nan_observation(self):
        with pytest.raises(ValueError, match="NaN"):
            obs.Histogram("lat").observe(float("nan"))

    def test_rejects_out_of_range_percentile(self):
        histogram = obs.Histogram("lat")
        histogram.observe(1.0)
        for bad in (-1, 101, float("nan")):
            with pytest.raises(ValueError):
                histogram.percentile(bad)


class TestLabelledMetrics:
    def test_labels_create_distinct_series(self):
        registry = obs.MetricsRegistry()
        registry.counter("hits", labels={"socket": 0}).inc(1)
        registry.counter("hits", labels={"socket": 1}).inc(5)
        assert registry.get('hits{socket="0"}').value == 1
        assert registry.get('hits{socket="1"}').value == 5

    def test_labelled_name_is_order_insensitive(self):
        from repro.obs.metrics import labelled_name

        assert (labelled_name("m", {"b": 1, "a": 2})
                == labelled_name("m", {"a": 2, "b": 1}))
        assert labelled_name("m", None) == "m"

    def test_snapshot_carries_labels(self):
        registry = obs.MetricsRegistry()
        registry.gauge("depth", labels={"model": "resnet"}).set(3)
        snap = registry.snapshot()['depth{model="resnet"}']
        assert snap["labels"] == {"model": "resnet"}

    def test_hardware_wraparound_under_labelled_registry(self):
        # Satellite: the wrap semantics of IV-F survive when the same
        # registry also hosts labelled software series.
        registry = obs.MetricsRegistry()
        registry.counter("sw.events", labels={"socket": 0}).inc(3)
        perf_counter = PerfCounter("macs", bits=8)
        perf_counter.configure(offset=254)
        view = registry.bind_hardware("hw.macs", perf_counter,
                                      labels={"socket": 0})
        view.inc(4)  # 254 + 4 wraps an 8-bit counter to 2
        assert view.wrapped
        assert view.value == 2
        snap = registry.snapshot()
        assert snap['hw.macs{socket="0"}']["wrapped"] is True
        assert snap['sw.events{socket="0"}']["value"] == 3
