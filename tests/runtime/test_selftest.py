"""Tests for the power-on self-test (the ROM's self-test routines)."""

import pytest

from repro.ncore import Ncore
from repro.runtime import DriverError, NcoreKernelDriver, power_on_self_test
from repro.runtime.selftest import ROM_MAC_TEST, install_rom
from repro.soc import ChaSoc


@pytest.fixture
def probed_driver():
    driver = NcoreKernelDriver(ChaSoc())
    driver.probe()
    return driver


class TestPost:
    def test_healthy_device_passes(self, probed_driver):
        report = probed_driver.self_test()
        assert report.passed
        assert report.ram_march_ok
        assert report.mac_datapath_ok
        assert report.dma_loopback_ok
        assert report.debug_fabric_ok

    def test_requires_probe(self):
        driver = NcoreKernelDriver(ChaSoc())
        with pytest.raises(DriverError, match="probe"):
            driver.self_test()

    def test_refused_while_owned(self, probed_driver):
        probed_driver.open("user")
        with pytest.raises(DriverError, match="owned"):
            probed_driver.self_test()

    def test_post_leaves_machine_reset(self, probed_driver):
        probed_driver.self_test()
        machine = probed_driver.soc.ncore
        assert machine.total_cycles == 0
        assert not machine.acc_int.any()

    def test_unconfigured_dma_detected(self):
        machine = Ncore()  # windows never configured
        report = power_on_self_test(machine)
        assert not report.passed
        assert any("DMA" in f for f in report.failures)


class TestRomRoutine:
    def test_rom_fits_in_4kb(self):
        from repro.isa import assemble

        program = assemble(ROM_MAC_TEST)
        assert len(program) * 16 <= 4 * 1024

    def test_rom_entry_is_after_the_bank(self):
        machine = Ncore()
        entry = install_rom(machine)
        assert entry == machine.iram.bank_instructions
        # The routine is fetchable at its entry point.
        machine.iram.fetch(entry)

    def test_rom_routine_coexists_with_bank_programs(self):
        # Loading a normal program must not disturb the ROM (and vice
        # versa): "commonly executed code and self-test routines" persist.
        from repro.isa import assemble

        machine = Ncore()
        entry = install_rom(machine)
        machine.load_program(assemble("setaddr a0, 5\nhalt"))
        machine.run()
        assert machine.addr_regs[0] == 5
        machine.iram.fetch(entry)  # ROM still mapped
