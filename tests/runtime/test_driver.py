"""Tests for the kernel driver model (section V-D)."""

import pytest

from repro.runtime import DriverError, NcoreKernelDriver
from repro.soc import ChaSoc


@pytest.fixture
def driver():
    return NcoreKernelDriver(ChaSoc())


class TestProbe:
    def test_probe_powers_up_and_configures_dma(self, driver):
        driver.probe()
        assert driver.powered_on
        assert driver.dma_window_base is not None
        # Both engines got their windows from the protected config fields.
        assert driver.soc.ncore.dma_read._window_base == driver.dma_window_base
        assert driver.soc.ncore_pci.dma_window_base == driver.dma_window_base

    def test_open_before_probe_rejected(self, driver):
        with pytest.raises(DriverError):
            driver.open("user")


class TestOwnership:
    def test_single_owner_enforced(self, driver):
        driver.probe()
        driver.open("user-a")
        with pytest.raises(DriverError, match="owned"):
            driver.open("user-b")

    def test_close_releases_ownership(self, driver):
        driver.probe()
        mapping = driver.open("user-a")
        driver.close(mapping)
        driver.open("user-b")  # now fine

    def test_power_down_refused_while_owned(self, driver):
        driver.probe()
        driver.open("user-a")
        with pytest.raises(DriverError):
            driver.power_down()


class TestMemoryMapping:
    def test_mapping_reaches_ncore_srams(self, driver):
        driver.probe()
        mapping = driver.open("user")
        mapping.write_data_ram(0, b"\x42" * 16)
        assert mapping.read_data_ram(0, 16) == b"\x42" * 16

    def test_dma_address_translation(self, driver):
        driver.probe()
        assert driver.dma_address_for(4096) == driver.dma_window_base + 4096
