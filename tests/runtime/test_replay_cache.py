"""The tier-2 segment replay cache: identical queries skip re-execution.

Replay must be an invisible optimization — outputs bit-identical to a
fresh quantized execution, timing still recomputed per call — with LRU
eviction bounded by ``replay_capacity`` and a clean opt-out.
"""

import numpy as np
import pytest

from repro.models import PAPER_CHARACTERISTICS
from repro.models.mobilenet import build_mobilenet_v1
from repro.quantize import calibrate, quantize_graph
from repro.runtime import NcoreExecutor, compile_model, execute_quantized
from repro.runtime.delegate import InferenceSession

from tests.quantize.test_convert import calibration_batches, small_cnn


@pytest.fixture(scope="module")
def compiled():
    g = small_cnn()
    qg = quantize_graph(g, calibrate(g, calibration_batches()))
    return compile_model(qg, name="smallcnn-replay")


class TestReplayCache:
    def test_hit_returns_bit_identical_outputs(self, compiled):
        executor = NcoreExecutor(compiled, verify=False)
        feeds = calibration_batches(count=1, seed=21)[0]
        first = executor.execute(feeds)
        assert executor.replay_stats == {"hits": 0, "misses": 1}
        second = executor.execute(feeds)
        assert executor.replay_stats == {"hits": 1, "misses": 1}
        direct = execute_quantized(compiled.graph, feeds)
        for name in direct:
            np.testing.assert_array_equal(first.outputs[name], direct[name])
            np.testing.assert_array_equal(second.outputs[name], direct[name])
        # Timing is modelled, not cached: the hit reports it identically.
        assert second.timing.total_seconds == first.timing.total_seconds
        executor.close()

    def test_distinct_feeds_miss(self, compiled):
        executor = NcoreExecutor(compiled, verify=False)
        a, b = calibration_batches(count=2, seed=5)
        executor.execute(a)
        executor.execute(b)
        assert executor.replay_stats == {"hits": 0, "misses": 2}
        executor.close()

    def test_cached_outputs_are_isolated_from_caller_mutation(self, compiled):
        executor = NcoreExecutor(compiled, verify=False)
        feeds = calibration_batches(count=1, seed=9)[0]
        first = executor.execute(feeds)
        name = next(iter(first.outputs))
        first.outputs[name][...] = 0  # caller scribbles on its result
        second = executor.execute(feeds)
        direct = execute_quantized(compiled.graph, feeds)
        np.testing.assert_array_equal(second.outputs[name], direct[name])
        executor.close()

    def test_lru_eviction_respects_capacity(self, compiled):
        executor = NcoreExecutor(compiled, verify=False, replay_capacity=2)
        batches = calibration_batches(count=3, seed=30)
        for feeds in batches:
            executor.execute(feeds)
        assert len(executor._replay_cache) == 2
        # The oldest entry was evicted: replaying it misses again.
        executor.execute(batches[0])
        assert executor.replay_stats["misses"] == 4
        # The newest entries survived.
        executor.execute(batches[2])
        assert executor.replay_stats["hits"] == 1
        executor.close()

    def test_opt_out_disables_caching(self, compiled):
        executor = NcoreExecutor(compiled, verify=False, replay=False)
        feeds = calibration_batches(count=1, seed=2)[0]
        executor.execute(feeds)
        executor.execute(feeds)
        assert executor.replay_stats == {"hits": 0, "misses": 0}
        assert not executor._replay_cache
        executor.close()

    def test_batched_execution_replays_per_query(self, compiled):
        executor = NcoreExecutor(compiled, verify=False)
        feeds = calibration_batches(count=1, seed=13)[0]
        results = executor.execute_batch([feeds, feeds])
        assert executor.replay_stats["hits"] == 1  # second query in batch
        direct = execute_quantized(compiled.graph, feeds)
        for result in results:
            for name in direct:
                np.testing.assert_array_equal(result.outputs[name], direct[name])
        executor.close()


class TestReplayOnZooModel:
    def test_mobilenet_replay_on_off_identical(self):
        graph = build_mobilenet_v1(resolution=64)
        info = PAPER_CHARACTERISTICS["mobilenet_v1"]
        feeds = info.sample_input(graph, seed=7)
        model = compile_model(quantize_graph(graph, calibrate(graph, [feeds])))
        with_replay = InferenceSession(model, replay=True)
        without = InferenceSession(model, replay=False)
        try:
            warm = with_replay.run(feeds).outputs
            hit = with_replay.run(feeds).outputs
            plain = without.run(feeds).outputs
            assert with_replay.executor.replay_stats == {"hits": 1, "misses": 1}
            assert without.executor.replay_stats == {"hits": 0, "misses": 0}
            for name in plain:
                np.testing.assert_array_equal(warm[name], plain[name])
                np.testing.assert_array_equal(hit[name], plain[name])
        finally:
            with_replay.close()
            without.close()
