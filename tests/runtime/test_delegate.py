"""Tests for model compilation and the inference session."""

import numpy as np
import pytest

from repro.graph import execute_float
from repro.quantize import calibrate, quantize_graph
from repro.runtime import InferenceSession, compile_model
from tests.quantize.test_convert import calibration_batches, small_cnn


@pytest.fixture(scope="module")
def compiled():
    g = small_cnn()
    qg = quantize_graph(g, calibrate(g, calibration_batches()))
    return compile_model(qg, name="smallcnn")


class TestCompileModel:
    def test_segments_and_loadables(self, compiled):
        assert compiled.ncore_segments  # something landed on Ncore
        for index in compiled.ncore_segments:
            assert index in compiled.loadables
            assert compiled.loadables[index].kernels

    def test_cycle_estimate_positive(self, compiled):
        assert compiled.ncore_cycles() > 0

    def test_summary_renders(self, compiled):
        text = compiled.summary()
        assert "ncore" in text
        assert "cycles" in text


class TestInferenceSession:
    def test_run_produces_outputs_and_timing(self, compiled):
        session = InferenceSession(compiled)
        feeds = calibration_batches(count=1, seed=4)[0]
        result = session.run(feeds)
        assert result.outputs
        assert result.timing.ncore_seconds > 0
        assert result.timing.x86_seconds > 0
        assert 0 < result.timing.ncore_fraction < 1
        session.close()

    def test_session_matches_direct_quantized_execution(self, compiled):
        from repro.runtime import execute_quantized

        session = InferenceSession(compiled)
        feeds = calibration_batches(count=1, seed=8)[0]
        result = session.run(feeds)
        direct = execute_quantized(compiled.graph, feeds)
        for name in direct:
            np.testing.assert_array_equal(result.outputs[name], direct[name])
        session.close()

    def test_quantized_session_tracks_float_model(self, compiled):
        g = small_cnn()
        session = InferenceSession(compiled)
        # Use a calibration batch: PTQ clips activations outside the
        # calibrated range by design, so fidelity is only promised there.
        feeds = calibration_batches(count=1, seed=5)[0]
        result = session.run(feeds)
        float_out = list(execute_float(g, feeds).values())[0]
        quant_out = list(result.outputs.values())[0]
        assert np.abs(quant_out - float_out).max() < 0.15 * max(
            1e-3, np.abs(float_out).max()
        )
        session.close()

    def test_two_sessions_conflict_on_one_soc(self, compiled):
        from repro.runtime import DriverError
        from repro.soc import ChaSoc

        soc = ChaSoc()
        first = InferenceSession(compiled, soc=soc)
        # A second session on the same SoC needs its own driver claim; the
        # device is busy. (Each session builds its own driver instance, so
        # model the conflict through the driver of the first.)
        with pytest.raises(DriverError):
            first.driver.open("intruder")
        first.close()


class TestPartitionRendering:
    def test_fig9_style_rendering(self, compiled):
        from repro.graph.loadable import render_partition

        text = render_partition(compiled)
        assert "[Ncore]" in text
        assert "[ x86 ]" in text
        assert "conv1" in text

    def test_truncates_long_segments(self, compiled):
        from repro.graph.loadable import render_partition

        text = render_partition(compiled, max_nodes_per_segment=1)
        assert "more" in text
