"""TierPolicy: the unified tier ladder and its back-compat surface."""

import warnings

import numpy as np
import pytest

import repro.runtime.executor as executor_module
from repro.runtime import (
    TIER_CHOICES,
    InferenceSession,
    NcoreExecutor,
    TierPolicy,
    compile_model,
    get_default_tier_policy,
    set_default_tier_policy,
)
from repro.quantize import calibrate, quantize_graph

from tests.quantize.test_convert import calibration_batches, small_cnn


def quantized_model(name="tier-policy-cnn"):
    g = small_cnn()
    qg = quantize_graph(g, calibrate(g, calibration_batches()))
    return compile_model(qg, name=name)


def sample_feeds(seed=3):
    rng = np.random.default_rng(seed)
    return {"x": rng.uniform(-1, 1, size=(1, 8, 8, 3)).astype(np.float32)}


class TestForTier:
    def test_auto_is_the_default_policy(self):
        assert TierPolicy.for_tier("auto") == TierPolicy()

    def test_interpreter_disables_everything(self):
        policy = TierPolicy.for_tier("interpreter")
        assert not policy.replay and not policy.codegen
        assert policy.fastpath is False

    def test_fastpath_forces_tier1(self):
        policy = TierPolicy.for_tier("fastpath")
        assert policy.fastpath is True
        assert not policy.replay and not policy.codegen

    def test_replay_disables_codegen(self):
        policy = TierPolicy.for_tier("replay")
        assert policy.replay and not policy.codegen

    def test_codegen_disables_replay(self):
        policy = TierPolicy.for_tier("codegen")
        assert policy.codegen and not policy.replay

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown tier"):
            TierPolicy.for_tier("jit")

    def test_every_choice_resolves(self):
        for tier in TIER_CHOICES:
            assert isinstance(TierPolicy.for_tier(tier), TierPolicy)

    def test_cli_choices_stay_in_sync(self):
        from repro.cli import _TIER_CHOICES

        assert _TIER_CHOICES == TIER_CHOICES

    def test_predict_tier_is_reserved(self):
        with pytest.raises(NotImplementedError, match="predict"):
            TierPolicy(predict=True)

    def test_invalid_oracle_mode_rejected(self):
        with pytest.raises(ValueError, match="oracle"):
            TierPolicy(oracle="maybe")

    def test_invalid_replay_capacity_rejected(self):
        with pytest.raises(ValueError, match="replay_capacity"):
            TierPolicy(replay_capacity=0)


class TestDefaultPolicy:
    def test_set_returns_the_previous_policy(self):
        original = get_default_tier_policy()
        try:
            previous = set_default_tier_policy(TierPolicy.for_tier("replay"))
            assert previous == original
            assert get_default_tier_policy() == TierPolicy.for_tier("replay")
        finally:
            set_default_tier_policy(original)

    def test_sessions_pick_up_the_default(self):
        model = quantized_model()
        original = get_default_tier_policy()
        set_default_tier_policy(TierPolicy.for_tier("interpreter"))
        try:
            session = InferenceSession(model)
            assert session.executor.policy.codegen is False
            session.close()
        finally:
            set_default_tier_policy(original)


class TestLegacyKwargs:
    """Each pre-TierPolicy kwarg folds into the policy and warns once."""

    @pytest.fixture(autouse=True)
    def reset_warn_once(self):
        executor_module._legacy_warned.clear()
        yield
        executor_module._legacy_warned.clear()

    def _warns_once(self, model, name, value):
        with pytest.warns(DeprecationWarning, match=name):
            ex = NcoreExecutor(model, verify=False, **{name: value})
        assert getattr(ex.policy, name) == value
        ex.close()
        # Second use of the same spelling is silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ex = NcoreExecutor(model, verify=False, **{name: value})
        assert getattr(ex.policy, name) == value
        ex.close()

    def test_replay_kwarg(self):
        self._warns_once(quantized_model(), "replay", False)

    def test_replay_capacity_kwarg(self):
        self._warns_once(quantized_model(), "replay_capacity", 7)

    def test_fastpath_kwarg(self):
        self._warns_once(quantized_model(), "fastpath", False)

    def test_sanitize_kwarg(self):
        self._warns_once(quantized_model(), "sanitize", True)

    def test_policy_spelling_never_warns(self):
        model = quantized_model()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ex = NcoreExecutor(
                model, verify=False, policy=TierPolicy(replay=False)
            )
        assert ex.policy.replay is False
        ex.close()


class TestTierSelection:
    def test_last_tier_reflects_the_ladder(self):
        model = quantized_model()
        feeds = sample_feeds()
        session = InferenceSession(model, policy="auto")
        try:
            # auto: replay wins ahead of codegen on a repeat query.
            session.run(feeds)
            first = session.executor.last_tier
            session.run(feeds)
            assert first == "codegen"
            assert session.executor.last_tier == "replay"
        finally:
            session.close()

    def test_interpreter_tier_never_uses_codegen(self):
        model = quantized_model()
        session = InferenceSession(model, policy="interpreter")
        try:
            session.run(sample_feeds())
            assert session.executor.last_tier == "interpreter"
            assert session.executor.macro_kernels is None
        finally:
            session.close()

    def test_codegen_tier_reports_codegen(self):
        model = quantized_model()
        session = InferenceSession(model, policy="codegen")
        try:
            session.run(sample_feeds())
            assert session.executor.last_tier == "codegen"
        finally:
            session.close()

    def test_string_policy_equals_explicit_policy(self):
        model = quantized_model()
        a = NcoreExecutor(model, verify=False, policy="replay")
        b = NcoreExecutor(
            model, verify=False, policy=TierPolicy.for_tier("replay")
        )
        assert a.policy == b.policy
        a.close()
        b.close()
