"""Tests for the quantized kernels, including the cross-check against the
instruction-level Ncore simulator (fast model == machine, bit-exact)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtypes import NcoreDType, QuantParams, dequantize, quantize
from repro.runtime.qkernels import (
    qadd,
    qavg_pool,
    qconv2d,
    qdepthwise,
    qfully_connected,
    qmax_pool,
    qrequant,
)


def qp(scale, zp, dtype=NcoreDType.UINT8):
    return QuantParams(scale=scale, zero_point=zp, dtype=dtype)


class TestQFullyConnectedVsMachine:
    """The decisive test: numpy fast model == Ncore instruction simulator."""

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 12), st.integers(1, 80), st.integers(1, 12), st.integers(0, 10**6))
    def test_bit_exact_against_simulator(self, m, c, n, seed):
        from repro.ncore import Ncore
        from repro.nkl.programs import emit_matmul_program

        rng = np.random.default_rng(seed)
        data = rng.integers(0, 255, size=(m, c)).astype(np.uint8)
        weights = rng.integers(0, 255, size=(c, n)).astype(np.uint8)
        in_qp, w_qp, out_qp = qp(0.02, 128), qp(0.01, 99), qp(0.07, 11)
        fast = qfully_connected(data, weights, None, in_qp, w_qp, out_qp)
        machine = Ncore()
        program, result = emit_matmul_program(machine, data, weights, in_qp, w_qp, out_qp)
        machine.execute_program(program)
        np.testing.assert_array_equal(fast, result.read(machine))


class TestQConv2d:
    def test_tracks_float_conv(self):
        rng = np.random.default_rng(1)
        x_f = rng.uniform(0, 1, size=(1, 6, 6, 4)).astype(np.float32)
        w_f = rng.normal(size=(3, 3, 4, 8)).astype(np.float32) * 0.2
        in_qp = qp(1 / 255, 0)
        w_range = float(w_f.max() - w_f.min())
        w_qp = qp(w_range / 255, int(-w_f.min() / (w_range / 255)))
        from repro.graph.reference import conv2d as conv_f

        expected = conv_f(x_f, w_f, padding=((1, 1), (1, 1)))
        e_range = float(expected.max() - expected.min())
        out_qp = qp(e_range / 255, int(-expected.min() / (e_range / 255)))
        out_q = qconv2d(
            quantize(x_f, in_qp), quantize(w_f, w_qp), None,
            in_qp, w_qp, out_qp, padding=((1, 1), (1, 1)),
        )
        err = np.abs(dequantize(out_q, out_qp) - expected)
        assert err.max() < 6 * out_qp.scale

    def test_padding_contributes_zero_real_value(self):
        # With an asymmetric zero point, padded taps must behave as 0.0.
        x = np.full((1, 2, 2, 1), 130, np.uint8)
        w = np.full((3, 3, 1, 1), 200, np.uint8)
        in_qp, w_qp, out_qp = qp(0.1, 128), qp(0.1, 100), qp(1.0, 0)
        out = qconv2d(x, w, None, in_qp, w_qp, out_qp, padding=((1, 1), (1, 1)))
        # Corner output: only 4 valid taps -> 4 * (2*0.1) * (100*0.1) = wait
        # (130-128)*0.1 = 0.2 ; (200-100)*0.1 = 10 ; 4 taps * 2.0 = 8.0
        assert dequantize(out, out_qp)[0, 0, 0, 0] == pytest.approx(8.0, abs=1.0)

    def test_relu6_clamps_at_quantized_six(self):
        x = np.full((1, 1, 1, 1), 255, np.uint8)
        w = np.full((1, 1, 1, 1), 255, np.uint8)
        in_qp, w_qp = qp(0.1, 0), qp(0.1, 0)
        out_qp = qp(0.05, 0)
        out = qconv2d(x, w, None, in_qp, w_qp, out_qp, activation="relu6")
        assert dequantize(out, out_qp)[0, 0, 0, 0] == pytest.approx(6.0, abs=0.05)

    def test_bias_applied_in_accumulator_units(self):
        x = np.full((1, 1, 1, 1), 10, np.uint8)
        w = np.full((1, 1, 1, 1), 10, np.uint8)
        in_qp, w_qp, out_qp = qp(0.5, 0), qp(0.5, 0), qp(0.25, 0)
        # bias of 5.0 real = 5.0 / (0.5*0.5) = 20 accumulator units
        out = qconv2d(x, w, np.array([20], np.int32), in_qp, w_qp, out_qp)
        assert dequantize(out, out_qp)[0, 0, 0, 0] == pytest.approx(30.0, abs=0.3)


class TestQDepthwise:
    def test_matches_per_channel_conv(self):
        rng = np.random.default_rng(2)
        x = rng.integers(0, 255, size=(1, 5, 5, 3)).astype(np.uint8)
        w = rng.integers(0, 255, size=(3, 3, 3)).astype(np.uint8)
        in_qp, w_qp, out_qp = qp(0.02, 128), qp(0.02, 128), qp(0.2, 128)
        out = qdepthwise(x, w, None, in_qp, w_qp, out_qp, padding=((1, 1), (1, 1)))
        for c in range(3):
            single = qconv2d(
                x[..., c : c + 1], w[..., c : c + 1, None], None,
                in_qp, w_qp, out_qp, padding=((1, 1), (1, 1)),
            )
            np.testing.assert_array_equal(out[..., c], single[..., 0])


class TestQAdd:
    def test_rescales_mismatched_inputs(self):
        a_qp, b_qp, out_qp = qp(0.1, 0), qp(0.2, 10), qp(0.15, 5)
        a = np.array([100], np.uint8)   # 10.0 real
        b = np.array([60], np.uint8)    # 10.0 real
        out = qadd(a, a_qp, b, b_qp, out_qp)
        assert dequantize(out, out_qp)[0] == pytest.approx(20.0, abs=0.2)

    def test_saturates(self):
        a_qp = b_qp = out_qp = qp(1.0, 0)
        out = qadd(
            np.array([200], np.uint8), a_qp, np.array([200], np.uint8), b_qp, out_qp
        )
        assert out[0] == 255

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_error_within_one_step(self, a, b):
        a_qp, b_qp, out_qp = qp(0.037, 3), qp(0.11, 40), qp(0.21, 17)
        out = qadd(np.array([a], np.uint8), a_qp, np.array([b], np.uint8), b_qp, out_qp)
        real = dequantize(np.array([a]), a_qp)[0] + dequantize(np.array([b]), b_qp)[0]
        lo, hi = out_qp.range
        expected = np.clip(real, lo, hi)
        assert abs(dequantize(out, out_qp)[0] - expected) <= out_qp.scale


class TestQPooling:
    def test_max_pool_plain(self):
        x = np.arange(16, dtype=np.uint8).reshape(1, 4, 4, 1)
        out = qmax_pool(x, (2, 2), (2, 2))
        np.testing.assert_array_equal(out.reshape(-1), [5, 7, 13, 15])

    def test_avg_pool_rounds(self):
        x = np.array([[1, 2], [2, 2]], np.uint8).reshape(1, 2, 2, 1)
        out = qavg_pool(x, (2, 2), (2, 2))
        assert out.reshape(-1)[0] == 2  # 7/4 = 1.75 -> 2

    def test_qrequant_round_trip(self):
        a_qp, b_qp = qp(0.1, 10), qp(0.05, 0)
        x = np.array([110], np.uint8)  # 10.0 real
        out = qrequant(x, a_qp, b_qp)
        assert dequantize(out, b_qp)[0] == pytest.approx(10.0, abs=0.05)
