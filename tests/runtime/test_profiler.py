"""Tests for the event-log profiler (Fig. 10 traces)."""

import numpy as np
import pytest

from repro.isa import assemble
from repro.ncore import Ncore
from repro.runtime.profiler import Profiler


def region(source: str):
    return assemble(source)


class TestProfiler:
    def _trace(self):
        machine = Ncore()
        machine.write_data_ram(0, bytes(np.full(4096, 1, np.uint8)))
        machine.write_weight_ram(0, bytes(np.full(4096, 1, np.uint8)))
        profiler = Profiler(machine)
        program = profiler.instrument(
            [
                ("setup", region("setaddr a0, 0\nsetaddr a1, 0")),
                ("compute", region("loop 10 {\n  mac dram[a0], wtram[a1]\n}")),
                ("writeback", region("setaddr a6, 4\nrequant.uint8\nstore a6")),
            ]
        )
        return profiler.run(program)

    def test_spans_cover_named_regions(self):
        trace = self._trace()
        assert [s.name for s in trace.spans] == ["setup", "compute", "writeback"]

    def test_compute_span_has_the_cycles(self):
        trace = self._trace()
        compute = trace.span("compute")
        # marker + 10 fused MAC cycles land inside the compute span.
        assert compute.cycles >= 10
        assert compute.cycles > trace.span("setup").cycles

    def test_spans_are_contiguous_and_ordered(self):
        trace = self._trace()
        for a, b in zip(trace.spans, trace.spans[1:], strict=False):
            assert a.end_cycle == b.start_cycle
            assert a.start_cycle < a.end_cycle

    def test_instrumentation_is_free(self):
        # Section IV-F: "logging poses no performance penalty" — the only
        # added cycles are the marker instructions themselves (1 each).
        machine = Ncore()
        body = region("loop 10 {\n  mac dram[a0], wtram[a1]\n}")
        baseline = machine.execute_program(body + assemble("halt")).cycles
        machine.reset()
        profiler = Profiler(machine)
        trace = profiler.run(profiler.instrument([("all", body)]))
        assert trace.total_cycles == baseline + 2  # two markers

    def test_render_is_fig10_like(self):
        trace = self._trace()
        text = trace.render()
        assert "Ncore trace" in text
        assert "compute" in text
        assert "#" in text

    def test_unknown_span_lookup(self):
        trace = self._trace()
        with pytest.raises(KeyError):
            trace.span("nope")

    def test_marker_budget_enforced(self):
        profiler = Profiler(Ncore())
        for _ in range(16):
            profiler.marker("x")
        with pytest.raises(ValueError, match="markers"):
            profiler.marker("overflow")


class TestClockThreading:
    def test_span_seconds_uses_machine_clock(self):
        from repro.ncore import NcoreConfig

        machine = Ncore(NcoreConfig(clock_hz=1e9))
        machine.write_data_ram(0, bytes(np.full(4096, 1, np.uint8)))
        machine.write_weight_ram(0, bytes(np.full(4096, 1, np.uint8)))
        profiler = Profiler(machine)
        trace = profiler.run(profiler.instrument(
            [("compute", region("loop 10 {\n  mac dram[a0], wtram[a1]\n}"))]
        ))
        span = trace.span("compute")
        assert span.clock_hz == 1e9
        assert span.seconds() == pytest.approx(span.cycles / 1e9)
        assert trace.clock_hz == 1e9

    def test_explicit_clock_still_wins(self):
        from repro.runtime.profiler import Span

        span = Span("x", 0, 2500)
        assert span.seconds() == pytest.approx(1e-6)  # default 2.5 GHz
        assert span.seconds(clock_hz=2.5e6) == pytest.approx(1e-3)


class TestOverflowDetection:
    def _flooding_machine(self):
        # A tiny event log makes the marker stream itself overflow it.
        machine = Ncore()
        machine.event_log.capacity = 1
        machine.write_data_ram(0, bytes(np.full(4096, 1, np.uint8)))
        machine.write_weight_ram(0, bytes(np.full(4096, 1, np.uint8)))
        return machine

    def _program(self, profiler):
        return profiler.instrument(
            [
                ("setup", region("setaddr a0, 0")),
                ("compute", region("loop 4 {\n  mac dram[a0], wtram[a1]\n}")),
            ]
        )

    def test_overflow_raises_by_default(self):
        from repro.runtime.profiler import EventLogOverflowError

        profiler = Profiler(self._flooding_machine())
        with pytest.raises(EventLogOverflowError, match="wrapped"):
            profiler.run(self._program(profiler))

    def test_overflow_warns_when_configured(self):
        profiler = Profiler(self._flooding_machine(), on_overflow="warn")
        with pytest.warns(RuntimeWarning, match="truncated"):
            trace = profiler.run(self._program(profiler))
        # The truncated trace is still returned.
        assert trace.total_cycles > 0

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="on_overflow"):
            Profiler(Ncore(), on_overflow="ignore")

    def test_no_overflow_on_normal_runs(self):
        machine = Ncore()
        machine.write_data_ram(0, bytes(np.full(4096, 1, np.uint8)))
        machine.write_weight_ram(0, bytes(np.full(4096, 1, np.uint8)))
        profiler = Profiler(machine)
        trace = profiler.run(self._program(profiler))
        assert [s.name for s in trace.spans] == ["setup", "compute"]
