"""Tests for the event-log profiler (Fig. 10 traces)."""

import numpy as np
import pytest

from repro.isa import assemble
from repro.ncore import Ncore
from repro.runtime.profiler import Profiler


def region(source: str):
    return assemble(source)


class TestProfiler:
    def _trace(self):
        machine = Ncore()
        machine.write_data_ram(0, bytes(np.full(4096, 1, np.uint8)))
        machine.write_weight_ram(0, bytes(np.full(4096, 1, np.uint8)))
        profiler = Profiler(machine)
        program = profiler.instrument(
            [
                ("setup", region("setaddr a0, 0\nsetaddr a1, 0")),
                ("compute", region("loop 10 {\n  mac dram[a0], wtram[a1]\n}")),
                ("writeback", region("setaddr a6, 4\nrequant.uint8\nstore a6")),
            ]
        )
        return profiler.run(program)

    def test_spans_cover_named_regions(self):
        trace = self._trace()
        assert [s.name for s in trace.spans] == ["setup", "compute", "writeback"]

    def test_compute_span_has_the_cycles(self):
        trace = self._trace()
        compute = trace.span("compute")
        # marker + 10 fused MAC cycles land inside the compute span.
        assert compute.cycles >= 10
        assert compute.cycles > trace.span("setup").cycles

    def test_spans_are_contiguous_and_ordered(self):
        trace = self._trace()
        for a, b in zip(trace.spans, trace.spans[1:]):
            assert a.end_cycle == b.start_cycle
            assert a.start_cycle < a.end_cycle

    def test_instrumentation_is_free(self):
        # Section IV-F: "logging poses no performance penalty" — the only
        # added cycles are the marker instructions themselves (1 each).
        machine = Ncore()
        body = region("loop 10 {\n  mac dram[a0], wtram[a1]\n}")
        baseline = machine.execute_program(body + assemble("halt")).cycles
        machine.reset()
        profiler = Profiler(machine)
        trace = profiler.run(profiler.instrument([("all", body)]))
        assert trace.total_cycles == baseline + 2  # two markers

    def test_render_is_fig10_like(self):
        trace = self._trace()
        text = trace.render()
        assert "Ncore trace" in text
        assert "compute" in text
        assert "#" in text

    def test_unknown_span_lookup(self):
        trace = self._trace()
        with pytest.raises(KeyError):
            trace.span("nope")

    def test_marker_budget_enforced(self):
        profiler = Profiler(Ncore())
        for _ in range(16):
            profiler.marker("x")
        with pytest.raises(ValueError, match="markers"):
            profiler.marker("overflow")
