"""The tentpole invariant: a non-default config compiles lint-clean and
runs bit-correct.

Every layer that used to hard-code the shipped 4096-byte row must now
follow the configured width; these tests compile the same quantized model
at narrow (8-slice), shipped (16-slice), wide (32-slice) and short-SRAM
points, insist the loadable verifier stays clean (compile_graph runs it),
and check the executor output is bit-identical to the reference quantized
executor at every point.
"""

import numpy as np
import pytest

from repro.compiler import compile_graph
from repro.ncore.config import NcoreConfig
from repro.quantize import calibrate, quantize_graph
from repro.runtime import NcoreExecutor, execute_quantized
from repro.soc.cha import ChaSoc
from tests.quantize.test_convert import calibration_batches, small_cnn

POINTS = {
    "s8": NcoreConfig(slices=8),
    "s16": NcoreConfig(),
    "s32": NcoreConfig(slices=32),
    "r1024": NcoreConfig(sram_rows=1024),
}


@pytest.fixture(scope="module")
def quantized():
    graph = small_cnn()
    return quantize_graph(graph, calibrate(graph, calibration_batches()))


@pytest.fixture(scope="module")
def feeds(quantized):
    name = quantized.inputs[0]
    shape = quantized.tensor(name).shape
    rng = np.random.default_rng(7)
    return {name: rng.uniform(-1.0, 1.0, shape).astype(np.float32)}


@pytest.fixture(scope="module")
def compiled(quantized):
    # verify=True (the default): the analyze gate must pass at every point.
    return {
        label: compile_graph(quantized, config=config, name=f"cnn_{label}", cache=None)
        for label, config in POINTS.items()
    }


class TestNonDefaultConfig:
    def test_compile_cache_keys_distinguish_config_points(self, compiled):
        keys = {result.key for result in compiled.values()}
        assert len(keys) == len(POINTS)

    @pytest.mark.parametrize("label", sorted(POINTS))
    def test_executor_matches_reference_bit_exactly(self, compiled, feeds, label):
        config = POINTS[label]
        model = compiled[label].model
        executor = NcoreExecutor(model, soc=ChaSoc(ncore_config=config))
        outputs = executor.execute(feeds).outputs
        reference = execute_quantized(model.graph, feeds)
        for name, expected in reference.items():
            np.testing.assert_array_equal(outputs[name], expected)

    @pytest.mark.parametrize("label", sorted(POINTS))
    def test_kernels_are_lowered_for_the_configured_width(self, compiled, label):
        config = POINTS[label]
        model = compiled[label].model
        for index in model.ncore_segments:
            loadable = model.loadables[index]
            assert loadable.memory_plan.row_bytes == config.row_bytes
            for kernel in loadable.kernels:
                assert kernel.lanes == config.lanes

    def test_wider_machine_never_needs_more_cycles(self, compiled):
        narrow = compiled["s8"].model.ncore_cycles()
        wide = compiled["s32"].model.ncore_cycles()
        assert wide <= narrow

    def test_executor_verify_uses_the_executor_config(self):
        """The verify gate must judge the model against the executor's own
        config, not the shipped default.

        MobileNet at 8 slices with a 4096-row RAM pins ~2100 weight rows —
        legal on that machine, an sram-overflow on the default one.  The
        executor below owns a matching Ncore, so construction must not
        raise (it did when verify always used ``NcoreConfig()``).
        """
        from repro.compiler import optimize_graph
        from repro.models import PAPER_CHARACTERISTICS

        info = PAPER_CHARACTERISTICS["mobilenet_v1"]
        graph = info.build()
        optimize_graph(graph, in_place=True)
        quantized = quantize_graph(
            graph, calibrate(graph, [info.sample_input(graph, seed=100)])
        )
        config = NcoreConfig(slices=8, sram_rows=4096)
        result = compile_graph(quantized, config=config, name="mnv1_tall", cache=None)
        plan = result.model.loadables[result.model.ncore_segments[0]].memory_plan
        assert plan.weight_rows_used > NcoreConfig().sram_rows  # the premise
        executor = NcoreExecutor(result.model, soc=ChaSoc(ncore_config=config))
        assert executor.soc.ncore.config == config
