"""The executor split: device ownership, the verify gate, async serving."""

import copy

import numpy as np
import pytest

from repro.analyze import AnalysisError
from repro.engine import Engine
from repro.ncore.config import NcoreConfig
from repro.graph.planner import RowRange
from repro.runtime import EngineExecutor, NcoreExecutor, compile_model, execute_quantized
from tests.quantize.test_convert import calibration_batches, small_cnn


@pytest.fixture(scope="module")
def compiled():
    from repro.quantize import calibrate, quantize_graph

    g = small_cnn()
    qg = quantize_graph(g, calibrate(g, calibration_batches()))
    return compile_model(qg, name="smallcnn")


def corrupt(model):
    """A deep copy whose first Loadable overflows the SRAM (error finding)."""
    bad = copy.deepcopy(model)
    index = bad.ncore_segments[0]
    loadable = bad.loadables[index]
    name = next(iter(loadable.memory_plan.data_allocs))
    rows = NcoreConfig().sram_rows
    loadable.memory_plan.data_allocs[name] = RowRange(rows - 2, 4)
    return bad


class TestVerifyGate:
    def test_executor_refuses_a_bad_loadable(self, compiled):
        with pytest.raises(AnalysisError, match="sram-overflow"):
            NcoreExecutor(corrupt(compiled))

    def test_verify_false_bypasses_the_gate(self, compiled):
        executor = NcoreExecutor(corrupt(compiled), verify=False)
        executor.close()

    def test_clean_model_passes_the_gate(self, compiled):
        executor = NcoreExecutor(compiled)  # verify=True is the default
        executor.close()


class TestNcoreExecutor:
    def test_execute_matches_direct_quantized_execution(self, compiled):
        executor = NcoreExecutor(compiled, verify=False)
        feeds = calibration_batches(count=1, seed=8)[0]
        result = executor.execute(feeds)
        direct = execute_quantized(compiled.graph, feeds)
        for name in direct:
            np.testing.assert_array_equal(result.outputs[name], direct[name])
        assert result.timing.ncore_seconds > 0
        assert result.timing.x86_seconds > 0
        executor.close()

    def test_batching_amortizes_ncore_time(self, compiled):
        executor = NcoreExecutor(compiled, verify=False)
        single = executor.ncore_seconds_batched(1)
        batched = executor.ncore_seconds_batched(8)
        assert batched <= single
        with pytest.raises(ValueError):
            executor.ncore_seconds_batched(0)
        executor.close()


class TestEngineExecutor:
    def make(self, compiled, **kwargs):
        engine = Engine()
        ncore = NcoreExecutor(compiled, verify=False)
        return engine, EngineExecutor(engine, ncore, **kwargs)

    def test_submit_poll_lifecycle(self, compiled):
        engine, executor = self.make(compiled)
        session = executor.session("client-a")
        feeds = calibration_batches(count=1, seed=3)[0]
        ticket = session.submit(feeds)
        assert session.poll(ticket) is None      # still in flight
        assert not ticket.done
        executor.drain()
        result = session.poll(ticket)
        assert result is not None
        assert ticket.done
        assert ticket.latency_seconds > 0
        assert ticket.batch_size >= 1
        direct = execute_quantized(compiled.graph, feeds)
        for name in direct:
            np.testing.assert_array_equal(result.outputs[name], direct[name])
        executor.close()

    def test_concurrent_submissions_batch_together(self, compiled):
        engine, executor = self.make(compiled, max_batch=8, max_wait=1.0)
        a, b = executor.session("a"), executor.session("b")
        feeds = calibration_batches(count=2, seed=5)
        first = a.submit(feeds[0])
        second = b.submit(feeds[1])
        executor.drain()
        # Two handles, one queue: simultaneous submissions share a batch.
        assert first.batch_size == 2
        assert second.batch_size == 2
        assert first.batch_started_at == second.batch_started_at
        executor.close()

    def test_ticket_stages_are_monotonic(self, compiled):
        engine, executor = self.make(compiled)
        ticket = executor.submit(calibration_batches(count=1, seed=7)[0])
        executor.drain()
        assert (
            ticket.submitted_at
            <= ticket.enqueued_at
            <= ticket.batch_started_at
            <= ticket.ncore_done_at
            <= ticket.completed_at
        )
        assert ticket.queue_wait_seconds >= 0
        executor.close()

    def test_many_queries_all_complete(self, compiled):
        engine, executor = self.make(compiled, max_batch=4, max_wait=50e-6)
        feeds = calibration_batches(count=1, seed=11)[0]
        tickets = [executor.submit(feeds) for _ in range(10)]
        executor.drain()
        assert all(t.done for t in tickets)
        assert executor.queue.stats.items == 10
        # Completion times are engine time, totally ordered with batches.
        assert engine.now >= max(t.completed_at for t in tickets)
        executor.close()
