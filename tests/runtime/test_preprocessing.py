"""Tests for the x86 image preprocessing pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.preprocessing import (
    center_crop,
    classification_pipeline,
    detection_pipeline,
    normalize,
    resize_bilinear,
)


class TestResizeBilinear:
    def test_identity_when_same_size(self):
        img = np.arange(48, dtype=np.uint8).reshape(4, 4, 3)
        np.testing.assert_array_equal(resize_bilinear(img, 4, 4), img)

    def test_constant_image_stays_constant(self):
        img = np.full((7, 9, 3), 55, np.uint8)
        out = resize_bilinear(img, 13, 5)
        np.testing.assert_allclose(out, 55.0)

    def test_upscale_preserves_gradient_monotonicity(self):
        img = np.linspace(0, 255, 8)[None, :, None].repeat(8, 0).repeat(3, 2)
        out = resize_bilinear(img.astype(np.uint8), 8, 16)
        row = out[4, :, 0]
        assert (np.diff(row) >= 0).all()

    def test_downscale_averages(self):
        # A checkerboard downsampled 2x lands near the mean.
        img = np.zeros((8, 8, 1), np.uint8)
        img[::2, ::2] = 200
        img[1::2, 1::2] = 200
        out = resize_bilinear(img, 4, 4)
        assert 60 < out.mean() < 140

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 16), st.integers(2, 16), st.integers(2, 16), st.integers(2, 16))
    def test_output_shape_and_range(self, h, w, oh, ow):
        img = np.random.default_rng(0).integers(0, 255, (h, w, 3)).astype(np.uint8)
        out = resize_bilinear(img, oh, ow)
        assert out.shape == (oh, ow, 3)
        assert out.min() >= 0.0 and out.max() <= 255.0


class TestCropAndNormalize:
    def test_center_crop_takes_middle(self):
        img = np.zeros((6, 6, 1), np.float32)
        img[2:4, 2:4] = 1.0
        out = center_crop(img, 2)
        np.testing.assert_array_equal(out, np.ones((2, 2, 1), np.float32))

    def test_crop_too_large_rejected(self):
        with pytest.raises(ValueError):
            center_crop(np.zeros((4, 4, 3)), 5)

    def test_normalize_range(self):
        img = np.array([[[0, 127.5, 255]]], np.float32)
        out = normalize(img)
        np.testing.assert_allclose(out, [[[-1.0, 0.0, 1.0]]])


class TestPipelines:
    def test_classification_shape(self):
        frame = np.random.default_rng(1).integers(0, 255, (480, 640, 3)).astype(np.uint8)
        out = classification_pipeline(frame)
        assert out.shape == (1, 224, 224, 3)
        assert -1.0 <= out.min() and out.max() <= 1.0

    def test_portrait_and_landscape_agree_on_shape(self):
        rng = np.random.default_rng(2)
        landscape = rng.integers(0, 255, (300, 500, 3)).astype(np.uint8)
        portrait = rng.integers(0, 255, (500, 300, 3)).astype(np.uint8)
        assert classification_pipeline(landscape).shape == (1, 224, 224, 3)
        assert classification_pipeline(portrait).shape == (1, 224, 224, 3)

    def test_detection_shape(self):
        frame = np.random.default_rng(3).integers(0, 255, (720, 1280, 3)).astype(np.uint8)
        assert detection_pipeline(frame).shape == (1, 300, 300, 3)

    def test_feeds_the_detector_end_to_end(self):
        from repro.perf.system import get_system
        from repro.runtime import execute_quantized

        frame = np.random.default_rng(4).integers(0, 255, (480, 640, 3)).astype(np.uint8)
        feeds = {"images": detection_pipeline(frame)}
        system = get_system("ssd_mobilenet_v1")
        outputs = execute_quantized(system.compiled.graph, feeds)
        assert outputs["detection_boxes"].shape == (10, 4)
