"""Importing models from framework-specific graph formats.

Section V-B: frameworks "utilize their own native dataflow graph formats
... with subtle differences that go beyond just the on-disk serialization
format.  For example, the definition of padding for some convolutions leads
to different results for TensorFlow vs PyTorch."

This example imports the *same* two-layer network from a TF-style dict
(NHWC / HWIO / "SAME" padding) and a torch-style dict (NCHW / OIHW /
symmetric padding), shows where the conventions diverge, then runs one of
them through quantization and saves/reloads it via the GIR serialization.

Run:  python examples/framework_import.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.graph import execute_float
from repro.graph.frontends import (
    import_tf_like,
    import_torch_like,
    load_graph,
    save_graph,
)
from repro.graph.frontends.torch_like import nchw_to_nhwc

RNG = np.random.default_rng(42)


def tf_style_model(weights_hwio):
    return {
        "inputs": ["x"],
        "outputs": ["y"],
        "tensors": {
            "x": {"shape": [1, 10, 10, 3]},
            "w": {"shape": list(weights_hwio.shape), "data": weights_hwio},
            "y": {"shape": [1, 5, 5, 8]},
        },
        "operators": [
            {
                "op": "CONV_2D",
                "inputs": ["x", "w"],
                "outputs": ["y"],
                "stride": (2, 2),
                "padding": "SAME",
                "fused_activation": "RELU",
            }
        ],
    }


def torch_style_model(weights_oihw):
    return {
        "inputs": ["x"],
        "outputs": ["c"],
        "tensors": {
            "x": {"shape": [1, 3, 10, 10]},           # NCHW
            "w": {"data": weights_oihw, "role": "conv_weight"},  # OIHW
            "c": {"shape": [1, 8, 5, 5]},
        },
        "operators": [
            {
                "op": "conv2d",
                "inputs": ["x", "w"],
                "outputs": ["c"],
                "stride": 2,
                "padding": 1,     # symmetric, the torch convention
            }
        ],
    }


def main() -> None:
    w_hwio = (RNG.normal(size=(3, 3, 3, 8)) * 0.2).astype(np.float32)
    w_oihw = np.ascontiguousarray(np.transpose(w_hwio, (3, 2, 0, 1)))

    print("== importing the same conv from two framework conventions ==")
    tf_graph = import_tf_like(tf_style_model(w_hwio), name="from_tf")
    torch_graph = import_torch_like(torch_style_model(w_oihw), name="from_torch")
    tf_pad = tf_graph.nodes[0].attrs["padding"]
    torch_pad = torch_graph.nodes[0].attrs["padding"]
    print(f"   TF 'SAME' resolves to    {tf_pad}  (extra pixel bottom/right)")
    print(f"   torch padding=1 gives    {torch_pad}  (always symmetric)")

    x_nchw = RNG.normal(size=(1, 3, 10, 10)).astype(np.float32)
    x_nhwc = nchw_to_nhwc(x_nchw)
    tf_out = execute_float(tf_graph, {"x": x_nhwc})["y"]
    torch_out = execute_float(torch_graph, {"x": x_nhwc})["c"]
    diff = np.abs(tf_out - np.maximum(torch_out, 0)).max()
    print(f"   same weights, same input -> max |TF - torch| = {diff:.4f}")
    print("   (nonzero: the padding conventions genuinely disagree at the "
          "bottom/right edge, the section V-B point)")

    print("\n== quantize the TF import and round-trip it through disk ==")
    from repro.quantize import calibrate, quantize_graph
    from repro.runtime import execute_quantized

    batches = [{"x": RNG.uniform(-1, 1, (1, 10, 10, 3)).astype(np.float32)}]
    quantized = quantize_graph(tf_graph, calibrate(tf_graph, batches))
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "model"
        json_path, npz_path = save_graph(quantized, path)
        print(f"   saved {json_path.name} + {npz_path.name}")
        loaded = load_graph(path)
        a = list(execute_quantized(quantized, batches[0]).values())[0]
        b = list(execute_quantized(loaded, batches[0]).values())[0]
        print(f"   reload exact: {np.array_equal(a, b)}")

    print("\n== compile the import through the delegate ==")
    from repro.runtime import compile_model

    compiled = compile_model(quantized, optimize=False, name="from_tf")
    print(compiled.summary())


if __name__ == "__main__":
    main()
