"""Real-time video analytics on CHA: the paper's motivating deployment.

Section II: with Ncore, "CHA is particularly well-suited to edge servers
and commercially in-demand models and applications such as real-time video
analytics", and the system "has been deployed in third-party video
analytics prototypes".

This example runs an SSD-MobileNet-V1 detector over a synthetic camera
stream: functional detections frame by frame, the latency decomposition
per frame, and the headline system-sizing question — how many 30 fps
camera streams one CHA socket sustains.

Run:  python examples/video_analytics.py
"""

import numpy as np

from repro.perf.system import get_system
from repro.runtime import execute_quantized
from repro.runtime.preprocessing import detection_pipeline

FRAME_RATE = 30.0
NUM_FRAMES = 3


def synthetic_frame(rng: np.random.Generator) -> np.ndarray:
    """A 480x640 'camera frame' (uint8) with a couple of bright blobs."""
    frame = rng.integers(90, 130, size=(480, 640, 3)).astype(np.uint8)
    for _ in range(2):
        y, x = rng.integers(60, 380, size=2)
        frame[y : y + 80, x : x + 80, :] = 245
    return frame


def main() -> None:
    print("== building the SSD-MobileNet-V1 detector (quantize + compile) ==")
    system = get_system("ssd_mobilenet_v1")
    split = system.workload_split()
    print(f"   Ncore portion {split['ncore'] * 1e3:.2f} ms, "
          f"x86 portion {split['x86'] * 1e3:.2f} ms "
          f"(NMS runs on x86, as in the paper)")

    print(f"\n== detecting over {NUM_FRAMES} synthetic frames ==")
    rng = np.random.default_rng(7)
    for index in range(NUM_FRAMES):
        # The x86 preprocess: resize the camera frame to 300x300, normalize.
        frame = detection_pipeline(synthetic_frame(rng))
        outputs = execute_quantized(system.compiled.graph, {"images": frame})
        scores = outputs["detection_scores"]
        classes = outputs["detection_classes"]
        kept = int((scores > 0).sum())
        top = ", ".join(
            f"cls{int(c)}@{s:.2f}" for s, c in zip(scores[:3], classes[:3], strict=True) if s > 0
        )
        print(f"   frame {index}: {kept} detections  [{top}]")

    print("\n== system sizing ==")
    latency = system.single_stream_latency_seconds()
    throughput = system.offline_throughput_ips()
    per_stream = FRAME_RATE
    streams_latency_bound = int(1.0 / latency / per_stream)
    print(f"   per-frame latency:        {latency * 1e3:.2f} ms")
    print(f"   sustained throughput:     {throughput:.0f} frames/s "
          f"(single-batch, section VI-C)")
    print(f"   30-fps camera streams:    {streams_latency_bound} per CHA socket")
    mature = 1.0 / (split["ncore"] + split["x86"] / 7)  # batched postprocess
    print(f"   with batched NMS (paper's post-deadline fix, ~2-3x): "
          f"~{int(mature / per_stream)} streams")


if __name__ == "__main__":
    main()
