"""Writing a custom kernel in Ncore's internal code representation.

Shows the NKL author's workflow (section V-B): lay out data for the W x K
mapping, emit the Fig. 6-style fused inner loop, execute it on the
instruction-level simulator, and check it bit-exactly against the numpy
quantized reference — with the disassembly and cycle accounting printed.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro.dtypes import NcoreDType, QuantParams
from repro.isa import disassemble, encode
from repro.ncore import Ncore
from repro.nkl.programs import emit_matmul_program, reference_matmul_uint8


def main() -> None:
    rng = np.random.default_rng(5)
    m, c, n = 16, 48, 8  # 16 tokens x 48 features -> 8 outputs
    data = rng.integers(0, 255, size=(m, c)).astype(np.uint8)
    weights = rng.integers(0, 255, size=(c, n)).astype(np.uint8)
    in_qp = QuantParams(0.02, 128, NcoreDType.UINT8)
    w_qp = QuantParams(0.01, 120, NcoreDType.UINT8)
    out_qp = QuantParams(0.08, 10, NcoreDType.UINT8)

    machine = Ncore()
    program, result = emit_matmul_program(
        machine, data, weights, in_qp, w_qp, out_qp, activation="relu"
    )

    print("== generated kernel (internal code representation) ==")
    print(disassemble(program))
    words = [encode(inst) for inst in program]
    print(f"   {len(program)} instructions, {16 * len(words)} bytes of IRAM "
          f"(128-bit words)")

    print("== executing on the instruction-level simulator ==")
    run = machine.execute_program(program)
    print(f"   {run.cycles} cycles for a {m}x{c} @ {c}x{n} quantized matmul")
    print(f"   one clock per reduction step: inner loop = {c} cycles")
    print(f"   MAC ops: {machine.total_macs:,} "
          f"(lanes busy {machine.total_macs / (run.cycles * 4096):.0%} of cycles)")

    print("\n== golden-model check (numpy quantized reference) ==")
    out = result.read(machine)
    expected = reference_matmul_uint8(data, weights, in_qp, w_qp, out_qp, "relu")
    match = np.array_equal(out, expected)
    print(f"   bit-exact match: {match}")
    assert match
    print(f"   sample row: machine {out[0][:8].tolist()}")
    print(f"               numpy   {expected[0][:8].tolist()}")


if __name__ == "__main__":
    main()
