"""Quickstart: quantize a small CNN and run it on the Ncore system model.

The full pipeline in one page:

1. build a float model (conv -> pool -> dense, with batch-norm),
2. run the GCL optimization pipeline and post-training quantization,
3. compile through the delegate (Ncore subgraphs + x86 fallback),
4. run an inference with the timing breakdown the paper reports.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.graph import Graph, Node, Tensor, TensorType, execute_float
from repro.quantize import calibrate, quantize_graph
from repro.runtime import InferenceSession, compile_model


def build_model() -> Graph:
    rng = np.random.default_rng(0)
    g = Graph("quickstart_cnn")
    g.add_input("images", TensorType((1, 32, 32, 3)))
    g.add_constant("w1", (rng.normal(size=(3, 3, 3, 16)) * 0.3).astype(np.float32))
    g.add_constant("bn_mean", (rng.normal(size=16) * 0.1).astype(np.float32))
    g.add_constant("bn_var", rng.uniform(0.5, 1.5, 16).astype(np.float32))
    g.add_constant("bn_gamma", np.ones(16, np.float32))
    g.add_constant("bn_beta", np.zeros(16, np.float32))
    g.add_constant("w2", (rng.normal(size=(16 * 16 * 16, 10)) * 0.05).astype(np.float32))
    for name, shape in [
        ("c1", (1, 32, 32, 16)),
        ("b1", (1, 32, 32, 16)),
        ("r1", (1, 32, 32, 16)),
        ("p1", (1, 16, 16, 16)),
        ("flat", (1, 16 * 16 * 16)),
        ("logits", (1, 10)),
        ("probs", (1, 10)),
    ]:
        g.add_tensor(Tensor(name, TensorType(shape)))
    g.add_node(Node("conv1", "conv2d", ["images", "w1"], ["c1"], {"padding": ((1, 1), (1, 1))}))
    g.add_node(Node("bn1", "batch_norm", ["c1", "bn_mean", "bn_var", "bn_gamma", "bn_beta"], ["b1"]))
    g.add_node(Node("relu1", "relu", ["b1"], ["r1"]))
    g.add_node(Node("pool1", "max_pool", ["r1"], ["p1"], {"ksize": (2, 2), "stride": (2, 2)}))
    g.add_node(Node("flatten", "reshape", ["p1"], ["flat"], {"shape": (1, 16 * 16 * 16)}))
    g.add_node(Node("fc", "fully_connected", ["flat", "w2"], ["logits"]))
    g.add_node(Node("soft", "softmax", ["logits"], ["probs"]))
    g.mark_output("probs")
    g.validate()
    return g


def main() -> None:
    rng = np.random.default_rng(42)
    batches = [
        {"images": rng.uniform(-1, 1, (1, 32, 32, 3)).astype(np.float32)}
        for _ in range(4)
    ]

    print("== 1. float model ==")
    graph = build_model()
    print(f"   {len(graph.nodes)} nodes, {graph.count_macs():,} MACs, "
          f"{graph.count_weights():,} weights")
    float_out = execute_float(graph, batches[0])["probs"]

    print("\n== 2. optimize + quantize (post-training, uint8) ==")
    from repro.graph.passes import default_pipeline

    default_pipeline().run(graph)
    print(f"   after GCL passes: {len(graph.nodes)} nodes "
          f"(batch-norm folded, bias/activation fused)")
    quantized = quantize_graph(graph, calibrate(graph, batches))
    print(f"   quantized graph: {len(quantized.nodes)} nodes")

    print("\n== 3. compile through the delegate ==")
    compiled = compile_model(quantized, optimize=False, name="quickstart")
    print(compiled.summary())

    print("\n== 4. run on the CHA system model ==")
    session = InferenceSession(compiled)
    result = session.run(batches[0])
    quant_out = result.outputs[compiled.graph.outputs[0]]
    print(f"   float argmax={float_out.argmax()}  quantized argmax={quant_out.argmax()}")
    print(f"   max |float - quantized| = {np.abs(quant_out - float_out).max():.4f}")
    timing = result.timing
    print(f"   Ncore portion: {timing.ncore_seconds * 1e6:8.2f} us "
          f"({timing.ncore_fraction:.0%})")
    print(f"   x86 portion:   {timing.x86_seconds * 1e6:8.2f} us")
    print(f"   total latency: {timing.total_seconds * 1e6:8.2f} us")
    session.close()


if __name__ == "__main__":
    main()
