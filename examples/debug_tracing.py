"""Ncore's debug features: event logging, perf counters, n-step stepping.

Reproduces the section IV-F / Fig. 10 workflow: a convolution kernel is
instrumented with event markers, run under the debug runtime, and the
resulting trace is printed — then the same kernel is single-stepped with
the n-step breakpoint and watched with a wraparound perf counter.
Finally the same run is captured through `repro.obs` and exported as a
Perfetto-openable Chrome trace (see docs/observability.md).

Run:  python examples/debug_tracing.py
"""

import numpy as np

from repro import obs
from repro.isa import assemble
from repro.ncore import Ncore

KERNEL = """
; pointwise conv pass with event markers (cf. Fig. 10's runtime trace)
event 1                      ; marker: weights ready
setaddr a0, 0
setaddr a3, 0
setaddr a5, 0
event 2                      ; marker: compute start
loop 16 {
  bypass n0, dram[a0++]
  broadcast64 n1, wtram[a3], a5, inc
  mac.uint8 n0, n1
}
event 3                      ; marker: compute done
setaddr a6, 100
requant.uint8 relu
store a6
event 4                      ; marker: results stored
halt
"""

EVENT_NAMES = {1: "weights_ready", 2: "compute_start", 3: "compute_done", 4: "stored"}


def stage_inputs(machine: Ncore) -> None:
    rng = np.random.default_rng(3)
    for c in range(16):
        row = np.tile(rng.integers(0, 8, 64).astype(np.uint8), 64)
        machine.write_data_ram(c * 4096, row.tobytes())
    machine.write_weight_ram(0, rng.integers(0, 8, 4096).astype(np.uint8).tobytes())


def main() -> None:
    program = assemble(KERNEL)

    print("== event logging (no performance penalty) ==")
    machine = Ncore()
    stage_inputs(machine)
    result = machine.execute_program(program)
    print(f"   ran {result.instructions} instructions in {result.cycles} cycles")
    for event in machine.event_log.drain():
        name = EVENT_NAMES.get(event.tag, f"tag{event.tag}")
        print(f"   cycle {event.cycle:4d}  pc {event.pc:2d}  {name}")

    print("\n== performance counters ==")
    print(f"   macs counter:         {machine.perf_counters['macs'].value:,}")
    print(f"   instructions counter: {machine.perf_counters['instructions'].value}")
    print(f"   total MAC ops:        {machine.total_macs:,} "
          f"({machine.total_macs // result.cycles:,}/cycle avg)")

    print("\n== wraparound breakpoint ==")
    machine = Ncore()
    stage_inputs(machine)
    # Arm the MAC counter to wrap (and break) after 8 fused iterations.
    machine.perf_counters["macs"].configure(
        offset=(1 << 48) - 8 * 4096, break_on_wrap=True
    )
    machine.load_program(program)
    result = machine.run()
    print(f"   stopped: {result.stop_reason!r} after {result.cycles} cycles "
          f"(mid-loop, as configured)")

    print("\n== n-step breakpointing ==")
    machine.perf_counters["macs"].configure(0, break_on_wrap=False)
    machine.n_step = 4
    steps = 0
    while not machine.halted and steps < 50:
        result = machine.run()
        steps += 1
        if result.stop_reason == "n_step":
            print(f"   step-stop at cycle {machine.total_cycles:4d}  "
                  f"pc={machine.pc}  acc[0]={machine.acc_int[0]}")
    print(f"   resumed to halt after {steps} stops")

    print("\n== full-stack tracing (repro.obs) ==")
    # The same workflow through the observability subsystem: install a
    # tracer + metrics registry, run under the profiler (its spans are
    # forwarded automatically), export Perfetto JSON and a Fig. 10 view.
    from repro.runtime.profiler import Profiler

    machine = Ncore()
    stage_inputs(machine)
    with obs.observe() as (tracer, metrics):
        tracer.clock_hz = machine.config.clock_hz
        machine.bind_metrics(metrics)
        profiler = Profiler(machine)
        program = profiler.instrument(
            [
                ("compute", assemble(
                    "setaddr a0, 0\nsetaddr a3, 0\nsetaddr a5, 0\n"
                    "loop 16 {\n"
                    "  bypass n0, dram[a0++]\n"
                    "  broadcast64 n1, wtram[a3], a5, inc\n"
                    "  mac.uint8 n0, n1\n"
                    "}"
                )),
                ("writeback", assemble("setaddr a6, 100\nrequant.uint8 relu\nstore a6")),
            ]
        )
        profiler.run(program)
    obs.write_chrome_trace("debug_tracing.trace.json", tracer, metrics)
    print(obs.render_tracer(tracer, tracks=["ncore"]))
    print(f"   macs (hw counter view): {metrics.get('ncore.hw.macs').value:,}")
    print("   wrote debug_tracing.trace.json (open at https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
