"""GNMT translation on Ncore in bfloat16 (the section VI-B path).

Runs a down-scaled GNMT functionally in bfloat16 (greedy decode over a
synthetic vocabulary), then reports the full-size model's throughput story:
why GNMT is memory-bound (Table V's MACs/weight), why the paper ran it
Offline with batch 64, and the mature-software projection.

Run:  python examples/translation.py
"""

import numpy as np

from repro.models import build_gnmt
from repro.quantize import convert_to_bf16
from repro.runtime import execute_quantized


def greedy_translate(graph, source_ids: np.ndarray, seq_len: int, vocab: int) -> list[int]:
    """Greedy decoding with the unrolled graph (re-running it per step,
    as a framework without a dynamic loop op would)."""
    target = np.zeros((1, seq_len), dtype=np.int32)
    produced: list[int] = []
    for step in range(seq_len):
        logits = execute_quantized(
            graph, {"source_ids": source_ids, "target_ids": target}
        )["logits"].reshape(seq_len, vocab)
        token = int(np.argmax(logits[step]))
        produced.append(token)
        if step + 1 < seq_len:
            target[0, step + 1] = token
    return produced


def main() -> None:
    seq_len, hidden, layers, vocab = 6, 32, 2, 120

    print("== down-scaled GNMT, converted to bfloat16 ==")
    graph = build_gnmt(seq_len=seq_len, hidden=hidden, layers=layers, vocab=vocab)
    bf16 = convert_to_bf16(graph)
    print(f"   {len(bf16.nodes)} nodes, {graph.count_weights():,} weights "
          f"(constants rounded to bfloat16)")

    rng = np.random.default_rng(11)
    source = rng.integers(1, vocab, size=(1, seq_len)).astype(np.int32)
    tokens = greedy_translate(bf16, source, seq_len, vocab)
    print(f"   source tokens:     {source[0].tolist()}")
    print(f"   translated tokens: {tokens}")

    print("\n== full-size GNMT on the CHA model ==")
    from repro.perf.system import get_system

    system = get_system("gnmt")
    info = system.info
    print(f"   weights: {system.info.paper_weights / 1e6:.0f} M, "
          f"MACs/weight ~{info.paper_macs_per_weight} (Table V): memory-bound")
    single = system.ncore_seconds()
    batched = system.ncore_seconds_batched(64)
    print(f"   Ncore portion, batch 1:  {single * 1e3:7.2f} ms/sentence "
          f"(weights re-streamed every step -> SingleStream not submitted)")
    print(f"   Ncore portion, batch 64: {batched * 1e3:7.2f} ms/sentence "
          f"(batching 'to increase the arithmetic intensity', section VI-A)")
    print(f"   Offline throughput:      {system.offline_throughput_ips():7.2f} "
          f"sentences/s (paper submitted 12.28)")
    print(f"   mature-software proj.:   "
          f"{system.offline_throughput_ips(mature_software=True):7.0f} sentences/s "
          f"(per-op TensorFlow overhead removed)")


if __name__ == "__main__":
    main()
