"""Ncore integer datatypes and saturating arithmetic.

The NPU operates on int8 / uint8 / int16 operands (plus bfloat16, handled in
:mod:`repro.dtypes.bfloat16`) and accumulates into a 32-bit *saturating*
accumulator (section IV-D.4).  This module defines the datatype registry used
throughout the simulator and the saturating primitives the NPU model builds
on.  Everything is vectorised over numpy arrays: one array element per SIMD
byte lane.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

# 32-bit saturating accumulator bounds (section IV-D.4).
ACC_MIN = -(2**31)
ACC_MAX = 2**31 - 1


class NcoreDType(enum.Enum):
    """Datatypes supported by the Ncore execution pipeline (Table I)."""

    INT8 = "int8"
    UINT8 = "uint8"
    INT16 = "int16"
    BF16 = "bf16"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class DTypeInfo:
    """Static properties of one Ncore datatype.

    ``npu_cycles`` is the NPU issue latency from section IV-D.4: 8-bit
    operations execute in one clock, bfloat16 in three, int16 in four.
    ``bytes_per_element`` drives RAM layout: 16-bit values are split into a
    low-byte row and a high-byte row (section IV-C.2).
    """

    dtype: NcoreDType
    numpy_dtype: np.dtype
    bytes_per_element: int
    npu_cycles: int
    min_value: int | float
    max_value: int | float
    is_float: bool


_DTYPE_TABLE: dict[NcoreDType, DTypeInfo] = {
    NcoreDType.INT8: DTypeInfo(
        NcoreDType.INT8, np.dtype(np.int8), 1, 1, -128, 127, False
    ),
    NcoreDType.UINT8: DTypeInfo(
        NcoreDType.UINT8, np.dtype(np.uint8), 1, 1, 0, 255, False
    ),
    NcoreDType.INT16: DTypeInfo(
        NcoreDType.INT16, np.dtype(np.int16), 2, 4, -32768, 32767, False
    ),
    NcoreDType.BF16: DTypeInfo(
        NcoreDType.BF16, np.dtype(np.float32), 2, 3, -3.3895314e38, 3.3895314e38, True
    ),
}


def dtype_info(dtype: NcoreDType | str) -> DTypeInfo:
    """Look up the :class:`DTypeInfo` for a datatype (by enum or name)."""
    if isinstance(dtype, str):
        dtype = NcoreDType(dtype)
    return _DTYPE_TABLE[dtype]


def saturate(x: np.ndarray, dtype: NcoreDType | str) -> np.ndarray:
    """Clamp *x* into the representable range of *dtype* and cast.

    For integer types this is the hardware saturation applied when narrowing
    results; bfloat16 saturation clamps to +-BF16_MAX (overflow to infinity
    is not produced by the OUT unit's requantisation path).
    """
    info = dtype_info(dtype)
    clipped = np.clip(np.asarray(x), info.min_value, info.max_value)
    return clipped.astype(info.numpy_dtype)


def saturating_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """32-bit saturating add, as performed by the NPU accumulator."""
    wide = a.astype(np.int64) + b.astype(np.int64)
    return np.clip(wide, ACC_MIN, ACC_MAX).astype(np.int32)


def saturating_accumulate(
    acc: np.ndarray, data: np.ndarray, weight: np.ndarray
) -> np.ndarray:
    """One MAC step: ``acc = sat32(acc + data * weight)``.

    Operands are widened to int64 before the multiply so that no intermediate
    overflow can occur (max |product| for s9 x s9 inputs is << 2**63), then
    the sum is saturated back into the 32-bit accumulator, matching the NPU's
    saturating accumulator semantics.
    """
    wide = acc.astype(np.int64) + data.astype(np.int64) * weight.astype(np.int64)
    return np.clip(wide, ACC_MIN, ACC_MAX).astype(np.int32)
