"""Numerics substrate: Ncore datatypes, bfloat16, and quantization math."""

from repro.dtypes.bfloat16 import (
    BF16_EPS,
    BF16_MAX,
    BF16_MIN_NORMAL,
    bf16_from_bits,
    bf16_to_bits,
    to_bfloat16,
)
from repro.dtypes.fixedpoint import (
    ACC_MAX,
    ACC_MIN,
    DTypeInfo,
    NcoreDType,
    dtype_info,
    saturate,
    saturating_accumulate,
    saturating_add,
)
from repro.dtypes.quantization import (
    ChannelQuantParams,
    QuantParams,
    choose_channel_quant_params,
    choose_quant_params,
    dequantize,
    quantize,
    quantize_multiplier,
    requantize,
    rounding_right_shift,
)

__all__ = [
    "ACC_MAX",
    "ACC_MIN",
    "BF16_EPS",
    "BF16_MAX",
    "BF16_MIN_NORMAL",
    "ChannelQuantParams",
    "DTypeInfo",
    "NcoreDType",
    "QuantParams",
    "bf16_from_bits",
    "bf16_to_bits",
    "choose_channel_quant_params",
    "choose_quant_params",
    "dequantize",
    "dtype_info",
    "quantize",
    "quantize_multiplier",
    "requantize",
    "rounding_right_shift",
    "saturate",
    "saturating_accumulate",
    "saturating_add",
    "to_bfloat16",
]
