"""bfloat16 arithmetic support.

Ncore supports bfloat16 as a fallback datatype for models that need more
precision than int8 (section II-A.6 of the paper), and the GNMT submission
ran entirely in bfloat16.  numpy has no native bfloat16, so we represent
bfloat16 values as float32 arrays whose low 16 mantissa bits are zero, and
provide round-to-nearest-even conversion, exactly as truncating the float32
encoding would behave in hardware.
"""

from __future__ import annotations

import numpy as np

# Largest finite bfloat16 value: sign=0, exp=0xFE, mantissa=0x7F.
BF16_MAX = float(np.array([0x7F7F0000], dtype=np.uint32).view(np.float32)[0])
# Smallest positive normal bfloat16.
BF16_MIN_NORMAL = float(np.array([0x00800000], dtype=np.uint32).view(np.float32)[0])
# Machine epsilon for an 8-bit mantissa (7 explicit bits): 2**-7.
BF16_EPS = 2.0 ** -7


def to_bfloat16(x: np.ndarray | float) -> np.ndarray:
    """Round *x* to bfloat16 precision, returning float32 values.

    Uses round-to-nearest-even on the upper 16 bits of the IEEE-754 float32
    encoding, which is the rounding mode used by hardware bfloat16 units.
    NaN payloads are canonicalised, infinities pass through.
    """
    arr = np.asarray(x, dtype=np.float32)
    if not arr.flags.c_contiguous:
        arr = np.ascontiguousarray(arr)
    flat = arr.reshape(-1)
    bits = flat.view(np.uint32)
    # Round-to-nearest-even: add 0x7FFF plus the LSB of the part we keep.
    # uint32 wraparound can only occur for negative-NaN encodings, whose
    # lanes the NaN mask below overwrites, so no widening is needed.
    lsb = (bits >> np.uint32(16)) & np.uint32(1)
    rounded = (bits + (np.uint32(0x7FFF) + lsb)) & np.uint32(0xFFFF0000)
    out = rounded.view(np.float32)
    nan_mask = np.isnan(flat)
    if nan_mask.any():
        out[nan_mask] = np.nan
    return out.reshape(arr.shape)


def bf16_to_bits(x: np.ndarray | float) -> np.ndarray:
    """Return the 16-bit storage encoding of bfloat16 values.

    *x* is rounded to bfloat16 first, so any float32 input is accepted.
    """
    rounded = to_bfloat16(x)
    bits = np.ascontiguousarray(rounded).reshape(-1).view(np.uint32)
    return (bits >> np.uint32(16)).astype(np.uint16).reshape(np.shape(rounded))


def bf16_from_bits(bits: np.ndarray) -> np.ndarray:
    """Expand 16-bit bfloat16 storage encodings into float32 values."""
    raw = np.asarray(bits, dtype=np.uint16)
    b = raw.reshape(-1).astype(np.uint32) << np.uint32(16)
    return b.view(np.float32).reshape(raw.shape)
