"""Affine quantization and the OUT unit's requantization arithmetic.

The paper adopts post-training 8-bit quantization schemes "that do not
require re-training" (section II-A.6, citing Jacob et al.), which is the
standard per-tensor affine scheme::

    real = scale * (quantized - zero_point)

The OUT unit requantizes the 32-bit accumulator "by multiplying the
accumulator with a range value, shifting the result left or right based on a
scale value, and adding an offset value" (section IV-D.5).  That is exactly
the fixed-point multiplier + shift + output-zero-point pipeline of
gemmlowp/TensorFlow-Lite, which this module implements bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dtypes.fixedpoint import ACC_MAX, ACC_MIN, NcoreDType, dtype_info, saturate


@dataclass(frozen=True)
class QuantParams:
    """Per-tensor affine quantization parameters."""

    scale: float
    zero_point: int
    dtype: NcoreDType = NcoreDType.UINT8

    def __post_init__(self) -> None:
        if self.scale <= 0.0:
            raise ValueError(f"quantization scale must be positive, got {self.scale}")
        info = dtype_info(self.dtype)
        if info.is_float:
            raise ValueError("affine quantization applies to integer dtypes only")
        if not info.min_value <= self.zero_point <= info.max_value:
            raise ValueError(
                f"zero_point {self.zero_point} outside {self.dtype} range "
                f"[{info.min_value}, {info.max_value}]"
            )

    @property
    def range(self) -> tuple[float, float]:
        """Real-valued range representable under these parameters."""
        info = dtype_info(self.dtype)
        return (
            self.scale * (info.min_value - self.zero_point),
            self.scale * (info.max_value - self.zero_point),
        )


def choose_quant_params(
    rmin: float, rmax: float, dtype: NcoreDType | str = NcoreDType.UINT8
) -> QuantParams:
    """Pick affine parameters covering the real interval [rmin, rmax].

    The interval is first widened to include zero so that the real value 0.0
    is exactly representable (required so that zero-padding introduces no
    quantization error), then the zero point is nudged onto an integer.
    """
    if isinstance(dtype, str):
        dtype = NcoreDType(dtype)
    info = dtype_info(dtype)
    rmin = min(float(rmin), 0.0)
    rmax = max(float(rmax), 0.0)
    if rmin == rmax:  # degenerate all-zero tensor
        return QuantParams(scale=1.0, zero_point=0 if rmin == 0 else int(info.min_value), dtype=dtype)
    qmin, qmax = int(info.min_value), int(info.max_value)
    scale = (rmax - rmin) / (qmax - qmin)
    zero_point_real = qmin - rmin / scale
    zero_point = int(np.clip(round(zero_point_real), qmin, qmax))
    return QuantParams(scale=scale, zero_point=zero_point, dtype=dtype)


def quantize(x: np.ndarray, params: QuantParams) -> np.ndarray:
    """Quantize real values to integers: ``q = round(x / scale) + zp``."""
    q = np.round(np.asarray(x, dtype=np.float64) / params.scale) + params.zero_point
    return saturate(q, params.dtype)


def dequantize(q: np.ndarray, params: QuantParams) -> np.ndarray:
    """Recover real values: ``x = scale * (q - zp)``, as float32."""
    return (params.scale * (np.asarray(q, dtype=np.float64) - params.zero_point)).astype(
        np.float32
    )


@dataclass(frozen=True)
class ChannelQuantParams:
    """Per-channel affine quantization parameters (one scale/zero-point per
    slice along ``axis``).

    Per-channel weight quantization is the standard refinement of the
    per-tensor scheme: each output channel gets its own range, recovering
    most of the accuracy lost when channel magnitudes differ widely.  The
    OUT unit supports it directly — its requantization range/scale/offset
    registers are per-lane (see repro.ncore.out).
    """

    scales: tuple[float, ...]
    zero_points: tuple[int, ...]
    axis: int
    dtype: NcoreDType = NcoreDType.UINT8

    def __post_init__(self) -> None:
        if len(self.scales) != len(self.zero_points):
            raise ValueError("scales and zero_points must have equal length")
        if not self.scales:
            raise ValueError("per-channel params need at least one channel")
        if any(s <= 0 for s in self.scales):
            raise ValueError("quantization scales must be positive")

    @property
    def num_channels(self) -> int:
        return len(self.scales)

    def _broadcast(self, values, ndim: int) -> np.ndarray:
        shape = [1] * ndim
        shape[self.axis] = self.num_channels
        return np.asarray(values, dtype=np.float64).reshape(shape)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        scales = self._broadcast(self.scales, x.ndim)
        zero_points = self._broadcast(self.zero_points, x.ndim)
        return saturate(np.round(x / scales) + zero_points, self.dtype)

    def dequantize(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        scales = self._broadcast(self.scales, q.ndim)
        zero_points = self._broadcast(self.zero_points, q.ndim)
        return ((q - zero_points) * scales).astype(np.float32)


def choose_channel_quant_params(
    data: np.ndarray, axis: int, dtype: NcoreDType | str = NcoreDType.UINT8
) -> ChannelQuantParams:
    """Per-channel parameters from a weight tensor's per-slice ranges."""
    if isinstance(dtype, str):
        dtype = NcoreDType(dtype)
    data = np.asarray(data)
    reduce_axes = tuple(i for i in range(data.ndim) if i != axis)
    mins = np.min(data, axis=reduce_axes)
    maxs = np.max(data, axis=reduce_axes)
    params = [choose_quant_params(lo, hi, dtype) for lo, hi in zip(mins, maxs, strict=True)]
    return ChannelQuantParams(
        scales=tuple(p.scale for p in params),
        zero_points=tuple(p.zero_point for p in params),
        axis=axis,
        dtype=dtype,
    )


def quantize_multiplier(real_multiplier: float) -> tuple[int, int]:
    """Decompose a positive real multiplier into (int32 mantissa, right shift).

    Returns ``(m, shift)`` such that ``real_multiplier ~= m * 2**(-31 - shift)``
    with ``m`` in ``[2**30, 2**31)``.  ``shift`` may be negative, meaning a
    left shift — this corresponds to the OUT unit "shifting the result left
    or right based on a scale value".
    """
    if real_multiplier <= 0.0:
        raise ValueError("requantization multiplier must be positive")
    mantissa, exponent = np.frexp(real_multiplier)  # mantissa in [0.5, 1)
    m = int(round(mantissa * (1 << 31)))
    if m == (1 << 31):  # rounding overflowed the mantissa; renormalise
        m //= 2
        exponent += 1
    shift = -int(exponent)
    return m, shift


def rounding_right_shift(x: np.ndarray, shift: int) -> np.ndarray:
    """Arithmetic right shift with round-half-away-from-zero.

    This is gemmlowp's ``RoundingDivideByPOT``: the rounding used by the OUT
    unit when discarding low accumulator bits.  ``shift`` must be >= 0.
    """
    if shift < 0:
        raise ValueError("shift must be non-negative")
    if shift == 0:
        return np.asarray(x).copy()
    x = np.asarray(x, dtype=np.int64)
    mask = np.int64((1 << shift) - 1)
    remainder = x & mask
    threshold = np.int64(mask >> 1) + (x < 0).astype(np.int64)
    return (x >> np.int64(shift)) + (remainder > threshold).astype(np.int64)


def _saturating_rounding_doubling_high_mul(a: np.ndarray, m: int) -> np.ndarray:
    """gemmlowp's SaturatingRoundingDoublingHighMul on int32 lanes."""
    a = np.asarray(a, dtype=np.int64)
    prod = a * np.int64(m)
    nudge = np.where(prod >= 0, np.int64(1 << 30), np.int64(1 - (1 << 30)))
    total = prod + nudge
    # C++ integer division truncates toward zero; emulate it exactly.
    magnitude = np.abs(total) >> np.int64(31)
    result = np.where(total >= 0, magnitude, -magnitude)
    # The only overflow case is INT32_MIN * INT32_MIN; saturate regardless.
    return np.clip(result, ACC_MIN, ACC_MAX)


def requantize(
    acc: np.ndarray,
    multiplier: int,
    shift: int,
    offset: int,
    dtype: NcoreDType | str = NcoreDType.UINT8,
) -> np.ndarray:
    """Requantize 32-bit accumulators to a narrow integer type.

    Implements the OUT unit datapath: multiply by the *range* value
    (``multiplier``, an int32 fixed-point mantissa), shift by the *scale*
    value (``shift``; positive = right, negative = left), then add the
    *offset* (the output zero point) and saturate to *dtype*.
    """
    acc = np.asarray(acc, dtype=np.int64)
    if shift < 0:  # left shift applied before the high-mul, as in gemmlowp
        acc = np.clip(acc << np.int64(-shift), ACC_MIN, ACC_MAX)
        scaled = _saturating_rounding_doubling_high_mul(acc, multiplier)
    else:
        scaled = _saturating_rounding_doubling_high_mul(acc, multiplier)
        scaled = rounding_right_shift(scaled, shift)
    return saturate(scaled + np.int64(offset), dtype)
