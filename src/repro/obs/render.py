"""Fig. 10-style text rendering of span timelines.

The paper's Fig. 10 shows "an example runtime trace generated during an
Ncore run using Ncore's debugging features": named regions as bars over
a cycle axis.  :func:`render_bars` is the generic renderer — one bar per
row against a shared axis — used both by the legacy
:class:`repro.runtime.profiler.Trace` and by :func:`render_tracer` for
full-system traces with one section per track.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.obs.tracer import SIM, Tracer


def render_bars(
    title: str,
    rows: Iterable[Sequence],
    total: float,
    width: int = 48,
    unit: str = "",
) -> str:
    """Render (name, start, length) rows as aligned bars.

    ``total`` fixes the axis span; rows are clipped to it.  Bars get at
    least one cell so short spans stay visible, as in Fig. 10.
    """
    lines = [title]
    axis_total = max(total, 1e-12)
    suffix = f" {unit}" if unit else ""
    for name, start, length in rows:
        offset = int(min(1.0, max(0.0, start / axis_total)) * width)
        cells = max(1, int(min(1.0, length / axis_total) * width))
        cells = min(cells, width - min(offset, width - 1))
        bar = " " * offset + "#" * cells
        start_label = _fmt_quantity(start)
        length_label = _fmt_quantity(length)
        lines.append(
            f"  {str(name)[:24]:<24} {start_label:>9} +{length_label:<9}{suffix} |{bar}"
        )
    return "\n".join(lines)


def render_tracer(tracer: Tracer, width: int = 48, tracks: list[str] | None = None) -> str:
    """Render every track of a tracer, one Fig. 10-style section each.

    Wall-clock tracks render in microseconds; simulated tracks render in
    model cycles (recovered through the tracer's clock).
    """
    sections: list[str] = []
    for track in tracks if tracks is not None else tracer.tracks():
        spans = sorted(tracer.spans_on(track), key=lambda s: s.start_us)
        if not spans:
            continue
        domain = spans[0].domain
        start = min(s.start_us for s in spans)
        end = max(s.end_us for s in spans)
        if domain == SIM:
            cycles_per_us = tracer.clock_hz / 1e6
            rows = [
                (s.name, (s.start_us - start) * cycles_per_us,
                 s.duration_us * cycles_per_us)
                for s in spans
            ]
            total = (end - start) * cycles_per_us
            title = f"[{track}] {_fmt_quantity(total)} cycles"
            unit = "cyc"
        else:
            rows = [(s.name, s.start_us - start, s.duration_us) for s in spans]
            total = end - start
            title = f"[{track}] {_fmt_quantity(total)} us"
            unit = "us"
        sections.append(render_bars(title, rows, total, width=width, unit=unit))
    return "\n".join(sections) if sections else "(empty trace)"


def render_counters(
    metrics, prefixes: Sequence[str] = ("ncore.replay.", "ncore.fastpath."),
    title: str = "[counters]",
) -> str:
    """Render registry counters matching ``prefixes`` as aligned rows.

    The Fig. 10 companion table: alongside the span timeline, the
    debug-fabric counters that explain it — by default the segment
    replay cache (``ncore.replay.hits/misses``) and the trace-fusion
    fastpath (``ncore.fastpath.*``) tallies.  Returns "" when nothing
    matches, so callers can print unconditionally.
    """
    rows: list[tuple[str, float, str]] = []
    for name in metrics.names():
        if not any(name.startswith(prefix) for prefix in prefixes):
            continue
        snap = metrics.get(name).snapshot()
        value = snap.get("value", snap.get("count", 0))
        rows.append((name, float(value), str(snap.get("unit", ""))))
    if not rows:
        return ""
    lines = [title]
    width = max(len(name) for name, _, _ in rows)
    for name, value, unit in rows:
        suffix = f" {unit}" if unit else ""
        lines.append(f"  {name:<{width}} {_fmt_quantity(value):>12}{suffix}")
    return "\n".join(lines)


def _fmt_quantity(value: float) -> str:
    if float(value) == int(value):
        return f"{int(value):d}"
    return f"{value:.2f}"
