"""Exporters: Chrome trace-event / Perfetto JSON and flat metrics dumps.

The trace format is the Chrome ``traceEvents`` JSON that Perfetto and
``chrome://tracing`` both open directly: complete ("X") events carry the
spans, instant ("i") events the markers, counter ("C") events the sampled
metrics, and metadata ("M") events name the processes and threads.

Wall-clock and simulated-time spans live in different processes so the
two timelines (host microseconds vs model cycles) never interleave:

- pid 1, "host (wall clock)" — Python-layer instrumentation;
- pid 2, "model (simulated time)" — simulator event streams, with model
  cycles converted to microseconds through the tracer's clock.
"""

from __future__ import annotations

import io
import json
from typing import Any

from repro.obs.tracer import SIM, Tracer

WALL_PID = 1
SIM_PID = 2
_PROCESS_NAMES = {WALL_PID: "host (wall clock)", SIM_PID: "model (simulated time)"}


def _pid(domain: str) -> int:
    return SIM_PID if domain == SIM else WALL_PID


def chrome_trace(tracer: Tracer, metrics=None) -> dict[str, Any]:
    """Build the Chrome trace-event JSON document for one tracer."""
    events: list[dict[str, Any]] = []
    # Stable tids per (pid, track), in order of first appearance.
    tids: dict[tuple[int, str], int] = {}

    def tid_for(domain: str, track: str) -> int:
        key = (_pid(domain), track)
        if key not in tids:
            tids[key] = len([k for k in tids if k[0] == key[0]]) + 1
        return tids[key]

    for span in tracer.spans:
        args = span.args
        if span.trace_id:
            args = dict(args)
            args["trace_id"] = span.trace_id
            args["span_id"] = span.span_id
            if span.parent_id:
                args["parent_span_id"] = span.parent_id
        events.append({
            "name": span.name,
            "cat": span.category or span.track,
            "ph": "X",
            "ts": round(span.start_us, 3),
            "dur": round(span.duration_us, 3),
            "pid": _pid(span.domain),
            "tid": tid_for(span.domain, span.track),
            "args": args,
        })
    events.extend(_flow_events(tracer, tid_for))
    for instant in tracer.instants:
        events.append({
            "name": instant.name,
            "cat": instant.track,
            "ph": "i",
            "s": "t",
            "ts": round(instant.ts_us, 3),
            "pid": _pid(instant.domain),
            "tid": tid_for(instant.domain, instant.track),
            "args": instant.args,
        })
    for sample in tracer.counter_samples:
        events.append({
            "name": sample.name,
            "ph": "C",
            "ts": round(sample.ts_us, 3),
            "pid": _pid(sample.domain),
            "tid": 0,
            "args": {"value": sample.value},
        })
    # A final counter event per metric so the metrics dump rides along in
    # the same file (visible in Perfetto's counter tracks).
    if metrics is not None and getattr(metrics, "enabled", False):
        end_ts = max((s.end_us for s in tracer.spans if s.domain == SIM), default=0.0)
        for name, snap in metrics.snapshot().items():
            if "value" in snap:
                events.append({
                    "name": name, "ph": "C", "ts": round(end_ts, 3),
                    "pid": SIM_PID, "tid": 0,
                    "args": {"value": snap["value"]},
                })
    metadata: list[dict[str, Any]] = []
    for pid in sorted({event["pid"] for event in events}):
        metadata.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": _PROCESS_NAMES.get(pid, f"process {pid}")},
        })
    for (pid, track), tid in sorted(tids.items(), key=lambda item: item[1]):
        metadata.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": track},
        })
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"clock_hz": tracer.clock_hz},
    }


def _flow_events(tracer: Tracer, tid_for) -> list[dict[str, Any]]:
    """Causal arrows linking each query's span tree (distributed tracing).

    Spans sharing a ``trace_id`` form one query's tree; a flow "s"/"f"
    pair per causal edge makes Perfetto draw the submit -> queue -> batch
    -> ncore -> post chain as connected arrows across tracks (and across
    sockets).  Edges follow ``parent_id`` when it resolves, falling back
    to start-order chaining so a flat trace still renders as one thread
    of causality.
    """
    flows: list[dict[str, Any]] = []
    by_trace: dict[str, list] = {}
    for span in tracer.spans:
        if span.trace_id:
            by_trace.setdefault(span.trace_id, []).append(span)
    flow_id = 0
    for trace_id in by_trace:
        spans = sorted(by_trace[trace_id], key=lambda s: (s.start_us, s.end_us))
        by_span_id = {s.span_id: s for s in spans if s.span_id}
        for index, span in enumerate(spans):
            parent = by_span_id.get(span.parent_id) if span.parent_id else None
            if parent is None or parent is span:
                if index == 0:
                    continue
                parent = spans[index - 1]
            flow_id += 1
            common = {"name": trace_id, "cat": "flow", "id": flow_id}
            flows.append({
                **common, "ph": "s",
                "ts": round(min(parent.end_us, max(parent.start_us, span.start_us)), 3),
                "pid": _pid(parent.domain), "tid": tid_for(parent.domain, parent.track),
            })
            flows.append({
                **common, "ph": "f", "bp": "e",
                "ts": round(span.start_us, 3),
                "pid": _pid(span.domain), "tid": tid_for(span.domain, span.track),
            })
    return flows


def write_chrome_trace(path, tracer: Tracer, metrics=None) -> None:
    """Write a ``.trace.json`` openable at https://ui.perfetto.dev."""
    document = chrome_trace(tracer, metrics)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, default=_jsonable)


def _jsonable(value: Any):
    """Fallback serializer for numpy scalars and other oddballs."""
    for attr in ("item",):  # numpy scalars
        if hasattr(value, attr):
            return value.item()
    return str(value)


# ----------------------------------------------------------------------
# Flat metrics dumps
# ----------------------------------------------------------------------

def metrics_json(registry) -> dict[str, dict[str, Any]]:
    """The registry snapshot, ready for ``json.dump``."""
    return registry.snapshot()


def metrics_csv(registry) -> str:
    """A flat CSV: one row per metric, histogram stats flattened."""
    out = io.StringIO()
    out.write("name,kind,unit,value,count,mean,min,max,p50,p90,p99,wrapped\n")
    for name, snap in registry.snapshot().items():
        row = [
            name, snap.get("kind", ""), snap.get("unit", ""),
            _fmt(snap.get("value")), _fmt(snap.get("count")),
            _fmt(snap.get("mean")), _fmt(snap.get("min")), _fmt(snap.get("max")),
            _fmt(snap.get("p50")), _fmt(snap.get("p90")), _fmt(snap.get("p99")),
            _fmt(snap.get("wrapped")),
        ]
        out.write(",".join(row) + "\n")
    return out.getvalue()


def _fmt(value) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return f"{value:.9g}"
    return str(value)
