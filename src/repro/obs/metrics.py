"""Named metrics modeled on the section IV-F performance counters.

The registry holds three software metric kinds (counters, gauges,
histograms) plus *hardware counters* — adapters around the machine's
:class:`repro.ncore.debug.PerfCounter` objects that keep the hardware
semantics intact: a fixed bit width, configurable offsets, and the
wraparound breakpointing the paper uses to stop execution "at counter
wraparound".  Incrementing a hardware counter through the registry goes
through ``PerfCounter.add`` and therefore still arms breakpoints.

Like the tracer, the registry has a zero-cost default: call sites check
``get_metrics().enabled`` before doing any bookkeeping.
"""

from __future__ import annotations

import threading
from bisect import insort
from contextlib import contextmanager
from typing import Any, Iterator


class Counter:
    """A monotonically increasing value (bytes moved, queries, hits)."""

    kind = "counter"

    def __init__(self, name: str, description: str = "", unit: str = "") -> None:
        self.name = name
        self.description = description
        self.unit = unit
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value, "unit": self.unit,
                "description": self.description}


class Gauge:
    """A point-in-time value (ring occupancy, queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, description: str = "", unit: str = "") -> None:
        self.name = name
        self.description = description
        self.unit = unit
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value, "unit": self.unit,
                "description": self.description}


class Histogram:
    """A distribution (per-query latency, per-kernel cycles).

    Keeps sorted observations so MLPerf-style percentiles are exact; the
    observation list is capped to bound memory on very long runs (the
    running count/sum/min/max stay exact).
    """

    kind = "histogram"

    def __init__(self, name: str, description: str = "", unit: str = "",
                 max_observations: int = 65536) -> None:
        self.name = name
        self.description = description
        self.unit = unit
        self.max_observations = max_observations
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._sorted: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self._sorted) < self.max_observations:
            insort(self._sorted, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Exact percentile over retained observations (p in [0, 100])."""
        if not self._sorted:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        index = min(len(self._sorted) - 1, int(round(p / 100 * (len(self._sorted) - 1))))
        return self._sorted[index]

    def snapshot(self) -> dict[str, Any]:
        return {
            "kind": self.kind, "unit": self.unit, "description": self.description,
            "count": self.count, "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.percentile(50), "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class HardwareCounter:
    """Registry view of one hardware :class:`PerfCounter`.

    The underlying counter keeps its bit width, offset configuration and
    wraparound breakpoint; :meth:`inc` returns True when a breakpoint
    fires, exactly as ``PerfCounter.add`` does.
    """

    kind = "hardware"

    def __init__(self, name: str, perf_counter, description: str = "",
                 unit: str = "") -> None:
        self.name = name
        self.perf_counter = perf_counter
        self.description = description
        self.unit = unit

    @property
    def value(self) -> int:
        return self.perf_counter.value

    @property
    def wrapped(self) -> bool:
        return self.perf_counter.wrapped

    def inc(self, amount: int = 1) -> bool:
        return self.perf_counter.add(amount)

    def snapshot(self) -> dict[str, Any]:
        return {
            "kind": self.kind, "value": self.perf_counter.value,
            "unit": self.unit, "description": self.description,
            "bits": self.perf_counter.bits, "wrapped": self.perf_counter.wrapped,
            "break_on_wrap": self.perf_counter.break_on_wrap,
        }


class NullMetrics:
    """The no-op default registry (mirrors :class:`.tracer.NullTracer`)."""

    enabled = False
    _NULL_COUNTER = Counter("null")
    _NULL_GAUGE = Gauge("null")
    _NULL_HISTOGRAM = Histogram("null", max_observations=0)

    def counter(self, name: str, description: str = "", unit: str = "") -> Counter:
        return self._NULL_COUNTER

    def gauge(self, name: str, description: str = "", unit: str = "") -> Gauge:
        return self._NULL_GAUGE

    def histogram(self, name: str, description: str = "", unit: str = "") -> Histogram:
        return self._NULL_HISTOGRAM

    def bind_hardware(self, name: str, perf_counter, description: str = "",
                      unit: str = "") -> HardwareCounter:
        return HardwareCounter(name, perf_counter, description, unit)


NULL_METRICS = NullMetrics()


class MetricsRegistry:
    """A namespace of metrics, get-or-create by name."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram | HardwareCounter] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, description: str, unit: str, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, description=description, unit=unit, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, description: str = "", unit: str = "") -> Counter:
        return self._get_or_create(Counter, name, description, unit)

    def gauge(self, name: str, description: str = "", unit: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, description, unit)

    def histogram(self, name: str, description: str = "", unit: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, description, unit)

    def bind_hardware(self, name: str, perf_counter, description: str = "",
                      unit: str = "") -> HardwareCounter:
        """Expose a hardware PerfCounter through the registry.

        Re-binding the same name replaces the view (a fresh machine after
        reset), never the underlying hardware state.
        """
        with self._lock:
            view = HardwareCounter(name, perf_counter, description, unit)
            self._metrics[name] = view
            return view

    # ------------------------------------------------------------------

    def get(self, name: str):
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All metrics as plain dicts (the flat JSON dump)."""
        return {name: self._metrics[name].snapshot() for name in self.names()}


_installed: NullMetrics | MetricsRegistry = NULL_METRICS


def get_metrics() -> NullMetrics | MetricsRegistry:
    """The installed registry, or the zero-cost :data:`NULL_METRICS`."""
    return _installed


def set_metrics(registry: MetricsRegistry | NullMetrics | None) -> None:
    global _installed
    _installed = registry if registry is not None else NULL_METRICS


@contextmanager
def install_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    previous = _installed
    set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
