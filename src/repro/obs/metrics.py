"""Named metrics modeled on the section IV-F performance counters.

The registry holds three software metric kinds (counters, gauges,
histograms) plus *hardware counters* — adapters around the machine's
:class:`repro.ncore.debug.PerfCounter` objects that keep the hardware
semantics intact: a fixed bit width, configurable offsets, and the
wraparound breakpointing the paper uses to stop execution "at counter
wraparound".  Incrementing a hardware counter through the registry goes
through ``PerfCounter.add`` and therefore still arms breakpoints.

Serving-grade extensions (the fleet-telemetry substrate):

- **Label sets.**  Every metric accepts a ``labels`` mapping
  (``model=``, ``socket=``, ``stage=``); each distinct label set is its
  own time series, keyed Prometheus-style as ``name{k="v",...}``.
- **Windowed series.**  :meth:`MetricsRegistry.windowed_histogram`
  registers a :class:`repro.obs.window.WindowedHistogram` for rolling
  percentiles over simulated (or wall) time — see :mod:`repro.obs.window`.
- **Exact percentiles.**  :meth:`Histogram.percentile` uses the same
  linear interpolation as ``numpy.percentile``, so a summary derived
  from the registry is bit-identical to a post-pass over the raw
  latency array (the serving harness relies on this to keep one source
  of truth).

Like the tracer, the registry has a zero-cost default: call sites check
``get_metrics().enabled`` before doing any bookkeeping.
"""

from __future__ import annotations

import math
import threading
from bisect import insort
from contextlib import contextmanager
from typing import Any, Iterator, Mapping


def _percentile_linear(ordered: list[float], p: float) -> float:
    """Linear-interpolation percentile over pre-sorted values.

    Replicates ``numpy.percentile``'s default method bit-for-bit,
    including its symmetric lerp (interpolating from the upper
    neighbour when the fraction is >= 0.5), so registry-derived
    summaries agree exactly with a numpy post-pass over the same data.
    """
    if not ordered:
        return 0.0
    rank = p / 100 * (len(ordered) - 1)
    lower = math.floor(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    low_value, high_value = ordered[lower], ordered[upper]
    if fraction >= 0.5:
        return high_value - (high_value - low_value) * (1.0 - fraction)
    return low_value + (high_value - low_value) * fraction


def labelled_name(name: str, labels: Mapping[str, Any] | None) -> str:
    """The registry key / Prometheus-style series name for a label set."""
    if not labels:
        return name
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing value (bytes moved, queries, hits)."""

    kind = "counter"

    def __init__(self, name: str, description: str = "", unit: str = "",
                 labels: Mapping[str, Any] | None = None) -> None:
        self.name = name
        self.description = description
        self.unit = unit
        self.labels = dict(labels) if labels else {}
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        snap = {"kind": self.kind, "value": self.value, "unit": self.unit,
                "description": self.description}
        if self.labels:
            snap["labels"] = dict(self.labels)
        return snap


class Gauge:
    """A point-in-time value (ring occupancy, queue depth)."""

    kind = "gauge"

    def __init__(self, name: str, description: str = "", unit: str = "",
                 labels: Mapping[str, Any] | None = None) -> None:
        self.name = name
        self.description = description
        self.unit = unit
        self.labels = dict(labels) if labels else {}
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict[str, Any]:
        snap = {"kind": self.kind, "value": self.value, "unit": self.unit,
                "description": self.description}
        if self.labels:
            snap["labels"] = dict(self.labels)
        return snap


class Histogram:
    """A distribution (per-query latency, per-kernel cycles).

    Keeps sorted observations so MLPerf-style percentiles are exact; the
    observation list is capped to bound memory on very long runs (the
    running count/sum/min/max stay exact).  :meth:`percentile` matches
    ``numpy.percentile``'s default linear interpolation exactly, so a
    summary derived from a histogram agrees bit-for-bit with a post-pass
    over the same observations.
    """

    kind = "histogram"

    def __init__(self, name: str, description: str = "", unit: str = "",
                 max_observations: int = 65536,
                 labels: Mapping[str, Any] | None = None) -> None:
        self.name = name
        self.description = description
        self.unit = unit
        self.labels = dict(labels) if labels else {}
        self.max_observations = max_observations
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._sorted: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError(f"histogram {self.name} rejects NaN observations")
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self._sorted) < self.max_observations:
            insort(self._sorted, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Percentile over retained observations, ``numpy``-compatible.

        Linear interpolation between closest ranks (the default method of
        ``numpy.percentile``); p must be in [0, 100] and not NaN.  An
        empty histogram reports 0.0.
        """
        p = float(p)
        if math.isnan(p) or not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        return _percentile_linear(self._sorted, p)

    def snapshot(self) -> dict[str, Any]:
        snap = {
            "kind": self.kind, "unit": self.unit, "description": self.description,
            "count": self.count, "mean": self.mean, "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.percentile(50), "p90": self.percentile(90),
            "p99": self.percentile(99),
        }
        if self.labels:
            snap["labels"] = dict(self.labels)
        return snap


class HardwareCounter:
    """Registry view of one hardware :class:`PerfCounter`.

    The underlying counter keeps its bit width, offset configuration and
    wraparound breakpoint; :meth:`inc` returns True when a breakpoint
    fires, exactly as ``PerfCounter.add`` does.
    """

    kind = "hardware"

    def __init__(self, name: str, perf_counter, description: str = "",
                 unit: str = "", labels: Mapping[str, Any] | None = None) -> None:
        self.name = name
        self.perf_counter = perf_counter
        self.description = description
        self.unit = unit
        self.labels = dict(labels) if labels else {}

    @property
    def value(self) -> int:
        return self.perf_counter.value

    @property
    def wrapped(self) -> bool:
        return self.perf_counter.wrapped

    def inc(self, amount: int = 1) -> bool:
        return self.perf_counter.add(amount)

    def snapshot(self) -> dict[str, Any]:
        snap = {
            "kind": self.kind, "value": self.perf_counter.value,
            "unit": self.unit, "description": self.description,
            "bits": self.perf_counter.bits, "wrapped": self.perf_counter.wrapped,
            "break_on_wrap": self.perf_counter.break_on_wrap,
        }
        if self.labels:
            snap["labels"] = dict(self.labels)
        return snap


class NullMetrics:
    """The no-op default registry (mirrors :class:`.tracer.NullTracer`)."""

    enabled = False
    _NULL_COUNTER = Counter("null")
    _NULL_GAUGE = Gauge("null")
    _NULL_HISTOGRAM = Histogram("null", max_observations=0)

    def counter(self, name: str, description: str = "", unit: str = "",
                labels: Mapping[str, Any] | None = None) -> Counter:
        return self._NULL_COUNTER

    def gauge(self, name: str, description: str = "", unit: str = "",
              labels: Mapping[str, Any] | None = None) -> Gauge:
        return self._NULL_GAUGE

    def histogram(self, name: str, description: str = "", unit: str = "",
                  labels: Mapping[str, Any] | None = None) -> Histogram:
        return self._NULL_HISTOGRAM

    def windowed_histogram(self, name: str, window_seconds: float | None = None,
                           description: str = "", unit: str = "",
                           labels: Mapping[str, Any] | None = None):
        from repro.obs.window import NULL_WINDOWED_HISTOGRAM

        return NULL_WINDOWED_HISTOGRAM

    def bind_hardware(self, name: str, perf_counter, description: str = "",
                      unit: str = "",
                      labels: Mapping[str, Any] | None = None) -> HardwareCounter:
        return HardwareCounter(name, perf_counter, description, unit,
                               labels=labels)

    def register(self, metric):
        return metric


NULL_METRICS = NullMetrics()


class MetricsRegistry:
    """A namespace of metrics, get-or-create by (name, label set)."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, description: str, unit: str,
                       labels: Mapping[str, Any] | None = None, **kwargs):
        key = labelled_name(name, labels)
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, description=description, unit=unit,
                             labels=labels, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {key!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, description: str = "", unit: str = "",
                labels: Mapping[str, Any] | None = None) -> Counter:
        return self._get_or_create(Counter, name, description, unit, labels)

    def gauge(self, name: str, description: str = "", unit: str = "",
              labels: Mapping[str, Any] | None = None) -> Gauge:
        return self._get_or_create(Gauge, name, description, unit, labels)

    def histogram(self, name: str, description: str = "", unit: str = "",
                  labels: Mapping[str, Any] | None = None) -> Histogram:
        return self._get_or_create(Histogram, name, description, unit, labels)

    def windowed_histogram(self, name: str, window_seconds: float | None = None,
                           description: str = "", unit: str = "",
                           labels: Mapping[str, Any] | None = None):
        """Get or create a rolling-window histogram (see ``repro.obs.window``)."""
        from repro.obs.window import WindowedHistogram

        return self._get_or_create(
            WindowedHistogram, name, description, unit, labels,
            window_seconds=window_seconds,
        )

    def bind_hardware(self, name: str, perf_counter, description: str = "",
                      unit: str = "",
                      labels: Mapping[str, Any] | None = None) -> HardwareCounter:
        """Expose a hardware PerfCounter through the registry.

        Re-binding the same name replaces the view (a fresh machine after
        reset), never the underlying hardware state.
        """
        key = labelled_name(name, labels)
        with self._lock:
            view = HardwareCounter(name, perf_counter, description, unit,
                                   labels=labels)
            self._metrics[key] = view
            return view

    def register(self, metric):
        """Adopt an externally constructed metric object.

        Lets a scenario own its metric (a per-run latency histogram, an
        SLO monitor) while still exposing it through the registry for
        snapshots/exposition.  Like :meth:`bind_hardware`, re-registering
        a key replaces the view — the caller's object stays authoritative.
        """
        key = labelled_name(metric.name, getattr(metric, "labels", None))
        with self._lock:
            self._metrics[key] = metric
        return metric

    # ------------------------------------------------------------------

    def get(self, name: str):
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """All metrics as plain dicts (the flat JSON dump)."""
        return {name: self._metrics[name].snapshot() for name in self.names()}


_installed: NullMetrics | MetricsRegistry = NULL_METRICS


def get_metrics() -> NullMetrics | MetricsRegistry:
    """The installed registry, or the zero-cost :data:`NULL_METRICS`."""
    return _installed


def set_metrics(registry: MetricsRegistry | NullMetrics | None) -> None:
    global _installed
    _installed = registry if registry is not None else NULL_METRICS


@contextmanager
def install_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    previous = _installed
    set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
