"""Windowed, time-aware metric aggregations and SLO monitoring.

The flat :mod:`repro.obs.metrics` kinds answer "what happened over the
whole run"; a serving operator needs "what is happening *now*": rolling
p99 over the last second, queries-per-second over the last window, an
error-budget burn rate against the latency SLO.  These classes provide
that, with **explicit timestamps** throughout — the serving stack runs on
the discrete-event engine's simulated clock, so every observation carries
its engine time and two seeded runs produce identical windows (nothing
here reads the wall clock unless the caller passes wall timestamps).

- :class:`WindowedHistogram` — rolling percentiles/rate over a sliding
  time window (``window_seconds=None`` degrades to the full run, which
  makes the final rolling summary agree exactly with a one-shot
  percentile pass).
- :class:`RateMeter` — events (or weighted quantities) per second over a
  sliding window.
- :class:`Ewma` — exponentially weighted moving average with a half-life
  in seconds, for smoothed gauges (utilization, batch occupancy).
- :class:`SloMonitor` — a latency target plus an error budget; computes
  attainment, the windowed violation rate and the budget *burn rate*
  (observed violation rate / budgeted violation rate; >1 means the
  budget is being spent faster than allowed).

All four expose ``name``/``labels``/``kind``/``snapshot()`` so they can
be adopted by a :class:`~repro.obs.metrics.MetricsRegistry` (via
``register`` or ``windowed_histogram``) and ride along in snapshots and
the Prometheus exposition.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Mapping


class WindowedHistogram:
    """Sliding-time-window distribution with numpy-compatible percentiles.

    Observations are ``(timestamp, value)`` pairs; queries (percentile,
    rate, mean) are evaluated over observations newer than
    ``now - window_seconds``.  ``now`` defaults to the newest observation
    so a drained run reports its final window.
    """

    kind = "windowed_histogram"

    def __init__(self, name: str, description: str = "", unit: str = "",
                 labels: Mapping[str, Any] | None = None,
                 window_seconds: float | None = None,
                 max_observations: int = 65536) -> None:
        if window_seconds is not None and window_seconds <= 0:
            raise ValueError("window_seconds must be positive (or None)")
        self.name = name
        self.description = description
        self.unit = unit
        self.labels = dict(labels) if labels else {}
        self.window_seconds = window_seconds
        self.count = 0          # lifetime observations (exact)
        self.total = 0.0        # lifetime sum (exact)
        self._samples: deque[tuple[float, float]] = deque(maxlen=max_observations)
        self._last_ts = 0.0

    def observe(self, value: float, ts: float) -> None:
        value = float(value)
        if math.isnan(value) or math.isnan(ts):
            raise ValueError(f"windowed histogram {self.name} rejects NaN")
        if ts < self._last_ts:
            raise ValueError(
                f"windowed histogram {self.name}: timestamps must be "
                f"monotonic ({ts} < {self._last_ts})"
            )
        self._last_ts = ts
        self.count += 1
        self.total += value
        self._samples.append((ts, value))

    # ------------------------------------------------------------------

    def _window_values(self, now: float | None) -> list[float]:
        if not self._samples:
            return []
        now = self._last_ts if now is None else now
        if self.window_seconds is None:
            return [value for _, value in self._samples]
        horizon = now - self.window_seconds
        # Evict out-of-window samples for real: the deque is time-ordered.
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()
        return [value for _, value in self._samples]

    def window_count(self, now: float | None = None) -> int:
        return len(self._window_values(now))

    def percentile(self, p: float, now: float | None = None) -> float:
        """Rolling percentile (linear interpolation, as numpy) at ``now``."""
        p = float(p)
        if math.isnan(p) or not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        from repro.obs.metrics import _percentile_linear

        return _percentile_linear(sorted(self._window_values(now)), p)

    def mean(self, now: float | None = None) -> float:
        values = self._window_values(now)
        return sum(values) / len(values) if values else 0.0

    def rate(self, now: float | None = None) -> float:
        """Observations per second over the window (0 when unbounded)."""
        if self.window_seconds is None:
            return 0.0
        return len(self._window_values(now)) / self.window_seconds

    def snapshot(self) -> dict[str, Any]:
        snap: dict[str, Any] = {
            "kind": self.kind, "unit": self.unit,
            "description": self.description,
            "count": self.count, "sum": self.total,
            "window_seconds": self.window_seconds,
            "window_count": self.window_count(),
            "mean": self.mean(),
            "p50": self.percentile(50), "p90": self.percentile(90),
            "p99": self.percentile(99),
        }
        if self.labels:
            snap["labels"] = dict(self.labels)
        return snap


#: The discard-everything instance handed out by ``NullMetrics``.
NULL_WINDOWED_HISTOGRAM = WindowedHistogram("null", max_observations=0)


class RateMeter:
    """Weighted events per second over a sliding window."""

    kind = "rate"

    def __init__(self, name: str, window_seconds: float = 1.0,
                 description: str = "", unit: str = "",
                 labels: Mapping[str, Any] | None = None) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.name = name
        self.description = description
        self.unit = unit
        self.labels = dict(labels) if labels else {}
        self.window_seconds = window_seconds
        self.count = 0
        self.total = 0.0
        self._samples: deque[tuple[float, float]] = deque()
        self._last_ts = 0.0

    def add(self, ts: float, weight: float = 1.0) -> None:
        if math.isnan(ts) or math.isnan(weight):
            raise ValueError(f"rate meter {self.name} rejects NaN")
        self._last_ts = max(self._last_ts, ts)
        self.count += 1
        self.total += weight
        self._samples.append((ts, weight))

    def rate(self, now: float | None = None) -> float:
        now = self._last_ts if now is None else now
        horizon = now - self.window_seconds
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()
        return sum(weight for _, weight in self._samples) / self.window_seconds

    def snapshot(self) -> dict[str, Any]:
        snap: dict[str, Any] = {
            "kind": self.kind, "unit": self.unit,
            "description": self.description,
            "count": self.count, "sum": self.total,
            "window_seconds": self.window_seconds,
            "value": self.rate(),
        }
        if self.labels:
            snap["labels"] = dict(self.labels)
        return snap


class Ewma:
    """Exponentially weighted moving average with a time half-life."""

    kind = "ewma"

    def __init__(self, name: str, halflife_seconds: float = 1.0,
                 description: str = "", unit: str = "",
                 labels: Mapping[str, Any] | None = None) -> None:
        if halflife_seconds <= 0:
            raise ValueError("halflife_seconds must be positive")
        self.name = name
        self.description = description
        self.unit = unit
        self.labels = dict(labels) if labels else {}
        self.halflife_seconds = halflife_seconds
        self.value = 0.0
        self.count = 0
        self._last_ts: float | None = None

    def update(self, value: float, ts: float) -> float:
        value = float(value)
        if math.isnan(value) or math.isnan(ts):
            raise ValueError(f"ewma {self.name} rejects NaN")
        if self._last_ts is None:
            self.value = value
        else:
            dt = max(0.0, ts - self._last_ts)
            decay = 0.5 ** (dt / self.halflife_seconds)
            self.value = decay * self.value + (1.0 - decay) * value
        self._last_ts = ts
        self.count += 1
        return self.value

    def snapshot(self) -> dict[str, Any]:
        snap: dict[str, Any] = {
            "kind": self.kind, "unit": self.unit,
            "description": self.description,
            "count": self.count, "value": self.value,
            "halflife_seconds": self.halflife_seconds,
        }
        if self.labels:
            snap["labels"] = dict(self.labels)
        return snap


class SloMonitor:
    """A latency objective with an error budget and burn-rate computation.

    ``target_seconds`` is the per-query latency bound (MLPerf Server's
    latency constraint); ``error_budget`` is the allowed violation
    fraction (MLPerf Server allows 1% of queries over the bound, hence
    the default 0.01 — the p99 constraint).  The *burn rate* is the
    observed violation fraction divided by the budgeted fraction over the
    sliding window: 1.0 means the budget is being consumed exactly at the
    allowed pace, >1 means it will be exhausted early (the standard
    multi-window burn-rate alerting quantity).
    """

    kind = "slo"

    def __init__(self, name: str, target_seconds: float,
                 error_budget: float = 0.01,
                 window_seconds: float | None = None,
                 description: str = "", labels: Mapping[str, Any] | None = None) -> None:
        if target_seconds <= 0:
            raise ValueError("target_seconds must be positive")
        if not 0 < error_budget < 1:
            raise ValueError("error_budget must be in (0, 1)")
        self.name = name
        self.description = description
        self.unit = "s"
        self.labels = dict(labels) if labels else {}
        self.target_seconds = target_seconds
        self.error_budget = error_budget
        self.window_seconds = window_seconds
        self.count = 0
        self.violations = 0
        self._window: deque[tuple[float, bool]] = deque()
        self._last_ts = 0.0

    def observe(self, latency_seconds: float, ts: float) -> bool:
        """Record one query; returns True when it met the objective."""
        if math.isnan(latency_seconds) or math.isnan(ts):
            raise ValueError(f"slo monitor {self.name} rejects NaN")
        ok = latency_seconds <= self.target_seconds
        self.count += 1
        if not ok:
            self.violations += 1
        self._last_ts = max(self._last_ts, ts)
        self._window.append((ts, ok))
        return ok

    # ------------------------------------------------------------------

    def _trim(self, now: float | None) -> None:
        if self.window_seconds is None:
            return
        now = self._last_ts if now is None else now
        horizon = now - self.window_seconds
        while self._window and self._window[0][0] < horizon:
            self._window.popleft()

    @property
    def attainment(self) -> float:
        """Lifetime fraction of queries meeting the objective."""
        if self.count == 0:
            return 1.0
        return 1.0 - self.violations / self.count

    def window_violation_rate(self, now: float | None = None) -> float:
        self._trim(now)
        if not self._window:
            return 0.0
        bad = sum(1 for _, ok in self._window if not ok)
        return bad / len(self._window)

    def burn_rate(self, now: float | None = None) -> float:
        """Windowed violation rate relative to the budgeted rate."""
        return self.window_violation_rate(now) / self.error_budget

    @property
    def budget_remaining(self) -> float:
        """Fraction of the lifetime error budget still unspent."""
        if self.count == 0:
            return 1.0
        spent = (self.violations / self.count) / self.error_budget
        return 1.0 - spent

    @property
    def ok(self) -> bool:
        """True while the lifetime violation fraction is within budget."""
        return self.budget_remaining >= 0.0

    def snapshot(self) -> dict[str, Any]:
        snap: dict[str, Any] = {
            "kind": self.kind, "unit": self.unit,
            "description": self.description,
            "count": self.count, "violations": self.violations,
            "target_seconds": self.target_seconds,
            "error_budget": self.error_budget,
            "attainment": self.attainment,
            "burn_rate": self.burn_rate(),
            "budget_remaining": self.budget_remaining,
            "value": self.attainment,
        }
        if self.labels:
            snap["labels"] = dict(self.labels)
        return snap
