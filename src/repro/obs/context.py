"""Per-query distributed trace contexts.

The serving stack runs one query through many actors — the submitting
session, the batching queue, an Ncore executor on some socket, the x86
post-processing pool — and each actor records its own spans.  Without a
correlation id those spans are just parallel timelines; an operator
debugging one slow query (the paper's Fig. 10 workflow, scaled to a
fleet) needs the *tree*: which batch carried the query, which socket ran
the batch, where the p99 tail came from.

:class:`TraceContext` is that correlation: a ``trace_id`` minted once per
query at submission, plus a ``span_id``/``parent_id`` pair forming the
causal tree.  Contexts are immutable; :meth:`child` derives the context
for a sub-stage.  The exporter renders same-trace spans as one linked
tree (Chrome/Perfetto flow arrows between consecutive stages).

Minting is deterministic: ids derive from the (owner, sequence) pair the
caller supplies, never from wall time or randomness, so two runs of the
same seeded schedule produce byte-identical trace files.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class TraceContext:
    """One node of a query's causal span tree.

    ``trace_id`` names the query (shared by every span in the tree);
    ``span_id`` names this node; ``parent_id`` points at the node that
    caused it (empty string at the root).
    """

    trace_id: str
    span_id: str = "root"
    parent_id: str = ""

    def child(self, span_id: str) -> "TraceContext":
        """The context of a sub-stage caused by this span."""
        return replace(self, span_id=span_id, parent_id=self.span_id)

    def sibling(self, span_id: str) -> "TraceContext":
        """A context at the same tree depth (same parent)."""
        return replace(self, span_id=span_id)


def mint_trace(owner: str, sequence: int) -> TraceContext:
    """Deterministically mint a root context for one submitted query.

    The id is a pure function of ``(owner, sequence)`` — typically the
    submitting executor's model name and the query's submission index —
    so seeded runs reproduce identical trace files.
    """
    return TraceContext(trace_id=f"{owner}/q{sequence:06d}")
