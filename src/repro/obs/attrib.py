"""Cycle-attribution profiling: wall-clock results back to GIR segments.

The paper debugs MLPerf bring-up by reading performance counters against
the known kernel schedule (Fig. 10).  This module systematises that: it
maps retired cycles and DMA bytes back through the compiled artifact —
GIR segment -> op -> lowered kernel — and stamps each execution with the
tier that actually ran it (``interpreter`` / ``fastpath`` trace fusion /
``replay`` cache hit / the serving harness's analytic ``timing-model``).

Two outputs:

- **Segment feature records** (JSONL): per-segment op mix, output
  shapes, streamed DMA bytes, loop trip counts, MACs and cycles — the
  exact training schema the learned cycle-predictor tier (ROADMAP item
  3, NeuroScalar/SimNet in PAPERS.md) consumes.  Harvest with
  ``repro serve <model> --harvest run.jsonl``.
- **Collapsed stacks** for flamegraph tooling
  (``model;segment[i];tier;op;kernel cycles`` — feed straight into
  ``flamegraph.pl`` or speedscope).

Like the tracer and the metrics registry, the collector has a zero-cost
null default: hot call sites check ``get_attrib().enabled`` first.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:
    from repro.graph.loadable import CompiledModel

#: Execution tiers a record can be attributed to.
TIER_INTERPRETER = "interpreter"
TIER_FASTPATH = "fastpath"
TIER_REPLAY = "replay"
TIER_CODEGEN = "codegen"
TIER_TIMING_MODEL = "timing-model"


def segment_features(
    model: "CompiledModel", dma_bytes_per_cycle: float = 40.96
) -> list[dict[str, Any]]:
    """Static per-segment feature dicts from one compiled artifact.

    One dict per segment in execution order.  Ncore segments carry the
    full lowered-kernel attribution (per-op cycle split, streamed DMA
    bytes, loop trip counts); x86 fallback segments carry the op mix
    with zero Ncore cycles, so a harvest still accounts for every node.
    """
    records: list[dict[str, Any]] = []
    for index, segment in enumerate(model.segments):
        ops: dict[str, int] = {}
        for node in segment.nodes:
            ops[node.op] = ops.get(node.op, 0) + 1
        record: dict[str, Any] = {
            "model": model.name,
            "segment": index,
            "target": segment.target,
            "ops": ops,
            "nodes": len(segment.nodes),
            "kernels": 0,
            "op_cycles": {},
            "output_shapes": [],
            "dma_bytes": 0,
            "weight_bytes": 0,
            "weights_pinned": False,
            "loop_trips": 0,
            "macs": 0,
            "compute_cycles": 0,
            "total_cycles": 0,
            "utilization": 0.0,
        }
        loadable = model.loadables.get(index)
        if loadable is not None:
            op_cycles: dict[str, int] = {}
            shapes: list[list[int]] = []
            trips = 0
            for kernel in loadable.kernels:
                op_cycles[kernel.op] = op_cycles.get(kernel.op, 0) + kernel.cycles
                trips += int(kernel.meta.get("passes", 0))
                if kernel.output_tensor:
                    shape = model.graph.tensor(kernel.output_tensor).shape
                    shapes.append([int(dim) for dim in shape])
            streamed = (
                0 if loadable.memory_plan.weights_pinned
                else loadable.weight_image_bytes
            )
            record.update(
                kernels=len(loadable.kernels),
                op_cycles=op_cycles,
                output_shapes=shapes,
                dma_bytes=streamed,
                weight_bytes=loadable.weight_image_bytes,
                weights_pinned=loadable.memory_plan.weights_pinned,
                loop_trips=trips,
                macs=sum(k.macs for k in loadable.kernels),
                compute_cycles=loadable.compute_cycles,
                total_cycles=loadable.total_cycles(dma_bytes_per_cycle),
                utilization=loadable.mean_utilization,
            )
        records.append(record)
    return records


class NullAttribution:
    """The no-op default collector (mirrors ``NullTracer``)."""

    enabled = False

    def record(self, **fields: Any) -> None:
        pass

    def record_model_run(
        self, model: "CompiledModel", tier: str, batch: int = 1,
        count: int = 1, dma_bytes_per_cycle: float = 40.96,
    ) -> None:
        pass


NULL_ATTRIB = NullAttribution()


class AttributionCollector:
    """Accumulates per-segment execution records for one observed run."""

    enabled = True

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []
        # Static features are pure functions of the compiled artifact;
        # cache them per model object so per-query recording is cheap.
        self._features: dict[int, list[dict[str, Any]]] = {}

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.records)

    def record(self, **fields: Any) -> None:
        """Append one free-form record (must carry the schema keys)."""
        self.records.append(fields)

    def features_for(
        self, model: "CompiledModel", dma_bytes_per_cycle: float = 40.96
    ) -> list[dict[str, Any]]:
        cached = self._features.get(id(model))
        if cached is None:
            cached = segment_features(model, dma_bytes_per_cycle)
            self._features[id(model)] = cached
        return cached

    def record_model_run(
        self, model: "CompiledModel", tier: str, batch: int = 1,
        count: int = 1, dma_bytes_per_cycle: float = 40.96,
    ) -> None:
        """Attribute ``count`` executions of a model to one tier.

        Emits one record per segment: the static features plus the tier,
        batch size and execution count.  A replay hit contributes records
        with ``tier="replay"`` — its cycles are the cycles *avoided*,
        which is exactly what a predictor trained on this harvest needs
        to see labelled.
        """
        if count < 1:
            return
        for features in self.features_for(model, dma_bytes_per_cycle):
            record = dict(features)
            record["tier"] = tier
            record["batch"] = batch
            record["count"] = count
            self.records.append(record)

    # ------------------------------------------------------------------
    # Outputs
    # ------------------------------------------------------------------

    def write_jsonl(self, path: str) -> int:
        """Write the harvest file: one JSON record per line."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(self.records)

    def collapsed_stacks(self) -> str:
        """Flamegraph-ready collapsed stacks, cycles as sample weights.

        Frame order: model ; segment[i] (tier) ; op.  Cycle weights are
        per-op compute cycles times the execution count, so the widest
        frames are where the simulated silicon spent its time.
        """
        weights: dict[tuple[str, str, str], int] = {}
        for record in self.records:
            count = int(record.get("count", 1))
            model = str(record.get("model", "?"))
            frame = f"segment[{record.get('segment', '?')}] ({record.get('tier', '?')})"
            op_cycles: dict[str, int] = record.get("op_cycles") or {}
            if op_cycles:
                for op, cycles in op_cycles.items():
                    key = (model, frame, op)
                    weights[key] = weights.get(key, 0) + int(cycles) * count
            else:
                for op, n in (record.get("ops") or {}).items():
                    key = (model, frame, op)
                    weights[key] = weights.get(key, 0) + int(n) * count
        lines = [
            ";".join(key) + f" {weight}"
            for key, weight in sorted(weights.items())
            if weight > 0
        ]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The installed collector (module-level, like the tracer)
# ----------------------------------------------------------------------

_installed: NullAttribution | AttributionCollector = NULL_ATTRIB


def get_attrib() -> NullAttribution | AttributionCollector:
    """The installed collector, or the zero-cost :data:`NULL_ATTRIB`."""
    return _installed


def set_attrib(collector: AttributionCollector | NullAttribution | None) -> None:
    global _installed
    _installed = collector if collector is not None else NULL_ATTRIB


class install_attrib:
    """Install a collector for a ``with`` block (nests, restores on exit)."""

    def __init__(self, collector: AttributionCollector | None = None) -> None:
        self.collector = collector if collector is not None else AttributionCollector()
        self._previous: NullAttribution | AttributionCollector | None = None

    def __enter__(self) -> AttributionCollector:
        self._previous = _installed
        set_attrib(self.collector)
        return self.collector

    def __exit__(self, *exc: object) -> None:
        set_attrib(self._previous)
