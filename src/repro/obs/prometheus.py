"""Prometheus / OpenMetrics text exposition for a metrics registry.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` snapshot in the
`text exposition format <https://prometheus.io/docs/instrumenting/exposition_formats/>`_
scrapeable by Prometheus (and readable by anything that speaks
OpenMetrics).  Mapping:

- counters      -> ``<name>_total``
- gauges        -> ``<name>``
- histograms / windowed histograms -> summary-style ``{quantile="..."}``
  series plus ``_count`` and ``_sum`` (exact, since the registry keeps
  sorted observations rather than fixed buckets)
- hardware counters -> a gauge plus a ``<name>_wrapped`` gauge carrying
  the section IV-F wraparound flag
- SLO monitors  -> ``_attainment`` / ``_burn_rate`` / ``_budget_remaining``

Metric names are sanitised to the Prometheus grammar (dots become
underscores); label sets pass through verbatim.
"""

from __future__ import annotations

import math
import re
from typing import Any, Mapping

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID = re.compile(r"[^a-zA-Z0-9_:]")

_TYPE_MAP = {
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "summary",
    "windowed_histogram": "summary",
    "hardware": "gauge",
    "rate": "gauge",
    "ewma": "gauge",
    "slo": "gauge",
}

_QUANTILES = ((0.5, "p50"), (0.9, "p90"), (0.99, "p99"))


def sanitize_name(name: str) -> str:
    """A legal Prometheus metric name for a dotted repro metric name."""
    name = _INVALID.sub("_", name)
    if not _NAME_OK.match(name):
        name = "_" + name
    return name


def _labels_suffix(labels: Mapping[str, Any] | None,
                   extra: Mapping[str, Any] | None = None) -> str:
    merged: dict[str, Any] = dict(labels or {})
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{sanitize_name(str(key))}="{_escape(merged[key])}"'
        for key in sorted(merged)
    )
    return "{" + inner + "}"


def _escape(value: Any) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: Any) -> str:
    try:
        number = float(value)
    except (TypeError, ValueError):
        return "0"
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def prometheus_text(registry: Any) -> str:
    """The full exposition document for one registry snapshot."""
    lines: list[str] = []
    emitted_headers: set[str] = set()
    for _key, snap in sorted(registry.snapshot().items()):
        kind = str(snap.get("kind", "gauge"))
        metric = registry.get(_key)
        base = sanitize_name(str(getattr(metric, "name", _key)))
        labels = snap.get("labels")
        if kind == "counter":
            name = base + "_total"
            _header(lines, emitted_headers, name, "counter", snap)
            lines.append(f"{name}{_labels_suffix(labels)} {_fmt(snap.get('value'))}")
        elif kind in ("histogram", "windowed_histogram"):
            _header(lines, emitted_headers, base, "summary", snap)
            for quantile, pkey in _QUANTILES:
                suffix = _labels_suffix(labels, {"quantile": quantile})
                lines.append(f"{base}{suffix} {_fmt(snap.get(pkey))}")
            lines.append(f"{base}_count{_labels_suffix(labels)} {_fmt(snap.get('count'))}")
            lines.append(f"{base}_sum{_labels_suffix(labels)} {_fmt(snap.get('sum'))}")
        elif kind == "hardware":
            _header(lines, emitted_headers, base, "gauge", snap)
            lines.append(f"{base}{_labels_suffix(labels)} {_fmt(snap.get('value'))}")
            wrapped = base + "_wrapped"
            _header(lines, emitted_headers, wrapped, "gauge",
                    {"description": "wraparound flag (section IV-F)"})
            lines.append(
                f"{wrapped}{_labels_suffix(labels)} "
                f"{1 if snap.get('wrapped') else 0}"
            )
        elif kind == "slo":
            for field in ("attainment", "burn_rate", "budget_remaining"):
                name = f"{base}_{field}"
                _header(lines, emitted_headers, name, "gauge", snap)
                lines.append(f"{name}{_labels_suffix(labels)} {_fmt(snap.get(field))}")
            count = base + "_queries_total"
            _header(lines, emitted_headers, count, "counter", snap)
            lines.append(f"{count}{_labels_suffix(labels)} {_fmt(snap.get('count'))}")
        else:  # gauge, rate, ewma and anything snapshot-compatible
            _header(lines, emitted_headers, base, "gauge", snap)
            lines.append(f"{base}{_labels_suffix(labels)} {_fmt(snap.get('value'))}")
    return "\n".join(lines) + ("\n" if lines else "")


def _header(lines: list[str], emitted: set[str], name: str,
            prom_type: str, snap: Mapping[str, Any]) -> None:
    if name in emitted:
        return
    emitted.add(name)
    description = str(snap.get("description") or "").strip()
    if description:
        lines.append(f"# HELP {name} {_escape(description)}")
    lines.append(f"# TYPE {name} {prom_type}")


def write_prometheus(path: str, registry: Any) -> None:
    """Write the exposition document (a node_exporter-style textfile)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(registry))
