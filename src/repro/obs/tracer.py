"""Cross-layer span tracing.

The paper's debugging story (section IV-F, Fig. 10) lives inside Ncore:
an event log, performance counters and n-step breakpoints.  The tracer
generalises that to the whole system the paper evaluates — delegate
partitioning, driver/DMA traffic, Ncore execution, the x86 fallback and
the MLPerf harness — as one stream of named, nested spans that can be
rendered as a Fig. 10-style text trace or exported to Perfetto.

Two time domains coexist:

- *wall* spans come from Python-level instrumentation (``Tracer.span``
  context managers) and are stamped with ``time.perf_counter``;
- *sim* spans come from simulator event streams (the Ncore event log,
  DMA engines, NKL cycle schedules) and are stamped in model cycles or
  model seconds, converted through the tracer's ``clock_hz``.

The exporter keeps the two domains in separate trace processes so the
timelines never falsely interleave.

Instrumentation must honor the paper's "no performance penalty" claim
(section IV-F): when no tracer is installed, :func:`get_tracer` returns
the module-level :data:`NULL_TRACER`, whose ``enabled`` flag lets hot
call sites skip all bookkeeping.  ``benchmarks/bench_obs_overhead.py``
guards this.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.context import TraceContext

#: Time domain of spans recorded from Python instrumentation.
WALL = "wall"
#: Time domain of spans fed from simulator event streams / cycle models.
SIM = "sim"


@dataclass
class SpanRecord:
    """One completed span on the tracer's timeline."""

    name: str
    track: str
    start_us: float
    duration_us: float
    domain: str = WALL
    category: str = ""
    args: dict[str, Any] = field(default_factory=dict)
    # Distributed-tracing correlation (empty when the span is not part of
    # a per-query trace tree; see repro.obs.context).
    trace_id: str = ""
    span_id: str = ""
    parent_id: str = ""

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


@dataclass
class InstantRecord:
    """A zero-duration marker (exported as a Chrome instant event)."""

    name: str
    track: str
    ts_us: float
    domain: str = WALL
    args: dict[str, Any] = field(default_factory=dict)


@dataclass
class CounterSample:
    """A timestamped counter sample (exported as a Chrome 'C' event)."""

    name: str
    ts_us: float
    value: float
    domain: str = SIM


class _SpanHandle:
    """Mutable handle yielded by :meth:`Tracer.span` for adding attributes."""

    __slots__ = ("args",)

    def __init__(self) -> None:
        self.args: dict[str, Any] = {}

    def set(self, **kwargs: Any) -> None:
        self.args.update(kwargs)


class _NullHandle:
    """The do-nothing handle yielded inside a :class:`NullTracer` span."""

    __slots__ = ()

    def set(self, **kwargs: Any) -> None:
        pass


_NULL_HANDLE = _NullHandle()


class NullTracer:
    """The no-op default: every recording method is a cheap pass.

    ``enabled`` is False so instrumented call sites can skip building
    attribute dictionaries entirely — the zero-cost contract.
    """

    enabled = False

    @contextmanager
    def span(self, name: str, track: str = "app",
             context: TraceContext | None = None, **args: Any) -> Iterator[_NullHandle]:
        yield _NULL_HANDLE

    def add_span(self, name: str, track: str, *, start_us: float, duration_us: float,
                 domain: str = SIM, args: dict | None = None, category: str = "",
                 context: TraceContext | None = None) -> None:
        pass

    def add_cycle_span(self, name: str, track: str, start_cycle: int, end_cycle: int,
                       args: dict | None = None, category: str = "",
                       context: TraceContext | None = None) -> None:
        pass

    def instant(self, name: str, track: str = "app", **args: Any) -> None:
        pass

    def counter(self, name: str, value: float, *, ts_us: float | None = None) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer:
    """Collects spans, instants and counter samples from every layer.

    Thread-safe: spans may be recorded concurrently (the MLPerf harness
    and future batching/sharding work run queries from worker threads).
    """

    enabled = True

    def __init__(self, clock_hz: float = 2.5e9) -> None:
        self.clock_hz = float(clock_hz)
        self.spans: list[SpanRecord] = []
        self.instants: list[InstantRecord] = []
        self.counter_samples: list[CounterSample] = []
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()

    # ------------------------------------------------------------------
    # Wall-clock instrumentation (Python layers)
    # ------------------------------------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter() - self._epoch) * 1e6

    @contextmanager
    def span(self, name: str, track: str = "app",
             context: TraceContext | None = None, **args: Any) -> Iterator[_SpanHandle]:
        """Bracket a wall-clock region; the handle adds late attributes."""
        handle = _SpanHandle()
        if args:
            handle.args.update(args)
        start = self._now_us()
        try:
            yield handle
        finally:
            duration = self._now_us() - start
            record = SpanRecord(
                name=name, track=track, start_us=start, duration_us=duration,
                domain=WALL, args=handle.args,
            )
            if context is not None:
                record.trace_id = context.trace_id
                record.span_id = context.span_id
                record.parent_id = context.parent_id
            with self._lock:
                self.spans.append(record)

    def instant(self, name: str, track: str = "app", **args: Any) -> None:
        record = InstantRecord(name=name, track=track, ts_us=self._now_us(), args=args)
        with self._lock:
            self.instants.append(record)

    # ------------------------------------------------------------------
    # Simulated-time instrumentation (event streams, cycle schedules)
    # ------------------------------------------------------------------

    def add_span(self, name: str, track: str, *, start_us: float, duration_us: float,
                 domain: str = SIM, args: dict | None = None, category: str = "",
                 context: TraceContext | None = None) -> None:
        """Record a completed span with explicit timestamps."""
        record = SpanRecord(
            name=name, track=track, start_us=start_us, duration_us=duration_us,
            domain=domain, category=category, args=dict(args or {}),
        )
        if context is not None:
            record.trace_id = context.trace_id
            record.span_id = context.span_id
            record.parent_id = context.parent_id
        with self._lock:
            self.spans.append(record)

    def add_cycle_span(self, name: str, track: str, start_cycle: int, end_cycle: int,
                       args: dict | None = None, category: str = "",
                       context: TraceContext | None = None) -> None:
        """Record a simulator span stamped in model cycles."""
        scale = 1e6 / self.clock_hz
        merged = {"start_cycle": int(start_cycle), "end_cycle": int(end_cycle)}
        if args:
            merged.update(args)
        self.add_span(
            name, track,
            start_us=start_cycle * scale,
            duration_us=max(0, end_cycle - start_cycle) * scale,
            domain=SIM, args=merged, category=category, context=context,
        )

    def counter(self, name: str, value: float, *, ts_us: float | None = None) -> None:
        """Record one counter sample on the simulated timeline."""
        sample = CounterSample(
            name=name, ts_us=self._now_us() if ts_us is None else ts_us,
            value=float(value), domain=SIM if ts_us is not None else WALL,
        )
        with self._lock:
            self.counter_samples.append(sample)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def tracks(self) -> list[str]:
        """Track names in order of first appearance."""
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.track, None)
        for instant in self.instants:
            seen.setdefault(instant.track, None)
        return list(seen)

    def spans_on(self, track: str) -> list[SpanRecord]:
        return [s for s in self.spans if s.track == track]

    def spans_for_trace(self, trace_id: str) -> list[SpanRecord]:
        """One query's span tree, in start order (distributed tracing)."""
        spans = [s for s in self.spans if s.trace_id == trace_id]
        return sorted(spans, key=lambda s: (s.start_us, s.end_us))

    def trace_ids(self) -> list[str]:
        """Distinct trace ids in order of first appearance."""
        seen: dict[str, None] = {}
        for span in self.spans:
            if span.trace_id:
                seen.setdefault(span.trace_id, None)
        return list(seen)


# ----------------------------------------------------------------------
# The installed tracer (module-level, like a logging root)
# ----------------------------------------------------------------------

_installed: NullTracer | Tracer = NULL_TRACER


def get_tracer() -> NullTracer | Tracer:
    """The installed tracer, or the zero-cost :data:`NULL_TRACER`."""
    return _installed


def set_tracer(tracer: Tracer | NullTracer | None) -> None:
    """Install (or, with None, uninstall) the process-wide tracer."""
    global _installed
    _installed = tracer if tracer is not None else NULL_TRACER


@contextmanager
def install_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install a tracer for the duration of a ``with`` block."""
    previous = _installed
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
