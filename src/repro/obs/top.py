"""A ``top``-style live view of a serving run.

The serving scenario samples one telemetry *frame* per interval of
simulated time (see ``ServerScenario._sample_frame``): completed/offered
queries, rolling p50/p90/p99, completion QPS, queue depth, batch
occupancy, the replay-cache hit rate and per-socket utilization.  This
module renders those frames as a terminal dashboard:

- **live**: ``repro top <model>`` runs a seeded server scenario and
  plays its frames back in order (simulated time, so the whole run is
  available instantly — playback is a scrub through the run, not a wall
  clock wait);
- **replay**: ``repro top --replay frames.jsonl`` renders frames written
  by ``repro serve --telemetry frames.jsonl``, so a run harvested on one
  machine can be inspected on another.

With ANSI enabled each frame redraws in place (cursor-up escapes); with
``--no-ansi`` frames append, which keeps the output pipeable and makes
the CI smoke test trivial.
"""

from __future__ import annotations

import json
from typing import IO, Any, Iterable, Mapping

#: Width of the per-socket utilization bars.
BAR_WIDTH = 10


def utilization_bar(fraction: float, width: int = BAR_WIDTH) -> str:
    """A ``####....`` bar for one utilization fraction in [0, 1]."""
    fraction = min(1.0, max(0.0, fraction))
    filled = round(fraction * width)
    return "#" * filled + "." * (width - filled)


def format_frame(frame: Mapping[str, Any], max_batch: int | None = None) -> list[str]:
    """One frame as dashboard lines (no trailing newlines)."""
    model = frame.get("model", "?")
    completed = int(frame.get("completed", 0))
    queries = int(frame.get("queries", 0))
    lines = [
        f"repro top - {model}   t={float(frame.get('ts', 0.0)):.3f}s",
        f"queries   {completed}/{queries} completed   "
        f"qps {float(frame.get('qps', 0.0)):8.1f}",
        "latency   "
        f"p50 {float(frame.get('p50_ms', 0.0)):7.3f} ms   "
        f"p90 {float(frame.get('p90_ms', 0.0)):7.3f} ms   "
        f"p99 {float(frame.get('p99_ms', 0.0)):7.3f} ms",
    ]
    occupancy = float(frame.get("batch_occupancy", 0.0))
    occupancy_text = f"{occupancy:.2f}"
    if max_batch:
        occupancy_text += f"/{max_batch}"
    lines.append(
        f"queue     depth {int(frame.get('queue_depth', 0)):4d}   "
        f"batch occupancy {occupancy_text}"
    )
    if "replay_hit_rate" in frame:
        lines.append(
            f"replay    hit rate {float(frame['replay_hit_rate']) * 100:5.1f}%"
        )
    if "slo_attainment" in frame:
        lines.append(
            f"slo       attainment {float(frame['slo_attainment']) * 100:6.2f}%   "
            f"burn {float(frame.get('slo_burn_rate', 0.0)):5.2f}x"
        )
    utilization = frame.get("socket_util") or []
    if utilization:
        cells = "  ".join(
            f"[{index}] {utilization_bar(float(value))} {float(value) * 100:3.0f}%"
            for index, value in enumerate(utilization)
        )
        lines.append(f"sockets   {cells}")
    return lines


def render_frames(
    frames: Iterable[Mapping[str, Any]],
    stream: IO[str],
    ansi: bool = True,
    max_batch: int | None = None,
) -> int:
    """Play frames to ``stream``; returns the number rendered.

    ANSI mode repaints in place (each frame after the first is preceded
    by enough cursor-up-and-clear escapes to overwrite the previous one);
    otherwise frames are appended, separated by a blank line.
    """
    rendered = 0
    previous_height = 0
    for frame in frames:
        lines = format_frame(frame, max_batch=max_batch)
        if ansi and previous_height:
            stream.write(f"\x1b[{previous_height}A")
            for line in lines:
                stream.write("\x1b[2K" + line + "\n")
        else:
            if rendered and not ansi:
                stream.write("\n")
            for line in lines:
                stream.write(line + "\n")
        previous_height = len(lines)
        rendered += 1
    return rendered


# ----------------------------------------------------------------------
# Frame files (the ``repro serve --telemetry`` <-> ``repro top --replay``
# interchange format: one JSON frame per line)
# ----------------------------------------------------------------------


def write_frames(path: str, frames: Iterable[Mapping[str, Any]]) -> int:
    """Write frames as JSONL; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for frame in frames:
            handle.write(json.dumps(dict(frame), sort_keys=True) + "\n")
            count += 1
    return count


def read_frames(path: str) -> list[dict[str, Any]]:
    """Read a JSONL frame file (blank lines ignored)."""
    frames: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                frames.append(json.loads(line))
    return frames
