"""Full-stack observability: tracing, metrics and exporters (``repro.obs``).

Generalises the paper's Ncore-internal debug features (section IV-F event
log, performance counters; the Fig. 10 runtime trace) to every layer the
paper evaluates: delegate partitioning, driver and DMA traffic, Ncore
execution, the x86 fallback and the MLPerf harness.

Usage::

    from repro import obs

    with obs.observe() as (tracer, metrics):
        ...  # run anything: sessions, machines, MLPerf scenarios
    obs.write_chrome_trace("run.trace.json", tracer, metrics)
    print(obs.render_tracer(tracer))          # Fig. 10-style text
    print(obs.metrics_csv(metrics))           # flat counter dump
    print(obs.prometheus_text(metrics))       # OpenMetrics exposition

Serving-grade additions:

- per-query **trace contexts** (:mod:`repro.obs.context`) thread one
  causal tree per query through every stage span;
- **windowed metrics and SLO monitoring** (:mod:`repro.obs.window`):
  rolling percentiles, rates, EWMAs and error-budget burn rates;
- **cycle attribution** (:mod:`repro.obs.attrib`): retired cycles and
  DMA bytes mapped back to GIR segment -> op -> execution tier, with a
  JSONL feature harvest and flamegraph-ready collapsed stacks;
- the ``repro top`` dashboard (:mod:`repro.obs.top`) over telemetry
  frames sampled by the serving scenario.

When nothing is installed, every instrumentation point short-circuits on
the no-op defaults — preserving the paper's "no performance penalty"
claim (guarded by ``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.attrib import (
    NULL_ATTRIB,
    AttributionCollector,
    NullAttribution,
    get_attrib,
    install_attrib,
    segment_features,
    set_attrib,
)
from repro.obs.context import TraceContext, mint_trace
from repro.obs.export import (
    chrome_trace,
    metrics_csv,
    metrics_json,
    write_chrome_trace,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    HardwareCounter,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    get_metrics,
    install_metrics,
    labelled_name,
    set_metrics,
)
from repro.obs.prometheus import prometheus_text, write_prometheus
from repro.obs.render import render_bars, render_counters, render_tracer
from repro.obs.tracer import (
    NULL_TRACER,
    CounterSample,
    InstantRecord,
    NullTracer,
    SpanRecord,
    Tracer,
    get_tracer,
    install_tracer,
    set_tracer,
)
from repro.obs.window import (
    Ewma,
    RateMeter,
    SloMonitor,
    WindowedHistogram,
)


@contextmanager
def observe(
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    clock_hz: float = 2.5e9,
) -> Iterator[tuple[Tracer, MetricsRegistry]]:
    """Install a tracer and a metrics registry for a ``with`` block."""
    tracer = tracer if tracer is not None else Tracer(clock_hz=clock_hz)
    metrics = metrics if metrics is not None else MetricsRegistry()
    with install_tracer(tracer), install_metrics(metrics):
        yield tracer, metrics


__all__ = [
    "NULL_ATTRIB",
    "NULL_METRICS",
    "NULL_TRACER",
    "AttributionCollector",
    "Counter",
    "CounterSample",
    "Ewma",
    "Gauge",
    "HardwareCounter",
    "Histogram",
    "InstantRecord",
    "MetricsRegistry",
    "NullAttribution",
    "NullMetrics",
    "NullTracer",
    "RateMeter",
    "SloMonitor",
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "WindowedHistogram",
    "chrome_trace",
    "get_attrib",
    "get_metrics",
    "get_tracer",
    "install_attrib",
    "install_metrics",
    "install_tracer",
    "labelled_name",
    "metrics_csv",
    "metrics_json",
    "mint_trace",
    "observe",
    "prometheus_text",
    "render_bars",
    "render_counters",
    "render_tracer",
    "segment_features",
    "set_attrib",
    "set_metrics",
    "set_tracer",
    "write_chrome_trace",
    "write_prometheus",
]
