"""Determinism and equivalence oracles built on architectural state digests.

Two cheap whole-machine checks that complement the shadow-SRAM sanitizer:

- :func:`check_determinism` runs one program on N freshly-built machines
  and compares their final state digests — any divergence means hidden
  nondeterminism (``san.divergence``),
- :func:`oracle_compare` runs the same program through the pure
  interpreter and through the Tier-1 fast path and compares digests plus
  the cycle/issue/MAC counters (``san.oracle-mismatch``) — the
  verification oracle the Tier-3 AOT codegen will be validated against.

Both return :class:`~repro.analyze.diagnostics.AnalysisReport` so the
findings compose with the static and shadow-memory reports.
"""

from __future__ import annotations

import hashlib
from typing import Callable

from repro.analyze.diagnostics import AnalysisReport, diag
from repro.ncore.config import NcoreConfig
from repro.ncore.machine import Ncore

from repro.sanitize.sanitizer import DIVERGENCE, ORACLE_MISMATCH

SetupFn = Callable[[Ncore], None]


def state_digest(machine: Ncore) -> str:
    """SHA-256 over every architectural state element of the machine.

    Covers both scratchpads, all register files, the accumulators, the
    output and predicate registers, and the sequencer/statistics state —
    two runs that differ anywhere observable differ in this digest.
    """
    h = hashlib.sha256()
    h.update(machine.data_ram.data.tobytes())
    h.update(machine.weight_ram.data.tobytes())
    h.update(bytes(str(machine.addr_regs), "ascii"))
    h.update(machine.ndu_regs.tobytes())
    h.update(machine.dlast.tobytes())
    h.update(machine.acc_int.tobytes())
    h.update(machine.acc_float.tobytes())
    h.update(machine.out_low.tobytes())
    h.update(machine.out_high.tobytes())
    h.update(machine.pred_regs.tobytes())
    scalars = (
        machine.pc,
        machine.halted,
        machine.total_cycles,
        machine.total_instructions,
        machine.total_issues,
        machine.total_macs,
        machine.dma_stall_cycles,
    )
    h.update(bytes(str(scalars), "ascii"))
    return h.hexdigest()


def _run_once(
    program_source: str,
    *,
    config: NcoreConfig | None,
    setup: SetupFn | None,
    fastpath: bool,
    name: str,
) -> Ncore:
    from repro.isa.assembler import assemble

    machine = Ncore(config=config, fastpath=fastpath)
    if setup is not None:
        setup(machine)
    machine.execute_program(assemble(program_source))
    return machine


def check_determinism(
    program_source: str,
    *,
    config: NcoreConfig | None = None,
    setup: SetupFn | None = None,
    runs: int = 2,
    name: str = "ncore",
) -> AnalysisReport:
    """Run ``program_source`` on ``runs`` fresh machines; digests must agree.

    ``setup`` stages each machine (RAM contents, descriptors, config
    registers) and must itself be deterministic — a stateful setup closure
    is exactly the nondeterminism this check exists to expose.
    """
    report = AnalysisReport()
    digests = [
        state_digest(_run_once(
            program_source, config=config, setup=setup, fastpath=False,
            name=name,
        ))
        for _ in range(max(2, runs))
    ]
    if len(set(digests)) > 1:
        report.extend([diag(
            DIVERGENCE,
            f"{len(digests)} runs of the same program from the same initial "
            f"state produced {len(set(digests))} distinct state digests "
            f"({', '.join(d[:12] for d in digests)})",
            artifact=name, element="determinism",
            hint="look for state leaking between runs via the setup hook",
        )])
    return report


def oracle_compare(
    program_source: str,
    *,
    config: NcoreConfig | None = None,
    setup: SetupFn | None = None,
    name: str = "ncore",
) -> AnalysisReport:
    """Interpreter-vs-fastpath equivalence for one program.

    The fast path's contract is bit-identical architectural state *and*
    cycle-exact statistics; both are compared here.
    """
    report = AnalysisReport()
    interpreted = _run_once(
        program_source, config=config, setup=setup, fastpath=False, name=name,
    )
    fused = _run_once(
        program_source, config=config, setup=setup, fastpath=True, name=name,
    )
    digest_i = state_digest(interpreted)
    digest_f = state_digest(fused)
    if digest_i != digest_f:
        details = []
        for field in ("total_cycles", "total_issues", "total_macs", "pc"):
            a, b = getattr(interpreted, field), getattr(fused, field)
            if a != b:
                details.append(f"{field}: {a} vs {b}")
        report.extend([diag(
            ORACLE_MISMATCH,
            "fastpath execution diverges from the interpreter "
            f"(digest {digest_i[:12]} vs {digest_f[:12]}"
            + (f"; {', '.join(details)}" if details else "")
            + ")",
            artifact=name, element="fastpath",
            hint="run the differential fuzz suite to minimize the trigger",
        )])
    return report
