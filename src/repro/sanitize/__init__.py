"""``repro.sanitize``: runtime verification for the Ncore machine model.

The dynamic counterpart of :mod:`repro.analyze` — a shadow-SRAM sanitizer
(:class:`Sanitizer`, armed via ``Ncore(sanitize=True)``), a determinism
checker and a fastpath-vs-interpreter equivalence oracle, all reporting
through the shared Diagnostic model.  See ``docs/sanitizer.md``.
"""

from repro.sanitize.oracle import (
    SetupFn,
    check_determinism,
    oracle_compare,
    state_digest,
)
from repro.sanitize.sanitizer import (
    AGENT_COMPUTE,
    AGENT_DMA_READ,
    AGENT_DMA_WRITE,
    AGENT_HOST,
    AGENT_NONE,
    Sanitizer,
    ShadowRam,
)

__all__ = [
    "AGENT_COMPUTE",
    "AGENT_DMA_READ",
    "AGENT_DMA_WRITE",
    "AGENT_HOST",
    "AGENT_NONE",
    "Sanitizer",
    "SetupFn",
    "ShadowRam",
    "check_determinism",
    "oracle_compare",
    "state_digest",
]
