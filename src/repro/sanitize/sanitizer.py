"""Shadow-SRAM sanitizer ("nsan") for the Ncore machine model.

The static hazard analyzer (:mod:`repro.analyze.hazard`) proves ordering
over statically-known address intervals; this module is its runtime
counterpart.  Armed via ``Ncore(sanitize=True)`` (or
:meth:`~repro.ncore.machine.Ncore.arm_sanitizer`), it shadows every byte
of both scratchpads with init / last-writer / last-reader state, and the
machine + DMA engines call back on every row read, row write, host write
and transfer so the sanitizer can catch what the functional simulation
papers over:

- **uninitialized reads** — compute or outbound DMA consuming bytes no
  host write and no DMA ever staged (``san.uninit-read``),
- **concurrent-access races** — compute touching rows a DMA transfer is
  still moving, or two engines moving overlapping ranges with no
  DMA_WAIT between them; the eager functional copy makes these
  deterministic in simulation but timing-dependent on silicon
  (``san.race``),
- **out-of-bounds DMA** — a descriptor whose row window leaves the RAM
  (``san.dma-oob``).

Findings are shared-model :class:`~repro.analyze.diagnostics.Diagnostic`
objects so static and runtime reports render and compose identically.
When no sanitizer is armed every hook site in the machine reduces to one
``is not None`` check (the same zero-cost discipline as ``repro.obs``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np
import numpy.typing as npt

from repro.analyze.diagnostics import (
    AnalysisReport,
    Rule,
    Severity,
    diag,
    register_rule,
)
from repro.ncore.config import NcoreConfig

if TYPE_CHECKING:
    from repro.isa.instruction import DMAOp

Bytes = npt.NDArray[np.uint8]
Bools = npt.NDArray[np.bool_]

UNINIT_READ = register_rule(
    "san.uninit-read", Severity.ERROR, "read of uninitialized scratchpad",
    "Compute or an outbound DMA consumed SRAM bytes that no host write and "
    "no DMA transfer ever initialized — the simulator returns zeros, "
    "silicon returns whatever the last workload left behind.",
)
RACE = register_rule(
    "san.race", Severity.ERROR, "access races an in-flight DMA transfer",
    "A compute read/write or a second DMA touched SRAM rows while a "
    "transfer covering them was still in flight (no DMA_WAIT in between); "
    "the observed bytes depend on transfer timing.",
)
DMA_OOB = register_rule(
    "san.dma-oob", Severity.ERROR, "DMA descriptor leaves the scratchpad",
    "A transfer's row window extends past the end of the target RAM; the "
    "hardware would fault or wrap mid-transfer.",
)
DIVERGENCE = register_rule(
    "san.divergence", Severity.ERROR, "repeated runs diverge",
    "Two executions of the same program from the same initial state ended "
    "with different architectural state digests — hidden nondeterminism in "
    "the machine model or the program.",
)
ORACLE_MISMATCH = register_rule(
    "san.oracle-mismatch", Severity.ERROR, "fastpath disagrees with interpreter",
    "The fused fast-path execution and the pure interpreter produced "
    "different architectural state or cycle counts for the same program — "
    "a fastpath equivalence bug.",
)

# Shadow last-writer / last-reader agent codes.
AGENT_NONE = 0
AGENT_HOST = 1
AGENT_COMPUTE = 2
AGENT_DMA_READ = 3
AGENT_DMA_WRITE = 4

AGENT_NAMES = {
    AGENT_NONE: "nothing",
    AGENT_HOST: "host",
    AGENT_COMPUTE: "compute",
    AGENT_DMA_READ: "dma_read",
    AGENT_DMA_WRITE: "dma_write",
}

_ENGINE_AGENTS = {"dma_read": AGENT_DMA_READ, "dma_write": AGENT_DMA_WRITE}


class ShadowRam:
    """Per-byte shadow state for one scratchpad."""

    def __init__(self, rows: int, row_bytes: int, name: str) -> None:
        self.rows = rows
        self.row_bytes = row_bytes
        self.name = name
        self.init: Bools = np.zeros((rows, row_bytes), dtype=bool)
        self.last_writer: Bytes = np.zeros((rows, row_bytes), dtype=np.uint8)
        self.last_reader: Bytes = np.zeros((rows, row_bytes), dtype=np.uint8)

    def mark_write(self, start_byte: int, end_byte: int, agent: int) -> None:
        flat_init = self.init.reshape(-1)
        flat_init[start_byte:end_byte] = True
        self.last_writer.reshape(-1)[start_byte:end_byte] = agent

    def mark_read(self, start_byte: int, end_byte: int, agent: int) -> None:
        self.last_reader.reshape(-1)[start_byte:end_byte] = agent

    def initialized(self, start_byte: int, end_byte: int) -> bool:
        return bool(self.init.reshape(-1)[start_byte:end_byte].all())


@dataclass
class _Flight:
    """One DMA transfer the sanitizer still considers in flight."""

    engine: str
    ram: str                 # "data" | "weight"
    start_byte: int
    end_byte: int
    start_cycle: int
    end_cycle: int
    writes_sram: bool
    pc: int


class Sanitizer:
    """Shadow-memory state plus the report the hooks accumulate into."""

    def __init__(self, config: NcoreConfig | None = None, name: str = "ncore") -> None:
        config = config or NcoreConfig()
        self.name = name
        self.config = config
        self.shadow = {
            "data": ShadowRam(config.sram_rows, config.row_bytes, "data"),
            "weight": ShadowRam(config.sram_rows, config.row_bytes, "weight"),
        }
        self.report = AnalysisReport()
        self.flights: list[_Flight] = []
        self.stats: dict[str, int] = {
            "reads_checked": 0,
            "writes_checked": 0,
            "dma_transfers": 0,
            "findings": 0,
        }
        self._seen: set[tuple[str, str, int]] = set()
        self._pc = 0
        self._published = 0

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def ok(self) -> bool:
        return self.report.ok

    def _report(
        self, rule: Rule, message: str, *, element: str, pc: int, hint: str = ""
    ) -> None:
        # One finding per (rule, site, element): a 512-trip loop racing a
        # transfer is one bug, not 512.
        key = (rule.id, element, pc)
        if key in self._seen:
            return
        self._seen.add(key)
        self.stats["findings"] += 1
        self.report.extend([diag(
            rule, message, artifact=self.name, element=element, index=pc,
            hint=hint,
        )])

    def note_pc(self, pc: int) -> None:
        """The machine's current pc, stamped onto engine-side findings."""
        self._pc = pc

    # ------------------------------------------------------------------
    # Machine-side hooks (compute and host accesses)
    # ------------------------------------------------------------------

    def _prune(self, cycle: int) -> None:
        # A transfer whose completion cycle has passed is no longer racy
        # even without an explicit DMA_WAIT.
        if self.flights:
            self.flights = [f for f in self.flights if f.end_cycle > cycle]

    def on_row_read(
        self, ram: str, row: int, count: int, cycle: int, pc: int
    ) -> None:
        shadow = self.shadow[ram]
        if not (0 <= row and row + count <= shadow.rows):
            return  # the RAM model raises its own IndexError
        self.stats["reads_checked"] += 1
        self._prune(cycle)
        start = row * shadow.row_bytes
        end = (row + count) * shadow.row_bytes
        if not shadow.initialized(start, end):
            self._report(
                UNINIT_READ,
                f"compute at pc {pc} reads {ram} RAM row"
                f"{'s' if count > 1 else ''} "
                f"[{row}, {row + count}) never written by the host or a DMA",
                element=f"{ram}[{row}]", pc=pc,
                hint="stage the rows via write_*_ram or a DMA before reading",
            )
        for flight in self.flights:
            if flight.ram == ram and flight.writes_sram and (
                start < flight.end_byte and flight.start_byte < end
            ):
                self._report(
                    RACE,
                    f"compute at pc {pc} reads {ram} RAM rows [{row}, "
                    f"{row + count}) while the {flight.engine} transfer "
                    f"started at pc {flight.pc} (cycles "
                    f"[{flight.start_cycle}, {flight.end_cycle})) is still "
                    "writing them",
                    element=f"{ram}[{row}]", pc=pc,
                    hint="insert a dmawait before the first read",
                )
        shadow.mark_read(start, end, AGENT_COMPUTE)

    def on_row_write(
        self, ram: str, row: int, count: int, cycle: int, pc: int
    ) -> None:
        shadow = self.shadow[ram]
        if not (0 <= row and row + count <= shadow.rows):
            return
        self.stats["writes_checked"] += 1
        self._prune(cycle)
        start = row * shadow.row_bytes
        end = (row + count) * shadow.row_bytes
        for flight in self.flights:
            if flight.ram == ram and (
                start < flight.end_byte and flight.start_byte < end
            ):
                direction = "writing" if flight.writes_sram else "reading"
                self._report(
                    RACE,
                    f"compute at pc {pc} writes {ram} RAM rows [{row}, "
                    f"{row + count}) while the {flight.engine} transfer "
                    f"started at pc {flight.pc} is still {direction} them",
                    element=f"{ram}[{row}]", pc=pc,
                    hint="insert a dmawait before overwriting the buffer",
                )
        shadow.mark_write(start, end, AGENT_COMPUTE)

    def on_host_write(self, ram: str, offset: int, length: int) -> None:
        shadow = self.shadow[ram]
        end = min(offset + length, shadow.rows * shadow.row_bytes)
        if offset < 0 or end <= offset:
            return
        shadow.mark_write(offset, end, AGENT_HOST)

    # ------------------------------------------------------------------
    # Engine-side hooks
    # ------------------------------------------------------------------

    def on_dma_start(
        self,
        engine: str,
        ram: str,
        descriptor: "DMAOp",
        ram_rows: int,
        row_bytes: int,
        start_cycle: int,
        end_cycle: int,
    ) -> None:
        self.stats["dma_transfers"] += 1
        self._prune(start_cycle)
        pc = self._pc
        length = descriptor.rows * row_bytes
        start = descriptor.ram_row * row_bytes
        end = start + length
        if start < 0 or end > ram_rows * row_bytes:
            self._report(
                DMA_OOB,
                f"{engine} transfer at pc {pc} spans {ram} RAM rows "
                f"[{descriptor.ram_row}, {descriptor.ram_row + descriptor.rows}) "
                f"but the RAM has {ram_rows} rows",
                element=f"{ram}[{descriptor.ram_row}]", pc=pc,
            )
            return  # the RAM model raises; nothing is in flight
        writes_sram = not descriptor.write_to_dram
        for flight in self.flights:
            if flight.ram != ram or flight.engine == engine:
                continue  # one engine serializes its own queue
            if not (start < flight.end_byte and flight.start_byte < end):
                continue
            if writes_sram or flight.writes_sram:
                self._report(
                    RACE,
                    f"{engine} transfer at pc {pc} touches {ram} RAM bytes "
                    f"[{start}, {end}) while the {flight.engine} transfer "
                    f"started at pc {flight.pc} is still in flight over "
                    f"[{flight.start_byte}, {flight.end_byte})",
                    element=f"{ram}[{descriptor.ram_row}]", pc=pc,
                    hint="order the engines with a dmawait 3",
                )
        shadow = self.shadow[ram]
        if writes_sram:
            shadow.mark_write(start, end, _ENGINE_AGENTS[engine])
        else:
            if not shadow.initialized(start, end):
                self._report(
                    UNINIT_READ,
                    f"{engine} transfer at pc {pc} copies {ram} RAM rows "
                    f"[{descriptor.ram_row}, "
                    f"{descriptor.ram_row + descriptor.rows}) to DRAM but "
                    "they were never fully written",
                    element=f"{ram}[{descriptor.ram_row}]", pc=pc,
                )
            shadow.mark_read(start, end, _ENGINE_AGENTS[engine])
        self.flights.append(_Flight(
            engine=engine, ram=ram, start_byte=start, end_byte=end,
            start_cycle=start_cycle, end_cycle=end_cycle,
            writes_sram=writes_sram, pc=pc,
        ))

    def on_dma_wait(self, engines: list[str], cycle: int) -> None:
        # The machine stalled to the engines' busy_until, so everything
        # those engines had in flight has now completed.
        if self.flights:
            self.flights = [f for f in self.flights if f.engine not in engines]
        self._prune(cycle)

    def on_reset(self) -> None:
        """Machine reset: in-flight timing dies, SRAM contents survive."""
        self.flights = []
        self._pc = 0

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def publish_metrics(self, metrics: Any, prefix: str = "ncore.sanitize") -> None:
        """Increment ``<prefix>.*`` counters by the deltas since last call."""
        total = (
            self.stats["reads_checked"]
            + self.stats["writes_checked"]
            + self.stats["dma_transfers"]
        )
        metrics.counter(f"{prefix}.accesses_checked").inc(
            max(0, total - self._published)
        )
        self._published = total
        findings = len(self.report.diagnostics)
        gauge = metrics.gauge(f"{prefix}.findings")
        gauge.set(findings)
