"""Model registry and the paper's Table V characteristics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.graph.gir import Graph
from repro.models.gnmt import build_gnmt
from repro.models.mobilenet import build_mobilenet_v1
from repro.models.resnet import build_resnet50_v15
from repro.models.ssd import build_ssd_mobilenet_v1


@dataclass(frozen=True)
class ModelInfo:
    """One evaluated benchmark model."""

    key: str
    display: str
    input_type: str           # "image" | "text"
    builder: Callable[..., Graph]
    paper_macs: float          # Table V
    paper_weights: float       # Table V
    paper_macs_per_weight: int

    def build(self, **kwargs) -> Graph:
        return self.builder(**kwargs)

    def sample_input(self, graph: Graph, seed: int = 0) -> dict[str, np.ndarray]:
        """A synthetic input batch matching the graph's inputs."""
        rng = np.random.default_rng(seed)
        # int32 inputs are token ids; keep them inside the smallest
        # embedding table so reduced-vocab bench builds stay in range.
        high = 1000
        for node in graph.find_nodes("embedding"):
            high = min(high, graph.tensor(node.inputs[0]).shape[0])
        feeds: dict[str, np.ndarray] = {}
        for name in graph.inputs:
            tensor = graph.tensor(name)
            feeds[name] = (
                rng.integers(0, high, size=tensor.shape).astype(np.int32)
                if tensor.type.dtype == "int32"
                else rng.uniform(-1, 1, size=tensor.shape).astype(np.float32)
            )
        return feeds


PAPER_CHARACTERISTICS: dict[str, ModelInfo] = {
    "mobilenet_v1": ModelInfo(
        key="mobilenet_v1",
        display="MobileNet-V1",
        input_type="image",
        builder=build_mobilenet_v1,
        paper_macs=0.57e9,
        paper_weights=4.2e6,
        paper_macs_per_weight=136,
    ),
    "resnet50_v15": ModelInfo(
        key="resnet50_v15",
        display="ResNet-50-V1.5",
        input_type="image",
        builder=build_resnet50_v15,
        paper_macs=4.1e9,
        paper_weights=26.0e6,
        paper_macs_per_weight=158,
    ),
    "ssd_mobilenet_v1": ModelInfo(
        key="ssd_mobilenet_v1",
        display="SSD-MobileNet-V1",
        input_type="image",
        builder=build_ssd_mobilenet_v1,
        paper_macs=1.2e9,
        paper_weights=6.8e6,
        paper_macs_per_weight=176,
    ),
    "gnmt": ModelInfo(
        key="gnmt",
        display="GNMT",
        input_type="text",
        builder=build_gnmt,
        paper_macs=3.9e9,
        paper_weights=131e6,
        paper_macs_per_weight=30,
    ),
}

MODEL_BUILDERS = {key: info.builder for key, info in PAPER_CHARACTERISTICS.items()}
