"""Shared graph-building helpers for the model zoo."""

from __future__ import annotations

import numpy as np

from repro.graph.gir import Graph, Node, Tensor, TensorType


def same_padding(size: int, k: int, stride: int) -> tuple[int, int]:
    """TensorFlow 'SAME' padding for one dimension."""
    out = -(-size // stride)
    total = max((out - 1) * stride + k - size, 0)
    return total // 2, total - total // 2


class GraphBuilder:
    """Conveniences for building CNN/RNN graphs with synthetic weights."""

    def __init__(self, name: str, seed: int = 0) -> None:
        self.g = Graph(name)
        self.rng = np.random.default_rng(seed)
        self._counter = 0
        self._shapes: dict[str, tuple[int, ...]] = {}

    # ------------------------------------------------------------------

    def _name(self, base: str) -> str:
        self._counter += 1
        return f"{base}_{self._counter}"

    def shape(self, tensor: str) -> tuple[int, ...]:
        return self._shapes[tensor]

    def _act(self, name: str, shape: tuple[int, ...]) -> str:
        self.g.add_tensor(Tensor(name, TensorType(shape)))
        self._shapes[name] = shape
        return name

    def input(self, name: str, shape: tuple[int, ...], dtype="float32") -> str:
        self.g.add_input(name, TensorType(shape, dtype))
        self._shapes[name] = shape
        return name

    def constant(self, base: str, data: np.ndarray) -> str:
        name = self._name(base)
        self.g.add_constant(name, data)
        self._shapes[name] = tuple(np.asarray(data).shape)
        return name

    def _weights(self, shape: tuple[int, ...], fan_in: int) -> np.ndarray:
        scale = np.sqrt(2.0 / max(1, fan_in))
        return (self.rng.normal(size=shape) * scale).astype(np.float32)

    # ------------------------------------------------------------------
    # Layers
    # ------------------------------------------------------------------

    def conv(
        self,
        x: str,
        out_channels: int,
        kernel: int | tuple[int, int],
        stride: int = 1,
        padding: str | tuple = "same",
        bias: bool = True,
        activation: str = "none",
        batch_norm: bool = False,
    ) -> str:
        kh, kw = (kernel, kernel) if isinstance(kernel, int) else kernel
        n, h, w, cin = self.shape(x)
        pad = self._resolve_padding(padding, h, w, kh, kw, stride)
        oh = (h + pad[0][0] + pad[0][1] - kh) // stride + 1
        ow = (w + pad[1][0] + pad[1][1] - kw) // stride + 1
        weights = self.constant("w", self._weights((kh, kw, cin, out_channels), kh * kw * cin))
        inputs = [x, weights]
        if bias and not batch_norm:
            inputs.append(self.constant("b", self._weights((out_channels,), out_channels)))
        out = self._act(self._name("conv"), (n, oh, ow, out_channels))
        attrs = {"stride": (stride, stride), "padding": pad}
        conv_act = "none" if batch_norm else activation
        if conv_act != "none":
            attrs["activation"] = conv_act
        self.g.add_node(Node(self._name("conv2d"), "conv2d", inputs, [out], attrs))
        if batch_norm:
            out = self.batch_norm(out, activation)
        return out

    def depthwise(
        self,
        x: str,
        kernel: int = 3,
        stride: int = 1,
        padding: str | tuple = "same",
        activation: str = "none",
        batch_norm: bool = True,
    ) -> str:
        n, h, w, c = self.shape(x)
        pad = self._resolve_padding(padding, h, w, kernel, kernel, stride)
        oh = (h + pad[0][0] + pad[0][1] - kernel) // stride + 1
        ow = (w + pad[1][0] + pad[1][1] - kernel) // stride + 1
        weights = self.constant("dw", self._weights((kernel, kernel, c), kernel * kernel))
        out = self._act(self._name("dwconv"), (n, oh, ow, c))
        attrs = {"stride": (stride, stride), "padding": pad}
        self.g.add_node(
            Node(self._name("depthwise"), "depthwise_conv2d", [x, weights], [out], attrs)
        )
        if batch_norm:
            out = self.batch_norm(out, activation)
        elif activation != "none":
            out = self.activation(out, activation)
        return out

    def batch_norm(self, x: str, activation: str = "none") -> str:
        shape = self.shape(x)
        c = shape[-1]
        mean = self.constant("bn_mean", (self.rng.normal(size=c) * 0.1).astype(np.float32))
        var = self.constant("bn_var", self.rng.uniform(0.5, 1.5, size=c).astype(np.float32))
        gamma = self.constant("bn_gamma", self.rng.uniform(0.8, 1.2, size=c).astype(np.float32))
        beta = self.constant("bn_beta", (self.rng.normal(size=c) * 0.1).astype(np.float32))
        out = self._act(self._name("bn"), shape)
        self.g.add_node(
            Node(self._name("batch_norm"), "batch_norm", [x, mean, var, gamma, beta], [out], {"epsilon": 1e-3})
        )
        if activation != "none":
            out = self.activation(out, activation)
        return out

    def activation(self, x: str, kind: str) -> str:
        out = self._act(self._name(kind), self.shape(x))
        self.g.add_node(Node(self._name(f"{kind}_op"), kind, [x], [out]))
        return out

    def add(self, a: str, b: str, activation: str = "none") -> str:
        out = self._act(self._name("add"), self.shape(a))
        attrs = {"activation": activation} if activation != "none" else {}
        self.g.add_node(Node(self._name("add_op"), "add", [a, b], [out], attrs))
        return out

    def max_pool(self, x: str, ksize: int, stride: int, padding="same") -> str:
        return self._pool(x, "max_pool", ksize, stride, padding)

    def avg_pool(self, x: str, ksize: int, stride: int, padding="valid") -> str:
        return self._pool(x, "avg_pool", ksize, stride, padding)

    def _pool(self, x: str, op: str, ksize: int, stride: int, padding) -> str:
        n, h, w, c = self.shape(x)
        pad = self._resolve_padding(padding, h, w, ksize, ksize, stride)
        oh = (h + pad[0][0] + pad[0][1] - ksize) // stride + 1
        ow = (w + pad[1][0] + pad[1][1] - ksize) // stride + 1
        out = self._act(self._name(op), (n, oh, ow, c))
        self.g.add_node(
            Node(
                self._name(f"{op}_op"),
                op,
                [x],
                [out],
                {"ksize": (ksize, ksize), "stride": (stride, stride), "padding": pad},
            )
        )
        return out

    def global_mean(self, x: str) -> str:
        n, h, w, c = self.shape(x)
        out = self._act(self._name("mean"), (n, c))
        self.g.add_node(Node(self._name("mean_op"), "mean", [x], [out], {"axis": (1, 2)}))
        return out

    def fully_connected(self, x: str, out_features: int, bias: bool = True, activation: str = "none") -> str:
        shape = self.shape(x)
        weights = self.constant("fw", self._weights((shape[-1], out_features), shape[-1]))
        inputs = [x, weights]
        if bias:
            inputs.append(self.constant("fb", np.zeros(out_features, np.float32)))
        out = self._act(self._name("fc"), shape[:-1] + (out_features,))
        attrs = {"activation": activation} if activation != "none" else {}
        self.g.add_node(Node(self._name("fc_op"), "fully_connected", inputs, [out], attrs))
        return out

    def reshape(self, x: str, shape: tuple[int, ...]) -> str:
        out = self._act(self._name("reshape"), shape)
        self.g.add_node(Node(self._name("reshape_op"), "reshape", [x], [out], {"shape": shape}))
        return out

    def softmax(self, x: str, axis: int = -1) -> str:
        out = self._act(self._name("softmax"), self.shape(x))
        self.g.add_node(Node(self._name("softmax_op"), "softmax", [x], [out], {"axis": axis}))
        return out

    def concat(self, parts: list[str], axis: int = -1) -> str:
        shapes = [self.shape(p) for p in parts]
        out_shape = list(shapes[0])
        out_shape[axis] = sum(s[axis] for s in shapes)
        out = self._act(self._name("concat"), tuple(out_shape))
        self.g.add_node(Node(self._name("concat_op"), "concat", parts, [out], {"axis": axis}))
        return out

    def pad(self, x: str, padding: tuple) -> str:
        n, h, w, c = self.shape(x)
        (pt, pb), (pl, pr) = padding
        out = self._act(self._name("pad"), (n, h + pt + pb, w + pl + pr, c))
        self.g.add_node(Node(self._name("pad_op"), "pad", [x], [out], {"padding": padding}))
        return out

    # ------------------------------------------------------------------

    @staticmethod
    def _resolve_padding(padding, h, w, kh, kw, stride):
        if padding == "same":
            return (same_padding(h, kh, stride), same_padding(w, kw, stride))
        if padding == "valid":
            return ((0, 0), (0, 0))
        return padding

    def finish(self, outputs: list[str]) -> Graph:
        for name in outputs:
            self.g.mark_output(name)
        self.g.validate()
        return self.g
