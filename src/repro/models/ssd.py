"""SSD-MobileNet-V1 (300x300 COCO detector).

The MobileNet-V1 trunk feeds a six-scale SSD head (feature maps of
19, 10, 5, 3, 2, 1 with 3/6/6/6/6/6 anchors per cell — 1917 anchors total).
Box-decode details are folded into the x86 postprocess; class scores pass
through a softmax and per-class non-maximum suppression, both of which run
on x86 exactly as in the paper's submission ("SSD's non-maximum suppression
operation ... is executed on x86", section VI-C).  1.2 B MACs and 6.8 M
weights (Table V).
"""

from __future__ import annotations

from repro.graph.gir import Graph, Node, Tensor, TensorType
from repro.models.common import GraphBuilder
from repro.models.mobilenet import _BLOCKS

NUM_CLASSES = 91

# (feature map side, anchors per cell) for the six SSD scales.
_SCALES = [(19, 3), (10, 6), (5, 6), (3, 6), (2, 6), (1, 6)]
TOTAL_ANCHORS = sum(side * side * anchors for side, anchors in _SCALES)  # 1917

# Extra feature layers after the trunk: (squeeze 1x1, expand 3x3/2).
_EXTRAS = [(256, 512), (128, 256), (128, 256), (64, 128)]


def build_ssd_mobilenet_v1(batch: int = 1, seed: int = 22) -> Graph:
    """Build SSD-MobileNet-V1 with synthetic weights."""
    if batch != 1:
        raise ValueError(
            "the SSD postprocess (NMS) does not support batching — the very "
            "limitation discussed in section VI-C of the paper"
        )
    b = GraphBuilder("ssd_mobilenet_v1", seed=seed)
    x = b.input("images", (1, 300, 300, 3))
    x = b.conv(x, 32, 3, stride=2, batch_norm=True, activation="relu6")
    feature_maps: list[str] = []
    for index, (out_channels, stride) in enumerate(_BLOCKS):
        x = b.depthwise(x, 3, stride=stride, activation="relu6", batch_norm=True)
        x = b.conv(x, out_channels, 1, batch_norm=True, activation="relu6")
        if index == 10:  # conv11: the 19x19x512 feature map
            feature_maps.append(x)
    feature_maps.append(x)  # conv13: 10x10x1024
    for squeeze, expand in _EXTRAS:
        x = b.conv(x, squeeze, 1, batch_norm=True, activation="relu6")
        x = b.conv(x, expand, 3, stride=2, batch_norm=True, activation="relu6")
        feature_maps.append(x)

    box_parts: list[str] = []
    class_parts: list[str] = []
    for feature, (side, anchors) in zip(feature_maps, _SCALES, strict=False):
        assert b.shape(feature)[1] == side, (b.shape(feature), side)
        # 1x1 convolutional box predictors, as in the reference model.
        boxes = b.conv(feature, anchors * 4, 1, bias=True)
        classes = b.conv(feature, anchors * NUM_CLASSES, 1, bias=True)
        box_parts.append(b.reshape(boxes, (side * side * anchors, 4)))
        class_parts.append(b.reshape(classes, (side * side * anchors, NUM_CLASSES)))
    all_boxes = b.concat(box_parts, axis=0)
    all_logits = b.concat(class_parts, axis=0)
    scores = b.softmax(all_logits, axis=-1)

    g = b.g
    g.add_tensor(Tensor("detection_boxes", TensorType((10, 4))))
    g.add_tensor(Tensor("detection_scores", TensorType((10,))))
    g.add_tensor(Tensor("detection_classes", TensorType((10,), "int32")))
    g.add_node(
        Node(
            "postprocess",
            "nms",
            [all_boxes, scores],
            ["detection_boxes", "detection_scores", "detection_classes"],
            {"iou_threshold": 0.6, "score_threshold": 0.3, "max_detections": 10},
        )
    )
    return b.finish(["detection_boxes", "detection_scores", "detection_classes"])
