"""GNMT: the neural machine translation benchmark.

The MLPerf v0.5 GNMT: 4-layer LSTM encoder, 4-layer LSTM decoder with
attention over the encoder states, 1024 hidden units, a shared source /
target embedding table and a vocabulary sized so the total parameter count
lands at Table V's ~131 M.  The paper ran GNMT on Ncore in bfloat16 ("due
to time constraints ... we implemented GNMT using bfloat16 rather than
8-bit integer", section VI-B); use
:func:`repro.quantize.convert_to_bf16` on the built graph for that path.

The graph is unrolled for a fixed sentence length (the paper characterized
25-word inputs and outputs) with teacher-forced (greedy) decoding.  The
paper reports 3.9 B MACs per sentence; a single greedy pass over this
architecture performs ~2.5 B — the remainder is consistent with the MLPerf
reference's beam-search decoding re-executing decoder steps, which a
static unrolled graph does not model.  EXPERIMENTS.md records both.
"""

from __future__ import annotations

import numpy as np

from repro.graph.gir import Graph, Node
from repro.models.common import GraphBuilder

VOCAB = 28672          # sized so total weights land at Table V's 131 M
HIDDEN = 1024
LAYERS = 4
SEQ_LEN = 25


def _lstm_step(
    b: GraphBuilder,
    x: str,
    weights: str,
    bias: str,
    h_prev: str,
    c_prev: str,
    hidden: int,
) -> tuple[str, str]:
    batch = b.shape(x)[0]
    h = b._act(b._name("h"), (batch, hidden))
    c = b._act(b._name("c"), (batch, hidden))
    b.g.add_node(
        Node(b._name("lstm"), "lstm_cell", [x, weights, bias, h_prev, c_prev], [h, c])
    )
    return h, c


def _lstm_seq_step(
    b: GraphBuilder,
    x_seq: str,
    wx: str,
    wh: str,
    bias: str,
    h_prev: str,
    c_prev: str,
    hidden: int,
    t: int,
) -> tuple[str, str]:
    """Emit one sequence-projected ``lstm_step`` node (encoder layers)."""
    batch = b.shape(x_seq)[0]
    h = b._act(b._name("h"), (batch, hidden))
    c = b._act(b._name("c"), (batch, hidden))
    b.g.add_node(
        Node(
            b._name("lstm"),
            "lstm_step",
            [x_seq, wx, wh, bias, h_prev, c_prev],
            [h, c],
            {"t": t},
        )
    )
    return h, c


def _slice_step(b: GraphBuilder, sequence: str, t: int) -> str:
    """Take timestep t from an embedded (batch, time, features) tensor."""
    batch, _, features = b.shape(sequence)
    out = b._act(b._name("step"), (batch, features))
    b.g.add_node(
        Node(
            b._name("slice"),
            "slice",
            [sequence],
            [out],
            {"axis": 1, "begin": t, "size": 1, "squeeze": True},
        )
    )
    return out


def build_gnmt(
    batch: int = 1,
    seq_len: int = SEQ_LEN,
    hidden: int = HIDDEN,
    layers: int = LAYERS,
    vocab: int = VOCAB,
    seed: int = 23,
) -> Graph:
    """Build the unrolled GNMT translation graph with synthetic weights."""
    b = GraphBuilder("gnmt", seed=seed)
    rng = b.rng
    src_ids = b.input("source_ids", (batch, seq_len), dtype="int32")
    tgt_ids = b.input("target_ids", (batch, seq_len), dtype="int32")

    # One embedding table shared between source and target (a shared BPE
    # vocabulary, as in the MLPerf reference), which keeps the parameter
    # count at Table V's ~131 M.
    table = b.constant(
        "shared_embedding", (rng.normal(size=(vocab, hidden)) * 0.05).astype(np.float32)
    )

    def embed(table, ids):
        out = b._act(b._name("embedded"), (batch, seq_len, hidden))
        b.g.add_node(Node(b._name("embed"), "embedding", [table, ids], [out]))
        return out

    src_embedded = embed(table, src_ids)
    tgt_embedded = embed(table, tgt_ids)

    def lstm_weights(name, input_size):
        scale = np.sqrt(1.0 / (input_size + hidden))
        w = b.constant(
            name, (rng.normal(size=(input_size + hidden, 4 * hidden)) * scale).astype(np.float32)
        )
        bias = b.constant(name + "_bias", np.zeros(4 * hidden, np.float32))
        return w, bias

    def lstm_seq_weights(name, input_size):
        # Split input/recurrent matrices for lstm_step; same total parameter
        # count as the stacked (input_size + hidden, 4 * hidden) lstm_cell
        # weights, so Table V's ~131 M is preserved.
        scale = np.sqrt(1.0 / (input_size + hidden))
        wx = b.constant(
            name + "_wx", (rng.normal(size=(input_size, 4 * hidden)) * scale).astype(np.float32)
        )
        wh = b.constant(
            name + "_wh", (rng.normal(size=(hidden, 4 * hidden)) * scale).astype(np.float32)
        )
        bias = b.constant(name + "_bias", np.zeros(4 * hidden, np.float32))
        return wx, wh, bias

    zero_state = b.constant("zero_state", np.zeros((batch, hidden), np.float32))

    # ---- encoder: `layers` stacked LSTMs over the source sequence ----
    # Each layer runs `lstm_step` over the whole (batch, time, hidden) input
    # sequence: the input-side gate projection is shared per layer, which is
    # what the seqfuse codegen variant amortizes across the timestep chain.
    enc_weights = [lstm_seq_weights(f"enc{l}", hidden) for l in range(layers)]
    x_seq = src_embedded
    for l in range(layers):
        h, c = zero_state, zero_state
        outputs = []
        for t in range(seq_len):
            h, c = _lstm_seq_step(b, x_seq, *enc_weights[l], h, c, hidden, t)
            outputs.append(h)
        # Stack this layer's outputs into (batch, time, hidden): the next
        # layer's input sequence, and (for the top layer) the attention keys.
        stacked = [b.reshape(h, (batch, 1, hidden)) for h in outputs]
        x_seq = b.concat(stacked, axis=1)
    encoder_states = x_seq

    # ---- decoder: attention feeds the first layer's input ----
    dec_weights = [
        lstm_weights("dec0", 2 * hidden)  # [embedding ; attention context]
    ] + [lstm_weights(f"dec{l}", hidden) for l in range(1, layers)]
    states = [(zero_state, zero_state) for _ in range(layers)]
    context = zero_state
    logits_steps = []
    for t in range(seq_len):
        token = _slice_step(b, tgt_embedded, t)
        x = b.concat([token, context], axis=-1)
        new_states = []
        for l in range(layers):
            h, c = _lstm_step(b, x, *dec_weights[l], *states[l], hidden)
            new_states.append((h, c))
            x = h
        states = new_states
        # Attention over the encoder states, queried by the top layer; the
        # context feeds the *next* step's first-layer input.
        context = b._act(b._name("context"), (batch, hidden))
        b.g.add_node(
            Node(b._name("attention"), "attention", [x, encoder_states], [context])
        )
        logits_steps.append(b.reshape(x, (batch, 1, hidden)))
    decoder_out = b.concat(logits_steps, axis=1)

    # Output projection over the top decoder state.
    proj = b.constant(
        "output_projection",
        (rng.normal(size=(hidden, vocab)) * np.sqrt(1.0 / hidden)).astype(np.float32),
    )
    flat = b.reshape(decoder_out, (batch * seq_len, hidden))
    logits = b._act("logits", (batch * seq_len, vocab))
    b.g.add_node(Node("project", "fully_connected", [flat, proj], [logits]))
    return b.finish(["logits"])
