"""The evaluated models (Table V), built with deterministic synthetic weights.

Performance depends on tensor shapes, datatypes and schedules — not on the
trained weight values — so each builder creates the exact architecture with
seeded random weights.  MAC and weight counts are checked against Table V:

    MobileNet-V1        0.57 B MACs    4.2 M weights
    ResNet-50-V1.5      4.1 B MACs    26.0 M weights
    SSD-MobileNet-V1    1.2 B MACs     6.8 M weights
    GNMT                3.9 B MACs   131 M weights (25-word sentences)
"""

from repro.models.gnmt import build_gnmt
from repro.models.mobilenet import build_mobilenet_v1
from repro.models.resnet import build_resnet50_v15
from repro.models.ssd import build_ssd_mobilenet_v1
from repro.models.zoo import MODEL_BUILDERS, ModelInfo, PAPER_CHARACTERISTICS

__all__ = [
    "MODEL_BUILDERS",
    "ModelInfo",
    "PAPER_CHARACTERISTICS",
    "build_gnmt",
    "build_mobilenet_v1",
    "build_resnet50_v15",
    "build_ssd_mobilenet_v1",
]
