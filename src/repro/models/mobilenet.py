"""MobileNet-V1 (224x224, width multiplier 1.0).

The Howard et al. architecture: a full 3x3 conv followed by 13 depthwise-
separable blocks (depthwise 3x3 + pointwise 1x1, each with batch-norm and
ReLU6), global average pooling and a 1000-way classifier.  0.57 B MACs and
4.2 M weights (Table V).
"""

from __future__ import annotations

from repro.graph.gir import Graph
from repro.models.common import GraphBuilder

# (pointwise out_channels, depthwise stride) for the 13 blocks.
_BLOCKS = [
    (64, 1),
    (128, 2),
    (128, 1),
    (256, 2),
    (256, 1),
    (512, 2),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (1024, 2),
    (1024, 1),
]


def build_mobilenet_v1(
    batch: int = 1,
    resolution: int = 224,
    num_classes: int = 1001,
    include_head: bool = True,
    seed: int = 20,
) -> Graph:
    """Build MobileNet-V1 with synthetic weights.

    ``include_head=False`` stops after the global pool (the SSD backbone
    shares the trunk).
    """
    b = GraphBuilder("mobilenet_v1", seed=seed)
    x = b.input("images", (batch, resolution, resolution, 3))
    x = b.conv(x, 32, 3, stride=2, batch_norm=True, activation="relu6")
    for out_channels, stride in _BLOCKS:
        x = b.depthwise(x, 3, stride=stride, activation="relu6", batch_norm=True)
        x = b.conv(x, out_channels, 1, batch_norm=True, activation="relu6")
    if not include_head:
        return b.finish([x])
    x = b.global_mean(x)
    logits = b.fully_connected(x, num_classes)
    probs = b.softmax(logits)
    return b.finish([probs])
