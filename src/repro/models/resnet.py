"""ResNet-50 v1.5 (the MLPerf reference variant).

v1.5 differs from v1 in placing the stride-2 downsampling on each stage's
3x3 convolution instead of the first 1x1.  The MLPerf TensorFlow reference
graph carries four explicit pad operations that the GCL fuses into the
adjacent convolutions (section V-B) — this builder reproduces those
explicit pads so the pass has its real work to do.  4.1 B MACs and 26.0 M
weights (Table V).
"""

from __future__ import annotations

from repro.graph.gir import Graph
from repro.models.common import GraphBuilder

# (blocks, bottleneck channels, output channels) per stage.
_STAGES = [
    (3, 64, 256),
    (4, 128, 512),
    (6, 256, 1024),
    (3, 512, 2048),  # row-bytes-ok: ResNet-50 stage widths, not a row width
]


def _bottleneck(b: GraphBuilder, x: str, mid: int, out: int, stride: int, first: bool) -> str:
    shortcut = x
    if first:
        shortcut = b.conv(x, out, 1, stride=stride, batch_norm=True, bias=False)
    y = b.conv(x, mid, 1, batch_norm=True, activation="relu", bias=False)
    if stride == 2:
        # The MLPerf reference expresses stride-2 3x3 convs as an explicit
        # pad followed by a VALID conv — one of the four explicit pads.
        y = b.pad(y, ((1, 1), (1, 1)))
        y = b.conv(y, mid, 3, stride=2, padding="valid", batch_norm=True, activation="relu", bias=False)
    else:
        y = b.conv(y, mid, 3, batch_norm=True, activation="relu", bias=False)
    y = b.conv(y, out, 1, batch_norm=True, bias=False)
    return b.add(y, shortcut, activation="relu")


def build_resnet50_v15(
    batch: int = 1, num_classes: int = 1001, seed: int = 21
) -> Graph:
    """Build ResNet-50 v1.5 with synthetic weights."""
    b = GraphBuilder("resnet50_v15", seed=seed)
    x = b.input("images", (batch, 224, 224, 3))
    # Stem: explicit pad + 7x7/2 VALID conv (as in the reference graph).
    x = b.pad(x, ((3, 3), (3, 3)))
    x = b.conv(x, 64, 7, stride=2, padding="valid", batch_norm=True, activation="relu", bias=False)
    x = b.max_pool(x, 3, 2)
    for stage_index, (blocks, mid, out) in enumerate(_STAGES):
        for block_index in range(blocks):
            stride = 2 if (stage_index > 0 and block_index == 0) else 1
            x = _bottleneck(b, x, mid, out, stride, first=(block_index == 0))
    x = b.global_mean(x)
    logits = b.fully_connected(x, num_classes)
    probs = b.softmax(logits)
    return b.finish([probs])
