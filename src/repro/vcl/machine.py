"""A width-parameterized vector machine for algorithm prototyping.

Every operation mirrors one Ncore unit operation but over an arbitrary
machine width, and every call is instrumented: the machine accumulates an
operation census and a cycle estimate, so an algorithm sketch immediately
reports the utilization and bandwidth it would achieve on a hypothetical
Ncore of that width — the workflow the paper's designers used to evaluate
slicing decisions before committing RTL.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np



@dataclass
class VclStats:
    """Instrumentation: what an algorithm did on the vector machine."""

    ops: Counter = field(default_factory=Counter)
    cycles: int = 0
    macs: int = 0
    ram_rows_read: int = 0

    def utilization(self, width: int) -> float:
        """MAC-lane utilization of the recorded trace."""
        if self.cycles == 0:
            return 0.0
        return min(1.0, self.macs / (self.cycles * width))


class Vector:
    """One machine-width vector of byte lanes."""

    __slots__ = ("values",)

    def __init__(self, values: np.ndarray) -> None:
        self.values = np.asarray(values, dtype=np.uint8)

    def __len__(self) -> int:
        return self.values.size

    def __eq__(self, other) -> bool:  # pragma: no cover - convenience
        return isinstance(other, Vector) and np.array_equal(self.values, other.values)


class VclMachine:
    """A prototyping machine of configurable width and broadcast group."""

    def __init__(
        self,
        width: int = 4096,  # row-bytes-ok: VCL default mirrors CHA independently
        group: int = 64,
        acc_bits: int = 32,
    ) -> None:
        if width % group:
            raise ValueError("machine width must be a multiple of the group size")
        self.width = width
        self.group = group
        self.acc_min = -(1 << (acc_bits - 1))
        self.acc_max = (1 << (acc_bits - 1)) - 1
        self.acc = np.zeros(width, dtype=np.int64)
        self.stats = VclStats()

    # -- data movement (NDU analogues) -------------------------------------

    def load(self, values) -> Vector:
        """Bring one row of data into the machine (a RAM row read)."""
        arr = np.zeros(self.width, dtype=np.uint8)
        values = np.asarray(values, dtype=np.uint8).reshape(-1)
        arr[: values.size] = values
        self.stats.ops["load"] += 1
        self.stats.ram_rows_read += 1
        self.stats.cycles += 1
        return Vector(arr)

    def tile(self, values) -> Vector:
        """Load a small tile repeated across every broadcast group."""
        values = np.asarray(values, dtype=np.uint8).reshape(-1)
        if values.size > self.group:
            raise ValueError("tile exceeds the broadcast group size")
        tile = np.zeros(self.group, dtype=np.uint8)
        tile[: values.size] = values
        self.stats.ops["load"] += 1
        self.stats.ram_rows_read += 1
        self.stats.cycles += 1
        return Vector(np.tile(tile, self.width // self.group))

    def rotate(self, vec: Vector, amount: int) -> Vector:
        """Rotate toward lane zero; cycle cost grows past 64 B/clock."""
        self.stats.ops["rotate"] += 1
        self.stats.cycles += max(1, -(-abs(amount) // 64))
        return Vector(np.roll(vec.values, -amount))

    def broadcast(self, vec: Vector, index: int) -> Vector:
        """Broadcast byte ``index`` of each group across that group."""
        groups = vec.values.reshape(-1, self.group)
        self.stats.ops["broadcast"] += 1
        self.stats.cycles += 1
        return Vector(np.repeat(groups[:, index % self.group], self.group))

    # -- arithmetic (NPU analogues) -----------------------------------------

    def mac(
        self,
        data: Vector,
        weight: Vector,
        data_zero: int = 0,
        weight_zero: int = 0,
        signed: bool = False,
        fused_moves: int = 0,
    ) -> None:
        """acc += (data - dz) * (weight - wz) with saturation.

        ``fused_moves`` marks data-movement ops that issue in the same
        clock as this MAC (the VLIW fusion), so they cost nothing extra:
        call sites subtract their cycles.
        """
        d = data.values.view(np.int8).astype(np.int64) if signed else data.values.astype(np.int64)
        w = weight.values.view(np.int8).astype(np.int64) if signed else weight.values.astype(np.int64)
        product = (d - data_zero) * (w - weight_zero)
        self.acc = np.clip(self.acc + product, self.acc_min, self.acc_max)
        self.stats.ops["mac"] += 1
        self.stats.cycles += 1 - fused_moves
        self.stats.macs += self.width

    def clear_acc(self) -> None:
        self.acc[:] = 0
        self.stats.ops["clear"] += 1
        self.stats.cycles += 1

    # -- output (OUT analogue) ----------------------------------------------

    def requantize(self, scale: float, offset: int = 0, lo: int = 0, hi: int = 255) -> Vector:
        """Scale + offset + clamp the accumulators into bytes."""
        self.stats.ops["requant"] += 1
        self.stats.cycles += 1
        scaled = np.round(self.acc * scale) + offset
        return Vector(np.clip(scaled, lo, hi).astype(np.uint8))

    # -- reporting -----------------------------------------------------------

    def report(self) -> str:
        """The utilization/DMA-style report the GCL consumed (section V-E)."""
        stats = self.stats
        lines = [
            f"VCL machine: width={self.width} group={self.group}",
            f"  cycles: {stats.cycles}",
            f"  macs:   {stats.macs} (utilization {stats.utilization(self.width):.1%})",
            f"  rows read: {stats.ram_rows_read}",
        ]
        ops = ", ".join(f"{name}={count}" for name, count in sorted(stats.ops.items()))
        lines.append(f"  ops: {ops}")
        return "\n".join(lines)
