"""The Vector Class Library (VCL).

Section V-E: "Prototyping algorithms with new SIMD instructions, changes to
the machine width, and changes to RAM sizes were modeled using a custom C++
vector class library (VCL).  The VCL provided a path for quick iteration to
verify the numerical correctness of algorithms and performance impact" —
and the GCL "used [it] to report utilization and DMA stalls based on a
high-level performance model that uses VCL instrumentation".

This is that library in Python: a width-parameterized vector machine with
the NDU/NPU/OUT operation vocabulary and built-in instrumentation.
"""

from repro.vcl.machine import VclMachine, VclStats, Vector

__all__ = ["VclMachine", "VclStats", "Vector"]
