"""The MLPerf-Inference-style scenario harness.

Implements the two modes the paper submitted (section VI-A): SingleStream,
which issues one query at a time and reports the 90th-percentile latency,
and Offline, which issues everything at once and reports throughput.
Query-to-query jitter (scheduler noise, DRAM refresh) is modelled as a
small seeded log-normal factor so percentile statistics are meaningful.

Both scenarios are *degenerate schedules* on the discrete-event engine
(:mod:`repro.engine`): SingleStream is a closed loop with one outstanding
query, Offline is a pipeline of back-to-back batches.  The Server scenario
(:mod:`repro.perf.serving`) uses the same engine with Poisson arrivals and
dynamic batching — one execution path for all three.  The service times
come from the same calibrated :class:`~repro.perf.system.BenchmarkSystem`
model as before the engine existed, so the reported numbers are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.engine import Engine
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.perf.system import BenchmarkSystem

LATENCY_PERCENTILE = 90  # MLPerf's SingleStream reporting percentile
JITTER_SIGMA = 0.015     # ~1.5% query-to-query latency noise


@dataclass(frozen=True)
class SingleStreamResult:
    model_key: str
    queries: int
    mean_latency_seconds: float
    p90_latency_seconds: float

    @property
    def p90_latency_ms(self) -> float:
        return self.p90_latency_seconds * 1e3


@dataclass(frozen=True)
class OfflineResult:
    model_key: str
    queries: int
    throughput_ips: float
    batch_size: int


def run_single_stream(
    system: BenchmarkSystem, queries: int = 1024, seed: int = 0
) -> SingleStreamResult:
    """SingleStream scenario: sequential queries, p90 latency.

    The engine runs the closed loop — the next query is issued when the
    previous one completes, so each query's latency equals its service
    time and the scenario reduces to the analytic model exactly.
    """
    if queries < 1:
        raise ValueError("at least one query required")
    tracer = get_tracer()
    with tracer.span(
        "mlperf.single_stream", track="mlperf",
        model=system.model_key, queries=queries,
    ) as span:
        base = system.single_stream_latency_seconds()
        rng = np.random.default_rng(seed)
        samples = base * rng.lognormal(mean=0.0, sigma=JITTER_SIGMA, size=queries)
        engine = Engine()
        starts = np.zeros(queries, dtype=np.float64)

        def closed_loop() -> Iterator:
            for index in range(queries):
                starts[index] = engine.now
                yield engine.timeout(float(samples[index]))
            return None

        engine.process(closed_loop(), name="single-stream")
        engine.run()
        result = SingleStreamResult(
            model_key=system.model_key,
            queries=queries,
            mean_latency_seconds=float(samples.mean()),
            p90_latency_seconds=float(np.percentile(samples, LATENCY_PERCENTILE)),
        )
        span.set(p90_latency_ms=result.p90_latency_ms)
    if tracer.enabled:
        # Per-query spans on the engine timeline (queries are issued
        # back-to-back in SingleStream).
        for index, latency in enumerate(samples):
            tracer.add_span(
                f"query[{index}]", "mlperf.queries",
                start_us=float(starts[index]) * 1e6,
                duration_us=float(latency) * 1e6,
                args={"latency_ms": float(latency) * 1e3},
            )
    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter("mlperf.queries").inc(queries)
        histogram = metrics.histogram("mlperf.latency_seconds", unit="s")
        for latency in samples:
            histogram.observe(float(latency))
    return result


def run_offline(
    system: BenchmarkSystem,
    queries: int = 4096,  # row-bytes-ok: a query count, not a row width
    batch_size: int = 64,
    cores: int = 8,
    seed: int = 0,
) -> OfflineResult:
    """Offline scenario: all queries at once, batched (batch 64 for GNMT,
    as in the paper, to raise arithmetic intensity).

    The engine pipelines the batches back-to-back; a trailing partial
    batch (``queries % batch_size != 0``, or ``batch_size > queries``)
    still runs and still counts — throughput is queries over the engine
    makespan.
    """
    if queries < 1:
        raise ValueError("at least one query required")
    if batch_size < 1:
        raise ValueError("batch size must be positive")
    with get_tracer().span(
        "mlperf.offline", track="mlperf",
        model=system.model_key, queries=queries, batch_size=batch_size, cores=cores,
    ) as span:
        base = system.offline_throughput_ips(cores=cores)
        rng = np.random.default_rng(seed)
        # Throughput noise shrinks with the query count (averaging).
        noise = rng.lognormal(mean=0.0, sigma=JITTER_SIGMA / np.sqrt(queries))
        sizes = [batch_size] * (queries // batch_size)
        if queries % batch_size:
            sizes.append(queries % batch_size)
        engine = Engine()
        completed = 0

        def batch_pipeline() -> Iterator:
            nonlocal completed
            for sequence, size in enumerate(sizes):
                started = engine.now
                yield engine.timeout(size / base)
                completed += size
                engine.trace_span(
                    f"batch[{sequence}]", "mlperf.offline.batches",
                    started, engine.now, args={"size": size},
                )
            return None

        engine.process(batch_pipeline(), name="offline")
        engine.run()
        if completed != queries:
            raise RuntimeError(
                f"offline schedule completed {completed} of {queries} queries"
            )
        result = OfflineResult(
            model_key=system.model_key,
            queries=queries,
            throughput_ips=float(queries / engine.now * noise),
            batch_size=batch_size,
        )
        span.set(throughput_ips=result.throughput_ips)
    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter("mlperf.queries").inc(queries)
        metrics.gauge("mlperf.offline_ips", unit="IPS").set(result.throughput_ips)
    return result
