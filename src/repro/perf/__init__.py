"""Performance models and the MLPerf-style evaluation harness.

- :mod:`repro.perf.published`  -- the competitor results the paper compares
  against (Tables VII/VIII, MLPerf Inference v0.5 closed division).
- :mod:`repro.perf.workloads`  -- the x86 portion of each benchmark
  (preprocess, postprocess, framework overhead; Table IX).
- :mod:`repro.perf.system`     -- the full-system latency/throughput model.
- :mod:`repro.perf.scaling`    -- throughput vs x86 core count (Figs 13/14).
- :mod:`repro.perf.mlperf`     -- SingleStream / Offline scenario harness.
- :mod:`repro.perf.serving`    -- engine-driven Server scenario (Poisson
  arrivals, dynamic batching, multisocket sharding).
"""

from repro.perf.mlperf import OfflineResult, SingleStreamResult, run_offline, run_single_stream
from repro.perf.report import generate_report
from repro.perf.serving import (
    ServerResult,
    ServingTimingModel,
    default_server_qps,
    run_server,
)
from repro.perf.published import (
    PUBLISHED_LATENCY_MS,
    PUBLISHED_THROUGHPUT_IPS,
    SUBMITTER_TYPES,
)
from repro.perf.scaling import expected_throughput, observed_throughput
from repro.perf.system import BenchmarkSystem
from repro.perf.workloads import x86_portion_seconds

__all__ = [
    "BenchmarkSystem",
    "OfflineResult",
    "PUBLISHED_LATENCY_MS",
    "PUBLISHED_THROUGHPUT_IPS",
    "SUBMITTER_TYPES",
    "ServerResult",
    "ServingTimingModel",
    "SingleStreamResult",
    "default_server_qps",
    "expected_throughput",
    "generate_report",
    "observed_throughput",
    "run_offline",
    "run_server",
    "run_single_stream",
    "x86_portion_seconds",
]
