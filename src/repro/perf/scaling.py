"""Throughput vs x86 core count: the Fig. 13 / Fig. 14 models.

Fig. 13 (expected): "Theoretically, all of the x86 portion of any network
could be hidden by Ncore's latency, given enough x86 cores executing
concurrently with Ncore."  One core drives Ncore; the remaining cores chew
through the batchable x86 work in parallel, so

    expected(n) = min( 1 / (t_ncore + t_nonbatchable),
                       (n - 1) / t_batchable )

with n = 1 fully serial.

Fig. 14 (observed): the measured curves "appear to become limited by other
x86 overhead not accounted in either the TensorFlow-Lite or MLPerf
frameworks", and MLPerf's run manager needed dedicated cores.  We model
that with an Amdahl-style serial share of the x86 work that no amount of
cores hides (calibrated once against the paper's 8-core measurements):

    observed(n) = 1 / (t_ncore + t_nonbatch + s*t_batch + (1-s)*t_batch/(n-1))
"""

from __future__ import annotations

# Share of the batchable x86 work that stays serial in practice
# (calibrated against Table VIII at 8 cores: ResNet lands on ~1218 IPS).
SERIAL_X86_SHARE = 0.20


def expected_throughput(
    ncore_seconds: float,
    x86_seconds: float,
    cores: int,
    nonbatchable_seconds: float = 0.0,
) -> float:
    """Fig. 13: ideal throughput with n x86 cores hiding the x86 work."""
    if cores < 1:
        raise ValueError("at least one x86 core is required")
    if cores == 1:
        return 1.0 / (ncore_seconds + x86_seconds)
    batchable = max(0.0, x86_seconds - nonbatchable_seconds)
    ncore_bound = 1.0 / (ncore_seconds + nonbatchable_seconds)
    if batchable == 0.0:
        return ncore_bound
    x86_bound = (cores - 1) / batchable
    return min(ncore_bound, x86_bound)


def observed_throughput(
    ncore_seconds: float,
    x86_seconds: float,
    cores: int,
    nonbatchable_seconds: float = 0.0,
    serial_share: float = SERIAL_X86_SHARE,
) -> float:
    """Fig. 14: throughput with the unhidden x86 overhead modelled."""
    if cores < 1:
        raise ValueError("at least one x86 core is required")
    batchable = max(0.0, x86_seconds - nonbatchable_seconds)
    if cores == 1:
        return 1.0 / (ncore_seconds + x86_seconds)
    hidden = (1.0 - serial_share) * batchable / (cores - 1)
    period = ncore_seconds + nonbatchable_seconds + serial_share * batchable + hidden
    return 1.0 / period


def cores_to_saturate(ncore_seconds: float, x86_seconds: float) -> int:
    """Smallest core count whose expected throughput hits the Ncore bound.

    The paper reads these off Fig. 13: ResNet-50 needs 2 cores, MobileNet
    4, SSD-MobileNet 5.
    """
    for cores in range(1, 64):
        if expected_throughput(ncore_seconds, x86_seconds, cores) >= (
            1.0 / ncore_seconds
        ) * (1 - 1e-9):
            return cores
    return 64
