"""The full-system benchmark model: one evaluated model on one CHA.

Reproduces the measurement pipeline of section VI: build the model with
synthetic weights, convert it (uint8 PTQ for the CNNs, bfloat16 for GNMT),
compile through the GCL/NKL, and combine the simulated Ncore portion with
the modelled x86 portion into SingleStream latency and Offline throughput.

GNMT ran through full TensorFlow "due to framework compatibility" with an
admittedly immature stack (section VI-B); that is modelled as per-offload
framework overhead (``GNMT_OFFLOAD_OVERHEAD_SECONDS``), calibrated against
the 12.28 IPS submission.  The ``mature_software`` flag removes it — the
projection the paper makes when it "anticipates GNMT throughput to
increase significantly as Ncore's software stack continues to mature".
"""

from __future__ import annotations

import functools

import numpy as np

from repro.compiler import optimize_graph
from repro.graph.loadable import CompiledModel
from repro.models import PAPER_CHARACTERISTICS, ModelInfo
from repro.ncore.config import NcoreConfig
from repro.perf.scaling import expected_throughput, observed_throughput
from repro.perf.workloads import X86Portion, x86_portion_seconds
from repro.quantize import calibrate, convert_to_bf16, quantize_graph
from repro.runtime.delegate import (
    DELEGATE_TRANSITION_SECONDS,
    _x86_node_cost,
    compile_model,
)
from repro.soc.config import SocConfig
from repro.soc.x86 import X86Core

# Per-offloaded-kernel TensorFlow overhead for the GNMT path (calibrated
# against the 12.28 IPS MLPerf submission at 2.3 GHz).
GNMT_OFFLOAD_OVERHEAD_SECONDS = 255e-6

# Table IV: Ncore ran GNMT at a reduced 2.3 GHz.
GNMT_CLOCK_HZ = 2.3e9
DEFAULT_CLOCK_HZ = 2.5e9


class BenchmarkSystem:
    """One benchmark model compiled and timed on the CHA model."""

    def __init__(
        self,
        model_key: str,
        ncore_config: NcoreConfig | None = None,
        calibration_batches: int = 1,
        build_kwargs: dict | None = None,
        soc_config: SocConfig | None = None,
    ) -> None:
        self.model_key = model_key
        self.info: ModelInfo = PAPER_CHARACTERISTICS[model_key]
        clock = GNMT_CLOCK_HZ if model_key == "gnmt" else DEFAULT_CLOCK_HZ
        self.config = ncore_config or NcoreConfig(clock_hz=clock)
        self.soc_config = soc_config or SocConfig()
        self.core = X86Core(clock_hz=DEFAULT_CLOCK_HZ)

        graph = self.info.build(**(build_kwargs or {}))
        self.float_graph_nodes = len(graph.nodes)
        optimize_graph(graph, in_place=True)
        if model_key == "gnmt":
            converted = convert_to_bf16(graph)
        else:
            batches = [
                self.info.sample_input(graph, seed=100 + i)
                for i in range(calibration_batches)
            ]
            converted = quantize_graph(graph, calibrate(graph, batches))
        self.compiled: CompiledModel = compile_model(
            converted, config=self.config, optimize=False, name=model_key
        )

    # ------------------------------------------------------------------
    # Ncore side (simulated)
    # ------------------------------------------------------------------

    @property
    def _dma_bytes_per_cycle(self) -> float:
        # DMA is bottlenecked by the slower of ring and DDR; Ncore consumes
        # the stream at its own clock (which may differ from the SoC's).
        bandwidth = min(
            self.soc_config.ring_bandwidth_per_direction,
            self.soc_config.ddr_bandwidth,
        )
        return bandwidth / self.config.clock_hz

    def ncore_seconds(self) -> float:
        """Simulated Ncore portion of one single-batch inference."""
        cycles = self.compiled.ncore_cycles(self._dma_bytes_per_cycle)
        return cycles / self.config.clock_hz

    def ncore_seconds_batched(self, batch: int) -> float:
        """Per-item Ncore time with a batch amortizing the weight traffic.

        Streamed weights are fetched once per batch while compute scales
        with the batch — "a batch size of 64 to increase the arithmetic
        intensity" (section VI-A) is exactly this amortization.  Pinned
        weights never stream, so batching changes nothing for them.
        """
        if batch < 1:
            raise ValueError("batch must be at least 1")
        compute_cycles = 0
        streamed_bytes = 0
        for index in self.compiled.ncore_segments:
            loadable = self.compiled.loadables[index]
            compute_cycles += loadable.compute_cycles
            if not loadable.memory_plan.weights_pinned:
                streamed_bytes += loadable.weight_image_bytes
        dma_cycles = streamed_bytes / self._dma_bytes_per_cycle
        total = max(compute_cycles * batch, dma_cycles) + min(
            compute_cycles, dma_cycles
        )
        return total / batch / self.config.clock_hz

    def offload_count(self) -> int:
        """Number of kernel offloads (per-op for the immature GNMT path).

        Reshapes inside an Ncore partition are tensor-metadata updates —
        the framework never dispatches a kernel for them, so they do not
        pay the per-offload overhead.
        """
        return sum(
            1
            for i in self.compiled.ncore_segments
            for kernel in self.compiled.loadables[i].kernels
            if kernel.op != "reshape"
        )

    # ------------------------------------------------------------------
    # x86 side (modelled)
    # ------------------------------------------------------------------

    def _input_bytes(self) -> int:
        total = 0
        for name in self.compiled.graph.inputs:
            shape = self.compiled.graph.tensor(name).shape
            total += int(np.prod(shape))
        return total

    def _graph_x86_seconds(self) -> tuple[float, float]:
        """(all x86-segment seconds, the non-batchable NMS share)."""
        total = 0.0
        nonbatchable = 0.0
        for index in self.compiled.x86_segments:
            segment = self.compiled.segments[index]
            total += DELEGATE_TRANSITION_SECONDS
            for node in segment.nodes:
                seconds = self.core.task_seconds(
                    **_x86_node_cost(self.compiled.graph, node)
                )
                total += seconds
                if node.op == "nms":
                    # "TensorFlow-Lite's implementation of the NMS operation
                    # does not support batching" (section VI-C).
                    nonbatchable += seconds
        return total, nonbatchable

    def x86_portion(self) -> X86Portion:
        graph_seconds, nonbatchable = self._graph_x86_seconds()
        return x86_portion_seconds(
            self.compiled,
            self.info.input_type,
            self._input_bytes(),
            graph_seconds,
            core=self.core,
            nonbatchable_graph_seconds=nonbatchable,
        )

    def gnmt_framework_seconds(self, mature_software: bool = False) -> float:
        """The per-offload TensorFlow overhead of the GNMT submission."""
        if self.model_key != "gnmt" or mature_software:
            return 0.0
        return self.offload_count() * GNMT_OFFLOAD_OVERHEAD_SECONDS

    # ------------------------------------------------------------------
    # Scenario results
    # ------------------------------------------------------------------

    def single_stream_latency_seconds(self, mature_software: bool = False) -> float:
        """SingleStream: one query at a time, Ncore + x86 in series."""
        return (
            self.ncore_seconds()
            + self.x86_portion().total_seconds
            + self.gnmt_framework_seconds(mature_software)
        )

    def offline_throughput_ips(
        self,
        cores: int = 8,
        batch: int = 64,
        batching: bool | None = None,
        mature_software: bool = False,
    ) -> float:
        """Offline: batched throughput with x86 work hidden behind Ncore.

        ``batching=None`` follows the paper's submission: batched for
        MobileNet/ResNet/GNMT, single-batch for SSD (section VI-C).
        """
        if batching is None:
            batching = self.model_key != "ssd_mobilenet_v1"
        if not batching:
            return 1.0 / self.single_stream_latency_seconds(mature_software)
        portion = self.x86_portion()
        x86 = portion.total_seconds
        nonbatchable = x86 * (1.0 - portion.batchable_fraction)
        ncore = self.ncore_seconds_batched(batch) + self.gnmt_framework_seconds(
            mature_software
        )
        return observed_throughput(ncore, x86, cores, nonbatchable)

    def expected_throughput_ips(self, cores: int) -> float:
        """The Fig. 13 ideal-hiding curve for this model."""
        portion = self.x86_portion()
        nonbatchable = portion.total_seconds * (1.0 - portion.batchable_fraction)
        return expected_throughput(
            self.ncore_seconds() + self.gnmt_framework_seconds(False),
            portion.total_seconds,
            cores,
            nonbatchable,
        )

    def workload_split(self) -> dict[str, float]:
        """The Table IX decomposition, in seconds."""
        ncore = self.ncore_seconds() + self.gnmt_framework_seconds(False) * 0.0
        x86 = self.x86_portion().total_seconds + self.gnmt_framework_seconds(False)
        return {"ncore": ncore, "x86": x86, "total": ncore + x86}


@functools.lru_cache(maxsize=8)
def get_system(model_key: str) -> BenchmarkSystem:
    """Cached construction (calibration costs a full float inference)."""
    return BenchmarkSystem(model_key)
