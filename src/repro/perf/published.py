"""Published MLPerf Inference v0.5 closed-division results (Tables VI-IX).

These are the numbers the paper itself compares against — retrieved from
mlperf.org entries 0.5-22/23/24/28/29/32/33 — reproduced here as the fixed
comparison baselines.  The Centaur rows are the paper's *measured* results;
the benchmark harness regenerates our simulated equivalents next to them.
"""

from __future__ import annotations

MODELS = ("mobilenet_v1", "resnet50_v15", "ssd_mobilenet_v1", "gnmt")

# Table VI: types of MLPerf submitters.
SUBMITTER_TYPES = {
    "Chip vendors": ["Centaur", "Intel", "NVIDIA", "Qualcomm"],
    "Cloud services": ["Alibaba", "Google"],
    "Systems (Intel-based)": ["DellEMC", "Inspur", "Tencent"],
    "Chip startups": ["FuriosaAI", "Habana Labs", "Hailo"],
}

# Table VII: SingleStream latency in milliseconds (None = not submitted).
PUBLISHED_LATENCY_MS: dict[str, dict[str, float | None]] = {
    "Centaur Ncore": {
        "mobilenet_v1": 0.33,
        "resnet50_v15": 1.05,
        "ssd_mobilenet_v1": 1.54,
        "gnmt": None,
    },
    "NVIDIA AGX Xavier": {
        "mobilenet_v1": 0.58,
        "resnet50_v15": 2.04,
        "ssd_mobilenet_v1": 1.50,
        "gnmt": None,
    },
    "Intel i3 1005G1": {
        "mobilenet_v1": 3.55,
        "resnet50_v15": 13.58,
        "ssd_mobilenet_v1": 6.67,
        "gnmt": None,
    },
    "(2x) Intel CLX 9282": {
        "mobilenet_v1": 0.49,
        "resnet50_v15": 1.37,
        "ssd_mobilenet_v1": 1.40,
        "gnmt": None,
    },
    "(2x) Intel NNP-I 1000": {
        "mobilenet_v1": None,
        "resnet50_v15": None,
        "ssd_mobilenet_v1": None,
        "gnmt": None,
    },
    "Qualcomm SDM855 QRD": {
        "mobilenet_v1": 3.02,
        "resnet50_v15": 8.95,
        "ssd_mobilenet_v1": None,
        "gnmt": None,
    },
}

# Table VIII: Offline throughput in inputs per second.
PUBLISHED_THROUGHPUT_IPS: dict[str, dict[str, float | None]] = {
    "Centaur Ncore": {
        "mobilenet_v1": 6042.34,
        "resnet50_v15": 1218.48,
        "ssd_mobilenet_v1": 651.89,
        "gnmt": 12.28,
    },
    "NVIDIA AGX Xavier": {
        "mobilenet_v1": 6520.75,
        "resnet50_v15": 2158.93,
        "ssd_mobilenet_v1": 2485.77,
        "gnmt": None,
    },
    "Intel i3 1005G1": {
        "mobilenet_v1": 507.71,
        "resnet50_v15": 100.93,
        "ssd_mobilenet_v1": 217.93,
        "gnmt": None,
    },
    "(2x) Intel CLX 9282": {
        "mobilenet_v1": 29203.30,
        "resnet50_v15": 5965.62,
        "ssd_mobilenet_v1": 9468.00,
        "gnmt": None,
    },
    "(2x) Intel NNP-I 1000": {
        "mobilenet_v1": None,
        "resnet50_v15": 10567.20,
        "ssd_mobilenet_v1": None,
        "gnmt": None,
    },
    "Qualcomm SDM855 QRD": {
        "mobilenet_v1": None,
        "resnet50_v15": None,
        "ssd_mobilenet_v1": None,
        "gnmt": None,
    },
}

# Table IX: the paper's measured latency decomposition (milliseconds).
PAPER_WORKLOAD_SPLIT_MS = {
    "mobilenet_v1": {"total": 0.33, "ncore": 0.11, "x86": 0.22},
    "resnet50_v15": {"total": 1.05, "ncore": 0.71, "x86": 0.34},
    "ssd_mobilenet_v1": {"total": 1.54, "ncore": 0.36, "x86": 1.18},
}

# System facts used for the normalized comparisons in section VI-B.
CLX_9282_CORES_PER_SYSTEM = 112   # 2 sockets x 56 VNNI Xeon cores
NNP_I_ICES_PER_SYSTEM = 24        # 2 adapters x 12 inference compute engines


def per_core_resnet_ips(system: str = "(2x) Intel CLX 9282") -> float:
    """ResNet-50 IPS per Xeon core for the CLX submission (~53.3)."""
    return PUBLISHED_THROUGHPUT_IPS[system]["resnet50_v15"] / CLX_9282_CORES_PER_SYSTEM


def per_ice_resnet_ips() -> float:
    """ResNet-50 IPS per 4096-byte ICE for the NNP-I submission (~440)."""
    return PUBLISHED_THROUGHPUT_IPS["(2x) Intel NNP-I 1000"]["resnet50_v15"] / NNP_I_ICES_PER_SYSTEM


def ncore_vnni_core_equivalence() -> float:
    """How many VNNI Xeon cores Ncore's ResNet throughput equals (~23)."""
    return PUBLISHED_THROUGHPUT_IPS["Centaur Ncore"]["resnet50_v15"] / per_core_resnet_ips()


def ncore_per_ice_speedup() -> float:
    """Ncore vs one same-width NNP-I ICE on ResNet-50 (~2.77x)."""
    return PUBLISHED_THROUGHPUT_IPS["Centaur Ncore"]["resnet50_v15"] / per_ice_resnet_ips()
