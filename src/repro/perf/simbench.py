"""Simulator throughput measurement: how fast the golden model replays.

The paper's golden model existed to replay full workloads quickly; this
module measures how close the instruction-level simulator gets, with and
without the :mod:`repro.ncore.fastpath` tiers.  It owns the Fig. 6 fused
convolution inner loop used by ``benchmarks/bench_simulator.py`` and the
fastpath CI guard, and records the ``BENCH_simulator.json`` baseline.

Wall-clock numbers here describe the *simulator*, not the modelled
hardware — simulated cycle counts are identical either way (the fastpath
differential tests prove it).
"""

from __future__ import annotations

import json
import time
from typing import Any

import numpy as np

from repro.isa import Instruction, assemble
from repro.ncore import Ncore

#: Trip count of the Fig. 6 inner loop used for throughput measurement.
FIG6_ITERATIONS = 512


def fig6_program(iterations: int = FIG6_ITERATIONS) -> list[Instruction]:
    """The Fig. 6 fused convolution inner loop (one MAC issue per trip)."""
    return assemble(
        f"""
        setaddr a0, 0
        setaddr a3, 0
        setaddr a5, 0
        bypass n0, dram[a0]
        loop {iterations} {{
          broadcast64 n1, wtram[a3], a5, inc
          mac.uint8 dlast, n1
          rotl n0, n0, 64
        }}
        halt
        """
    )


def fig6_machine(
    iterations: int = FIG6_ITERATIONS, fastpath: bool | None = None
) -> tuple[Ncore, list[Instruction]]:
    """A machine with deterministic RAM contents plus the Fig. 6 program."""
    machine = Ncore(fastpath=fastpath)
    row_bytes = machine.config.row_bytes
    machine.write_data_ram(0, bytes(np.full(row_bytes, 3, np.uint8)))
    machine.write_weight_ram(0, bytes(np.full(row_bytes, 2, np.uint8)))
    return machine, fig6_program(iterations)


def measure_inner_loop(
    iterations: int = FIG6_ITERATIONS,
    repeats: int = 5,
    fastpath: bool = True,
) -> dict[str, float]:
    """Best-of-``repeats`` wall time executing the Fig. 6 inner loop.

    Returns instructions/sec and cycles/sec of *simulated* work per
    second of host wall time — the simulator's replay throughput.
    """
    machine, program = fig6_machine(iterations, fastpath=fastpath)
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        machine.reset()
        start = time.perf_counter()
        result = machine.execute_program(program)
        best = min(best, time.perf_counter() - start)
    assert result is not None
    return {
        "seconds": best,
        "cycles": float(result.cycles),
        "instructions": float(machine.total_instructions),
        "cycles_per_second": result.cycles / best,
        "instructions_per_second": machine.total_instructions / best,
    }


def measure_zoo_end_to_end(
    model_key: str = "mobilenet_v1",
    queries: int = 3,
    replay: bool = True,
) -> dict[str, float]:
    """Wall time for repeated end-to-end quantized inference of one zoo
    model, exercising the tier-2 replay cache when ``replay`` is on.

    Uses a reduced-resolution MobileNet build when available so the
    baseline stays cheap enough for CI while still walking every layer.
    """
    from repro.models import PAPER_CHARACTERISTICS
    from repro.quantize import calibrate, quantize_graph
    from repro.runtime.delegate import InferenceSession, compile_model

    info = PAPER_CHARACTERISTICS[model_key]
    try:
        graph = info.build(resolution=64)
    except TypeError:
        graph = info.build()
    feeds = info.sample_input(graph, seed=0)
    model = compile_model(quantize_graph(graph, calibrate(graph, [feeds])))
    session = InferenceSession(model, replay=replay)
    start = time.perf_counter()
    for _ in range(max(1, queries)):
        session.run(feeds)
    elapsed = time.perf_counter() - start
    session.close()
    return {
        "seconds": elapsed,
        "queries": float(queries),
        "queries_per_second": queries / elapsed,
    }


def record_baseline(path: str, zoo_model: str = "mobilenet_v1") -> dict[str, Any]:
    """Measure and write the ``BENCH_simulator.json`` baseline."""
    inner_fast = measure_inner_loop(fastpath=True)
    inner_interp = measure_inner_loop(fastpath=False)
    zoo = measure_zoo_end_to_end(zoo_model)
    baseline: dict[str, Any] = {
        "inner_loop": {
            "iterations": FIG6_ITERATIONS,
            "fastpath": inner_fast,
            "interpreter": inner_interp,
            "speedup": inner_interp["seconds"] / inner_fast["seconds"],
        },
        "zoo_end_to_end": {"model": zoo_model, **zoo},
    }
    with open(path, "w") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")
    return baseline
