"""Simulator throughput measurement: how fast the golden model replays.

The paper's golden model existed to replay full workloads quickly; this
module measures how close the instruction-level simulator gets, with and
without the :mod:`repro.ncore.fastpath` tiers.  It owns the Fig. 6 fused
convolution inner loop used by ``benchmarks/bench_simulator.py`` and the
fastpath CI guard, and records the ``BENCH_simulator.json`` baseline.

Wall-clock numbers here describe the *simulator*, not the modelled
hardware — simulated cycle counts are identical either way (the fastpath
differential tests prove it).
"""

from __future__ import annotations

import json
import time
from typing import Any

import numpy as np

from repro.isa import Instruction, assemble
from repro.ncore import Ncore

#: Trip count of the Fig. 6 inner loop used for throughput measurement.
FIG6_ITERATIONS = 512


def fig6_program(iterations: int = FIG6_ITERATIONS) -> list[Instruction]:
    """The Fig. 6 fused convolution inner loop (one MAC issue per trip)."""
    return assemble(
        f"""
        setaddr a0, 0
        setaddr a3, 0
        setaddr a5, 0
        bypass n0, dram[a0]
        loop {iterations} {{
          broadcast64 n1, wtram[a3], a5, inc
          mac.uint8 dlast, n1
          rotl n0, n0, 64
        }}
        halt
        """
    )


def fig6_machine(
    iterations: int = FIG6_ITERATIONS, fastpath: bool | None = None
) -> tuple[Ncore, list[Instruction]]:
    """A machine with deterministic RAM contents plus the Fig. 6 program."""
    machine = Ncore(fastpath=fastpath)
    row_bytes = machine.config.row_bytes
    machine.write_data_ram(0, bytes(np.full(row_bytes, 3, np.uint8)))
    machine.write_weight_ram(0, bytes(np.full(row_bytes, 2, np.uint8)))
    return machine, fig6_program(iterations)


def measure_inner_loop(
    iterations: int = FIG6_ITERATIONS,
    repeats: int = 5,
    fastpath: bool = True,
) -> dict[str, float]:
    """Best-of-``repeats`` wall time executing the Fig. 6 inner loop.

    Returns instructions/sec and cycles/sec of *simulated* work per
    second of host wall time — the simulator's replay throughput.
    """
    machine, program = fig6_machine(iterations, fastpath=fastpath)
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        machine.reset()
        start = time.perf_counter()
        result = machine.execute_program(program)
        best = min(best, time.perf_counter() - start)
    assert result is not None
    return {
        "seconds": best,
        "cycles": float(result.cycles),
        "instructions": float(machine.total_instructions),
        "cycles_per_second": result.cycles / best,
        "instructions_per_second": machine.total_instructions / best,
    }


def compile_zoo_model(model_key: str = "mobilenet_v1"):
    """Convert and O2-compile one zoo model; returns ``(model, feeds)``.

    Uses a reduced-resolution MobileNet build when available so the
    baseline stays cheap enough for CI while still walking every layer.
    GNMT takes the bf16 path (it has no int8 recipe); everything else is
    int8-quantized off a single calibration batch.  Compiling at O2 means
    the Tier-3 ``codegen`` stage runs and the macro-kernel artifact lands
    in the compile cache, so sessions opened on the result can use any
    tier.
    """
    from repro.models import PAPER_CHARACTERISTICS
    from repro.quantize import calibrate, convert_to_bf16, quantize_graph
    from repro.runtime.delegate import compile_model

    info = PAPER_CHARACTERISTICS[model_key]
    if model_key == "gnmt":
        # Reduced GNMT build (same precedent as the reduced-resolution
        # MobileNet below): full 1024-wide 8-layer GNMT holds 131 M bf16
        # weights, far too slow to walk per-node in CI.  This keeps the
        # real topology — unrolled lstm_step encoder, attention decoder,
        # embeddings and the softmax/mean float tails — at a scale where
        # the encoder's redundant per-step sequence projection (what the
        # Tier-3 seqfuse variant eliminates) dominates the interpreter
        # walk, as it does at the paper's 1024-wide full size.  The wide
        # hidden matters: the projection is BLAS-bound (grows with h**2)
        # while the per-step costs both tiers share are numpy-call-
        # overhead-bound, so a narrow build understates the tier gap.
        graph = info.build(
            seq_len=288, hidden=512, layers=2,
            vocab=4096,  # row-bytes-ok: reduced BPE vocab, not a row size
        )
    else:
        try:
            graph = info.build(resolution=64)
        except TypeError:
            graph = info.build()
    feeds = info.sample_input(graph, seed=0)
    if model_key == "gnmt":
        converted = convert_to_bf16(graph)
    else:
        converted = quantize_graph(graph, calibrate(graph, [feeds]))
    return compile_model(converted, name=model_key), feeds


def measure_zoo_end_to_end(
    model_key: str = "mobilenet_v1",
    queries: int = 3,
    replay: bool = True,
    tier: str | None = None,
    warmup: int = 0,
) -> dict[str, float]:
    """Wall time for repeated end-to-end quantized inference of one zoo
    model.

    With ``tier=None`` (the legacy spelling) the session runs with the
    default policy minus/plus the tier-2 replay cache, per ``replay``.
    Naming a ``tier`` pins the session to that rung of the ladder
    (``interpreter`` / ``fastpath`` / ``replay`` / ``codegen``); pass
    ``warmup`` > 0 to exclude the first-dispatch variant benchmarking and
    oracle cross-check from the measured window.
    """
    from repro.runtime.delegate import InferenceSession

    model, feeds = compile_zoo_model(model_key)
    if tier is None:
        session = InferenceSession(model, replay=replay)
    else:
        session = InferenceSession(model, policy=tier)
    for _ in range(max(0, warmup)):
        session.run(feeds)
    start = time.perf_counter()
    for _ in range(max(1, queries)):
        session.run(feeds)
    elapsed = time.perf_counter() - start
    result = {
        "seconds": elapsed,
        "queries": float(queries),
        "queries_per_second": queries / elapsed,
    }
    if tier == "codegen":
        kset = session.executor.macro_kernels
        total = len(model.segments)
        result["coverage"] = (
            kset.coverage_fraction(total) if kset is not None else 0.0
        )
    session.close()
    return result


#: Tier ladder rungs compared by :func:`measure_zoo_tiers` — the ones with
#: distinct end-to-end execution paths (tier-2 replay memoizes whole
#: queries, which would measure the cache, not the simulator).
ZOO_TIERS = ("interpreter", "fastpath", "codegen")


def measure_zoo_tiers(
    model_key: str = "mobilenet_v1",
    queries: int = 3,
    tiers: tuple[str, ...] = ZOO_TIERS,
) -> dict[str, Any]:
    """Steady-state zoo end-to-end throughput at each execution tier.

    One warm-up query per tier (Tier 3 benchmarks its kernel variants and
    runs the interpreter oracle on first dispatch), then ``queries`` timed
    queries.  Returns per-tier timings plus each tier's speedup over the
    interpreter walk.
    """
    per_tier: dict[str, Any] = {}
    for tier in tiers:
        per_tier[tier] = measure_zoo_end_to_end(
            model_key, queries=queries, tier=tier, warmup=1
        )
    result: dict[str, Any] = {"model": model_key, "tiers": per_tier}
    interp = per_tier.get("interpreter")
    if interp is not None:
        result["speedups"] = {
            tier: interp["seconds"] / timing["seconds"]
            for tier, timing in per_tier.items()
        }
    return result


#: Models whose per-tier steady-state numbers ``record_baseline`` records.
ZOO_MODELS = ("mobilenet_v1", "resnet50_v15", "ssd_mobilenet_v1", "gnmt")


def record_baseline(path: str, zoo_model: str = "mobilenet_v1") -> dict[str, Any]:
    """Measure and write the ``BENCH_simulator.json`` baseline."""
    inner_fast = measure_inner_loop(fastpath=True)
    inner_interp = measure_inner_loop(fastpath=False)
    zoo = measure_zoo_end_to_end(zoo_model)
    baseline: dict[str, Any] = {
        "inner_loop": {
            "iterations": FIG6_ITERATIONS,
            "fastpath": inner_fast,
            "interpreter": inner_interp,
            "speedup": inner_interp["seconds"] / inner_fast["seconds"],
        },
        "zoo_end_to_end": {"model": zoo_model, **zoo},
        "zoo_tiers": {key: measure_zoo_tiers(key) for key in ZOO_MODELS},
    }
    with open(path, "w") as handle:
        json.dump(baseline, handle, indent=2)
        handle.write("\n")
    return baseline
