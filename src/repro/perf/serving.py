"""Engine-driven serving scenarios: one execution path for all schedules.

The MLPerf scenarios differ only in their *schedule*, not their machinery
(the LoadGen insight the paper's submissions ran under):

- **SingleStream** -- a closed loop with one outstanding query;
- **Offline**      -- every query available at time zero, batched;
- **Server**       -- seeded Poisson arrivals at a target QPS with a
  latency-bounded dynamic-batching queue (the scenario the paper's
  MLPerf v0.5 submission pre-dated, added here because Fig. 12-14's
  interesting behaviour — x86 work hidden behind Ncore compute — is
  precisely what server-mode batching exercises).

All three build their schedule on :class:`repro.engine.Engine`: simulated
time only, deterministic event order, per-stage tracer spans (queue wait
vs batch assembly vs Ncore vs x86).  The :class:`ServingTimingModel`
adapter maps a :class:`~repro.perf.system.BenchmarkSystem` onto stage
service times using the same calibrated constants as the analytic models,
so the engine-produced SingleStream/Offline numbers reproduce the
pre-engine harness (the regression tests pin this within 1%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.engine import BatchQueue, Engine, Resource, WorkerPool
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.perf.mlperf import JITTER_SIGMA
from repro.perf.scaling import SERIAL_X86_SHARE
from repro.soc.multisocket import CROSS_SOCKET_EFFICIENCY


@dataclass(frozen=True)
class ServingTimingModel:
    """Stage service times for one model, derived once per system.

    The x86 portion is decomposed with the Fig. 14 calibration: the
    non-batchable share plus :data:`SERIAL_X86_SHARE` of the batchable
    work stays serial (one driver core), the rest spreads over the
    remaining cores.  ``serial + pre_parallel + post_parallel`` equals
    the full x86 portion, and the Ncore terms include the GNMT
    framework-offload overhead, so the degenerate schedules reproduce
    the analytic SingleStream/Offline numbers.
    """

    model_key: str
    ncore_unbatched: float                    # per query, incl. framework overhead
    ncore_batched: Callable[[int], float]     # batch size -> per-item seconds
    serial: float                             # per query, driver core
    pre_parallel: float                       # per query, worker pool, pre-Ncore
    post_parallel: float                      # per query, worker pool, post-Ncore
    offline_batching: bool                    # paper submission: SSD unbatched

    @classmethod
    def from_system(
        cls,
        system,
        mature_software: bool = False,
        batching: bool | None = None,
    ) -> "ServingTimingModel":
        """Derive stage times from a benchmark system (or a stand-in).

        Objects without the full ``x86_portion`` decomposition (test
        doubles, pre-compiled latency tables) degrade to a single serial
        stage equal to their SingleStream latency.
        """
        model_key = getattr(system, "model_key", "unknown")
        if not hasattr(system, "x86_portion"):
            latency = system.single_stream_latency_seconds()
            return cls(
                model_key=model_key,
                ncore_unbatched=latency,
                ncore_batched=lambda batch: latency,
                serial=0.0, pre_parallel=0.0, post_parallel=0.0,
                offline_batching=False,
            )
        portion = system.x86_portion()
        x86_total = portion.total_seconds
        nonbatchable = x86_total * (1.0 - portion.batchable_fraction)
        batchable = x86_total - nonbatchable
        serial = nonbatchable + SERIAL_X86_SHARE * batchable
        parallel = (1.0 - SERIAL_X86_SHARE) * batchable
        # Split the parallel work around the Ncore stage in proportion to
        # the preprocess share (input prep precedes the delegate call).
        pre_fraction = portion.preprocess_seconds / x86_total if x86_total else 0.0
        framework = system.gnmt_framework_seconds(mature_software)
        if batching is None:
            batching = model_key != "ssd_mobilenet_v1"
        return cls(
            model_key=model_key,
            ncore_unbatched=system.ncore_seconds() + framework,
            ncore_batched=lambda batch: system.ncore_seconds_batched(batch) + framework,
            serial=serial,
            pre_parallel=parallel * pre_fraction,
            post_parallel=parallel * (1.0 - pre_fraction),
            offline_batching=batching,
        )

    # ------------------------------------------------------------------

    @property
    def single_stream_seconds(self) -> float:
        """One query end-to-end on one core: fully serial."""
        return self.ncore_unbatched + self.serial + self.pre_parallel + self.post_parallel

    def per_item_offline_seconds(self, batch: int, cores: int) -> float:
        """Steady-state per-item period of the Offline pipeline."""
        if not self.offline_batching:
            return self.single_stream_seconds
        parallel = self.pre_parallel + self.post_parallel
        if cores > 1:
            parallel = parallel / (cores - 1)
        return self.ncore_batched(batch) + self.serial + parallel


@dataclass
class ServerResult:
    """Outcome of one Server-scenario run (engine time throughout)."""

    model_key: str
    queries: int
    offered_qps: float
    sustained_qps: float
    mean_latency_seconds: float
    p50_latency_seconds: float
    p90_latency_seconds: float
    p99_latency_seconds: float
    mean_batch_size: float
    max_batch: int
    max_wait_seconds: float
    cores: int
    sockets: int
    seed: int
    latencies_seconds: np.ndarray = field(repr=False, compare=False, default=None)

    @property
    def p99_latency_ms(self) -> float:
        return self.p99_latency_seconds * 1e3

    @property
    def p50_latency_ms(self) -> float:
        return self.p50_latency_seconds * 1e3


@dataclass
class _Query:
    index: int
    arrival: float
    enqueued_at: float | None = None
    batch_started_at: float | None = None
    ncore_done_at: float | None = None
    completed_at: float | None = None
    batch_size: int = 0


class ServerScenario:
    """The engine wiring of one server run: arrivals through completion.

    ``sockets`` engine-managed Ncore executors pull from one shared
    batching queue (the multisocket sharding path); ``cores`` x86 cores
    per socket split into one driver core (the serial share) and a
    worker pool for the batchable pre/post work.
    """

    def __init__(
        self,
        timing: ServingTimingModel,
        qps: float,
        queries: int,
        seed: int = 0,
        max_batch: int = 8,
        max_wait: float = 200e-6,
        cores: int = 8,
        sockets: int = 1,
        socket_efficiency: float = 1.0,
    ) -> None:
        if queries < 1:
            raise ValueError("at least one query required")
        if qps <= 0:
            raise ValueError("offered QPS must be positive")
        if sockets < 1:
            raise ValueError("at least one socket required")
        if cores < 1:
            raise ValueError("at least one x86 core per socket required")
        self.timing = timing
        self.qps = qps
        self.queries = queries
        self.seed = seed
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.cores = cores
        self.sockets = sockets
        # Per-socket slowdown of the shared work distribution
        # (repro.soc.multisocket's cross-socket efficiency).
        self.ncore_scale = (
            1.0 / socket_efficiency ** (sockets - 1) if sockets > 1 else 1.0
        )
        self.engine = Engine()
        self.queue = BatchQueue(
            self.engine, max_batch=max_batch, max_wait=max_wait,
            name=f"{timing.model_key}.server-queue",
        )
        workers = max(1, (cores - 1) * sockets)
        self.pool = WorkerPool(self.engine, workers=workers)
        self.driver_cores = Resource(self.engine, capacity=sockets, name="driver-core")
        self._records: list[_Query] = []
        self._done = 0
        self._all_done = self.engine.event()

    # ------------------------------------------------------------------

    def run(self) -> ServerResult:
        rng = np.random.default_rng(self.seed)
        interarrival = rng.exponential(1.0 / self.qps, size=self.queries)
        arrivals = np.cumsum(interarrival)
        # One jitter factor per dispatched batch, drawn up front so the
        # rng call sequence is a pure function of the seed.
        self._batch_jitter = rng.lognormal(
            mean=0.0, sigma=JITTER_SIGMA, size=self.queries
        )
        for index in range(self.queries):
            record = _Query(index=index, arrival=float(arrivals[index]))
            self._records.append(record)
            self.engine.call_at(record.arrival, self._admit, record)
        for socket in range(self.sockets):
            self.engine.process(self._ncore_loop(socket), name=f"ncore[{socket}]")
        self.engine.run()
        if self._done < self.queries:
            # Tail flush: arrivals stopped but a batch stayed open.
            self.queue.flush()
            self.engine.run()
        return self._result()

    # -- per-query admission -------------------------------------------

    def _admit(self, record: _Query) -> None:
        self.engine.process(self._query_body(record), name=f"query[{record.index}]")

    def _query_body(self, record: _Query) -> Iterator:
        if self.timing.pre_parallel > 0:
            yield self.pool.submit(self.timing.pre_parallel)
        record.enqueued_at = self.engine.now
        self.queue.put(record)
        return None

    # -- per-socket batch execution ------------------------------------

    def _ncore_loop(self, socket: int) -> Iterator:
        engine = self.engine
        timing = self.timing
        while self._done < self.queries:
            batch = yield self.queue.get()
            records: list[_Query] = batch.items
            started = engine.now
            jitter = float(self._batch_jitter[batch.sequence % self.queries])
            service = (
                timing.ncore_batched(batch.size) * batch.size
                * self.ncore_scale * jitter
            )
            for record in records:
                record.batch_started_at = started
                record.batch_size = batch.size
            yield engine.timeout(service)
            done = engine.now
            engine.trace_span(
                f"batch[{batch.sequence}]", f"server.ncore[{socket}]",
                started, done,
                args={"size": batch.size, "reason": batch.reason,
                      "assembly_us": batch.assembly_seconds * 1e6},
            )
            for record in records:
                record.ncore_done_at = done
                engine.process(self._complete(record), name=f"post[{record.index}]")
        return None

    def _complete(self, record: _Query) -> Iterator:
        timing = self.timing
        if timing.serial > 0:
            yield self.driver_cores.request()
            yield self.engine.timeout(timing.serial)
            self.driver_cores.release()
        if timing.post_parallel > 0:
            yield self.pool.submit(timing.post_parallel)
        record.completed_at = self.engine.now
        self._done += 1
        self._trace_query(record)
        if self._done >= self.queries and not self._all_done.triggered:
            self._all_done.succeed()
        return None

    def _trace_query(self, record: _Query) -> None:
        tracer = get_tracer()
        if not tracer.enabled:
            return
        stages = [
            ("queue.wait", record.enqueued_at, record.batch_started_at),
            ("ncore", record.batch_started_at, record.ncore_done_at),
            ("x86.post", record.ncore_done_at, record.completed_at),
        ]
        for stage, start, end in stages:
            if start is None or end is None:
                continue
            self.engine.trace_span(
                f"query[{record.index}].{stage}", "server.queries", start, end,
                args={"batch_size": record.batch_size},
            )

    # -- results --------------------------------------------------------

    def _result(self) -> ServerResult:
        incomplete = [r for r in self._records if r.completed_at is None]
        if incomplete:
            raise RuntimeError(
                f"{len(incomplete)} queries never completed; engine drained "
                "with a wedged schedule"
            )
        latencies = np.array(
            [r.completed_at - r.arrival for r in self._records], dtype=np.float64
        )
        makespan = max(r.completed_at for r in self._records)
        stats = self.queue.stats
        result = ServerResult(
            model_key=self.timing.model_key,
            queries=self.queries,
            offered_qps=self.qps,
            sustained_qps=self.queries / makespan,
            mean_latency_seconds=float(latencies.mean()),
            p50_latency_seconds=float(np.percentile(latencies, 50)),
            p90_latency_seconds=float(np.percentile(latencies, 90)),
            p99_latency_seconds=float(np.percentile(latencies, 99)),
            mean_batch_size=stats.mean_batch_size,
            max_batch=self.max_batch,
            max_wait_seconds=self.max_wait,
            cores=self.cores,
            sockets=self.sockets,
            seed=self.seed,
            latencies_seconds=latencies,
        )
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("server.queries").inc(self.queries)
            metrics.gauge("server.sustained_qps", unit="QPS").set(result.sustained_qps)
            histogram = metrics.histogram("server.latency_seconds", unit="s")
            for latency in latencies:
                histogram.observe(float(latency))
        return result


def default_server_qps(system, cores: int = 8, sockets: int = 1) -> float:
    """A sustainable offered load: 70% of the Offline capacity."""
    timing = ServingTimingModel.from_system(system)
    period = timing.per_item_offline_seconds(batch=8, cores=cores)
    return 0.7 * sockets / period


def run_server(
    system,
    qps: float | None = None,
    queries: int = 512,
    seed: int = 0,
    max_batch: int = 8,
    max_wait: float = 200e-6,
    cores: int = 8,
    sockets: int = 1,
    socket_efficiency: float | None = None,
    mature_software: bool = False,
) -> ServerResult:
    """MLPerf-style Server scenario on the discrete-event engine.

    Seeded Poisson arrivals at ``qps`` (default: 70% of the model's
    Offline capacity) flow through the dynamic-batching queue into
    ``sockets`` engine-managed Ncore executors; p50/p90/p99 latency and
    the sustained QPS come from the engine clock, so two runs with the
    same seed are bit-identical.
    """
    timing = ServingTimingModel.from_system(system, mature_software=mature_software)
    if socket_efficiency is None:
        socket_efficiency = CROSS_SOCKET_EFFICIENCY
    if qps is None:
        qps = default_server_qps(system, cores=cores, sockets=sockets)
    tracer = get_tracer()
    with tracer.span(
        "mlperf.server", track="mlperf",
        model=timing.model_key, queries=queries, qps=qps,
        max_batch=max_batch, sockets=sockets,
    ) as span:
        scenario = ServerScenario(
            timing, qps=qps, queries=queries, seed=seed,
            max_batch=max_batch, max_wait=max_wait,
            cores=cores, sockets=sockets, socket_efficiency=socket_efficiency,
        )
        result = scenario.run()
        span.set(
            sustained_qps=result.sustained_qps,
            p99_latency_ms=result.p99_latency_ms,
            mean_batch_size=result.mean_batch_size,
        )
    return result
