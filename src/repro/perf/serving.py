"""Engine-driven serving scenarios: one execution path for all schedules.

The MLPerf scenarios differ only in their *schedule*, not their machinery
(the LoadGen insight the paper's submissions ran under):

- **SingleStream** -- a closed loop with one outstanding query;
- **Offline**      -- every query available at time zero, batched;
- **Server**       -- seeded Poisson arrivals at a target QPS with a
  latency-bounded dynamic-batching queue (the scenario the paper's
  MLPerf v0.5 submission pre-dated, added here because Fig. 12-14's
  interesting behaviour — x86 work hidden behind Ncore compute — is
  precisely what server-mode batching exercises).

All three build their schedule on :class:`repro.engine.Engine`: simulated
time only, deterministic event order, per-stage tracer spans (queue wait
vs batch assembly vs Ncore vs x86).  The :class:`ServingTimingModel`
adapter maps a :class:`~repro.perf.system.BenchmarkSystem` onto stage
service times using the same calibrated constants as the analytic models,
so the engine-produced SingleStream/Offline numbers reproduce the
pre-engine harness (the regression tests pin this within 1%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.engine import BatchQueue, Engine, Resource, WorkerPool
from repro.obs.attrib import TIER_TIMING_MODEL, get_attrib
from repro.obs.context import TraceContext, mint_trace
from repro.obs.metrics import Histogram, get_metrics
from repro.obs.tracer import get_tracer
from repro.obs.window import RateMeter, SloMonitor, WindowedHistogram
from repro.perf.mlperf import JITTER_SIGMA
from repro.perf.scaling import SERIAL_X86_SHARE
from repro.soc.multisocket import CROSS_SOCKET_EFFICIENCY


@dataclass(frozen=True)
class ServingTimingModel:
    """Stage service times for one model, derived once per system.

    The x86 portion is decomposed with the Fig. 14 calibration: the
    non-batchable share plus :data:`SERIAL_X86_SHARE` of the batchable
    work stays serial (one driver core), the rest spreads over the
    remaining cores.  ``serial + pre_parallel + post_parallel`` equals
    the full x86 portion, and the Ncore terms include the GNMT
    framework-offload overhead, so the degenerate schedules reproduce
    the analytic SingleStream/Offline numbers.
    """

    model_key: str
    ncore_unbatched: float                    # per query, incl. framework overhead
    ncore_batched: Callable[[int], float]     # batch size -> per-item seconds
    serial: float                             # per query, driver core
    pre_parallel: float                       # per query, worker pool, pre-Ncore
    post_parallel: float                      # per query, worker pool, post-Ncore
    offline_batching: bool                    # paper submission: SSD unbatched

    @classmethod
    def from_system(
        cls,
        system,
        mature_software: bool = False,
        batching: bool | None = None,
    ) -> "ServingTimingModel":
        """Derive stage times from a benchmark system (or a stand-in).

        Objects without the full ``x86_portion`` decomposition (test
        doubles, pre-compiled latency tables) degrade to a single serial
        stage equal to their SingleStream latency.
        """
        model_key = getattr(system, "model_key", "unknown")
        if not hasattr(system, "x86_portion"):
            latency = system.single_stream_latency_seconds()
            return cls(
                model_key=model_key,
                ncore_unbatched=latency,
                ncore_batched=lambda batch: latency,
                serial=0.0, pre_parallel=0.0, post_parallel=0.0,
                offline_batching=False,
            )
        portion = system.x86_portion()
        x86_total = portion.total_seconds
        nonbatchable = x86_total * (1.0 - portion.batchable_fraction)
        batchable = x86_total - nonbatchable
        serial = nonbatchable + SERIAL_X86_SHARE * batchable
        parallel = (1.0 - SERIAL_X86_SHARE) * batchable
        # Split the parallel work around the Ncore stage in proportion to
        # the preprocess share (input prep precedes the delegate call).
        pre_fraction = portion.preprocess_seconds / x86_total if x86_total else 0.0
        framework = system.gnmt_framework_seconds(mature_software)
        if batching is None:
            batching = model_key != "ssd_mobilenet_v1"
        return cls(
            model_key=model_key,
            ncore_unbatched=system.ncore_seconds() + framework,
            ncore_batched=lambda batch: system.ncore_seconds_batched(batch) + framework,
            serial=serial,
            pre_parallel=parallel * pre_fraction,
            post_parallel=parallel * (1.0 - pre_fraction),
            offline_batching=batching,
        )

    # ------------------------------------------------------------------

    @property
    def single_stream_seconds(self) -> float:
        """One query end-to-end on one core: fully serial."""
        return self.ncore_unbatched + self.serial + self.pre_parallel + self.post_parallel

    def per_item_offline_seconds(self, batch: int, cores: int) -> float:
        """Steady-state per-item period of the Offline pipeline."""
        if not self.offline_batching:
            return self.single_stream_seconds
        parallel = self.pre_parallel + self.post_parallel
        if cores > 1:
            parallel = parallel / (cores - 1)
        return self.ncore_batched(batch) + self.serial + parallel


@dataclass
class ServerResult:
    """Outcome of one Server-scenario run (engine time throughout)."""

    model_key: str
    queries: int
    offered_qps: float
    sustained_qps: float
    mean_latency_seconds: float
    p50_latency_seconds: float
    p90_latency_seconds: float
    p99_latency_seconds: float
    mean_batch_size: float
    max_batch: int
    max_wait_seconds: float
    cores: int
    sockets: int
    seed: int
    latencies_seconds: np.ndarray = field(repr=False, compare=False, default=None)
    #: SLO snapshot (attainment / burn rate / budget) when a target was set.
    slo: dict | None = field(repr=False, compare=False, default=None)
    #: Telemetry frames sampled during the run (``repro top`` input).
    frames: list = field(repr=False, compare=False, default_factory=list)

    @property
    def p99_latency_ms(self) -> float:
        return self.p99_latency_seconds * 1e3

    @property
    def p50_latency_ms(self) -> float:
        return self.p50_latency_seconds * 1e3


@dataclass
class _Query:
    index: int
    arrival: float
    enqueued_at: float | None = None
    batch_started_at: float | None = None
    ncore_done_at: float | None = None
    completed_at: float | None = None
    batch_size: int = 0
    socket: int = -1
    trace: TraceContext | None = None


class ServerScenario:
    """The engine wiring of one server run: arrivals through completion.

    ``sockets`` engine-managed Ncore executors pull from one shared
    batching queue (the multisocket sharding path); ``cores`` x86 cores
    per socket split into one driver core (the serial share) and a
    worker pool for the batchable pre/post work.
    """

    def __init__(
        self,
        timing: ServingTimingModel,
        qps: float,
        queries: int,
        seed: int = 0,
        max_batch: int = 8,
        max_wait: float = 200e-6,
        cores: int = 8,
        sockets: int = 1,
        socket_efficiency: float = 1.0,
        slo_latency_seconds: float | None = None,
        error_budget: float = 0.01,
        window_seconds: float | None = None,
        telemetry_interval: float | None = None,
    ) -> None:
        if queries < 1:
            raise ValueError("at least one query required")
        if qps <= 0:
            raise ValueError("offered QPS must be positive")
        if sockets < 1:
            raise ValueError("at least one socket required")
        if cores < 1:
            raise ValueError("at least one x86 core per socket required")
        self.timing = timing
        self.qps = qps
        self.queries = queries
        self.seed = seed
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.cores = cores
        self.sockets = sockets
        # Per-socket slowdown of the shared work distribution
        # (repro.soc.multisocket's cross-socket efficiency).
        self.ncore_scale = (
            1.0 / socket_efficiency ** (sockets - 1) if sockets > 1 else 1.0
        )
        self.engine = Engine()
        self.queue = BatchQueue(
            self.engine, max_batch=max_batch, max_wait=max_wait,
            name=f"{timing.model_key}.server-queue",
        )
        workers = max(1, (cores - 1) * sockets)
        self.pool = WorkerPool(self.engine, workers=workers)
        self.driver_cores = Resource(self.engine, capacity=sockets, name="driver-core")
        self._records: list[_Query] = []
        self._done = 0
        self._all_done = self.engine.event()
        # One source of truth for the latency summary: every query is
        # observed here at completion time, and _result derives the
        # headline percentiles from these same observations — the summary
        # and the exported metrics can never disagree.  max_observations
        # covers the full run, so percentile() is exactly np.percentile.
        labels = {"model": timing.model_key}
        self._latency_hist = Histogram(
            "server.latency_seconds", unit="s", labels=labels,
            description="end-to-end server latency, observed at completion",
            max_observations=max(65536, queries),
        )
        self._latency_window = WindowedHistogram(
            "server.latency_seconds.window", unit="s", labels=labels,
            description="rolling server latency (engine time)",
            window_seconds=window_seconds,
        )
        self._completion_rate = RateMeter(
            "server.completion_qps", unit="QPS", labels=labels,
            window_seconds=window_seconds if window_seconds else 1.0,
            description="completions per second over the rolling window",
        )
        self._batch_window = WindowedHistogram(
            "server.batch_size.window", labels=labels,
            description="rolling dispatched batch occupancy",
            window_seconds=window_seconds,
        )
        self.slo: SloMonitor | None = None
        if slo_latency_seconds is not None:
            self.slo = SloMonitor(
                "server.slo", target_seconds=slo_latency_seconds,
                error_budget=error_budget, window_seconds=window_seconds,
                labels=labels,
                description="server latency objective (MLPerf-style p99 bound)",
            )
        self.telemetry_interval = telemetry_interval
        self.frames: list[dict] = []
        self._socket_busy = [0.0] * sockets
        self._prev_busy = [0.0] * sockets

    # ------------------------------------------------------------------

    def run(self) -> ServerResult:
        metrics = get_metrics()
        if metrics.enabled:
            metrics.register(self._latency_hist)
            metrics.register(self._latency_window)
            metrics.register(self._completion_rate)
            metrics.register(self._batch_window)
            if self.slo is not None:
                metrics.register(self.slo)
        rng = np.random.default_rng(self.seed)
        interarrival = rng.exponential(1.0 / self.qps, size=self.queries)
        arrivals = np.cumsum(interarrival)
        # One jitter factor per dispatched batch, drawn up front so the
        # rng call sequence is a pure function of the seed.
        self._batch_jitter = rng.lognormal(
            mean=0.0, sigma=JITTER_SIGMA, size=self.queries
        )
        tracing = get_tracer().enabled
        for index in range(self.queries):
            record = _Query(index=index, arrival=float(arrivals[index]))
            if tracing:
                # Deterministic ids (model, sequence): a seeded run
                # exports byte-identical trace files.
                record.trace = mint_trace(self.timing.model_key, index)
            self._records.append(record)
            self.engine.call_at(record.arrival, self._admit, record)
        for socket in range(self.sockets):
            self.engine.process(self._ncore_loop(socket), name=f"ncore[{socket}]")
        if self.telemetry_interval is not None:
            self.engine.call_after(self.telemetry_interval, self._sample_frame)
        self.engine.run()
        if self._done < self.queries:
            # Tail flush: arrivals stopped but a batch stayed open.
            self.queue.flush()
            self.engine.run()
        if self.telemetry_interval is not None:
            # Final frame at drain time, so a replay shows the end state.
            self._sample_frame()
        return self._result()

    # -- per-query admission -------------------------------------------

    def _admit(self, record: _Query) -> None:
        self.engine.process(self._query_body(record), name=f"query[{record.index}]")

    def _query_body(self, record: _Query) -> Iterator:
        if self.timing.pre_parallel > 0:
            yield self.pool.submit(self.timing.pre_parallel)
        record.enqueued_at = self.engine.now
        self.queue.put(record)
        return None

    # -- per-socket batch execution ------------------------------------

    def _ncore_loop(self, socket: int) -> Iterator:
        engine = self.engine
        timing = self.timing
        while self._done < self.queries:
            batch = yield self.queue.get()
            records: list[_Query] = batch.items
            started = engine.now
            jitter = float(self._batch_jitter[batch.sequence % self.queries])
            service = (
                timing.ncore_batched(batch.size) * batch.size
                * self.ncore_scale * jitter
            )
            for record in records:
                record.batch_started_at = started
                record.batch_size = batch.size
                record.socket = socket
            self._socket_busy[socket] += service
            yield engine.timeout(service)
            done = engine.now
            self._batch_window.observe(batch.size, ts=done)
            engine.trace_span(
                f"batch[{batch.sequence}]", f"server.ncore[{socket}]",
                started, done,
                args={"size": batch.size, "reason": batch.reason,
                      "assembly_us": batch.assembly_seconds * 1e6,
                      "socket": socket,
                      "trace_ids": [
                          r.trace.trace_id for r in records
                          if r.trace is not None
                      ]},
            )
            for record in records:
                record.ncore_done_at = done
                engine.process(self._complete(record), name=f"post[{record.index}]")
        return None

    def _complete(self, record: _Query) -> Iterator:
        timing = self.timing
        if timing.serial > 0:
            yield self.driver_cores.request()
            yield self.engine.timeout(timing.serial)
            self.driver_cores.release()
        if timing.post_parallel > 0:
            yield self.pool.submit(timing.post_parallel)
        record.completed_at = self.engine.now
        self._done += 1
        now = self.engine.now
        latency = record.completed_at - record.arrival
        self._latency_hist.observe(latency)
        self._latency_window.observe(latency, ts=now)
        self._completion_rate.add(now)
        if self.slo is not None:
            self.slo.observe(latency, ts=now)
        self._trace_query(record)
        if self._done >= self.queries and not self._all_done.triggered:
            self._all_done.succeed()
        return None

    def _trace_query(self, record: _Query) -> None:
        tracer = get_tracer()
        if not tracer.enabled:
            return
        context = record.trace
        if context is not None and record.completed_at is not None:
            # Root span of the query's causal tree: arrival -> completion.
            self.engine.trace_span(
                f"query[{record.index}]", "server.queries",
                record.arrival, record.completed_at,
                args={"batch_size": record.batch_size,
                      "socket": record.socket,
                      "model": self.timing.model_key},
                context=context,
            )
        stages = [
            ("pre", record.arrival, record.enqueued_at),
            ("queue.wait", record.enqueued_at, record.batch_started_at),
            ("ncore", record.batch_started_at, record.ncore_done_at),
            ("x86.post", record.ncore_done_at, record.completed_at),
        ]
        for stage, start, end in stages:
            if start is None or end is None:
                continue
            self.engine.trace_span(
                f"query[{record.index}].{stage}", "server.queries", start, end,
                args={"batch_size": record.batch_size, "stage": stage,
                      "socket": record.socket},
                context=context.child(stage) if context is not None else None,
            )

    # -- telemetry frames (the ``repro top`` feed) ----------------------

    def _sample_frame(self) -> None:
        """Sample one live-telemetry frame; self-reschedules until done."""
        now = self.engine.now
        interval = self.telemetry_interval or 1.0
        busy = list(self._socket_busy)
        utilization = [
            min(1.0, max(0.0, (total - previous) / interval))
            for total, previous in zip(busy, self._prev_busy, strict=False)
        ]
        self._prev_busy = busy
        frame: dict = {
            "ts": now,
            "model": self.timing.model_key,
            "completed": self._done,
            "queries": self.queries,
            "qps": self._completion_rate.rate(now),
            "p50_ms": self._latency_window.percentile(50, now) * 1e3,
            "p90_ms": self._latency_window.percentile(90, now) * 1e3,
            "p99_ms": self._latency_window.percentile(99, now) * 1e3,
            "queue_depth": self.queue.depth,
            "batch_occupancy": self._batch_window.mean(now),
            "socket_util": utilization,
        }
        if self.slo is not None:
            frame["slo_attainment"] = self.slo.attainment
            frame["slo_burn_rate"] = self.slo.burn_rate(now)
        metrics = get_metrics()
        if metrics.enabled and "ncore.replay.hits" in metrics:
            hits = metrics.get("ncore.replay.hits").value
            misses = (
                metrics.get("ncore.replay.misses").value
                if "ncore.replay.misses" in metrics else 0
            )
            total = hits + misses
            frame["replay_hit_rate"] = hits / total if total else 0.0
        self.frames.append(frame)
        if self._done < self.queries and self.telemetry_interval is not None:
            self.engine.call_after(self.telemetry_interval, self._sample_frame)

    # -- results --------------------------------------------------------

    def _result(self) -> ServerResult:
        incomplete = [r for r in self._records if r.completed_at is None]
        if incomplete:
            raise RuntimeError(
                f"{len(incomplete)} queries never completed; engine drained "
                "with a wedged schedule"
            )
        latencies = np.array(
            [r.completed_at - r.arrival for r in self._records], dtype=np.float64
        )
        makespan = max(r.completed_at for r in self._records)
        stats = self.queue.stats
        # Summary percentiles come from the scenario-owned histogram —
        # the very observations routed to the metrics registry at
        # completion time, so report and exposition share one source of
        # truth.  Histogram.percentile matches np.percentile exactly
        # (linear interpolation, full retention).
        hist = self._latency_hist
        result = ServerResult(
            model_key=self.timing.model_key,
            queries=self.queries,
            offered_qps=self.qps,
            sustained_qps=self.queries / makespan,
            mean_latency_seconds=float(latencies.mean()),
            p50_latency_seconds=hist.percentile(50),
            p90_latency_seconds=hist.percentile(90),
            p99_latency_seconds=hist.percentile(99),
            mean_batch_size=stats.mean_batch_size,
            max_batch=self.max_batch,
            max_wait_seconds=self.max_wait,
            cores=self.cores,
            sockets=self.sockets,
            seed=self.seed,
            latencies_seconds=latencies,
            slo=self.slo.snapshot() if self.slo is not None else None,
            frames=self.frames,
        )
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("server.queries").inc(self.queries)
            metrics.gauge("server.sustained_qps", unit="QPS").set(result.sustained_qps)
        return result


def default_server_qps(system, cores: int = 8, sockets: int = 1) -> float:
    """A sustainable offered load: 70% of the Offline capacity."""
    timing = ServingTimingModel.from_system(system)
    period = timing.per_item_offline_seconds(batch=8, cores=cores)
    return 0.7 * sockets / period


def run_server(
    system,
    qps: float | None = None,
    queries: int = 512,
    seed: int = 0,
    max_batch: int = 8,
    max_wait: float = 200e-6,
    cores: int = 8,
    sockets: int = 1,
    socket_efficiency: float | None = None,
    mature_software: bool = False,
    slo_latency_seconds: float | None = None,
    error_budget: float = 0.01,
    window_seconds: float | None = None,
    telemetry_interval: float | None = None,
) -> ServerResult:
    """MLPerf-style Server scenario on the discrete-event engine.

    Seeded Poisson arrivals at ``qps`` (default: 70% of the model's
    Offline capacity) flow through the dynamic-batching queue into
    ``sockets`` engine-managed Ncore executors; p50/p90/p99 latency and
    the sustained QPS come from the engine clock, so two runs with the
    same seed are bit-identical.

    ``slo_latency_seconds`` arms an :class:`~repro.obs.window.SloMonitor`
    (MLPerf Server's "99% of queries under the bound" shape with the
    default 1% ``error_budget``); ``telemetry_interval`` samples live
    frames for ``repro top``; ``window_seconds`` bounds the rolling
    percentile/rate windows (None = whole run).
    """
    timing = ServingTimingModel.from_system(system, mature_software=mature_software)
    if socket_efficiency is None:
        socket_efficiency = CROSS_SOCKET_EFFICIENCY
    if qps is None:
        qps = default_server_qps(system, cores=cores, sockets=sockets)
    tracer = get_tracer()
    with tracer.span(
        "mlperf.server", track="mlperf",
        model=timing.model_key, queries=queries, qps=qps,
        max_batch=max_batch, sockets=sockets,
    ) as span:
        scenario = ServerScenario(
            timing, qps=qps, queries=queries, seed=seed,
            max_batch=max_batch, max_wait=max_wait,
            cores=cores, sockets=sockets, socket_efficiency=socket_efficiency,
            slo_latency_seconds=slo_latency_seconds, error_budget=error_budget,
            window_seconds=window_seconds, telemetry_interval=telemetry_interval,
        )
        result = scenario.run()
        span.set(
            sustained_qps=result.sustained_qps,
            p99_latency_ms=result.p99_latency_ms,
            mean_batch_size=result.mean_batch_size,
        )
        if result.slo is not None:
            span.set(slo_attainment=result.slo["attainment"])
    attrib = get_attrib()
    compiled = getattr(system, "compiled", None)
    if attrib.enabled and compiled is not None:
        # The analytic serving path never runs kernels, but its cycle
        # budget still decomposes over the compiled artifact — label the
        # harvest records with the timing-model tier.
        attrib.record_model_run(
            compiled, TIER_TIMING_MODEL,
            batch=max(1, round(result.mean_batch_size)), count=queries,
        )
    return result
