"""One-shot reproduction report: every table and figure in one run.

``python -m repro reproduce`` (or :func:`generate_report`) builds all four
benchmark systems and renders the paper's evaluation — Tables II/V/VII/
VIII/IX and the Fig. 13/14 series — with the published numbers alongside
the simulated ones.  The pytest benchmarks assert the same shapes; this
module is the human-readable artifact.
"""

from __future__ import annotations

from repro.models import PAPER_CHARACTERISTICS
from repro.ncore import NcoreConfig
from repro.perf.published import (
    PAPER_WORKLOAD_SPLIT_MS,
    PUBLISHED_LATENCY_MS,
    PUBLISHED_THROUGHPUT_IPS,
)
from repro.perf.scaling import expected_throughput, observed_throughput
from repro.perf.system import get_system
from repro.soc.x86 import X86Core

MODELS = ["mobilenet_v1", "resnet50_v15", "ssd_mobilenet_v1", "gnmt"]
CNNS = MODELS[:3]


def _table(title: str, header: list[str], rows: list[list]) -> str:
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(header))
    ]
    bar = "-" * (sum(widths) + 2 * (len(widths) - 1))
    def line(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths, strict=False))
    return "\n".join(["", title, bar, line(header), bar, *(line(r) for r in rows), bar])


def _fmt(value, digits=2):
    return "-" if value is None else f"{value:,.{digits}f}"


def render_table(title: str, header: list[str], rows: list[list]) -> str:
    """Public fixed-width table renderer (``repro explore`` reuses it)."""
    return _table(title, header, rows)


def generate_report() -> str:
    """Build everything and render the full reproduction report."""
    sections: list[str] = ["Ncore / CHA reproduction report", "=" * 31]

    # Table II.
    cfg, core = NcoreConfig(), X86Core()
    from repro.dtypes import NcoreDType

    sections.append(_table(
        "Table II: peak throughput (GOPS)",
        ["Processor", "8b", "bf16", "FP32"],
        [
            ["1x CNS x86", round(core.peak_ops(NcoreDType.INT8) / 1e9),
             round(core.peak_ops(NcoreDType.BF16) / 1e9), round(core.peak_ops(None) / 1e9)],
            ["Ncore", round(cfg.peak_ops_per_second(1) / 1e9),
             round(cfg.peak_ops_per_second(3) / 1e9), "N/A"],
        ],
    ))

    # Table V.
    rows = []
    for key in MODELS:
        info = PAPER_CHARACTERISTICS[key]
        graph = info.build()
        macs, weights = graph.count_macs(), graph.count_weights()
        rows.append([
            info.display, f"{macs / 1e9:.2f}B", f"{info.paper_macs / 1e9:.2f}B",
            f"{weights / 1e6:.1f}M", f"{info.paper_weights / 1e6:.1f}M",
        ])
    sections.append(_table(
        "Table V: benchmark characteristics (measured vs paper)",
        ["Model", "MACs", "paper", "Weights", "paper"],
        rows,
    ))

    # Tables VII + VIII.
    systems = {key: get_system(key) for key in MODELS}
    lat_rows = [["Ncore (simulated)"] + [
        f"{systems[k].single_stream_latency_seconds() * 1e3:.2f}" for k in CNNS
    ]]
    for vendor, row in PUBLISHED_LATENCY_MS.items():
        lat_rows.append([vendor] + [_fmt(row[k]) for k in CNNS])
    sections.append(_table(
        "Table VII: SingleStream latency (ms)",
        ["System", "MobileNet", "ResNet-50", "SSD-MobileNet"],
        lat_rows,
    ))
    thr_rows = [["Ncore (simulated)"] + [
        f"{systems[k].offline_throughput_ips():,.1f}" for k in MODELS
    ]]
    for vendor, row in PUBLISHED_THROUGHPUT_IPS.items():
        thr_rows.append([vendor] + [_fmt(row[k]) for k in MODELS])
    sections.append(_table(
        "Table VIII: Offline throughput (IPS)",
        ["System", "MobileNet", "ResNet-50", "SSD-MobileNet", "GNMT"],
        thr_rows,
    ))

    # Server scenario (engine-simulated; post-dates the paper's v0.5
    # submission, which covered SingleStream/Offline only).
    from repro.perf.serving import run_server

    rows = []
    for key in MODELS:
        for sockets in (1, 2):
            result = run_server(systems[key], queries=512, seed=0, sockets=sockets)
            rows.append([
                PAPER_CHARACTERISTICS[key].display if sockets == 1 else "",
                sockets,
                f"{result.offered_qps:,.1f}",
                f"{result.sustained_qps:,.1f}",
                f"{result.p50_latency_ms:.2f}",
                f"{result.p99_latency_ms:.2f}",
                f"{result.mean_batch_size:.2f}",
            ])
    sections.append(_table(
        "MLPerf Server scenario (engine-simulated, Poisson arrivals, seed 0)",
        ["Model", "Sockets", "Offered QPS", "Sustained", "p50 ms", "p99 ms", "Batch"],
        rows,
    ))

    # Table IX.
    rows = []
    for key in CNNS:
        split = systems[key].workload_split()
        paper = PAPER_WORKLOAD_SPLIT_MS[key]
        rows.append([
            PAPER_CHARACTERISTICS[key].display,
            f"{split['ncore'] * 1e3:.2f} ({split['ncore'] / split['total']:.0%})",
            f"{paper['ncore']:.2f} ({paper['ncore'] / paper['total']:.0%})",
            f"{split['x86'] * 1e3:.2f}",
            f"{paper['x86']:.2f}",
        ])
    sections.append(_table(
        "Table IX: Ncore/x86 split, ms (measured vs paper)",
        ["Model", "Ncore", "paper", "x86", "paper"],
        rows,
    ))

    # Figs 13/14 series (simulated portions).
    for title, fn in (
        ("Fig. 13: expected max IPS vs x86 cores", expected_throughput),
        ("Fig. 14: observed IPS vs x86 cores", observed_throughput),
    ):
        rows = []
        for key in CNNS:
            system = systems[key]
            portion = system.x86_portion()
            nonbatchable = portion.total_seconds * (1 - portion.batchable_fraction)
            t_nc = system.ncore_seconds_batched(64)
            rows.append(
                [PAPER_CHARACTERISTICS[key].display]
                + [round(fn(t_nc, portion.total_seconds, n, nonbatchable))
                   for n in range(1, 9)]
            )
        sections.append(_table(title, ["Model"] + [str(n) for n in range(1, 9)], rows))

    sections.append("\nSee EXPERIMENTS.md for the shape claims each number supports.")
    return "\n".join(sections)
