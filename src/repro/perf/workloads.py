"""The x86 portion of each benchmark (Table IX).

"The x86 portion consists of preprocessing, postprocessing, framework
(TensorFlow-Lite) overhead, and benchmark (MLPerf) overhead" (section
VI-C).  Each component is modelled physically on the CNS core cost model:

- *preprocess*: streaming the input image (uint8 in, normalized float32
  out) through one core, or tokenization for text;
- *graph postprocess*: the non-delegated graph segments (SSD's softmax +
  NMS, classifiers' argmax), costed by the inference session;
- *framework dispatch*: per-node interpreter overhead plus a fixed
  benchmark-harness cost per query.

The two software constants below are calibrated once against Table IX and
shared by every model; EXPERIMENTS.md reports modelled-vs-paper splits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.loadable import CompiledModel
from repro.soc.x86 import X86Core

# Per-node TensorFlow-Lite interpreter dispatch cost (calibrated).
PER_NODE_DISPATCH_SECONDS = 1.5e-6
# Fixed per-query cost of the MLPerf run manager path (calibrated).
HARNESS_FIXED_SECONDS = 45e-6


@dataclass(frozen=True)
class X86Portion:
    """Breakdown of the x86 side of one inference."""

    preprocess_seconds: float
    graph_seconds: float       # non-delegated segments (softmax, NMS, ...)
    framework_seconds: float
    batchable_fraction: float  # share that batching can overlap with Ncore

    @property
    def total_seconds(self) -> float:
        return self.preprocess_seconds + self.graph_seconds + self.framework_seconds


def preprocess_seconds(input_type: str, input_bytes: int, core: X86Core) -> float:
    """Input preparation cost on one core."""
    if input_type == "text":
        # Tokenization of a 25-word sentence: small, branchy, serial.
        return core.task_seconds(ops=50_000, fixed_seconds=15e-6)
    # Image path: read uint8 pixels, write normalized float32 (4x the
    # bytes), ~2 arithmetic ops per pixel.
    pixels = input_bytes
    return core.task_seconds(ops=2.0 * pixels, bytes_moved=5.0 * pixels)


def x86_portion_seconds(
    model: CompiledModel,
    input_type: str,
    input_bytes: int,
    graph_seconds: float,
    core: X86Core | None = None,
    nonbatchable_graph_seconds: float = 0.0,
) -> X86Portion:
    """Assemble the full x86 portion for one model."""
    core = core or X86Core()
    pre = preprocess_seconds(input_type, input_bytes, core)
    framework = (
        PER_NODE_DISPATCH_SECONDS * len(model.graph.nodes) + HARNESS_FIXED_SECONDS
    )
    total = pre + graph_seconds + framework
    batchable = total - nonbatchable_graph_seconds
    return X86Portion(
        preprocess_seconds=pre,
        graph_seconds=graph_seconds,
        framework_seconds=framework,
        batchable_fraction=batchable / total if total > 0 else 1.0,
    )
