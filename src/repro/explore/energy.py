"""Coarse energy and area models for design-space ranking.

The paper reports silicon facts for the shipped point (TSMC 16FFC, Ncore at
2.5 GHz sharing the SoC clock) but no per-structure power/area breakdown,
so these coefficients are *literature figures for a 16 nm-class process*,
with the fixed-overhead term calibrated so the shipped CHA point lands on
``CALIBRATED_NCORE_MM2``.  They are meant for **relative ranking of design
points**, not sign-off:

- ``MAC_ENERGY_PJ`` — an 8-bit multiply-accumulate in the 0.2-0.3 pJ range
  at 16 nm (scaled from the 45 nm figures in Horowitz, "Computing's energy
  problem", ISSCC 2014).
- ``SRAM_PJ_PER_BYTE`` — wide-row scratchpad access; big single-ported
  arrays with one full-row access per clock amortize decode across 4096
  lanes, landing well below small-cache per-byte cost.
- ``DRAM_PJ_PER_BYTE`` — DDR4 interface+core energy, the usual
  ~15 pJ/byte planning number.
- ``RING_PJ_PER_BYTE_HOP`` — on-die interconnect at ~0.05-0.1 pJ/bit-mm;
  one CHA ring hop moves a 64-byte beat a few mm.
- ``LEAKAGE_W_PER_MM2`` — static power density for a 16FFC logic+SRAM mix.
- Area: per-MAC (datapath lane incl. its NDU/rotator share), per SRAM
  byte (dense single-port macro), per ring stop (scaled linearly with the
  ring width — wider links mean wider buffers and muxes), plus the
  calibrated fixed block (sequencer, DMA engines, decompression, debug).

Every scoring function returns a breakdown dataclass so reports can show
*where* the energy/area went, and the caveats above travel with the code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ncore.config import NcoreConfig
from repro.soc.config import SocConfig

MAC_ENERGY_PJ = 0.25
SRAM_PJ_PER_BYTE = 0.08
DRAM_PJ_PER_BYTE = 15.0
RING_PJ_PER_BYTE_HOP = 0.06
LEAKAGE_W_PER_MM2 = 0.015

AREA_PER_MAC_UM2 = 850.0
AREA_PER_SRAM_BYTE_UM2 = 1.1
AREA_PER_RING_STOP_MM2 = 0.30

#: The Ncore block's published footprint; the fixed term below makes the
#: model reproduce it exactly at the shipped configuration.
CALIBRATED_NCORE_MM2 = 34.4

#: Sequencer + DMA engines + NDU decompression + debug fabric: everything
#: that does not scale with slices, rows or ring stops.  Solved from
#: ``CALIBRATED_NCORE_MM2`` at the default configs (16 slices, 2048 rows,
#: 12 ring stops).
_DEFAULT_SCALING_MM2 = (
    NcoreConfig().lanes * AREA_PER_MAC_UM2 / 1e6
    + NcoreConfig().total_ram_bytes * AREA_PER_SRAM_BYTE_UM2 / 1e6
    + AREA_PER_RING_STOP_MM2
)
AREA_FIXED_MM2 = CALIBRATED_NCORE_MM2 - _DEFAULT_SCALING_MM2


@dataclass(frozen=True)
class AreaBreakdown:
    """Ncore silicon area in mm^2, by structure."""

    mac_mm2: float
    sram_mm2: float
    ring_mm2: float
    fixed_mm2: float

    @property
    def total_mm2(self) -> float:
        return self.mac_mm2 + self.sram_mm2 + self.ring_mm2 + self.fixed_mm2


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one inference in millijoules, by structure."""

    mac_mj: float
    sram_mj: float
    dram_mj: float
    ring_mj: float
    leakage_mj: float

    @property
    def total_mj(self) -> float:
        return self.mac_mj + self.sram_mj + self.dram_mj + self.ring_mj + self.leakage_mj

    def power_w(self, seconds: float) -> float:
        """Average power over one inference of the given latency."""
        if seconds <= 0:
            return 0.0
        return self.total_mj / 1e3 / seconds


def area_model(config: NcoreConfig, soc: SocConfig) -> AreaBreakdown:
    """Ncore block area for one design point.

    Only Ncore's own ring stop is charged here — the x86 cores, L3 and
    memory controller exist with or without the coprocessor.
    """
    width_scale = soc.ring_width_bytes / SocConfig().ring_width_bytes
    return AreaBreakdown(
        mac_mm2=config.lanes * AREA_PER_MAC_UM2 / 1e6,
        sram_mm2=config.total_ram_bytes * AREA_PER_SRAM_BYTE_UM2 / 1e6,
        ring_mm2=AREA_PER_RING_STOP_MM2 * width_scale,
        fixed_mm2=AREA_FIXED_MM2,
    )


def energy_model(
    config: NcoreConfig,
    soc: SocConfig,
    *,
    macs: int,
    cycles: int,
    dram_bytes: int,
    ring_hops: int = 3,
) -> EnergyBreakdown:
    """Energy of one inference at one design point.

    ``macs`` and ``cycles`` come from the compiled model's kernel
    schedules; ``dram_bytes`` is the streamed-weight + activation DMA
    traffic.  SRAM energy assumes each active cycle touches one full row
    in each of the two RAMs — an upper bound that is tight for the fused
    inner loop (one broadcast read + one accumulate/store per clock).
    ``ring_hops`` is the memory-controller-to-Ncore hop distance.
    """
    seconds = cycles / config.clock_hz if config.clock_hz > 0 else 0.0
    area = area_model(config, soc)
    sram_bytes = 2 * cycles * config.row_bytes
    return EnergyBreakdown(
        mac_mj=macs * MAC_ENERGY_PJ / 1e9,
        sram_mj=sram_bytes * SRAM_PJ_PER_BYTE / 1e9,
        dram_mj=dram_bytes * DRAM_PJ_PER_BYTE / 1e9,
        ring_mj=dram_bytes * ring_hops * RING_PJ_PER_BYTE_HOP / 1e9,
        leakage_mj=area.total_mm2 * LEAKAGE_W_PER_MM2 * seconds * 1e3,
    )
