"""Design-space exploration: config sweeps with energy/area Pareto frontiers.

The paper motivates Ncore's slice-based construction with exactly this kind
of study: "adding or removing slices alters Ncore's breadth, while
increasing or decreasing SRAM capacity alters Ncore's height" (section
IV-B), and the CHA substrate fixes the ring width, DDR channel count and
clock the coprocessor must live with.  This package turns the now
config-parametric stack into a sweep driver:

- :mod:`repro.explore.space`  -- the design points and grid enumeration;
- :mod:`repro.explore.energy` -- a coarse energy/area model (documented
  coefficients, calibrated to the shipped CHA point);
- :mod:`repro.explore.sweep`  -- the driver: compile the model zoo at every
  point through the compile cache, score perf/power/area, and emit the
  deterministic Pareto frontier (``repro explore``).
"""

from __future__ import annotations

from repro.explore.energy import AreaBreakdown, EnergyBreakdown, area_model, energy_model
from repro.explore.space import (
    DEFAULT_GRID,
    DesignPoint,
    enumerate_grid,
    parse_grid,
)
from repro.explore.sweep import (
    ModelMetrics,
    PointResult,
    SweepResult,
    pareto_frontier,
    run_sweep,
)

__all__ = [
    "AreaBreakdown",
    "DEFAULT_GRID",
    "DesignPoint",
    "EnergyBreakdown",
    "ModelMetrics",
    "PointResult",
    "SweepResult",
    "area_model",
    "energy_model",
    "enumerate_grid",
    "parse_grid",
    "pareto_frontier",
    "run_sweep",
]
