"""The design space: one point = one (NcoreConfig, SocConfig) pair.

A :class:`DesignPoint` names the five knobs the sweep driver varies — Ncore
breadth (slices) and height (SRAM rows), ring width, DDR channel count and
the shared clock — and knows how to materialize the two config dataclasses
the rest of the stack consumes.  Points are frozen and hashable so they can
key result tables, and their ``label`` is stable across runs (it is the
identity used in JSON/CSV output and Pareto listings).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Mapping, Sequence

from repro.ncore.config import CHA_NCORE, NcoreConfig
from repro.soc.config import SocConfig

#: Axis names in canonical order; grid enumeration and labels follow it.
AXES: tuple[str, ...] = ("slices", "sram_rows", "ring_width_bits", "ddr_channels", "clock_ghz")

#: The stock grid ``repro explore`` sweeps when no ``--grid`` is given:
#: breadth and height around the shipped point, half/double ring and DDR,
#: and the clock corners.  324 points; the compile cache keeps it cheap.
DEFAULT_GRID: dict[str, tuple[float, ...]] = {
    "slices": (8, 16, 24, 32),
    "sram_rows": (
        CHA_NCORE.sram_rows // 2,
        CHA_NCORE.sram_rows,
        CHA_NCORE.sram_rows * 2,
    ),
    "ring_width_bits": (256, 512, 1024),
    "ddr_channels": (2, 4, 8),
    "clock_ghz": (2.0, 2.5, 3.0),
}


@dataclass(frozen=True)
class DesignPoint:
    """One candidate configuration of the CHA SoC + Ncore."""

    slices: int = 16
    sram_rows: int = CHA_NCORE.sram_rows
    ring_width_bits: int = 512
    ddr_channels: int = 4
    clock_ghz: float = 2.5

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0:
            raise ValueError("clock must be positive")
        # Delegate the remaining validation to the config dataclasses.
        self.ncore_config()
        self.soc_config()

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    def ncore_config(self) -> NcoreConfig:
        return NcoreConfig(
            slices=self.slices, sram_rows=self.sram_rows, clock_hz=self.clock_hz
        )

    def soc_config(self) -> SocConfig:
        return SocConfig(
            ring_width_bits=self.ring_width_bits,
            ddr_channels=self.ddr_channels,
            clock_hz=self.clock_hz,
        )

    @property
    def label(self) -> str:
        """Stable identity, e.g. ``s16-r2048-w512-d4-c2.50``."""
        return (
            f"s{self.slices}-r{self.sram_rows}-w{self.ring_width_bits}"
            f"-d{self.ddr_channels}-c{self.clock_ghz:.2f}"
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "slices": self.slices,
            "sram_rows": self.sram_rows,
            "ring_width_bits": self.ring_width_bits,
            "ddr_channels": self.ddr_channels,
            "clock_ghz": self.clock_ghz,
        }


def parse_grid(spec: str) -> dict[str, tuple[float, ...]]:
    """Parse a ``--grid`` spec like ``"slices=8,16,32 sram_rows=1024"``.

    Axes are space- or semicolon-separated ``name=v1,v2,...`` terms; any
    axis not named keeps its single default value (the shipped point), so a
    spec naming one axis sweeps just that axis.  Unknown axis names raise.
    """
    axes: dict[str, tuple[float, ...]] = {}
    for term in spec.replace(";", " ").split():
        name, _, values = term.partition("=")
        if name not in AXES:
            raise ValueError(f"unknown sweep axis {name!r} (expected one of {AXES})")
        if not values:
            raise ValueError(f"axis {name!r} needs =v1,v2,... values")
        axes[name] = tuple(float(v) for v in values.split(","))
    if not axes:
        raise ValueError("empty grid spec")
    return axes


def enumerate_grid(axes: Mapping[str, Sequence[float]]) -> tuple[DesignPoint, ...]:
    """Cartesian product of the given axes, in canonical ``AXES`` order.

    Deterministic: the same mapping always yields the same point sequence.
    """
    default = DesignPoint()
    for name in axes:
        if name not in AXES:
            raise ValueError(f"unknown sweep axis {name!r} (expected one of {AXES})")
    columns: list[tuple[float, ...]] = []
    for name in AXES:
        values = axes.get(name)
        if values is None:
            columns.append((float(getattr(default, name)),))
        elif len(values) == 0:
            raise ValueError(f"axis {name!r} has no values")
        else:
            columns.append(tuple(float(v) for v in values))
    points: list[DesignPoint] = []
    for combo in product(*columns):
        points.append(
            DesignPoint(
                slices=int(combo[0]),
                sram_rows=int(combo[1]),
                ring_width_bits=int(combo[2]),
                ddr_channels=int(combo[3]),
                clock_ghz=combo[4],
            )
        )
    return tuple(points)
