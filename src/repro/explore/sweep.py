"""The sweep driver: compile the zoo at every design point, rank, Pareto.

Each model is built and quantized **once**; every design point then runs
the config-parametric compiler (partition / plan / lower / verify) through
a :class:`~repro.compiler.CompileCache`, so repeated points are cache hits
and a 100-point sweep stays in seconds.  Points where a model cannot be
placed (the scratchpad is too small, the verifier rejects the loadable)
are recorded as *infeasible* with the reason — an infeasible region is a
design-space result, not an error.

Scoring is Ncore-centric: latency is the simulated Ncore portion, energy
and area come from :mod:`repro.explore.energy`, and the Pareto frontier is
the set of feasible points not dominated on (throughput up, power down,
area down).  Everything is deterministic for a given (grid, models, seed):
the JSON/CSV emitters sort keys and round uniformly, so byte-identical
output is a test invariant.
"""

from __future__ import annotations

import csv
import io
import json
import math
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.analyze import AnalysisError
from repro.compiler import CompileCache, CompilerError, compile_graph, optimize_graph
from repro.explore.energy import area_model, energy_model
from repro.explore.space import DesignPoint
from repro.graph.gir import Graph
from repro.graph.planner import PlanningError
from repro.models import PAPER_CHARACTERISTICS
from repro.perf.report import render_table
from repro.quantize import calibrate, convert_to_bf16, quantize_graph

DEFAULT_MODELS: tuple[str, ...] = ("mobilenet_v1",)


@dataclass(frozen=True)
class ModelMetrics:
    """One model compiled at one design point."""

    compile_key: str
    cycles: int
    macs: int
    dram_bytes: int
    latency_ms: float
    throughput_ips: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "compile_key": self.compile_key,
            "cycles": self.cycles,
            "macs": self.macs,
            "dram_bytes": self.dram_bytes,
            "latency_ms": round(self.latency_ms, 6),
            "throughput_ips": round(self.throughput_ips, 3),
        }


@dataclass(frozen=True)
class PointResult:
    """One design point's scorecard."""

    point: DesignPoint
    feasible: bool
    reason: str = ""
    models: dict[str, ModelMetrics] = field(default_factory=dict)
    latency_ms: float = 0.0        # geometric mean over models
    throughput_ips: float = 0.0    # geometric mean over models
    energy_mj: float = 0.0         # geometric mean per-inference energy
    power_w: float = 0.0           # worst-case (max) over models
    area_mm2: float = 0.0
    pareto: bool = False

    def as_dict(self) -> dict[str, Any]:
        row: dict[str, Any] = dict(self.point.as_dict())
        row["label"] = self.point.label
        row["feasible"] = self.feasible
        if not self.feasible:
            row["reason"] = self.reason
            return row
        row.update(
            latency_ms=round(self.latency_ms, 6),
            throughput_ips=round(self.throughput_ips, 3),
            energy_mj=round(self.energy_mj, 6),
            power_w=round(self.power_w, 4),
            area_mm2=round(self.area_mm2, 3),
            pareto=self.pareto,
            models={name: m.as_dict() for name, m in sorted(self.models.items())},
        )
        return row


@dataclass
class SweepResult:
    """All points of one sweep, plus provenance for deterministic replay."""

    points: list[PointResult]
    models: tuple[str, ...]
    seed: int
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def feasible(self) -> list[PointResult]:
        return [p for p in self.points if p.feasible]

    @property
    def frontier(self) -> list[PointResult]:
        return [p for p in self.points if p.pareto]

    def to_json(self) -> str:
        payload = {
            "seed": self.seed,
            "models": list(self.models),
            "grid_points": len(self.points),
            "feasible_points": len(self.feasible),
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "pareto": [p.point.label for p in self.frontier],
            "points": [p.as_dict() for p in self.points],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def to_csv(self) -> str:
        buf = io.StringIO()
        fields = [
            "label", "slices", "sram_rows", "ring_width_bits", "ddr_channels",
            "clock_ghz", "feasible", "latency_ms", "throughput_ips",
            "energy_mj", "power_w", "area_mm2", "pareto", "reason",
        ]
        writer = csv.DictWriter(buf, fieldnames=fields, extrasaction="ignore")
        writer.writeheader()
        for result in self.points:
            row = result.as_dict()
            row.setdefault("reason", "")
            writer.writerow(row)
        return buf.getvalue()

    def render(self, top: int = 0) -> str:
        """Human-readable sweep report (the ``repro explore`` output)."""
        shown = self.feasible
        shown.sort(key=lambda p: (-p.throughput_ips, p.power_w, p.area_mm2, p.point.label))
        if top > 0:
            shown = shown[:top]
        rows = [
            [
                ("*" if p.pareto else " ") + p.point.label,
                f"{p.latency_ms:.3f}",
                f"{p.throughput_ips:,.0f}",
                f"{p.energy_mj:.3f}",
                f"{p.power_w:.2f}",
                f"{p.area_mm2:.1f}",
            ]
            for p in shown
        ]
        sections = [
            f"Design-space sweep: {len(self.points)} points, "
            f"{len(self.feasible)} feasible, {len(self.frontier)} on the frontier "
            f"(models: {', '.join(self.models)}; seed {self.seed}; "
            f"compile cache {self.cache_hits} hits / {self.cache_misses} misses)",
            render_table(
                "Perf / power / area (* = Pareto-optimal)",
                ["point", "lat ms", "ips", "mJ/inf", "W", "mm^2"],
                rows,
            ),
        ]
        infeasible = [p for p in self.points if not p.feasible]
        if infeasible:
            reasons: dict[str, int] = {}
            for p in infeasible:
                reasons[p.reason] = reasons.get(p.reason, 0) + 1
            sections.append(f"\n{len(infeasible)} infeasible points:")
            for reason, count in sorted(reasons.items()):
                sections.append(f"  {count:>4} x {reason}")
        return "\n".join(sections)


def _prepare_model(key: str) -> tuple[Graph, int, int]:
    """Build + optimize + quantize once; returns (graph, macs, io_bytes)."""
    info = PAPER_CHARACTERISTICS[key]
    graph = info.build()
    optimize_graph(graph, in_place=True)
    if key == "gnmt":
        converted = convert_to_bf16(graph)
    else:
        converted = quantize_graph(
            graph, calibrate(graph, [info.sample_input(graph, seed=100)])
        )
    macs = int(graph.count_macs())
    io_bytes = 0
    for name in list(converted.inputs) + list(converted.outputs):
        io_bytes += int(converted.tensor(name).type.num_bytes)
    return converted, macs, io_bytes


def _score_point(
    point: DesignPoint,
    prepared: dict[str, tuple[Graph, int, int]],
    cache: CompileCache,
) -> PointResult:
    config = point.ncore_config()
    soc = point.soc_config()
    dma_bpc = min(soc.ring_bandwidth_per_direction, soc.ddr_bandwidth) / config.clock_hz
    area = area_model(config, soc)
    metrics: dict[str, ModelMetrics] = {}
    energies: list[float] = []
    power = 0.0
    for name, (graph, macs, io_bytes) in prepared.items():
        try:
            # Name by model only: the compile key already fingerprints the
            # NcoreConfig, so points differing in SoC-only axes (ring, DDR)
            # share one compilation — that is the cache doing its job.
            result = compile_graph(graph, config=config, name=name, cache=cache)
        except (PlanningError, AnalysisError, CompilerError) as error:
            return PointResult(
                point=point,
                feasible=False,
                reason=f"{name}: {type(error).__name__}",
            )
        cycles = int(result.model.ncore_cycles(dma_bpc))
        seconds = cycles / config.clock_hz
        streamed = sum(
            loadable.weight_image_bytes
            for index in result.model.ncore_segments
            if (loadable := result.model.loadables.get(index)) is not None
            and not loadable.memory_plan.weights_pinned
        )
        energy = energy_model(
            config, soc, macs=macs, cycles=cycles, dram_bytes=streamed + io_bytes
        )
        metrics[name] = ModelMetrics(
            compile_key=result.key,
            cycles=cycles,
            macs=macs,
            dram_bytes=streamed + io_bytes,
            latency_ms=seconds * 1e3,
            throughput_ips=1.0 / seconds if seconds > 0 else 0.0,
        )
        energies.append(energy.total_mj)
        power = max(power, energy.power_w(seconds))
    return PointResult(
        point=point,
        feasible=True,
        models=metrics,
        latency_ms=_geomean([m.latency_ms for m in metrics.values()]),
        throughput_ips=_geomean([m.throughput_ips for m in metrics.values()]),
        energy_mj=_geomean(energies),
        power_w=power,
        area_mm2=area.total_mm2,
    )


def _geomean(values: Sequence[float]) -> float:
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


def pareto_frontier(results: Sequence[PointResult]) -> list[PointResult]:
    """Feasible points not dominated on (throughput up, power down, area down)."""
    feasible = [r for r in results if r.feasible]
    frontier: list[PointResult] = []
    for candidate in feasible:
        dominated = False
        for other in feasible:
            if other is candidate:
                continue
            if (
                other.throughput_ips >= candidate.throughput_ips
                and other.power_w <= candidate.power_w
                and other.area_mm2 <= candidate.area_mm2
                and (
                    other.throughput_ips > candidate.throughput_ips
                    or other.power_w < candidate.power_w
                    or other.area_mm2 < candidate.area_mm2
                )
            ):
                dominated = True
                break
        if not dominated:
            frontier.append(candidate)
    return frontier


def _check_execution(
    prepared: dict[str, tuple[Graph, int, int]],
    results: Sequence[PointResult],
    seed: int,
    queries: int,
) -> None:
    """Run a few queries at the best feasible point through the executor.

    Exercises the full runtime stack (verify gate, kernel driver, replay
    cache — repeated feeds hit the replay tier) and asserts bit-equality
    against the reference quantized executor at a *non-default* config.
    """
    from repro.runtime import NcoreExecutor, execute_quantized
    from repro.soc.cha import ChaSoc

    feasible = [r for r in results if r.feasible]
    if not feasible or queries < 1:
        return
    best = max(feasible, key=lambda r: (r.throughput_ips, r.point.label))
    name = sorted(prepared)[0]
    graph, _, _ = prepared[name]
    config = best.point.ncore_config()
    compiled = compile_graph(graph, config=config, name=name, cache=None).model
    executor = NcoreExecutor(compiled, soc=ChaSoc(ncore_config=config))
    rng = np.random.default_rng(seed)
    feeds = {
        input_name: rng.uniform(-1.0, 1.0, compiled.graph.tensor(input_name).shape).astype(
            np.float32
        )
        for input_name in compiled.graph.inputs
    }
    reference = execute_quantized(compiled.graph, feeds)
    for _ in range(queries):  # repeats exercise the replay tier
        outputs = executor.execute(feeds).outputs
        for tensor_name, expected in reference.items():
            np.testing.assert_array_equal(outputs[tensor_name], expected)


def run_sweep(
    points: Sequence[DesignPoint],
    models: Sequence[str] = DEFAULT_MODELS,
    seed: int = 0,
    execute_queries: int = 0,
    cache: CompileCache | None = None,
) -> SweepResult:
    """Score every design point; returns the full, deterministically ordered
    result set with the Pareto frontier marked.

    ``execute_queries > 0`` additionally runs that many queries at the
    best feasible point through the cycle-level runtime (replay tier and
    verify gate included), asserting bit-equality with the reference
    executor.
    """
    for name in models:
        if name not in PAPER_CHARACTERISTICS:
            raise KeyError(f"unknown model {name!r}")
    prepared = {name: _prepare_model(name) for name in sorted(set(models))}
    if cache is None:
        cache = CompileCache(capacity=max(1, len(points) * len(prepared)))
    scored = [_score_point(point, prepared, cache) for point in points]
    frontier_labels = {r.point.label for r in pareto_frontier(scored)}
    results = [
        PointResult(
            point=r.point,
            feasible=r.feasible,
            reason=r.reason,
            models=r.models,
            latency_ms=r.latency_ms,
            throughput_ips=r.throughput_ips,
            energy_mj=r.energy_mj,
            power_w=r.power_w,
            area_mm2=r.area_mm2,
            pareto=r.point.label in frontier_labels,
        )
        for r in scored
    ]
    _check_execution(prepared, results, seed, execute_queries)
    return SweepResult(
        points=results,
        models=tuple(sorted(set(models))),
        seed=seed,
        cache_hits=cache.stats.hits,
        cache_misses=cache.stats.misses,
    )
