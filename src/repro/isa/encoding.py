"""Bit-exact 128-bit encoding of Ncore instructions.

The paper states instructions are 128 bits wide (section IV-D.1) but does
not publish the field layout, so this module defines a concrete one that
fits the documented architecture into exactly 128 bits.  Field pressure is
resolved the way dense VLIW encodings usually are, with one union:

- *mode 0*: an optional OUT-unit op plus up to two NDU ops — the "typically
  two" case from section IV-D.3;
- *mode 1*: three NDU ops and no OUT op.

A handful of encodings are intentionally impossible and raise
:class:`EncodingError` (three NDU ops together with an OUT op, rotate
amounts outside 1..64, predicate register 7, repeat counts above 2048);
the kernel library never emits them.

Layout (bit 0 = LSB of the 128-bit little-endian word)::

    [  0: 4] seq.opcode            [ 31:60] NPU op (29 bits)
    [  4: 8] seq.arg               [ 60:61] union mode
    [  8:20] seq.arg2 (signed)     [ 61:..] mode 0: OUT op + 2x NDU op
    [ 20:31] repeat - 1                     mode 1: 3x NDU op
"""

from __future__ import annotations

from repro.dtypes import NcoreDType
from repro.isa.instruction import (
    Activation,
    Instruction,
    NDUOp,
    NDUOpcode,
    NPUOp,
    NPUOpcode,
    OutOp,
    OutOpcode,
    RotateDirection,
    SeqOp,
    SeqOpcode,
)
from repro.isa.operands import Operand, OperandKind

INSTRUCTION_BITS = 128
INSTRUCTION_BYTES = INSTRUCTION_BITS // 8

# Operand-kind code tables (3-bit fields).
_NDU_SRC_KINDS = (
    OperandKind.DATA_RAM,
    OperandKind.WEIGHT_RAM,
    OperandKind.IMMEDIATE,
    OperandKind.NDU_REG,
    OperandKind.OUT_LOW,
    OperandKind.OUT_HIGH,
    OperandKind.DLAST,
    OperandKind.ZERO,
)
_NPU_OPERAND_KINDS = (
    OperandKind.DATA_RAM,
    OperandKind.WEIGHT_RAM,
    OperandKind.NDU_REG,
    OperandKind.DLAST,
    OperandKind.ZERO,
    OperandKind.OUT_LOW,
    OperandKind.OUT_HIGH,
)

_SEQ_OPCODES = tuple(SeqOpcode)
_NPU_OPCODES = tuple(NPUOpcode)
_NDU_OPCODES = tuple(NDUOpcode)
_OUT_OPCODES = tuple(OutOpcode)
_ACTIVATIONS = tuple(Activation)
_DTYPES = (NcoreDType.INT8, NcoreDType.UINT8, NcoreDType.INT16, NcoreDType.BF16)

MAX_ENCODABLE_REPEAT = 1 << 11       # repeat stored as (repeat - 1) in 11 bits
MAX_SEQ_ARG = (1 << 4) - 1
MAX_SEQ_ARG2 = (1 << 11) - 1         # arg2 is a 12-bit signed field
MIN_SEQ_ARG2 = -(1 << 11)


class EncodingError(ValueError):
    """Raised when an instruction has no 128-bit encoding."""


class _BitWriter:
    """Accumulates fields LSB-first into one big integer."""

    def __init__(self) -> None:
        self.value = 0
        self.position = 0

    def write(self, value: int, width: int, what: str) -> None:
        if not 0 <= value < (1 << width):
            raise EncodingError(f"{what} value {value} does not fit in {width} bits")
        self.value |= value << self.position
        self.position += width

    def write_signed(self, value: int, width: int, what: str) -> None:
        lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
        if not lo <= value <= hi:
            raise EncodingError(f"{what} value {value} outside [{lo}, {hi}]")
        self.write(value & ((1 << width) - 1), width, what)

    def pad_to(self, position: int) -> None:
        if self.position > position:
            raise AssertionError("encoding overflowed its field budget")
        self.position = position


class _BitReader:
    """Reads fields LSB-first from one big integer."""

    def __init__(self, value: int) -> None:
        self.value = value
        self.position = 0

    def read(self, width: int) -> int:
        out = (self.value >> self.position) & ((1 << width) - 1)
        self.position += width
        return out

    def read_signed(self, width: int) -> int:
        raw = self.read(width)
        if raw >= 1 << (width - 1):
            raw -= 1 << width
        return raw

    def seek(self, position: int) -> None:
        self.position = position


def _encode_operand(
    w: _BitWriter, operand: Operand, kinds: tuple[OperandKind, ...], what: str
) -> None:
    try:
        code = kinds.index(operand.kind)
    except ValueError:
        raise EncodingError(f"{what} cannot source from {operand.kind.name}") from None
    w.write(code, 3, f"{what} kind")
    w.write(operand.index, 6, f"{what} index")
    w.write(int(operand.increment), 1, f"{what} increment")


def _decode_operand(r: _BitReader, kinds: tuple[OperandKind, ...]) -> Operand:
    kind = kinds[r.read(3) % len(kinds)]
    index = r.read(6)
    increment = bool(r.read(1))
    return Operand(kind, index, increment)


def _encode_ndu(w: _BitWriter, op: NDUOp) -> None:
    w.write(_NDU_OPCODES.index(op.opcode), 3, "NDU opcode")
    w.write(op.dst, 2, "NDU dst")
    _encode_operand(w, op.src, _NDU_SRC_KINDS, "NDU src")
    # 7-bit variant field, meaning depends on the opcode.
    if op.opcode is NDUOpcode.ROTATE:
        if not 1 <= op.amount <= 64:
            raise EncodingError(f"rotate amount {op.amount} not encodable (1..64)")
        w.write(int(op.direction is RotateDirection.RIGHT), 1, "rotate direction")
        w.write(op.amount - 1, 6, "rotate amount")
    elif op.opcode is NDUOpcode.BROADCAST64:
        w.write(op.index_reg, 3, "broadcast index reg")
        w.write(int(op.index_increment), 1, "broadcast increment")
        w.write(0, 3, "pad")
    elif op.opcode is NDUOpcode.MERGE:
        if op.src2 is None or op.src2.kind is not OperandKind.NDU_REG:
            raise EncodingError("merge mask must be an NDU register")
        w.write(op.src2.index, 2, "merge mask reg")
        w.write(0, 5, "pad")
    else:
        w.write(0, 7, "pad")


def _decode_ndu(r: _BitReader) -> NDUOp:
    opcode = _NDU_OPCODES[r.read(3) % len(_NDU_OPCODES)]
    dst = r.read(2)
    src = _decode_operand(r, _NDU_SRC_KINDS)
    if opcode is NDUOpcode.ROTATE:
        direction = RotateDirection.RIGHT if r.read(1) else RotateDirection.LEFT
        amount = r.read(6) + 1
        return NDUOp(opcode, dst, src, amount=amount, direction=direction)
    if opcode is NDUOpcode.BROADCAST64:
        index_reg = r.read(3)
        index_increment = bool(r.read(1))
        r.read(3)
        return NDUOp(
            opcode, dst, src, index_reg=index_reg, index_increment=index_increment
        )
    if opcode is NDUOpcode.MERGE:
        mask = Operand(OperandKind.NDU_REG, r.read(2))
        r.read(5)
        return NDUOp(opcode, dst, src, src2=mask)
    r.read(7)
    return NDUOp(opcode, dst, src)


def _encode_npu(w: _BitWriter, op: NPUOp | None) -> None:
    w.write(int(op is not None), 1, "NPU present")
    if op is None:
        w.pad_to(w.position + 28)
        return
    w.write(_NPU_OPCODES.index(op.opcode), 4, "NPU opcode")
    _encode_operand_narrow(w, op.data, "NPU data")
    w.write(op.data_shift, 2, "NPU data shift")
    _encode_operand_narrow(w, op.weight, "NPU weight")
    w.write(int(op.accumulate), 1, "NPU accumulate")
    w.write(int(op.zero_offset), 1, "NPU zero offset")
    w.write(int(op.from_neighbor), 1, "NPU neighbor")
    if op.predicate is not None and op.predicate >= 7:
        raise EncodingError("predicate register 7 is not encodable")
    w.write(0 if op.predicate is None else op.predicate + 1, 3, "NPU predicate")
    w.write(_DTYPES.index(op.dtype), 2, "NPU dtype")


def _encode_operand_narrow(w: _BitWriter, operand: Operand, what: str) -> None:
    """NPU operands use a 3-bit index field (registers only, no immediates)."""
    try:
        code = _NPU_OPERAND_KINDS.index(operand.kind)
    except ValueError:
        raise EncodingError(f"{what} cannot source from {operand.kind.name}") from None
    w.write(code, 3, f"{what} kind")
    w.write(operand.index, 3, f"{what} index")
    w.write(int(operand.increment), 1, f"{what} increment")


def _decode_operand_narrow(r: _BitReader) -> Operand:
    kind = _NPU_OPERAND_KINDS[r.read(3) % len(_NPU_OPERAND_KINDS)]
    index = r.read(3)
    increment = bool(r.read(1))
    return Operand(kind, index, increment)


def _decode_npu(r: _BitReader) -> NPUOp | None:
    start = r.position
    if not r.read(1):
        r.seek(start + 29)
        return None
    opcode = _NPU_OPCODES[r.read(4) % len(_NPU_OPCODES)]
    data = _decode_operand_narrow(r)
    data_shift = r.read(2)
    weight = _decode_operand_narrow(r)
    accumulate = bool(r.read(1))
    zero_offset = bool(r.read(1))
    from_neighbor = bool(r.read(1))
    pred_raw = r.read(3)
    dtype = _DTYPES[r.read(2)]
    return NPUOp(
        opcode,
        data,
        weight,
        accumulate=accumulate,
        data_shift=data_shift,
        zero_offset=zero_offset,
        from_neighbor=from_neighbor,
        predicate=None if pred_raw == 0 else pred_raw - 1,
        dtype=dtype,
    )


def _encode_out(w: _BitWriter, op: OutOp | None) -> None:
    w.write(int(op is not None), 1, "OUT present")
    if op is None:
        w.pad_to(w.position + 12)
        return
    w.write(_OUT_OPCODES.index(op.opcode), 2, "OUT opcode")
    w.write(_ACTIVATIONS.index(op.activation), 3, "OUT activation")
    w.write(op.dst_addr_reg, 3, "OUT dst reg")
    w.write(int(op.dst_increment), 1, "OUT dst increment")
    w.write(int(op.source_high), 1, "OUT high")
    w.write(_DTYPES.index(op.dtype), 2, "OUT dtype")


def _decode_out(r: _BitReader) -> OutOp | None:
    start = r.position
    if not r.read(1):
        r.seek(start + 13)
        return None
    opcode = _OUT_OPCODES[r.read(2) % len(_OUT_OPCODES)]
    activation = _ACTIVATIONS[r.read(3) % len(_ACTIVATIONS)]
    dst_addr_reg = r.read(3)
    dst_increment = bool(r.read(1))
    source_high = bool(r.read(1))
    dtype = _DTYPES[r.read(2)]
    return OutOp(opcode, activation, dst_addr_reg, dst_increment, source_high, dtype)


def encode(instruction: Instruction) -> bytes:
    """Encode an instruction into its 16-byte little-endian word."""
    w = _BitWriter()
    seq = instruction.seq
    w.write(_SEQ_OPCODES.index(seq.opcode), 4, "seq opcode")
    w.write(seq.arg, 4, "seq arg")
    w.write_signed(seq.arg2, 12, "seq arg2")
    if not 1 <= instruction.repeat <= MAX_ENCODABLE_REPEAT:
        raise EncodingError(
            f"repeat {instruction.repeat} not encodable (1..{MAX_ENCODABLE_REPEAT})"
        )
    w.write(instruction.repeat - 1, 11, "repeat")
    _encode_npu(w, instruction.npu)
    assert w.position == 60
    ndu_ops = instruction.ndu_ops
    if len(ndu_ops) == 3:
        if instruction.out is not None:
            raise EncodingError(
                "three NDU ops and an OUT op cannot issue in the same instruction"
            )
        w.write(1, 1, "union mode")
        for op in ndu_ops:
            _encode_ndu(w, op)
    else:
        w.write(0, 1, "union mode")
        _encode_out(w, instruction.out)
        for op in ndu_ops:
            w.write(1, 1, "NDU present")
            _encode_ndu(w, op)
        for _ in range(2 - len(ndu_ops)):
            w.write(0, 1, "NDU present")
            w.pad_to(w.position + 22)
    if w.position > INSTRUCTION_BITS:
        raise AssertionError(f"encoding used {w.position} bits")  # pragma: no cover
    return w.value.to_bytes(INSTRUCTION_BYTES, "little")


def decode(word: bytes) -> Instruction:
    """Decode a 16-byte word back into an :class:`Instruction`."""
    if len(word) != INSTRUCTION_BYTES:
        raise EncodingError(f"instruction words are {INSTRUCTION_BYTES} bytes")
    r = _BitReader(int.from_bytes(word, "little"))
    seq_opcode = _SEQ_OPCODES[r.read(4) % len(_SEQ_OPCODES)]
    seq_arg = r.read(4)
    seq_arg2 = r.read_signed(12)
    repeat = r.read(11) + 1
    npu = _decode_npu(r)
    assert r.position == 60
    ndu_ops: list[NDUOp] = []
    out = None
    if r.read(1):  # mode 1: three NDU ops
        for _ in range(3):
            ndu_ops.append(_decode_ndu(r))
    else:
        out = _decode_out(r)
        for _ in range(2):
            if r.read(1):
                ndu_ops.append(_decode_ndu(r))
            else:
                r.seek(r.position + 22)
    return Instruction(
        ndu_ops=tuple(ndu_ops),
        npu=npu,
        out=out,
        seq=SeqOp(seq_opcode, seq_arg, seq_arg2),
        repeat=repeat,
    )
