"""The Ncore instruction set: 128-bit VLIW-like instructions.

Section IV-D.1 of the paper: instructions are 128 bits wide and "similar to
VLIW"; every instruction executes in a single clock cycle, and an entire
convolution inner loop can be encoded in one instruction that executes one
iteration per clock (Fig. 6).  This package models that ISA:

- :mod:`repro.isa.operands`    -- operand sources/sinks (RAMs, NDU regs, ...).
- :mod:`repro.isa.instruction` -- the instruction word and its unit ops.
- :mod:`repro.isa.encoding`    -- bit-exact 128-bit encoder/decoder.
- :mod:`repro.isa.assembler`   -- textual assembly for the internal code
  representation shown in Fig. 6.
"""

from repro.isa.assembler import AssemblyError, assemble, disassemble
from repro.isa.encoding import EncodingError, decode, encode
from repro.isa.instruction import (
    DMAOp,
    Instruction,
    NDUOp,
    NDUOpcode,
    NPUOp,
    NPUOpcode,
    OutOp,
    OutOpcode,
    SeqOp,
    SeqOpcode,
)
from repro.isa.operands import Operand, OperandKind

__all__ = [
    "AssemblyError",
    "DMAOp",
    "EncodingError",
    "Instruction",
    "NDUOp",
    "NDUOpcode",
    "NPUOp",
    "NPUOpcode",
    "Operand",
    "OperandKind",
    "OutOp",
    "OutOpcode",
    "SeqOp",
    "SeqOpcode",
    "assemble",
    "decode",
    "disassemble",
    "encode",
]
