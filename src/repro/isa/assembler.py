"""Assembler for Ncore's internal code representation.

The paper shows a convolution inner loop in Ncore's internal code syntax
(Fig. 6) and notes "this level of code is abstracted away from the end user
via the tooling".  This assembler is that tooling layer: the NKL emits
instruction objects directly, but hand-written kernels, the instruction ROM
contents and tests use this textual form.

Grammar (one statement per line, ``;`` starts a comment)::

    setaddr a0, 5          sequencer ops
    addaddr a0, -1
    loopn 16 / endloop     multi-instruction hardware loop
    dmastart 0 / dmawait 3
    event 7 / break / nop / halt

    bypass n0, dram[a0++]          NDU ops (dst register first)
    rotl n1, n1, 64                rotate left/right by 1..64 bytes
    rotr n1, n1, 8
    broadcast64 n2, wtram[a3], a5, inc
    expand n3, wtram[a2]
    merge n0, dram[a1], n2

    mac n0>>1, n1                  NPU ops: data, weight, then flags
    add.int16 dram[a0], n2, noacc, zoff, neighbor, pred3

    requant.uint8 relu             OUT ops
    store a6, inc
    storeacc a6

    loop 3 {                       fused block: every statement inside
      broadcast64 n1, wtram[a3], a5, inc     becomes ONE instruction with
      mac dlast>>1, n1                       a hardware repeat count, as in
      rotl n0, n0, 64                        Fig. 6 of the paper
    }

Statements may also be fused explicitly on one line with ``|``::

    bypass n0, dram[a0++] | mac n0, wtram[a1++] | requant relu
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.dtypes import NcoreDType
from repro.isa.instruction import (
    Activation,
    Instruction,
    NDUOp,
    NDUOpcode,
    NPUOp,
    NPUOpcode,
    OutOp,
    OutOpcode,
    RotateDirection,
    SeqOp,
    SeqOpcode,
)
from repro.isa.instruction import MAX_REPEAT
from repro.isa.operands import (
    NUM_ADDR_REGS,
    NUM_NDU_REGS,
    NUM_PRED_REGS,
    Operand,
    OperandKind,
)


class AssemblyError(ValueError):
    """Raised on malformed assembly input."""

    def __init__(self, message: str, line_no: int | None = None) -> None:
        self.line_no = line_no
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


_OPERAND_RE = re.compile(
    r"^(?:"
    r"(?P<ram>dram|wtram)\[a(?P<areg>\d+)(?P<inc>\+\+)?\]"
    r"|n(?P<ndu>\d+)"
    r"|#(?P<imm>\d+)"
    r"|(?P<named>dlast|out_lo|out_hi|zero|acc)"
    r")$"
)


def _check_reg(index: int, limit: int, what: str, line_no: int) -> int:
    """Range-check a register index at assembly time (not at execution)."""
    if not 0 <= index < limit:
        raise AssemblyError(f"{what} {index} out of range (0..{limit - 1})", line_no)
    return index


def _addr_reg(text: str, what: str, line_no: int) -> int:
    match = re.fullmatch(r"a(\d+)", text)
    if match is None:
        raise AssemblyError(f"{what} must be an address register 'aR'", line_no)
    return _check_reg(int(match[1]), NUM_ADDR_REGS, f"{what} a-register", line_no)


def _check_repeat(count: int, what: str, line_no: int) -> int:
    if not 1 <= count <= MAX_REPEAT:
        raise AssemblyError(f"{what} {count} outside 1..{MAX_REPEAT}", line_no)
    return count

_NAMED_KINDS = {
    "dlast": OperandKind.DLAST,
    "out_lo": OperandKind.OUT_LOW,
    "out_hi": OperandKind.OUT_HIGH,
    "zero": OperandKind.ZERO,
    "acc": OperandKind.ACC,
}

_SIMPLE_SEQ = {
    "halt": SeqOpcode.HALT,
    "nop": SeqOpcode.NOP,
    "endloop": SeqOpcode.LOOP_END,
    "break": SeqOpcode.BREAK,
}

_NPU_MNEMONICS = {
    "mac": NPUOpcode.MAC,
    "add": NPUOpcode.ADD,
    "sub": NPUOpcode.SUB,
    "min": NPUOpcode.MIN,
    "max": NPUOpcode.MAX,
    "and": NPUOpcode.AND,
    "or": NPUOpcode.OR,
    "xor": NPUOpcode.XOR,
    "cmpgt": NPUOpcode.CMPGT,
}

_DTYPE_SUFFIXES = {
    "int8": NcoreDType.INT8,
    "uint8": NcoreDType.UINT8,
    "int16": NcoreDType.INT16,
    "bf16": NcoreDType.BF16,
}

_ACT_NAMES = {a.value: a for a in Activation}


def _parse_operand(text: str, line_no: int) -> Operand:
    match = _OPERAND_RE.match(text.strip())
    if match is None:
        raise AssemblyError(f"cannot parse operand {text!r}", line_no)
    if match["ram"]:
        kind = OperandKind.DATA_RAM if match["ram"] == "dram" else OperandKind.WEIGHT_RAM
        index = _check_reg(int(match["areg"]), NUM_ADDR_REGS, "address register", line_no)
        return Operand(kind, index, match["inc"] is not None)
    if match["ndu"] is not None:
        index = _check_reg(int(match["ndu"]), NUM_NDU_REGS, "NDU register", line_no)
        return Operand(OperandKind.NDU_REG, index)
    if match["imm"] is not None:
        value = int(match["imm"])
        if value > 63:
            raise AssemblyError(f"immediate {value} exceeds 63", line_no)
        return Operand(OperandKind.IMMEDIATE, value)
    return Operand(_NAMED_KINDS[match["named"]])


def _split_args(rest: str) -> list[str]:
    return [part.strip() for part in rest.split(",") if part.strip()] if rest.strip() else []


@dataclass
class _PendingInstruction:
    """Unit ops collected for one (possibly fused) instruction."""

    ndu_ops: list[NDUOp] = field(default_factory=list)
    npu: NPUOp | None = None
    out: OutOp | None = None
    seq: SeqOp | None = None
    repeat: int = 1

    def build(self, line_no: int) -> Instruction:
        try:
            return Instruction(
                ndu_ops=tuple(self.ndu_ops),
                npu=self.npu,
                out=self.out,
                seq=self.seq if self.seq is not None else SeqOp(SeqOpcode.NOP),
                repeat=self.repeat,
            )
        except ValueError as exc:
            raise AssemblyError(str(exc), line_no) from exc


def _parse_statement(stmt: str, pending: _PendingInstruction, line_no: int) -> None:
    """Parse one unit-op statement into the pending instruction."""
    parts = stmt.split(None, 1)
    mnemonic = parts[0].lower()
    rest = parts[1] if len(parts) > 1 else ""
    base, _, suffix = mnemonic.partition(".")
    dtype = None
    if suffix:
        if suffix not in _DTYPE_SUFFIXES:
            raise AssemblyError(f"unknown dtype suffix {suffix!r}", line_no)
        dtype = _DTYPE_SUFFIXES[suffix]

    if base in _SIMPLE_SEQ:
        _set_seq(pending, SeqOp(_SIMPLE_SEQ[base]), line_no)
    elif base in ("setaddr", "addaddr"):
        args = _split_args(rest)
        if len(args) != 2:
            raise AssemblyError(f"{base} expects 'aR, value'", line_no)
        reg = _addr_reg(args[0], base, line_no)
        opcode = SeqOpcode.SET_ADDR if base == "setaddr" else SeqOpcode.ADD_ADDR
        _set_seq(pending, _build_seq(opcode, reg, int(args[1]), line_no), line_no)
    elif base == "loopn":
        count = _check_repeat(int(rest.strip()), "loop trip count", line_no)
        _set_seq(pending, _build_seq(SeqOpcode.LOOP_BEGIN, 0, count, line_no), line_no)
    elif base == "dmastart":
        _set_seq(pending, _build_seq(SeqOpcode.DMA_START, int(rest.strip()), 0, line_no), line_no)
    elif base == "dmawait":
        _set_seq(pending, _build_seq(SeqOpcode.DMA_WAIT, int(rest.strip()), 0, line_no), line_no)
    elif base == "event":
        _set_seq(pending, _build_seq(SeqOpcode.EVENT, int(rest.strip()), 0, line_no), line_no)
    elif base in ("bypass", "rotl", "rotr", "broadcast64", "expand", "merge"):
        pending.ndu_ops.append(_parse_ndu(base, rest, line_no))
    elif base in _NPU_MNEMONICS:
        _set_npu(pending, _parse_npu(base, rest, dtype, line_no), line_no)
    elif base == "requant":
        _set_out(pending, _parse_requant(rest, dtype, line_no), line_no)
    elif base == "store":
        _set_out(pending, _parse_store(rest, dtype, line_no), line_no)
    elif base == "storeacc":
        args = _split_args(rest)
        if len(args) != 1:
            raise AssemblyError("storeacc expects 'aR'", line_no)
        reg = _addr_reg(args[0], "storeacc", line_no)
        _set_out(pending, OutOp(OutOpcode.STORE_ACC, dst_addr_reg=reg), line_no)
    else:
        raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line_no)


def _build_seq(opcode: SeqOpcode, arg: int, arg2: int, line_no: int) -> SeqOp:
    """Construct a SeqOp, converting its ValueError into a located
    AssemblyError (DMA descriptor / address register range checks)."""
    try:
        return SeqOp(opcode, arg, arg2)
    except ValueError as exc:
        raise AssemblyError(str(exc), line_no) from exc


def _set_seq(pending: _PendingInstruction, op: SeqOp, line_no: int) -> None:
    if pending.seq is not None:
        raise AssemblyError("multiple sequencer ops in one instruction", line_no)
    pending.seq = op


def _set_npu(pending: _PendingInstruction, op: NPUOp, line_no: int) -> None:
    if pending.npu is not None:
        raise AssemblyError("multiple NPU ops in one instruction", line_no)
    pending.npu = op


def _set_out(pending: _PendingInstruction, op: OutOp, line_no: int) -> None:
    if pending.out is not None:
        raise AssemblyError("multiple OUT ops in one instruction", line_no)
    pending.out = op


def _ndu_reg(text: str, what: str, line_no: int) -> int:
    match = re.fullmatch(r"n(\d+)", text)
    if match is None:
        raise AssemblyError(f"{what} must be an NDU register 'nD'", line_no)
    return _check_reg(int(match[1]), NUM_NDU_REGS, f"{what} n-register", line_no)


def _parse_ndu(base: str, rest: str, line_no: int) -> NDUOp:
    args = _split_args(rest)
    if not args:
        raise AssemblyError(f"{base} expects an NDU destination register first", line_no)
    dst = _ndu_reg(args[0], f"{base} destination", line_no)
    try:
        if base == "bypass":
            if len(args) != 2:
                raise AssemblyError("bypass expects 'nD, src'", line_no)
            return NDUOp(NDUOpcode.BYPASS, dst, _parse_operand(args[1], line_no))
        if base in ("rotl", "rotr"):
            if len(args) != 3:
                raise AssemblyError(f"{base} expects 'nD, src, amount'", line_no)
            direction = RotateDirection.LEFT if base == "rotl" else RotateDirection.RIGHT
            return NDUOp(
                NDUOpcode.ROTATE,
                dst,
                _parse_operand(args[1], line_no),
                amount=int(args[2]),
                direction=direction,
            )
        if base == "broadcast64":
            if len(args) not in (3, 4):
                raise AssemblyError("broadcast64 expects 'nD, src, aI[, inc]'", line_no)
            index_reg = _addr_reg(args[2], "broadcast64 index", line_no)
            increment = len(args) == 4
            if increment and args[3] != "inc":
                raise AssemblyError(f"unexpected token {args[3]!r}", line_no)
            return NDUOp(
                NDUOpcode.BROADCAST64,
                dst,
                _parse_operand(args[1], line_no),
                index_reg=index_reg,
                index_increment=increment,
            )
        if base == "expand":
            if len(args) != 2:
                raise AssemblyError("expand expects 'nD, src'", line_no)
            return NDUOp(NDUOpcode.EXPAND, dst, _parse_operand(args[1], line_no))
        # merge
        if len(args) != 3:
            raise AssemblyError("merge expects 'nD, src, nMask'", line_no)
        mask = _ndu_reg(args[2], "merge mask", line_no)
        return NDUOp(
            NDUOpcode.MERGE,
            dst,
            _parse_operand(args[1], line_no),
            src2=Operand(OperandKind.NDU_REG, mask),
        )
    except ValueError as exc:
        if isinstance(exc, AssemblyError):
            raise
        raise AssemblyError(str(exc), line_no) from exc


def _parse_npu(
    base: str, rest: str, dtype: NcoreDType | None, line_no: int
) -> NPUOp:
    args = _split_args(rest)
    if len(args) < 2:
        raise AssemblyError(f"{base} expects 'data, weight[, flags...]'", line_no)
    data_text = args[0]
    data_shift = 0
    if ">>" in data_text:
        data_text, _, shift_text = data_text.partition(">>")
        data_shift = int(shift_text.strip())
    data = _parse_operand(data_text, line_no)
    weight = _parse_operand(args[1], line_no)
    accumulate, zero_offset, from_neighbor, predicate = True, False, False, None
    for flag in args[2:]:
        flag = flag.lower()
        if flag == "noacc":
            accumulate = False
        elif flag == "zoff":
            zero_offset = True
        elif flag == "neighbor":
            from_neighbor = True
        elif re.fullmatch(r"pred\d+", flag):
            predicate = _check_reg(
                int(flag[4:]), NUM_PRED_REGS, "predicate register", line_no
            )
        else:
            raise AssemblyError(f"unknown NPU flag {flag!r}", line_no)
    try:
        return NPUOp(
            _NPU_MNEMONICS[base],
            data,
            weight,
            accumulate=accumulate,
            data_shift=data_shift,
            zero_offset=zero_offset,
            from_neighbor=from_neighbor,
            predicate=predicate,
            dtype=dtype if dtype is not None else NcoreDType.INT8,
        )
    except ValueError as exc:
        raise AssemblyError(str(exc), line_no) from exc


def _parse_requant(rest: str, dtype: NcoreDType | None, line_no: int) -> OutOp:
    args = _split_args(rest)
    activation = Activation.NONE
    if args:
        if len(args) != 1 or args[0].lower() not in _ACT_NAMES:
            raise AssemblyError(f"requant expects an optional activation, got {args}", line_no)
        activation = _ACT_NAMES[args[0].lower()]
    return OutOp(
        OutOpcode.REQUANT,
        activation=activation,
        dtype=dtype if dtype is not None else NcoreDType.INT8,
    )


def _parse_store(rest: str, dtype: NcoreDType | None, line_no: int) -> OutOp:
    args = _split_args(rest)
    if not args:
        raise AssemblyError("store expects 'aR[, inc][, high]'", line_no)
    reg = _addr_reg(args[0], "store", line_no)
    increment = "inc" in [a.lower() for a in args[1:]]
    high = "high" in [a.lower() for a in args[1:]]
    for extra in args[1:]:
        if extra.lower() not in ("inc", "high"):
            raise AssemblyError(f"unknown store flag {extra!r}", line_no)
    return OutOp(
        OutOpcode.STORE,
        dst_addr_reg=reg,
        dst_increment=increment,
        source_high=high,
        dtype=dtype if dtype is not None else NcoreDType.INT8,
    )


def assemble(source: str) -> list[Instruction]:
    """Assemble source text into a list of instructions."""
    instructions: list[Instruction] = []
    fused: _PendingInstruction | None = None
    fused_start_line = 0
    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        loop_match = re.fullmatch(r"loop\s+(\d+)\s*\{", line)
        if loop_match:
            if fused is not None:
                raise AssemblyError("nested fused loops are not supported", line_no)
            repeat = _check_repeat(int(loop_match[1]), "repeat count", line_no)
            fused = _PendingInstruction(repeat=repeat)
            fused_start_line = line_no
            continue
        if line == "}":
            if fused is None:
                raise AssemblyError("unmatched '}'", line_no)
            instructions.append(fused.build(fused_start_line))
            fused = None
            continue
        target = fused if fused is not None else _PendingInstruction()
        for stmt in line.split("|"):
            stmt = stmt.strip()
            if stmt:
                _parse_statement(stmt, target, line_no)
        if fused is None:
            instructions.append(target.build(line_no))
    if fused is not None:
        raise AssemblyError("unterminated fused loop block", fused_start_line)
    return instructions


def _format_operand(operand: Operand) -> str:
    return str(operand)


def _format_ndu(op: NDUOp) -> str:
    if op.opcode is NDUOpcode.BYPASS:
        return f"bypass n{op.dst}, {op.src}"
    if op.opcode is NDUOpcode.ROTATE:
        mnem = "rotl" if op.direction is RotateDirection.LEFT else "rotr"
        return f"{mnem} n{op.dst}, {op.src}, {op.amount}"
    if op.opcode is NDUOpcode.BROADCAST64:
        inc = ", inc" if op.index_increment else ""
        return f"broadcast64 n{op.dst}, {op.src}, a{op.index_reg}{inc}"
    if op.opcode is NDUOpcode.EXPAND:
        return f"expand n{op.dst}, {op.src}"
    return f"merge n{op.dst}, {op.src}, n{op.src2.index}"


def _format_npu(op: NPUOp) -> str:
    mnem = {v: k for k, v in _NPU_MNEMONICS.items()}[op.opcode]
    if op.dtype is not NcoreDType.INT8:
        mnem += f".{op.dtype.value}"
    data = str(op.data)
    if op.data_shift:
        data += f">>{op.data_shift}"
    flags = []
    if not op.accumulate:
        flags.append("noacc")
    if op.zero_offset:
        flags.append("zoff")
    if op.from_neighbor:
        flags.append("neighbor")
    if op.predicate is not None:
        flags.append(f"pred{op.predicate}")
    tail = (", " + ", ".join(flags)) if flags else ""
    return f"{mnem} {data}, {op.weight}{tail}"


def _format_out(op: OutOp) -> str:
    if op.opcode is OutOpcode.REQUANT:
        suffix = "" if op.dtype is NcoreDType.INT8 else f".{op.dtype.value}"
        act = "" if op.activation is Activation.NONE else f" {op.activation.value}"
        return f"requant{suffix}{act}"
    if op.opcode is OutOpcode.STORE_ACC:
        return f"storeacc a{op.dst_addr_reg}"
    suffix = "" if op.dtype is NcoreDType.INT8 else f".{op.dtype.value}"
    flags = []
    if op.dst_increment:
        flags.append("inc")
    if op.source_high:
        flags.append("high")
    tail = (", " + ", ".join(flags)) if flags else ""
    return f"store{suffix} a{op.dst_addr_reg}{tail}"


def _format_seq(op: SeqOp) -> str | None:
    if op.opcode is SeqOpcode.NOP:
        return None
    if op.opcode is SeqOpcode.SET_ADDR:
        return f"setaddr a{op.arg}, {op.arg2}"
    if op.opcode is SeqOpcode.ADD_ADDR:
        return f"addaddr a{op.arg}, {op.arg2}"
    if op.opcode is SeqOpcode.LOOP_BEGIN:
        return f"loopn {op.arg2}"
    if op.opcode is SeqOpcode.DMA_START:
        return f"dmastart {op.arg}"
    if op.opcode is SeqOpcode.DMA_WAIT:
        return f"dmawait {op.arg}"
    if op.opcode is SeqOpcode.EVENT:
        return f"event {op.arg}"
    return {SeqOpcode.HALT: "halt", SeqOpcode.LOOP_END: "endloop", SeqOpcode.BREAK: "break"}[
        op.opcode
    ]


def disassemble(instructions: list[Instruction]) -> str:
    """Produce canonical assembly text that re-assembles to the same program."""
    lines = []
    for instruction in instructions:
        statements = [_format_ndu(op) for op in instruction.ndu_ops]
        if instruction.npu is not None:
            statements.append(_format_npu(instruction.npu))
        if instruction.out is not None:
            statements.append(_format_out(instruction.out))
        seq_text = _format_seq(instruction.seq)
        if seq_text is not None:
            statements.append(seq_text)
        if not statements:
            statements = ["nop"]
        if instruction.repeat > 1:
            lines.append(f"loop {instruction.repeat} {{")
            lines.extend(f"  {stmt}" for stmt in statements)
            lines.append("}")
        else:
            lines.append(" | ".join(statements))
    return "\n".join(lines) + "\n"
