"""The Ncore 128-bit VLIW-like instruction word.

One instruction can direct all three execution-pipeline units at once —
the NDU (neural data unit), NPU (neural processing unit) and OUT (output
unit) — plus the instruction sequencer, and carries a hardware repeat count
so that a whole convolution inner loop fits in a single instruction
executing one iteration per clock (section IV-D, Fig. 6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.dtypes import NcoreDType
from repro.isa.operands import (
    NUM_ADDR_REGS,
    NUM_DMA_DESCRIPTORS,
    NUM_NDU_REGS,
    NUM_PRED_REGS,
    Operand,
)

# Maximum NDU micro-ops per instruction: "up to three (typically two) of
# these operations in parallel" (section IV-D.3).
MAX_NDU_OPS = 3

# Hardware repeat counts are held in a 16-bit field.
MAX_REPEAT = (1 << 16) - 1

# NDU rotation moves at most 64 bytes per clock (section IV-D.3).
MAX_ROTATE_PER_CLOCK = 64


class NDUOpcode(enum.Enum):
    """NDU operations (section IV-D.3)."""

    BYPASS = "bypass"            # copy a source row to an NDU register
    ROTATE = "rotate"            # rotate a row left/right, <=64 B per clock
    BROADCAST64 = "broadcast64"  # broadcast one byte across each 64-B group
    EXPAND = "expand"            # decompress a zero-compressed weight block
    MERGE = "merge"              # masked merge of input with output


class NPUOpcode(enum.Enum):
    """NPU operations (section IV-D.4)."""

    NOP = "nop"
    MAC = "mac"      # acc (+)= data * weight
    ADD = "add"      # acc (+)= data + weight
    SUB = "sub"      # acc (+)= data - weight
    MIN = "min"
    MAX = "max"
    AND = "and"
    OR = "or"
    XOR = "xor"
    CMPGT = "cmpgt"  # set predication register from data > weight


class OutOpcode(enum.Enum):
    """OUT unit operations (section IV-D.5)."""

    NOP = "nop"
    REQUANT = "requant"    # requantize acc -> 8/16-bit, apply activation
    STORE = "store"        # store an OUT register row to data RAM
    STORE_ACC = "storeacc"  # spill raw 32-bit accumulators (4 rows)


class Activation(enum.Enum):
    """Activations applied by the OUT unit (section IV-D.5)."""

    NONE = "none"
    RELU = "relu"
    RELU6 = "relu6"
    TANH = "tanh"
    SIGMOID = "sigmoid"


class SeqOpcode(enum.Enum):
    """Instruction-sequencer operations (section IV-D.1)."""

    NOP = "nop"
    HALT = "halt"
    LOOP_BEGIN = "loop"     # push a hardware loop counter, arg = trip count
    LOOP_END = "endloop"    # decrement counter, branch back if nonzero
    SET_ADDR = "setaddr"    # load an address register with an immediate row
    ADD_ADDR = "addaddr"    # add a signed immediate to an address register
    DMA_START = "dmastart"  # kick a DMA descriptor (arg = descriptor index)
    DMA_WAIT = "dmawait"    # stall until DMA engine group is idle
    EVENT = "event"         # write a tag into the 1024-entry event log
    BREAK = "break"         # breakpoint (used by n-step debugging)


class RotateDirection(enum.Enum):
    LEFT = "left"
    RIGHT = "right"


@dataclass(frozen=True)
class NDUOp:
    """One NDU micro-op.

    ``dst`` is the NDU output register written (0..3).  ``amount`` is the
    rotate distance in bytes (<=64 per clock; larger logical rotations are
    composed via the repeat field), or the group-index register for
    BROADCAST64 (the ``addr[5]`` role in Fig. 6's
    ``broadcast64(wtram[addr[3]], addr[5], increment)``).
    """

    opcode: NDUOpcode
    dst: int
    src: Operand
    src2: Operand | None = None  # merge mask / expand metadata source
    amount: int = 0
    direction: RotateDirection = RotateDirection.LEFT
    index_reg: int = 0           # byte-index address register (broadcast64)
    index_increment: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.dst < NUM_NDU_REGS:
            raise ValueError(f"NDU dst register {self.dst} out of range")
        if self.opcode is NDUOpcode.ROTATE and not 0 <= self.amount <= MAX_ROTATE_PER_CLOCK:
            raise ValueError(
                f"rotate amount {self.amount} exceeds {MAX_ROTATE_PER_CLOCK} B/clock"
            )
        if not 0 <= self.index_reg < NUM_ADDR_REGS:
            raise ValueError(f"index register {self.index_reg} out of range")
        if self.opcode is NDUOpcode.MERGE and self.src2 is None:
            raise ValueError("merge requires a mask source (src2)")


@dataclass(frozen=True)
class NPUOp:
    """One NPU operation across all 4096 byte lanes.

    ``data_shift`` is the small pre-shift applied to the data operand (the
    ``>> 1`` in Fig. 6).  ``zero_offset`` enables the unsigned-8-bit to
    signed-9-bit conversion by subtracting the configured zero offsets.
    ``from_neighbor`` takes the data input from the adjacent slice's NPU
    with wraparound — the full-width "slide" used by the convolution
    algorithms (section IV-D.4).
    """

    opcode: NPUOpcode
    data: Operand
    weight: Operand
    accumulate: bool = True
    data_shift: int = 0
    zero_offset: bool = False
    from_neighbor: bool = False
    predicate: int | None = None
    dtype: NcoreDType = NcoreDType.INT8

    def __post_init__(self) -> None:
        if not 0 <= self.data_shift <= 3:
            raise ValueError("data shift is a 2-bit field (0..3)")
        if self.predicate is not None and not 0 <= self.predicate < NUM_PRED_REGS:
            raise ValueError(f"predicate register {self.predicate} out of range")


@dataclass(frozen=True)
class OutOp:
    """One OUT-unit operation.

    REQUANT consumes the 32-bit accumulators and produces narrow results in
    the OUT low/high byte registers using the requantization configuration
    registers (multiplier / shift / offset), then applies ``activation``.
    STORE writes an OUT register row to the data RAM row addressed by
    ``addr[dst_addr_reg]``.
    """

    opcode: OutOpcode
    activation: Activation = Activation.NONE
    dst_addr_reg: int = 0
    dst_increment: bool = False
    source_high: bool = False  # STORE the high-byte register (16-bit types)
    dtype: NcoreDType = NcoreDType.INT8

    def __post_init__(self) -> None:
        if not 0 <= self.dst_addr_reg < NUM_ADDR_REGS:
            raise ValueError(f"store address register {self.dst_addr_reg} out of range")


@dataclass(frozen=True)
class SeqOp:
    """One sequencer operation; ``arg``/``arg2`` meaning depends on opcode.

    - LOOP_BEGIN: arg = trip count.
    - SET_ADDR / ADD_ADDR: arg = address register, arg2 = immediate value.
    - DMA_START / DMA_WAIT: arg = descriptor index / engine mask.
    - EVENT: arg = event tag.
    """

    opcode: SeqOpcode
    arg: int = 0
    arg2: int = 0

    #: DMA_WAIT engine groups: 0 = both, 1 = read, 2 = write, 3 = both.
    DMA_WAIT_GROUPS = frozenset({0, 1, 2, 3})

    def __post_init__(self) -> None:
        if (self.opcode in (SeqOpcode.SET_ADDR, SeqOpcode.ADD_ADDR)
                and not 0 <= self.arg < NUM_ADDR_REGS):
            raise ValueError(f"address register {self.arg} out of range")
        if self.opcode is SeqOpcode.DMA_START and not 0 <= self.arg < NUM_DMA_DESCRIPTORS:
            raise ValueError(f"DMA descriptor {self.arg} out of range")
        if self.opcode is SeqOpcode.DMA_WAIT and self.arg not in self.DMA_WAIT_GROUPS:
            raise ValueError(
                f"DMA_WAIT engine group {self.arg} out of range (0..3); "
                "an unknown group would wait on no engine at all"
            )
        if self.opcode is SeqOpcode.LOOP_BEGIN and self.arg2 < 1:
            raise ValueError("loop trip count must be >= 1")


@dataclass(frozen=True)
class DMAOp:
    """A DMA descriptor (not an instruction field).

    Descriptors live in memory-mapped registers configured by the runtime;
    the DMA_START sequencer op references them by index.  ``dram_addr`` is
    an offset inside the driver-configured DMA window (section IV-C), and
    ``rows`` counts RAM rows (4096 bytes each at the shipped CHA point;
    the machine config sets the actual width).
    """

    write_to_dram: bool
    target_weight_ram: bool
    ram_row: int
    rows: int
    dram_addr: int
    through_l3: bool = False

    def __post_init__(self) -> None:
        if self.rows < 1:
            raise ValueError("DMA transfer must move at least one row")
        if self.ram_row < 0 or self.dram_addr < 0:
            raise ValueError("DMA addresses must be non-negative")

    @property
    def num_bytes(self) -> int:
        return self.rows * 4096  # row-bytes-ok: isa/ cannot import ncore.config


@dataclass(frozen=True)
class Instruction:
    """One 128-bit Ncore instruction.

    All unit fields issue in the same clock; ``repeat`` re-executes the
    whole instruction that many times under a hardware counter, which is
    how Fig. 6's three-statement inner loop runs one iteration per cycle.
    """

    ndu_ops: tuple[NDUOp, ...] = ()
    npu: NPUOp | None = None
    out: OutOp | None = None
    seq: SeqOp = field(default_factory=lambda: SeqOp(SeqOpcode.NOP))
    repeat: int = 1

    def __post_init__(self) -> None:
        if len(self.ndu_ops) > MAX_NDU_OPS:
            raise ValueError(
                f"at most {MAX_NDU_OPS} NDU ops per instruction, got {len(self.ndu_ops)}"
            )
        if not 1 <= self.repeat <= MAX_REPEAT:
            raise ValueError(f"repeat count {self.repeat} outside 1..{MAX_REPEAT}")
        dsts = [op.dst for op in self.ndu_ops]
        if len(dsts) != len(set(dsts)):
            raise ValueError("parallel NDU ops must write distinct registers")

    @property
    def is_halt(self) -> bool:
        return self.seq.opcode is SeqOpcode.HALT

    # NDU operations whose effect on a row is a pure, statically known
    # function of (source row, address registers): EXPAND consumes a
    # variable-length stream (data-dependent), MERGE reads back the
    # destination register's previous value through a runtime mask.
    TRACE_NDU_OPCODES = frozenset(
        {NDUOpcode.BYPASS, NDUOpcode.ROTATE, NDUOpcode.BROADCAST64}
    )

    # Sequencer ops a fused trace can absorb: NOP costs nothing, ADD_ADDR
    # is a statically known address-register stride.  Everything else
    # either transfers control, talks to DMA/debug hardware, or (SET_ADDR)
    # makes the address recurrence non-affine.
    TRACE_SEQ_OPCODES = frozenset({SeqOpcode.NOP, SeqOpcode.ADD_ADDR})

    def fusion_blockers(self) -> tuple[str, ...]:
        """Why this instruction cannot join a statically fused trace.

        Trace-legality metadata for ``repro.ncore.fastpath``: an empty
        tuple means every unit op of this instruction is analyzable as a
        pure function of (RAM rows, NDU registers, address-register
        strides) — the precondition for executing all hardware-repeated
        iterations as one vectorized macro-op.  Each entry names the
        blocking unit/op so diagnostics can say *why* a loop fell back to
        the interpreter.
        """
        reasons: list[str] = []
        for op in self.ndu_ops:
            if op.opcode not in self.TRACE_NDU_OPCODES:
                reasons.append(f"ndu.{op.opcode.value}")
        if self.npu is not None and self.npu.opcode is NPUOpcode.CMPGT:
            # CMPGT rewrites a predicate register mid-trace, so later
            # iterations would see a different mask.
            reasons.append("npu.cmpgt")
        if self.out is not None and self.out.opcode is not OutOpcode.NOP:
            # OUT ops read intermediate accumulator values (REQUANT) or
            # write RAM rows that later iterations may read back (STORE).
            reasons.append(f"out.{self.out.opcode.value}")
        if self.seq.opcode not in self.TRACE_SEQ_OPCODES:
            reasons.append(f"seq.{self.seq.opcode.value}")
        return tuple(reasons)

    def issue_cycles(self) -> int:
        """Clock cycles for one issue of this instruction.

        8-bit NPU operations execute in one clock, bfloat16 in three and
        int16 in four (section IV-D.4); instructions without an NPU op take
        one clock.
        """
        if self.npu is None or self.npu.opcode is NPUOpcode.NOP:
            return 1
        from repro.dtypes import dtype_info

        return dtype_info(self.npu.dtype).npu_cycles

    def total_cycles(self) -> int:
        """Cycles for all hardware-repeated issues of this instruction."""
        return self.issue_cycles() * self.repeat
