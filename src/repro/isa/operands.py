"""Operand descriptors for Ncore instructions.

Section IV-D.3: NDU operations have nine possible input sources — the data
RAM, the weight RAM, instruction immediate data, the NDU's four output
registers, and the OUT unit's high / low byte output registers.  The NPU
additionally reads the latched data row (``d_last_latched`` in Fig. 6) and
its own accumulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OperandKind(enum.Enum):
    """Where an operand's 4096-byte row comes from (or goes to)."""

    DATA_RAM = "dram"       # data RAM row, addressed by an address register
    WEIGHT_RAM = "wtram"    # weight RAM row, addressed by an address register
    IMMEDIATE = "imm"       # instruction immediate, broadcast across the row
    NDU_REG = "n"           # one of the four NDU output registers
    OUT_LOW = "out_lo"      # OUT unit low-byte output register
    OUT_HIGH = "out_hi"     # OUT unit high-byte output register
    DLAST = "dlast"         # last data row latched into the execution pipe
    ACC = "acc"             # the NPU's 32-bit accumulators (OUT unit source)
    ZERO = "zero"           # all-zero row


# Kinds that address a RAM row through an address register.
RAM_KINDS = frozenset({OperandKind.DATA_RAM, OperandKind.WEIGHT_RAM})

# Architectural register-file sizes.
NUM_ADDR_REGS = 8      # addr[0..7], row/byte address registers
NUM_NDU_REGS = 4       # n0..n3, NDU output registers (section IV-D.3)
NUM_PRED_REGS = 8      # predication registers (section IV-D.4)
NUM_LOOP_COUNTERS = 4  # hardware loop counter stack depth
NUM_DMA_DESCRIPTORS = 8  # memory-mapped DMA descriptor slots


@dataclass(frozen=True)
class Operand:
    """One operand of a unit operation.

    ``index`` selects the register: for RAM kinds it is the *address
    register* whose value supplies the row number; for NDU_REG it is the NDU
    register number; for IMMEDIATE it is the immediate byte value (0..63,
    the field width the encoding affords).  ``increment`` requests a
    post-increment of the address register, the hardware feature that lets a
    whole convolution inner loop live in one instruction (Fig. 6).
    """

    kind: OperandKind
    index: int = 0
    increment: bool = False

    def __post_init__(self) -> None:
        limits = {
            OperandKind.DATA_RAM: NUM_ADDR_REGS,
            OperandKind.WEIGHT_RAM: NUM_ADDR_REGS,
            OperandKind.NDU_REG: NUM_NDU_REGS,
            OperandKind.IMMEDIATE: 64,
            OperandKind.OUT_LOW: 1,
            OperandKind.OUT_HIGH: 1,
            OperandKind.DLAST: 1,
            OperandKind.ACC: 1,
            OperandKind.ZERO: 1,
        }
        limit = limits[self.kind]
        if not 0 <= self.index < limit:
            raise ValueError(
                f"operand index {self.index} out of range for {self.kind.name} "
                f"(limit {limit})"
            )
        if self.increment and self.kind not in RAM_KINDS:
            raise ValueError("post-increment only applies to RAM operands")

    def __str__(self) -> str:
        if self.kind in RAM_KINDS:
            suffix = "++" if self.increment else ""
            return f"{self.kind.value}[a{self.index}{suffix}]"
        if self.kind is OperandKind.NDU_REG:
            return f"n{self.index}"
        if self.kind is OperandKind.IMMEDIATE:
            return f"#{self.index}"
        return self.kind.value


def data_ram(addr_reg: int, increment: bool = False) -> Operand:
    """Shorthand for a data-RAM operand addressed by ``addr[addr_reg]``."""
    return Operand(OperandKind.DATA_RAM, addr_reg, increment)


def weight_ram(addr_reg: int, increment: bool = False) -> Operand:
    """Shorthand for a weight-RAM operand addressed by ``addr[addr_reg]``."""
    return Operand(OperandKind.WEIGHT_RAM, addr_reg, increment)


def ndu_reg(index: int) -> Operand:
    """Shorthand for NDU output register ``n<index>``."""
    return Operand(OperandKind.NDU_REG, index)


def immediate(value: int) -> Operand:
    """Shorthand for an immediate byte value broadcast across the row."""
    return Operand(OperandKind.IMMEDIATE, value)
