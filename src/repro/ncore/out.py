"""The OUT unit: requantization, activations and result stores.

Section IV-D.5: requantization of the 32-bit accumulator to 8/16-bit types
"by multiplying the accumulator with a range value, shifting the result
left or right based on a scale value, and adding an offset value"; plus
activations (ReLU, tanh, sigmoid) and storing different transformations of
the accumulator.

The range/scale/offset values are *per-lane* configuration registers so
that per-output-channel quantization parameters can be applied in one
pass (channels are laid out across lanes by the NKL).
"""

from __future__ import annotations

import numpy as np

from repro.dtypes import ACC_MAX, ACC_MIN, NcoreDType, dtype_info, to_bfloat16
from repro.isa.instruction import Activation
from repro.ncore.errors import ExecutionError


def requantize_lanes(
    acc: np.ndarray,
    multiplier: np.ndarray,
    shift: np.ndarray,
    offset: np.ndarray,
    dtype: NcoreDType,
) -> np.ndarray:
    """Vectorised per-lane requantization (gemmlowp-compatible).

    Behaves exactly like :func:`repro.dtypes.requantize` but with per-lane
    multiplier / shift / offset arrays.  Returns int32 lanes saturated to
    the target type's range (not yet narrowed to bytes).
    """
    acc = acc.astype(np.int64)
    left = np.maximum(-shift, 0).astype(np.int64)
    right = np.maximum(shift, 0).astype(np.int64)
    acc = np.clip(acc << left, ACC_MIN, ACC_MAX)
    # SaturatingRoundingDoublingHighMul with truncation toward zero.
    prod = acc * multiplier.astype(np.int64)
    nudge = np.where(prod >= 0, np.int64(1 << 30), np.int64(1 - (1 << 30)))
    total = prod + nudge
    magnitude = np.abs(total) >> np.int64(31)
    scaled = np.clip(np.where(total >= 0, magnitude, -magnitude), ACC_MIN, ACC_MAX)
    # RoundingDivideByPOT (round half away from zero) by per-lane shift.
    mask = (np.int64(1) << right) - 1
    remainder = scaled & mask
    threshold = (mask >> 1) + (scaled < 0).astype(np.int64)
    shifted = (scaled >> right) + (remainder > threshold).astype(np.int64)
    info = dtype_info(dtype)
    result = np.clip(shifted + offset.astype(np.int64), info.min_value, info.max_value)
    return result.astype(np.int32)


def apply_integer_activation(
    values: np.ndarray,
    activation: Activation,
    zero_point: np.ndarray,
    act_qmax: int,
    lut: np.ndarray | None,
    dtype: NcoreDType,
) -> np.ndarray:
    """Apply an activation in the quantized domain.

    ReLU clamps at the per-lane output zero point; ReLU6 additionally
    clamps at the configured upper code ``act_qmax``.  tanh and sigmoid
    index a 256-entry lookup table loaded by the runtime (the standard way
    fixed-function hardware evaluates them).
    """
    if activation is Activation.NONE:
        return values
    if activation is Activation.RELU:
        return np.maximum(values, zero_point)
    if activation is Activation.RELU6:
        return np.clip(values, zero_point, act_qmax)
    if lut is None:
        raise ExecutionError(f"{activation.value} requires an activation LUT")
    info = dtype_info(dtype)
    if info.bytes_per_element != 1:
        raise ExecutionError("LUT activations are defined for 8-bit outputs only")
    index = (values - int(info.min_value)).astype(np.int64)  # 0..255
    return lut[index].astype(np.int32)


def narrow_to_rows(values: np.ndarray, dtype: NcoreDType) -> tuple[np.ndarray, np.ndarray]:
    """Split requantized int32 lanes into (low, high) byte rows.

    8-bit outputs fill only the low row; 16-bit outputs split into low and
    high byte rows, matching the RAM layout of 16-bit data (section
    IV-C.2).
    """
    info = dtype_info(dtype)
    narrowed = values.astype(info.numpy_dtype)
    if info.bytes_per_element == 1:
        low = narrowed.view(np.uint8)
        return low.copy(), np.zeros_like(low)
    raw = narrowed.view(np.uint8).reshape(-1, 2)
    return raw[:, 0].copy(), raw[:, 1].copy()


def float_output_rows(
    acc: np.ndarray, scale: float, activation: Activation
) -> tuple[np.ndarray, np.ndarray]:
    """bf16 output path: scale, activate, round to bf16, split into rows."""
    values = acc.astype(np.float32) * np.float32(scale)
    if activation is Activation.RELU:
        values = np.maximum(values, 0.0)
    elif activation is Activation.RELU6:
        values = np.clip(values, 0.0, 6.0)
    elif activation is Activation.TANH:
        values = np.tanh(values)
    elif activation is Activation.SIGMOID:
        values = 1.0 / (1.0 + np.exp(-values))
    rounded = to_bfloat16(values.astype(np.float32))
    bits = np.ascontiguousarray(rounded).view(np.uint32) >> np.uint32(16)
    low = (bits & np.uint32(0xFF)).astype(np.uint8)
    high = (bits >> np.uint32(8)).astype(np.uint8)
    return low, high
