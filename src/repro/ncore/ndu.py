"""The Neural Data Unit (NDU): data movement within and across rows.

Section IV-D.3: the NDU performs data bypass, data row rotation, data block
compression, byte broadcasting, and masked merge of input with output; up
to three of these per clock.  Each slice's NDU connects to its neighbours
so an entire 4 KB row can be rotated in either direction, up to 64 bytes
per clock cycle.

These are pure functions over 4096-byte rows (uint8 numpy arrays); the
machine resolves operand sources and commits results to the NDU registers.
"""

from __future__ import annotations

import numpy as np

from repro.isa.instruction import RotateDirection

BROADCAST_GROUP = 64  # broadcast64 group size in bytes


def bypass(row: np.ndarray) -> np.ndarray:
    """Pass a row through unchanged."""
    return row.copy()


def rotate(row: np.ndarray, amount: int, direction: RotateDirection) -> np.ndarray:
    """Rotate a row by ``amount`` bytes (<= 64 per clock).

    Rotation is across slice boundaries, with wraparound at row ends;
    "left" moves byte *i* to position *i - amount* (data slides toward
    lane 0), which is the direction Fig. 6's ``rotate_left`` uses to bring
    the next input element under each accumulator group.
    """
    if not 0 <= amount <= 64:
        raise ValueError(f"rotate amount {amount} exceeds 64 bytes/clock")
    shift = -amount if direction is RotateDirection.LEFT else amount
    return np.roll(row, shift)


def broadcast64(row: np.ndarray, byte_index: int) -> np.ndarray:
    """Broadcast one byte across each 64-byte group.

    The row is divided into ``row_bytes / 64`` groups; group *g* is filled
    with the byte at ``row[g * 64 + byte_index]``.  This is the
    ``broadcast64(wtram[addr], addr_idx, increment)`` operation of Fig. 6,
    used to put one weight under each group of 64 accumulators (Fig. 7).
    """
    if row.size % BROADCAST_GROUP:
        raise ValueError("row size must be a multiple of the broadcast group")
    index = byte_index % BROADCAST_GROUP
    groups = row.reshape(-1, BROADCAST_GROUP)
    return np.repeat(groups[:, index], BROADCAST_GROUP)


def expand(row: np.ndarray, width: int, zero: int = 0) -> np.ndarray:
    """Decompress one zero-compressed weight block into a full row.

    Ncore "includes a hardware decompression engine for sparse weights"
    (section VII).  The scheme modelled is byte-wise zero run-length
    coding: the stream is (bitmap byte, nonzero payload...) per 8-byte
    group — a bitmap bit of 1 means the next payload byte, 0 means the
    ``zero`` byte.  For quantized weights the hardware fills with the
    configured weight zero offset, so that a pruned weight decompresses to
    exactly the code the NPU's zero-offset subtraction turns into 0.
    The input row holds the compressed stream; decompression stops when
    ``width`` output bytes have been produced.  Streams that do not expand
    to exactly one row are a kernel bug and raise ValueError.
    """
    out = np.full(width, zero & 0xFF, dtype=np.uint8)
    pos = 0
    produced = 0
    stream = row
    while produced < width:
        if pos >= stream.size:
            raise ValueError("compressed stream exhausted before filling a row")
        bitmap = int(stream[pos])
        pos += 1
        for bit in range(8):
            if produced >= width:
                break
            if bitmap & (1 << bit):
                if pos >= stream.size:
                    raise ValueError("compressed stream truncated payload")
                out[produced] = stream[pos]
                pos += 1
            produced += 1
    return out


def compress(row: np.ndarray, zero: int = 0) -> np.ndarray:
    """Software-side encoder matching :func:`expand` (used by the NKL).

    Returns the compressed stream as a uint8 array; bytes equal to
    ``zero`` are elided.  The hardware only decompresses; compression
    happens at model-conversion time.
    """
    out: list[int] = []
    data = np.asarray(row, dtype=np.uint8)
    zero = zero & 0xFF
    for start in range(0, data.size, 8):
        group = data[start : start + 8]
        bitmap = 0
        payload: list[int] = []
        for bit, value in enumerate(group):
            if value != zero:
                bitmap |= 1 << bit
                payload.append(int(value))
        out.append(bitmap)
        out.extend(payload)
    return np.array(out, dtype=np.uint8)


def masked_merge(update: np.ndarray, previous: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Merge ``update`` into ``previous`` where the mask byte is nonzero."""
    return np.where(mask != 0, update, previous).astype(np.uint8)
