"""Shared exception types for the Ncore simulator."""


class ExecutionError(Exception):
    """Raised when a program exercises undefined machine behaviour
    (invalid operand sourcing, unconfigured facilities, nesting limits)."""
