"""The Ncore coprocessor simulator.

A functional and cycle-level model of the 4096-byte-wide SIMD machine from
section IV of the paper: 16 slices of 256 bytes, 16 MB of data/weight SRAM,
a double-buffered instruction RAM, the NDU / NPU / OUT execution pipeline,
DMA engines, and the debug facilities (event log, performance counters,
n-step breakpointing).

This simulator plays the role the paper's own "instruction simulator ...
golden model" played in Centaur's design methodology (section V-E).
"""

from repro.ncore.config import NcoreConfig
from repro.ncore.debug import EventLog, EventRecord, PerfCounter
from repro.ncore.dma import DmaDescriptor, DmaEngine, LinearMemory
from repro.ncore.machine import ExecutionError, MachineRunResult, Ncore
from repro.ncore.pci import NcorePciDevice
from repro.ncore.sram import EccError, InstructionRam, RowMemory

__all__ = [
    "DmaDescriptor",
    "DmaEngine",
    "EccError",
    "EventLog",
    "EventRecord",
    "ExecutionError",
    "InstructionRam",
    "LinearMemory",
    "MachineRunResult",
    "Ncore",
    "NcoreConfig",
    "NcorePciDevice",
    "PerfCounter",
    "RowMemory",
]
